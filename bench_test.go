package opcuastudy

// The benchmark harness regenerates every table and figure of the
// paper's evaluation at full fidelity: the complete 1114-server world
// with real key sizes, all eight measurement waves. The expensive
// campaign runs once (shared fixture); each benchmark then measures the
// analysis that produces its figure and reports the headline numbers as
// custom metrics, so `go test -bench` output documents paper-vs-measured
// directly (see EXPERIMENTS.md).

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/uapolicy"
)

var (
	benchOnce sync.Once
	benchCamp *Campaign
	benchErr  error
)

// benchCampaign runs the full-fidelity campaign once per test binary —
// with the telemetry registry live, so the benchmark numbers measure
// the instrumented configuration (the one CI ships). When
// OPCUA_METRICS_OUT names a file, the closing snapshot is written there
// as NDJSON for the CI bench artifacts.
func benchCampaign(b *testing.B) *Campaign {
	b.Helper()
	benchOnce.Do(func() {
		reg := telemetry.New()
		benchCamp, benchErr = RunCampaign(context.Background(), CampaignConfig{
			Seed:        2020,
			NoiseProb:   0.002,
			GrabWorkers: 32,
			Telemetry:   reg,
			Progressf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "[campaign] "+format+"\n", args...)
			},
		})
		if benchErr != nil {
			return
		}
		if path := os.Getenv("OPCUA_METRICS_OUT"); path != "" {
			snap := reg.Snapshot()
			snap.Final = true
			f, err := os.Create(path)
			if err == nil {
				err = telemetry.WriteSnapshot(f, snap)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "[campaign] metrics dump: %v\n", err)
			}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCamp
}

func lastWaveRecords(b *testing.B, c *Campaign) []*dataset.HostRecord {
	b.Helper()
	recs := c.RecordsByWave[7]
	if len(recs) == 0 {
		b.Fatal("no records for the final wave")
	}
	return recs
}

// reanalyze measures the assessment engine on the final wave.
func reanalyze(b *testing.B, c *Campaign) *core.WaveAnalysis {
	recs := lastWaveRecords(b, c)
	var w *core.WaveAnalysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w = core.AnalyzeWave(7, c.Analyses[len(c.Analyses)-1].Date, recs)
	}
	b.StopTimer()
	return w
}

func BenchmarkTable1(b *testing.B) {
	var t *Table
	for i := 0; i < b.N; i++ {
		t = report.Table1()
	}
	if len(t.Rows) != 6 {
		b.Fatalf("Table 1 rows = %d", len(t.Rows))
	}
}

func BenchmarkFigure2HostsOverTime(b *testing.B) {
	c := benchCampaign(b)
	var t *Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = report.Figure2(c.Analyses)
	}
	b.StopTimer()
	if len(t.Rows) != 8 {
		b.Fatalf("Figure 2 waves = %d", len(t.Rows))
	}
	last := c.LastWave()
	b.ReportMetric(float64(len(last.Servers)), "servers")
	b.ReportMetric(float64(last.Discovery), "discovery")
	b.ReportMetric(float64(last.ByVendor["Bachmann"]), "bachmann")
}

func BenchmarkFigure3ModesPolicies(b *testing.B) {
	c := benchCampaign(b)
	w := reanalyze(b, c)
	if w.ModeSupport["None"] != 1035 || w.PolicySupport["D1"] != 715 {
		b.Fatalf("Figure 3 shape off: %v %v", w.ModeSupport, w.PolicySupport)
	}
	b.ReportMetric(float64(w.NoneOnly), "none_only")
	b.ReportMetric(float64(w.DeprecatedBest), "deprecated_best")
	b.ReportMetric(float64(w.EnforceSecure), "enforce_secure")
}

func BenchmarkFigure4CertConformance(b *testing.B) {
	c := benchCampaign(b)
	w := reanalyze(b, c)
	s2 := w.Conformance["S2"]
	d1 := w.Conformance["D1"]
	d2 := w.Conformance["D2"]
	// Full-fidelity check: these depend on real key sizes.
	if s2[uapolicy.CertTooWeak] != 409 {
		b.Fatalf("S2 too-weak = %d, want 409", s2[uapolicy.CertTooWeak])
	}
	if d1[uapolicy.CertTooStrong] != 75 || d1[uapolicy.CertTooWeak] != 7 {
		b.Fatalf("D1 = %v", d1)
	}
	if d2[uapolicy.CertTooStrong] != 5 {
		b.Fatalf("D2 too-strong = %d, want 5", d2[uapolicy.CertTooStrong])
	}
	b.ReportMetric(float64(s2[uapolicy.CertTooWeak]), "s2_too_weak")
	b.ReportMetric(float64(d1[uapolicy.CertTooStrong]), "d1_too_strong")
	b.ReportMetric(float64(d2[uapolicy.CertTooStrong]), "d2_too_strong")
}

func BenchmarkFigure5CertReuse(b *testing.B) {
	c := benchCampaign(b)
	w := reanalyze(b, c)
	clusters := w.ReuseClustersAtLeast(3)
	if len(clusters) != 9 || clusters[0].Hosts != 385 || clusters[0].ASes != 24 {
		b.Fatalf("Figure 5 clusters off: %+v", clusters)
	}
	if w.WeakKeyFindings != 0 {
		b.Fatalf("weak keys = %d, want 0", w.WeakKeyFindings)
	}
	b.ReportMetric(float64(len(clusters)), "reused_certs")
	b.ReportMetric(float64(clusters[0].Hosts), "biggest_cluster")
	b.ReportMetric(float64(clusters[0].ASes), "biggest_cluster_ases")
}

func BenchmarkFigure6Authentication(b *testing.B) {
	c := benchCampaign(b)
	w := reanalyze(b, c)
	if w.Anonymous != 572 || w.AnonSCOK != 563 || w.Accessible != 493 {
		b.Fatalf("Figure 6 off: %d/%d/%d", w.Anonymous, w.AnonSCOK, w.Accessible)
	}
	b.ReportMetric(float64(w.AnonSCOK), "anonymous")
	b.ReportMetric(float64(w.Accessible), "accessible")
	b.ReportMetric(float64(w.RejectedSC), "cert_rejected")
}

func BenchmarkFigure7Exposure(b *testing.B) {
	c := benchCampaign(b)
	w := reanalyze(b, c)
	read, write, exec := w.ExposureCDFs()
	b.ReportMetric(read.Survival(0.97), "read_gt97")
	b.ReportMetric(write.Survival(0.10), "write_gt10")
	b.ReportMetric(exec.Survival(0.86), "exec_gt86")
	if s := read.Survival(0.97); s < 0.85 || s > 0.95 {
		b.Fatalf("read survival = %.2f", s)
	}
}

func BenchmarkTable2AuthMatrix(b *testing.B) {
	c := benchCampaign(b)
	w := reanalyze(b, c)
	cell := w.AuthMatrix["Anonymous+UserName"]
	if cell == nil || cell.Production != 168 || cell.Unclassified != 134 {
		b.Fatalf("Table 2 row off: %+v", cell)
	}
	var tbl *Table
	for i := 0; i < 10; i++ {
		tbl = report.Table2(w)
	}
	if len(tbl.Rows) < 8 {
		b.Fatalf("Table 2 rows = %d", len(tbl.Rows))
	}
	b.ReportMetric(float64(cell.Production), "anon_cred_production")
}

func BenchmarkFigure8DeficitSplits(b *testing.B) {
	c := benchCampaign(b)
	w := reanalyze(b, c)
	if w.DeficientFrac < 0.91 || w.DeficientFrac > 0.94 {
		b.Fatalf("deficient fraction = %.3f", w.DeficientFrac)
	}
	b.ReportMetric(100*w.DeficientFrac, "deficient_pct")
	b.ReportMetric(float64(w.DeficitByVendor[core.DeficitNone]["SigmaPLC"]), "sigmaplc_none_only")
	b.ReportMetric(float64(w.DeficitByVendor[core.DeficitCertReuse]["Bachmann"]), "bachmann_reuse")
}

func BenchmarkSection55Longitudinal(b *testing.B) {
	c := benchCampaign(b)
	var l *core.Longitudinal
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l = core.AnalyzeLongitudinal(c.Analyses)
	}
	b.StopTimer()
	if len(l.Renewals) != 84 {
		b.Fatalf("renewals = %d, want 84", len(l.Renewals))
	}
	if l.UpgradedSHA1 != 7 || l.Downgraded != 1 || l.SoftwareUpdates != 9 {
		b.Fatalf("renewal mix = %d/%d/%d", l.UpgradedSHA1, l.Downgraded, l.SoftwareUpdates)
	}
	b.ReportMetric(100*l.DeficientSummary.Mean, "deficient_mean_pct")
	b.ReportMetric(100*l.DeficientSummary.Std, "deficient_std_pct")
	b.ReportMetric(float64(l.SHA1Post2017), "sha1_post2017")
	b.ReportMetric(float64(l.ReuseGrowth[0]), "reuse_wave0")
	b.ReportMetric(float64(l.ReuseGrowth[len(l.ReuseGrowth)-1]), "reuse_wave7")
}

// BenchmarkCampaignWave measures one complete measurement wave (port
// scan, grabs, follow-ups) against the materialized world, comparing
// the streaming work-queue scheduler against the legacy depth-barrier
// design at equal GrabWorkers (see EXPERIMENTS.md).
func BenchmarkCampaignWave(b *testing.B) {
	c := benchCampaign(b)
	for _, mode := range []struct {
		name    string
		barrier bool
	}{
		{"streaming", false},
		{"barrier", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := c.Config
			cfg.Waves = []int{7}
			cfg.Barrier = mode.barrier
			for i := 0; i < b.N; i++ {
				if _, err := RunCampaignOnWorld(context.Background(), cfg, c.World); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignPipeline measures a three-wave campaign end to end.
// "overlapped" is the full streaming pipeline: streaming grab queue,
// parallel per-host assessment, and wave w-1's analysis running while
// wave w scans. "sequential-barrier" is the legacy design: depth
// barriers, serial assessment, analysis blocking the next scan.
//
// Dials get a small artificial RTT (both variants, equally): the
// zero-latency simulation is purely CPU-bound, where overlapping two
// CPU-bound stages cannot win wall clock — the real zmap/zgrab2-style
// pipeline the paper runs is network-bound, which is what the overlap
// (and the absence of depth barriers) exploits.
func BenchmarkCampaignPipeline(b *testing.B) {
	c := benchCampaign(b)
	c.World.Net.SetLatency(25 * time.Millisecond)
	defer c.World.Net.SetLatency(0)
	for _, mode := range []struct {
		name string
		tune func(*CampaignConfig)
	}{
		{"overlapped", func(cfg *CampaignConfig) {}},
		{"sequential-barrier", func(cfg *CampaignConfig) {
			cfg.Barrier = true
			cfg.Sequential = true
			cfg.AnalyzeWorkers = 1
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := c.Config
			cfg.Waves = []int{5, 6, 7}
			mode.tune(&cfg)
			for i := 0; i < b.N; i++ {
				run, err := RunCampaignOnWorld(context.Background(), cfg, c.World)
				if err != nil {
					b.Fatal(err)
				}
				last := run.LastWave()
				if len(last.Servers) != 1114 {
					b.Fatalf("servers = %d, want 1114", len(last.Servers))
				}
				b.ReportMetric(float64(len(last.Servers)), "servers")
			}
		})
	}
}

// BenchmarkCampaignConcurrentWaves quantifies the worldview speedup:
// the same three-wave campaign with one wave at a time (WaveWorkers=1,
// still overlapping analysis with the next scan) versus all three
// waves scanning concurrently against their own immutable snapshots
// (WaveWorkers=3). The same artificial RTT as BenchmarkCampaignPipeline
// is injected into both variants: wave scans are network-shaped in the
// real study, and that idle dial time is exactly what concurrent waves
// reclaim. Both variants must reproduce the paper's 1114 servers.
func BenchmarkCampaignConcurrentWaves(b *testing.B) {
	c := benchCampaign(b)
	c.World.Net.SetLatency(25 * time.Millisecond)
	defer c.World.Net.SetLatency(0)
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"waveworkers-1", 1},
		{"waveworkers-3", 3},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := c.Config
			cfg.Waves = []int{5, 6, 7}
			cfg.WaveWorkers = mode.workers
			for i := 0; i < b.N; i++ {
				run, err := RunCampaignOnWorld(context.Background(), cfg, c.World)
				if err != nil {
					b.Fatal(err)
				}
				last := run.LastWave()
				if len(last.Servers) != 1114 {
					b.Fatalf("servers = %d, want 1114", len(last.Servers))
				}
				b.ReportMetric(float64(len(last.Servers)), "servers")
			}
		})
	}
}

// BenchmarkCampaign8Waves is the PR 4 headline: the complete
// longitudinal campaign — all eight weekly waves against the
// full-fidelity 1,114-server world — with the memoized
// asymmetric-crypto engine and deterministic handshakes on ("cached",
// the production default) versus the same campaign recomputing every
// RSA operation with fresh randomness ("uncached", the PR 3 baseline).
// The paper's cross-wave structure is exactly what the engine exploits:
// only 84 certificates renew across the eight waves and one key is
// shared by 385 hosts, so nearly every OPN exchange after wave 0 is a
// bit-identical replay served from cache. Paper assertions (1,114
// servers, 385-host/24-AS reuse cluster, 493 accessible, 84 renewals)
// run inside the loop for both modes, so the speedup cannot come at the
// cost of fidelity; cache hit counters are reported as custom metrics
// for cmd/benchjson.
func BenchmarkCampaign8Waves(b *testing.B) {
	c := benchCampaign(b)
	for _, mode := range []struct {
		name  string
		cache int
	}{
		{"cached", 0},
		{"uncached", -1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := c.Config
			cfg.Waves = nil // all eight
			cfg.CryptoCache = mode.cache
			for i := 0; i < b.N; i++ {
				run, err := RunCampaignOnWorld(context.Background(), cfg, c.World)
				if err != nil {
					b.Fatal(err)
				}
				assertPaperHeadlines(b, run)
				if st := run.CryptoStats; st != nil {
					tot := st.Total()
					b.ReportMetric(float64(tot.Hits), "rsa_hits")
					b.ReportMetric(float64(tot.Misses), "rsa_misses")
					b.ReportMetric(100*tot.HitRate(), "rsa_hit_pct")
				}
			}
		})
	}
}

// BenchmarkCampaign8WavesSharded is the PR 5 headline: the complete
// eight-wave full-fidelity campaign with every wave's permuted probe
// space sharded N ways, each shard running its own fixed grab pool of 8
// workers — the single-process model of one worker machine per shard
// (the multi-process twin is cmd/measure -shards). A small artificial
// RTT is injected into all variants: real measurement waves are
// network-bound, and that idle dial time is exactly what additional
// shards' worker pools reclaim — on a multi-core box the shards'
// protocol CPU also spreads across cores. Paper assertions run inside
// the loop for every shard count, so the speedup cannot come at the
// cost of fidelity; the shard merge is byte-exact
// (TestShardedCampaignByteIdentical pins it).
func BenchmarkCampaign8WavesSharded(b *testing.B) {
	c := benchCampaign(b)
	c.World.Net.SetLatency(5 * time.Millisecond)
	defer c.World.Net.SetLatency(0)
	for _, shards := range []int{1, 4} {
		// The underscore keeps benchjson's GOMAXPROCS-suffix stripping
		// away from the shard count.
		b.Run(fmt.Sprintf("shards_%d", shards), func(b *testing.B) {
			cfg := c.Config
			cfg.Waves = nil // all eight
			cfg.Shards = shards
			cfg.GrabWorkers = 8 // per shard: one machine's worth
			for i := 0; i < b.N; i++ {
				run, err := RunCampaignOnWorld(context.Background(), cfg, c.World)
				if err != nil {
					b.Fatal(err)
				}
				assertPaperHeadlines(b, run)
				b.ReportMetric(float64(shards), "shards")
				b.ReportMetric(float64(len(run.LastWave().Servers)), "servers")
			}
		})
	}
}

// BenchmarkCampaign8WavesDelta is the PR 10 headline: the complete
// eight-wave full-fidelity campaign sharded 4 ways ("full", exactly the
// BenchmarkCampaign8WavesSharded/shards_4 configuration) versus the
// same campaign in delta mode ("delta"), where every wave after the
// first diffs per-host fingerprints against its predecessor and clones
// the prior wave's records for unchanged hosts without opening a single
// channel. The paper's longitudinal structure is what delta mode
// exploits: only 84 certificates renew and a handful of hosts churn
// across the eight waves, so the steady-state wave is almost entirely
// skips. Paper assertions run inside the loop for both modes — the
// speedup cannot come at the cost of fidelity (the byte-identity twin
// is TestDeltaCampaignByteIdentical) — and the delta hit/miss/fallback
// counters are reported as custom metrics for cmd/benchjson.
func BenchmarkCampaign8WavesDelta(b *testing.B) {
	c := benchCampaign(b)
	c.World.Net.SetLatency(5 * time.Millisecond)
	defer c.World.Net.SetLatency(0)
	for _, mode := range []struct {
		name  string
		delta bool
	}{
		{"full", false},
		{"delta", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := c.Config
			cfg.Waves = nil // all eight
			cfg.Shards = 4
			cfg.GrabWorkers = 8 // per shard: one machine's worth
			cfg.Delta = mode.delta
			for i := 0; i < b.N; i++ {
				reg := telemetry.New()
				cfg.Telemetry = reg
				run, err := RunCampaignOnWorld(context.Background(), cfg, c.World)
				if err != nil {
					b.Fatal(err)
				}
				assertPaperHeadlines(b, run)
				if mode.delta {
					snap := reg.Snapshot()
					hits := float64(snap.CounterTotal("wave_delta_hits"))
					misses := float64(snap.CounterTotal("wave_delta_misses"))
					b.ReportMetric(hits, "delta_hits")
					b.ReportMetric(misses, "delta_misses")
					b.ReportMetric(float64(snap.CounterTotal("wave_delta_fallbacks")), "delta_fallbacks")
					if hits+misses > 0 {
						b.ReportMetric(100*hits/(hits+misses), "delta_hit_pct")
					}
				}
			}
		})
	}
}

// BenchmarkDatasetWrite measures dataset serialization.
func BenchmarkDatasetWrite(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteDataset(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
