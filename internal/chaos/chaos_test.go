package chaos

import (
	"context"
	"hash/fnv"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestFNVConstants pins the locally restated FNV-1a parameters against
// hash/fnv — the behavior hash and DeriveSeed both inline them.
func TestFNVConstants(t *testing.T) {
	ref := fnv.New64a()
	if got := ref.Sum64(); got != fnvOffset64 {
		t.Errorf("fnvOffset64 = %d, hash/fnv says %d", uint64(fnvOffset64), got)
	}
	ref.Write([]byte{0})
	// offset64 * prime64 is what hashing a single zero byte produces.
	var want uint64 = fnvOffset64
	want *= fnvPrime64
	if got := ref.Sum64(); got != want {
		t.Errorf("fnvPrime64 mismatch: hashing 0x00 gave %d, local math %d", got, want)
	}
}

// TestBehaviorMatchesFNVReference pins the inlined behavior hash
// against a byte-for-byte hash/fnv rebuild of its input encoding.
func TestBehaviorMatchesFNVReference(t *testing.T) {
	m := Model{Seed: -12345, Prob: 1, Kinds: []Kind{
		KindTarpit, KindReset, KindFlap, KindTruncate, KindCorrupt, KindOversize, KindGarbage,
	}}
	wm := m.ForWave(3)
	ip := [4]byte{100, 64, 7, 200}
	port := 4840

	ref := fnv.New64a()
	seed := uint64(m.Seed)
	for shift := 56; shift >= 0; shift -= 8 {
		ref.Write([]byte{byte(seed >> shift)})
	}
	w := uint32(3)
	ref.Write([]byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)})
	ref.Write(ip[:])
	ref.Write([]byte{byte(port >> 8), byte(port)})
	h := ref.Sum64()

	want := Behavior{}
	if float64(h%1000000)/1000000.0 < m.Prob {
		kind := m.Kinds[(h>>20)%uint64(len(m.Kinds))]
		want = Behavior{Kind: kind, Param: param(kind, uint32(h>>32))}
	}
	if got := wm.Behavior(ip, port); got != want {
		t.Errorf("Behavior = %+v, hash/fnv reference says %+v", got, want)
	}
}

// TestBehaviorDeterministicAndWaveBound: same (seed, wave, host) always
// agrees; different waves and seeds draw independently.
func TestBehaviorDeterministicAndWaveBound(t *testing.T) {
	m, err := ModelForProfile("mixed", 7)
	if err != nil {
		t.Fatal(err)
	}
	wm := m.ForWave(2)
	sameWave := m.ForWave(2)
	otherWave := m.ForWave(5)
	otherSeed, _ := ModelForProfile("mixed", 8)

	waveDiffers, seedDiffers := false, false
	var hosts, hostile int
	for a := byte(0); a < 200; a++ {
		ip := [4]byte{100, 64, 0, a}
		b := wm.Behavior(ip, 4840)
		if b2 := sameWave.Behavior(ip, 4840); b != b2 {
			t.Fatalf("host %v: same model disagrees with itself: %+v vs %+v", ip, b, b2)
		}
		if otherWave.Behavior(ip, 4840) != b {
			waveDiffers = true
		}
		if otherSeed.ForWave(2).Behavior(ip, 4840) != b {
			seedDiffers = true
		}
		hosts++
		if b.Kind != KindNone {
			hostile++
		}
	}
	if !waveDiffers {
		t.Error("every host drew the same behavior in waves 2 and 5 — wave is not mixed in")
	}
	if !seedDiffers {
		t.Error("every host drew the same behavior under seeds 7 and 8 — seed is not mixed in")
	}
	// Prob 0.35 over 200 hosts: expect roughly 70 hostile; 20..120 is a
	// deterministic assertion (fixed seed), just written with slack so a
	// profile probability tweak doesn't silently zero the test.
	if hostile < 20 || hostile > 120 {
		t.Errorf("hostile hosts = %d of %d, want within [20,120] for Prob 0.35", hostile, hosts)
	}
}

// TestZeroModelDisabled: the zero Model and WaveModel never produce a
// behavior — polite worlds pay one branch.
func TestZeroModelDisabled(t *testing.T) {
	var wm WaveModel
	if wm.Enabled() {
		t.Error("zero WaveModel reports Enabled")
	}
	if b := wm.Behavior([4]byte{1, 2, 3, 4}, 4840); b.Kind != KindNone {
		t.Errorf("zero WaveModel produced %+v", b)
	}
}

// TestBehaviorParamRanges checks every kind's parameter stays inside
// its documented range over many hosts (flap 1..3, tarpit 1..4,
// truncate 1..27, corrupt 4..27 — inside the 28-byte ACK frame).
func TestBehaviorParamRanges(t *testing.T) {
	ranges := map[Kind][2]uint32{
		KindTarpit:   {1, 4},
		KindReset:    {0, 0},
		KindFlap:     {1, 3},
		KindTruncate: {1, 27},
		KindCorrupt:  {4, 27},
		KindOversize: {0, 0},
		KindGarbage:  {0, 0},
	}
	m, err := ModelForProfile("mixed", 2020)
	if err != nil {
		t.Fatal(err)
	}
	wm := m.ForWave(0)
	for a := 0; a < 64; a++ {
		for b := 0; b < 16; b++ {
			bh := wm.Behavior([4]byte{100, 65, byte(a), byte(b)}, 4840)
			if bh.Kind == KindNone {
				continue
			}
			r, ok := ranges[bh.Kind]
			if !ok {
				t.Fatalf("unexpected kind %v", bh.Kind)
			}
			if bh.Param < r[0] || bh.Param > r[1] {
				t.Errorf("%v param %d outside [%d,%d]", bh.Kind, bh.Param, r[0], r[1])
			}
		}
	}
}

// TestRefuses: the flap refuses exactly attempts 0..Param-1.
func TestRefuses(t *testing.T) {
	b := Behavior{Kind: KindFlap, Param: 2}
	for attempt, want := range map[int]bool{0: true, 1: true, 2: false, 3: false} {
		if got := b.Refuses(attempt); got != want {
			t.Errorf("flap(2).Refuses(%d) = %v, want %v", attempt, got, want)
		}
	}
	if (Behavior{Kind: KindTarpit, Param: 3}).Refuses(0) {
		t.Error("non-flap behavior refuses connections")
	}
}

// TestAttemptContext round-trips the attempt number and keeps attempt
// zero allocation-free (unannotated context).
func TestAttemptContext(t *testing.T) {
	ctx := context.Background()
	if got := AttemptFromContext(ctx); got != 0 {
		t.Errorf("unannotated attempt = %d", got)
	}
	if WithAttempt(ctx, 0) != ctx {
		t.Error("WithAttempt(0) should return ctx unchanged")
	}
	if got := AttemptFromContext(WithAttempt(ctx, 3)); got != 3 {
		t.Errorf("attempt round trip = %d, want 3", got)
	}
}

// TestDeriveSeedSeparatesParts: the separator keeps ("ab","c") and
// ("a","bc") apart, and equal inputs agree.
func TestDeriveSeedSeparatesParts(t *testing.T) {
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error(`DeriveSeed(1,"ab","c") == DeriveSeed(1,"a","bc")`)
	}
	if DeriveSeed(1, "host:4840") != DeriveSeed(1, "host:4840") {
		t.Error("DeriveSeed is not deterministic")
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Error("DeriveSeed ignores the seed")
	}
}

// TestProfilesComplete: every registered profile resolves to an enabled
// model, the names are sorted, and unknown names fail with the list.
func TestProfilesComplete(t *testing.T) {
	names := Profiles()
	if !reflect.DeepEqual(names, []string{
		"corrupt", "flap", "garbage", "mixed", "oversize", "reset", "tarpit", "truncate",
	}) {
		t.Errorf("Profiles() = %v", names)
	}
	for _, name := range names {
		m, err := ModelForProfile(name, 42)
		if err != nil {
			t.Errorf("profile %q: %v", name, err)
		}
		if !m.Enabled() || m.Seed != 42 {
			t.Errorf("profile %q resolved to %+v", name, m)
		}
	}
	if _, err := ModelForProfile("nope", 1); err == nil {
		t.Error("unknown profile did not error")
	}
}

// dialServe runs Serve(b) on the server end of a pipe and returns the
// client end.
func dialServe(t *testing.T, b Behavior, handle func(net.Conn)) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close() })
	go Serve(b, server, handle)
	return client
}

// echoHandle is a minimal polite handler: reads one request, answers
// with a fixed 28-byte frame (stand-in for the deterministic ACK).
func ackFrame() []byte {
	f := make([]byte, 28)
	copy(f, "ACKF")
	f[4] = 28
	return f
}

func echoHandle(conn net.Conn) {
	buf := make([]byte, 256)
	if _, err := conn.Read(buf); err != nil {
		return
	}
	_, _ = conn.Write(ackFrame())
	// Linger until the peer closes, like a real server loop.
	for {
		if _, err := conn.Read(buf); err != nil {
			_ = conn.Close()
			return
		}
	}
}

// TestServeTarpitStallsUntilDeadline: a tarpit writes fewer than 8
// header bytes and then nothing — the client read must end in a
// deadline error, never a frame.
func TestServeTarpitStallsUntilDeadline(t *testing.T) {
	c := dialServe(t, Behavior{Kind: KindTarpit, Param: 3}, echoHandle)
	if _, err := c.Write([]byte("HELF hello")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	n := 0
	for {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				t.Fatalf("tarpit read ended with %v, want timeout", err)
			}
			break
		}
	}
	if n >= 8 {
		t.Errorf("tarpit produced %d bytes — a full frame header", n)
	}
}

// TestServeResetClosesAfterHello: reset reads the hello and closes —
// the client sees EOF with zero response bytes.
func TestServeResetClosesAfterHello(t *testing.T) {
	c := dialServe(t, Behavior{Kind: KindReset}, echoHandle)
	if _, err := c.Write([]byte("HELF hello")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	if n != 0 || err != io.EOF {
		t.Errorf("reset read = (%d, %v), want (0, EOF)", n, err)
	}
}

// TestServeOversizeClaims4GiB: the answered header's size field must
// carry the hostile near-4GiB claim.
func TestServeOversizeClaims4GiB(t *testing.T) {
	c := dialServe(t, Behavior{Kind: KindOversize}, echoHandle)
	if _, err := c.Write([]byte("HELF hello")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(c, hdr); err != nil {
		t.Fatal(err)
	}
	size := uint32(hdr[4]) | uint32(hdr[5])<<8 | uint32(hdr[6])<<16 | uint32(hdr[7])<<24
	if size != 0xfffffff0 {
		t.Errorf("claimed size = %#x, want 0xfffffff0", size)
	}
}

// TestServeGarbageWritesBeforeReading: garbage pushes its unknown-type
// frame without waiting for a hello.
func TestServeGarbageWritesBeforeReading(t *testing.T) {
	c := dialServe(t, Behavior{Kind: KindGarbage}, echoHandle)
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(c, hdr); err != nil {
		t.Fatal(err)
	}
	if string(hdr[:4]) != "GGGF" {
		t.Errorf("garbage banner = %q, want GGGF", hdr[:4])
	}
}

// TestServeTruncateCutsStream: the filtered handler's 28-byte answer is
// cut after exactly Param bytes, then EOF.
func TestServeTruncateCutsStream(t *testing.T) {
	c := dialServe(t, Behavior{Kind: KindTruncate, Param: 5}, echoHandle)
	if _, err := c.Write([]byte("HELF hello")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	got, _ := io.ReadAll(c)
	if len(got) != 5 {
		t.Errorf("truncate delivered %d bytes, want 5", len(got))
	}
}

// TestServeCorruptFlipsOneBit: the corrupt filter relays the full
// answer with exactly the byte at Param XORed by 0x80.
func TestServeCorruptFlipsOneBit(t *testing.T) {
	c := dialServe(t, Behavior{Kind: KindCorrupt, Param: 9}, echoHandle)
	if _, err := c.Write([]byte("HELF hello")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	got := make([]byte, 28)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	want := ackFrame()
	want[9] ^= 0x80
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

// TestServeFlapPastRefusalsIsPolite: once past its refused attempts the
// flap serves the genuine handler unmodified.
func TestServeFlapPastRefusalsIsPolite(t *testing.T) {
	c := dialServe(t, Behavior{Kind: KindFlap, Param: 2}, echoHandle)
	if _, err := c.Write([]byte("HELF hello")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	got := make([]byte, 28)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:4]) != "ACKF" {
		t.Errorf("flap served %q, want the genuine ACKF answer", got[:4])
	}
}
