// Package chaos is the deterministic adversarial-host layer: seeded,
// per-(wave, host) behavior profiles that make the simulated internet
// hostile the way the paper's real scan targets were — tarpits that
// dribble bytes and stall, peers that reset mid-handshake, flapping
// listeners that refuse the first connect attempts, truncated and
// corrupted frames, oversized chunk-size claims, and garbage written
// before any banner.
//
// Every decision derives purely from (seed, wave, ip, port) through
// FNV-1a — no state, no clocks, no ambient entropy — so a chaos
// campaign is bit-reproducible across runs, across shard counts and
// across processes, exactly like the polite universe it perturbs
// (DESIGN.md §9). The package deliberately does not import simnet:
// simnet and worldview consult a WaveModel at dial time and hand the
// server end of the pipe to Serve, keeping the dependency one-way.
package chaos

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
)

// Kind identifies one adversarial behavior.
type Kind uint8

const (
	// KindNone is the zero Kind: the host behaves politely.
	KindNone Kind = iota
	// KindTarpit dribbles a few banner bytes, then holds the
	// connection open silently until the peer gives up. The probe can
	// only fail by deadline — the taxonomy's "timeout" class.
	KindTarpit
	// KindReset accepts the connection, reads the hello, and closes
	// without answering — a mid-handshake RST ("reset").
	KindReset
	// KindFlap refuses the first Param connect attempts and serves
	// politely afterwards; a retrying scanner deterministically
	// recovers the host, a single-shot scanner loses it.
	KindFlap
	// KindTruncate serves the real handler but cuts the server→client
	// stream after Param bytes — a frame truncated mid-acknowledge.
	KindTruncate
	// KindCorrupt serves the real handler but XORs the high bit of the
	// server→client byte at offset Param, inside the acknowledge frame
	// where the transcript is limits-negotiation and fully
	// deterministic.
	KindCorrupt
	// KindOversize answers the hello with a frame header claiming a
	// near-4GiB body — the hostile length field the uasc frame ceiling
	// must bound ("malformed").
	KindOversize
	// KindGarbage writes a well-framed chunk of an unknown message
	// type before reading any banner ("malformed").
	KindGarbage
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindTarpit:
		return "tarpit"
	case KindReset:
		return "reset"
	case KindFlap:
		return "flap"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	case KindOversize:
		return "oversize"
	case KindGarbage:
		return "garbage"
	}
	return fmt.Sprintf("chaos.Kind(%d)", uint8(k))
}

// Behavior is the decided adversarial behavior for one (wave, host).
type Behavior struct {
	Kind Kind
	// Param is the Kind-specific deterministic parameter: refused
	// connect attempts (Flap), dribbled banner bytes (Tarpit), the
	// server→client cut offset (Truncate) or corruption offset
	// (Corrupt). Zero for the parameterless kinds.
	Param uint32
}

// Refuses reports whether a dial with the given zero-based attempt
// number must be refused (the connect-refuse flap).
func (b Behavior) Refuses(attempt int) bool {
	return b.Kind == KindFlap && attempt < int(b.Param)
}

// Model is a campaign-level chaos configuration: which kinds can occur,
// with what probability, under which seed. The zero value is disabled.
type Model struct {
	Seed  int64
	Prob  float64
	Kinds []Kind
}

// Enabled reports whether the model can ever produce a behavior.
func (m Model) Enabled() bool { return m.Prob > 0 && len(m.Kinds) > 0 }

// ForWave binds the model to one wave, yielding the stateless decision
// function dial paths consult. Distinct waves draw independent
// behaviors for the same host, mirroring how the real internet changes
// between the paper's weekly scans.
func (m Model) ForWave(wave int) WaveModel { return WaveModel{model: m, wave: wave} }

// WaveModel is a Model bound to a wave. The zero value is disabled.
type WaveModel struct {
	model Model
	wave  int
}

// Enabled reports whether this wave's model can produce a behavior.
func (wm WaveModel) Enabled() bool { return wm.model.Enabled() }

// FNV-1a 64-bit parameters, restated locally (simnet exports the same
// constants, but chaos must not import simnet); pinned against
// hash/fnv by TestFNVConstants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Behavior decides the behavior of host ip:port in this wave, purely
// from (seed, wave, ip, port): one FNV-1a hash supplies the occurrence
// roll (low bits, the same %1000000 mapping as simnet.Noise), the kind
// selection (middle bits) and the kind parameter (high bits).
func (wm WaveModel) Behavior(ip [4]byte, port int) Behavior {
	m := wm.model
	if !m.Enabled() {
		return Behavior{}
	}
	h := uint64(fnvOffset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	seed := uint64(m.Seed)
	for shift := 56; shift >= 0; shift -= 8 {
		mix(byte(seed >> shift))
	}
	w := uint32(wm.wave)
	mix(byte(w >> 24))
	mix(byte(w >> 16))
	mix(byte(w >> 8))
	mix(byte(w))
	for _, b := range ip {
		mix(b)
	}
	mix(byte(port >> 8))
	mix(byte(port))

	if float64(h%1000000)/1000000.0 >= m.Prob {
		return Behavior{}
	}
	kind := m.Kinds[(h>>20)%uint64(len(m.Kinds))]
	return Behavior{Kind: kind, Param: param(kind, uint32(h>>32))}
}

// param derives the kind-specific parameter from the hash's high bits.
// Truncate and Corrupt offsets stay inside the 28-byte acknowledge
// frame: its bytes are pure limits negotiation, deterministic across
// runs, so the resulting failure (and its error string) is too.
func param(k Kind, x uint32) uint32 {
	switch k {
	case KindFlap:
		return 1 + x%3 // refuse the first 1..3 attempts
	case KindTarpit:
		return 1 + x%4 // dribble 1..4 of the 8 header bytes
	case KindTruncate:
		return 1 + x%27 // cut server→client inside the ACK frame
	case KindCorrupt:
		return 4 + x%24 // flip a byte past the msgType, inside the ACK
	}
	return 0
}

// --- named profiles (the measure -chaos vocabulary) ---

// Profile is a named chaos configuration template.
type Profile struct {
	Name  string
	Prob  float64
	Kinds []Kind
}

var profiles = map[string]Profile{
	"mixed": {Name: "mixed", Prob: 0.35, Kinds: []Kind{
		KindTarpit, KindReset, KindFlap, KindTruncate, KindCorrupt, KindOversize, KindGarbage,
	}},
	"tarpit":   {Name: "tarpit", Prob: 0.35, Kinds: []Kind{KindTarpit}},
	"reset":    {Name: "reset", Prob: 0.35, Kinds: []Kind{KindReset}},
	"flap":     {Name: "flap", Prob: 0.35, Kinds: []Kind{KindFlap}},
	"truncate": {Name: "truncate", Prob: 0.35, Kinds: []Kind{KindTruncate}},
	"corrupt":  {Name: "corrupt", Prob: 0.35, Kinds: []Kind{KindCorrupt}},
	"oversize": {Name: "oversize", Prob: 0.35, Kinds: []Kind{KindOversize}},
	"garbage":  {Name: "garbage", Prob: 0.35, Kinds: []Kind{KindGarbage}},
}

// Profiles returns the known profile names, sorted.
func Profiles() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ModelForProfile resolves a named profile to a Model under seed.
func ModelForProfile(name string, seed int64) (Model, error) {
	p, ok := profiles[name]
	if !ok {
		return Model{}, fmt.Errorf("chaos: unknown profile %q (known profiles: %s)",
			name, strings.Join(Profiles(), ", "))
	}
	return Model{Seed: seed, Prob: p.Prob, Kinds: p.Kinds}, nil
}

// DeriveSeed folds strings into seed with FNV-1a — how the scanner
// derives a per-address backoff seed from the campaign chaos seed.
func DeriveSeed(seed int64, parts ...string) int64 {
	h := uint64(fnvOffset64)
	s := uint64(seed)
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= uint64(byte(s >> shift))
		h *= fnvPrime64
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime64
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= fnvPrime64
	}
	return int64(h)
}

// --- connect-attempt plumbing ---

// attemptKey carries the zero-based connect attempt number through a
// dial's context, so the stateless flap decision can compare it against
// Param without any shared per-address counter (which would break
// 1-vs-N-shard byte identity).
type attemptKey struct{}

// WithAttempt annotates ctx with a zero-based connect attempt number.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	if attempt <= 0 {
		return ctx
	}
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// AttemptFromContext returns the connect attempt number from ctx
// (zero when unannotated).
func AttemptFromContext(ctx context.Context) int {
	if v, ok := ctx.Value(attemptKey{}).(int); ok {
		return v
	}
	return 0
}

// --- server-side behavior execution ---

// Serve runs behavior b on the server end of a freshly dialed
// connection; handle is the host's real connection handler, consulted
// only by the kinds that serve (possibly filtered) genuine traffic.
// Serve owns conn and closes it before returning. Every behavior
// terminates once the peer closes its end, so a goroutine running
// Serve is bounded by the client's deadline — chaos hosts can stall a
// probe, never leak its serving goroutine.
func Serve(b Behavior, conn net.Conn, handle func(net.Conn)) {
	switch b.Kind {
	case KindTarpit:
		serveTarpit(conn, int(b.Param))
	case KindReset:
		serveReset(conn)
	case KindTruncate:
		serveFiltered(conn, handle, func(dst io.Writer, src io.Reader) {
			_, _ = io.CopyN(dst, src, int64(b.Param))
		})
	case KindCorrupt:
		serveFiltered(conn, handle, corruptAt(uint64(b.Param)))
	case KindOversize:
		serveOversize(conn)
	case KindGarbage:
		serveGarbage(conn)
	default:
		// KindNone, and KindFlap once past its refused attempts.
		handle(conn)
	}
}

// ackHeader is the first 8 bytes of a plausible acknowledge frame;
// tarpits dribble a prefix of it, the oversize kind rewrites its size
// field.
var ackHeader = []byte{'A', 'C', 'K', 'F', 0, 0, 0, 0}

// serveTarpit absorbs the hello, writes the first n (< 8) header bytes
// of an acknowledge, and then swallows everything silently: the probe
// blocks mid-frame-header until its deadline fires.
func serveTarpit(conn net.Conn, n int) {
	defer func() { _ = conn.Close() }()
	buf := make([]byte, 256)
	if _, err := conn.Read(buf); err != nil {
		return
	}
	if n > 4 {
		n = 4
	}
	if _, err := conn.Write(ackHeader[:n]); err != nil {
		return
	}
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// serveReset reads the hello and closes without a byte in response.
func serveReset(conn net.Conn) {
	buf := make([]byte, 256)
	_, _ = conn.Read(buf)
	_ = conn.Close()
}

// serveOversize answers the hello with an acknowledge header whose
// size field claims a near-4GiB body, then closes once the peer does.
func serveOversize(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	buf := make([]byte, 256)
	if _, err := conn.Read(buf); err != nil {
		return
	}
	hdr := make([]byte, 8)
	copy(hdr, ackHeader[:4])
	claimed := uint32(0xfffffff0)
	hdr[4] = byte(claimed)
	hdr[5] = byte(claimed >> 8)
	hdr[6] = byte(claimed >> 16)
	hdr[7] = byte(claimed >> 24)
	_, _ = conn.Write(hdr)
}

// serveGarbage writes a well-framed chunk of an unknown message type
// before reading any banner. A concurrent drain keeps the peer's hello
// write from wedging against our write on the synchronous pipe.
func serveGarbage(conn net.Conn) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	hdr := []byte{'G', 'G', 'G', 'F', 8, 0, 0, 0} // valid frame, empty body
	_, _ = conn.Write(hdr)
	_ = conn.Close()
	<-done
}

// serveFiltered runs the real handler behind an inner pipe and relays
// traffic, applying filter to the server→client direction. filter
// returns when it is done damaging the stream; serveFiltered then tears
// both connections down.
func serveFiltered(conn net.Conn, handle func(net.Conn), filter func(io.Writer, io.Reader)) {
	inner, outer := net.Pipe()
	go handle(inner)
	go func() {
		// client→server passthrough; unblocks when either side closes.
		_, _ = io.Copy(outer, conn)
		_ = outer.Close()
	}()
	filter(conn, outer)
	_ = conn.Close()
	_ = outer.Close()
}

// corruptAt returns a server→client filter that copies the stream
// unmodified except for XORing the high bit of the byte at offset.
func corruptAt(offset uint64) func(io.Writer, io.Reader) {
	return func(dst io.Writer, src io.Reader) {
		buf := make([]byte, 2048)
		var off uint64
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if off <= offset && offset < off+uint64(n) {
					buf[offset-off] ^= 0x80
				}
				off += uint64(n)
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
}
