package uarsa

import (
	"crypto/sha256"
	"encoding/binary"
)

// Stream is a deterministic byte stream: SHA-256 in counter mode over a
// 32-byte seed. It stands in for crypto/rand on the deterministic
// handshake path — nonces, OAEP/PKCS#1 padding and PSS salts are drawn
// from labeled Streams so that equal exchange parameters produce equal
// wire bytes. It is NOT a general-purpose CSPRNG: its whole point is
// that the output is reproducible from the seed.
type Stream struct {
	seed [32]byte
	ctr  uint64
	buf  [32]byte
	off  int // consumed bytes of buf
}

// Read implements io.Reader; it never fails.
func (s *Stream) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.off == len(s.buf) {
			var block [40]byte
			copy(block[:32], s.seed[:])
			binary.LittleEndian.PutUint64(block[32:], s.ctr)
			s.buf = sha256.Sum256(block[:])
			s.ctr++
			s.off = 0
		}
		c := copy(p, s.buf[s.off:])
		s.off += c
		p = p[c:]
	}
	return n, nil
}

// Derivation is a seed from which independent labeled Streams are
// derived. Independence per label matters: a cache hit skips the random
// draws the computation would have made, so every draw site uses its
// own substream — consumption at one site can never shift the bytes
// another site sees.
type Derivation struct {
	seed [32]byte
}

// NewDerivation builds a derivation from length-framed seed material.
func NewDerivation(parts ...[]byte) *Derivation {
	return &Derivation{seed: Digest(parts...)}
}

// Stream returns the labeled substream, positioned at its start. Each
// call returns a fresh, independently consumable stream.
func (d *Derivation) Stream(label string) *Stream {
	s := &Stream{seed: Digest(d.seed[:], []byte(label))}
	s.off = len(s.buf) // force a refill on first read
	return s
}

// Uint32 derives a labeled 32-bit value.
func (d *Derivation) Uint32(label string) uint32 {
	var b [4]byte
	_, _ = d.Stream(label).Read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Suite bundles a campaign's crypto-reuse state: the memo engine and
// the determinism seed. A nil Suite (or Deterministic=false) reproduces
// the legacy behavior: fresh crypto/rand draws, no memoization.
type Suite struct {
	Engine        *Engine
	Seed          int64
	Deterministic bool
}

// Exchange derives the per-exchange derivation for the given identity
// parts (the scanner keys it by purpose, remote certificate, policy and
// mode — deliberately not by wave, so an unchanged host replays the
// identical exchange in every wave). Returns nil when the suite is nil
// or non-deterministic.
func (s *Suite) Exchange(parts ...[]byte) *Derivation {
	if s == nil || !s.Deterministic {
		return nil
	}
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], uint64(s.Seed))
	all := make([][]byte, 0, 2+len(parts))
	all = append(all, []byte("uarsa-exchange"), sb[:])
	all = append(all, parts...)
	return NewDerivation(all...)
}

// EngineOrNil returns the suite's engine, tolerating a nil suite.
func (s *Suite) EngineOrNil() *Engine {
	if s == nil {
		return nil
	}
	return s.Engine
}
