package uarsa

import "repro/internal/telemetry"

// PublishTo registers the engine as the registry's "uarsa" snapshot
// source: every telemetry.Snapshot re-exports the engine's own atomic
// hit/miss/evict counters (crypto_<op>_<kind>) and the live cache entry
// count (crypto_entries), so campaign observability is one surface and
// Campaign.CryptoStats becomes just another view of the same numbers.
// The engine keeps sole ownership of its counters — the registry reads
// them only at snapshot time, never on the Get/Put hot path. No-op when
// either side is nil.
func (e *Engine) PublishTo(reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	reg.SetSource("uarsa", func(s *telemetry.Snapshot) {
		st := e.Stats()
		for _, op := range []struct {
			name string
			OpStats
		}{
			{"sign", st.Sign}, {"verify", st.Verify}, {"decrypt", st.Decrypt},
		} {
			s.SetCounter("crypto_"+op.name+"_hits", op.Hits)
			s.SetCounter("crypto_"+op.name+"_misses", op.Misses)
			s.SetCounter("crypto_"+op.name+"_evictions", op.Evictions)
		}
		s.SetGauge("crypto_entries", int64(st.Entries))
	})
}
