package uarsa

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"sync"
	"testing"
)

func testDigest(i int) [32]byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return Digest(b[:])
}

func TestEngineGetPut(t *testing.T) {
	e := NewEngine(0)
	var fp Fingerprint
	fp[0] = 7
	dg := testDigest(1)
	if _, ok := e.Get(OpSign, 1, fp, dg); ok {
		t.Fatal("empty engine reported a hit")
	}
	e.Put(OpSign, 1, fp, dg, []byte("sig"))
	v, ok := e.Get(OpSign, 1, fp, dg)
	if !ok || string(v) != "sig" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Same digest under a different op, scheme or fingerprint must miss.
	if _, ok := e.Get(OpDecrypt, 1, fp, dg); ok {
		t.Error("hit across op kinds")
	}
	if _, ok := e.Get(OpSign, 2, fp, dg); ok {
		t.Error("hit across schemes")
	}
	var fp2 Fingerprint
	fp2[0] = 8
	if _, ok := e.Get(OpSign, 1, fp2, dg); ok {
		t.Error("hit across key fingerprints")
	}
	st := e.Stats()
	if st.Sign.Hits != 1 || st.Sign.Misses != 3 || st.Decrypt.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestEngineBoundedEviction fills a tiny engine far past its budget and
// checks the bound holds, evictions are counted, and recently used
// entries survive rotation.
func TestEngineBoundedEviction(t *testing.T) {
	const maxEntries = 256
	e := NewEngine(maxEntries)
	var fp Fingerprint
	hot := testDigest(0)
	e.Put(OpSign, 0, fp, hot, []byte("hot"))
	for i := 1; i < 64*maxEntries; i++ {
		e.Put(OpDecrypt, 0, fp, testDigest(i), []byte("cold"))
		// Touch the hot entry so generation rotation keeps promoting it.
		if _, ok := e.Get(OpSign, 0, fp, hot); !ok {
			t.Fatalf("hot entry evicted after %d inserts", i)
		}
	}
	st := e.Stats()
	if st.Entries > maxEntries+2*numShards {
		t.Errorf("entries = %d, exceeds budget %d", st.Entries, maxEntries)
	}
	if st.Decrypt.Evictions == 0 {
		t.Error("no evictions counted despite 16k inserts into a 256-entry engine")
	}
	if st.Sign.Hits == 0 {
		t.Error("hot entry never hit")
	}
}

// TestEnginePromotionStats pins the observability contract: promoting
// an entry out of the previous generation must not leave a duplicate
// behind — the entry counts once in Stats.Entries and is never reported
// as an eviction while it is still cached.
func TestEnginePromotionStats(t *testing.T) {
	e := NewEngine(128) // capPerShard = 1: every insert rotates
	var fp Fingerprint
	// Two digests landing in the same shard.
	d1 := testDigest(0)
	d2 := d1
	for i := 1; ; i++ {
		d2 = testDigest(i)
		if e.shardFor(ptrKey(OpSign, 0, fp, d2)) == e.shardFor(ptrKey(OpSign, 0, fp, d1)) {
			break
		}
	}
	e.Put(OpSign, 0, fp, d1, []byte("a"))
	e.Put(OpSign, 0, fp, d2, []byte("b")) // rotates: d1 moves to prev
	if _, ok := e.Get(OpSign, 0, fp, d1); !ok {
		t.Fatal("entry lost after one rotation")
	}
	st := e.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d after promotion, want 2 (no duplicate across generations)", st.Entries)
	}
	if st.Sign.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 — both entries are still cached", st.Sign.Evictions)
	}
}

func ptrKey(op Op, scheme uint8, fp Fingerprint, digest [32]byte) *cacheKey {
	k := makeKey(op, scheme, fp, digest)
	return &k
}

// TestEngineConcurrent exercises the shard locking under the race
// detector: many goroutines mixing hits, misses and rotations.
func TestEngineConcurrent(t *testing.T) {
	e := NewEngine(512)
	var fp Fingerprint
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				dg := testDigest(i % 700)
				if v, ok := e.Get(OpSign, 0, fp, dg); ok {
					if len(v) != 3 {
						t.Errorf("corrupt value %q", v)
						return
					}
					continue
				}
				e.Put(OpSign, 0, fp, dg, []byte("sig"))
			}
		}(g)
	}
	wg.Wait()
	st := e.Stats()
	if st.Sign.Hits == 0 || st.Sign.Misses == 0 {
		t.Errorf("expected mixed hits and misses, got %+v", st.Sign)
	}
}

// TestKeyFingerprintCollisionSafety pins the collision-safety argument:
// distinct keys get distinct fingerprints, the same key yields a stable
// fingerprint, and an entry stored under one key is invisible under
// another even for identical input digests.
func TestKeyFingerprintCollisionSafety(t *testing.T) {
	k1, err := rsa.GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := rsa.GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(0)
	fp1 := e.Fingerprint(&k1.PublicKey)
	fp2 := e.Fingerprint(&k2.PublicKey)
	if fp1 == fp2 {
		t.Fatal("distinct keys share a fingerprint")
	}
	if e.Fingerprint(&k1.PublicKey) != fp1 || KeyFingerprint(&k1.PublicKey) != fp1 {
		t.Error("fingerprint not stable across calls and cache layers")
	}
	// A copy of the same public key (different pointer) must agree.
	cp := k1.PublicKey
	if e.Fingerprint(&cp) != fp1 {
		t.Error("fingerprint depends on pointer identity, not key material")
	}

	dg := Digest([]byte("same input"))
	e.Put(OpSign, 1, fp1, dg, []byte("sig-for-k1"))
	if _, ok := e.Get(OpSign, 1, fp2, dg); ok {
		t.Error("k2 observed k1's cached signature")
	}
	if v, ok := e.Get(OpSign, 1, fp1, dg); !ok || string(v) != "sig-for-k1" {
		t.Errorf("k1 lookup = %q, %v", v, ok)
	}
}

func TestDigestLengthFraming(t *testing.T) {
	a := Digest([]byte("ab"), []byte("c"))
	b := Digest([]byte("a"), []byte("bc"))
	if a == b {
		t.Error("digest ignores part boundaries")
	}
	if Digest([]byte("abc")) == Digest([]byte("abc"), nil) {
		t.Error("digest ignores empty trailing part")
	}
}

func TestNilEngineIsInert(t *testing.T) {
	var e *Engine
	var fp Fingerprint
	if _, ok := e.Get(OpSign, 0, fp, testDigest(0)); ok {
		t.Error("nil engine hit")
	}
	e.Put(OpSign, 0, fp, testDigest(0), nil)
	if st := e.Stats(); st.Entries != 0 {
		t.Error("nil engine holds entries")
	}
}

func TestStreamDeterminism(t *testing.T) {
	d := NewDerivation([]byte("seed"))
	a := make([]byte, 100)
	b := make([]byte, 100)
	_, _ = d.Stream("label").Read(a)
	_, _ = d.Stream("label").Read(b)
	if !bytes.Equal(a, b) {
		t.Error("same label, different bytes")
	}
	// Chunked reads see the identical stream.
	c := make([]byte, 100)
	s := d.Stream("label")
	for i := range c {
		_, _ = s.Read(c[i : i+1])
	}
	if !bytes.Equal(a, c) {
		t.Error("chunked reads diverge from bulk reads")
	}
	_, _ = d.Stream("other").Read(b)
	if bytes.Equal(a, b) {
		t.Error("labels are not independent")
	}
	_, _ = NewDerivation([]byte("seed2")).Stream("label").Read(b)
	if bytes.Equal(a, b) {
		t.Error("seeds are not independent")
	}
	if d.Uint32("id") != d.Uint32("id") {
		t.Error("Uint32 not deterministic")
	}
}

func TestSuiteExchange(t *testing.T) {
	s := &Suite{Engine: NewEngine(0), Seed: 2020, Deterministic: true}
	d1 := s.Exchange([]byte("purpose"), []byte("cert"))
	d2 := s.Exchange([]byte("purpose"), []byte("cert"))
	if d1.seed != d2.seed {
		t.Error("equal exchange parts, different derivations")
	}
	if d1.seed == s.Exchange([]byte("purpose"), []byte("other")).seed {
		t.Error("different certs share a derivation")
	}
	other := &Suite{Engine: nil, Seed: 2021, Deterministic: true}
	if d1.seed == other.Exchange([]byte("purpose"), []byte("cert")).seed {
		t.Error("different campaign seeds share a derivation")
	}
	if (&Suite{Deterministic: false}).Exchange([]byte("x")) != nil {
		t.Error("non-deterministic suite returned a derivation")
	}
	var nilSuite *Suite
	if nilSuite.Exchange([]byte("x")) != nil || nilSuite.EngineOrNil() != nil {
		t.Error("nil suite not inert")
	}
}
