package uarsa

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// TestOpStatsHitRateEdges pins the HitRate contract at its boundaries:
// an idle counter (no traffic at all) and an all-miss counter must both
// report 0, not NaN or a division panic, because the campaign summary
// renders the rate unconditionally.
func TestOpStatsHitRateEdges(t *testing.T) {
	if r := (OpStats{}).HitRate(); r != 0 {
		t.Errorf("idle HitRate = %v, want 0", r)
	}
	if r := (OpStats{Misses: 17}).HitRate(); r != 0 {
		t.Errorf("all-miss HitRate = %v, want 0", r)
	}
	if r := (OpStats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", r)
	}
	if r := (OpStats{Hits: 5}).HitRate(); r != 1 {
		t.Errorf("all-hit HitRate = %v, want 1", r)
	}
	// The engine-level view inherits the same edges.
	var nilEngine *Engine
	if r := nilEngine.Stats().Total().HitRate(); r != 0 {
		t.Errorf("nil engine HitRate = %v, want 0", r)
	}
}

// TestEngineStatsRaceUnderTraffic hammers Stats() — and the telemetry
// snapshot source layered on it — while writers drive sign, verify and
// decrypt traffic. Run under -race in CI. Beyond data-race freedom it
// pins two invariants every intermediate snapshot must satisfy:
// per-op totals only grow, and no counter ever runs backwards between
// consecutive reads.
func TestEngineStatsRaceUnderTraffic(t *testing.T) {
	e := NewEngine(256)
	reg := telemetry.New()
	e.PublishTo(reg)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			op := []Op{OpSign, OpVerify, OpDecrypt}[g%3]
			var fp Fingerprint
			fp[0] = byte(g % 3)
			// A floor of two digest cycles guarantees mixed hits and
			// misses even if the reader finishes before this goroutine is
			// first scheduled; past the floor, run until the reader stops.
			for i := 0; i < 600 || !stop.Load(); i++ {
				dg := testDigest(i % 300)
				if _, ok := e.Get(op, 0, fp, dg); !ok {
					e.Put(op, 0, fp, dg, []byte("val"))
				}
			}
		}(g)
	}

	prev := Stats{}
	monotonic := func(name string, prev, cur OpStats) {
		t.Helper()
		if cur.Hits < prev.Hits || cur.Misses < prev.Misses || cur.Evictions < prev.Evictions {
			t.Errorf("%s counters ran backwards: %+v -> %+v", name, prev, cur)
		}
	}
	for i := 0; i < 2000; i++ {
		cur := e.Stats()
		monotonic("sign", prev.Sign, cur.Sign)
		monotonic("verify", prev.Verify, cur.Verify)
		monotonic("decrypt", prev.Decrypt, cur.Decrypt)
		prev = cur
		// Every other read goes through the registry snapshot path, so
		// the "uarsa" source races against the same traffic.
		if i%2 == 0 {
			s := reg.Snapshot()
			// The snapshot ran strictly after Stats() and every counter is
			// monotonic, so the registry view can only be newer.
			if s.Counters["crypto_sign_hits"]+s.Counters["crypto_sign_misses"] <
				prev.Sign.Hits+prev.Sign.Misses {
				t.Errorf("snapshot ran backwards: %+v vs %+v", s.Counters, prev.Sign)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	final := e.Stats().Total()
	if final.Hits == 0 || final.Misses == 0 {
		t.Errorf("expected mixed traffic, got %+v", final)
	}
	s := reg.Snapshot()
	st := e.Stats()
	if s.Counters["crypto_sign_hits"] != st.Sign.Hits ||
		s.Counters["crypto_verify_misses"] != st.Verify.Misses ||
		s.Counters["crypto_decrypt_hits"] != st.Decrypt.Hits {
		t.Errorf("quiesced snapshot disagrees with Stats(): %v vs %+v", s.Counters, st)
	}
	if s.Gauges["crypto_entries"] != int64(st.Entries) {
		t.Errorf("crypto_entries = %d, want %d", s.Gauges["crypto_entries"], st.Entries)
	}
}
