// Package uarsa is the campaign's memoized asymmetric-crypto engine.
//
// A full-fidelity measurement wave is ≥90 % RSA private-key work: every
// secure-channel attempt is protocol-mandated to sign and block-decrypt
// OPN messages on both sides (see EXPERIMENTS.md, PR 3). The paper's
// own findings make most of that work redundant — one certificate (and
// therefore one key) is re-served by 385 hosts across 24 ASes, and only
// 84 certificates renew across all eight weekly waves — so the
// simulated Internet performs the *same* RSA operations over and over.
//
// The engine memoizes those operations by (operation, scheme, key
// fingerprint, input digest):
//
//   - signing: PKCS#1 v1.5 signatures are deterministic functions of
//     (key, digest); PSS signatures are not, but any stored valid
//     signature verifies, and with the deterministic salt streams below
//     the replayed signature is also bit-identical to a recomputation.
//   - verification: a pure predicate of (key, data, signature). Only
//     successes are cached.
//   - decryption: a pure function of (key, ciphertext).
//
// Encryption is deliberately NOT memoized: its padding must come from a
// random source, so instead the handshake path draws padding (and
// nonces, and PSS salts) from deterministic labeled streams
// (Derivation/Stream) seeded per exchange. An unchanged host therefore
// replays a bit-identical OPN exchange in every wave, and the whole
// exchange — both sides' signs and decrypts — resolves from the cache.
// DESIGN.md §4 records the ownership and determinism rules.
//
// The engine is sharded and bounded: entries live in per-shard
// two-generation maps (a full current generation rotates to "previous";
// a rotation drops the old previous generation), so memory is capped at
// the configured entry budget while hot entries are promoted back into
// the current generation on hit.
package uarsa

import (
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies a memoized operation kind.
type Op uint8

// Memoized operation kinds.
const (
	OpSign Op = iota
	OpVerify
	OpDecrypt
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSign:
		return "sign"
	case OpVerify:
		return "verify"
	case OpDecrypt:
		return "decrypt"
	default:
		return "unknown"
	}
}

// DefaultMaxEntries bounds an engine built with NewEngine(0). A
// full-fidelity eight-wave campaign needs roughly 6 entries per distinct
// (certificate, policy, mode) exchange — a few thousand total — so the
// default leaves an order of magnitude of headroom.
const DefaultMaxEntries = 1 << 16

// numShards spreads lock contention; must be a power of two.
const numShards = 64

// Fingerprint identifies an RSA key: SHA-256 over (e, N).
type Fingerprint [32]byte

// KeyFingerprint computes the key's fingerprint. Hot paths should use
// Engine.Fingerprint, which memoizes per key object with the engine's
// (campaign-scoped) lifetime.
func KeyFingerprint(pub *rsa.PublicKey) Fingerprint {
	h := sha256.New()
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], uint64(pub.E))
	h.Write(eb[:])
	h.Write(pub.N.Bytes())
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}

// Digest hashes a sequence of byte strings with length framing, so
// ("ab","c") and ("a","bc") digest differently.
func Digest(parts ...[]byte) [32]byte {
	h := sha256.New()
	var lb [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lb[:], uint64(len(p)))
		h.Write(lb[:])
		h.Write(p)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// cacheKey is the full memoization identity: op, scheme, key
// fingerprint, input digest. Using a fixed-size array keys the shard
// maps without a per-lookup allocation.
type cacheKey [2 + 32 + 32]byte

//studyvet:hotpath — one cache key per RSA operation; the fixed-size array keeps lookups allocation-free
func makeKey(op Op, scheme uint8, fp Fingerprint, digest [32]byte) cacheKey {
	var k cacheKey
	k[0] = byte(op)
	k[1] = scheme
	copy(k[2:34], fp[:])
	copy(k[34:], digest[:])
	return k
}

// shard is one lock-striped two-generation map.
type shard struct {
	mu sync.Mutex
	//studyvet:owned mu — generation maps mutate only under mu (Get promotion, Put insert, rotation)
	cur, prev map[cacheKey][]byte
}

type opCounters struct {
	hits, misses, evictions atomic.Uint64
}

// Engine is a sharded, bounded, concurrency-safe memo table for RSA
// operations. Values returned by Get are shared and MUST be treated as
// immutable by callers.
type Engine struct {
	shardCap int
	shards   [numShards]shard
	counters [numOps]opCounters

	// fps memoizes fingerprints by public-key pointer, so the hot path
	// does not re-serialize the modulus per operation. Keys in this code
	// base (world host keys, the scanner identity) are never mutated
	// after construction, which is what makes pointer identity a valid
	// cache key; scoping the map to the engine bounds it to the keys one
	// campaign touches and lets it die with the campaign.
	fps sync.Map // *rsa.PublicKey -> Fingerprint
}

// Fingerprint returns the key's fingerprint, memoized per key object
// for the engine's lifetime.
func (e *Engine) Fingerprint(pub *rsa.PublicKey) Fingerprint {
	if e == nil {
		return KeyFingerprint(pub)
	}
	if v, ok := e.fps.Load(pub); ok {
		return v.(Fingerprint)
	}
	fp := KeyFingerprint(pub)
	e.fps.Store(pub, fp)
	return fp
}

// NewEngine returns an engine bounded to roughly maxEntries cached
// results (0 uses DefaultMaxEntries).
func NewEngine(maxEntries int) *Engine {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	capPerShard := maxEntries / (2 * numShards)
	if capPerShard < 1 {
		capPerShard = 1
	}
	e := &Engine{shardCap: capPerShard}
	for i := range e.shards {
		//studyvet:locked — construction: the engine is unpublished, nothing else can hold mu yet
		e.shards[i].cur = make(map[cacheKey][]byte)
	}
	return e
}

func (e *Engine) shardFor(k *cacheKey) *shard {
	// op, scheme and the leading fingerprint bytes are highly repetitive;
	// the digest tail is uniform.
	return &e.shards[int(k[34])&(numShards-1)]
}

// insertLocked adds k→v to the current generation, rotating generations
// when the current one is full. Callers hold sh.mu.
//
//studyvet:locked — callers hold sh.mu (Get and Put lock before calling)
func (e *Engine) insertLocked(sh *shard, k cacheKey, v []byte) {
	if _, ok := sh.cur[k]; ok {
		return
	}
	// A concurrent Put may race a rotation that moved this key to the
	// previous generation (compute started before the rotation); drop
	// that copy so the key never lives in both generations — a duplicate
	// would double-count Stats.Entries and later report a spurious
	// eviction for an entry that survives.
	delete(sh.prev, k)
	if len(sh.cur) >= e.shardCap {
		for old := range sh.prev {
			e.counters[Op(old[0])].evictions.Add(1)
		}
		sh.prev = sh.cur
		sh.cur = make(map[cacheKey][]byte, e.shardCap)
	}
	sh.cur[k] = v
}

// Get looks a memoized result up. The returned slice is shared: callers
// must not modify it.
//
//studyvet:hotpath — every RSA operation in a full-fidelity wave passes through here
func (e *Engine) Get(op Op, scheme uint8, fp Fingerprint, digest [32]byte) ([]byte, bool) {
	if e == nil {
		return nil, false
	}
	k := makeKey(op, scheme, fp, digest)
	sh := e.shardFor(&k)
	sh.mu.Lock()
	v, ok := sh.cur[k]
	if !ok {
		if v, ok = sh.prev[k]; ok {
			// Promote so entries in active use survive the next rotation.
			// The previous-generation copy is removed first: otherwise it
			// would be double-counted in Stats.Entries and counted as an
			// eviction on the next rotation despite surviving.
			delete(sh.prev, k)
			e.insertLocked(sh, k, v)
		}
	}
	sh.mu.Unlock()
	if ok {
		e.counters[op].hits.Add(1)
	} else {
		e.counters[op].misses.Add(1)
	}
	return v, ok
}

// Put stores a computed result. The engine takes ownership of v: the
// caller must not modify it afterwards. Concurrent Puts for the same
// key are benign — with the deterministic handshake streams both
// goroutines computed identical bytes.
//
//studyvet:hotpath — cache-miss completion path
func (e *Engine) Put(op Op, scheme uint8, fp Fingerprint, digest [32]byte, v []byte) {
	if e == nil {
		return
	}
	k := makeKey(op, scheme, fp, digest)
	sh := e.shardFor(&k)
	sh.mu.Lock()
	e.insertLocked(sh, k, v)
	sh.mu.Unlock()
}

// OpStats is one operation kind's counters.
type OpStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (s OpStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats is a point-in-time snapshot of the engine's observability
// counters (surfaced by cmd/measure and the campaign benchmarks).
type Stats struct {
	Sign    OpStats
	Verify  OpStats
	Decrypt OpStats
	Entries int
}

// Total sums the per-op counters.
func (s Stats) Total() OpStats {
	return OpStats{
		Hits:      s.Sign.Hits + s.Verify.Hits + s.Decrypt.Hits,
		Misses:    s.Sign.Misses + s.Verify.Misses + s.Decrypt.Misses,
		Evictions: s.Sign.Evictions + s.Verify.Evictions + s.Decrypt.Evictions,
	}
}

// Stats snapshots the counters and the current entry count.
func (e *Engine) Stats() Stats {
	var st Stats
	if e == nil {
		return st
	}
	ops := [numOps]*OpStats{&st.Sign, &st.Verify, &st.Decrypt}
	for op := Op(0); op < numOps; op++ {
		ops[op].Hits = e.counters[op].hits.Load()
		ops[op].Misses = e.counters[op].misses.Load()
		ops[op].Evictions = e.counters[op].evictions.Load()
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.cur) + len(sh.prev)
		sh.mu.Unlock()
	}
	return st
}

// Epoch is the fixed timestamp deterministic handshakes stamp into OPN
// requests and responses instead of time.Now(), so an unchanged host's
// exchange is bit-identical in every wave. Nothing in the measurement
// pipeline reads OPN timestamps; dataset record times come from the
// wave schedule.
//
//studyvet:entropy-exempt — the sanctioned clock constant itself; a fixed date, not a wall-clock read
var Epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
