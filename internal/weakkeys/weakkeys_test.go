package weakkeys

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func prime(t testing.TB, bits int) *big.Int {
	t.Helper()
	p, err := rand.Prime(rand.Reader, bits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// makeModuli builds n healthy moduli from distinct primes plus optionally
// a pair sharing one prime.
func makeModuli(t testing.TB, n int, planted bool) ([]*big.Int, []int) {
	t.Helper()
	moduli := make([]*big.Int, 0, n+2)
	for i := 0; i < n; i++ {
		moduli = append(moduli, new(big.Int).Mul(prime(t, 64), prime(t, 64)))
	}
	var weak []int
	if planted {
		shared := prime(t, 64)
		a := new(big.Int).Mul(shared, prime(t, 64))
		b := new(big.Int).Mul(shared, prime(t, 64))
		weak = []int{len(moduli), len(moduli) + 1}
		moduli = append(moduli, a, b)
	}
	return moduli, weak
}

func TestBatchGCDFindsPlantedSharedPrime(t *testing.T) {
	moduli, weak := makeModuli(t, 10, true)
	findings := BatchGCD(moduli, false)
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(findings))
	}
	for i, f := range findings {
		if f.Index != weak[i] {
			t.Errorf("finding %d index = %d, want %d", i, f.Index, weak[i])
		}
		if new(big.Int).Mod(moduli[f.Index], f.Factor).Sign() != 0 {
			t.Errorf("factor does not divide modulus %d", f.Index)
		}
		if f.Factor.Cmp(big.NewInt(1)) <= 0 || f.Factor.Cmp(moduli[f.Index]) >= 0 {
			t.Errorf("factor %v is trivial", f.Factor)
		}
	}
}

func TestBatchGCDCleanPopulation(t *testing.T) {
	moduli, _ := makeModuli(t, 16, false)
	if findings := BatchGCD(moduli, false); len(findings) != 0 {
		t.Errorf("clean population produced findings: %v", findings)
	}
}

func TestBatchGCDIdenticalModuliNotWeak(t *testing.T) {
	// Hosts sharing a full certificate share the modulus; that is a
	// reuse problem (§5.3), not a weak-key problem.
	m := new(big.Int).Mul(prime(t, 64), prime(t, 64))
	moduli := []*big.Int{m, new(big.Int).Set(m)}
	if findings := BatchGCD(moduli, false); len(findings) != 0 {
		t.Errorf("identical moduli flagged: %v", findings)
	}
	findings := BatchGCD(moduli, true)
	if len(findings) != 2 {
		t.Errorf("reportDuplicates should flag both copies, got %v", findings)
	}
}

func TestBatchGCDSmallAndDegenerateInputs(t *testing.T) {
	if BatchGCD(nil, false) != nil {
		t.Error("nil input should return nil")
	}
	m := new(big.Int).Mul(prime(t, 64), prime(t, 64))
	if BatchGCD([]*big.Int{m}, false) != nil {
		t.Error("single modulus should return nil")
	}
	// nil and non-positive moduli are skipped, not crashed on.
	moduli := []*big.Int{nil, big.NewInt(0), big.NewInt(-4), m,
		new(big.Int).Mul(prime(t, 64), prime(t, 64))}
	if findings := BatchGCD(moduli, false); len(findings) != 0 {
		t.Errorf("degenerate input produced findings: %v", findings)
	}
}

func TestBatchGCDMatchesPairwise(t *testing.T) {
	// Property check: on random mixed populations both implementations
	// flag the same set of indexes.
	f := func(seed uint8) bool {
		n := 4 + int(seed%8)
		moduli, _ := makeModuli(t, n, seed%2 == 0)
		batch := BatchGCD(moduli, false)
		pair := PairwiseGCD(moduli)
		if len(batch) != len(pair) {
			return false
		}
		for i := range batch {
			if batch[i].Index != pair[i].Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestBatchGCDThreeWaySharedPrime(t *testing.T) {
	shared := prime(t, 64)
	moduli := []*big.Int{
		new(big.Int).Mul(shared, prime(t, 64)),
		new(big.Int).Mul(shared, prime(t, 64)),
		new(big.Int).Mul(shared, prime(t, 64)),
		new(big.Int).Mul(prime(t, 64), prime(t, 64)),
	}
	findings := BatchGCD(moduli, false)
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want 3", len(findings))
	}
	for _, f := range findings {
		if new(big.Int).Mod(moduli[f.Index], f.Factor).Sign() != 0 {
			t.Errorf("factor does not divide modulus %d", f.Index)
		}
	}
}

func BenchmarkBatchGCD128(b *testing.B) {
	moduli, _ := makeModuli(b, 128, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchGCD(moduli, false)
	}
}

func BenchmarkPairwiseGCD128(b *testing.B) {
	moduli, _ := makeModuli(b, 128, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairwiseGCD(moduli)
	}
}
