// Package weakkeys detects RSA moduli that share a prime factor, the
// classic "Mining your Ps and Qs" weakness. The paper (§5.3) pairwise
// checks all collected certificate keys for shared primes and finds none;
// this package implements the scalable batch-GCD algorithm (product tree
// followed by a remainder tree) so the same check runs in
// O(n log n · M(log N)) instead of O(n²) big-number GCDs.
package weakkeys

import (
	"math/big"
	"sort"
)

// Finding reports a modulus with a recovered prime factor.
type Finding struct {
	// Index identifies the modulus in the input slice.
	Index int
	// Factor is a non-trivial factor shared with at least one other
	// modulus.
	Factor *big.Int
}

// BatchGCD returns a Finding for every modulus that shares a prime with
// another modulus in the input. Duplicate moduli (byte-identical) are
// reported against each other only if reportDuplicates is true: identical
// moduli are expected when hosts share a full certificate, which the
// study accounts for separately.
func BatchGCD(moduli []*big.Int, reportDuplicates bool) []Finding {
	n := len(moduli)
	if n < 2 {
		return nil
	}

	// Collapse duplicates so that copies of the same certificate key do
	// not flag each other: GCD(N, N) = N is not a factoring weakness.
	type group struct {
		value   *big.Int
		indexes []int
	}
	byKey := make(map[string]*group, n)
	var groups []*group
	for i, m := range moduli {
		if m == nil || m.Sign() <= 0 {
			continue
		}
		k := string(m.Bytes())
		g, ok := byKey[k]
		if !ok {
			g = &group{value: m}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.indexes = append(g.indexes, i)
	}

	var findings []Finding
	if reportDuplicates {
		for _, g := range groups {
			if len(g.indexes) > 1 {
				for _, idx := range g.indexes {
					findings = append(findings, Finding{Index: idx, Factor: new(big.Int).Set(g.value)})
				}
			}
		}
	}

	if len(groups) >= 2 {
		values := make([]*big.Int, len(groups))
		for i, g := range groups {
			values[i] = g.value
		}
		shared := batchSharedFactors(values)
		for gi, f := range shared {
			if f == nil {
				continue
			}
			for _, idx := range groups[gi].indexes {
				findings = append(findings, Finding{Index: idx, Factor: f})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].Index < findings[j].Index })
	return findings
}

// batchSharedFactors returns, for each distinct modulus, a shared factor
// with the product of all other moduli, or nil.
func batchSharedFactors(values []*big.Int) []*big.Int {
	// Product tree: leaves are the moduli, the root is their product.
	levels := [][]*big.Int{values}
	for len(levels[len(levels)-1]) > 1 {
		prev := levels[len(levels)-1]
		next := make([]*big.Int, (len(prev)+1)/2)
		for i := range next {
			if 2*i+1 < len(prev) {
				next[i] = new(big.Int).Mul(prev[2*i], prev[2*i+1])
			} else {
				next[i] = prev[2*i]
			}
		}
		levels = append(levels, next)
	}

	// Remainder tree: push root mod leaf² down the tree.
	rems := []*big.Int{levels[len(levels)-1][0]}
	for li := len(levels) - 2; li >= 0; li-- {
		level := levels[li]
		next := make([]*big.Int, len(level))
		for i, v := range level {
			sq := new(big.Int).Mul(v, v)
			next[i] = new(big.Int).Mod(rems[i/2], sq)
		}
		rems = next
	}

	out := make([]*big.Int, len(values))
	for i, v := range values {
		q := new(big.Int).Div(rems[i], v)
		g := new(big.Int).GCD(nil, nil, q, v)
		if g.Cmp(big.NewInt(1)) > 0 && g.Cmp(v) < 0 {
			out[i] = g
		}
	}
	return out
}

// PairwiseGCD is the O(n²) reference implementation used to validate
// BatchGCD in tests and to mirror the paper's description ("pairwise
// checking the keys of all received certificates for shared primes").
func PairwiseGCD(moduli []*big.Int) []Finding {
	var findings []Finding
	one := big.NewInt(1)
	seen := make(map[int]*big.Int)
	for i := 0; i < len(moduli); i++ {
		for j := i + 1; j < len(moduli); j++ {
			if moduli[i] == nil || moduli[j] == nil {
				continue
			}
			if moduli[i].Cmp(moduli[j]) == 0 {
				continue // identical modulus, not a shared-prime weakness
			}
			g := new(big.Int).GCD(nil, nil, moduli[i], moduli[j])
			if g.Cmp(one) > 0 {
				if seen[i] == nil {
					seen[i] = g
					findings = append(findings, Finding{Index: i, Factor: g})
				}
				if seen[j] == nil {
					seen[j] = g
					findings = append(findings, Finding{Index: j, Factor: g})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Index < findings[j].Index })
	return findings
}
