package addrspace

import (
	"fmt"
	"math/rand"

	"repro/internal/uamsg"
	"repro/internal/uatypes"
)

// Profile selects the application content of a generated address space.
// The study classifies hosts by their namespaces: industrial namespaces
// (vendor URIs, IEC 61131-3) mark production systems, example-application
// namespaces mark test systems, and hosts with only the standard
// namespace stay unclassified (§5.4, Table 2).
type Profile int

// Profiles.
const (
	// ProfileBare exposes only the standard namespace.
	ProfileBare Profile = iota
	// ProfileProduction exposes vendor and IEC 61131-3 namespaces with
	// process variables and control methods.
	ProfileProduction
	// ProfileTest exposes example-application namespaces.
	ProfileTest
)

// ProductionNamespaces are namespace URIs that mark production systems.
var ProductionNamespaces = []string{
	"http://PLCopen.org/OpcUa/IEC61131-3/",
	"http://bachmann.info/UA/M1",
	"urn:beckhoff.com:TwinCAT:UA:Server",
	"http://wago.com/OpcUa/e!COCKPIT",
	"http://siemens.com/simatic-s7-opcua",
	"urn:weidmueller.com:u-control",
	"http://br-automation.com/OpcUa/PLC",
}

// TestNamespaces are namespace URIs of example applications.
var TestNamespaces = []string{
	"http://examples.freeopcua.github.io",
	"urn:python-opcua:example",
	"urn:open62541.server.sample",
	"urn:prosysopc.com:OPCUA:SimulationServer",
}

// Process-variable names observed in the wild by the paper (§5.4).
var variableNames = []string{
	"m3InflowPerHour", "rSetFillLevel", "rActFillLevel", "bPumpRunning",
	"iMotorSpeedRpm", "rTankPressureBar", "bValveOpen", "iCycleCounter",
	"rTemperatureC", "bAlarmActive", "sBatchId", "rFlowSetpoint",
	"iParkingSlotsFree", "sLicensePlate", "rEnergyMeterKwh", "bGateOpen",
}

var methodNames = []string{
	"AddEndpoint", "RemoveEndpoint", "ResetCounters", "StartPump",
	"StopPump", "AcknowledgeAlarm", "ReloadConfig", "ExportLog",
}

// BuildOptions sizes a generated application address space.
type BuildOptions struct {
	Profile Profile
	// Variables and Methods are the number of application nodes.
	Variables int
	Methods   int
	// Fractions of application nodes the anonymous identity may access.
	AnonReadableFrac   float64
	AnonWritableFrac   float64
	AnonExecutableFrac float64
	// Rand drives deterministic generation; required.
	Rand *rand.Rand
}

// Populate adds application content to a space according to the options.
// It returns the namespace index used for application nodes.
func Populate(s *Space, o BuildOptions) (uint16, error) {
	if o.Rand == nil {
		return 0, fmt.Errorf("addrspace: BuildOptions.Rand is required")
	}
	var ns uint16
	switch o.Profile {
	case ProfileBare:
		// "Standard namespace only" hosts (the study's unclassified
		// class) still expose application nodes, just without any
		// classifiable namespace: use the application-URI namespace
		// (index 1) that every server carries.
		ns = 1
	case ProfileProduction:
		ns = s.AddNamespace(ProductionNamespaces[o.Rand.Intn(len(ProductionNamespaces))])
		// Production systems usually expose IEC 61131-3 types as well.
		s.AddNamespace(ProductionNamespaces[0])
	case ProfileTest:
		ns = s.AddNamespace(TestNamespaces[o.Rand.Intn(len(TestNamespaces))])
	default:
		return 0, fmt.Errorf("addrspace: unknown profile %d", o.Profile)
	}

	app := &Node{
		ID:          uatypes.NewStringNodeID(ns, "Application"),
		Class:       uamsg.NodeClassObject,
		BrowseName:  uatypes.QualifiedName{NamespaceIndex: ns, Name: "Application"},
		DisplayName: "Application",
	}
	if err := s.Add(app); err != nil {
		return ns, err
	}
	if err := s.Link(ObjectsFolder(), app.ID, uamsg.IDOrganizesRefType); err != nil {
		return ns, err
	}

	// Exact-count semantics: with fraction f of n nodes, precisely
	// round(f*n) nodes carry the right. This keeps per-host exposure
	// fractions sharp so the Figure 7 quantiles reproduce without
	// binomial noise. Readable/writable node indexes are interleaved
	// pseudo-randomly via the provided Rand.
	readable := exactCount(o.AnonReadableFrac, o.Variables)
	writable := exactCount(o.AnonWritableFrac, o.Variables)
	executable := exactCount(o.AnonExecutableFrac, o.Methods)
	readOrder := o.Rand.Perm(o.Variables)
	writeOrder := o.Rand.Perm(o.Variables)
	readSet := make(map[int]bool, readable)
	for _, i := range readOrder[:readable] {
		readSet[i] = true
	}
	writeSet := make(map[int]bool, writable)
	for _, i := range writeOrder[:writable] {
		writeSet[i] = true
	}
	for i := 0; i < o.Variables; i++ {
		name := fmt.Sprintf("%s_%d", variableNames[i%len(variableNames)], i)
		anon := uamsg.AccessLevel(0)
		if readSet[i] {
			anon |= uamsg.AccessLevelRead
		}
		if writeSet[i] {
			anon |= uamsg.AccessLevelWrite
		}
		n := &Node{
			ID:          uatypes.NewStringNodeID(ns, name),
			Class:       uamsg.NodeClassVariable,
			BrowseName:  uatypes.QualifiedName{NamespaceIndex: ns, Name: name},
			DisplayName: name,
			Value:       uatypes.DoubleVariant(o.Rand.Float64() * 100),
			AccessLevel: uamsg.AccessLevelRead | uamsg.AccessLevelWrite,
			AnonAccess:  anon,
		}
		if err := s.Add(n); err != nil {
			return ns, err
		}
		if err := s.Link(app.ID, n.ID, uamsg.IDHasComponentRefType); err != nil {
			return ns, err
		}
	}
	for i := 0; i < o.Methods; i++ {
		name := fmt.Sprintf("%s_%d", methodNames[i%len(methodNames)], i)
		n := &Node{
			ID:             uatypes.NewStringNodeID(ns, name),
			Class:          uamsg.NodeClassMethod,
			BrowseName:     uatypes.QualifiedName{NamespaceIndex: ns, Name: name},
			DisplayName:    name,
			Executable:     true,
			AnonExecutable: i < executable,
		}
		if err := s.Add(n); err != nil {
			return ns, err
		}
		if err := s.Link(app.ID, n.ID, uamsg.IDHasComponentRefType); err != nil {
			return ns, err
		}
	}
	return ns, nil
}

// exactCount rounds frac*n to the nearest integer, clamped to [0, n].
func exactCount(frac float64, n int) int {
	c := int(frac*float64(n) + 0.5)
	if c < 0 {
		return 0
	}
	if c > n {
		return n
	}
	return c
}

// Classification is the study's production/test/unclassified label.
type Classification int

// Classifications (§5.4).
const (
	Unclassified Classification = iota
	Production
	Test
)

// String implements fmt.Stringer.
func (c Classification) String() string {
	switch c {
	case Production:
		return "production"
	case Test:
		return "test"
	default:
		return "unclassified"
	}
}

// Classify labels a host by its namespace array, mirroring the paper's
// heuristic: industrial namespaces → production, example namespaces →
// test, standard namespace only → unclassified.
func Classify(namespaces []string) Classification {
	prod := make(map[string]bool, len(ProductionNamespaces))
	for _, ns := range ProductionNamespaces {
		prod[ns] = true
	}
	test := make(map[string]bool, len(TestNamespaces))
	for _, ns := range TestNamespaces {
		test[ns] = true
	}
	cls := Unclassified
	for _, ns := range namespaces {
		if prod[ns] {
			return Production
		}
		if test[ns] {
			cls = Test
		}
	}
	return cls
}
