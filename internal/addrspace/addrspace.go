// Package addrspace models an OPC UA server address space: nodes with
// classes, references, values and per-identity access rights, plus the
// standard Server object every OPC UA server exposes (NamespaceArray,
// ServerStatus, BuildInfo/SoftwareVersion). The study traverses address
// spaces anonymously to measure what unauthenticated clients can read,
// write and execute (Figure 7) and classifies hosts by their namespaces
// (§5.4).
package addrspace

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/uamsg"
	"repro/internal/uatypes"
)

// Identity is the authenticated session user evaluated by access control.
type Identity struct {
	Kind     uamsg.UserTokenType
	UserName string
}

// Anonymous is the unauthenticated identity.
var Anonymous = Identity{Kind: uamsg.UserTokenAnonymous}

// Reference links two nodes.
type Reference struct {
	TypeID    uint32 // numeric reference type id (ns=0)
	Target    uatypes.NodeID
	IsForward bool
}

// Node is one address-space entry.
type Node struct {
	ID          uatypes.NodeID
	Class       uamsg.NodeClass
	BrowseName  uatypes.QualifiedName
	DisplayName string
	Value       uatypes.Variant

	// AccessLevel is the nominal access level of a Variable node;
	// AnonAccess restricts what the anonymous identity may do.
	AccessLevel uamsg.AccessLevel
	AnonAccess  uamsg.AccessLevel

	// Executable marks a Method node as callable; AnonExecutable gates
	// anonymous invocation.
	Executable     bool
	AnonExecutable bool

	refs []Reference
}

// Access returns the effective access level for the identity.
func (n *Node) Access(id Identity) uamsg.AccessLevel {
	if id.Kind == uamsg.UserTokenAnonymous {
		return n.AnonAccess
	}
	return n.AccessLevel
}

// CanExecute returns whether the identity may call this method node.
func (n *Node) CanExecute(id Identity) bool {
	if n.Class != uamsg.NodeClassMethod || !n.Executable {
		return false
	}
	if id.Kind == uamsg.UserTokenAnonymous {
		return n.AnonExecutable
	}
	return true
}

// Space is a thread-safe address space.
type Space struct {
	mu         sync.RWMutex
	nodes      map[string]*Node
	namespaces []string
}

// New returns a space containing the standard skeleton: Root, Objects,
// Types and Views folders and the Server object with NamespaceArray,
// ServerArray, ServerStatus and BuildInfo/SoftwareVersion.
func New(applicationURI, softwareVersion string) *Space {
	s := &Space{
		nodes:      make(map[string]*Node),
		namespaces: []string{"http://opcfoundation.org/UA/", applicationURI},
	}
	root := s.addObject(uamsg.IDRootFolder, "Root")
	objects := s.addObject(uamsg.IDObjectsFolder, "Objects")
	types := s.addObject(uamsg.IDTypesFolder, "Types")
	views := s.addObject(uamsg.IDViewsFolder, "Views")
	s.link(root, objects, uamsg.IDOrganizesRefType)
	s.link(root, types, uamsg.IDOrganizesRefType)
	s.link(root, views, uamsg.IDOrganizesRefType)

	server := s.addObject(uamsg.IDServerObject, "Server")
	s.link(objects, server, uamsg.IDOrganizesRefType)

	nsArray := s.addVariable(uamsg.IDNamespaceArray, "NamespaceArray",
		uatypes.StringArrayVariant(s.namespaces))
	srvArray := s.addVariable(uamsg.IDServerArray, "ServerArray",
		uatypes.StringArrayVariant([]string{applicationURI}))
	status := s.addVariable(uamsg.IDServerStatus, "ServerStatus",
		uatypes.Int32Variant(0)) // 0 = Running
	s.link(server, nsArray, uamsg.IDHasPropertyRefType)
	s.link(server, srvArray, uamsg.IDHasPropertyRefType)
	s.link(server, status, uamsg.IDHasComponentRefType)

	build := s.addVariable(uamsg.IDBuildInfo, "BuildInfo", uatypes.Variant{})
	version := s.addVariable(uamsg.IDSoftwareVersion, "SoftwareVersion",
		uatypes.StringVariant(softwareVersion))
	product := s.addVariable(uamsg.IDProductName, "ProductName",
		uatypes.StringVariant(""))
	current := s.addVariable(uamsg.IDCurrentTime, "CurrentTime",
		uatypes.TimeVariant(time.Time{}))
	s.link(status, build, uamsg.IDHasComponentRefType)
	s.link(status, current, uamsg.IDHasComponentRefType)
	s.link(build, version, uamsg.IDHasComponentRefType)
	s.link(build, product, uamsg.IDHasComponentRefType)
	return s
}

func (s *Space) addObject(id uint32, name string) *Node {
	n := &Node{
		ID:          uatypes.NewNumericNodeID(0, id),
		Class:       uamsg.NodeClassObject,
		BrowseName:  uatypes.QualifiedName{Name: name},
		DisplayName: name,
	}
	s.nodes[n.ID.Key()] = n
	return n
}

func (s *Space) addVariable(id uint32, name string, v uatypes.Variant) *Node {
	n := &Node{
		ID:          uatypes.NewNumericNodeID(0, id),
		Class:       uamsg.NodeClassVariable,
		BrowseName:  uatypes.QualifiedName{Name: name},
		DisplayName: name,
		Value:       v,
		AccessLevel: uamsg.AccessLevelRead,
		AnonAccess:  uamsg.AccessLevelRead,
	}
	s.nodes[n.ID.Key()] = n
	return n
}

func (s *Space) link(parent, child *Node, refType uint32) {
	parent.refs = append(parent.refs, Reference{TypeID: refType, Target: child.ID, IsForward: true})
	child.refs = append(child.refs, Reference{TypeID: refType, Target: parent.ID, IsForward: false})
}

// AddNamespace registers a namespace URI and returns its index. The
// NamespaceArray variable is kept in sync.
func (s *Space) AddNamespace(uri string) uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ns := range s.namespaces {
		if ns == uri {
			return uint16(i)
		}
	}
	s.namespaces = append(s.namespaces, uri)
	if n, ok := s.nodes[uatypes.NewNumericNodeID(0, uamsg.IDNamespaceArray).Key()]; ok {
		n.Value = uatypes.StringArrayVariant(s.namespaces)
	}
	return uint16(len(s.namespaces) - 1)
}

// Namespaces returns a copy of the namespace array.
func (s *Space) Namespaces() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.namespaces...)
}

// Add inserts a node. It returns an error if the id already exists.
func (s *Space) Add(n *Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := n.ID.Key()
	if _, exists := s.nodes[key]; exists {
		return fmt.Errorf("addrspace: node %s already exists", key)
	}
	s.nodes[key] = n
	return nil
}

// Link adds a bidirectional reference between existing nodes.
func (s *Space) Link(parentID, childID uatypes.NodeID, refType uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, ok := s.nodes[parentID.Key()]
	if !ok {
		return fmt.Errorf("addrspace: unknown parent %s", parentID)
	}
	child, ok := s.nodes[childID.Key()]
	if !ok {
		return fmt.Errorf("addrspace: unknown child %s", childID)
	}
	s.link(parent, child, refType)
	return nil
}

// Node looks up a node by id. The key is built in a stack buffer and
// the map[string(bytes)] lookup pattern keeps the hot read/browse path
// from allocating a key string per request.
func (s *Space) Node(id uatypes.NodeID) (*Node, bool) {
	var buf [48]byte
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[string(id.AppendKey(buf[:0]))]
	return n, ok
}

// Len returns the number of nodes.
func (s *Space) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// ObjectsFolder returns the node id of the Objects folder, the root of
// hierarchical traversal.
func ObjectsFolder() uatypes.NodeID {
	return uatypes.NewNumericNodeID(0, uamsg.IDObjectsFolder)
}

// Browse returns the references of a node as wire descriptions. Only
// forward hierarchical traversal is used by the study, but direction is
// honoured for completeness.
func (s *Space) Browse(id uatypes.NodeID, dir uamsg.BrowseDirection, classMask uint32) ([]uamsg.ReferenceDescription, bool) {
	var buf [48]byte
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[string(id.AppendKey(buf[:0]))]
	if !ok {
		return nil, false
	}
	var out []uamsg.ReferenceDescription
	for _, ref := range n.refs {
		switch dir {
		case uamsg.BrowseDirectionForward:
			if !ref.IsForward {
				continue
			}
		case uamsg.BrowseDirectionInverse:
			if ref.IsForward {
				continue
			}
		}
		target, ok := s.nodes[string(ref.Target.AppendKey(buf[:0]))]
		if !ok {
			continue
		}
		if classMask != 0 && classMask&uint32(target.Class) == 0 {
			continue
		}
		out = append(out, uamsg.ReferenceDescription{
			ReferenceTypeID: uatypes.NewNumericNodeID(0, ref.TypeID),
			IsForward:       ref.IsForward,
			NodeID:          uatypes.ExpandedNodeID{NodeID: target.ID},
			BrowseName:      target.BrowseName,
			DisplayName:     uatypes.NewText(target.DisplayName),
			NodeClass:       target.Class,
		})
	}
	return out, true
}

// Stats summarizes anonymous exposure of the space, mirroring what the
// scanner derives by traversal (Figure 7 ground truth).
type Stats struct {
	Variables      int
	AnonReadable   int
	AnonWritable   int
	Methods        int
	AnonExecutable int
}

// AnonymousStats computes exposure counts for the anonymous identity.
func (s *Space) AnonymousStats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	for _, n := range s.nodes {
		switch n.Class {
		case uamsg.NodeClassVariable:
			st.Variables++
			if n.AnonAccess.CanRead() {
				st.AnonReadable++
			}
			if n.AnonAccess.CanWrite() {
				st.AnonWritable++
			}
		case uamsg.NodeClassMethod:
			st.Methods++
			if n.Executable && n.AnonExecutable {
				st.AnonExecutable++
			}
		}
	}
	return st
}
