package addrspace

import (
	mrand "math/rand"
	"testing"

	"repro/internal/uamsg"
	"repro/internal/uatypes"
)

func TestNewStandardSkeleton(t *testing.T) {
	s := New("urn:test:app", "3.2.1")
	for _, id := range []uint32{
		uamsg.IDRootFolder, uamsg.IDObjectsFolder, uamsg.IDServerObject,
		uamsg.IDNamespaceArray, uamsg.IDServerStatus, uamsg.IDSoftwareVersion,
	} {
		if _, ok := s.Node(uatypes.NewNumericNodeID(0, id)); !ok {
			t.Errorf("missing standard node i=%d", id)
		}
	}
	ver, _ := s.Node(uatypes.NewNumericNodeID(0, uamsg.IDSoftwareVersion))
	if ver.Value.Str != "3.2.1" {
		t.Errorf("software version = %q", ver.Value.Str)
	}
	ns := s.Namespaces()
	if len(ns) != 2 || ns[0] != "http://opcfoundation.org/UA/" || ns[1] != "urn:test:app" {
		t.Errorf("namespaces = %v", ns)
	}
	if s.Len() < 10 {
		t.Errorf("skeleton nodes = %d", s.Len())
	}
}

func TestAddNamespaceIdempotent(t *testing.T) {
	s := New("urn:app", "1")
	i1 := s.AddNamespace("urn:x")
	i2 := s.AddNamespace("urn:x")
	if i1 != i2 {
		t.Errorf("namespace registered twice: %d != %d", i1, i2)
	}
	// NamespaceArray variable stays in sync.
	n, _ := s.Node(uatypes.NewNumericNodeID(0, uamsg.IDNamespaceArray))
	arr := n.Value.StringArray()
	if len(arr) != 3 || arr[2] != "urn:x" {
		t.Errorf("namespace array = %v", arr)
	}
}

func TestAddAndLinkValidation(t *testing.T) {
	s := New("urn:app", "1")
	n := &Node{ID: uatypes.NewStringNodeID(1, "x"), Class: uamsg.NodeClassObject}
	if err := s.Add(n); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(n); err == nil {
		t.Error("duplicate Add accepted")
	}
	unknown := uatypes.NewStringNodeID(1, "nope")
	if err := s.Link(unknown, n.ID, uamsg.IDOrganizesRefType); err == nil {
		t.Error("link from unknown parent accepted")
	}
	if err := s.Link(n.ID, unknown, uamsg.IDOrganizesRefType); err == nil {
		t.Error("link to unknown child accepted")
	}
}

func TestBrowseDirections(t *testing.T) {
	s := New("urn:app", "1")
	objects := ObjectsFolder()
	fwd, ok := s.Browse(objects, uamsg.BrowseDirectionForward, 0)
	if !ok || len(fwd) == 0 {
		t.Fatalf("forward browse = %v, %v", fwd, ok)
	}
	inv, _ := s.Browse(objects, uamsg.BrowseDirectionInverse, 0)
	for _, r := range inv {
		if r.IsForward {
			t.Error("inverse browse returned forward reference")
		}
	}
	both, _ := s.Browse(objects, uamsg.BrowseDirectionBoth, 0)
	if len(both) != len(fwd)+len(inv) {
		t.Errorf("both = %d, fwd+inv = %d", len(both), len(fwd)+len(inv))
	}
	// Class mask filters.
	vars, _ := s.Browse(uatypes.NewNumericNodeID(0, uamsg.IDServerObject),
		uamsg.BrowseDirectionForward, uint32(uamsg.NodeClassVariable))
	for _, r := range vars {
		if r.NodeClass != uamsg.NodeClassVariable {
			t.Errorf("mask leak: %v", r.NodeClass)
		}
	}
	if _, ok := s.Browse(uatypes.NewStringNodeID(9, "missing"), uamsg.BrowseDirectionForward, 0); ok {
		t.Error("browse of unknown node reported ok")
	}
}

func TestPopulateExactCounts(t *testing.T) {
	s := New("urn:app", "1")
	ns, err := Populate(s, BuildOptions{
		Profile:            ProfileProduction,
		Variables:          40,
		Methods:            10,
		AnonReadableFrac:   0.5,
		AnonWritableFrac:   0.25,
		AnonExecutableFrac: 0.8,
		Rand:               mrand.New(mrand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ns < 2 {
		t.Errorf("application namespace index = %d", ns)
	}
	st := s.AnonymousStats()
	// Standard skeleton adds 7 readable variables.
	if st.Variables != 47 {
		t.Errorf("variables = %d", st.Variables)
	}
	if got := st.AnonReadable - 7; got != 20 {
		t.Errorf("app readable = %d, want exactly 20", got)
	}
	if st.AnonWritable != 10 {
		t.Errorf("writable = %d, want exactly 10", st.AnonWritable)
	}
	if st.Methods != 10 || st.AnonExecutable != 8 {
		t.Errorf("methods/executable = %d/%d, want 10/8", st.Methods, st.AnonExecutable)
	}
}

func TestPopulateProfiles(t *testing.T) {
	cases := []struct {
		profile Profile
		class   Classification
	}{
		{ProfileProduction, Production},
		{ProfileTest, Test},
		{ProfileBare, Unclassified},
	}
	for _, c := range cases {
		s := New("urn:app:xyz", "1")
		if _, err := Populate(s, BuildOptions{
			Profile: c.profile, Variables: 5, Methods: 1,
			Rand: mrand.New(mrand.NewSource(2)),
		}); err != nil {
			t.Fatal(err)
		}
		if got := Classify(s.Namespaces()); got != c.class {
			t.Errorf("profile %v classified as %v (namespaces %v)", c.profile, got, s.Namespaces())
		}
		// Bare profiles still expose application nodes (the study's
		// unclassified hosts have content, just no vendor namespace).
		if st := s.AnonymousStats(); st.Variables < 5+7 {
			t.Errorf("profile %v variables = %d", c.profile, st.Variables)
		}
	}
}

func TestPopulateValidation(t *testing.T) {
	s := New("urn:app", "1")
	if _, err := Populate(s, BuildOptions{Profile: ProfileProduction}); err == nil {
		t.Error("missing Rand accepted")
	}
	if _, err := Populate(s, BuildOptions{Profile: Profile(99),
		Rand: mrand.New(mrand.NewSource(1))}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestAccessControlPerIdentity(t *testing.T) {
	n := &Node{
		Class:       uamsg.NodeClassVariable,
		AccessLevel: uamsg.AccessLevelRead | uamsg.AccessLevelWrite,
		AnonAccess:  uamsg.AccessLevelRead,
	}
	if !n.Access(Anonymous).CanRead() || n.Access(Anonymous).CanWrite() {
		t.Error("anonymous access wrong")
	}
	user := Identity{Kind: uamsg.UserTokenUserName, UserName: "op"}
	if !n.Access(user).CanWrite() {
		t.Error("authenticated access wrong")
	}

	m := &Node{Class: uamsg.NodeClassMethod, Executable: true, AnonExecutable: false}
	if m.CanExecute(Anonymous) {
		t.Error("anonymous execute should be denied")
	}
	if !m.CanExecute(user) {
		t.Error("authenticated execute should be allowed")
	}
	disabled := &Node{Class: uamsg.NodeClassMethod, Executable: false}
	if disabled.CanExecute(user) {
		t.Error("disabled method executable")
	}
	variable := &Node{Class: uamsg.NodeClassVariable}
	if variable.CanExecute(user) {
		t.Error("variables are not executable")
	}
}

func TestClassifyPrecedence(t *testing.T) {
	// Production namespaces win over test namespaces.
	ns := []string{"http://opcfoundation.org/UA/",
		TestNamespaces[0], ProductionNamespaces[1]}
	if Classify(ns) != Production {
		t.Error("production should dominate")
	}
	if Classify([]string{"http://opcfoundation.org/UA/"}) != Unclassified {
		t.Error("standard-only should be unclassified")
	}
	if Classify(nil) != Unclassified {
		t.Error("empty should be unclassified")
	}
	if Production.String() != "production" || Test.String() != "test" ||
		Unclassified.String() != "unclassified" {
		t.Error("classification strings wrong")
	}
}
