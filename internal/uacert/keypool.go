package uacert

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/uarsa"
)

// KeyPool generates and memoizes RSA keys by size. World construction in
// the simulation needs hundreds of keys; generating them once and indexing
// them deterministically keeps repeated campaign runs affordable while
// every key still has unique, independently generated primes.
type KeyPool struct {
	mu   sync.Mutex
	keys map[int][]*rsa.PrivateKey
	// gen produces the (bits, idx) key. The default draws crypto/rand;
	// deterministic pools derive the key from a seed instead, so that
	// separate processes materializing the same world agree on every
	// key byte (the multi-process shard workers depend on this).
	gen func(bits, idx int) *rsa.PrivateKey
}

// NewKeyPool returns an empty pool drawing keys from crypto/rand.
func NewKeyPool() *KeyPool {
	return &KeyPool{keys: make(map[int][]*rsa.PrivateKey)}
}

// NewDeterministicKeyPool returns a pool whose (bits, idx) key is a pure
// function of seed: any number of processes building the pool from the
// same seed hold byte-identical keys at every index. The simulated
// world's certificate analysis only needs keys that are unique and of
// the right size — it never relies on them being secret — so the
// deterministic derivation trades no fidelity for cross-process
// reproducibility (DESIGN.md §5).
func NewDeterministicKeyPool(seed int64) *KeyPool {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], uint64(seed))
	return &KeyPool{
		keys: make(map[int][]*rsa.PrivateKey),
		gen: func(bits, idx int) *rsa.PrivateKey {
			key, err := DeterministicKey(bits, []byte("uacert-keypool"), sb[:],
				[]byte(strconv.Itoa(bits)+"/"+strconv.Itoa(idx)))
			if err != nil {
				panic(fmt.Sprintf("uacert: deterministic %d-bit key %d: %v", bits, idx, err))
			}
			return key
		},
	}
}

// generate produces one key at the absolute index.
func (p *KeyPool) generate(bits, idx int) *rsa.PrivateKey {
	if p.gen != nil {
		return p.gen(bits, idx)
	}
	//studyvet:entropy-exempt — default generator for ad-hoc pools; deterministic campaigns install p.gen (DeterministicKey above)
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		panic(fmt.Sprintf("uacert: generating %d-bit key: %v", bits, err))
	}
	// Explicit CRT precomputation: every private-key operation in the
	// measurement hot path (OPN sign/decrypt) takes the ~4× CRT fast
	// path. GenerateKey precomputes today, but the wave budget depends
	// on it, so it is asserted here and tested in deploy.
	key.Precompute()
	return key
}

// Key returns the idx-th key of the given bit size, generating keys as
// needed. Two calls with the same (bits, idx) return the same key.
func (p *KeyPool) Key(bits, idx int) *rsa.PrivateKey {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.keys[bits]) <= idx {
		p.keys[bits] = append(p.keys[bits], p.generate(bits, len(p.keys[bits])))
	}
	return p.keys[bits][idx]
}

// Size returns how many keys of the given bit size the pool holds.
func (p *KeyPool) Size(bits int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.keys[bits])
}

// Prewarm generates keys in parallel so that Key(bits, i) for i < n is a
// cache hit. It blocks until all keys exist.
func (p *KeyPool) Prewarm(bits, n int) {
	p.mu.Lock()
	have := len(p.keys[bits])
	p.mu.Unlock()
	if have >= n {
		return
	}
	need := n - have
	keys := make([]*rsa.PrivateKey, need)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Generation is keyed by the absolute pool index, so the
			// parallel fill assigns the same key to the same slot a
			// serial Key() loop would.
			keys[i] = p.generate(bits, have+i)
		}(i)
	}
	wg.Wait()
	p.mu.Lock()
	// Key() calls racing the fill may have grown the slice; only append
	// the indexes still missing (in deterministic mode the overlapping
	// keys are identical anyway).
	if cur := len(p.keys[bits]); cur < n {
		p.keys[bits] = append(p.keys[bits], keys[cur-have:]...)
	}
	p.mu.Unlock()
}

// DeterministicKey derives an RSA key of the given (even) bit size as a
// pure function of the length-framed label parts: every process calling
// it with the same arguments holds the same key. Primes are drawn from
// labeled uarsa streams via the standard prime search, so the key is
// structurally indistinguishable from a crypto/rand one (distinct
// primes, full modulus length, CRT precomputed) — only reproducible.
func DeterministicKey(bits int, parts ...[]byte) (*rsa.PrivateKey, error) {
	if bits < 128 || bits%2 != 0 {
		return nil, fmt.Errorf("uacert: deterministic key size %d unsupported", bits)
	}
	for attempt := 0; ; attempt++ {
		d := uarsa.NewDerivation(append(parts, []byte("attempt-"+strconv.Itoa(attempt)))...)
		p := deterministicPrime(d.Stream("p"), bits/2)
		q := deterministicPrime(d.Stream("q"), bits/2)
		// Retry deterministically on the rare rejects (p == q, e not
		// invertible, product a bit short): the attempt counter is part
		// of the derivation, so every process walks the same sequence.
		key, err := NewKeyFromPrimes(p, q)
		if err != nil || key.N.BitLen() != bits {
			continue
		}
		return key, nil
	}
}

// deterministicPrime is crypto/rand.Prime's candidate search without
// its randutil.MaybeReadByte call — that call consumes 0 or 1 stream
// bytes at the runtime's whim, deliberately defeating the reproducible
// derivation this package needs. Candidates draw from r with the top
// two bits set (so a product of two halves never comes up a bit short)
// and the low bit set; ProbablyPrime(20) is a deterministic predicate
// of the candidate. r never fails (it is a uarsa.Stream).
//
//studyvet:entropy-exempt — the prime search draws only from the labeled uarsa stream passed in; there is no ambient entropy here
func deterministicPrime(r io.Reader, bits int) *big.Int {
	bytes := make([]byte, (bits+7)/8)
	b := uint(bits % 8)
	if b == 0 {
		b = 8
	}
	p := new(big.Int)
	for {
		_, _ = io.ReadFull(r, bytes)
		bytes[0] &= uint8(int(1<<b) - 1)
		if b >= 2 {
			bytes[0] |= 3 << (b - 2)
		} else {
			// b == 1: the second-highest bit lives in the next byte.
			bytes[0] |= 1
			if len(bytes) > 1 {
				bytes[1] |= 0x80
			}
		}
		bytes[len(bytes)-1] |= 1
		p.SetBytes(bytes)
		if p.ProbablyPrime(20) {
			return p
		}
	}
}

// DeterministicSerial derives a positive 64-bit certificate serial as a
// pure function of the label parts, mirroring the size Generate draws
// from crypto/rand when Options.SerialNumber is nil.
func DeterministicSerial(parts ...[]byte) *big.Int {
	var b [8]byte
	_, _ = uarsa.NewDerivation(parts...).Stream("serial").Read(b[:])
	return new(big.Int).SetBytes(b[:])
}

// NewKeyFromPrimes constructs an RSA private key from explicit primes.
// The study uses it to inject shared-prime weak keys and verify that the
// batch-GCD detector finds them (§5.3 of the paper).
func NewKeyFromPrimes(p, q *big.Int) (*rsa.PrivateKey, error) {
	if p == nil || q == nil || p.Cmp(q) == 0 {
		return nil, errors.New("uacert: need two distinct primes")
	}
	one := big.NewInt(1)
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
	e := big.NewInt(65537)
	d := new(big.Int).ModInverse(e, phi)
	if d == nil {
		return nil, errors.New("uacert: e not invertible modulo phi(n)")
	}
	key := &rsa.PrivateKey{
		PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
		D:         d,
		Primes:    []*big.Int{new(big.Int).Set(p), new(big.Int).Set(q)},
	}
	key.Precompute()
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("uacert: key validation: %w", err)
	}
	return key, nil
}

// GeneratePrime returns a random prime of the given bit size.
//
//studyvet:entropy-exempt — random by contract; weak-key injection on the deterministic path uses deterministicPrime instead
func GeneratePrime(bits int) (*big.Int, error) {
	return rand.Prime(rand.Reader, bits)
}
