package uacert

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sync"
)

// KeyPool generates and memoizes RSA keys by size. World construction in
// the simulation needs hundreds of keys; generating them once and indexing
// them deterministically keeps repeated campaign runs affordable while
// every key still has unique, independently generated primes.
type KeyPool struct {
	mu   sync.Mutex
	keys map[int][]*rsa.PrivateKey
}

// NewKeyPool returns an empty pool.
func NewKeyPool() *KeyPool {
	return &KeyPool{keys: make(map[int][]*rsa.PrivateKey)}
}

// Key returns the idx-th key of the given bit size, generating keys as
// needed. Two calls with the same (bits, idx) return the same key.
func (p *KeyPool) Key(bits, idx int) *rsa.PrivateKey {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.keys[bits]) <= idx {
		key, err := rsa.GenerateKey(rand.Reader, bits)
		if err != nil {
			panic(fmt.Sprintf("uacert: generating %d-bit key: %v", bits, err))
		}
		// Explicit CRT precomputation: every private-key operation in the
		// measurement hot path (OPN sign/decrypt) takes the ~4× CRT fast
		// path. GenerateKey precomputes today, but the wave budget depends
		// on it, so it is asserted here and tested in deploy.
		key.Precompute()
		p.keys[bits] = append(p.keys[bits], key)
	}
	return p.keys[bits][idx]
}

// Size returns how many keys of the given bit size the pool holds.
func (p *KeyPool) Size(bits int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.keys[bits])
}

// Prewarm generates keys in parallel so that Key(bits, i) for i < n is a
// cache hit. It blocks until all keys exist.
func (p *KeyPool) Prewarm(bits, n int) {
	p.mu.Lock()
	have := len(p.keys[bits])
	p.mu.Unlock()
	if have >= n {
		return
	}
	need := n - have
	keys := make([]*rsa.PrivateKey, need)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			key, err := rsa.GenerateKey(rand.Reader, bits)
			if err != nil {
				panic(fmt.Sprintf("uacert: generating %d-bit key: %v", bits, err))
			}
			key.Precompute() // CRT fast path; see Key
			keys[i] = key
		}(i)
	}
	wg.Wait()
	p.mu.Lock()
	p.keys[bits] = append(p.keys[bits], keys...)
	p.mu.Unlock()
}

// NewKeyFromPrimes constructs an RSA private key from explicit primes.
// The study uses it to inject shared-prime weak keys and verify that the
// batch-GCD detector finds them (§5.3 of the paper).
func NewKeyFromPrimes(p, q *big.Int) (*rsa.PrivateKey, error) {
	if p == nil || q == nil || p.Cmp(q) == 0 {
		return nil, errors.New("uacert: need two distinct primes")
	}
	one := big.NewInt(1)
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
	e := big.NewInt(65537)
	d := new(big.Int).ModInverse(e, phi)
	if d == nil {
		return nil, errors.New("uacert: e not invertible modulo phi(n)")
	}
	key := &rsa.PrivateKey{
		PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
		D:         d,
		Primes:    []*big.Int{new(big.Int).Set(p), new(big.Int).Set(q)},
	}
	key.Precompute()
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("uacert: key validation: %w", err)
	}
	return key, nil
}

// GeneratePrime returns a random prime of the given bit size.
func GeneratePrime(bits int) (*big.Int, error) {
	return rand.Prime(rand.Reader, bits)
}
