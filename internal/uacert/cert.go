// Package uacert builds and parses X.509v3 RSA certificates with its own
// DER codec. The measurement study needs certificates signed with MD5 and
// SHA-1 (Figure 4 of the paper), which crypto/x509 refuses to create, so
// certificate construction is implemented here directly on encoding/asn1.
//
// Only the certificate shape used by OPC UA appliances is supported:
// self-signed (or simple CA-signed) RSA certificates with a subject
// common name, an organization, and a subjectAltName URI carrying the
// OPC UA ApplicationURI.
package uacert

import (
	"crypto"
	"crypto/md5"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509/pkix"
	"encoding/asn1"
	"errors"
	"fmt"
	"math/big"
	"time"
)

// HashAlg identifies the hash function inside a certificate signature.
type HashAlg int

// Supported signature hash algorithms.
const (
	HashUnknown HashAlg = iota
	HashMD5
	HashSHA1
	HashSHA256
)

// String implements fmt.Stringer.
func (h HashAlg) String() string {
	switch h {
	case HashMD5:
		return "MD5"
	case HashSHA1:
		return "SHA-1"
	case HashSHA256:
		return "SHA-256"
	default:
		return "unknown"
	}
}

// CryptoHash maps the algorithm to the stdlib crypto.Hash.
func (h HashAlg) CryptoHash() crypto.Hash {
	switch h {
	case HashMD5:
		return crypto.MD5
	case HashSHA1:
		return crypto.SHA1
	case HashSHA256:
		return crypto.SHA256
	default:
		return 0
	}
}

// Signature algorithm OIDs (PKCS#1).
var (
	oidMD5WithRSA     = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 4}
	oidSHA1WithRSA    = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 5}
	oidSHA256WithRSA  = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 11}
	oidRSAEncryption  = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 1}
	oidSubjectAltName = asn1.ObjectIdentifier{2, 5, 29, 17}
)

func sigOID(h HashAlg) (asn1.ObjectIdentifier, error) {
	switch h {
	case HashMD5:
		return oidMD5WithRSA, nil
	case HashSHA1:
		return oidSHA1WithRSA, nil
	case HashSHA256:
		return oidSHA256WithRSA, nil
	default:
		return nil, fmt.Errorf("uacert: unsupported signature hash %v", h)
	}
}

func hashFromOID(oid asn1.ObjectIdentifier) HashAlg {
	switch {
	case oid.Equal(oidMD5WithRSA):
		return HashMD5
	case oid.Equal(oidSHA1WithRSA):
		return HashSHA1
	case oid.Equal(oidSHA256WithRSA):
		return HashSHA256
	default:
		return HashUnknown
	}
}

// ASN.1 template structures mirroring RFC 5280.

type algorithmIdentifier struct {
	Algorithm  asn1.ObjectIdentifier
	Parameters asn1.RawValue `asn1:"optional"`
}

type validity struct {
	NotBefore, NotAfter time.Time
}

type subjectPublicKeyInfo struct {
	Algorithm algorithmIdentifier
	PublicKey asn1.BitString
}

type tbsCertificate struct {
	Raw          asn1.RawContent
	Version      int `asn1:"optional,explicit,default:0,tag:0"`
	SerialNumber *big.Int
	Signature    algorithmIdentifier
	Issuer       asn1.RawValue
	Validity     validity
	Subject      asn1.RawValue
	PublicKey    subjectPublicKeyInfo
	Extensions   []pkix.Extension `asn1:"optional,explicit,tag:3"`
}

type certificate struct {
	TBS            tbsCertificate
	SignatureAlg   algorithmIdentifier
	SignatureValue asn1.BitString
}

type rsaPublicKeyASN struct {
	N *big.Int
	E int
}

// Certificate is a parsed OPC UA application-instance certificate.
type Certificate struct {
	Raw            []byte
	SerialNumber   *big.Int
	SubjectCN      string
	SubjectOrg     string
	IssuerCN       string
	IssuerOrg      string
	NotBefore      time.Time
	NotAfter       time.Time
	SignatureHash  HashAlg
	PublicKey      *rsa.PublicKey
	ApplicationURI string

	rawIssuer  []byte
	rawSubject []byte
	signature  []byte
	rawTBS     []byte
}

// Options configures certificate generation.
type Options struct {
	CommonName     string
	Organization   string
	ApplicationURI string
	SignatureHash  HashAlg
	NotBefore      time.Time
	NotAfter       time.Time
	SerialNumber   *big.Int // random if nil
	// Issuer defaults to the subject (self-signed). If IssuerKey is set,
	// the certificate is signed by the issuer instead.
	IssuerCN  string
	IssuerOrg string
	IssuerKey *rsa.PrivateKey
}

func marshalName(cn, org string) (asn1.RawValue, error) {
	name := pkix.Name{CommonName: cn}
	if org != "" {
		name.Organization = []string{org}
	}
	der, err := asn1.Marshal(name.ToRDNSequence())
	if err != nil {
		return asn1.RawValue{}, err
	}
	return asn1.RawValue{FullBytes: der}, nil
}

func parseName(raw []byte) (cn, org string, err error) {
	var rdns pkix.RDNSequence
	if _, err = asn1.Unmarshal(raw, &rdns); err != nil {
		return "", "", err
	}
	var name pkix.Name
	name.FillFromRDNSequence(&rdns)
	if len(name.Organization) > 0 {
		org = name.Organization[0]
	}
	return name.CommonName, org, nil
}

func marshalSANURI(uri string) (pkix.Extension, error) {
	inner, err := asn1.Marshal(asn1.RawValue{
		Class: asn1.ClassContextSpecific, Tag: 6, Bytes: []byte(uri),
	})
	if err != nil {
		return pkix.Extension{}, err
	}
	outer, err := asn1.Marshal(asn1.RawValue{
		Class: asn1.ClassUniversal, Tag: asn1.TagSequence,
		IsCompound: true, Bytes: inner,
	})
	if err != nil {
		return pkix.Extension{}, err
	}
	return pkix.Extension{Id: oidSubjectAltName, Value: outer}, nil
}

func parseSANURI(ext []byte) string {
	var outer asn1.RawValue
	if _, err := asn1.Unmarshal(ext, &outer); err != nil {
		return ""
	}
	rest := outer.Bytes
	for len(rest) > 0 {
		var v asn1.RawValue
		var err error
		rest, err = asn1.Unmarshal(rest, &v)
		if err != nil {
			return ""
		}
		if v.Class == asn1.ClassContextSpecific && v.Tag == 6 {
			return string(v.Bytes)
		}
	}
	return ""
}

// Generate creates a certificate for the given RSA key.
func Generate(key *rsa.PrivateKey, opts Options) (*Certificate, error) {
	if key == nil {
		return nil, errors.New("uacert: nil key")
	}
	if opts.SignatureHash == HashUnknown {
		opts.SignatureHash = HashSHA256
	}
	sigAlgOID, err := sigOID(opts.SignatureHash)
	if err != nil {
		return nil, err
	}
	serial := opts.SerialNumber
	if serial == nil {
		//studyvet:entropy-exempt — fallback for ad-hoc certs; campaign certs always pass a derived SerialNumber
		serial, err = rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 64))
		if err != nil {
			return nil, fmt.Errorf("uacert: serial: %w", err)
		}
	}
	if opts.NotBefore.IsZero() {
		opts.NotBefore = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if opts.NotAfter.IsZero() {
		opts.NotAfter = opts.NotBefore.AddDate(20, 0, 0)
	}

	subject, err := marshalName(opts.CommonName, opts.Organization)
	if err != nil {
		return nil, fmt.Errorf("uacert: subject: %w", err)
	}
	issuerCN, issuerOrg := opts.CommonName, opts.Organization
	if opts.IssuerCN != "" {
		issuerCN, issuerOrg = opts.IssuerCN, opts.IssuerOrg
	}
	issuer, err := marshalName(issuerCN, issuerOrg)
	if err != nil {
		return nil, fmt.Errorf("uacert: issuer: %w", err)
	}

	pubDER, err := asn1.Marshal(rsaPublicKeyASN{N: key.N, E: key.E})
	if err != nil {
		return nil, fmt.Errorf("uacert: public key: %w", err)
	}

	var exts []pkix.Extension
	if opts.ApplicationURI != "" {
		san, err := marshalSANURI(opts.ApplicationURI)
		if err != nil {
			return nil, fmt.Errorf("uacert: SAN: %w", err)
		}
		exts = append(exts, san)
	}

	nullParams := asn1.RawValue{Tag: asn1.TagNull}
	tbs := tbsCertificate{
		Version:      2, // X.509v3
		SerialNumber: serial,
		Signature:    algorithmIdentifier{Algorithm: sigAlgOID, Parameters: nullParams},
		Issuer:       issuer,
		Validity:     validity{NotBefore: opts.NotBefore.UTC(), NotAfter: opts.NotAfter.UTC()},
		Subject:      subject,
		PublicKey: subjectPublicKeyInfo{
			Algorithm: algorithmIdentifier{Algorithm: oidRSAEncryption, Parameters: nullParams},
			PublicKey: asn1.BitString{Bytes: pubDER, BitLength: len(pubDER) * 8},
		},
		Extensions: exts,
	}
	tbsDER, err := asn1.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("uacert: TBS: %w", err)
	}

	signKey := key
	if opts.IssuerKey != nil {
		signKey = opts.IssuerKey
	}
	h := opts.SignatureHash.CryptoHash().New()
	h.Write(tbsDER)
	//studyvet:entropy-exempt — PKCS#1 v1.5 signing is deterministic; the rand.Reader argument is unused by the stdlib for signatures
	sig, err := rsa.SignPKCS1v15(rand.Reader, signKey, opts.SignatureHash.CryptoHash(), h.Sum(nil))
	if err != nil {
		return nil, fmt.Errorf("uacert: sign: %w", err)
	}

	cert := certificate{
		TBS:            tbsCertificate{Raw: tbsDER},
		SignatureAlg:   algorithmIdentifier{Algorithm: sigAlgOID, Parameters: nullParams},
		SignatureValue: asn1.BitString{Bytes: sig, BitLength: len(sig) * 8},
	}
	der, err := asn1.Marshal(cert)
	if err != nil {
		return nil, fmt.Errorf("uacert: certificate: %w", err)
	}
	return Parse(der)
}

// Parse decodes a DER certificate.
func Parse(der []byte) (*Certificate, error) {
	var cert certificate
	rest, err := asn1.Unmarshal(der, &cert)
	if err != nil {
		return nil, fmt.Errorf("uacert: parse: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("uacert: trailing bytes after certificate")
	}
	var pub rsaPublicKeyASN
	if _, err := asn1.Unmarshal(cert.TBS.PublicKey.PublicKey.Bytes, &pub); err != nil {
		return nil, fmt.Errorf("uacert: public key: %w", err)
	}
	if pub.N == nil || pub.N.Sign() <= 0 || pub.E <= 0 {
		return nil, errors.New("uacert: invalid RSA public key")
	}

	c := &Certificate{
		Raw:           append([]byte(nil), der...),
		SerialNumber:  cert.TBS.SerialNumber,
		NotBefore:     cert.TBS.Validity.NotBefore,
		NotAfter:      cert.TBS.Validity.NotAfter,
		SignatureHash: hashFromOID(cert.SignatureAlg.Algorithm),
		PublicKey:     &rsa.PublicKey{N: pub.N, E: pub.E},
		rawIssuer:     cert.TBS.Issuer.FullBytes,
		rawSubject:    cert.TBS.Subject.FullBytes,
		signature:     cert.SignatureValue.Bytes,
		rawTBS:        cert.TBS.Raw,
	}
	if c.SubjectCN, c.SubjectOrg, err = parseName(c.rawSubject); err != nil {
		return nil, fmt.Errorf("uacert: subject: %w", err)
	}
	if c.IssuerCN, c.IssuerOrg, err = parseName(c.rawIssuer); err != nil {
		return nil, fmt.Errorf("uacert: issuer: %w", err)
	}
	for _, ext := range cert.TBS.Extensions {
		if ext.Id.Equal(oidSubjectAltName) {
			c.ApplicationURI = parseSANURI(ext.Value)
		}
	}
	return c, nil
}

// KeyBits returns the RSA modulus size in bits.
func (c *Certificate) KeyBits() int { return c.PublicKey.N.BitLen() }

// SelfSigned reports whether issuer and subject are byte-identical.
func (c *Certificate) SelfSigned() bool {
	return string(c.rawIssuer) == string(c.rawSubject)
}

// Thumbprint returns the SHA-1 hash of the DER encoding, the certificate
// identity used by OPC UA security headers and by the reuse analysis.
func (c *Certificate) Thumbprint() []byte {
	sum := sha1.Sum(c.Raw)
	return sum[:]
}

// ThumbprintHex returns the hex thumbprint, the key used to cluster
// certificate reuse across hosts.
func (c *Certificate) ThumbprintHex() string {
	return fmt.Sprintf("%x", c.Thumbprint())
}

// VerifySignatureFrom checks the certificate signature against the given
// public key (use c.PublicKey for self-signed certificates).
func (c *Certificate) VerifySignatureFrom(pub *rsa.PublicKey) error {
	ch := c.SignatureHash.CryptoHash()
	if ch == 0 {
		return errors.New("uacert: unknown signature algorithm")
	}
	var digest []byte
	switch c.SignatureHash {
	case HashMD5:
		s := md5.Sum(c.rawTBS)
		digest = s[:]
	case HashSHA1:
		s := sha1.Sum(c.rawTBS)
		digest = s[:]
	case HashSHA256:
		s := sha256.Sum256(c.rawTBS)
		digest = s[:]
	}
	return rsa.VerifyPKCS1v15(pub, ch, digest, c.signature)
}

// ValidAt reports whether t falls within the validity window.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}
