package uacert

import (
	"crypto/sha1"
	"sync"
	"sync/atomic"
)

// parseCache memoizes successful Parse results keyed by the SHA-1 of
// the DER encoding — the same identity OPC UA itself uses for
// certificate thumbprints. The paper's deployments reuse certificates
// heavily (Figure 5's largest cluster serves one certificate from 385
// hosts), and the scanner presents a single client certificate to every
// server, so almost every parse in a measurement wave is a repeat.
var parseCache sync.Map // [sha1.Size]byte -> *Certificate

// parseCacheLimit caps the number of memoized certificates: a real
// listener (cmd/uaserverd) parses whatever certificate a client
// presents, and an unbounded table would let a peer with endless
// distinct certificates grow it into a memory-exhaustion vector. The
// cap is far above the simulated population (~1.2k distinct
// certificates), so measurement campaigns always hit the fast path;
// past it, new certificates are parsed uncached. A var so tests can
// exercise the bound without minting thousands of certificates.
var parseCacheLimit int64 = 4096

var parseCacheSize atomic.Int64

// ParseCached is Parse with memoization. The returned *Certificate is
// shared across callers and must be treated as immutable (Parse already
// returns a fully materialized value that nothing mutates afterwards).
// Parse failures are not cached; malformed input stays cheap to reject
// and never poisons the table.
func ParseCached(der []byte) (*Certificate, error) {
	key := sha1.Sum(der)
	if v, ok := parseCache.Load(key); ok {
		return v.(*Certificate), nil
	}
	c, err := Parse(der)
	if err != nil {
		return nil, err
	}
	if parseCacheSize.Load() >= parseCacheLimit {
		return c, nil
	}
	// Concurrent misses may both parse; LoadOrStore keeps the first so
	// every caller observes one canonical instance per thumbprint. The
	// size check above may overshoot by a few in-flight entries, which
	// is fine — the limit is a bound on growth, not an exact quota.
	if v, loaded := parseCache.LoadOrStore(key, c); loaded {
		return v.(*Certificate), nil
	}
	parseCacheSize.Add(1)
	return c, nil
}
