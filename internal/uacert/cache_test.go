package uacert

import (
	"reflect"
	"testing"
)

// TestParseCachedMatchesParse pins the memoized parse against the
// uncached one — same fields, errors on the same inputs — and that
// repeated parses of the same DER (even through a different backing
// slice) return one shared instance.
func TestParseCachedMatchesParse(t *testing.T) {
	key := testKey(t, 0)
	cert, err := Generate(key, Options{
		CommonName:     "cache test",
		Organization:   "Test Org",
		ApplicationURI: "urn:test:cache",
		SignatureHash:  HashSHA1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Parse(cert.Raw)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := ParseCached(cert.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Error("ParseCached result differs from Parse")
	}
	again, err := ParseCached(append([]byte(nil), cert.Raw...))
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Error("repeated ParseCached did not return the shared instance")
	}
	if _, err := ParseCached([]byte("not DER")); err == nil {
		t.Error("ParseCached accepted garbage")
	}
	// Failures are not cached: the same garbage fails again.
	if _, err := ParseCached([]byte("not DER")); err == nil {
		t.Error("ParseCached accepted garbage on the second call")
	}
}

// TestParseCacheBounded pins the memoization cap: past parseCacheLimit
// new certificates still parse correctly but are no longer retained,
// so a peer presenting endless distinct certificates cannot grow the
// table without bound.
func TestParseCacheBounded(t *testing.T) {
	key := testKey(t, 1)
	mint := func(cn string) []byte {
		t.Helper()
		cert, err := Generate(key, Options{CommonName: cn})
		if err != nil {
			t.Fatal(err)
		}
		return cert.Raw
	}
	limit := parseCacheLimit
	defer func() { parseCacheLimit = limit }()
	parseCacheLimit = parseCacheSize.Load() // table is "full" right now

	capped := mint("past the cap")
	a, err := ParseCached(capped)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCached(capped)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("certificate was cached past the limit")
	}
	if a.SubjectCN != "past the cap" || b.SubjectCN != a.SubjectCN {
		t.Error("uncached parse returned wrong certificate")
	}

	parseCacheLimit = parseCacheSize.Load() + 1
	again := mint("under the cap again")
	c1, err := ParseCached(again)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseCached(again)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("certificate under the raised limit was not cached")
	}
}

// TestDeterministicKeyReproducible pins the property the multi-process
// shard workers depend on: the same label parts always derive the same
// key, different parts derive different keys, and two deterministic
// pools built from one seed agree at every index (including through a
// parallel Prewarm).
func TestDeterministicKeyReproducible(t *testing.T) {
	a, err := DeterministicKey(512, []byte("test"), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeterministicKey(512, []byte("test"), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(b.N) != 0 || a.D.Cmp(b.D) != 0 {
		t.Error("same parts derived different keys")
	}
	if a.N.BitLen() != 512 {
		t.Errorf("modulus = %d bits, want 512", a.N.BitLen())
	}
	if err := a.Validate(); err != nil {
		t.Errorf("derived key invalid: %v", err)
	}
	c, err := DeterministicKey(512, []byte("test"), []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(c.N) == 0 {
		t.Error("different parts derived the same key")
	}

	p1, p2 := NewDeterministicKeyPool(2020), NewDeterministicKeyPool(2020)
	p1.Prewarm(512, 4)
	for i := 0; i < 4; i++ {
		if p1.Key(512, i).N.Cmp(p2.Key(512, i).N) != 0 {
			t.Errorf("pool key (512, %d) differs between processes", i)
		}
	}
	if p1.Key(512, 0).N.Cmp(p1.Key(512, 1).N) == 0 {
		t.Error("pool reused a key across indexes")
	}
	if NewDeterministicKeyPool(2021).Key(512, 0).N.Cmp(p1.Key(512, 0).N) == 0 {
		t.Error("different seeds derived the same key")
	}

	s1 := DeterministicSerial([]byte("host"), []byte("7"))
	s2 := DeterministicSerial([]byte("host"), []byte("7"))
	if s1.Cmp(s2) != 0 || s1.Sign() < 0 || s1.BitLen() > 64 {
		t.Errorf("serials: %v vs %v", s1, s2)
	}
}
