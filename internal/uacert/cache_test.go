package uacert

import (
	"reflect"
	"testing"
)

// TestParseCachedMatchesParse pins the memoized parse against the
// uncached one — same fields, errors on the same inputs — and that
// repeated parses of the same DER (even through a different backing
// slice) return one shared instance.
func TestParseCachedMatchesParse(t *testing.T) {
	key := testKey(t, 0)
	cert, err := Generate(key, Options{
		CommonName:     "cache test",
		Organization:   "Test Org",
		ApplicationURI: "urn:test:cache",
		SignatureHash:  HashSHA1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Parse(cert.Raw)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := ParseCached(cert.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Error("ParseCached result differs from Parse")
	}
	again, err := ParseCached(append([]byte(nil), cert.Raw...))
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Error("repeated ParseCached did not return the shared instance")
	}
	if _, err := ParseCached([]byte("not DER")); err == nil {
		t.Error("ParseCached accepted garbage")
	}
	// Failures are not cached: the same garbage fails again.
	if _, err := ParseCached([]byte("not DER")); err == nil {
		t.Error("ParseCached accepted garbage on the second call")
	}
}

// TestParseCacheBounded pins the memoization cap: past parseCacheLimit
// new certificates still parse correctly but are no longer retained,
// so a peer presenting endless distinct certificates cannot grow the
// table without bound.
func TestParseCacheBounded(t *testing.T) {
	key := testKey(t, 1)
	mint := func(cn string) []byte {
		t.Helper()
		cert, err := Generate(key, Options{CommonName: cn})
		if err != nil {
			t.Fatal(err)
		}
		return cert.Raw
	}
	limit := parseCacheLimit
	defer func() { parseCacheLimit = limit }()
	parseCacheLimit = parseCacheSize.Load() // table is "full" right now

	capped := mint("past the cap")
	a, err := ParseCached(capped)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCached(capped)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("certificate was cached past the limit")
	}
	if a.SubjectCN != "past the cap" || b.SubjectCN != a.SubjectCN {
		t.Error("uncached parse returned wrong certificate")
	}

	parseCacheLimit = parseCacheSize.Load() + 1
	again := mint("under the cap again")
	c1, err := ParseCached(again)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseCached(again)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("certificate under the raised limit was not cached")
	}
}
