package uacert

import (
	"bytes"
	"crypto/rsa"
	"crypto/x509"
	"math/big"
	"sync"
	"testing"
	"time"
)

var (
	testPoolOnce sync.Once
	testPool     *KeyPool
)

// testKey returns a shared small test key; generating fresh RSA keys in
// every test would dominate the suite's runtime.
func testKey(t testing.TB, idx int) *rsa.PrivateKey {
	t.Helper()
	testPoolOnce.Do(func() {
		testPool = NewKeyPool()
		testPool.Prewarm(512, 2)
	})
	return testPool.Key(512, idx)
}

func TestGenerateAndParseRoundTrip(t *testing.T) {
	key := testKey(t, 0)
	opts := Options{
		CommonName:     "M1 Controller",
		Organization:   "Bachmann electronic",
		ApplicationURI: "urn:bachmann:m1:0001",
		SignatureHash:  HashSHA256,
		NotBefore:      time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:       time.Date(2039, 6, 1, 0, 0, 0, 0, time.UTC),
		SerialNumber:   big.NewInt(12345),
	}
	cert, err := Generate(key, opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if cert.SubjectCN != opts.CommonName || cert.SubjectOrg != opts.Organization {
		t.Errorf("subject = %q/%q", cert.SubjectCN, cert.SubjectOrg)
	}
	if cert.IssuerCN != opts.CommonName {
		t.Errorf("issuer = %q, want self-signed", cert.IssuerCN)
	}
	if !cert.SelfSigned() {
		t.Error("certificate should be self-signed")
	}
	if cert.ApplicationURI != opts.ApplicationURI {
		t.Errorf("application URI = %q", cert.ApplicationURI)
	}
	if cert.SignatureHash != HashSHA256 {
		t.Errorf("hash = %v", cert.SignatureHash)
	}
	if cert.KeyBits() != 512 {
		t.Errorf("key bits = %d", cert.KeyBits())
	}
	if !cert.NotBefore.Equal(opts.NotBefore) || !cert.NotAfter.Equal(opts.NotAfter) {
		t.Errorf("validity = %v..%v", cert.NotBefore, cert.NotAfter)
	}
	if cert.SerialNumber.Int64() != 12345 {
		t.Errorf("serial = %v", cert.SerialNumber)
	}
	if cert.PublicKey.N.Cmp(key.N) != 0 {
		t.Error("public key mismatch")
	}
	if err := cert.VerifySignatureFrom(cert.PublicKey); err != nil {
		t.Errorf("self signature invalid: %v", err)
	}
}

func TestGenerateAllHashAlgorithms(t *testing.T) {
	key := testKey(t, 0)
	for _, h := range []HashAlg{HashMD5, HashSHA1, HashSHA256} {
		cert, err := Generate(key, Options{CommonName: "c", SignatureHash: h})
		if err != nil {
			t.Fatalf("Generate(%v): %v", h, err)
		}
		if cert.SignatureHash != h {
			t.Errorf("parsed hash = %v, want %v", cert.SignatureHash, h)
		}
		if err := cert.VerifySignatureFrom(cert.PublicKey); err != nil {
			t.Errorf("signature with %v invalid: %v", h, err)
		}
	}
}

// TestSHA256CertParsesWithStdlib cross-checks our DER emitter against the
// standard library parser (stdlib accepts parsing SHA-1/MD5 certs but may
// reject verifying them, so only shape is checked).
func TestSHA256CertParsesWithStdlib(t *testing.T) {
	key := testKey(t, 0)
	cert, err := Generate(key, Options{
		CommonName:     "Interop",
		Organization:   "ACME",
		ApplicationURI: "urn:acme:device",
		SignatureHash:  HashSHA256,
	})
	if err != nil {
		t.Fatal(err)
	}
	std, err := x509.ParseCertificate(cert.Raw)
	if err != nil {
		t.Fatalf("stdlib rejects our DER: %v", err)
	}
	if std.Subject.CommonName != "Interop" {
		t.Errorf("stdlib CN = %q", std.Subject.CommonName)
	}
	if len(std.URIs) != 1 || std.URIs[0].String() != "urn:acme:device" {
		t.Errorf("stdlib URIs = %v", std.URIs)
	}
	pub, ok := std.PublicKey.(*rsa.PublicKey)
	if !ok || pub.N.Cmp(key.N) != 0 {
		t.Error("stdlib public key mismatch")
	}
}

func TestCASignedCertificate(t *testing.T) {
	caKey := testKey(t, 0)
	leafKey := testKey(t, 1)
	cert, err := Generate(leafKey, Options{
		CommonName:    "device-1",
		SignatureHash: HashSHA256,
		IssuerCN:      "Vendor CA",
		IssuerOrg:     "Vendor",
		IssuerKey:     caKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cert.SelfSigned() {
		t.Error("CA-signed cert should not be self-signed")
	}
	if cert.IssuerCN != "Vendor CA" || cert.IssuerOrg != "Vendor" {
		t.Errorf("issuer = %q/%q", cert.IssuerCN, cert.IssuerOrg)
	}
	if err := cert.VerifySignatureFrom(&caKey.PublicKey); err != nil {
		t.Errorf("CA signature invalid: %v", err)
	}
	if err := cert.VerifySignatureFrom(cert.PublicKey); err == nil {
		t.Error("verification with leaf key should fail")
	}
}

func TestThumbprintStableAndUnique(t *testing.T) {
	key := testKey(t, 0)
	c1, err := Generate(key, Options{CommonName: "a", SerialNumber: big.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(c1.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Thumbprint(), c2.Thumbprint()) {
		t.Error("thumbprint not stable across parse")
	}
	if len(c1.Thumbprint()) != 20 {
		t.Errorf("thumbprint length = %d", len(c1.Thumbprint()))
	}
	c3, err := Generate(key, Options{CommonName: "a", SerialNumber: big.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if c1.ThumbprintHex() == c3.ThumbprintHex() {
		t.Error("different certs share a thumbprint")
	}
}

func TestValidAt(t *testing.T) {
	key := testKey(t, 0)
	cert, err := Generate(key, Options{
		CommonName: "v",
		NotBefore:  time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.ValidAt(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("mid-window time should be valid")
	}
	if cert.ValidAt(time.Date(2019, 12, 31, 0, 0, 0, 0, time.UTC)) {
		t.Error("before NotBefore should be invalid")
	}
	if cert.ValidAt(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("after NotAfter should be invalid")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("nil DER should fail")
	}
	if _, err := Parse([]byte{0x30, 0x03, 0x02, 0x01, 0x01}); err == nil {
		t.Error("truncated DER should fail")
	}
	key := testKey(t, 0)
	cert, err := Generate(key, Options{CommonName: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(append(cert.Raw, 0x00)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestGenerateNilKey(t *testing.T) {
	if _, err := Generate(nil, Options{}); err == nil {
		t.Error("nil key should fail")
	}
}

func TestKeyPoolDeterministicIndexing(t *testing.T) {
	pool := NewKeyPool()
	k1 := pool.Key(512, 0)
	k2 := pool.Key(512, 0)
	if k1 != k2 {
		t.Error("same index should return same key")
	}
	k3 := pool.Key(512, 1)
	if k1.N.Cmp(k3.N) == 0 {
		t.Error("different indexes share a modulus")
	}
	if pool.Size(512) != 2 {
		t.Errorf("pool size = %d", pool.Size(512))
	}
	pool.Prewarm(512, 4)
	if pool.Size(512) != 4 {
		t.Errorf("after prewarm size = %d", pool.Size(512))
	}
	// Prewarm to a smaller count is a no-op.
	pool.Prewarm(512, 2)
	if pool.Size(512) != 4 {
		t.Errorf("prewarm shrank pool to %d", pool.Size(512))
	}
}

func TestNewKeyFromPrimes(t *testing.T) {
	p, err := GeneratePrime(256)
	if err != nil {
		t.Fatal(err)
	}
	q, err := GeneratePrime(256)
	if err != nil {
		t.Fatal(err)
	}
	key, err := NewKeyFromPrimes(p, q)
	if err != nil {
		t.Fatalf("NewKeyFromPrimes: %v", err)
	}
	if key.N.BitLen() < 511 {
		t.Errorf("modulus bits = %d", key.N.BitLen())
	}
	// The constructed key must actually work for signing via certificates.
	cert, err := Generate(key, Options{CommonName: "weak", SignatureHash: HashSHA1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.VerifySignatureFrom(cert.PublicKey); err != nil {
		t.Errorf("signature with constructed key invalid: %v", err)
	}

	if _, err := NewKeyFromPrimes(p, p); err == nil {
		t.Error("equal primes should fail")
	}
	if _, err := NewKeyFromPrimes(nil, q); err == nil {
		t.Error("nil prime should fail")
	}
}

func TestHashAlgStrings(t *testing.T) {
	if HashMD5.String() != "MD5" || HashSHA1.String() != "SHA-1" ||
		HashSHA256.String() != "SHA-256" || HashUnknown.String() != "unknown" {
		t.Error("hash names wrong")
	}
	if HashUnknown.CryptoHash() != 0 {
		t.Error("unknown hash should map to 0")
	}
}

func BenchmarkGenerateCertificate(b *testing.B) {
	key := testKey(b, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(key, Options{CommonName: "bench", SignatureHash: HashSHA256}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCertificate(b *testing.B) {
	key := testKey(b, 0)
	cert, err := Generate(key, Options{CommonName: "bench", ApplicationURI: "urn:b"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(cert.Raw); err != nil {
			b.Fatal(err)
		}
	}
}
