package uasc

import (
	"crypto/rsa"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/uacert"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uarsa"
	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// ChannelSecurity selects the security applied to a channel.
type ChannelSecurity struct {
	Policy *uapolicy.Policy
	Mode   uamsg.MessageSecurityMode
	// LocalKey and LocalCertDER identify this side; required when the
	// policy is not None.
	LocalKey     *rsa.PrivateKey
	LocalCertDER []byte
	// RemoteCertDER is the peer certificate; required on the client when
	// the policy is not None, learned from the OPN on the server.
	RemoteCertDER []byte

	// Engine, when non-nil, memoizes the channel's RSA operations by key
	// fingerprint and input digest (campaign-scoped; see package uarsa).
	Engine *uarsa.Engine
	// Derive, when non-nil, makes the handshake deterministic: the
	// channel nonce, padding bytes and signature salts are drawn from
	// labeled substreams of this derivation instead of crypto/rand, and
	// OPN timestamps are pinned to uarsa.Epoch — equal channel
	// parameters then replay bit-identical OPN exchanges, which is what
	// makes the engine hit across waves (DESIGN.md §4). On the server
	// side Accept populates it from a digest of the client's OPN request.
	Derive *uarsa.Derivation

	// Metrics, when non-nil, observes the client handshake: attempt
	// count, OPN round-trip latency, and outcome, under the caller's
	// (policy, mode) scope. Purely observational — it never alters the
	// exchange — and nil (the default) costs one pointer check.
	Metrics *telemetry.ChannelMetrics
}

// CryptoContext assembles the uapolicy context for one labeled
// asymmetric operation on this channel: the engine plus, when the
// handshake is deterministic, the operation's own substream. Every call
// site uses a distinct label so a cache hit (which skips its random
// draws) can never shift the bytes another site sees.
func (cs *ChannelSecurity) CryptoContext(label string) uapolicy.CryptoContext {
	cc := uapolicy.CryptoContext{Engine: cs.Engine}
	if cs.Derive != nil {
		cc.Rand = cs.Derive.Stream(label)
	}
	return cc
}

// Channel is an established secure channel over a Transport.
type Channel struct {
	t   *Transport
	sec ChannelSecurity

	remotePub *rsa.PublicKey

	ChannelID uint32
	TokenID   uint32

	sendSeq   uint32
	nextReqID uint32
	nonceSeq  uint32 // deterministic session-nonce draws (atomic)

	sendKeys *uapolicy.DerivedKeys
	recvKeys *uapolicy.DerivedKeys

	// parts is the message-reassembly buffer reused across Recv calls
	// (decoded messages never alias it; every decoder read copies).
	parts []byte

	closed bool
}

// Security returns the channel's security settings.
func (ch *Channel) Security() ChannelSecurity { return ch.sec }

// RemoteCertificate returns the peer's certificate DER (nil for policy
// None).
func (ch *Channel) RemoteCertificate() []byte { return ch.sec.RemoteCertDER }

// Transport returns the underlying transport.
func (ch *Channel) Transport() *Transport { return ch.t }

// SessionNonce returns a fresh nonce for session-level challenges
// (CreateSession/ActivateSession responses). Deterministic channels
// derive it from the channel derivation — one labeled substream per
// draw, so a replayed request sequence replays identical nonces and the
// session signatures over them resolve from the crypto cache; other
// channels draw from crypto/rand as before.
func (ch *Channel) SessionNonce() []byte {
	if ch.sec.Policy.Insecure {
		return nil
	}
	if ch.sec.Derive == nil {
		return ch.sec.Policy.NewNonce()
	}
	n := atomic.AddUint32(&ch.nonceSeq, 1)
	return ch.sec.Policy.NonceFrom(ch.sec.Derive.Stream("session-nonce-" + strconv.FormatUint(uint64(n), 10)))
}

// CryptoContext exposes the channel's per-operation crypto context for
// asymmetric operations outside the OPN exchange (session signatures).
func (ch *Channel) CryptoContext(label string) uapolicy.CryptoContext {
	return ch.sec.CryptoContext(label)
}

const (
	sequenceHeaderSize = 8
	padLenFieldSize    = 2
	symHeaderSize      = 8 // channel id + token id
)

func encodeAsymHeader(policyURI string, senderCert, receiverThumb []byte) []byte {
	e := uatypes.NewEncoder(32 + len(policyURI) + len(senderCert))
	e.WriteString(policyURI)
	e.WriteByteString(senderCert)
	e.WriteByteString(receiverThumb)
	return e.Bytes()
}

type asymHeader struct {
	policyURI     string
	senderCert    []byte
	receiverThumb []byte
	length        int
}

func decodeAsymHeader(b []byte) (asymHeader, error) {
	d := uatypes.NewDecoder(b)
	h := asymHeader{
		policyURI:     d.ReadString(),
		senderCert:    d.ReadByteString(),
		receiverThumb: d.ReadByteString(),
	}
	h.length = d.Offset()
	return h, d.Err()
}

// sealOpts captures the cryptographic treatment of one chunk.
type sealOpts struct {
	encrypt    bool
	sign       bool
	signKey    *rsa.PrivateKey // asymmetric signing
	encryptKey *rsa.PublicKey  // asymmetric encryption
	symKeys    *uapolicy.DerivedKeys
	policy     *uapolicy.Policy
	// signCC/encCC carry the memo engine and per-operation deterministic
	// streams for the asymmetric (OPN) path; zero values compute
	// directly with crypto/rand.
	signCC uapolicy.CryptoContext
	encCC  uapolicy.CryptoContext
}

// seal assembles and secures one chunk into dst, which is reset first
// (callers keep one pooled encoder per message and reuse it across
// chunks). prefix is everything between the message header and the
// sequence header (channel/token ids plus, for OPN, the asymmetric
// security header). dst holds the full wire frame on success.
//
//studyvet:hotpath — per-chunk on every message both directions; BenchmarkSymEncryptSign budgets its allocs
func seal(dst *uatypes.Encoder, msgType string, chunkFlag byte, prefix, seqHdr, body []byte, o sealOpts) error {
	dst.Reset()

	var sigSize int
	if o.sign {
		if o.signKey != nil {
			sigSize = o.policy.AsymSignatureSize(&o.signKey.PublicKey)
		} else {
			sigSize = o.policy.SymSignatureSize()
		}
	}

	plainLen := sequenceHeaderSize + len(body)
	var msgSize, padLen, plainBlock, cipherBlock int
	if o.encrypt {
		var err error
		if o.encryptKey != nil {
			plainBlock, err = o.policy.AsymPlainBlockSize(o.encryptKey)
			if err != nil {
				return err
			}
			cipherBlock = o.policy.AsymCipherBlockSize(o.encryptKey)
		} else {
			plainBlock = o.policy.SymBlockSize()
			cipherBlock = plainBlock
		}
		unpadded := plainLen + padLenFieldSize + sigSize
		padLen = (plainBlock - unpadded%plainBlock) % plainBlock
		plainTotal := unpadded + padLen
		msgSize = chunkHeaderSize + len(prefix) + plainTotal/plainBlock*cipherBlock
	} else {
		msgSize = chunkHeaderSize + len(prefix) + plainLen + sigSize
	}

	dst.WriteRawString(msgType)
	dst.WriteUint8(chunkFlag)
	dst.WriteUint32(uint32(msgSize))
	dst.WriteRaw(prefix)
	securedStart := dst.Len()
	dst.WriteRaw(seqHdr)
	dst.WriteRaw(body)
	if o.encrypt {
		for i := 0; i < padLen; i++ {
			dst.WriteUint8(byte(padLen))
		}
		dst.WriteUint16(uint16(padLen))
	}
	if o.sign {
		var sig []byte
		var err error
		if o.signKey != nil {
			sig, err = o.policy.AsymSignCtx(o.signCC, o.signKey, dst.Bytes())
		} else {
			sig, err = o.policy.SymSign(o.symKeys, dst.Bytes())
		}
		if err != nil {
			return fmt.Errorf("uasc: signing chunk: %w", err) //studyvet:alloc-ok — failure path
		}
		dst.WriteRaw(sig)
	}
	if o.encrypt {
		secured := dst.Bytes()[securedStart:]
		if o.encryptKey != nil {
			ct, err := o.policy.AsymEncryptCtx(o.encCC, o.encryptKey, secured)
			if err != nil {
				return fmt.Errorf("uasc: encrypting chunk: %w", err) //studyvet:alloc-ok — failure path
			}
			dst.Truncate(securedStart)
			dst.WriteRaw(ct)
		} else {
			if err := o.policy.SymEncrypt(o.symKeys, secured); err != nil {
				return fmt.Errorf("uasc: encrypting chunk: %w", err) //studyvet:alloc-ok — failure path
			}
		}
	}
	if dst.Len() != msgSize {
		return fmt.Errorf("uasc: internal error: frame size %d != %d", dst.Len(), msgSize) //studyvet:alloc-ok — failure path
	}
	return nil
}

// openOpts captures the treatment of a received chunk.
type openOpts struct {
	encrypted  bool
	signed     bool
	verifyKey  *rsa.PublicKey  // asymmetric verification (sender's key)
	decryptKey *rsa.PrivateKey // asymmetric decryption (our key)
	symKeys    *uapolicy.DerivedKeys
	policy     *uapolicy.Policy
	// crypto memoizes the asymmetric decrypt/verify (no random source
	// needed on the receive path).
	crypto uapolicy.CryptoContext
}

// open verifies and decrypts a received chunk body (without the 8-byte
// message header) and returns sequence header and payload. The returned
// slices alias body (or, for asymmetric decryption, a fresh plaintext
// buffer); callers copy what they keep.
//
//studyvet:hotpath — per-chunk on every received message; pooled encoder keeps the verify reassembly alloc-free
func open(msgType string, chunkFlag byte, body []byte, prefixLen int, o openOpts) (seqHdr, payload []byte, err error) {
	if len(body) < prefixLen {
		return nil, nil, errors.New("uasc: chunk shorter than security header")
	}
	secured := body[prefixLen:]
	if o.encrypted {
		if o.decryptKey != nil {
			// A cached plaintext is shared across callers; this function
			// only re-slices it and every downstream decoder read copies,
			// so treating it as read-only holds.
			secured, err = o.policy.AsymDecryptCtx(o.crypto, o.decryptKey, secured)
		} else {
			err = o.policy.SymDecrypt(o.symKeys, secured)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("uasc: decrypting chunk: %w", err) //studyvet:alloc-ok — failure path
		}
	}
	if o.signed {
		var sigSize int
		if o.verifyKey != nil {
			sigSize = o.policy.AsymSignatureSize(o.verifyKey)
		} else {
			sigSize = o.policy.SymSignatureSize()
		}
		if len(secured) < sigSize {
			return nil, nil, errors.New("uasc: chunk shorter than signature")
		}
		sig := secured[len(secured)-sigSize:]
		// Reassemble exactly the bytes the sender signed: header with the
		// final frame size, plaintext prefix, secured region minus sig.
		signed := uatypes.AcquireEncoder(chunkHeaderSize + len(body))
		signed.WriteRawString(msgType)
		signed.WriteUint8(chunkFlag)
		signed.WriteUint32(uint32(chunkHeaderSize + len(body)))
		signed.WriteRaw(body[:prefixLen])
		signed.WriteRaw(secured[:len(secured)-sigSize])
		if o.verifyKey != nil {
			err = o.policy.AsymVerifyCtx(o.crypto, o.verifyKey, signed.Bytes(), sig)
		} else {
			err = o.policy.SymVerify(o.symKeys, signed.Bytes(), sig)
		}
		uatypes.ReleaseEncoder(signed)
		if err != nil {
			return nil, nil, fmt.Errorf("uasc: chunk signature: %w", err) //studyvet:alloc-ok — failure path
		}
		secured = secured[:len(secured)-sigSize]
	}
	if o.encrypted {
		if len(secured) < padLenFieldSize {
			return nil, nil, errors.New("uasc: chunk shorter than padding field")
		}
		padLen := int(binary.LittleEndian.Uint16(secured[len(secured)-padLenFieldSize:]))
		if padLen+padLenFieldSize > len(secured) {
			return nil, nil, errors.New("uasc: invalid padding length")
		}
		secured = secured[:len(secured)-padLenFieldSize-padLen]
	}
	if len(secured) < sequenceHeaderSize {
		return nil, nil, errors.New("uasc: chunk shorter than sequence header")
	}
	return secured[:sequenceHeaderSize], secured[sequenceHeaderSize:], nil
}

// --- Client side ---

// Open establishes a secure channel as a client. The transport must have
// completed the Hello/Acknowledge handshake. When sec.Metrics is set the
// whole handshake — OPN request, response, key derivation — is timed as
// one observation.
func Open(t *Transport, sec ChannelSecurity, lifetimeMS uint32) (*Channel, error) {
	begin := sec.Metrics.Begin()
	ch, err := openChannel(t, sec, lifetimeMS)
	sec.Metrics.Done(begin, err == nil)
	return ch, err
}

// openChannel is Open's body, unobserved.
func openChannel(t *Transport, sec ChannelSecurity, lifetimeMS uint32) (*Channel, error) {
	ch := &Channel{t: t, sec: sec, nextReqID: 1}
	if sec.Policy == nil {
		return nil, errors.New("uasc: nil policy")
	}
	if !sec.Policy.Insecure {
		if sec.LocalKey == nil || len(sec.LocalCertDER) == 0 {
			return nil, errors.New("uasc: policy requires a local certificate and key")
		}
		if len(sec.RemoteCertDER) == 0 {
			return nil, errors.New("uasc: policy requires the server certificate")
		}
		// Server certificates repeat heavily across grabs and waves (the
		// paper's Figure 5 reuse clusters), so the parse is memoized.
		remote, err := uacert.ParseCached(sec.RemoteCertDER)
		if err != nil {
			return nil, fmt.Errorf("uasc: server certificate: %w", err)
		}
		ch.remotePub = remote.PublicKey
	}

	var clientNonce []byte
	//studyvet:entropy-exempt — fallback for live scanning; deterministic handshakes (sec.Derive set) overwrite with uarsa.Epoch below
	ts := time.Now()
	if sec.Derive != nil {
		// Deterministic handshake: nonce from the exchange derivation,
		// timestamp pinned, so equal channel parameters replay the
		// identical OPN request in every wave.
		clientNonce = sec.Policy.NonceFrom(sec.Derive.Stream("nonce"))
		ts = uarsa.Epoch
	} else {
		clientNonce = sec.Policy.NewNonce()
	}
	req := &uamsg.OpenSecureChannelRequest{
		Header: uamsg.RequestHeader{
			Timestamp:     ts,
			RequestHandle: 1,
			TimeoutHint:   30000,
		},
		ClientProtocolVer: protocolVersion,
		RequestType:       uamsg.SecurityTokenIssue,
		SecurityMode:      sec.Mode,
		ClientNonce:       clientNonce,
		RequestedLifetime: lifetimeMS,
	}
	reqID := ch.newRequestID()
	if err := ch.sendOPNMsg(reqID, req); err != nil {
		return nil, err
	}

	chunk, err := t.readChunk()
	if err != nil {
		return nil, fmt.Errorf("uasc: reading OPN response: %w", err)
	}
	if chunk.msgType == uamsg.MsgTypeError {
		if ce, derr := uamsg.DecodeConnError(chunk.body); derr == nil {
			return nil, ce
		}
		return nil, errors.New("uasc: malformed error during open")
	}
	if chunk.msgType != uamsg.MsgTypeOpen {
		return nil, fmt.Errorf("uasc: unexpected %q during open", chunk.msgType)
	}
	msg, err := ch.openOPN(chunk)
	if err != nil {
		return nil, err
	}
	resp, ok := msg.(*uamsg.OpenSecureChannelResponse)
	if !ok {
		if f, isFault := msg.(*uamsg.ServiceFault); isFault {
			return nil, fmt.Errorf("uasc: open rejected: %w", f.Header.ServiceResult)
		}
		return nil, fmt.Errorf("uasc: unexpected %T during open", msg)
	}
	if resp.Header.ServiceResult.IsBad() {
		return nil, fmt.Errorf("uasc: open rejected: %w", resp.Header.ServiceResult)
	}
	ch.ChannelID = resp.SecurityToken.ChannelID
	ch.TokenID = resp.SecurityToken.TokenID
	if !sec.Policy.Insecure {
		if ch.sendKeys, err = sec.Policy.DeriveKeys(resp.ServerNonce, clientNonce); err != nil {
			return nil, err
		}
		if ch.recvKeys, err = sec.Policy.DeriveKeys(clientNonce, resp.ServerNonce); err != nil {
			return nil, err
		}
	}
	return ch, nil
}

func (ch *Channel) newRequestID() uint32 { return atomic.AddUint32(&ch.nextReqID, 1) }

func (ch *Channel) nextSeq() uint32 { return atomic.AddUint32(&ch.sendSeq, 1) }

// sendOPNMsg encodes and sends an OPN message body via a pooled buffer.
func (ch *Channel) sendOPNMsg(reqID uint32, msg uamsg.Message) error {
	e := uatypes.AcquireEncoder(256)
	defer uatypes.ReleaseEncoder(e)
	uamsg.EncodeTo(e, msg)
	return ch.sendOPN(reqID, e.Bytes())
}

// sendOPN sends an asymmetric-secured OPN chunk.
func (ch *Channel) sendOPN(reqID uint32, body []byte) error {
	var thumb []byte
	var senderCert []byte
	secure := !ch.sec.Policy.Insecure
	if secure {
		senderCert = ch.sec.LocalCertDER
		sum := sha1.Sum(ch.sec.RemoteCertDER)
		thumb = sum[:]
	}
	prefix := make([]byte, 4, 4+64)
	binary.LittleEndian.PutUint32(prefix, ch.ChannelID)
	prefix = append(prefix, encodeAsymHeader(ch.sec.Policy.URI, senderCert, thumb)...)

	var seqHdr [sequenceHeaderSize]byte
	binary.LittleEndian.PutUint32(seqHdr[:4], ch.nextSeq())
	binary.LittleEndian.PutUint32(seqHdr[4:], reqID)
	frame := uatypes.AcquireEncoder(chunkHeaderSize + len(prefix) + len(body) + 512)
	defer uatypes.ReleaseEncoder(frame)
	err := seal(frame, uamsg.MsgTypeOpen, uamsg.ChunkFinal, prefix,
		seqHdr[:], body, sealOpts{
			encrypt:    secure,
			sign:       secure,
			signKey:    ch.sec.LocalKey,
			encryptKey: ch.remotePub,
			policy:     ch.sec.Policy,
			signCC:     ch.sec.CryptoContext("opn-sign"),
			encCC:      ch.sec.CryptoContext("opn-enc"),
		})
	if err != nil {
		return err
	}
	if _, err := ch.t.Conn.Write(frame.Bytes()); err != nil {
		return fmt.Errorf("uasc: sending OPN: %w", err)
	}
	return nil
}

// openOPN verifies/decrypts a received OPN chunk and decodes its message.
func (ch *Channel) openOPN(chunk rawChunk) (uamsg.Message, error) {
	if len(chunk.body) < 4 {
		return nil, errors.New("uasc: OPN chunk too short")
	}
	hdr, err := decodeAsymHeader(chunk.body[4:])
	if err != nil {
		return nil, fmt.Errorf("uasc: OPN security header: %w", err)
	}
	if hdr.policyURI != ch.sec.Policy.URI {
		return nil, fmt.Errorf("uasc: OPN policy %q, expected %q", hdr.policyURI, ch.sec.Policy.URI)
	}
	secure := !ch.sec.Policy.Insecure
	var verifyKey *rsa.PublicKey
	if secure {
		sender, err := uacert.ParseCached(hdr.senderCert)
		if err != nil {
			return nil, fmt.Errorf("uasc: OPN sender certificate: %w", err)
		}
		verifyKey = sender.PublicKey
	}
	_, payload, err := open(chunk.msgType, chunk.chunkType, chunk.body, 4+hdr.length, openOpts{
		encrypted:  secure,
		signed:     secure,
		verifyKey:  verifyKey,
		decryptKey: ch.sec.LocalKey,
		policy:     ch.sec.Policy,
		crypto:     uapolicy.CryptoContext{Engine: ch.sec.Engine},
	})
	if err != nil {
		return nil, err
	}
	return uamsg.Decode(payload)
}

// maxChunkBody returns how many payload bytes fit into one MSG chunk.
func (ch *Channel) maxChunkBody() int {
	avail := int(ch.t.send.SendBufSize) - chunkHeaderSize - symHeaderSize - sequenceHeaderSize
	switch {
	case ch.sec.Mode == uamsg.SecurityModeSignAndEncrypt:
		block := ch.sec.Policy.SymBlockSize()
		avail -= ch.sec.Policy.SymSignatureSize() + padLenFieldSize + block
		avail = avail / block * block
	case ch.sec.Mode == uamsg.SecurityModeSign:
		avail -= ch.sec.Policy.SymSignatureSize()
	}
	if avail < 1 {
		avail = 1
	}
	return avail
}

// sendSecured sends a service message as one or more MSG/CLO chunks.
// One pooled frame buffer is reused across all chunks of the message.
func (ch *Channel) sendSecured(msgType string, reqID uint32, body []byte) error {
	maxBody := ch.maxChunkBody()
	nChunks := (len(body) + maxBody - 1) / maxBody
	if nChunks == 0 {
		nChunks = 1
	}
	if lim := ch.t.send.MaxChunkCount; lim > 0 && uint32(nChunks) > lim {
		return ErrTooManyChunks
	}
	var prefix [symHeaderSize]byte
	binary.LittleEndian.PutUint32(prefix[:4], ch.ChannelID)
	binary.LittleEndian.PutUint32(prefix[4:], ch.TokenID)

	opts := sealOpts{
		encrypt: ch.sec.Mode == uamsg.SecurityModeSignAndEncrypt,
		sign:    ch.sec.Mode != uamsg.SecurityModeNone,
		symKeys: ch.sendKeys,
		policy:  ch.sec.Policy,
	}
	frameCap := maxBody + chunkHeaderSize + symHeaderSize + sequenceHeaderSize + 256
	if len(body) < maxBody {
		frameCap = len(body) + chunkHeaderSize + symHeaderSize + sequenceHeaderSize + 256
	}
	frame := uatypes.AcquireEncoder(frameCap)
	defer uatypes.ReleaseEncoder(frame)
	var seqHdr [sequenceHeaderSize]byte
	for i := 0; i < nChunks; i++ {
		start := i * maxBody
		end := start + maxBody
		if end > len(body) {
			end = len(body)
		}
		flag := byte(uamsg.ChunkIntermediate)
		if i == nChunks-1 {
			flag = uamsg.ChunkFinal
		}
		binary.LittleEndian.PutUint32(seqHdr[:4], ch.nextSeq())
		binary.LittleEndian.PutUint32(seqHdr[4:], reqID)
		if err := seal(frame, msgType, flag, prefix[:], seqHdr[:], body[start:end], opts); err != nil {
			return err
		}
		if _, err := ch.t.Conn.Write(frame.Bytes()); err != nil {
			return fmt.Errorf("uasc: sending %s chunk: %w", msgType, err)
		}
	}
	return nil
}

// Received is one fully reassembled message.
type Received struct {
	MsgType   string // MSG, CLO or OPN (token renewal)
	RequestID uint32
	Message   uamsg.Message
}

// Recv reads and reassembles the next message from the peer.
func (ch *Channel) Recv() (*Received, error) {
	parts := ch.parts[:0]
	defer func() { ch.parts = parts[:0] }()
	var reqID uint32
	var chunks uint32
	for {
		chunk, err := ch.t.readChunk()
		if err != nil {
			return nil, err
		}
		switch chunk.msgType {
		case uamsg.MsgTypeError:
			if ce, derr := uamsg.DecodeConnError(chunk.body); derr == nil {
				return nil, ce
			}
			return nil, errors.New("uasc: malformed ERR chunk")
		case uamsg.MsgTypeOpen:
			// Token renewal request mid-stream (server side).
			msg, err := ch.openOPN(chunk)
			if err != nil {
				return nil, err
			}
			return &Received{MsgType: chunk.msgType, Message: msg}, nil
		case uamsg.MsgTypeMessage, uamsg.MsgTypeClose:
		default:
			return nil, fmt.Errorf("uasc: unexpected message type %q", chunk.msgType)
		}
		if chunk.chunkType == uamsg.ChunkAbort {
			return nil, ErrAborted
		}
		if len(chunk.body) < symHeaderSize {
			return nil, errors.New("uasc: chunk shorter than symmetric header")
		}
		gotChannel := binary.LittleEndian.Uint32(chunk.body[:4])
		gotToken := binary.LittleEndian.Uint32(chunk.body[4:8])
		if gotChannel != ch.ChannelID {
			return nil, fmt.Errorf("uasc: %w: channel %d", uastatus.BadSecureChannelIdInvalid, gotChannel)
		}
		if gotToken != ch.TokenID {
			return nil, fmt.Errorf("uasc: %w: token %d", uastatus.BadSecureChannelTokenUnknown, gotToken)
		}
		seqHdr, payload, err := open(chunk.msgType, chunk.chunkType, chunk.body, symHeaderSize, openOpts{
			encrypted: ch.sec.Mode == uamsg.SecurityModeSignAndEncrypt,
			signed:    ch.sec.Mode != uamsg.SecurityModeNone,
			symKeys:   ch.recvKeys,
			policy:    ch.sec.Policy,
		})
		if err != nil {
			return nil, err
		}
		id := binary.LittleEndian.Uint32(seqHdr[4:])
		if len(parts) == 0 && chunks == 0 {
			reqID = id
		} else if id != reqID {
			return nil, fmt.Errorf("uasc: interleaved request ids %d and %d", reqID, id)
		}
		parts = append(parts, payload...)
		chunks++
		if lim := ch.t.recv.MaxChunkCount; lim > 0 && chunks > lim {
			return nil, ErrTooManyChunks
		}
		if lim := ch.t.recv.MaxMessageSize; lim > 0 && uint32(len(parts)) > lim {
			return nil, ErrMessageTooBig
		}
		if chunk.chunkType == uamsg.ChunkFinal {
			msg, err := uamsg.Decode(parts)
			if err != nil {
				return nil, err
			}
			return &Received{MsgType: chunk.msgType, RequestID: reqID, Message: msg}, nil
		}
	}
}

// Request sends a service request and waits for its response.
func (ch *Channel) Request(req uamsg.Request) (uamsg.Message, error) {
	reqID := ch.newRequestID()
	if err := ch.sendMsg(uamsg.MsgTypeMessage, reqID, req); err != nil {
		return nil, err
	}
	for {
		got, err := ch.Recv()
		if err != nil {
			return nil, err
		}
		if got.RequestID == reqID {
			return got.Message, nil
		}
	}
}

// sendMsg encodes a service message into a pooled buffer and sends it
// as MSG/CLO chunks.
func (ch *Channel) sendMsg(msgType string, reqID uint32, msg uamsg.Message) error {
	e := uatypes.AcquireEncoder(512)
	defer uatypes.ReleaseEncoder(e)
	uamsg.EncodeTo(e, msg)
	return ch.sendSecured(msgType, reqID, e.Bytes())
}

// SendResponse sends a service response for the given request id.
func (ch *Channel) SendResponse(reqID uint32, resp uamsg.Message) error {
	return ch.sendMsg(uamsg.MsgTypeMessage, reqID, resp)
}

// Close sends a CloseSecureChannel request and closes the transport.
func (ch *Channel) Close() error {
	if ch.closed {
		return ErrClosed
	}
	ch.closed = true
	req := &uamsg.CloseSecureChannelRequest{
		//studyvet:entropy-exempt — CLO is fire-and-forget teardown; its timestamp is never parsed into a record
		Header: uamsg.RequestHeader{Timestamp: time.Now()},
	}
	_ = ch.sendMsg(uamsg.MsgTypeClose, ch.newRequestID(), req)
	return ch.t.Close()
}

// --- Server side ---

// ServerConfig configures secure-channel acceptance.
type ServerConfig struct {
	Key     *rsa.PrivateKey
	CertDER []byte
	// AllowedModes returns the modes the server's endpoints advertise for
	// the policy, or nil if the policy is not offered.
	AllowedModes func(policy *uapolicy.Policy) []uamsg.MessageSecurityMode
	// ValidateClientCert decides whether the client certificate is
	// accepted. A nil func accepts everything.
	ValidateClientCert func(der []byte) uastatus.Code
	LifetimeMS         uint32

	// Engine, when non-nil, memoizes the server's RSA operations
	// (campaign-scoped; see package uarsa).
	Engine *uarsa.Engine
	// Deterministic derives the server's nonce, padding, salts, channel
	// id and timestamps from a digest of the client's OPN request, so a
	// bit-identical request replays a bit-identical response — the
	// cross-wave hit condition for the crypto cache (DESIGN.md §4).
	Deterministic bool
}

var channelIDCounter atomic.Uint32

// Accept performs the server side of secure-channel establishment.
func Accept(t *Transport, cfg ServerConfig) (*Channel, error) {
	chunk, err := t.readChunk()
	if err != nil {
		return nil, fmt.Errorf("uasc: reading OPN: %w", err)
	}
	if chunk.msgType != uamsg.MsgTypeOpen {
		_ = sendError(t.Conn, uastatus.BadTcpMessageTypeInvalid, "expected OPN")
		return nil, fmt.Errorf("uasc: unexpected %q instead of OPN", chunk.msgType)
	}
	if len(chunk.body) < 4 {
		return nil, errors.New("uasc: OPN chunk too short")
	}
	hdr, err := decodeAsymHeader(chunk.body[4:])
	if err != nil {
		_ = sendError(t.Conn, uastatus.BadDecodingError, "bad OPN header")
		return nil, fmt.Errorf("uasc: OPN security header: %w", err)
	}
	policy, ok := uapolicy.Lookup(hdr.policyURI)
	if !ok {
		_ = sendError(t.Conn, uastatus.BadSecurityPolicyRejected, "unknown policy")
		return nil, fmt.Errorf("uasc: unknown policy %q", hdr.policyURI)
	}
	modes := cfg.AllowedModes(policy)
	if len(modes) == 0 {
		_ = sendError(t.Conn, uastatus.BadSecurityPolicyRejected, "policy not offered")
		return nil, fmt.Errorf("uasc: policy %s not offered", policy.Name)
	}

	ch := &Channel{t: t, sec: ChannelSecurity{
		Policy:       policy,
		LocalKey:     cfg.Key,
		LocalCertDER: cfg.CertDER,
		Engine:       cfg.Engine,
	}}
	if cfg.Deterministic && !policy.Insecure {
		// The response becomes a pure function of the request: every
		// random draw below comes from this request-digest derivation, so
		// a client replaying a bit-identical OPN request (deterministic
		// scanners do, across waves) receives bit-identical bytes and the
		// whole exchange resolves from the crypto cache.
		d := uarsa.Digest([]byte(chunk.msgType), []byte{chunk.chunkType}, chunk.body)
		ch.sec.Derive = uarsa.NewDerivation([]byte("uasc-server"), d[:])
	}
	var clientPub *rsa.PublicKey
	if !policy.Insecure {
		if len(hdr.senderCert) == 0 {
			_ = sendError(t.Conn, uastatus.BadSecurityChecksFailed, "missing client certificate")
			return nil, errors.New("uasc: client sent no certificate")
		}
		if cfg.ValidateClientCert != nil {
			if code := cfg.ValidateClientCert(hdr.senderCert); code.IsBad() {
				_ = sendError(t.Conn, code, "client certificate rejected")
				return nil, fmt.Errorf("uasc: client certificate rejected: %w", code)
			}
		}
		// The scanner presents one self-signed certificate to every
		// server it probes; memoizing the parse turns the per-connection
		// cost into a cache hit.
		clientCert, err := uacert.ParseCached(hdr.senderCert)
		if err != nil {
			_ = sendError(t.Conn, uastatus.BadCertificateInvalid, "unparseable certificate")
			return nil, fmt.Errorf("uasc: client certificate: %w", err)
		}
		clientPub = clientCert.PublicKey
		ch.sec.RemoteCertDER = hdr.senderCert
		ch.remotePub = clientPub
	}

	_, payload, err := open(chunk.msgType, chunk.chunkType, chunk.body, 4+hdr.length, openOpts{
		encrypted:  !policy.Insecure,
		signed:     !policy.Insecure,
		verifyKey:  clientPub,
		decryptKey: cfg.Key,
		policy:     policy,
		crypto:     uapolicy.CryptoContext{Engine: cfg.Engine},
	})
	if err != nil {
		_ = sendError(t.Conn, uastatus.BadSecurityChecksFailed, "OPN security failure")
		return nil, err
	}
	msg, err := uamsg.Decode(payload)
	if err != nil {
		_ = sendError(t.Conn, uastatus.BadDecodingError, "bad OPN body")
		return nil, err
	}
	req, ok := msg.(*uamsg.OpenSecureChannelRequest)
	if !ok {
		_ = sendError(t.Conn, uastatus.BadTcpMessageTypeInvalid, "expected OpenSecureChannelRequest")
		return nil, fmt.Errorf("uasc: unexpected %T in OPN", msg)
	}
	modeOK := false
	for _, m := range modes {
		if m == req.SecurityMode {
			modeOK = true
			break
		}
	}
	if !modeOK {
		_ = sendError(t.Conn, uastatus.BadSecurityModeRejected, "mode not offered")
		return nil, fmt.Errorf("uasc: mode %v not offered with policy %s", req.SecurityMode, policy.Name)
	}
	ch.sec.Mode = req.SecurityMode

	var serverNonce []byte
	//studyvet:entropy-exempt — fallback for live serving; deterministic channels (ch.sec.Derive set) pin the OPN response timestamp below
	now := time.Now()
	if ch.sec.Derive != nil {
		// Channel-id collisions across connections are harmless: each
		// connection carries exactly one channel and peers only check
		// their own ids.
		id := ch.sec.Derive.Uint32("channel-id")
		if id == 0 {
			id = 1
		}
		ch.ChannelID = id
		serverNonce = policy.NonceFrom(ch.sec.Derive.Stream("nonce"))
		now = uarsa.Epoch
	} else {
		ch.ChannelID = channelIDCounter.Add(1)
		serverNonce = policy.NewNonce()
	}
	ch.TokenID = 1
	lifetime := req.RequestedLifetime
	if cfg.LifetimeMS > 0 && (lifetime == 0 || lifetime > cfg.LifetimeMS) {
		lifetime = cfg.LifetimeMS
	}
	resp := &uamsg.OpenSecureChannelResponse{
		Header: uamsg.ResponseHeader{
			Timestamp:     now,
			RequestHandle: req.Header.RequestHandle,
			ServiceResult: uastatus.Good,
		},
		ServerProtocolVer: protocolVersion,
		SecurityToken: uamsg.ChannelSecurityToken{
			ChannelID:       ch.ChannelID,
			TokenID:         ch.TokenID,
			CreatedAt:       now,
			RevisedLifetime: lifetime,
		},
		ServerNonce: serverNonce,
	}
	if !policy.Insecure {
		if ch.recvKeys, err = policy.DeriveKeys(serverNonce, req.ClientNonce); err != nil {
			return nil, err
		}
		if ch.sendKeys, err = policy.DeriveKeys(req.ClientNonce, serverNonce); err != nil {
			return nil, err
		}
	}
	if err := ch.sendOPNMsg(1, resp); err != nil {
		return nil, err
	}
	return ch, nil
}
