package uasc

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uarsa"
)

// recordingConn captures everything written to the connection.
type recordingConn struct {
	net.Conn
	mu  sync.Mutex
	out bytes.Buffer
}

func (c *recordingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.out.Write(p)
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *recordingConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.out.Bytes()...)
}

// openOnce runs one complete deterministic handshake (Hello/Ack + OPN
// exchange) and returns the client→server and server→client transcripts.
func openOnce(t *testing.T, policy *uapolicy.Policy, mode uamsg.MessageSecurityMode,
	engine *uarsa.Engine, derive *uarsa.Derivation) (cliOut, srvOut []byte) {
	t.Helper()
	srv, cli, _ := identities(t)
	cConn, sConn := net.Pipe()
	deadline := time.Now().Add(10 * time.Second)
	_ = cConn.SetDeadline(deadline)
	_ = sConn.SetDeadline(deadline)
	cRec := &recordingConn{Conn: cConn}
	sRec := &recordingConn{Conn: sConn}

	cfg := serverCfg(t, srv, policy)
	cfg.Engine = engine
	cfg.Deterministic = true
	done := make(chan error, 1)
	go func() {
		tr, err := ServerHello(sRec, Limits{})
		if err != nil {
			done <- err
			return
		}
		_, err = Accept(tr, cfg)
		done <- err
	}()

	tr, err := ClientHello(cRec, "opc.tcp://det:4840", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Open(tr, ChannelSecurity{
		Policy:        policy,
		Mode:          mode,
		LocalKey:      cli.key,
		LocalCertDER:  cli.cert.Raw,
		RemoteCertDER: srv.cert.Raw,
		Engine:        engine,
		Derive:        derive,
	}, 60000)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("accept: %v", err)
	}
	if ch.ChannelID == 0 || ch.TokenID == 0 {
		t.Fatal("channel/token id not assigned")
	}
	// Snapshot the transcripts before teardown: Close would append a
	// symmetric CLO chunk whose timestamp is wall clock.
	cliOut, srvOut = cRec.bytes(), sRec.bytes()
	_ = cConn.Close()
	_ = sConn.Close()
	return cliOut, srvOut
}

// TestDeterministicHandshakeByteIdentical pins the crypto cache's hit
// condition: with the same exchange derivation — the scanner keys it by
// (campaign seed, purpose, server certificate, policy, mode), not by
// wave — repeated Opens produce bit-identical wire transcripts in both
// directions, with and without a warm memoization engine.
func TestDeterministicHandshakeByteIdentical(t *testing.T) {
	for _, combo := range []struct {
		policy *uapolicy.Policy
		mode   uamsg.MessageSecurityMode
	}{
		// Covers both PKCS#1 v1.5 and OAEP key transport (the padding
		// sources that must draw deterministically).
		{uapolicy.Basic128Rsa15, uamsg.SecurityModeSignAndEncrypt},
		{uapolicy.Basic256Sha256, uamsg.SecurityModeSignAndEncrypt},
		{uapolicy.Basic256Sha256, uamsg.SecurityModeSign},
	} {
		t.Run(combo.policy.Name+"/"+combo.mode.String(), func(t *testing.T) {
			derive := func() *uarsa.Derivation {
				return uarsa.NewDerivation([]byte("opn"), []byte("host-cert"),
					[]byte(combo.policy.URI), []byte{byte(combo.mode)})
			}
			// Run 1: cold — no engine at all.
			cli1, srv1 := openOnce(t, combo.policy, combo.mode, nil, derive())
			// Runs 2 and 3: one shared engine; run 3 replays run 2's
			// exchange entirely from cache.
			engine := uarsa.NewEngine(0)
			cli2, srv2 := openOnce(t, combo.policy, combo.mode, engine, derive())
			cli3, srv3 := openOnce(t, combo.policy, combo.mode, engine, derive())

			if !bytes.Equal(cli1, cli2) || !bytes.Equal(cli2, cli3) {
				t.Error("client transcripts differ across repeated deterministic Opens")
			}
			if !bytes.Equal(srv1, srv2) || !bytes.Equal(srv2, srv3) {
				t.Error("server transcripts differ across repeated deterministic Opens")
			}
			st := engine.Stats()
			if st.Sign.Hits == 0 || st.Decrypt.Hits == 0 || st.Verify.Hits == 0 {
				t.Errorf("replayed handshake did not hit the cache: %+v", st)
			}
		})
	}
}

// TestDeterministicHandshakeDistinctPerExchange checks the other
// direction: different exchange parameters (another host certificate)
// must produce different nonces and ciphertexts even under the same
// campaign seed.
func TestDeterministicHandshakeDistinctPerExchange(t *testing.T) {
	policy, mode := uapolicy.Basic256Sha256, uamsg.SecurityModeSignAndEncrypt
	a, _ := openOnce(t, policy, mode, nil,
		uarsa.NewDerivation([]byte("opn"), []byte("host-a"), []byte(policy.URI), []byte{byte(mode)}))
	b, _ := openOnce(t, policy, mode, nil,
		uarsa.NewDerivation([]byte("opn"), []byte("host-b"), []byte(policy.URI), []byte{byte(mode)}))
	if bytes.Equal(a, b) {
		t.Error("distinct exchange derivations replayed identical transcripts")
	}
}
