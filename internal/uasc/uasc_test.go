package uasc

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/uacert"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uastatus"
)

type testIdentity struct {
	key  *rsa.PrivateKey
	cert *uacert.Certificate
}

var (
	idOnce   sync.Once
	serverID testIdentity
	clientID testIdentity
	bigKeyID testIdentity // 1024-bit, for OAEP-SHA256 policies
)

func identities(t testing.TB) (server, client, big testIdentity) {
	t.Helper()
	idOnce.Do(func() {
		mk := func(bits int, cn string) testIdentity {
			key, err := rsa.GenerateKey(rand.Reader, bits)
			if err != nil {
				t.Fatal(err)
			}
			cert, err := uacert.Generate(key, uacert.Options{
				CommonName:     cn,
				ApplicationURI: "urn:test:" + cn,
				SignatureHash:  uacert.HashSHA256,
			})
			if err != nil {
				t.Fatal(err)
			}
			return testIdentity{key: key, cert: cert}
		}
		serverID = mk(512, "server")
		clientID = mk(512, "client")
		bigKeyID = mk(1024, "bigserver")
	})
	return serverID, clientID, bigKeyID
}

// startServer runs Hello + Accept + a simple service loop on one pipe end.
func startServer(t *testing.T, conn net.Conn, cfg ServerConfig, limits Limits) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		defer conn.Close()
		tr, err := ServerHello(conn, limits)
		if err != nil {
			done <- err
			return
		}
		ch, err := Accept(tr, cfg)
		if err != nil {
			done <- err
			return
		}
		for {
			got, err := ch.Recv()
			if err != nil {
				done <- err
				return
			}
			switch m := got.Message.(type) {
			case *uamsg.CloseSecureChannelRequest:
				done <- nil
				return
			case *uamsg.GetEndpointsRequest:
				resp := &uamsg.GetEndpointsResponse{
					Header: uamsg.ResponseHeader{
						RequestHandle: m.Header.RequestHandle,
						ServiceResult: uastatus.Good,
					},
					Endpoints: []uamsg.EndpointDescription{{EndpointURL: m.EndpointURL}},
				}
				if err := ch.SendResponse(got.RequestID, resp); err != nil {
					done <- err
					return
				}
			default:
				done <- errors.New("unexpected request type")
				return
			}
		}
	}()
	return done
}

func serverCfg(t *testing.T, id testIdentity, policies ...*uapolicy.Policy) ServerConfig {
	t.Helper()
	allowed := make(map[string][]uamsg.MessageSecurityMode)
	for _, p := range policies {
		if p.Insecure {
			allowed[p.URI] = []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}
		} else {
			allowed[p.URI] = []uamsg.MessageSecurityMode{
				uamsg.SecurityModeSign, uamsg.SecurityModeSignAndEncrypt,
			}
		}
	}
	return ServerConfig{
		Key:     id.key,
		CertDER: id.cert.Raw,
		AllowedModes: func(p *uapolicy.Policy) []uamsg.MessageSecurityMode {
			return allowed[p.URI]
		},
		LifetimeMS: 3600000,
	}
}

func dialPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	c, s := net.Pipe()
	deadline := time.Now().Add(10 * time.Second)
	_ = c.SetDeadline(deadline)
	_ = s.SetDeadline(deadline)
	return c, s
}

func TestHandshakeAndRequestAllSecurityCombos(t *testing.T) {
	srv, cli, big := identities(t)
	combos := []struct {
		policy *uapolicy.Policy
		mode   uamsg.MessageSecurityMode
		server testIdentity
		client testIdentity
	}{
		{uapolicy.None, uamsg.SecurityModeNone, srv, cli},
		{uapolicy.Basic128Rsa15, uamsg.SecurityModeSign, srv, cli},
		{uapolicy.Basic128Rsa15, uamsg.SecurityModeSignAndEncrypt, srv, cli},
		{uapolicy.Basic256, uamsg.SecurityModeSign, srv, cli},
		{uapolicy.Basic256, uamsg.SecurityModeSignAndEncrypt, srv, cli},
		{uapolicy.Aes128Sha256RsaOaep, uamsg.SecurityModeSignAndEncrypt, srv, cli},
		{uapolicy.Basic256Sha256, uamsg.SecurityModeSign, srv, cli},
		{uapolicy.Basic256Sha256, uamsg.SecurityModeSignAndEncrypt, srv, cli},
		// RSA-PSS-SHA256 and OAEP-SHA256 need >512-bit keys on both ends.
		{uapolicy.Aes256Sha256RsaPss, uamsg.SecurityModeSignAndEncrypt, big, big},
	}
	for _, combo := range combos {
		name := combo.policy.Name + "/" + combo.mode.String()
		t.Run(name, func(t *testing.T) {
			cConn, sConn := dialPair(t)
			done := startServer(t, sConn, serverCfg(t, combo.server,
				uapolicy.None, uapolicy.Basic128Rsa15, uapolicy.Basic256,
				uapolicy.Aes128Sha256RsaOaep, uapolicy.Basic256Sha256,
				uapolicy.Aes256Sha256RsaPss), Limits{})

			tr, err := ClientHello(cConn, "opc.tcp://test:4840", Limits{})
			if err != nil {
				t.Fatalf("hello: %v", err)
			}
			sec := ChannelSecurity{Policy: combo.policy, Mode: combo.mode}
			if !combo.policy.Insecure {
				sec.LocalKey = combo.client.key
				sec.LocalCertDER = combo.client.cert.Raw
				sec.RemoteCertDER = combo.server.cert.Raw
			}
			ch, err := Open(tr, sec, 60000)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if ch.ChannelID == 0 || ch.TokenID == 0 {
				t.Error("channel/token id not assigned")
			}

			req := &uamsg.GetEndpointsRequest{EndpointURL: "opc.tcp://test:4840"}
			msg, err := ch.Request(req)
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			resp, ok := msg.(*uamsg.GetEndpointsResponse)
			if !ok {
				t.Fatalf("unexpected response %T", msg)
			}
			if len(resp.Endpoints) != 1 || resp.Endpoints[0].EndpointURL != req.EndpointURL {
				t.Errorf("response = %+v", resp)
			}

			if err := ch.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := <-done; err != nil {
				t.Fatalf("server: %v", err)
			}
			if err := ch.Close(); !errors.Is(err, ErrClosed) {
				t.Errorf("double close = %v", err)
			}
		})
	}
}

func TestMultiChunkMessages(t *testing.T) {
	srv, cli, _ := identities(t)
	for _, mode := range []uamsg.MessageSecurityMode{
		uamsg.SecurityModeNone, uamsg.SecurityModeSign, uamsg.SecurityModeSignAndEncrypt,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			cConn, sConn := dialPair(t)
			// Tiny buffers force chunking for any non-trivial payload.
			small := Limits{ReceiveBufSize: 8192, SendBufSize: 8192,
				MaxMessageSize: 1 << 20, MaxChunkCount: 64}
			policy := uapolicy.Basic256Sha256
			if mode == uamsg.SecurityModeNone {
				policy = uapolicy.None
			}
			done := make(chan error, 1)
			go func() {
				defer sConn.Close()
				tr, err := ServerHello(sConn, small)
				if err != nil {
					done <- err
					return
				}
				ch, err := Accept(tr, serverCfg(t, srv, policy))
				if err != nil {
					done <- err
					return
				}
				got, err := ch.Recv()
				if err != nil {
					done <- err
					return
				}
				req, ok := got.Message.(*uamsg.BrowseRequest)
				if !ok {
					done <- errors.New("expected BrowseRequest")
					return
				}
				// Respond with a payload much larger than one chunk.
				resp := &uamsg.BrowseResponse{
					Header: uamsg.ResponseHeader{ServiceResult: uastatus.Good},
				}
				refs := make([]uamsg.ReferenceDescription, len(req.NodesToBrowse)*20)
				for i := range refs {
					refs[i].BrowseName.Name = strings.Repeat("n", 200)
				}
				resp.Results = []uamsg.BrowseResult{{Status: uastatus.Good, References: refs}}
				done <- ch.SendResponse(got.RequestID, resp)
			}()

			tr, err := ClientHello(cConn, "opc.tcp://t:4840", small)
			if err != nil {
				t.Fatal(err)
			}
			sec := ChannelSecurity{Policy: policy, Mode: mode}
			if !policy.Insecure {
				sec.LocalKey = cli.key
				sec.LocalCertDER = cli.cert.Raw
				sec.RemoteCertDER = srv.cert.Raw
			}
			ch, err := Open(tr, sec, 60000)
			if err != nil {
				t.Fatal(err)
			}
			// Large request (many browse descriptions) and large response.
			req := &uamsg.BrowseRequest{NodesToBrowse: make([]uamsg.BrowseDescription, 60)}
			msg, err := ch.Request(req)
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			resp, ok := msg.(*uamsg.BrowseResponse)
			if !ok {
				t.Fatalf("unexpected %T", msg)
			}
			if len(resp.Results[0].References) != 60*20 {
				t.Errorf("references = %d", len(resp.Results[0].References))
			}
			if err := <-done; err != nil {
				t.Fatalf("server: %v", err)
			}
			_ = ch.Close()
		})
	}
}

func TestServerRejectsClientCertificate(t *testing.T) {
	// The paper's "Certificate not accepted" class: 80 hosts abort secure
	// channel establishment when offered a self-signed scanner cert.
	srv, cli, _ := identities(t)
	cConn, sConn := dialPair(t)
	cfg := serverCfg(t, srv, uapolicy.Basic256Sha256)
	cfg.ValidateClientCert = func([]byte) uastatus.Code {
		return uastatus.BadSecurityChecksFailed
	}
	done := make(chan error, 1)
	go func() {
		defer sConn.Close()
		tr, err := ServerHello(sConn, Limits{})
		if err != nil {
			done <- err
			return
		}
		_, err = Accept(tr, cfg)
		done <- err
	}()

	tr, err := ClientHello(cConn, "opc.tcp://t:4840", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(tr, ChannelSecurity{
		Policy:        uapolicy.Basic256Sha256,
		Mode:          uamsg.SecurityModeSignAndEncrypt,
		LocalKey:      cli.key,
		LocalCertDER:  cli.cert.Raw,
		RemoteCertDER: srv.cert.Raw,
	}, 60000)
	var ce uamsg.ConnError
	if !errors.As(err, &ce) || ce.Code != uastatus.BadSecurityChecksFailed {
		t.Errorf("client error = %v, want BadSecurityChecksFailed", err)
	}
	if err := <-done; err == nil {
		t.Error("server Accept should fail")
	}
}

func TestServerRejectsUnofferedPolicy(t *testing.T) {
	srv, cli, _ := identities(t)
	cConn, sConn := dialPair(t)
	done := make(chan error, 1)
	go func() {
		defer sConn.Close()
		tr, err := ServerHello(sConn, Limits{})
		if err != nil {
			done <- err
			return
		}
		_, err = Accept(tr, serverCfg(t, srv, uapolicy.None)) // only None offered
		done <- err
	}()

	tr, err := ClientHello(cConn, "opc.tcp://t:4840", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(tr, ChannelSecurity{
		Policy:        uapolicy.Basic256Sha256,
		Mode:          uamsg.SecurityModeSignAndEncrypt,
		LocalKey:      cli.key,
		LocalCertDER:  cli.cert.Raw,
		RemoteCertDER: srv.cert.Raw,
	}, 60000)
	var ce uamsg.ConnError
	if !errors.As(err, &ce) || ce.Code != uastatus.BadSecurityPolicyRejected {
		t.Errorf("client error = %v, want BadSecurityPolicyRejected", err)
	}
	if err := <-done; err == nil {
		t.Error("server Accept should fail")
	}
}

func TestOpenRequiresCertificatesForSecurePolicies(t *testing.T) {
	cConn, _ := dialPair(t)
	tr := &Transport{Conn: cConn, send: DefaultLimits(), recv: DefaultLimits()}
	if _, err := Open(tr, ChannelSecurity{Policy: uapolicy.Basic256Sha256}, 0); err == nil {
		t.Error("Open without certs should fail")
	}
	if _, err := Open(tr, ChannelSecurity{}, 0); err == nil {
		t.Error("Open with nil policy should fail")
	}
}

func TestHelloNegotiationRevisesLimits(t *testing.T) {
	cConn, sConn := dialPair(t)
	serverDone := make(chan *Transport, 1)
	errCh := make(chan error, 1)
	go func() {
		tr, err := ServerHello(sConn, Limits{
			ReceiveBufSize: 16384, SendBufSize: 16384,
			MaxMessageSize: 1 << 16, MaxChunkCount: 8,
		})
		errCh <- err
		serverDone <- tr
	}()
	tr, err := ClientHello(cConn, "opc.tcp://x", Limits{
		ReceiveBufSize: 65535, SendBufSize: 65535,
		MaxMessageSize: 1 << 24, MaxChunkCount: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	st := <-serverDone
	// Client may send at most what the server can receive.
	if tr.SendLimits().SendBufSize != 16384 {
		t.Errorf("client send buf = %d", tr.SendLimits().SendBufSize)
	}
	if tr.SendLimits().MaxChunkCount != 8 || tr.SendLimits().MaxMessageSize != 1<<16 {
		t.Errorf("client limits = %+v", tr.SendLimits())
	}
	if st.EndpointURL != "opc.tcp://x" {
		t.Errorf("server saw endpoint %q", st.EndpointURL)
	}
}

func TestServerHelloRejectsNonHello(t *testing.T) {
	cConn, sConn := dialPair(t)
	errCh := make(chan error, 1)
	go func() {
		_, err := ServerHello(sConn, Limits{})
		errCh <- err
	}()
	if err := writeRaw(cConn, uamsg.MsgTypeMessage, uamsg.ChunkFinal, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Read the ERR frame first: net.Pipe writes are synchronous, so the
	// server's error return only happens after we consume its ERR.
	chunk, err := readRaw(cConn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.msgType != uamsg.MsgTypeError {
		t.Errorf("got %q, want ERR", chunk.msgType)
	}
	if err := <-errCh; err == nil {
		t.Error("ServerHello should reject MSG frame")
	}
}

func TestReadRawEnforcesLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeRaw(&buf, uamsg.MsgTypeMessage, uamsg.ChunkFinal, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := readRaw(&buf, 50); !errors.Is(err, ErrChunkTooLarge) {
		t.Errorf("err = %v, want ErrChunkTooLarge", err)
	}
}

// Regression: maxSize == 0 used to mean "unlimited", letting a hostile
// 4 GiB size claim drive the body allocation. The absolute frame-size
// ceiling must reject it before any allocation happens — in readRaw and
// in the transport's readChunk alike.
func TestReadRawRejectsOversizedClaimWithoutLimit(t *testing.T) {
	frame := make([]byte, chunkHeaderSize)
	copy(frame, uamsg.MsgTypeMessage)
	frame[3] = uamsg.ChunkFinal
	binary.LittleEndian.PutUint32(frame[4:], 0xfffffff0)

	if _, err := readRaw(bytes.NewReader(frame), 0); !errors.Is(err, ErrChunkTooLarge) {
		t.Errorf("readRaw(maxSize=0) err = %v, want ErrChunkTooLarge", err)
	}

	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	go func() {
		sConn.Write(frame)
	}()
	tr := &Transport{Conn: cConn} // no negotiated limits at all
	if _, err := tr.readChunk(); !errors.Is(err, ErrChunkTooLarge) {
		t.Errorf("readChunk (no limits) err = %v, want ErrChunkTooLarge", err)
	}
}

func BenchmarkSecureChannelRequest(b *testing.B) {
	srv, cli, _ := identities(b)
	cConn, sConn := net.Pipe()
	go func() {
		tr, err := ServerHello(sConn, Limits{})
		if err != nil {
			return
		}
		allowed := map[string][]uamsg.MessageSecurityMode{
			uapolicy.URIBasic256Sha256: {uamsg.SecurityModeSignAndEncrypt},
		}
		ch, err := Accept(tr, ServerConfig{
			Key: srv.key, CertDER: srv.cert.Raw,
			AllowedModes: func(p *uapolicy.Policy) []uamsg.MessageSecurityMode {
				return allowed[p.URI]
			},
		})
		if err != nil {
			return
		}
		for {
			got, err := ch.Recv()
			if err != nil {
				return
			}
			if req, ok := got.Message.(*uamsg.GetEndpointsRequest); ok {
				_ = ch.SendResponse(got.RequestID, &uamsg.GetEndpointsResponse{
					Header: uamsg.ResponseHeader{RequestHandle: req.Header.RequestHandle},
				})
			}
		}
	}()
	tr, err := ClientHello(cConn, "opc.tcp://bench", Limits{})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := Open(tr, ChannelSecurity{
		Policy:        uapolicy.Basic256Sha256,
		Mode:          uamsg.SecurityModeSignAndEncrypt,
		LocalKey:      cli.key,
		LocalCertDER:  cli.cert.Raw,
		RemoteCertDER: srv.cert.Raw,
	}, 3600000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Request(&uamsg.GetEndpointsRequest{}); err != nil {
			b.Fatal(err)
		}
	}
}
