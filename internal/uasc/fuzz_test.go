package uasc

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/uamsg"
)

// FuzzReadRaw covers the frame reader that parses the very first bytes
// a hostile peer sends (DESIGN.md §9): whatever the header claims and
// whatever maxSize the caller negotiated, readRaw must not panic, must
// cap the allocation at absoluteMaxFrameSize, and must never return a
// body larger than the bytes actually received.
func FuzzReadRaw(f *testing.F) {
	valid := &bytes.Buffer{}
	if err := writeRaw(valid, "HEL", uamsg.ChunkFinal, []byte("hello body")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes(), uint32(0))
	f.Add(valid.Bytes(), uint32(4096))

	hostile := make([]byte, chunkHeaderSize)
	copy(hostile, "MSGF")
	binary.LittleEndian.PutUint32(hostile[4:], 0xfffffff0)
	f.Add(hostile, uint32(0))                         // oversize claim against the hard ceiling
	f.Add([]byte("OPNF\x04\x00\x00\x00"), uint32(64)) // size below header length
	f.Add([]byte{}, uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, maxSize uint32) {
		c, err := readRaw(bytes.NewReader(data), maxSize)
		if err != nil {
			return
		}
		if len(c.body)+chunkHeaderSize > len(data) {
			t.Errorf("body of %d bytes from %d input bytes", len(c.body), len(data))
		}
		limit := maxSize
		if limit == 0 || limit > absoluteMaxFrameSize {
			limit = absoluteMaxFrameSize
		}
		if uint32(len(c.body)+chunkHeaderSize) > limit {
			t.Errorf("frame of %d bytes exceeds limit %d", len(c.body)+chunkHeaderSize, limit)
		}
	})
}
