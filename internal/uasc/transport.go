// Package uasc implements the OPC UA secure-conversation layer
// (OPC 10000-6): the UACP Hello/Acknowledge negotiation, chunked message
// framing, asymmetric-secured OpenSecureChannel exchanges and
// symmetric-secured MSG/CLO messages for all six security policies.
//
// One deliberate wire simplification: padding before the signature is
// encoded as the padding bytes followed by a fixed two-byte padding
// length. The specification instead uses a one-byte length with an
// optional extra byte for RSA keys over 2048 bits. Both ends of this
// stack share the simpler scheme; the security properties (sign-then-
// encrypt, block alignment) are unchanged.
package uasc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/uamsg"
	"repro/internal/uastatus"
)

// Limits are the negotiated UACP buffer limits.
type Limits struct {
	ReceiveBufSize uint32
	SendBufSize    uint32
	MaxMessageSize uint32
	MaxChunkCount  uint32
}

// DefaultLimits mirror the defaults of common OPC UA stacks.
func DefaultLimits() Limits {
	return Limits{
		ReceiveBufSize: 65535,
		SendBufSize:    65535,
		MaxMessageSize: 16 << 20,
		MaxChunkCount:  4096,
	}
}

const (
	chunkHeaderSize  = 8
	minChunkBufSize  = 8192
	maxHelloBodySize = 4096
	protocolVersion  = uamsg.ProtocolVersion

	// absoluteMaxFrameSize is the hard ceiling on any single frame,
	// applied even when a caller passes maxSize == 0 or limits were
	// never negotiated. A wire-claimed size is attacker-controlled; it
	// must never size an allocation unboundedly.
	absoluteMaxFrameSize = 16 << 20
)

// Errors returned by the transport.
var (
	ErrChunkTooLarge = errors.New("uasc: chunk exceeds negotiated buffer size")
	ErrTooManyChunks = errors.New("uasc: message exceeds chunk count limit")
	ErrMessageTooBig = errors.New("uasc: message exceeds size limit")
	ErrAborted       = errors.New("uasc: peer aborted message")
	ErrClosed        = errors.New("uasc: connection closed")
)

// Transport is a UACP connection after Hello/Acknowledge negotiation.
type Transport struct {
	Conn        net.Conn
	EndpointURL string // URL from Hello (server side) or dialed (client side)

	send Limits // limits for outgoing chunks (peer's receive capacity)
	recv Limits // limits for incoming chunks (our receive capacity)

	// readBuf is the chunk receive buffer reused across readChunk calls;
	// the secure-channel layer copies everything it keeps out of it.
	readBuf []byte
}

// SendLimits returns the limits applied to outgoing chunks.
func (t *Transport) SendLimits() Limits { return t.send }

// RecvLimits returns the limits applied to incoming chunks.
func (t *Transport) RecvLimits() Limits { return t.recv }

// Close closes the underlying connection.
func (t *Transport) Close() error { return t.Conn.Close() }

// writeRaw writes one framed chunk: 3-byte type, 1-byte chunk flag,
// 4-byte total size, body.
func writeRaw(w io.Writer, msgType string, chunkType byte, body []byte) error {
	if len(msgType) != 3 {
		return fmt.Errorf("uasc: invalid message type %q", msgType)
	}
	hdr := make([]byte, chunkHeaderSize, chunkHeaderSize+len(body))
	copy(hdr, msgType)
	hdr[3] = chunkType
	binary.LittleEndian.PutUint32(hdr[4:], uint32(chunkHeaderSize+len(body)))
	_, err := w.Write(append(hdr, body...))
	return err
}

// rawChunk is one received frame.
type rawChunk struct {
	msgType   string
	chunkType byte
	body      []byte
}

// readRaw reads one framed chunk, enforcing maxSize on the total frame.
// maxSize == 0 does not mean unlimited: absoluteMaxFrameSize always
// applies, so a hostile size claim can never drive the allocation.
func readRaw(r io.Reader, maxSize uint32) (rawChunk, error) {
	var hdr [chunkHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return rawChunk{}, err
	}
	size := binary.LittleEndian.Uint32(hdr[4:])
	if size < chunkHeaderSize {
		return rawChunk{}, fmt.Errorf("uasc: frame size %d too small", size)
	}
	if maxSize == 0 || maxSize > absoluteMaxFrameSize {
		maxSize = absoluteMaxFrameSize
	}
	if size > maxSize {
		return rawChunk{}, fmt.Errorf("%w: %d > %d", ErrChunkTooLarge, size, maxSize)
	}
	body := make([]byte, size-chunkHeaderSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return rawChunk{}, err
	}
	return rawChunk{
		msgType:   string(hdr[:3]),
		chunkType: hdr[3],
		body:      body,
	}, nil
}

// internMsgType maps the three header bytes onto the package's message
// type constants so per-chunk reads do not allocate a string.
func internMsgType(b []byte) string {
	switch {
	case string(b) == uamsg.MsgTypeMessage:
		return uamsg.MsgTypeMessage
	case string(b) == uamsg.MsgTypeOpen:
		return uamsg.MsgTypeOpen
	case string(b) == uamsg.MsgTypeClose:
		return uamsg.MsgTypeClose
	case string(b) == uamsg.MsgTypeError:
		return uamsg.MsgTypeError
	case string(b) == uamsg.MsgTypeHello:
		return uamsg.MsgTypeHello
	case string(b) == uamsg.MsgTypeAcknowledge:
		return uamsg.MsgTypeAcknowledge
	default:
		return string(b)
	}
}

// readChunk reads one framed chunk into the transport's reusable
// receive buffer, enforcing the negotiated receive size. The returned
// chunk body aliases that buffer and is valid only until the next
// readChunk call; callers copy what they keep.
func (t *Transport) readChunk() (rawChunk, error) {
	var hdr [chunkHeaderSize]byte
	if _, err := io.ReadFull(t.Conn, hdr[:]); err != nil {
		return rawChunk{}, err
	}
	size := binary.LittleEndian.Uint32(hdr[4:])
	if size < chunkHeaderSize {
		return rawChunk{}, fmt.Errorf("uasc: frame size %d too small", size)
	}
	maxSize := t.recv.ReceiveBufSize
	if maxSize == 0 || maxSize > absoluteMaxFrameSize {
		maxSize = absoluteMaxFrameSize
	}
	if size > maxSize {
		return rawChunk{}, fmt.Errorf("%w: %d > %d", ErrChunkTooLarge, size, maxSize)
	}
	n := int(size - chunkHeaderSize)
	if cap(t.readBuf) < n {
		t.readBuf = make([]byte, n)
	}
	body := t.readBuf[:n]
	if _, err := io.ReadFull(t.Conn, body); err != nil {
		return rawChunk{}, err
	}
	return rawChunk{
		msgType:   internMsgType(hdr[:3]),
		chunkType: hdr[3],
		body:      body,
	}, nil
}

// sendError transmits a UACP ERR message; used by servers before closing.
func sendError(w io.Writer, code uastatus.Code, reason string) error {
	return writeRaw(w, uamsg.MsgTypeError, uamsg.ChunkFinal,
		uamsg.ConnError{Code: code, Reason: reason}.Encode())
}

// ClientHello performs the client side of the UACP handshake.
func ClientHello(conn net.Conn, endpointURL string, want Limits) (*Transport, error) {
	if want.ReceiveBufSize < minChunkBufSize {
		want = DefaultLimits()
	}
	hello := uamsg.Hello{
		Version:        protocolVersion,
		ReceiveBufSize: want.ReceiveBufSize,
		SendBufSize:    want.SendBufSize,
		MaxMessageSize: want.MaxMessageSize,
		MaxChunkCount:  want.MaxChunkCount,
		EndpointURL:    endpointURL,
	}
	if err := writeRaw(conn, uamsg.MsgTypeHello, uamsg.ChunkFinal, hello.Encode()); err != nil {
		return nil, fmt.Errorf("uasc: sending hello: %w", err)
	}
	chunk, err := readRaw(conn, maxHelloBodySize)
	if err != nil {
		return nil, fmt.Errorf("uasc: reading acknowledge: %w", err)
	}
	switch chunk.msgType {
	case uamsg.MsgTypeAcknowledge:
	case uamsg.MsgTypeError:
		if ce, err := uamsg.DecodeConnError(chunk.body); err == nil {
			return nil, ce
		}
		return nil, errors.New("uasc: malformed error response to hello")
	default:
		return nil, fmt.Errorf("uasc: unexpected %q response to hello", chunk.msgType)
	}
	ack, err := uamsg.DecodeAcknowledge(chunk.body)
	if err != nil {
		return nil, fmt.Errorf("uasc: malformed acknowledge: %w", err)
	}
	if ack.Version != protocolVersion {
		return nil, fmt.Errorf("uasc: unsupported protocol version %d", ack.Version)
	}
	return &Transport{
		Conn:        conn,
		EndpointURL: endpointURL,
		// We may send at most what the server can receive.
		send: Limits{
			ReceiveBufSize: ack.ReceiveBufSize,
			SendBufSize:    ack.ReceiveBufSize,
			MaxMessageSize: ack.MaxMessageSize,
			MaxChunkCount:  ack.MaxChunkCount,
		},
		recv: want,
	}, nil
}

// ServerHello performs the server side of the UACP handshake, revising
// the client's requested limits down to ours.
func ServerHello(conn net.Conn, ours Limits) (*Transport, error) {
	if ours.ReceiveBufSize < minChunkBufSize {
		ours = DefaultLimits()
	}
	chunk, err := readRaw(conn, maxHelloBodySize)
	if err != nil {
		return nil, fmt.Errorf("uasc: reading hello: %w", err)
	}
	if chunk.msgType != uamsg.MsgTypeHello {
		_ = sendError(conn, uastatus.BadTcpMessageTypeInvalid, "expected HEL")
		return nil, fmt.Errorf("uasc: unexpected %q instead of hello", chunk.msgType)
	}
	hello, err := uamsg.DecodeHello(chunk.body)
	if err != nil {
		_ = sendError(conn, uastatus.BadDecodingError, "malformed HEL")
		return nil, fmt.Errorf("uasc: malformed hello: %w", err)
	}
	if hello.Version != protocolVersion {
		_ = sendError(conn, uastatus.BadProtocolVersionUnsupported, "")
		return nil, fmt.Errorf("uasc: unsupported protocol version %d", hello.Version)
	}
	ack := uamsg.Acknowledge{
		Version:        protocolVersion,
		ReceiveBufSize: minU32(ours.ReceiveBufSize, hello.SendBufSize),
		SendBufSize:    minU32(ours.SendBufSize, hello.ReceiveBufSize),
		MaxMessageSize: minNonZero(ours.MaxMessageSize, hello.MaxMessageSize),
		MaxChunkCount:  minNonZero(ours.MaxChunkCount, hello.MaxChunkCount),
	}
	if ack.ReceiveBufSize < minChunkBufSize || ack.SendBufSize < minChunkBufSize {
		_ = sendError(conn, uastatus.BadTcpNotEnoughResources, "buffer too small")
		return nil, errors.New("uasc: peer buffers below minimum")
	}
	if err := writeRaw(conn, uamsg.MsgTypeAcknowledge, uamsg.ChunkFinal, ack.Encode()); err != nil {
		return nil, fmt.Errorf("uasc: sending acknowledge: %w", err)
	}
	return &Transport{
		Conn:        conn,
		EndpointURL: hello.EndpointURL,
		send: Limits{
			ReceiveBufSize: ack.SendBufSize,
			SendBufSize:    ack.SendBufSize,
			MaxMessageSize: ack.MaxMessageSize,
			MaxChunkCount:  ack.MaxChunkCount,
		},
		recv: Limits{
			ReceiveBufSize: ack.ReceiveBufSize,
			SendBufSize:    ack.ReceiveBufSize,
			MaxMessageSize: ack.MaxMessageSize,
			MaxChunkCount:  ack.MaxChunkCount,
		},
	}, nil
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// minNonZero treats zero as "unlimited".
func minNonZero(a, b uint32) uint32 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	default:
		return minU32(a, b)
	}
}
