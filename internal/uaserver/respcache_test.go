package uaserver

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// newCacheTestServer builds (without starting) a server with secure and
// insecure endpoints plus discovery announcements, so both cached
// suffixes are non-trivial.
func newCacheTestServer(t testing.TB) *Server {
	ids(t)
	srv, err := New(Config{
		ApplicationURI:  "urn:test:cache",
		ProductURI:      "urn:test:product",
		ApplicationName: "Cache Server",
		EndpointURL:     "opc.tcp://192.0.2.50:4840",
		ExtraEndpointURLs: []string{
			"opc.tcp://192.0.2.51:4840",
		},
		Endpoints: []EndpointConfig{
			{Policy: uapolicy.None, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}},
			{Policy: uapolicy.Basic256Sha256, Modes: []uamsg.MessageSecurityMode{
				uamsg.SecurityModeSign, uamsg.SecurityModeSignAndEncrypt}},
		},
		TokenTypes: []uamsg.UserTokenType{uamsg.UserTokenAnonymous, uamsg.UserTokenUserName},
		Key:        srvKey,
		CertDER:    srvCrt.Raw,
		KnownServers: []uamsg.ApplicationDescription{{
			ApplicationURI: "urn:test:announced",
			DiscoveryURLs:  []string{"opc.tcp://192.0.2.60:4841"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestResponseCacheByteIdentical is the response-cache equivalence
// gate at the wire level: with identical response headers, the cached
// PreEncodedResponse and the structured response must encode to the
// same bytes, for both GetEndpoints and FindServers.
func TestResponseCacheByteIdentical(t *testing.T) {
	srv := newCacheTestServer(t)
	fixed := uamsg.ResponseHeader{
		Timestamp:     time.Date(2020, 8, 30, 12, 0, 0, 0, time.UTC),
		RequestHandle: 77,
		ServiceResult: uastatus.Good,
	}
	for _, req := range []uamsg.Message{
		&uamsg.GetEndpointsRequest{},
		&uamsg.FindServersRequest{},
	} {
		srv.EnableResponseCache(true)
		cached := srv.dispatch(nil, nil, req)
		srv.EnableResponseCache(false)
		plain := srv.dispatch(nil, nil, req)
		srv.EnableResponseCache(true)

		if _, ok := cached.(*uamsg.PreEncodedResponse); !ok {
			t.Fatalf("%T: cached dispatch returned %T", req, cached)
		}
		if _, ok := plain.(*uamsg.PreEncodedResponse); ok {
			t.Fatalf("%T: uncached dispatch returned the cached type", req)
		}
		*cached.(uamsg.Response).ResponseHeader() = fixed
		*plain.(uamsg.Response).ResponseHeader() = fixed
		a, b := uamsg.Encode(cached), uamsg.Encode(plain)
		if !bytes.Equal(a, b) {
			t.Errorf("%T: cached encoding differs: %d bytes vs %d", req, len(a), len(b))
		}
		// The cached bytes must decode back to the structured response.
		dec, err := uamsg.Decode(a)
		if err != nil {
			t.Fatalf("%T: decoding cached response: %v", req, err)
		}
		if reflect.TypeOf(dec) == reflect.TypeOf(cached) {
			t.Errorf("%T: cached response did not decode to the structured type", req)
		}
	}
}

// TestCachedGetEndpointsServeAllocBudget gates the serve-side hot path:
// answering a GetEndpoints request from the cache — dispatch plus full
// message encoding into a pooled buffer — must stay within a fixed
// small allocation budget, independent of endpoint table size (the
// endpoint array with its embedded certificate is served as cached
// bytes, never re-encoded).
func TestCachedGetEndpointsServeAllocBudget(t *testing.T) {
	srv := newCacheTestServer(t)
	req := &uamsg.GetEndpointsRequest{}
	e := uatypes.AcquireEncoder(len(srv.epSuffix) + 128)
	defer uatypes.ReleaseEncoder(e)
	allocs := testing.AllocsPerRun(500, func() {
		resp := srv.dispatch(nil, nil, req)
		e.Reset()
		uamsg.EncodeTo(e, resp)
	})
	// One allocation for the response value itself; the body is cached.
	if allocs > 2 {
		t.Errorf("cached GetEndpoints serve allocates %.1f objects, budget 2", allocs)
	}
}

func BenchmarkGetEndpointsServe(b *testing.B) {
	srv := newCacheTestServer(b)
	req := &uamsg.GetEndpointsRequest{}
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"cached", true}, {"uncached", false}} {
		b.Run(mode.name, func(b *testing.B) {
			srv.EnableResponseCache(mode.cached)
			defer srv.EnableResponseCache(true)
			e := uatypes.AcquireEncoder(len(srv.epSuffix) + 128)
			defer uatypes.ReleaseEncoder(e)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp := srv.dispatch(nil, nil, req)
				e.Reset()
				uamsg.EncodeTo(e, resp)
			}
		})
	}
}
