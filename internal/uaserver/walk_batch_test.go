package uaserver

import (
	"context"
	"errors"
	mrand "math/rand"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/uaclient"
	"repro/internal/uamsg"
	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// TestWalkBatchedAttributeReads exercises the >100-node batching path of
// the walker and continuation points on the server (MaxRefsPerBrowse).
func TestWalkBatchedAttributeReads(t *testing.T) {
	_, url := startTestServer(t, func(cfg *Config) {
		space := addrspace.New("urn:test:server", "2.1.0")
		if _, err := addrspace.Populate(space, addrspace.BuildOptions{
			Profile:            addrspace.ProfileProduction,
			Variables:          230,
			Methods:            120,
			AnonReadableFrac:   0.9,
			AnonWritableFrac:   0.4,
			AnonExecutableFrac: 0.5,
			Rand:               mrand.New(mrand.NewSource(5)),
		}); err != nil {
			t.Fatal(err)
		}
		cfg.Space = space
		cfg.MaxRefsPerBrowse = 50 // force continuation points
	})
	c := dialInsecure(t, url)
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Walk(context.Background(), uaclient.WalkOptions{MaxNodes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	var vars, readable, writable, methods, exec int
	for _, n := range res.Nodes {
		switch n.Class {
		case uamsg.NodeClassVariable:
			vars++
			if n.UserAccessLevel.CanRead() {
				readable++
			}
			if n.UserAccessLevel.CanWrite() {
				writable++
			}
		case uamsg.NodeClassMethod:
			methods++
			if n.UserExecutable {
				exec++
			}
		}
	}
	if vars != 230+7 {
		t.Errorf("variables = %d, want 237", vars)
	}
	// Exact-count semantics: 207 readable app vars + 7 standard.
	if readable != 207+7 {
		t.Errorf("readable = %d, want 214", readable)
	}
	if writable != 92 {
		t.Errorf("writable = %d, want 92", writable)
	}
	if methods != 120 || exec != 60 {
		t.Errorf("methods/exec = %d/%d, want 120/60", methods, exec)
	}
}

func TestWalkReadValuesSamples(t *testing.T) {
	_, url := startTestServer(t, nil)
	c := dialInsecure(t, url)
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Walk(context.Background(), uaclient.WalkOptions{
		MaxNodes:      1000,
		ReadValues:    true,
		MaxValueReads: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampled := 0
	for _, n := range res.Nodes {
		if n.Value != nil {
			sampled++
		}
	}
	if sampled == 0 || sampled > 3 {
		t.Errorf("value samples = %d, want 1..3", sampled)
	}
}

func TestClientErrorsWithoutChannel(t *testing.T) {
	_, url := startTestServer(t, nil)
	c, err := uaclient.Dial(context.Background(), url, uaclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GetEndpoints(); err == nil {
		t.Error("GetEndpoints without channel should fail")
	}
	if err := c.OpenInsecureChannel(); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenInsecureChannel(); err == nil {
		t.Error("double OpenChannel should fail")
	}
	// Session-required services fault without a session.
	_, err = c.Browse(addrspace.ObjectsFolder())
	var se uaclient.ServiceError
	if !errors.As(err, &se) || se.Code != uastatus.BadSessionIdInvalid {
		t.Errorf("browse without session = %v", err)
	}
	if se.Error() == "" {
		t.Error("ServiceError message empty")
	}
	// CloseSession without a session is a no-op.
	if err := c.CloseSession(); err != nil {
		t.Errorf("CloseSession without session = %v", err)
	}
}

func TestReadUnknownNodeAndAttributes(t *testing.T) {
	_, url := startTestServer(t, nil)
	c := dialInsecure(t, url)
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	dv, err := c.ReadValue(uatypes.NewStringNodeID(2, "does-not-exist"))
	if err != nil {
		t.Fatal(err)
	}
	if !dv.HasStatus || dv.Status != uastatus.BadNodeIdUnknown {
		t.Errorf("unknown node status = %v", dv.Status)
	}
	// Reading Value of an Object is invalid.
	vals, err := c.Read([]uatypes.NodeID{addrspace.ObjectsFolder()}, uamsg.AttrValue)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Status != uastatus.BadAttributeIdInvalid {
		t.Errorf("object value status = %v", vals[0].Status)
	}
	// BrowseName/DisplayName/NodeClass attributes work.
	for _, attr := range []uamsg.AttributeID{
		uamsg.AttrBrowseName, uamsg.AttrDisplayName, uamsg.AttrNodeClass, uamsg.AttrNodeID,
	} {
		vals, err := c.Read([]uatypes.NodeID{addrspace.ObjectsFolder()}, attr)
		if err != nil || vals[0].Status.IsBad() {
			t.Errorf("attr %d read failed: %v %v", attr, vals, err)
		}
	}
	// Unsupported attribute id.
	vals, err = c.Read([]uatypes.NodeID{addrspace.ObjectsFolder()}, uamsg.AttrWriteMask)
	if err != nil || vals[0].Status != uastatus.BadAttributeIdInvalid {
		t.Errorf("unsupported attr = %v %v", vals, err)
	}
}

func TestCallUnknownAndRestrictedMethods(t *testing.T) {
	_, url := startTestServer(t, func(cfg *Config) {
		space := addrspace.New("urn:test:server", "2.1.0")
		if _, err := addrspace.Populate(space, addrspace.BuildOptions{
			Profile: addrspace.ProfileProduction, Variables: 2, Methods: 2,
			AnonReadableFrac: 1, AnonWritableFrac: 0, AnonExecutableFrac: 0,
			Rand: mrand.New(mrand.NewSource(9)),
		}); err != nil {
			t.Fatal(err)
		}
		cfg.Space = space
	})
	c := dialInsecure(t, url)
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Walk(context.Background(), uaclient.WalkOptions{MaxNodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	var method uatypes.NodeID
	for _, n := range res.Nodes {
		if n.Class == uamsg.NodeClassMethod {
			method = n.ID
			break
		}
	}
	// Anonymous execution denied (AnonExecutableFrac 0).
	result, err := c.Call(uatypes.NewStringNodeID(method.Namespace, "Application"), method, nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.Status != uastatus.BadUserAccessDenied {
		t.Errorf("anon call status = %v", result.Status)
	}
	// Unknown method.
	result, err = c.Call(addrspace.ObjectsFolder(), uatypes.NewStringNodeID(2, "nope"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.Status != uastatus.BadMethodInvalid {
		t.Errorf("unknown method status = %v", result.Status)
	}
	// Authenticated users may execute.
	c2 := dialInsecure(t, url)
	if err := c2.CreateSession(uaclient.UserNameIdentity("operator", "secret")); err != nil {
		t.Fatal(err)
	}
	result, err = c2.Call(uatypes.NewStringNodeID(method.Namespace, "Application"), method, nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.Status.IsBad() {
		t.Errorf("authenticated call status = %v", result.Status)
	}
}
