// Package uaserver implements a full OPC UA server on top of the secure
// channel layer: endpoint advertisement, sessions with all four
// authentication token types, per-node access control, method calls,
// discovery servers, and the configuration quirks the paper observes in
// the wild (client-certificate rejection, sessions that fail despite
// advertised anonymous access).
package uaserver

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addrspace"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uarsa"
	"repro/internal/uasc"
	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// EndpointConfig advertises one security policy with a set of modes.
type EndpointConfig struct {
	Policy *uapolicy.Policy
	Modes  []uamsg.MessageSecurityMode
}

// Quirks reproduce misconfiguration behaviours from the paper.
type Quirks struct {
	// RejectClientCert aborts secure-channel establishment with
	// BadSecurityChecksFailed when the client presents a certificate
	// (the paper's "Certificate not accepted" hosts, Figure 6 right).
	RejectClientCert bool
	// RejectSessions makes CreateSession fail despite advertised
	// authentication options (the paper's hosts "aborting the connection
	// due to a faulty or incomplete endpoint configuration").
	RejectSessions bool
}

// Config describes one server instance.
type Config struct {
	ApplicationURI  string
	ProductURI      string
	ApplicationName string
	SoftwareVersion string
	// EndpointURL is the URL advertised in endpoint descriptions, e.g.
	// "opc.tcp://192.0.2.7:4840". Additional URLs (possibly on other
	// hosts/ports, which the scanner follows) go to ExtraEndpointURLs.
	EndpointURL       string
	ExtraEndpointURLs []string

	Endpoints  []EndpointConfig
	TokenTypes []uamsg.UserTokenType
	// Users validates UserName tokens; nil rejects all credentials.
	Users map[string]string

	Key     *rsa.PrivateKey
	CertDER []byte

	Space  *addrspace.Space
	Quirks Quirks

	// Discovery marks a discovery server: it answers GetEndpoints /
	// FindServers but refuses sessions (the paper's 42% of hosts).
	Discovery bool
	// KnownServers are returned by FindServers on discovery servers.
	KnownServers []uamsg.ApplicationDescription

	// MaxRefsPerBrowse bounds references per Browse result before
	// continuation points are used.
	MaxRefsPerBrowse int

	// Logf, if set, receives debug output.
	Logf func(format string, args ...any)
}

// Server is a running OPC UA server.
type Server struct {
	cfg       Config
	endpoints []uamsg.EndpointDescription
	appDesc   uamsg.ApplicationDescription

	// Response caches: the endpoint table and discovery listing are
	// fixed at construction (per wave state — the world builds one
	// server per certificate/software revision), so their wire
	// encodings — including the embedded certificate chain — are
	// produced once here and served as cached bytes. Only the response
	// header (timestamp, request handle) is encoded per request; nonces
	// and signatures never live in these messages. respCache gates the
	// fast path so equivalence tests can compare against the structured
	// encoding on the same server instance.
	epSuffix  []byte // GetEndpointsResponse body after the header
	fsSuffix  []byte // FindServersResponse body after the header
	respCache atomic.Bool

	// crypto holds the campaign-installed RSA memoization engine and the
	// deterministic-handshake toggle. Servers are world-owned and shared
	// across snapshots/campaigns, so the campaign installs its engine
	// via SetCrypto (an atomic swap; entries are self-contained, so a
	// later campaign replacing the engine is always safe).
	crypto atomic.Pointer[cryptoState]

	mu       sync.Mutex
	closed   bool
	listener net.Listener
	wg       sync.WaitGroup

	sessionCounter atomic.Uint32
}

// New validates the configuration and builds the endpoint table.
func New(cfg Config) (*Server, error) {
	if cfg.EndpointURL == "" {
		return nil, errors.New("uaserver: EndpointURL required")
	}
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("uaserver: at least one endpoint required")
	}
	needsCert := false
	for _, ep := range cfg.Endpoints {
		if ep.Policy == nil {
			return nil, errors.New("uaserver: endpoint with nil policy")
		}
		if !ep.Policy.Insecure {
			needsCert = true
		}
	}
	// Servers send their certificate in endpoint descriptions even for
	// policy None (the paper analyzes those certificates), so a missing
	// cert is only an error when a secure policy must be implemented.
	if needsCert && (cfg.Key == nil || len(cfg.CertDER) == 0) {
		return nil, errors.New("uaserver: secure endpoints require key and certificate")
	}
	if cfg.Space == nil && !cfg.Discovery {
		cfg.Space = addrspace.New(cfg.ApplicationURI, cfg.SoftwareVersion)
	}
	if cfg.MaxRefsPerBrowse <= 0 {
		cfg.MaxRefsPerBrowse = 1000
	}
	if len(cfg.TokenTypes) == 0 {
		cfg.TokenTypes = []uamsg.UserTokenType{uamsg.UserTokenAnonymous}
	}
	s := &Server{cfg: cfg}
	s.appDesc = uamsg.ApplicationDescription{
		ApplicationURI:  cfg.ApplicationURI,
		ProductURI:      cfg.ProductURI,
		ApplicationName: uatypes.NewText(cfg.ApplicationName),
		ApplicationType: uamsg.ApplicationServer,
		DiscoveryURLs:   []string{cfg.EndpointURL},
	}
	if cfg.Discovery {
		s.appDesc.ApplicationType = uamsg.ApplicationDiscoveryServer
	}
	s.endpoints = s.buildEndpoints()
	s.epSuffix = uamsg.EncodeEndpointsArray(s.endpoints)
	s.fsSuffix = uamsg.EncodeServersArray(s.knownServers())
	s.respCache.Store(true)
	return s, nil
}

// knownServers assembles the FindServers listing: this application
// first, then the configured announcements.
func (s *Server) knownServers() []uamsg.ApplicationDescription {
	servers := make([]uamsg.ApplicationDescription, 0, 1+len(s.cfg.KnownServers))
	servers = append(servers, s.appDesc)
	return append(servers, s.cfg.KnownServers...)
}

type cryptoState struct {
	engine        *uarsa.Engine
	deterministic bool
}

// SetCrypto installs (or, with nil/false, removes) the memoized
// asymmetric-crypto engine and the deterministic-handshake mode for all
// future connections. Campaign-scoped: deploy.World.SetCrypto applies
// it to every server the world has built.
func (s *Server) SetCrypto(engine *uarsa.Engine, deterministic bool) {
	s.crypto.Store(&cryptoState{engine: engine, deterministic: deterministic})
}

// EnableResponseCache toggles serving GetEndpoints/FindServers from the
// pre-encoded per-server byte cache. It exists for the equivalence
// gates, which pin the cached wire encoding byte-identical to the
// structured one on the same server instance; production servers keep
// it on.
func (s *Server) EnableResponseCache(on bool) { s.respCache.Store(on) }

func (s *Server) buildEndpoints() []uamsg.EndpointDescription {
	urls := append([]string{s.cfg.EndpointURL}, s.cfg.ExtraEndpointURLs...)
	var tokens []uamsg.UserTokenPolicy
	for i, tt := range s.cfg.TokenTypes {
		tokens = append(tokens, uamsg.UserTokenPolicy{
			PolicyID:  fmt.Sprintf("%d", i),
			TokenType: tt,
		})
	}
	var eps []uamsg.EndpointDescription
	for _, url := range urls {
		for _, epc := range s.cfg.Endpoints {
			for _, mode := range epc.Modes {
				level := byte(0)
				if mode != uamsg.SecurityModeNone {
					level = epc.Policy.SecurityLevel()
					if mode == uamsg.SecurityModeSignAndEncrypt {
						level += 10
					}
				}
				eps = append(eps, uamsg.EndpointDescription{
					EndpointURL:         url,
					Server:              s.appDesc,
					ServerCertificate:   s.cfg.CertDER,
					SecurityMode:        mode,
					SecurityPolicyURI:   epc.Policy.URI,
					UserIdentityTokens:  tokens,
					TransportProfileURI: uamsg.TransportProfileBinary,
					SecurityLevel:       level,
				})
			}
		}
	}
	return eps
}

// Endpoints returns the advertised endpoint descriptions.
func (s *Server) Endpoints() []uamsg.EndpointDescription { return s.endpoints }

// Config returns the server configuration.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("uaserver: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.HandleConn(conn)
		}()
	}
}

// Close stops the accept loop and waits for running connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.wg.Wait()
	return nil
}

// allowedModes implements the uasc policy gate from the endpoint table.
func (s *Server) allowedModes(p *uapolicy.Policy) []uamsg.MessageSecurityMode {
	for _, epc := range s.cfg.Endpoints {
		if epc.Policy == p {
			return epc.Modes
		}
	}
	// Every server accepts policy None for discovery-style requests
	// (GetEndpoints must be reachable without security).
	if p.Insecure {
		return []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}
	}
	return nil
}

// session is one created (and possibly activated) session.
type session struct {
	id        uatypes.NodeID
	authToken uatypes.NodeID
	activated bool
	identity  addrspace.Identity
	contPts   map[string][]uamsg.ReferenceDescription
	contSeq   int
}

// HandleConn serves one client connection synchronously. Exposed so
// in-memory network simulations can drive connections directly.
func (s *Server) HandleConn(conn net.Conn) {
	defer conn.Close()
	tr, err := uasc.ServerHello(conn, uasc.DefaultLimits())
	if err != nil {
		s.logf("uaserver: handshake: %v", err)
		return
	}
	cfg := uasc.ServerConfig{
		Key:          s.cfg.Key,
		CertDER:      s.cfg.CertDER,
		AllowedModes: s.allowedModes,
		LifetimeMS:   3600000,
	}
	if cs := s.crypto.Load(); cs != nil {
		cfg.Engine = cs.engine
		cfg.Deterministic = cs.deterministic
	}
	if s.cfg.Quirks.RejectClientCert {
		cfg.ValidateClientCert = func([]byte) uastatus.Code {
			return uastatus.BadSecurityChecksFailed
		}
	}
	ch, err := uasc.Accept(tr, cfg)
	if err != nil {
		s.logf("uaserver: accept channel: %v", err)
		return
	}
	sessions := make(map[string]*session)
	for {
		got, err := ch.Recv()
		if err != nil {
			return
		}
		if got.MsgType == uamsg.MsgTypeClose {
			return
		}
		resp := s.dispatch(ch, sessions, got.Message)
		if resp == nil {
			return
		}
		if err := ch.SendResponse(got.RequestID, resp); err != nil {
			s.logf("uaserver: send response: %v", err)
			return
		}
	}
}

func fault(handle uint32, code uastatus.Code) *uamsg.ServiceFault {
	return &uamsg.ServiceFault{Header: uamsg.ResponseHeader{
		Timestamp:     time.Now(),
		RequestHandle: handle,
		ServiceResult: code,
	}}
}

func okHeader(handle uint32) uamsg.ResponseHeader {
	return uamsg.ResponseHeader{
		Timestamp:     time.Now(),
		RequestHandle: handle,
		ServiceResult: uastatus.Good,
	}
}

// dispatch routes one request. A nil return closes the connection.
// dispatch routes one request to its service handler. The cached
// GetEndpoints/FindServers arms are the serve-side hot path:
// TestCachedGetEndpointsServeAllocBudget holds dispatch-plus-encode to
// two allocations per request.
//
//studyvet:hotpath — per-request on every simulated server; BenchmarkGetEndpointsServe budgets its allocs
func (s *Server) dispatch(ch *uasc.Channel, sessions map[string]*session, msg uamsg.Message) uamsg.Message {
	switch req := msg.(type) {
	case *uamsg.GetEndpointsRequest:
		if s.respCache.Load() {
			return &uamsg.PreEncodedResponse{
				ID:     uamsg.IDGetEndpointsResponse,
				Header: okHeader(req.Header.RequestHandle),
				Suffix: s.epSuffix,
			}
		}
		return &uamsg.GetEndpointsResponse{
			Header:    okHeader(req.Header.RequestHandle),
			Endpoints: s.endpoints,
		}
	case *uamsg.FindServersRequest:
		if s.respCache.Load() {
			return &uamsg.PreEncodedResponse{
				ID:     uamsg.IDFindServersResponse,
				Header: okHeader(req.Header.RequestHandle),
				Suffix: s.fsSuffix,
			}
		}
		return &uamsg.FindServersResponse{
			Header:  okHeader(req.Header.RequestHandle),
			Servers: s.knownServers(),
		}
	case *uamsg.CreateSessionRequest:
		return s.createSession(ch, sessions, req)
	case *uamsg.ActivateSessionRequest:
		return s.activateSession(ch, sessions, req)
	case *uamsg.CloseSessionRequest:
		if sess := lookupSession(sessions, req.Header.AuthenticationToken); sess != nil {
			delete(sessions, sess.authToken.Key())
			return &uamsg.CloseSessionResponse{Header: okHeader(req.Header.RequestHandle)}
		}
		return fault(req.Header.RequestHandle, uastatus.BadSessionIdInvalid)
	case *uamsg.BrowseRequest:
		sess := activeSession(sessions, req.Header.AuthenticationToken)
		if sess == nil {
			return fault(req.Header.RequestHandle, uastatus.BadSessionIdInvalid)
		}
		return s.browse(sess, req)
	case *uamsg.BrowseNextRequest:
		sess := activeSession(sessions, req.Header.AuthenticationToken)
		if sess == nil {
			return fault(req.Header.RequestHandle, uastatus.BadSessionIdInvalid)
		}
		return s.browseNext(sess, req)
	case *uamsg.ReadRequest:
		sess := activeSession(sessions, req.Header.AuthenticationToken)
		if sess == nil {
			return fault(req.Header.RequestHandle, uastatus.BadSessionIdInvalid)
		}
		return s.read(sess, req)
	case *uamsg.CallRequest:
		sess := activeSession(sessions, req.Header.AuthenticationToken)
		if sess == nil {
			return fault(req.Header.RequestHandle, uastatus.BadSessionIdInvalid)
		}
		return s.call(sess, req)
	case *uamsg.OpenSecureChannelRequest:
		// Token renewal: reissue the same token ids (simplified).
		return &uamsg.OpenSecureChannelResponse{
			Header:            okHeader(req.Header.RequestHandle),
			ServerProtocolVer: uamsg.ProtocolVersion,
			SecurityToken: uamsg.ChannelSecurityToken{
				ChannelID: ch.ChannelID, TokenID: ch.TokenID,
				CreatedAt: time.Now(), RevisedLifetime: req.RequestedLifetime,
			},
		}
	default:
		if r, ok := msg.(uamsg.Request); ok {
			return fault(r.RequestHeader().RequestHandle, uastatus.BadServiceUnsupported)
		}
		return nil
	}
}

func lookupSession(sessions map[string]*session, token uatypes.NodeID) *session {
	var buf [48]byte
	return sessions[string(token.AppendKey(buf[:0]))]
}

func activeSession(sessions map[string]*session, token uatypes.NodeID) *session {
	var buf [48]byte
	sess := sessions[string(token.AppendKey(buf[:0]))]
	if sess == nil || !sess.activated {
		return nil
	}
	return sess
}

func randomToken() uatypes.NodeID {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic("uaserver: crypto/rand failed: " + err.Error())
	}
	return uatypes.NodeID{Type: uatypes.NodeIDTypeByteString, Bytes: b}
}

func (s *Server) createSession(ch *uasc.Channel, sessions map[string]*session, req *uamsg.CreateSessionRequest) uamsg.Message {
	if s.cfg.Discovery {
		return fault(req.Header.RequestHandle, uastatus.BadServiceUnsupported)
	}
	if s.cfg.Quirks.RejectSessions {
		return fault(req.Header.RequestHandle, uastatus.BadInternalError)
	}
	sess := &session{
		id:        uatypes.NewNumericNodeID(1, s.sessionCounter.Add(1)),
		authToken: randomToken(),
		contPts:   make(map[string][]uamsg.ReferenceDescription),
	}
	sessions[sess.authToken.Key()] = sess

	resp := &uamsg.CreateSessionResponse{
		Header:                okHeader(req.Header.RequestHandle),
		SessionID:             sess.id,
		AuthenticationToken:   sess.authToken,
		RevisedSessionTimeout: req.RequestedSessionTimeout,
		ServerNonce:           ch.SessionNonce(),
		ServerCertificate:     s.cfg.CertDER,
		ServerEndpoints:       s.endpoints,
	}
	// Sign clientCert+clientNonce on secure channels so conformant
	// clients can verify possession of the server key. Routed through
	// the channel's crypto context: the paper's 385-host reuse cluster
	// shares one key, and the scanner presents one certificate and a
	// constant nonce, so across the cluster (and across waves) this is
	// a single memoized RSA operation.
	sec := ch.Security()
	if !sec.Policy.Insecure && s.cfg.Key != nil {
		data := append(append([]byte{}, req.ClientCertificate...), req.ClientNonce...)
		cc := ch.CryptoContext("create-session-sign")
		if sig, err := sec.Policy.AsymSignCtx(cc, s.cfg.Key, data); err == nil {
			resp.ServerSignature = uamsg.SignatureData{
				Algorithm: sec.Policy.URI,
				Signature: sig,
			}
		}
	}
	return resp
}

func (s *Server) tokenTypeAdvertised(tt uamsg.UserTokenType) bool {
	for _, t := range s.cfg.TokenTypes {
		if t == tt {
			return true
		}
	}
	return false
}

func (s *Server) activateSession(ch *uasc.Channel, sessions map[string]*session, req *uamsg.ActivateSessionRequest) uamsg.Message {
	sess := lookupSession(sessions, req.Header.AuthenticationToken)
	if sess == nil {
		return fault(req.Header.RequestHandle, uastatus.BadSessionIdInvalid)
	}
	tok := uamsg.DecodeIdentityToken(req.UserIdentityToken)
	var identity addrspace.Identity
	switch t := tok.(type) {
	case *uamsg.AnonymousIdentityToken, nil:
		// A missing token defaults to anonymous per OPC 10000-4.
		if !s.tokenTypeAdvertised(uamsg.UserTokenAnonymous) {
			return fault(req.Header.RequestHandle, uastatus.BadIdentityTokenRejected)
		}
		identity = addrspace.Anonymous
	case *uamsg.UserNameIdentityToken:
		if !s.tokenTypeAdvertised(uamsg.UserTokenUserName) {
			return fault(req.Header.RequestHandle, uastatus.BadIdentityTokenRejected)
		}
		want, ok := s.cfg.Users[t.UserName]
		if !ok || want != string(t.Password) {
			return fault(req.Header.RequestHandle, uastatus.BadUserAccessDenied)
		}
		identity = addrspace.Identity{Kind: uamsg.UserTokenUserName, UserName: t.UserName}
	case *uamsg.X509IdentityToken:
		if !s.tokenTypeAdvertised(uamsg.UserTokenCertificate) {
			return fault(req.Header.RequestHandle, uastatus.BadIdentityTokenRejected)
		}
		if len(t.CertificateData) == 0 {
			return fault(req.Header.RequestHandle, uastatus.BadIdentityTokenInvalid)
		}
		identity = addrspace.Identity{Kind: uamsg.UserTokenCertificate}
	case *uamsg.IssuedIdentityToken:
		if !s.tokenTypeAdvertised(uamsg.UserTokenIssuedToken) {
			return fault(req.Header.RequestHandle, uastatus.BadIdentityTokenRejected)
		}
		identity = addrspace.Identity{Kind: uamsg.UserTokenIssuedToken}
	default:
		return fault(req.Header.RequestHandle, uastatus.BadIdentityTokenInvalid)
	}
	sess.activated = true
	sess.identity = identity
	return &uamsg.ActivateSessionResponse{
		Header:      okHeader(req.Header.RequestHandle),
		ServerNonce: ch.SessionNonce(),
	}
}

func (s *Server) browse(sess *session, req *uamsg.BrowseRequest) uamsg.Message {
	resp := &uamsg.BrowseResponse{Header: okHeader(req.Header.RequestHandle)}
	max := int(req.MaxReferences)
	if max <= 0 || max > s.cfg.MaxRefsPerBrowse {
		max = s.cfg.MaxRefsPerBrowse
	}
	for _, bd := range req.NodesToBrowse {
		refs, ok := s.cfg.Space.Browse(bd.NodeID, bd.Direction, bd.NodeClassMask)
		if !ok {
			resp.Results = append(resp.Results, uamsg.BrowseResult{Status: uastatus.BadNodeIdUnknown})
			continue
		}
		result := uamsg.BrowseResult{Status: uastatus.Good}
		if len(refs) > max {
			result.References = refs[:max]
			sess.contSeq++
			cp := fmt.Sprintf("cp-%d", sess.contSeq)
			sess.contPts[cp] = refs[max:]
			result.ContinuationPoint = []byte(cp)
		} else {
			result.References = refs
		}
		resp.Results = append(resp.Results, result)
	}
	return resp
}

func (s *Server) browseNext(sess *session, req *uamsg.BrowseNextRequest) uamsg.Message {
	resp := &uamsg.BrowseNextResponse{Header: okHeader(req.Header.RequestHandle)}
	max := s.cfg.MaxRefsPerBrowse
	for _, cp := range req.ContinuationPoints {
		refs, ok := sess.contPts[string(cp)]
		if !ok {
			resp.Results = append(resp.Results, uamsg.BrowseResult{Status: uastatus.BadNodeIdUnknown})
			continue
		}
		delete(sess.contPts, string(cp))
		if req.ReleasePoints {
			resp.Results = append(resp.Results, uamsg.BrowseResult{Status: uastatus.Good})
			continue
		}
		result := uamsg.BrowseResult{Status: uastatus.Good}
		if len(refs) > max {
			result.References = refs[:max]
			sess.contSeq++
			next := fmt.Sprintf("cp-%d", sess.contSeq)
			sess.contPts[next] = refs[max:]
			result.ContinuationPoint = []byte(next)
		} else {
			result.References = refs
		}
		resp.Results = append(resp.Results, result)
	}
	return resp
}

func (s *Server) read(sess *session, req *uamsg.ReadRequest) uamsg.Message {
	resp := &uamsg.ReadResponse{Header: okHeader(req.Header.RequestHandle)}
	for _, rv := range req.NodesToRead {
		resp.Results = append(resp.Results, s.readAttr(sess, rv))
	}
	return resp
}

func (s *Server) readAttr(sess *session, rv uamsg.ReadValueID) uatypes.DataValue {
	node, ok := s.cfg.Space.Node(rv.NodeID)
	if !ok {
		return uatypes.DataValue{HasStatus: true, Status: uastatus.BadNodeIdUnknown}
	}
	good := func(v uatypes.Variant) uatypes.DataValue {
		return uatypes.DataValue{
			Value: &v, HasStatus: true, Status: uastatus.Good,
			SourceTimestamp: uatypes.TimeToDateTime(time.Now()),
		}
	}
	switch rv.AttributeID {
	case uamsg.AttrValue:
		if node.Class != uamsg.NodeClassVariable {
			return uatypes.DataValue{HasStatus: true, Status: uastatus.BadAttributeIdInvalid}
		}
		if !node.Access(sess.identity).CanRead() {
			return uatypes.DataValue{HasStatus: true, Status: uastatus.BadUserAccessDenied}
		}
		return good(node.Value)
	case uamsg.AttrAccessLevel:
		return good(uatypes.Variant{Type: uatypes.TypeByte, Uint: uint64(node.AccessLevel)})
	case uamsg.AttrUserAccessLevel:
		return good(uatypes.Variant{Type: uatypes.TypeByte, Uint: uint64(node.Access(sess.identity))})
	case uamsg.AttrExecutable:
		return good(uatypes.BoolVariant(node.Executable))
	case uamsg.AttrUserExecutable:
		return good(uatypes.BoolVariant(node.CanExecute(sess.identity)))
	case uamsg.AttrBrowseName:
		return good(uatypes.Variant{Type: uatypes.TypeQualifiedName, QName: node.BrowseName})
	case uamsg.AttrDisplayName:
		return good(uatypes.LocalizedTextVariant(node.DisplayName))
	case uamsg.AttrNodeClass:
		return good(uatypes.Int32Variant(int32(node.Class)))
	case uamsg.AttrNodeID:
		return good(uatypes.Variant{Type: uatypes.TypeNodeID, Node: node.ID})
	default:
		return uatypes.DataValue{HasStatus: true, Status: uastatus.BadAttributeIdInvalid}
	}
}

func (s *Server) call(sess *session, req *uamsg.CallRequest) uamsg.Message {
	resp := &uamsg.CallResponse{Header: okHeader(req.Header.RequestHandle)}
	for _, c := range req.MethodsToCall {
		node, ok := s.cfg.Space.Node(c.MethodID)
		if !ok {
			resp.Results = append(resp.Results, uamsg.CallMethodResult{Status: uastatus.BadMethodInvalid})
			continue
		}
		if !node.CanExecute(sess.identity) {
			resp.Results = append(resp.Results, uamsg.CallMethodResult{Status: uastatus.BadUserAccessDenied})
			continue
		}
		// Methods are no-ops: the simulated plant never changes state,
		// mirroring the study's read-only ethics constraints.
		resp.Results = append(resp.Results, uamsg.CallMethodResult{Status: uastatus.Good})
	}
	return resp
}

// ListenAndServe starts the server on a TCP address and returns it with
// the bound listener (for tools and examples).
func ListenAndServe(cfg Config, addr string) (*Server, net.Listener, error) {
	srv, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Printf("uaserver: serve: %v", err)
		}
	}()
	return srv, l, nil
}
