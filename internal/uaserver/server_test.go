package uaserver

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	mrand "math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/addrspace"
	"repro/internal/uacert"
	"repro/internal/uaclient"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

var (
	idOnce sync.Once
	srvKey *rsa.PrivateKey
	srvCrt *uacert.Certificate
	cliKey *rsa.PrivateKey
	cliCrt *uacert.Certificate
)

func ids(t testing.TB) {
	t.Helper()
	idOnce.Do(func() {
		var err error
		if srvKey, err = rsa.GenerateKey(rand.Reader, 512); err != nil {
			t.Fatal(err)
		}
		if srvCrt, err = uacert.Generate(srvKey, uacert.Options{
			CommonName: "testsrv", ApplicationURI: "urn:test:server",
		}); err != nil {
			t.Fatal(err)
		}
		if cliKey, err = rsa.GenerateKey(rand.Reader, 512); err != nil {
			t.Fatal(err)
		}
		if cliCrt, err = uacert.Generate(cliKey, uacert.Options{
			CommonName: "testcli", ApplicationURI: "urn:test:client",
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// startTestServer builds a server on a loopback listener.
func startTestServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	ids(t)
	space := addrspace.New("urn:test:server", "2.1.0")
	if _, err := addrspace.Populate(space, addrspace.BuildOptions{
		Profile:            addrspace.ProfileProduction,
		Variables:          20,
		Methods:            5,
		AnonReadableFrac:   1.0,
		AnonWritableFrac:   0.5,
		AnonExecutableFrac: 1.0,
		Rand:               mrand.New(mrand.NewSource(42)),
	}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ApplicationURI:  "urn:test:server",
		ProductURI:      "urn:test:product",
		ApplicationName: "Test Server",
		SoftwareVersion: "2.1.0",
		EndpointURL:     "opc.tcp://127.0.0.1:0",
		Endpoints: []EndpointConfig{
			{Policy: uapolicy.None, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}},
			{Policy: uapolicy.Basic256Sha256, Modes: []uamsg.MessageSecurityMode{
				uamsg.SecurityModeSign, uamsg.SecurityModeSignAndEncrypt}},
		},
		TokenTypes: []uamsg.UserTokenType{uamsg.UserTokenAnonymous, uamsg.UserTokenUserName},
		Users:      map[string]string{"operator": "secret"},
		Key:        srvKey,
		CertDER:    srvCrt.Raw,
		Space:      space,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, "opc.tcp://" + l.Addr().String()
}

func dialInsecure(t *testing.T, url string) *uaclient.Client {
	t.Helper()
	c, err := uaclient.Dial(context.Background(), url, uaclient.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.OpenInsecureChannel(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGetEndpointsAdvertisesConfiguredSecurity(t *testing.T) {
	_, url := startTestServer(t, nil)
	c := dialInsecure(t, url)
	eps, err := c.GetEndpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 3 { // None/None, B256S256/Sign, B256S256/S&E
		t.Fatalf("endpoints = %d", len(eps))
	}
	seen := map[string]bool{}
	for _, ep := range eps {
		seen[ep.SecurityPolicyURI+"/"+ep.SecurityMode.String()] = true
		if len(ep.ServerCertificate) == 0 {
			t.Error("endpoint missing server certificate")
		}
		if ep.Server.ApplicationURI != "urn:test:server" {
			t.Errorf("application URI = %q", ep.Server.ApplicationURI)
		}
		if len(ep.UserIdentityTokens) != 2 {
			t.Errorf("token policies = %d", len(ep.UserIdentityTokens))
		}
	}
	if !seen[uapolicy.URINone+"/None"] ||
		!seen[uapolicy.URIBasic256Sha256+"/Sign"] ||
		!seen[uapolicy.URIBasic256Sha256+"/SignAndEncrypt"] {
		t.Errorf("endpoint set = %v", seen)
	}
}

func TestAnonymousSessionBrowseReadCall(t *testing.T) {
	_, url := startTestServer(t, nil)
	c := dialInsecure(t, url)
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	// Namespace array reveals the production namespace.
	ns, err := c.NamespaceArray()
	if err != nil {
		t.Fatal(err)
	}
	if addrspace.Classify(ns) != addrspace.Production {
		t.Errorf("classification of %v", ns)
	}
	ver, err := c.SoftwareVersion()
	if err != nil || ver != "2.1.0" {
		t.Errorf("software version = %q, %v", ver, err)
	}

	refs, err := c.Browse(addrspace.ObjectsFolder())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) < 2 { // Server + Application
		t.Fatalf("objects children = %d", len(refs))
	}

	// Walk the full space and verify exposure counts match ground truth.
	res, err := c.Walk(context.Background(), uaclient.WalkOptions{MaxNodes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var readable, writable, exec, vars, methods int
	for _, n := range res.Nodes {
		switch n.Class {
		case uamsg.NodeClassVariable:
			vars++
			if n.UserAccessLevel.CanRead() {
				readable++
			}
			if n.UserAccessLevel.CanWrite() {
				writable++
			}
		case uamsg.NodeClassMethod:
			methods++
			if n.UserExecutable {
				exec++
			}
		}
	}
	if vars < 20 || methods != 5 {
		t.Errorf("walk saw %d vars, %d methods", vars, methods)
	}
	if exec != 5 {
		t.Errorf("executable methods = %d, want 5", exec)
	}
	if readable < 20 {
		t.Errorf("readable = %d", readable)
	}
	if writable == 0 || writable >= vars {
		t.Errorf("writable = %d of %d", writable, vars)
	}

	// Calling an anonymous-executable method succeeds and is a no-op.
	var methodID, objectID uatypes.NodeID
	for _, n := range res.Nodes {
		if n.Class == uamsg.NodeClassMethod {
			methodID = n.ID
			break
		}
	}
	objectID = uatypes.NewStringNodeID(methodID.Namespace, "Application")
	result, err := c.Call(objectID, methodID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.Status.IsBad() {
		t.Errorf("call status = %v", result.Status)
	}
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}
}

func TestUserNamePasswordAuthentication(t *testing.T) {
	_, url := startTestServer(t, nil)
	c := dialInsecure(t, url)
	if err := c.CreateSession(uaclient.UserNameIdentity("operator", "wrong")); err == nil {
		t.Fatal("wrong password accepted")
	} else {
		var se uaclient.ServiceError
		if !errors.As(err, &se) || se.Code != uastatus.BadUserAccessDenied {
			t.Errorf("error = %v", err)
		}
	}
	c2 := dialInsecure(t, url)
	if err := c2.CreateSession(uaclient.UserNameIdentity("operator", "secret")); err != nil {
		t.Fatalf("valid credentials rejected: %v", err)
	}
}

func TestSecureChannelSessionEndToEnd(t *testing.T) {
	_, url := startTestServer(t, nil)
	c, err := uaclient.Dial(context.Background(), url, uaclient.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.OpenChannel(uaclient.ChannelSecurity{
		Policy:        uapolicy.Basic256Sha256,
		Mode:          uamsg.SecurityModeSignAndEncrypt,
		LocalKey:      cliKey,
		LocalCertDER:  cliCrt.Raw,
		RemoteCertDER: srvCrt.Raw,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	dv, err := c.ReadValue(uatypes.NewNumericNodeID(0, uamsg.IDSoftwareVersion))
	if err != nil || dv.Value == nil || dv.Value.Str != "2.1.0" {
		t.Errorf("read over encrypted channel: %v %v", dv, err)
	}
}

func TestAnonymousRejectedWhenNotAdvertised(t *testing.T) {
	_, url := startTestServer(t, func(cfg *Config) {
		cfg.TokenTypes = []uamsg.UserTokenType{uamsg.UserTokenUserName}
	})
	c := dialInsecure(t, url)
	err := c.CreateSession(uaclient.AnonymousIdentity())
	var se uaclient.ServiceError
	if !errors.As(err, &se) || se.Code != uastatus.BadIdentityTokenRejected {
		t.Errorf("error = %v, want BadIdentityTokenRejected", err)
	}
}

func TestQuirkRejectSessions(t *testing.T) {
	_, url := startTestServer(t, func(cfg *Config) {
		cfg.Quirks.RejectSessions = true
	})
	c := dialInsecure(t, url)
	err := c.CreateSession(uaclient.AnonymousIdentity())
	var se uaclient.ServiceError
	if !errors.As(err, &se) || se.Code != uastatus.BadInternalError {
		t.Errorf("error = %v, want BadInternalError", err)
	}
}

func TestQuirkRejectClientCert(t *testing.T) {
	_, url := startTestServer(t, func(cfg *Config) {
		cfg.Quirks.RejectClientCert = true
	})
	c, err := uaclient.Dial(context.Background(), url, uaclient.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.OpenChannel(uaclient.ChannelSecurity{
		Policy:        uapolicy.Basic256Sha256,
		Mode:          uamsg.SecurityModeSignAndEncrypt,
		LocalKey:      cliKey,
		LocalCertDER:  cliCrt.Raw,
		RemoteCertDER: srvCrt.Raw,
	})
	var ce uamsg.ConnError
	if !errors.As(err, &ce) || ce.Code != uastatus.BadSecurityChecksFailed {
		t.Errorf("error = %v, want BadSecurityChecksFailed", err)
	}
	// The insecure discovery path still works on such hosts.
	c2 := dialInsecure(t, url)
	if _, err := c2.GetEndpoints(); err != nil {
		t.Errorf("GetEndpoints after cert rejection: %v", err)
	}
}

func TestDiscoveryServer(t *testing.T) {
	known := uamsg.ApplicationDescription{
		ApplicationURI: "urn:other:server",
		DiscoveryURLs:  []string{"opc.tcp://192.0.2.77:4841"},
	}
	_, url := startTestServer(t, func(cfg *Config) {
		cfg.Discovery = true
		cfg.KnownServers = []uamsg.ApplicationDescription{known}
		cfg.Endpoints = []EndpointConfig{
			{Policy: uapolicy.None, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}},
		}
	})
	c := dialInsecure(t, url)
	servers, err := c.FindServers()
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 {
		t.Fatalf("servers = %d", len(servers))
	}
	if servers[0].ApplicationType != uamsg.ApplicationDiscoveryServer {
		t.Error("self description should be a discovery server")
	}
	if servers[1].DiscoveryURLs[0] != known.DiscoveryURLs[0] {
		t.Errorf("known server URL = %v", servers[1].DiscoveryURLs)
	}
	// Sessions are refused on discovery servers.
	err = c.CreateSession(uaclient.AnonymousIdentity())
	var se uaclient.ServiceError
	if !errors.As(err, &se) || se.Code != uastatus.BadServiceUnsupported {
		t.Errorf("error = %v, want BadServiceUnsupported", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	ids(t)
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{EndpointURL: "opc.tcp://x:4840"}); err == nil {
		t.Error("config without endpoints accepted")
	}
	// Secure endpoint without a certificate must fail.
	if _, err := New(Config{
		EndpointURL: "opc.tcp://x:4840",
		Endpoints: []EndpointConfig{{Policy: uapolicy.Basic256Sha256,
			Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeSign}}},
	}); err == nil {
		t.Error("secure endpoint without cert accepted")
	}
	// None-only server without a certificate is fine (some hosts in the
	// paper do exactly this).
	if _, err := New(Config{
		EndpointURL: "opc.tcp://x:4840",
		Endpoints: []EndpointConfig{{Policy: uapolicy.None,
			Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}}},
	}); err != nil {
		t.Errorf("None-only server rejected: %v", err)
	}
}

func TestWalkRespectsLimits(t *testing.T) {
	_, url := startTestServer(t, nil)
	c := dialInsecure(t, url)
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Walk(context.Background(), uaclient.WalkOptions{MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) > 5 || !res.Truncated || res.LimitHit != "nodes" {
		t.Errorf("nodes=%d truncated=%v limit=%s", len(res.Nodes), res.Truncated, res.LimitHit)
	}

	// Byte limit: tiny cap trips immediately.
	c2 := dialInsecure(t, url)
	if err := c2.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Walk(context.Background(), uaclient.WalkOptions{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Truncated || res2.LimitHit != "bytes" {
		t.Errorf("byte limit not enforced: %+v", res2)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, url := startTestServer(t, nil)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			c, err := uaclient.Dial(context.Background(), url, uaclient.Options{Timeout: 5 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := c.OpenInsecureChannel(); err != nil {
				errs <- err
				return
			}
			if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
				errs <- err
				return
			}
			_, err = c.NamespaceArray()
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestEndpointAddressParsing(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"opc.tcp://10.0.0.1:4840", "10.0.0.1:4840", true},
		{"opc.tcp://10.0.0.1:4841/path/x", "10.0.0.1:4841", true},
		{"opc.tcp://host", "host:4840", true},
		{"http://10.0.0.1", "", false},
		{"opc.tcp://", "", false},
	}
	for _, c := range cases {
		got, err := uaclient.EndpointAddress(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("EndpointAddress(%q) = %q, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("EndpointAddress(%q) should fail", c.in)
		}
	}
}
