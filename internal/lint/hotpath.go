package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAnalyzer turns the AllocsPerRun budget tests' after-the-fact
// gate into a compile-time diagnostic: functions marked
// //studyvet:hotpath (PortScan probe helpers, codec encode, uasc seal)
// reject constructs that allocate on the steady-state path:
//
//   - any fmt.* call (Errorf/Sprintf allocate even before formatting);
//   - string concatenation inside a loop (quadratic garbage);
//   - function literals (a closure allocates per evaluation);
//   - passing a non-pointer struct or array into an interface-typed
//     parameter (boxing allocates).
//
// //studyvet:alloc-ok on a statement's line (or the line above)
// sanctions constructs that only run on failure paths — an error
// return may allocate, the steady state may not.
func HotPathAnalyzer(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "reject allocating constructs inside //studyvet:hotpath functions",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !pass.FuncDirective(fd, DirHotPath) {
					continue
				}
				checkHotPath(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(root ast.Node, loopDepth int) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n != root {
					walkParts(n, func(child ast.Node) { walk(child, loopDepth+1) },
						n.Init, n.Cond, n.Post, n.Body)
					return false
				}
			case *ast.RangeStmt:
				if n != root {
					walkParts(n, func(child ast.Node) { walk(child, loopDepth+1) },
						n.X, n.Body)
					return false
				}
			case *ast.FuncLit:
				if !pass.ExemptAt(n.Pos(), DirAllocOK) {
					pass.Reportf(n.Pos(), "closure in hot path %s allocates per evaluation (//studyvet:alloc-ok to sanction)", fd.Name.Name)
				}
				// Keep walking: the closure body is still hot.
			case *ast.BinaryExpr:
				if loopDepth > 0 && n.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(n)) &&
					!pass.ExemptAt(n.Pos(), DirAllocOK) {
					pass.Reportf(n.Pos(), "string concatenation in a loop inside hot path %s allocates per iteration: use a pooled buffer or append", fd.Name.Name)
				}
			case *ast.AssignStmt:
				if loopDepth > 0 && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 &&
					isStringType(pass.TypesInfo.TypeOf(n.Lhs[0])) &&
					!pass.ExemptAt(n.Pos(), DirAllocOK) {
					pass.Reportf(n.Pos(), "string += in a loop inside hot path %s allocates per iteration: use a pooled buffer or append", fd.Name.Name)
				}
			case *ast.CallExpr:
				checkHotCall(pass, fd, n)
			}
			return true
		})
	}
	walk(fd.Body, 0)
}

// walkParts visits non-nil children with the provided walker.
func walkParts(_ ast.Node, walk func(ast.Node), parts ...ast.Node) {
	for _, p := range parts {
		switch v := p.(type) {
		case nil:
		case ast.Expr:
			if v != nil {
				walk(v)
			}
		case ast.Stmt:
			if v != nil {
				walk(v)
			}
		default:
			walk(p)
		}
	}
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if obj := pass.useObj(call.Fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		if !pass.ExemptAt(call.Pos(), DirAllocOK) {
			pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (//studyvet:alloc-ok to sanction failure-path formatting)",
				obj.Name(), fd.Name.Name)
		}
		return
	}

	// Interface boxing: a non-pointer struct/array argument passed into
	// an interface-typed parameter is heap-boxed per call.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			last := sig.Params().At(np - 1).Type()
			slice, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			if call.Ellipsis != token.NoPos && i == np-1 {
				continue // passing a slice through, no boxing
			}
			param = slice.Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isTP := param.(*types.TypeParam); isTP {
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		argType := pass.TypesInfo.TypeOf(arg)
		if argType == nil {
			continue
		}
		switch argType.Underlying().(type) {
		case *types.Struct, *types.Array:
			if !pass.ExemptAt(arg.Pos(), DirAllocOK) && !pass.ExemptAt(call.Pos(), DirAllocOK) {
				pass.Reportf(arg.Pos(), "%s boxes a %s value into an interface in hot path %s: pass a pointer (//studyvet:alloc-ok to sanction)",
					exprString(arg), argType.String(), fd.Name.Name)
			}
		}
	}
}

func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
