package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //studyvet: comment. The syntax is
//
//	//studyvet:name arg... — free-form rationale
//
// (no space between // and studyvet, the Go directive-comment
// convention gofmt preserves). Everything after "—" or "--" is a
// human rationale and is not parsed into Args.
type Directive struct {
	Name string
	Args []string
	Pos  token.Pos
}

// Directive names.
const (
	// DirHotPath marks a function whose body must not allocate
	// (hotpath analyzer).
	DirHotPath = "hotpath"
	// DirOwned marks a struct field as cache-owner protected; an
	// optional argument names the sibling mutex that guards it.
	DirOwned = "owned"
	// DirEntropyExempt sanctions entropy or clock use in a
	// deterministic-path function or declaration.
	DirEntropyExempt = "entropy-exempt"
	// DirOrdered sanctions a map-range loop whose output order is
	// handled (sorted later or order-independent).
	DirOrdered = "ordered"
	// DirAllocOK sanctions one allocating statement inside a hot path
	// (error paths that only allocate when failing).
	DirAllocOK = "alloc-ok"
	// DirSinkExempt sanctions a RecordSink producer that deliberately
	// runs without a context (synchronous in-memory replay).
	DirSinkExempt = "sink-exempt"
	// DirLocked marks a helper whose callers hold the mutex guarding
	// the owned fields it mutates (e.g. uarsa's insertLocked).
	DirLocked = "locked"
	// DirOwnsEncoder marks a function that transfers pooled-encoder
	// ownership to its caller instead of releasing.
	DirOwnsEncoder = "owns-encoder"
)

const directivePrefix = "//studyvet:"

// parseDirective parses one comment, or returns false.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(body, sep); i >= 0 {
			body = body[:i]
		}
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Name: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

// directiveIndex looks directives up by file line, so both
// end-of-line and line-above placements resolve against any node.
type directiveIndex struct {
	fset   *token.FileSet
	byLine map[string]map[int][]Directive
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{fset: fset, byLine: map[string]map[int][]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = map[int][]Directive{}
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
			}
		}
	}
	return idx
}

// at returns the directives attached to pos: on the same line or the
// line immediately above.
func (idx *directiveIndex) at(pos token.Pos, name string) bool {
	p := idx.fset.Position(pos)
	m := idx.byLine[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range m[line] {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}

// ExemptAt reports whether a directive of the given name sits on the
// node's line or the line immediately above it.
func (p *Pass) ExemptAt(pos token.Pos, name string) bool {
	return p.directives.at(pos, name)
}

// commentGroupDirective scans a doc/comment group for a directive.
func commentGroupDirective(cg *ast.CommentGroup, name string) (Directive, bool) {
	if cg == nil {
		return Directive{}, false
	}
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// FuncDirective reports whether the function's doc comment carries the
// named directive.
func (p *Pass) FuncDirective(fd *ast.FuncDecl, name string) bool {
	_, ok := commentGroupDirective(fd.Doc, name)
	return ok
}

// FieldDirective returns the named directive from a struct field's doc
// or trailing comment.
func FieldDirective(field *ast.Field, name string) (Directive, bool) {
	if d, ok := commentGroupDirective(field.Doc, name); ok {
		return d, true
	}
	return commentGroupDirective(field.Comment, name)
}

// declExempt reports whether the declaration enclosing a top-level
// node carries the directive (FuncDecl doc, GenDecl doc, or the
// ValueSpec's own doc/comment).
func declExempt(decl ast.Decl, name string) bool {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if _, ok := commentGroupDirective(d.Doc, name); ok {
			return true
		}
	case *ast.GenDecl:
		if _, ok := commentGroupDirective(d.Doc, name); ok {
			return true
		}
		for _, spec := range d.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				if _, ok := commentGroupDirective(vs.Doc, name); ok {
					return true
				}
				if _, ok := commentGroupDirective(vs.Comment, name); ok {
					return true
				}
			}
		}
	}
	return false
}
