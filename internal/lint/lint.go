// Package lint is studyvet's analysis framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis model (the
// container bakes in no external modules) plus the four analyzers that
// statically enforce the campaign's determinism, ownership and hot-path
// invariants. DESIGN.md §6 maps each analyzer to the DESIGN/ROADMAP
// rule it guards and documents the //studyvet: directive syntax.
//
// The analyzers are config-driven: a package allowlist scopes the
// entropy/clock rules to the deterministic path, and //studyvet:
// directives in source annotate owned cache fields, hot-path functions
// and sanctioned exemptions. Test files (*_test.go) are never
// reported on — tests legitimately use clocks, entropy and fmt.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package's parsed and type-checked state through an
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Config    *Config

	directives *directiveIndex
	report     func(Diagnostic)
}

// Reportf records a diagnostic at pos. Findings in *_test.go files are
// dropped: the invariants guard production paths, and tests exercise
// nondeterminism on purpose.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PoolPair names an acquire/release pair whose calls must balance on
// every return path of a function (cacheowner's pool rule).
type PoolPair struct {
	// Acquire and Release are full function names as reported by
	// types.Func.FullName, e.g. "repro/internal/uatypes.AcquireEncoder".
	Acquire string
	Release string
}

// Config scopes the analyzers. The zero value checks nothing
// path-dependent; cmd/studyvet uses DefaultConfig, the golden tests
// build configs pointing into testdata.
type Config struct {
	// DeterministicPkgs lists package paths where the determinism
	// analyzer's entropy and clock rules apply (the deterministic path:
	// everything that feeds byte-identical datasets). The map-iteration
	// order rule applies to every analyzed package regardless.
	DeterministicPkgs []string
	// EpochVars are fully qualified variables sanctioned as the
	// deterministic path's only clock (e.g. "repro/internal/uarsa.Epoch").
	EpochVars []string
	// SinkPkg is the import path of the record-pipeline package defining
	// RecordSink and ChanSink (sinkctx's subject).
	SinkPkg string
	// Pools lists acquire/release pairs checked for balance.
	Pools []PoolPair
}

// DefaultConfig returns the repository's production configuration.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"repro/internal/deploy",
			"repro/internal/uarsa",
			"repro/internal/uasc",
			"repro/internal/uapolicy",
			"repro/internal/uacert",
			"repro/internal/uatypes",
			"repro/internal/scanner",
			"repro/internal/pipeline",
			"repro/internal/dataset",
			"repro/internal/worldview",
			// The telemetry registry sits on the deterministic path's
			// packages; its one sanctioned wall-clock read (NowNs) carries
			// an entropy-exempt directive, everything else must stay clean.
			"repro/internal/telemetry",
			// The shard fabric's retry jitter must replay from its seed
			// and its deadlines must flow through the injected Clock, so
			// the transport obeys the same entropy and clock rules as the
			// record path it carries.
			"repro/internal/fabric",
			// Chaos behaviors are pure functions of (seed, wave, addr):
			// any ambient entropy or clock in the decision path would
			// break the chaos byte-identity gates. (Serve's tarpit
			// pacing sleeps on the wire path, which is time.Sleep only —
			// no clock reads feed decisions.)
			"repro/internal/chaos",
			// Retry backoff must replay from its seed alone.
			"repro/internal/backoff",
			// Wave fingerprints justify skipping grabs: any entropy or
			// clock feeding a fingerprint would desynchronize the
			// skip/clone decisions of sharded delta workers and break the
			// delta byte-identity gate.
			"repro/internal/wavediff",
		},
		EpochVars: []string{"repro/internal/uarsa.Epoch"},
		SinkPkg:   "repro/internal/pipeline",
		Pools: []PoolPair{{
			Acquire: "repro/internal/uatypes.AcquireEncoder",
			Release: "repro/internal/uatypes.ReleaseEncoder",
		}},
	}
}

// Analyzers returns the four studyvet analyzers bound to cfg.
func Analyzers(cfg *Config) []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(cfg),
		CacheOwnerAnalyzer(cfg),
		HotPathAnalyzer(cfg),
		SinkCtxAnalyzer(cfg),
	}
}

// RunAnalyzers runs every analyzer over one loaded package and returns
// the diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, cfg *Config) ([]Diagnostic, error) {

	var diags []Diagnostic
	idx := indexDirectives(fset, files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			Config:     cfg,
			directives: idx,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// --- shared type/AST helpers ---

// useObj resolves the object an identifier or selector refers to.
func (p *Pass) useObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// pkgFunc reports whether e refers to a package-level function or
// variable of the given package path, returning its name.
func (p *Pass) pkgFunc(e ast.Expr, pkgPath string) (string, bool) {
	obj := p.useObj(e)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "", false // method, not a package-level func
		}
	}
	return obj.Name(), true
}

// fullName returns types.Func.FullName for function objects, or
// pkgpath.Name for other package-level objects.
func fullName(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// receiverNamed returns the named type of a method's receiver (through
// one pointer), or nil.
func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	def, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := def.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
