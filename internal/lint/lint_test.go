package lint_test

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// stdlib packages the testdata imports, resolved to export data once
// per test binary via `go list -export`.
var stdPackages = []string{
	"context", "crypto/rand", "errors", "fmt", "math/rand",
	"sort", "strings", "sync", "sync/atomic", "time",
}

var (
	stdOnce sync.Once
	stdImp  types.Importer
	stdFset *token.FileSet
	stdErr  error
)

// stdImporter builds a shared importer over stdlib export data.
func stdImporter(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	stdOnce.Do(func() {
		pkgs, err := lint.GoList(".", stdPackages...)
		if err != nil {
			stdErr = err
			return
		}
		exports := map[string]string{}
		importMap := map[string]string{}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			for src, canonical := range p.ImportMap {
				importMap[src] = canonical
			}
		}
		stdFset = token.NewFileSet()
		stdImp = lint.NewExportImporter(stdFset, exports, importMap)
	})
	if stdErr != nil {
		t.Fatalf("loading stdlib export data: %v", stdErr)
	}
	return stdFset, stdImp
}

// testImporter resolves testdata/src packages from source and
// everything else from stdlib export data.
type testImporter struct {
	fset   *token.FileSet
	std    types.Importer
	srcDir string
	cache  map[string]*lint.LoadedPackage
}

func newTestImporter(t *testing.T) *testImporter {
	fset, std := stdImporter(t)
	return &testImporter{
		fset:   fset,
		std:    std,
		srcDir: filepath.Join("testdata", "src"),
		cache:  map[string]*lint.LoadedPackage{},
	}
}

// Import implements types.Importer.
func (ti *testImporter) Import(path string) (*types.Package, error) {
	lp, err := ti.load(path)
	if err != nil {
		return nil, err
	}
	if lp != nil {
		return lp.Pkg, nil
	}
	return ti.std.Import(path)
}

// load type-checks a testdata package, or returns (nil, nil) for paths
// outside testdata/src.
func (ti *testImporter) load(path string) (*lint.LoadedPackage, error) {
	if lp, ok := ti.cache[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ti.srcDir, path)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, nil
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	lp, err := lint.TypeCheck(ti.fset, path, files, ti)
	if err != nil {
		return nil, err
	}
	ti.cache[path] = lp
	return lp, nil
}

// goldenConfig scopes the analyzers to the testdata packages.
func goldenConfig() *lint.Config {
	return &lint.Config{
		DeterministicPkgs: []string{"determ"},
		SinkPkg:           "pipeline",
		Pools: []lint.PoolPair{{
			Acquire: "owner.Acquire",
			Release: "owner.Release",
		}},
	}
}

// want is one expectation parsed from a `// want "regexp"` comment.
type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantLineRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants scans a source file for expectations, keyed by line.
func parseWants(t *testing.T, filename string) map[int][]*want {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("reading %s: %v", filename, err)
	}
	wants := map[int][]*want{}
	for i, line := range strings.Split(string(data), "\n") {
		m := wantLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
			re, err := regexp.Compile(arg[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, arg[1], err)
			}
			wants[i+1] = append(wants[i+1], &want{re: re, raw: arg[1]})
		}
	}
	return wants
}

// runGolden analyzes one testdata package and diffs diagnostics against
// its `// want` expectations.
func runGolden(t *testing.T, pkgPath string) {
	t.Helper()
	ti := newTestImporter(t)
	lp, err := ti.load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	if lp == nil {
		t.Fatalf("testdata package %s not found", pkgPath)
	}
	cfg := goldenConfig()
	diags, err := lint.RunAnalyzers(lint.Analyzers(cfg), lp.Fset, lp.Files, lp.Pkg, lp.Info, cfg)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgPath, err)
	}

	wantsByFile := map[string]map[int][]*want{}
	for _, f := range lp.Files {
		name := lp.Fset.Position(f.Pos()).Filename
		wantsByFile[name] = parseWants(t, name)
	}

	for _, d := range diags {
		lineWants := wantsByFile[d.Pos.Filename][d.Pos.Line]
		found := false
		for _, w := range lineWants {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for file, byLine := range wantsByFile {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.raw)
				}
			}
		}
	}
}

func TestGoldenDeterminism(t *testing.T)      { runGolden(t, "determ") }
func TestGoldenOrderOnly(t *testing.T)        { runGolden(t, "orderonly") }
func TestGoldenCacheOwner(t *testing.T)       { runGolden(t, "owner") }
func TestGoldenHotPath(t *testing.T)          { runGolden(t, "hot") }
func TestGoldenHotPathTelemetry(t *testing.T) { runGolden(t, "hottel") }
func TestGoldenSinkPkg(t *testing.T)          { runGolden(t, "pipeline") }
func TestGoldenSinkProducer(t *testing.T)     { runGolden(t, "producer") }

// TestRepositoryIsClean is the in-process version of the CI studyvet
// gate: the four analyzers over every module package must report
// nothing. It doubles as an integration test of the go list loader.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadPatterns(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	cfg := lint.DefaultConfig()
	analyzers := lint.Analyzers(cfg)
	for _, lp := range pkgs {
		diags, err := lint.RunAnalyzers(analyzers, lp.Fset, lp.Files, lp.Pkg, lp.Info, cfg)
		if err != nil {
			t.Fatalf("%s: %v", lp.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
}
