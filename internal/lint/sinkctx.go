package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SinkCtxAnalyzer enforces the record pipeline's cancellation and
// drain-ownership contract (DESIGN.md §5):
//
//   - every RecordSink producer — a function outside the pipeline
//     package that calls Put on a sink — must take a context.Context
//     and be cancellation-aware: check ctx.Err()/ctx.Done() or
//     propagate ctx into a callee before producing. A producer that
//     cannot be cancelled wedges the campaign's shutdown path behind a
//     full ChanSink buffer. //studyvet:sink-exempt sanctions
//     deliberate synchronous replay (e.g. WriteDataset's in-memory
//     re-encode).
//   - ChanSink must be constructed with NewChanSink: a composite
//     literal skips starting the single drain goroutine that owns the
//     downstream, so Put blocks forever and Close deadlocks.
func SinkCtxAnalyzer(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "sinkctx",
		Doc:  "RecordSink producers propagate context and check cancellation; ChanSink drains are single-goroutine",
	}
	a.Run = func(pass *Pass) error {
		if cfg.SinkPkg == "" {
			return nil
		}
		sinkIface, chanSink := lookupSinkTypes(pass, cfg.SinkPkg)
		if sinkIface == nil && chanSink == nil {
			return nil // package neither is nor imports the pipeline
		}
		inSinkPkg := pass.Pkg.Path() == cfg.SinkPkg
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if chanSink != nil {
					checkChanSinkLiterals(pass, fd, chanSink, inSinkPkg)
				}
				if sinkIface != nil && !inSinkPkg {
					checkProducer(pass, fd, sinkIface)
				}
			}
		}
		return nil
	}
	return a
}

// lookupSinkTypes resolves pipeline.RecordSink and pipeline.ChanSink
// from the analyzed package or its imports.
func lookupSinkTypes(pass *Pass, sinkPkg string) (*types.Interface, *types.Named) {
	var scope *types.Scope
	if pass.Pkg.Path() == sinkPkg {
		scope = pass.Pkg.Scope()
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == sinkPkg {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return nil, nil
	}
	var iface *types.Interface
	var chanSink *types.Named
	if obj := scope.Lookup("RecordSink"); obj != nil {
		iface, _ = obj.Type().Underlying().(*types.Interface)
	}
	if obj := scope.Lookup("ChanSink"); obj != nil {
		chanSink, _ = obj.Type().(*types.Named)
	}
	return iface, chanSink
}

func checkChanSinkLiterals(pass *Pass, fd *ast.FuncDecl, chanSink *types.Named, inSinkPkg bool) {
	if inSinkPkg && strings.HasPrefix(fd.Name.Name, "NewChanSink") {
		return // the sanctioned construction sites (NewChanSink and its Observed variant)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(lit)
		if t == nil {
			return true
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == chanSink.Obj() {
			pass.Reportf(lit.Pos(),
				"construct ChanSink with NewChanSink: a composite literal never starts the single drain goroutine that owns the downstream")
		}
		return true
	})
}

// checkProducer flags Put calls on RecordSink-typed values from
// functions that do not take and use a context.
func checkProducer(pass *Pass, fd *ast.FuncDecl, sinkIface *types.Interface) {
	// Sinks wrapping sinks (a Tee-alike forwarding Put from its own Put)
	// are part of the pipeline, not producers.
	if recv := receiverNamed(pass.TypesInfo, fd); recv != nil &&
		(fd.Name.Name == "Put" || fd.Name.Name == "Close") &&
		implementsSink(recv, sinkIface) {
		return
	}
	var puts []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Put" {
			return true
		}
		recvT := pass.TypesInfo.TypeOf(sel.X)
		if recvT == nil || !implementsSink(recvT, sinkIface) {
			return true
		}
		puts = append(puts, call)
		return true
	})
	if len(puts) == 0 || pass.FuncDirective(fd, DirSinkExempt) {
		return
	}

	ctxVar := contextParam(pass, fd)
	if ctxVar == nil {
		pass.Reportf(puts[0].Pos(),
			"%s produces into a RecordSink but takes no context.Context: producers must be cancellable or a full ChanSink buffer wedges shutdown (//studyvet:sink-exempt to sanction)",
			fd.Name.Name)
		return
	}
	if !cancellationAware(pass, fd, ctxVar) {
		pass.Reportf(puts[0].Pos(),
			"%s produces into a RecordSink without consulting its context: check ctx.Err()/ctx.Done() or propagate ctx before producing",
			fd.Name.Name)
	}
}

func implementsSink(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		if types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

// contextParam returns the first parameter of type context.Context.
func contextParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	def, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := def.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if named, ok := p.Type().(*types.Named); ok {
			if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" &&
				named.Obj().Name() == "Context" {
				return p
			}
		}
	}
	return nil
}

// cancellationAware reports whether the function consults its context:
// a .Err()/.Done() selector on it, or passing it into any call
// (propagation — the callee honors the cancellation contract).
func cancellationAware(pass *Pass, fd *ast.FuncDecl, ctxVar *types.Var) bool {
	aware := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if aware {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxVar {
				switch n.Sel.Name {
				case "Err", "Done", "Deadline":
					aware = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxVar {
					aware = true
				}
			}
		}
		return true
	})
	return aware
}
