// Package hottel pins the telemetry contract inside hotpath functions:
// the nil-safe instrument API passes the analyzer untouched, while
// rendering labels or events with fmt on the hot path is rejected —
// instrumentation must stay no-op-safe, not become a formatting layer.
package hottel

import (
	"fmt"

	"tel"
)

//studyvet:hotpath — golden
func countProbes(c *tel.Counter, h *tel.Histogram, startNs int64, n int) {
	for i := 0; i < n; i++ {
		c.Inc() // nil-safe no-op API: no diagnostic
	}
	c.Add(uint64(n))
	h.ObserveNs(42 - startNs)
}

//studyvet:hotpath — golden
func formattedEvent(s tel.Sink, wave int) {
	s.Event(fmt.Sprintf("wave %d done", wave)) // want "fmt.Sprintf in hot path formattedEvent allocates"
}

//studyvet:hotpath — golden
func labelPerIteration(c map[string]*tel.Counter, hosts []string) {
	for _, h := range hosts {
		c["host="+h].Inc() // want "string concatenation in a loop inside hot path labelPerIteration"
	}
}

//studyvet:hotpath — golden
func exemptFailurePath(s tel.Sink, err error) {
	if err != nil {
		//studyvet:alloc-ok — failure path may format
		s.Event(fmt.Sprintf("grab failed: %v", err))
	}
}
