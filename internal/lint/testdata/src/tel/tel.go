// Package tel mirrors the repository's telemetry API shape for the
// hotpath goldens: nil-safe pointer-receiver instruments whose methods
// allocate nothing, plus an interface-taking sink that tempts callers
// into fmt-formatting labels on the hot path.
package tel

import "sync/atomic"

// Counter is the nil-safe atomic counter: every method is one pointer
// check and (at most) one atomic op, so hotpath code may call it
// unconditionally.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Histogram records latencies. No-op on a nil receiver.
type Histogram struct{ count atomic.Uint64 }

// ObserveNs records one sample. No-op on a nil receiver.
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
}

// Sink receives pre-rendered events; formatting the message is the
// caller's cost, which is exactly what hotpath code must not pay.
type Sink interface{ Event(msg string) }
