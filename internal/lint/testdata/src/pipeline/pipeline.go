// Package pipeline is a miniature of the real record pipeline, for the
// sinkctx golden tests (the test Config.SinkPkg points here).
package pipeline

// Record is one streamed record.
type Record struct{ ID int }

// RecordSink consumes a stream of records.
type RecordSink interface {
	Put(*Record) error
	Close() error
}

// ChanSink fans concurrent producers into one drain goroutine.
type ChanSink struct {
	downstream RecordSink
	ch         chan *Record
	done       chan struct{}
}

// NewChanSink starts the single drain goroutine.
func NewChanSink(downstream RecordSink, buffer int) *ChanSink {
	s := &ChanSink{downstream: downstream, ch: make(chan *Record, buffer), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for r := range s.ch {
			_ = s.downstream.Put(r)
		}
	}()
	return s
}

// Put enqueues one record.
func (s *ChanSink) Put(r *Record) error { s.ch <- r; return nil }

// Close drains and closes the downstream.
func (s *ChanSink) Close() error {
	close(s.ch)
	<-s.done
	return s.downstream.Close()
}

func badLocalConstruction() *ChanSink {
	return &ChanSink{} // want "construct ChanSink with NewChanSink"
}
