// Package owner exercises the cacheowner analyzer: //studyvet:owned
// field mutations and pool acquire/release balance (the test Config
// registers owner.Acquire/owner.Release as a pool pair).
package owner

import (
	"errors"
	"sync"
)

// Buf is the pooled resource.
type Buf struct{ b []byte }

var pool sync.Pool

// Acquire takes a pooled buffer.
func Acquire() *Buf {
	if v := pool.Get(); v != nil {
		return v.(*Buf)
	}
	return &Buf{}
}

// Release returns a buffer to the pool.
func Release(b *Buf) { pool.Put(b) }

// Cache is a mutex-guarded cache with an owned entries map.
type Cache struct {
	mu sync.Mutex
	//studyvet:owned mu — golden
	entries map[string]int
	plain   int // unowned: mutable from anywhere
}

// Set is an owner method: allowed without further ceremony.
func (c *Cache) Set(k string, v int) {
	c.mu.Lock()
	c.entries[k] = v
	c.mu.Unlock()
}

func outsideMutation(c *Cache) {
	c.entries["x"] = 1 // want "field Cache.entries is //studyvet:owned"
	c.plain = 2
}

func lockedMutation(c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries["x"] = 1 // guard visibly taken on the same chain: allowed
}

// resetLocked mutates under the caller's lock.
//
//studyvet:locked — golden: callers hold c.mu
func resetLocked(c *Cache) {
	c.entries = map[string]int{}
}

func deleteOutside(c *Cache) {
	delete(c.entries, "x") // want "field Cache.entries is //studyvet:owned"
}

var errFail = errors.New("fail")

func use(*Buf) {}

func balancedDefer() {
	b := Acquire()
	defer Release(b)
	use(b)
}

func earlyReturnLeak(fail bool) error {
	b := Acquire()
	if fail {
		return errFail // want "return without releasing"
	}
	Release(b)
	return nil
}

func neverReleased() {
	b := Acquire() // want "owner.Acquire is never released in this function"
	use(b)
}

// transfer hands the acquired buffer to its caller.
//
//studyvet:owns-encoder — golden: ownership transfers to the caller
func transfer() *Buf {
	return Acquire()
}

func inlineRelease(fail bool) error {
	b := Acquire()
	use(b)
	Release(b)
	if fail {
		return errFail
	}
	return nil
}
