// Package hot exercises the hotpath analyzer.
package hot

import "fmt"

// Sink receives boxed values.
type Sink interface{ Accept(v any) }

type payload struct{ a, b int }

//studyvet:hotpath — golden
func fmtInHot(err error) error {
	return fmt.Errorf("wrap: %w", err) // want "fmt.Errorf in hot path fmtInHot allocates"
}

//studyvet:hotpath — golden
func exemptFmt(err error) error {
	//studyvet:alloc-ok — failure path
	return fmt.Errorf("wrap: %w", err)
}

//studyvet:hotpath — golden
func concatLoop(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p // want "string \+= in a loop inside hot path concatLoop"
	}
	return out
}

//studyvet:hotpath — golden
func concatBinary(parts []string) []string {
	var out []string
	for _, p := range parts {
		out = append(out, "x"+p) // want "string concatenation in a loop inside hot path concatBinary"
	}
	return out
}

//studyvet:hotpath — golden
func closureInHot(xs []int) int {
	f := func(x int) int { return x * 2 } // want "closure in hot path closureInHot allocates per evaluation"
	total := 0
	for _, x := range xs {
		total += f(x)
	}
	return total
}

//studyvet:hotpath — golden
func boxing(s Sink) {
	p := payload{1, 2}
	s.Accept(p)  // want "p boxes a hot.payload value into an interface in hot path boxing"
	s.Accept(&p) // pointer: no box
}

func coldPath() string { return fmt.Sprintf("cold paths may format freely") }
