// Package determ exercises the determinism analyzer: entropy and clock
// rules (this package is listed in the test Config.DeterministicPkgs)
// plus the map-iteration-order rule.
package determ

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"sort"
	"strings"
	"time"
)

func entropy() {
	var b [8]byte
	rand.Read(b[:])   // want "crypto/rand.Read on the deterministic path"
	_ = mrand.Intn(4) // want "math/rand.Intn uses the global source"
	r := mrand.New(mrand.NewSource(1))
	_ = r.Intn(4)         // seeded source: sanctioned
	_ = time.Now()        // want "time.Now on the deterministic path"
	_ = time.Since(epoch) // want "time.Since on the deterministic path"
}

// exempted is the golden case for declaration-level exemptions: the
// directive in this doc comment must silence every entropy finding in
// the body.
//
//studyvet:entropy-exempt — golden: declaration-level exemptions are honored
func exempted() time.Time {
	var b [8]byte
	rand.Read(b[:])
	return time.Now()
}

func statementExempt() time.Time {
	//studyvet:entropy-exempt — golden: statement-level exemptions are honored
	return time.Now()
}

//studyvet:entropy-exempt — fixed date, not a wall-clock read
var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func leakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a map range without a following sort"
	}
	return keys
}

func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// orderedExempt is sanctioned: the caller re-sorts.
//
//studyvet:ordered — golden: function-level order exemptions are honored
func orderedExempt(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func encodeLeak(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want "fmt.Fprintf inside a map range emits in nondeterministic iteration order"
	}
}

func localAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
