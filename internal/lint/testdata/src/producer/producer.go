// Package producer exercises the sinkctx producer rules against the
// fake pipeline package.
package producer

import (
	"context"

	"pipeline"
)

func noCtx(s pipeline.RecordSink, recs []*pipeline.Record) error {
	for _, r := range recs {
		if err := s.Put(r); err != nil { // want "noCtx produces into a RecordSink but takes no context.Context"
			return err
		}
	}
	return nil
}

func ctxUnused(ctx context.Context, s pipeline.RecordSink, recs []*pipeline.Record) error {
	for _, r := range recs {
		if err := s.Put(r); err != nil { // want "ctxUnused produces into a RecordSink without consulting its context"
			return err
		}
	}
	return nil
}

func ctxChecked(ctx context.Context, s pipeline.RecordSink, recs []*pipeline.Record) error {
	for _, r := range recs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.Put(r); err != nil {
			return err
		}
	}
	return nil
}

// replay re-encodes retained records synchronously; there is no
// upstream producer to cancel.
//
//studyvet:sink-exempt — golden: sanctioned synchronous replay
func replay(s pipeline.RecordSink, recs []*pipeline.Record) error {
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			return err
		}
	}
	return nil
}

func construct() *pipeline.ChanSink {
	return &pipeline.ChanSink{} // want "construct ChanSink with NewChanSink"
}

func constructOK(down pipeline.RecordSink) *pipeline.ChanSink {
	return pipeline.NewChanSink(down, 8)
}

// netSink mirrors the fabric's network sink: a RecordSink adapter
// whose Put forwards records onto a transport. Sink methods ARE the
// sink contract, not producers — no diagnostic expected.
type netSink struct {
	frames int
}

func (s *netSink) Put(r *pipeline.Record) error {
	s.frames++
	return nil
}

func (s *netSink) Close() error { return nil }

var _ pipeline.RecordSink = (*netSink)(nil)

// shardPump mirrors the fabric worker's shard loop: a producer driving
// a leased shard into a sink, cancellation-aware via ctx.Done().
func shardPump(ctx context.Context, s pipeline.RecordSink, recs []*pipeline.Record) error {
	for _, r := range recs {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := s.Put(r); err != nil {
			return err
		}
	}
	return nil
}
