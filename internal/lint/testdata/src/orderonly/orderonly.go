// Package orderonly is NOT in the deterministic-package allowlist: the
// entropy/clock rules must stay silent here, but the map-iteration
// order rule applies to every analyzed package.
package orderonly

import "time"

func clockOK() time.Time { return time.Now() }

func leak(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "append to out inside a map range"
	}
	return out
}
