package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadedPackage is one parsed and type-checked package ready for
// analysis.
type LoadedPackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// TypeCheck parses and type-checks one package from explicit file
// paths, resolving imports through imp.
func TypeCheck(fset *token.FileSet, path string, goFiles []string, imp types.Importer) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &LoadedPackage{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// --- go list -export based loading (standalone studyvet + tests) ---

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	Module     *struct{ Path string }
	ImportMap  map[string]string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// GoList runs `go list -export -json -deps` over the patterns and
// returns every resolved package. Export data for all dependencies is
// produced by the go command's build cache, so type-checking needs no
// network and no GOPATH trees.
func GoList(dir string, patterns ...string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter resolves imports from compiler export data files, the
// same artifacts `go vet` hands a vettool via vet.cfg's PackageFile.
type ExportImporter struct {
	fset *token.FileSet
	// exports maps canonical import paths to export data files.
	exports map[string]string
	// importMap maps source-level paths to canonical ones (vendored
	// stdlib deps, test variants).
	importMap map[string]string
	gc        types.ImporterFrom
}

// NewExportImporter builds an importer over an explicit path→file map.
func NewExportImporter(fset *token.FileSet, exports, importMap map[string]string) *ExportImporter {
	ei := &ExportImporter{fset: fset, exports: exports, importMap: importMap}
	ei.gc = importer.ForCompiler(fset, "gc", ei.lookup).(types.ImporterFrom)
	return ei
}

func (ei *ExportImporter) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := ei.importMap[path]; ok {
		path = mapped
	}
	f, ok := ei.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Import implements types.Importer.
func (ei *ExportImporter) Import(path string) (*types.Package, error) {
	return ei.gc.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (ei *ExportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return ei.gc.ImportFrom(path, dir, mode)
}

// LoadPatterns loads every non-dependency module package matched by the
// patterns (the `go list` notion: packages listed on the command line,
// not pulled in via -deps) with full syntax, ready for analysis.
func LoadPatterns(dir string, patterns ...string) ([]*LoadedPackage, error) {
	pkgs, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	importMap := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for src, canonical := range p.ImportMap {
			importMap[src] = canonical
		}
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports, importMap)
	var loaded []*LoadedPackage
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			continue // cgo sources need the generated intermediates
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		lp, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// ModulePath reports the enclosing module's path via `go list -m`.
func ModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}
