package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// DeterminismAnalyzer enforces the deterministic path's entropy, clock
// and iteration-order rules (DESIGN.md §4/§5: byte-identical datasets
// across waves, shards and processes).
//
// In packages listed in Config.DeterministicPkgs it forbids:
//
//   - any reference into crypto/rand (the stdlib's MaybeReadByte
//     defeated stream replay twice already, PRs 4–5);
//   - math/rand package-level functions (the global source; seeded
//     *rand.Rand values via rand.New are fine);
//   - time.Now / time.Since / time.Until — uarsa.Epoch is the only
//     sanctioned clock (Config.EpochVars).
//
// In every analyzed package it flags range loops over maps whose body
// appends to a variable declared outside the loop or encodes into an
// output (Encode/Write/Put/Fprint calls) without a sort of the
// destination following the loop — the exact bug class that breaks
// byte-identical shard merges.
//
// Exemptions: //studyvet:entropy-exempt on the enclosing declaration
// for the entropy/clock rules; //studyvet:ordered on the range
// statement (or the enclosing function's doc) for the order rule.
func DeterminismAnalyzer(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid entropy, wall clocks and map-iteration order on the deterministic path",
	}
	a.Run = func(pass *Pass) error {
		deterministic := slices.Contains(cfg.DeterministicPkgs, pass.Pkg.Path())
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				runDeterminismDecl(pass, decl, deterministic)
			}
		}
		return nil
	}
	return a
}

func runDeterminismDecl(pass *Pass, decl ast.Decl, deterministic bool) {
	entropyExempt := !deterministic || declExempt(decl, DirEntropyExempt)

	// Entropy and clock rules: every use-reference in the declaration,
	// unless the enclosing func/var decl (or an inner function literal's
	// own line) is exempted.
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if pass.FuncDirective(n, DirEntropyExempt) {
				return false
			}
		case *ast.SelectorExpr:
			if !entropyExempt {
				checkEntropyUse(pass, n)
			}
		case *ast.RangeStmt:
			checkMapRangeOrder(pass, n, decl)
		}
		return true
	})
}

func checkEntropyUse(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if pass.ExemptAt(sel.Pos(), DirEntropyExempt) {
		return
	}
	switch obj.Pkg().Path() {
	case "crypto/rand":
		pass.Reportf(sel.Pos(),
			"crypto/rand.%s on the deterministic path: draw from a seeded uarsa stream instead (//studyvet:entropy-exempt to sanction)",
			obj.Name())
	case "math/rand", "math/rand/v2":
		f, ok := obj.(*types.Func)
		if !ok {
			return
		}
		if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // method on a seeded *rand.Rand: fine
		}
		if strings.HasPrefix(obj.Name(), "New") {
			return // constructing a seeded source is the sanctioned use
		}
		pass.Reportf(sel.Pos(),
			"math/rand.%s uses the global source on the deterministic path: use rand.New(rand.NewSource(seed))",
			obj.Name())
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(),
				"time.%s on the deterministic path: stamp uarsa.Epoch or derive times from the wave schedule (//studyvet:entropy-exempt to sanction)",
				obj.Name())
		}
	}
}

// encodeMethods are method names that emit into an output stream; calls
// to them inside a map-range body leak iteration order into encoded
// bytes no matter what is sorted afterwards.
var encodeMethods = map[string]bool{
	"Encode": true, "EncodeTo": true, "Put": true,
	"Write": true, "WriteString": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func checkMapRangeOrder(pass *Pass, rng *ast.RangeStmt, decl ast.Decl) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pass.ExemptAt(rng.Pos(), DirOrdered) {
		return
	}
	if fd, ok := decl.(*ast.FuncDecl); ok && pass.FuncDirective(fd, DirOrdered) {
		return
	}

	// Collect order leaks in the body: appends to outer variables, and
	// encode calls.
	type appendLeak struct {
		pos  token.Pos
		dest ast.Expr // LHS being appended to
	}
	var appends []appendLeak
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map-range is checked on its own visit; a nested
			// slice-range body still leaks the outer map's order.
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(n.Lhs) {
					continue
				}
				dest := n.Lhs[i]
				if declaredOutside(pass, dest, rng) {
					appends = append(appends, appendLeak{pos: n.Pos(), dest: dest})
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !encodeMethods[sel.Sel.Name] {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			if f, ok := obj.(*types.Func); ok {
				if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil && obj.Pkg() != nil && obj.Pkg().Path() != "fmt" {
					return true // package-level non-fmt call: not an output method
				}
			}
			pass.Reportf(n.Pos(),
				"%s inside a map range emits in nondeterministic iteration order: collect and sort keys first (//studyvet:ordered to sanction)",
				exprString(sel))
			return true
		}
		return true
	})

	for _, leak := range appends {
		if sortedAfter(pass, rng, leak.dest) {
			continue
		}
		pass.Reportf(leak.pos,
			"append to %s inside a map range without a following sort: iteration order leaks into the result (//studyvet:ordered to sanction)",
			exprString(leak.dest))
	}
}

// declaredOutside reports whether the expression's root object is
// declared outside the range statement (an outer accumulation target).
// Selector-based destinations (x.f) always count as outside.
func declaredOutside(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// sortedAfter reports whether a sibling statement after the range loop
// sorts the destination: a call to sort.* or slices.Sort* whose first
// argument (or method receiver chain) mentions the same expression.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, dest ast.Expr) bool {
	siblings := enclosingStmtList(pass, rng)
	destStr := exprString(dest)
	after := false
	for _, stmt := range siblings {
		if stmt == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkg := obj.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			if !strings.Contains(obj.Name(), "Sort") && !isSortName(obj.Name()) {
				return true
			}
			for _, arg := range call.Args {
				if strings.Contains(exprString(arg), destStr) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isSortName(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}

// enclosingStmtList finds the statement list (block, case clause or
// comm clause body) whose members include the target statement.
func enclosingStmtList(pass *Pass, target ast.Stmt) []ast.Stmt {
	var file *ast.File
	for _, f := range pass.Files {
		if f.Pos() <= target.Pos() && target.End() <= f.End() {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	var found []ast.Stmt
	contains := func(list []ast.Stmt) bool {
		for _, s := range list {
			if s == target {
				return true
			}
		}
		return false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if contains(n.List) {
				found = n.List
			}
		case *ast.CaseClause:
			if contains(n.Body) {
				found = n.Body
			}
		case *ast.CommClause:
			if contains(n.Body) {
				found = n.Body
			}
		}
		return true
	})
	return found
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
