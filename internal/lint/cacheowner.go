package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CacheOwnerAnalyzer enforces DESIGN.md §3/§4 cache-ownership rules.
//
// Fields tagged //studyvet:owned (response caches, uarsa memo shards,
// pooled buffers) may only be mutated from methods of the declaring
// type, from a function whose body visibly takes the declared guard
// mutex on the same receiver chain (//studyvet:owned mu names the
// guard), or from a helper annotated //studyvet:locked whose contract
// is that callers hold the guard.
//
// Pool acquire/release pairs (Config.Pools, e.g. uatypes's
// AcquireEncoder/ReleaseEncoder) must balance on every return path:
// a function that acquires must either defer the release or release
// before each return statement reachable after the acquire.
// //studyvet:owns-encoder exempts functions that transfer ownership
// to their caller.
func CacheOwnerAnalyzer(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "cacheowner",
		Doc:  "owned cache fields mutate only under their owner; pool acquire/release balance on all paths",
	}
	a.Run = func(pass *Pass) error {
		owned := collectOwnedFields(pass)
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if len(owned) > 0 {
					checkOwnedMutations(pass, fd, owned)
				}
				checkPoolBalance(pass, cfg, fd)
			}
		}
		return nil
	}
	return a
}

// ownedField records one //studyvet:owned annotation.
type ownedField struct {
	owner *types.Named
	mutex string // optional guard field name ("" = owner methods only)
}

func collectOwnedFields(pass *Pass) map[*types.Var]ownedField {
	owned := map[*types.Var]ownedField{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			def, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := def.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, ok := FieldDirective(field, DirOwned)
				if !ok {
					continue
				}
				mutex := ""
				if len(d.Args) > 0 {
					mutex = d.Args[0]
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						owned[v] = ownedField{owner: named, mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return owned
}

func checkOwnedMutations(pass *Pass, fd *ast.FuncDecl, owned map[*types.Var]ownedField) {
	recv := receiverNamed(pass.TypesInfo, fd)
	lockedHelper := pass.FuncDirective(fd, DirLocked)

	// lockBases[g] lists receiver-chain strings on which guard g is
	// visibly taken in this function: "sh" for sh.mu.Lock().
	lockBases := map[string][]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" &&
			sel.Sel.Name != "RLock" && sel.Sel.Name != "RUnlock") {
			return true
		}
		guard, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		lockBases[guard.Sel.Name] = append(lockBases[guard.Sel.Name], exprString(guard.X))
		return true
	})

	report := func(pos token.Pos, v *types.Var, base ast.Expr, of ownedField) {
		if recv != nil && recv.Obj() == of.owner.Obj() {
			return // method of the owning type
		}
		if lockedHelper || pass.ExemptAt(pos, DirLocked) {
			return // //studyvet:locked: callers hold the guard (or the value is unpublished)
		}
		if of.mutex != "" {
			baseStr := exprString(base)
			for _, lb := range lockBases[of.mutex] {
				if lb == baseStr {
					return // guard visibly taken on the same chain
				}
			}
		}
		how := "from methods of " + of.owner.Obj().Name()
		if of.mutex != "" {
			how += " or while holding " + of.mutex
		}
		pass.Reportf(pos, "field %s.%s is //studyvet:owned: mutate it only %s",
			of.owner.Obj().Name(), v.Name(), how)
	}

	// A mutation is an assignment/inc-dec/delete whose target selects an
	// owned field anywhere along the chain (sh.cur, e.shards[i].cur = …,
	// delete(sh.prev, k)).
	checkTarget := func(pos token.Pos, e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			v, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			if of, ok := owned[v]; ok {
				report(pos, v, sel.X, of)
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkTarget(n.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(n.Pos(), n.X)
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "delete") && len(n.Args) > 0 {
				checkTarget(n.Pos(), n.Args[0])
			}
		}
		return true
	})
}

// --- pool balance ---

func checkPoolBalance(pass *Pass, cfg *Config, fd *ast.FuncDecl) {
	if len(cfg.Pools) == 0 || pass.FuncDirective(fd, DirOwnsEncoder) {
		return
	}
	// The declared function body and each function literal are separate
	// balance scopes: a release inside a nested closure does not balance
	// an acquire outside it (the closure may never run).
	scopes := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, fl.Body)
		}
		return true
	})
	for _, pair := range cfg.Pools {
		for _, scope := range scopes {
			checkPoolScope(pass, pair, scope)
		}
	}
}

// callTo reports whether the node is a call to the named function
// (types.Func.FullName match), excluding calls nested in inner
// function literals when skipLits is set.
func (p *Pass) callsIn(root ast.Node, full string, skipLits bool) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && skipLits && n != root {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := p.useObj(call.Fun)
		if obj == nil {
			return true
		}
		if fullName(obj) == full {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}

func checkPoolScope(pass *Pass, pair PoolPair, scope *ast.BlockStmt) {
	acquires := scopeCalls(pass, scope, pair.Acquire)
	if len(acquires) == 0 {
		return
	}
	releases := scopeCalls(pass, scope, pair.Release)

	// A deferred release (directly, or inside a deferred closure)
	// balances every path.
	deferred := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // inner scopes checked separately
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if obj := pass.useObj(ds.Call.Fun); obj != nil && fullName(obj) == pair.Release {
			deferred = true
		}
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			if len(pass.callsIn(fl, pair.Release, false)) > 0 {
				deferred = true
			}
		}
		return true
	})
	if deferred {
		return
	}

	short := pair.Acquire[strings.LastIndex(pair.Acquire, "/")+1:]
	if len(releases) == 0 {
		pass.Reportf(acquires[0].Pos(),
			"%s is never released in this function: release it on every return path or defer the release",
			short)
		return
	}

	// No defer: every return statement after the first acquire must have
	// a release on its path — a preceding sibling statement in its own
	// block or any enclosing block up to the scope root.
	firstAcq := acquires[0].Pos()
	ast.Inspect(scope, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < firstAcq {
			return true
		}
		if !releasedBefore(pass, scope, ret, pair.Release) {
			pass.Reportf(ret.Pos(),
				"return without releasing the encoder acquired by %s at line %d (early-return leak: defer the release or release before returning)",
				short, pass.Fset.Position(firstAcq).Line)
		}
		return true
	})
}

// scopeCalls finds calls to the named function directly in scope (not
// inside nested function literals).
func scopeCalls(pass *Pass, scope *ast.BlockStmt, full string) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(scope, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != scope {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := pass.useObj(call.Fun)
		if obj != nil && fullName(obj) == full {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}

// releasedBefore reports whether a release call appears in a statement
// preceding ret within ret's own statement list or any enclosing list
// inside scope — i.e. the release dominates the return textually.
// Releases inside sibling branches (an if-arm the path did not take)
// do not count, which is exactly what catches early-return leaks.
func releasedBefore(pass *Pass, scope *ast.BlockStmt, ret *ast.ReturnStmt, release string) bool {
	// Build the chain of statement lists from scope down to ret.
	type level struct {
		list []ast.Stmt
		idx  int // index of the statement containing (or being) ret
	}
	var path []level
	var build func(list []ast.Stmt) bool
	containsPos := func(s ast.Stmt) bool {
		return s.Pos() <= ret.Pos() && ret.End() <= s.End()
	}
	build = func(list []ast.Stmt) bool {
		for i, s := range list {
			if !containsPos(s) {
				continue
			}
			path = append(path, level{list: list, idx: i})
			if s == ast.Stmt(ret) {
				return true
			}
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				switch n := n.(type) {
				case *ast.BlockStmt:
					if build(n.List) {
						found = true
						return false
					}
				case *ast.CaseClause:
					if build(n.Body) {
						found = true
						return false
					}
				case *ast.CommClause:
					if build(n.Body) {
						found = true
						return false
					}
				case *ast.FuncLit:
					return false
				}
				return true
			})
			return found
		}
		return false
	}
	if !build(scope.List) {
		return false
	}
	for _, lv := range path {
		for _, s := range lv.list[:lv.idx] {
			if len(pass.callsIn(s, release, true)) > 0 {
				return true
			}
		}
	}
	return false
}
