package simnet

import (
	"context"
	"hash/fnv"
	"net"
	"net/netip"
	"testing"
	"time"
)

func mustPrefix(t *testing.T, base string, bits int) Prefix {
	t.Helper()
	p, err := NewPrefix(base, bits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrefixAndUniverse(t *testing.T) {
	p := mustPrefix(t, "192.0.2.0", 24)
	if p.Size != 256 {
		t.Errorf("size = %d", p.Size)
	}
	if !p.Contains(netip.MustParseAddr("192.0.2.255")) {
		t.Error("should contain .255")
	}
	if p.Contains(netip.MustParseAddr("192.0.3.0")) {
		t.Error("should not contain .3.0")
	}
	if got := p.AddrAt(7).String(); got != "192.0.2.7" {
		t.Errorf("AddrAt(7) = %s", got)
	}

	u := NewUniverse(p, mustPrefix(t, "198.51.100.0", 24))
	if u.Size() != 512 {
		t.Errorf("universe size = %d", u.Size())
	}
	a, err := u.AddrAt(256)
	if err != nil || a.String() != "198.51.100.0" {
		t.Errorf("AddrAt(256) = %v, %v", a, err)
	}
	if _, err := u.AddrAt(512); err == nil {
		t.Error("out-of-range index accepted")
	}
	if !u.Contains(netip.MustParseAddr("198.51.100.9")) {
		t.Error("universe should contain second prefix")
	}
}

func TestNewPrefixValidation(t *testing.T) {
	if _, err := NewPrefix("not-an-ip", 24); err == nil {
		t.Error("bad IP accepted")
	}
	if _, err := NewPrefix("2001:db8::1", 64); err == nil {
		t.Error("IPv6 accepted")
	}
	if _, err := NewPrefix("10.0.0.0", 40); err == nil {
		t.Error("bad prefix length accepted")
	}
}

func TestDialRegisteredHost(t *testing.T) {
	u := NewUniverse(mustPrefix(t, "192.0.2.0", 24))
	nw := New(u)
	ip := netip.MustParseAddr("192.0.2.10")
	nw.Register(ip, 4840, 65001, HandlerFunc(func(conn net.Conn) {
		defer conn.Close()
		_, _ = conn.Write([]byte("pong"))
	}))

	conn, err := nw.DialContext(context.Background(), "tcp", "192.0.2.10:4840")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 4)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong" {
		t.Errorf("read %q", buf)
	}
	if nw.ASOf(ip) != 65001 {
		t.Errorf("ASN = %d", nw.ASOf(ip))
	}
	if nw.NumHosts() != 1 || len(nw.Hosts()) != 1 {
		t.Error("host registry wrong")
	}
}

func TestDialClosedPortRefused(t *testing.T) {
	nw := New(NewUniverse(mustPrefix(t, "192.0.2.0", 24)))
	_, err := nw.DialContext(context.Background(), "tcp", "192.0.2.10:4840")
	if _, ok := err.(ErrRefused); !ok {
		t.Errorf("err = %v, want ErrRefused", err)
	}
	if err.Error() == "" || err.(ErrRefused).Timeout() {
		t.Error("refusal should carry a message and not be a timeout")
	}
}

func TestUnregisterAndExclude(t *testing.T) {
	nw := New(NewUniverse(mustPrefix(t, "192.0.2.0", 24)))
	ip := netip.MustParseAddr("192.0.2.10")
	nw.Register(ip, 4840, 1, HandlerFunc(func(c net.Conn) { c.Close() }))
	if !nw.OpenPort(ip, 4840) {
		t.Error("port should be open")
	}
	nw.Unregister(ip, 4840)
	if nw.OpenPort(ip, 4840) {
		t.Error("port should be closed after unregister")
	}

	nw.Register(ip, 4840, 1, HandlerFunc(func(c net.Conn) { c.Close() }))
	nw.Exclude(ip)
	if nw.OpenPort(ip, 4840) {
		t.Error("excluded IP should look closed")
	}
	if _, err := nw.DialContext(context.Background(), "tcp", "192.0.2.10:4840"); err == nil {
		t.Error("dialing excluded IP should fail")
	}
}

func TestNoiseHostsAnswerButAreNotOPCUA(t *testing.T) {
	nw := New(NewUniverse(mustPrefix(t, "192.0.2.0", 24)))
	nw.SetNoise(1.0) // every unregistered universe address answers
	conn, err := nw.DialContext(context.Background(), "tcp", "192.0.2.200:4840")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("HEL")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("noise host read: %d, %v", n, err)
	}
	if string(buf[:4]) == "ACK\x00" {
		t.Error("noise host should not speak OPC UA")
	}
	// Noise only exists on port 4840 and inside the universe.
	if nw.OpenPort(netip.MustParseAddr("192.0.2.200"), 4841) {
		t.Error("noise on non-default port")
	}
	if nw.OpenPort(netip.MustParseAddr("10.9.9.9"), 4840) {
		t.Error("noise outside universe")
	}
}

func TestNoiseDeterministicFraction(t *testing.T) {
	nw := New(NewUniverse(mustPrefix(t, "10.0.0.0", 16)))
	nw.SetNoise(0.25)
	count := 0
	u := nw.Universe()
	for i := uint64(0); i < u.Size(); i++ {
		a, _ := u.AddrAt(i)
		if nw.OpenPort(a, 4840) {
			count++
		}
	}
	frac := float64(count) / float64(u.Size())
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("noise fraction = %.3f, want ≈0.25", frac)
	}
	// Determinism: a second pass gives the identical count.
	count2 := 0
	for i := uint64(0); i < u.Size(); i++ {
		a, _ := u.AddrAt(i)
		if nw.OpenPort(a, 4840) {
			count2++
		}
	}
	if count != count2 {
		t.Error("noise not deterministic")
	}
}

func TestDialLatency(t *testing.T) {
	nw := New(NewUniverse(mustPrefix(t, "192.0.2.0", 30)))
	nw.SetLatency(50 * time.Millisecond)
	start := time.Now()
	_, err := nw.DialContext(context.Background(), "tcp", "192.0.2.1:4840")
	if _, ok := err.(ErrRefused); !ok {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
	// Context cancellation beats latency.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := nw.DialContext(ctx, "tcp", "192.0.2.1:4840"); err == nil {
		t.Error("cancelled dial should fail")
	}
}

func TestDialValidation(t *testing.T) {
	nw := New(NewUniverse(mustPrefix(t, "192.0.2.0", 24)))
	if _, err := nw.DialContext(context.Background(), "udp", "192.0.2.1:4840"); err == nil {
		t.Error("udp accepted")
	}
	if _, err := nw.DialContext(context.Background(), "tcp", "192.0.2.1"); err == nil {
		t.Error("missing port accepted")
	}
	if _, err := nw.DialContext(context.Background(), "tcp", "host:foo"); err == nil {
		t.Error("bad port accepted")
	}
	if _, err := nw.DialContext(context.Background(), "tcp", "nothost:4840"); err == nil {
		t.Error("bad IP accepted")
	}
}

func TestASOfUnregisteredIsDeterministic(t *testing.T) {
	nw := New(NewUniverse(mustPrefix(t, "192.0.2.0", 24)))
	a := netip.MustParseAddr("203.0.113.7")
	if nw.ASOf(a) != nw.ASOf(a) {
		t.Error("ASN not deterministic")
	}
	if nw.ASOf(a) < 64512 {
		t.Error("synthetic ASN out of private range")
	}
}

// TestNoiseMatchesFNVReference pins the inlined FNV-1a noise hash
// against the stdlib hash/fnv implementation: noise decisions must stay
// identical across the allocation-free rewrite because every wave's
// open-port population (and therefore every dataset byte) depends on
// them.
func TestNoiseMatchesFNVReference(t *testing.T) {
	z := Noise{Prob: 0.37, Seed: 0x9E3779B97F4A7C15}
	ref := func(ip netip.Addr) bool {
		h := fnv.New64a()
		b := ip.As4()
		h.Write(b[:])
		v := h.Sum64() ^ z.Seed
		return float64(v%1000000)/1000000.0 < z.Prob
	}
	for i := 0; i < 5000; i++ {
		ip := netip.AddrFrom4([4]byte{byte(i >> 8), byte(i), byte(i * 7), byte(i * 13)})
		if got, want := z.HitInUniverse(ip, 4840), ref(ip); got != want {
			t.Fatalf("HitInUniverse(%s) = %v, want %v", ip, got, want)
		}
	}
}

// TestNoiseHitAllocFree gates the per-probe noise decision at zero heap
// allocations (it runs once per scanned address).
func TestNoiseHitAllocFree(t *testing.T) {
	z := Noise{Prob: 0.5, Seed: 1}
	ip := netip.AddrFrom4([4]byte{100, 64, 3, 9})
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = z.HitInUniverse(ip, 4840)
	}); allocs != 0 {
		t.Errorf("HitInUniverse allocates %.1f objects per call, want 0", allocs)
	}
}

// TestUniversePrefixIndexBinarySearch cross-checks the binary-search
// PrefixIndex against a linear first-match walk, including boundary
// addresses and out-of-universe probes, for disjoint and overlapping
// prefix sets.
func TestUniversePrefixIndexBinarySearch(t *testing.T) {
	disjoint := NewUniverse(
		mustPrefix(t, "100.70.0.0", 16),
		mustPrefix(t, "100.64.0.0", 16),
		mustPrefix(t, "10.0.0.0", 24),
	)
	overlapping := NewUniverse(
		mustPrefix(t, "100.64.0.0", 16),
		mustPrefix(t, "100.64.128.0", 24), // inside the first prefix
	)
	linear := func(u *Universe, a netip.Addr) int {
		for i, p := range u.prefixes {
			if p.Contains(a) {
				return i
			}
		}
		return -1
	}
	probes := []string{
		"100.64.0.0", "100.64.255.255", "100.64.128.7", "100.65.0.0",
		"100.70.0.1", "100.70.255.255", "10.0.0.0", "10.0.0.255",
		"10.0.1.0", "9.255.255.255", "203.0.113.5", "0.0.0.0",
		"255.255.255.255",
	}
	for _, u := range []*Universe{disjoint, overlapping} {
		for _, s := range probes {
			a := netip.MustParseAddr(s)
			if got, want := u.PrefixIndex(a), linear(u, a); got != want {
				t.Errorf("PrefixIndex(%s) = %d, want %d", s, got, want)
			}
		}
	}
	if overlapping.byBase != nil {
		t.Error("overlapping universe should fall back to the linear walk")
	}
	if disjoint.byBase == nil {
		t.Error("disjoint universe should use the binary search")
	}
	// AddrAt must agree with the linear prefix walk order.
	for i := uint64(0); i < disjoint.Size(); i += 997 {
		var want netip.Addr
		rem := i
		for _, p := range disjoint.prefixes {
			if rem < uint64(p.Size) {
				want = p.AddrAt(uint32(rem))
				break
			}
			rem -= uint64(p.Size)
		}
		got, err := disjoint.AddrAt(i)
		if err != nil {
			t.Fatalf("AddrAt(%d): %v", i, err)
		}
		if got != want {
			t.Fatalf("AddrAt(%d) = %s, want %s", i, got, want)
		}
	}
	if _, err := disjoint.AddrAt(disjoint.Size()); err == nil {
		t.Error("AddrAt past the universe should error")
	}
}
