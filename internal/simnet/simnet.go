// Package simnet provides the in-memory IPv4 Internet the measurement
// campaign scans: a universe of address prefixes, hosts registered at
// IP:port with their autonomous system, connection-level noise hosts
// (open TCP 4840 without OPC UA, as the paper observes for 99.95% of
// open ports), latency injection and a Dialer compatible with the
// client and scanner.
//
// Real Internet-wide scanning is gated (ethically and technically), so
// the campaign runs against this network instead; every host is a real
// OPC UA server speaking the full binary protocol over net.Pipe.
package simnet

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"time"
)

// ConnHandler serves one accepted connection. *uaserver.Server satisfies
// this interface.
type ConnHandler interface {
	HandleConn(conn net.Conn)
}

// HandlerFunc adapts a function to ConnHandler.
type HandlerFunc func(conn net.Conn)

// HandleConn implements ConnHandler.
func (f HandlerFunc) HandleConn(conn net.Conn) { f(conn) }

// Prefix is a contiguous IPv4 range [Base, Base+Size).
type Prefix struct {
	Base netip.Addr
	Size uint32
}

// NewPrefix builds a prefix from CIDR-ish parameters.
func NewPrefix(base string, bits int) (Prefix, error) {
	addr, err := netip.ParseAddr(base)
	if err != nil {
		return Prefix{}, fmt.Errorf("simnet: %w", err)
	}
	if !addr.Is4() {
		return Prefix{}, fmt.Errorf("simnet: %s is not IPv4", base)
	}
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("simnet: invalid prefix length %d", bits)
	}
	return Prefix{Base: addr, Size: 1 << (32 - bits)}, nil
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Contains reports whether the prefix contains the address.
func (p Prefix) Contains(a netip.Addr) bool {
	v, base := addrToU32(a), addrToU32(p.Base)
	return v >= base && v-base < p.Size
}

// AddrAt returns the i-th address of the prefix.
func (p Prefix) AddrAt(i uint32) netip.Addr {
	return u32ToAddr(addrToU32(p.Base) + i)
}

// Universe is the scannable address space: an ordered set of prefixes.
type Universe struct {
	prefixes []Prefix
	total    uint64
}

// NewUniverse builds a universe from prefixes.
func NewUniverse(prefixes ...Prefix) *Universe {
	u := &Universe{prefixes: prefixes}
	for _, p := range prefixes {
		u.total += uint64(p.Size)
	}
	return u
}

// Size returns the number of scannable addresses.
func (u *Universe) Size() uint64 { return u.total }

// AddrAt maps a linear index to an address.
func (u *Universe) AddrAt(i uint64) (netip.Addr, error) {
	for _, p := range u.prefixes {
		if i < uint64(p.Size) {
			return p.AddrAt(uint32(i)), nil
		}
		i -= uint64(p.Size)
	}
	return netip.Addr{}, fmt.Errorf("simnet: index %d outside universe", i)
}

// Contains reports whether the universe contains the address.
func (u *Universe) Contains(a netip.Addr) bool {
	return u.PrefixIndex(a) >= 0
}

// PrefixIndex returns the index of the universe prefix containing the
// address, or -1 if the address is outside the universe. Worldview
// snapshots shard their host lookup by this index so concurrent
// scanners working disjoint prefixes hit independent shards.
func (u *Universe) PrefixIndex(a netip.Addr) int {
	for i, p := range u.prefixes {
		if p.Contains(a) {
			return i
		}
	}
	return -1
}

// NumPrefixes returns the number of prefixes in the universe.
func (u *Universe) NumPrefixes() int { return len(u.prefixes) }

// View is the read-only interface over the simulated Internet that the
// scanner consumes: address-space enumeration, SYN-probe checks, AS
// attribution and connection establishment. Both the legacy mutable
// *Network and the immutable per-wave snapshots built by
// internal/worldview satisfy it; DialContext additionally makes every
// View a uaclient.Dialer.
type View interface {
	// Universe returns the scannable address space.
	Universe() *Universe
	// OpenPort reports whether a TCP connect would succeed, without
	// spawning handlers (the port-scan fast path).
	OpenPort(ip netip.Addr, port int) bool
	// ASOf returns the autonomous system of an address.
	ASOf(ip netip.Addr) int
	// DialContext connects to "ip:port" like net.Dialer.
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Network is the simulated Internet.
type Network struct {
	universe *Universe

	mu      sync.RWMutex
	hosts   map[string]*Host // "ip:port"
	asOfIP  map[netip.Addr]int
	latency time.Duration
	// noiseProb is the probability that an unregistered universe address
	// has TCP 4840 open but speaks something other than OPC UA.
	noiseProb   float64
	noiseSeed   uint64
	dialCount   int64
	excludedIPs map[netip.Addr]bool
}

// New creates a network over the given universe.
func New(u *Universe) *Network {
	return &Network{
		universe:    u,
		hosts:       make(map[string]*Host),
		asOfIP:      make(map[netip.Addr]int),
		excludedIPs: make(map[netip.Addr]bool),
		noiseSeed:   0x9E3779B97F4A7C15,
	}
}

// Host is one registered endpoint.
type Host struct {
	IP      netip.Addr
	Port    int
	ASN     int
	Handler ConnHandler
}

// SetLatency sets the artificial dial latency.
func (n *Network) SetLatency(d time.Duration) { n.latency = d }

// SetNoise configures the open-port-but-not-OPC-UA probability for
// unregistered universe addresses on port 4840.
func (n *Network) SetNoise(prob float64) { n.noiseProb = prob }

// Exclude removes an IP from the network (opt-out list, Appendix A.2).
func (n *Network) Exclude(ip netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.excludedIPs[ip] = true
}

// Register adds a host. Registering the same ip:port twice replaces the
// previous handler (hosts change across measurement waves).
func (n *Network) Register(ip netip.Addr, port, asn int, h ConnHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := netip.AddrPortFrom(ip, uint16(port)).String()
	n.hosts[key] = &Host{IP: ip, Port: port, ASN: asn, Handler: h}
	n.asOfIP[ip] = asn
}

// Unregister removes a host (churn between waves).
func (n *Network) Unregister(ip netip.Addr, port int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, netip.AddrPortFrom(ip, uint16(port)).String())
}

// Hosts returns a snapshot of all registered hosts.
func (n *Network) Hosts() []*Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	return out
}

// NumHosts returns the number of registered endpoints.
func (n *Network) NumHosts() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.hosts)
}

// Universe returns the scannable address space.
func (n *Network) Universe() *Universe { return n.universe }

// ASOf returns the autonomous system of an address; unregistered
// addresses get a deterministic ASN derived from their /16.
func (n *Network) ASOf(ip netip.Addr) int {
	n.mu.RLock()
	if asn, ok := n.asOfIP[ip]; ok {
		n.mu.RUnlock()
		return asn
	}
	n.mu.RUnlock()
	return DefaultASN(ip)
}

// DefaultASN is the deterministic fallback AS attribution for addresses
// without a registered host: a private-use ASN derived from the /16.
// Snapshots use the same formula so every View agrees on AS mapping.
func DefaultASN(ip netip.Addr) int {
	return 64512 + int(addrToU32(ip)>>16)%1024
}

// Noise is the deterministic open-port-but-not-OPC-UA model: Prob of
// the universe's unregistered addresses answer on TCP 4840 with some
// other service (the paper observes 99.95% of open ports are not
// OPC UA). The decision is a pure hash of the address, so the mutable
// Network and every immutable snapshot sharing the same Noise agree.
type Noise struct {
	Prob float64
	Seed uint64
}

// Hit reports whether the address answers with a non-OPC-UA service.
func (z Noise) Hit(u *Universe, ip netip.Addr, port int) bool {
	// Cheap rejections first: the universe prefix walk only runs for
	// dials that could plausibly be noise.
	if port != 4840 || z.Prob <= 0 {
		return false
	}
	return u.Contains(ip) && z.HitInUniverse(ip, port)
}

// HitInUniverse is Hit for an address the caller already resolved to a
// universe prefix; it skips the containment walk (the port-scan hot
// path calls this once per address).
func (z Noise) HitInUniverse(ip netip.Addr, port int) bool {
	if port != 4840 || z.Prob <= 0 {
		return false
	}
	h := fnv.New64a()
	b := ip.As4()
	h.Write(b[:])
	v := h.Sum64() ^ z.Seed
	// Map the hash to [0,1) and compare.
	return float64(v%1000000)/1000000.0 < z.Prob
}

// isNoise deterministically decides whether an unregistered address
// answers on port 4840 with a non-OPC-UA service.
func (n *Network) isNoise(ip netip.Addr, port int) bool {
	return Noise{Prob: n.noiseProb, Seed: n.noiseSeed}.Hit(n.universe, ip, port)
}

// NoiseModel returns the network's noise configuration, for snapshot
// construction.
func (n *Network) NoiseModel() Noise { return Noise{Prob: n.noiseProb, Seed: n.noiseSeed} }

// Latency returns the artificial dial latency.
func (n *Network) Latency() time.Duration { return n.latency }

// ExcludedIPs returns a copy of the opt-out list.
func (n *Network) ExcludedIPs() []netip.Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]netip.Addr, 0, len(n.excludedIPs))
	for ip := range n.excludedIPs {
		out = append(out, ip)
	}
	return out
}

// ErrRefused mirrors a TCP RST from a closed port.
type ErrRefused struct{ Addr string }

// Error implements the error interface.
func (e ErrRefused) Error() string { return "simnet: connection refused: " + e.Addr }

// Timeout reports false; refusals are immediate.
func (e ErrRefused) Timeout() bool { return false }

// DialContext implements the Dialer interface used by uaclient and the
// scanner. It spawns the host's handler on the server end of a pipe.
func (n *Network) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("simnet: unsupported network %q", network)
	}
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("simnet: invalid port %q", portStr)
	}
	ip, err := netip.ParseAddr(host)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	if n.latency > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(n.latency):
		}
	}
	n.mu.RLock()
	excluded := n.excludedIPs[ip]
	h, ok := n.hosts[netip.AddrPortFrom(ip, uint16(port)).String()]
	n.mu.RUnlock()
	if excluded {
		return nil, ErrRefused{Addr: address}
	}
	if !ok {
		if n.isNoise(ip, port) {
			client, server := net.Pipe()
			go ServeNoise(server)
			return client, nil
		}
		return nil, ErrRefused{Addr: address}
	}
	client, server := net.Pipe()
	go h.Handler.HandleConn(server)
	return client, nil
}

// ServeNoise emulates a non-OPC-UA service on port 4840: it reads a
// little and responds with an HTTP error, as embedded web servers do.
// Exported so snapshot views serve the exact same noise behaviour.
func ServeNoise(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	_, _ = conn.Read(buf)
	_, _ = conn.Write([]byte("HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n"))
}

// Compile-time check: the mutable network satisfies the read-only view.
var _ View = (*Network)(nil)

// OpenPort reports whether a TCP connect to the address would succeed,
// without spawning handlers. The port-scan stage uses it as its fast
// SYN-probe path; the result matches DialContext behaviour exactly.
func (n *Network) OpenPort(ip netip.Addr, port int) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.excludedIPs[ip] {
		return false
	}
	if _, ok := n.hosts[netip.AddrPortFrom(ip, uint16(port)).String()]; ok {
		return true
	}
	return n.isNoise(ip, port)
}
