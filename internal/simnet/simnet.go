// Package simnet provides the in-memory IPv4 Internet the measurement
// campaign scans: a universe of address prefixes, hosts registered at
// IP:port with their autonomous system, connection-level noise hosts
// (open TCP 4840 without OPC UA, as the paper observes for 99.95% of
// open ports), latency injection and a Dialer compatible with the
// client and scanner.
//
// Real Internet-wide scanning is gated (ethically and technically), so
// the campaign runs against this network instead; every host is a real
// OPC UA server speaking the full binary protocol over net.Pipe.
package simnet

import (
	"cmp"
	"context"
	"fmt"
	"net"
	"net/netip"
	"slices"
	"strconv"
	"sync"
	"time"

	"repro/internal/chaos"
)

// ConnHandler serves one accepted connection. *uaserver.Server satisfies
// this interface.
type ConnHandler interface {
	HandleConn(conn net.Conn)
}

// HandlerFunc adapts a function to ConnHandler.
type HandlerFunc func(conn net.Conn)

// HandleConn implements ConnHandler.
func (f HandlerFunc) HandleConn(conn net.Conn) { f(conn) }

// Prefix is a contiguous IPv4 range [Base, Base+Size).
type Prefix struct {
	Base netip.Addr
	Size uint32
}

// NewPrefix builds a prefix from CIDR-ish parameters.
func NewPrefix(base string, bits int) (Prefix, error) {
	addr, err := netip.ParseAddr(base)
	if err != nil {
		return Prefix{}, fmt.Errorf("simnet: %w", err)
	}
	if !addr.Is4() {
		return Prefix{}, fmt.Errorf("simnet: %s is not IPv4", base)
	}
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("simnet: invalid prefix length %d", bits)
	}
	return Prefix{Base: addr, Size: 1 << (32 - bits)}, nil
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Contains reports whether the prefix contains the address.
func (p Prefix) Contains(a netip.Addr) bool {
	v, base := addrToU32(a), addrToU32(p.Base)
	return v >= base && v-base < p.Size
}

// AddrAt returns the i-th address of the prefix.
func (p Prefix) AddrAt(i uint32) netip.Addr {
	return u32ToAddr(addrToU32(p.Base) + i)
}

// Universe is the scannable address space: an ordered set of prefixes.
type Universe struct {
	prefixes []Prefix
	// cum[i] is the linear index of prefixes[i]'s first address;
	// cum[len(prefixes)] == total. AddrAt binary-searches it instead of
	// walking the prefix list per probe.
	cum   []uint64
	total uint64
	// byBase orders prefix indexes by base address when the prefixes
	// are pairwise disjoint, enabling a binary-search PrefixIndex (the
	// port-scan and dial hot path); nil when prefixes overlap, which
	// falls back to the first-match linear walk.
	byBase []int
}

// NewUniverse builds a universe from prefixes.
func NewUniverse(prefixes ...Prefix) *Universe {
	u := &Universe{
		prefixes: prefixes,
		cum:      make([]uint64, len(prefixes)+1),
	}
	for i, p := range prefixes {
		u.cum[i] = u.total
		u.total += uint64(p.Size)
	}
	u.cum[len(prefixes)] = u.total

	byBase := make([]int, len(prefixes))
	for i := range byBase {
		byBase[i] = i
	}
	slices.SortFunc(byBase, func(a, b int) int {
		return cmp.Compare(addrToU32(prefixes[a].Base), addrToU32(prefixes[b].Base))
	})
	disjoint := true
	for k := 1; k < len(byBase); k++ {
		prev, cur := prefixes[byBase[k-1]], prefixes[byBase[k]]
		if uint64(addrToU32(prev.Base))+uint64(prev.Size) > uint64(addrToU32(cur.Base)) {
			disjoint = false
			break
		}
	}
	if disjoint {
		u.byBase = byBase
	}
	return u
}

// Size returns the number of scannable addresses.
func (u *Universe) Size() uint64 { return u.total }

// AddrAt maps a linear index to an address.
func (u *Universe) AddrAt(i uint64) (netip.Addr, error) {
	if i >= u.total {
		return netip.Addr{}, fmt.Errorf("simnet: index %d outside universe", i)
	}
	// Find the prefix whose range contains i: the last k with cum[k] <= i.
	lo, hi := 0, len(u.prefixes)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if u.cum[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return u.prefixes[lo].AddrAt(uint32(i - u.cum[lo])), nil
}

// Contains reports whether the universe contains the address.
func (u *Universe) Contains(a netip.Addr) bool {
	return u.PrefixIndex(a) >= 0
}

// PrefixIndex returns the index of the universe prefix containing the
// address, or -1 if the address is outside the universe. Worldview
// snapshots shard their host lookup by this index so concurrent
// scanners working disjoint prefixes hit independent shards.
func (u *Universe) PrefixIndex(a netip.Addr) int {
	if u.byBase != nil {
		// Disjoint prefixes: at most one can contain the address, so
		// the first match equals the only match and a binary search on
		// the base-ordered view is exact. Find the last prefix with
		// Base <= a and check containment.
		v := addrToU32(a)
		lo, hi := 0, len(u.byBase)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if addrToU32(u.prefixes[u.byBase[mid]].Base) <= v {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		if len(u.byBase) > 0 && u.prefixes[u.byBase[lo]].Contains(a) {
			return u.byBase[lo]
		}
		return -1
	}
	for i, p := range u.prefixes {
		if p.Contains(a) {
			return i
		}
	}
	return -1
}

// NumPrefixes returns the number of prefixes in the universe.
func (u *Universe) NumPrefixes() int { return len(u.prefixes) }

// View is the read-only interface over the simulated Internet that the
// scanner consumes: address-space enumeration, SYN-probe checks, AS
// attribution and connection establishment. Both the legacy mutable
// *Network and the immutable per-wave snapshots built by
// internal/worldview satisfy it; DialContext additionally makes every
// View a uaclient.Dialer.
type View interface {
	// Universe returns the scannable address space.
	Universe() *Universe
	// OpenPort reports whether a TCP connect would succeed, without
	// spawning handlers (the port-scan fast path).
	OpenPort(ip netip.Addr, port int) bool
	// ASOf returns the autonomous system of an address.
	ASOf(ip netip.Addr) int
	// DialContext connects to "ip:port" like net.Dialer.
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Network is the simulated Internet.
type Network struct {
	universe *Universe

	mu      sync.RWMutex
	hosts   map[netip.AddrPort]*Host
	asOfIP  map[netip.Addr]int
	latency time.Duration
	// noiseProb is the probability that an unregistered universe address
	// has TCP 4840 open but speaks something other than OPC UA.
	noiseProb   float64
	noiseSeed   uint64
	dialCount   int64
	excludedIPs map[netip.Addr]bool
	// chaos is the wave-bound adversarial-host model (DESIGN.md §9);
	// the zero value leaves every registered host polite.
	chaos chaos.WaveModel
}

// New creates a network over the given universe.
func New(u *Universe) *Network {
	return &Network{
		universe:    u,
		hosts:       make(map[netip.AddrPort]*Host),
		asOfIP:      make(map[netip.Addr]int),
		excludedIPs: make(map[netip.Addr]bool),
		noiseSeed:   0x9E3779B97F4A7C15,
	}
}

// Host is one registered endpoint.
type Host struct {
	IP      netip.Addr
	Port    int
	ASN     int
	Handler ConnHandler
}

// SetLatency sets the artificial dial latency.
func (n *Network) SetLatency(d time.Duration) { n.latency = d }

// SetNoise configures the open-port-but-not-OPC-UA probability for
// unregistered universe addresses on port 4840.
func (n *Network) SetNoise(prob float64) { n.noiseProb = prob }

// SetChaos installs the wave-bound adversarial-host model consulted on
// every dial to a registered host (deploy.World.ApplyWave rebinds it
// each wave on this legacy mutable path; snapshot views carry their own
// via worldview.Config.Chaos). A zero WaveModel disables chaos.
func (n *Network) SetChaos(wm chaos.WaveModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chaos = wm
}

// ChaosModel returns the currently bound wave chaos model.
func (n *Network) ChaosModel() chaos.WaveModel {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.chaos
}

// Exclude removes an IP from the network (opt-out list, Appendix A.2).
func (n *Network) Exclude(ip netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.excludedIPs[ip] = true
}

// Register adds a host. Registering the same ip:port twice replaces the
// previous handler (hosts change across measurement waves).
func (n *Network) Register(ip netip.Addr, port, asn int, h ConnHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[netip.AddrPortFrom(ip, uint16(port))] = &Host{IP: ip, Port: port, ASN: asn, Handler: h}
	n.asOfIP[ip] = asn
}

// Unregister removes a host (churn between waves).
func (n *Network) Unregister(ip netip.Addr, port int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, netip.AddrPortFrom(ip, uint16(port)))
}

// Hosts returns a snapshot of all registered hosts, sorted by IP then
// port so snapshots are stable across runs.
func (n *Network) Hosts() []*Host {
	n.mu.RLock()
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	n.mu.RUnlock()
	slices.SortFunc(out, func(a, b *Host) int {
		if c := a.IP.Compare(b.IP); c != 0 {
			return c
		}
		return cmp.Compare(a.Port, b.Port)
	})
	return out
}

// NumHosts returns the number of registered endpoints.
func (n *Network) NumHosts() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.hosts)
}

// Universe returns the scannable address space.
func (n *Network) Universe() *Universe { return n.universe }

// ASOf returns the autonomous system of an address; unregistered
// addresses get a deterministic ASN derived from their /16.
func (n *Network) ASOf(ip netip.Addr) int {
	n.mu.RLock()
	if asn, ok := n.asOfIP[ip]; ok {
		n.mu.RUnlock()
		return asn
	}
	n.mu.RUnlock()
	return DefaultASN(ip)
}

// DefaultASN is the deterministic fallback AS attribution for addresses
// without a registered host: a private-use ASN derived from the /16.
// Snapshots use the same formula so every View agrees on AS mapping.
func DefaultASN(ip netip.Addr) int {
	return 64512 + int(addrToU32(ip)>>16)%1024
}

// Noise is the deterministic open-port-but-not-OPC-UA model: Prob of
// the universe's unregistered addresses answer on TCP 4840 with some
// other service (the paper observes 99.95% of open ports are not
// OPC UA). The decision is a pure hash of the address, so the mutable
// Network and every immutable snapshot sharing the same Noise agree.
type Noise struct {
	Prob float64
	Seed uint64
}

// Hit reports whether the address answers with a non-OPC-UA service.
func (z Noise) Hit(u *Universe, ip netip.Addr, port int) bool {
	// Cheap rejections first: the universe prefix walk only runs for
	// dials that could plausibly be noise.
	if port != 4840 || z.Prob <= 0 {
		return false
	}
	return u.Contains(ip) && z.HitInUniverse(ip, port)
}

// FNV-1a parameters (matching hash/fnv's 64-bit variant). The noise
// model below and the scanner's Feistel permutation both inline the
// hash on their per-probe paths so probes allocate nothing; sharing the
// constants here keeps one canonical definition
// (TestNoiseMatchesFNVReference and the scanner's
// TestPermutationRoundMatchesFNV pin both inlined variants against
// hash/fnv).
const (
	FNVOffset64 = 14695981039346656037
	FNVPrime64  = 1099511628211
)

// HitInUniverse is Hit for an address the caller already resolved to a
// universe prefix; it skips the containment walk (the port-scan hot
// path calls this once per address). It performs no heap allocations.
func (z Noise) HitInUniverse(ip netip.Addr, port int) bool {
	if port != 4840 || z.Prob <= 0 {
		return false
	}
	b := ip.As4()
	h := uint64(FNVOffset64)
	h = (h ^ uint64(b[0])) * FNVPrime64
	h = (h ^ uint64(b[1])) * FNVPrime64
	h = (h ^ uint64(b[2])) * FNVPrime64
	h = (h ^ uint64(b[3])) * FNVPrime64
	v := h ^ z.Seed
	// Map the hash to [0,1) and compare.
	return float64(v%1000000)/1000000.0 < z.Prob
}

// isNoise deterministically decides whether an unregistered address
// answers on port 4840 with a non-OPC-UA service.
func (n *Network) isNoise(ip netip.Addr, port int) bool {
	return Noise{Prob: n.noiseProb, Seed: n.noiseSeed}.Hit(n.universe, ip, port)
}

// NoiseModel returns the network's noise configuration, for snapshot
// construction.
func (n *Network) NoiseModel() Noise { return Noise{Prob: n.noiseProb, Seed: n.noiseSeed} }

// Latency returns the artificial dial latency.
func (n *Network) Latency() time.Duration { return n.latency }

// ExcludedIPs returns a copy of the opt-out list, sorted by address so
// downstream blocklist construction is order-independent.
func (n *Network) ExcludedIPs() []netip.Addr {
	n.mu.RLock()
	out := make([]netip.Addr, 0, len(n.excludedIPs))
	for ip := range n.excludedIPs {
		out = append(out, ip)
	}
	n.mu.RUnlock()
	slices.SortFunc(out, netip.Addr.Compare)
	return out
}

// ErrRefused mirrors a TCP RST from a closed port.
type ErrRefused struct{ Addr string }

// Error implements the error interface.
func (e ErrRefused) Error() string { return "simnet: connection refused: " + e.Addr }

// Timeout reports false; refusals are immediate.
func (e ErrRefused) Timeout() bool { return false }

// DialContext implements the Dialer interface used by uaclient and the
// scanner. It spawns the host's handler on the server end of a pipe.
func (n *Network) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("simnet: unsupported network %q", network)
	}
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("simnet: invalid port %q", portStr)
	}
	ip, err := netip.ParseAddr(host)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	if n.latency > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(n.latency):
		}
	}
	n.mu.RLock()
	excluded := n.excludedIPs[ip]
	h, ok := n.hosts[netip.AddrPortFrom(ip, uint16(port))]
	cm := n.chaos
	n.mu.RUnlock()
	if excluded {
		return nil, ErrRefused{Addr: address}
	}
	if !ok {
		if n.isNoise(ip, port) {
			client, server := net.Pipe()
			go ServeNoise(server)
			return client, nil
		}
		return nil, ErrRefused{Addr: address}
	}
	// Adversarial behavior applies to registered hosts only: noise
	// endpoints and closed ports stay polite. The decision is a pure
	// function of (seed, wave, ip, port) plus the dial's context-borne
	// attempt number, so it is identical across shards and processes.
	if b := cm.Behavior(ip.As4(), port); b.Kind != chaos.KindNone {
		if b.Refuses(chaos.AttemptFromContext(ctx)) {
			return nil, ErrRefused{Addr: address}
		}
		client, server := net.Pipe()
		go chaos.Serve(b, server, h.Handler.HandleConn)
		return client, nil
	}
	client, server := net.Pipe()
	go h.Handler.HandleConn(server)
	return client, nil
}

// ServeNoise emulates a non-OPC-UA service on port 4840: it reads a
// little and responds with an HTTP error, as embedded web servers do.
// Exported so snapshot views serve the exact same noise behaviour.
func ServeNoise(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	_, _ = conn.Read(buf)
	_, _ = conn.Write([]byte("HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n"))
}

// Compile-time check: the mutable network satisfies the read-only view.
var _ View = (*Network)(nil)

// OpenPort reports whether a TCP connect to the address would succeed,
// without spawning handlers. The port-scan stage uses it as its fast
// SYN-probe path; the result matches DialContext behaviour exactly.
func (n *Network) OpenPort(ip netip.Addr, port int) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.excludedIPs) > 0 && n.excludedIPs[ip] {
		return false
	}
	if _, ok := n.hosts[netip.AddrPortFrom(ip, uint16(port))]; ok {
		return true
	}
	return n.isNoise(ip, port)
}
