package deploy

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/uacert"
)

// Certificate class plans per group, tuned so the per-policy conformance
// counts of Figure 4 come out exactly:
//   - D1 (715 announcers): 75 too strong, 7 too weak
//   - D2 (762): 5 too strong
//   - S2 (564): 409 too weak, 155 conformant
//
// See DESIGN.md for the derivation; the D1∩S2 overlap of 479 hosts
// forces 75 SHA-256 certificates inside that overlap and 404 SHA-1 ones.
type certPlan struct {
	class CertClass
	count int
}

var certPlans = map[string][]certPlan{
	"A": {
		{CertClass{uacert.HashMD5, 1024}, 20},
		{CertClass{uacert.HashMD5, 2048}, 15},
		{CertClass{uacert.HashSHA1, 1024}, 120},
		{CertClass{uacert.HashSHA1, 2048}, 85}, // includes 22 reuse-cluster hosts
		{CertClass{uacert.HashSHA256, 2048}, 30},
	},
	"B": {
		{CertClass{uacert.HashMD5, 1024}, 7}, // the D1 "too weak" hosts
		{CertClass{uacert.HashSHA1, 1024}, 6},
	},
	"Bl": {{CertClass{uacert.HashSHA1, 1024}, 11}},
	"Bk": {{CertClass{uacert.HashSHA1, 2048}, 2}},
	"C": {
		{CertClass{uacert.HashSHA1, 2048}, 110}, // includes 37 reuse-cluster hosts
		{CertClass{uacert.HashSHA1, 1024}, 100},
	},
	"Cc": {
		{CertClass{uacert.HashSHA1, 4096}, 5}, // the D2 "too strong" hosts
		{CertClass{uacert.HashSHA1, 1024}, 39},
	},
	"Cm": {{CertClass{uacert.HashSHA256, 2048}, 6}},
	"E": {
		{CertClass{uacert.HashSHA256, 2048}, 75}, // D1 "too strong" = S2 conformant
		{CertClass{uacert.HashSHA1, 2048}, 394},  // the 385- and 6-host reuse clusters + 3 singles
	},
	"Ep": {
		{CertClass{uacert.HashSHA1, 2048}, 9}, // 9-host reuse cluster
		{CertClass{uacert.HashSHA1, 1024}, 1},
	},
	"G": {
		{CertClass{uacert.HashSHA1, 2048}, 5}, // S2-weak without D1 (w=5)
		{CertClass{uacert.HashSHA256, 2048}, 10},
	},
	"S": {
		{CertClass{uacert.HashSHA256, 4096}, 2},
		{CertClass{uacert.HashSHA256, 2048}, 40},
	},
	"I":  {{CertClass{uacert.HashSHA256, 2048}, 6}},
	"N2": {{CertClass{uacert.HashSHA256, 2048}, 14}},
	"O":  {{CertClass{uacert.HashSHA256, 2048}, 2}},
}

// assignCerts gives every host a certificate class, reuse-cluster
// membership and NotBefore date.
func assignCerts(hosts []HostSpec, rng *rand.Rand) error {
	// Expand per-group plans into per-host classes in group order.
	byGroup := make(map[string][]*HostSpec)
	for i := range hosts {
		h := &hosts[i]
		h.Cert.ReuseCluster = -1
		byGroup[h.Group] = append(byGroup[h.Group], h)
	}
	for g, members := range byGroup {
		plans, ok := certPlans[g]
		if !ok {
			return fmt.Errorf("deploy: no cert plan for group %s", g)
		}
		i := 0
		for _, p := range plans {
			for k := 0; k < p.count; k++ {
				if i >= len(members) {
					return fmt.Errorf("deploy: cert plan for %s exceeds group size", g)
				}
				members[i].Cert.Class = p.class
				i++
			}
		}
		if i != len(members) {
			return fmt.Errorf("deploy: cert plan for %s covers %d of %d hosts", g, i, len(members))
		}
	}

	// Reuse clusters take hosts whose class already matches the cluster
	// certificate, scanning each source group from the back (the front
	// holds the "special" classes such as the SHA-256 conformant ones).
	for ci, cluster := range reuseClusters {
		pool := byGroup[cluster.group]
		placed := 0
		for i := len(pool) - 1; i >= 0 && placed < cluster.size; i-- {
			h := pool[i]
			if h.Cert.ReuseCluster != -1 || h.Cert.Class != cluster.class {
				continue
			}
			h.Cert.ReuseCluster = ci
			placed++
		}
		if placed != cluster.size {
			return fmt.Errorf("deploy: cluster %d placed %d of %d hosts", ci, placed, cluster.size)
		}
	}

	// NotBefore dates: §5.5 observes that ~50% of SHA-1 certificates
	// were generated after the 2017 deprecation, and ~88% of those
	// since 2019.
	for i := range hosts {
		h := &hosts[i]
		switch {
		case h.Cert.Class.Hash == uacert.HashSHA1:
			r := rng.Float64()
			switch {
			case r < 0.50*0.885: // post-2019
				h.Cert.NotBefore = dateIn(rng, 2019, 2020)
			case r < 0.50: // 2017..2018
				h.Cert.NotBefore = dateIn(rng, 2017, 2019)
			default: // pre-deprecation
				h.Cert.NotBefore = dateIn(rng, 2012, 2017)
			}
		case h.Cert.Class.Hash == uacert.HashMD5:
			h.Cert.NotBefore = dateIn(rng, 2009, 2015)
		default:
			h.Cert.NotBefore = dateIn(rng, 2017, 2020)
		}
	}
	// Cluster members share the cluster's certificate, so normalize
	// their NotBefore to the first member's.
	clusterStart := make(map[int]time.Time)
	for i := range hosts {
		h := &hosts[i]
		if h.Cert.ReuseCluster < 0 {
			continue
		}
		if t, ok := clusterStart[h.Cert.ReuseCluster]; ok {
			h.Cert.NotBefore = t
		} else {
			clusterStart[h.Cert.ReuseCluster] = h.Cert.NotBefore
		}
	}
	return nil
}

func dateIn(rng *rand.Rand, fromYear, toYear int) time.Time {
	from := time.Date(fromYear, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(toYear, 1, 1, 0, 0, 0, 0, time.UTC)
	return from.Add(time.Duration(rng.Int63n(int64(to.Sub(from)))))
}

// assignManufacturers labels hosts. Bachmann owns the three same-
// manufacturer reuse clusters (385+9+6 = 400 hosts) plus 6 singles;
// SigmaPLC's 15 devices are all None-only (group A); the rest is
// distributed round-robin.
func assignManufacturers(hosts []HostSpec) {
	assign := func(h *HostSpec, m *Manufacturer) {
		h.Manufacturer = m.Name
		h.AppURI = fmt.Sprintf("%s:%04x", m.URI, h.Index)
		h.SoftwareVersion = fmt.Sprintf("%d.%d.%d", 1+h.Index%3, h.Index%10, h.Index%7)
	}
	var bachmann, sigma *Manufacturer
	var others []*Manufacturer
	for i := range manufacturerTable {
		m := &manufacturerTable[i]
		switch {
		case m.Name == "Bachmann":
			bachmann = m
		case m.NoneOnly:
			sigma = m
		default:
			others = append(others, m)
		}
	}
	left := make(map[string]int, len(manufacturerTable))
	for _, m := range manufacturerTable {
		left[m.Name] = m.Count
	}

	// Bachmann: clusters 0, 3, 4 are the same-manufacturer reuse case.
	for i := range hosts {
		h := &hosts[i]
		if c := h.Cert.ReuseCluster; c == 0 || c == 3 || c == 4 {
			assign(h, bachmann)
			left[bachmann.Name]--
		}
	}
	// SigmaPLC: first 15 unassigned group-A hosts.
	for i := range hosts {
		h := &hosts[i]
		if h.Manufacturer == "" && h.Group == "A" && left[sigma.Name] > 0 {
			assign(h, sigma)
			left[sigma.Name]--
		}
	}
	// Remaining Bachmann singles, then round-robin over the others.
	oi := 0
	for i := range hosts {
		h := &hosts[i]
		if h.Manufacturer != "" {
			continue
		}
		if left[bachmann.Name] > 0 {
			assign(h, bachmann)
			left[bachmann.Name]--
			continue
		}
		for tries := 0; tries < len(others); tries++ {
			m := others[oi%len(others)]
			oi++
			if left[m.Name] > 0 {
				assign(h, m)
				left[m.Name]--
				break
			}
		}
	}
}

// assignExposure draws per-host address-space sizes and anonymous access
// fractions hitting the Figure 7 quantiles: 90% of hosts readable
// >97%, 33% writable >10%, 61% of function hosts executable >86%.
func assignExposure(hosts []HostSpec, rng *rand.Rand) {
	var accessible []*HostSpec
	for i := range hosts {
		h := &hosts[i]
		h.Exposure.Variables = 40 + rng.Intn(80)
		h.Exposure.Methods = 5 + rng.Intn(10)
		switch h.Outcome {
		case AccessibleProduction, AccessibleTest, AccessibleUnclassified:
			accessible = append(accessible, h)
		default:
			h.Exposure.ReadFrac = 0.5
			h.Exposure.ExecFrac = 0.2
		}
	}
	n := len(accessible)
	for i, h := range accessible {
		q := float64(i) / float64(n) // deterministic quantile position
		// Readable: 90% of hosts read ≥97% of nodes.
		if q < 0.90 {
			h.Exposure.ReadFrac = 0.975 + 0.025*rng.Float64()
		} else {
			h.Exposure.ReadFrac = 0.2 + 0.7*rng.Float64()
		}
		// Writable: 33% of hosts write >10% of nodes. The traversal also
		// sees the seven read-only standard server variables, so the
		// lower bound is padded to survive that dilution.
		if q < 0.33 {
			h.Exposure.WriteFrac = 0.16 + 0.45*rng.Float64()
		} else if q < 0.60 {
			h.Exposure.WriteFrac = 0.07 * rng.Float64()
		} else {
			h.Exposure.WriteFrac = 0
		}
		// Executable: 61% of hosts may run ≥86% of functions; padded so
		// integer rounding on small method counts stays above 0.86.
		if q < 0.61 {
			h.Exposure.ExecFrac = 0.93 + 0.07*rng.Float64()
		} else {
			h.Exposure.ExecFrac = 0.5 * rng.Float64()
		}
	}
	// Interleave so quantile position does not correlate with group
	// order: shuffle which accessible host got which quantile by
	// swapping fractions pseudo-randomly.
	rng.Shuffle(n, func(i, j int) {
		accessible[i].Exposure.ReadFrac, accessible[j].Exposure.ReadFrac =
			accessible[j].Exposure.ReadFrac, accessible[i].Exposure.ReadFrac
		accessible[i].Exposure.WriteFrac, accessible[j].Exposure.WriteFrac =
			accessible[j].Exposure.WriteFrac, accessible[i].Exposure.WriteFrac
		accessible[i].Exposure.ExecFrac, accessible[j].Exposure.ExecFrac =
			accessible[j].Exposure.ExecFrac, accessible[i].Exposure.ExecFrac
	})
}

// assignPresence schedules host lifetimes: the reuse clusters grow from
// 263 to 400 members (§5.5), other servers churn slightly so that the
// per-wave found counts match serversFoundByWave, and 25 hidden hosts
// are only reachable via references from wave 3 on.
func assignPresence(hosts []HostSpec) error {
	waves := len(WaveDates)
	// Same-manufacturer cluster members (clusters 0, 3, 4) appear
	// gradually.
	var clusterHosts []*HostSpec
	for i := range hosts {
		h := &hosts[i]
		if c := h.Cert.ReuseCluster; c == 0 || c == 3 || c == 4 {
			clusterHosts = append(clusterHosts, h)
		}
	}
	if len(clusterHosts) != reuseClusterPresence[waves-1] {
		return fmt.Errorf("deploy: cluster hosts %d != target %d",
			len(clusterHosts), reuseClusterPresence[waves-1])
	}
	for i, h := range clusterHosts {
		h.PresentFrom = 0
		for w := 0; w < waves; w++ {
			if i < reuseClusterPresence[w] {
				h.PresentFrom = w
				break
			}
		}
		// Presence counts are cumulative; find the first wave whose
		// quota covers this member index.
		for w := 0; w < waves; w++ {
			if i < reuseClusterPresence[w] {
				h.PresentFrom = w
				break
			}
		}
	}

	// Hidden hosts: 25 non-cluster, non-A hosts get non-default ports /
	// unscanned addresses; they are found from FollowReferencesFromWave.
	hidden := 0
	for i := range hosts {
		h := &hosts[i]
		if hidden >= hiddenServers {
			break
		}
		if h.Cert.ReuseCluster >= 0 || h.Group == "A" || h.Outcome == RejectedSC {
			continue
		}
		h.Hidden = true
		hidden++
	}
	if hidden != hiddenServers {
		return fmt.Errorf("deploy: placed %d hidden hosts", hidden)
	}

	// Remaining (visible, non-cluster) hosts: schedule joins/leaves so
	// the number of present visible hosts per wave matches
	// serversFoundByWave minus hidden (from wave 3) and cluster counts.
	var rest []*HostSpec
	for i := range hosts {
		h := &hosts[i]
		if h.Cert.ReuseCluster == 0 || h.Cert.ReuseCluster == 3 || h.Cert.ReuseCluster == 4 || h.Hidden {
			continue
		}
		rest = append(rest, h)
	}
	// Target number of "rest" hosts present at each wave.
	targets := make([]int, waves)
	for w := 0; w < waves; w++ {
		hiddenFound := 0
		if w >= FollowReferencesFromWave {
			hiddenFound = hiddenServers
		}
		targets[w] = serversFoundByWave[w] - hiddenFound - reuseClusterPresence[w]
	}
	// rest hosts: the first targets[last] stay until the end; earlier
	// waves need fewer, so the tail of each wave's allocation joins
	// later; when a target shrinks, hosts leave.
	maxTarget := 0
	for _, t := range targets {
		if t > maxTarget {
			if t > len(rest) {
				return fmt.Errorf("deploy: wave target %d exceeds rest pool %d", t, len(rest))
			}
			maxTarget = t
		}
	}
	// Assign PresentFrom/PresentUntil greedily: host j is present at
	// wave w iff j < targets[w]. This makes presence monotone per host
	// only if targets are monotone; for dips, hosts leave and rejoin,
	// which we avoid by giving each host one contiguous interval:
	// [firstWave with j < target, lastWave with j < target].
	for j, h := range rest {
		first, last := -1, -1
		for w := 0; w < waves; w++ {
			if j < targets[w] {
				if first == -1 {
					first = w
				}
				last = w
			}
		}
		if first == -1 {
			// Never present: park outside the campaign.
			h.PresentFrom = waves
			h.PresentUntil = waves
			continue
		}
		h.PresentFrom = first
		if last == waves-1 {
			h.PresentUntil = -1
		} else {
			h.PresentUntil = last
		}
	}
	return nil
}

// assignRenewals schedules the 84 certificate renewals of §5.5: all on
// hosts present across the whole campaign with per-host certificates;
// 7 upgrade SHA-1→SHA-256 (chosen among hosts whose final class is
// SHA-256), 1 downgrades SHA-256→SHA-1, 9 coincide with software
// updates.
func assignRenewals(hosts []HostSpec, rng *rand.Rand) {
	const renewals = 84
	eligible := func(h *HostSpec) bool {
		return h.Cert.ReuseCluster < 0 && !h.Hidden &&
			h.PresentFrom == 0 && h.PresentUntil == -1 && h.Cert.RenewalWave == 0
	}
	done := 0
	var scheduled []*HostSpec
	schedule := func(h *HostSpec, prior CertClass, priorFrom, priorTo int) {
		h.Cert.RenewalWave = 1 + done%7
		h.Cert.PriorClass = prior
		h.Cert.PriorNotBefore = dateIn(rng, priorFrom, priorTo)
		scheduled = append(scheduled, h)
		done++
	}
	accessible := func(h *HostSpec) bool {
		switch h.Outcome {
		case AccessibleProduction, AccessibleTest, AccessibleUnclassified:
			return true
		}
		return false
	}
	// Pass 1: the seven SHA-1→SHA-256 upgrades (hosts whose final class
	// is SHA-256) and the one SHA-256→SHA-1 downgrade.
	upgrades, downgrades := 7, 1
	for i := range hosts {
		h := &hosts[i]
		if !eligible(h) {
			continue
		}
		if upgrades > 0 && h.Cert.Class.Hash == uacert.HashSHA256 && h.Group == "E" {
			schedule(h, CertClass{uacert.HashSHA1, h.Cert.Class.Bits}, 2016, 2018)
			upgrades--
			continue
		}
		if downgrades > 0 && h.Cert.Class.Hash == uacert.HashSHA1 && h.Group == "C" {
			schedule(h, CertClass{uacert.HashSHA256, h.Cert.Class.Bits}, 2018, 2019)
			downgrades--
		}
		if upgrades == 0 && downgrades == 0 {
			break
		}
	}
	// Pass 2: same-class renewals (valid, self-signed, no security
	// gain) until the 84 events of §5.5 are scheduled. Accessible hosts
	// first: the software-update coincidences below are only observable
	// on hosts whose SoftwareVersion the scanner can read.
	for _, wantAccessible := range []bool{true, false} {
		for i := range hosts {
			if done >= renewals {
				break
			}
			h := &hosts[i]
			if !eligible(h) || h.Cert.Class.Hash != uacert.HashSHA1 ||
				accessible(h) != wantAccessible {
				continue
			}
			schedule(h, h.Cert.Class, 2015, 2018)
		}
	}
	// Nine renewals coincide with a software update (§5.5); they must be
	// on accessible hosts to be measurable.
	swUpdates := 0
	for _, h := range scheduled {
		if swUpdates >= 9 {
			break
		}
		if accessible(h) {
			h.Cert.SoftwareUpdate = true
			swUpdates++
		}
	}
}

// Address layout: each AS owns one /16 inside 100.64.0.0/10 (CGNAT
// space, guaranteed not to collide with real scanning targets).
const (
	numASes     = 40
	asnBase     = 64600
	prefixBase  = "100.64.0.0"
	iiotISP     = asnBase + 38 // the (I)IoT ISP of §B.1.2
	regionalISP = asnBase + 39
)

// assignAddresses places hosts into ASes and assigns IPs. Reuse-cluster
// hosts spread across the cluster's AS count (the big one covers 24
// ASes); other hosts hash into ASes with the IIoT ISP and one regional
// ISP overweighted (§B.1.2).
func assignAddresses(hosts []HostSpec) {
	nextIPInAS := make(map[int]uint32)
	takeIP := func(asn int) netip.Addr {
		nextIPInAS[asn]++
		off := nextIPInAS[asn]
		asIdx := asn - asnBase
		base := netip.MustParseAddr(prefixBase).As4()
		v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
		v += uint32(asIdx)<<16 + off
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	clusterIdx := make(map[int]int)
	for i := range hosts {
		h := &hosts[i]
		switch {
		case h.Cert.ReuseCluster >= 0:
			c := reuseClusters[h.Cert.ReuseCluster]
			k := clusterIdx[h.Cert.ReuseCluster]
			clusterIdx[h.Cert.ReuseCluster]++
			// Spread cluster members over the cluster's AS budget, with
			// a bias to the IIoT ISP for the big cluster (§B.1.2).
			if h.Cert.ReuseCluster == 0 {
				// 24 ASes total: the IIoT ISP takes every fourth member,
				// the rest spread over 23 further ASes (§B.1.2).
				if k%4 == 0 {
					h.ASN = iiotISP
				} else {
					h.ASN = asnBase + k%(c.ases-1)
				}
			} else {
				h.ASN = asnBase + k%c.ases
			}
		case h.Group == "C" || h.Group == "E":
			// Deprecated+anonymous populations cluster in two regional
			// ISPs (§B.1.2).
			if h.Index%3 == 0 {
				h.ASN = regionalISP
			} else {
				h.ASN = asnBase + (h.Index*7)%int(numASes-2)
			}
		default:
			h.ASN = asnBase + (h.Index*13)%int(numASes-2)
		}
		h.Port = 4840
		if h.Hidden {
			// Non-default ports for most hidden hosts; the rest live on
			// addresses outside the scanned universe.
			if h.Index%5 != 0 {
				h.Port = 4841 + h.Index%3
			}
		}
		h.IP = takeIP(h.ASN)
		if h.Hidden && h.Port == 4840 {
			// Outside the universe: use the reserved last /16 block.
			h.IP = netip.AddrFrom4([4]byte{100, 127, 255, byte(h.Index % 250)})
		}
	}
}

// buildDiscovery creates the discovery-server population with per-wave
// presence matching discoveryByWave; hidden servers are spread over the
// first discovery servers so follow-reference scanning finds them.
func buildDiscovery(hosts []HostSpec) []DiscoverySpec {
	waves := len(WaveDates)
	maxCount := 0
	for _, c := range discoveryByWave {
		if c > maxCount {
			maxCount = c
		}
	}
	var hiddenIdx []int
	for i := range hosts {
		if hosts[i].Hidden {
			hiddenIdx = append(hiddenIdx, i)
		}
	}
	specs := make([]DiscoverySpec, maxCount)
	for i := range specs {
		asn := asnBase + (i*3)%numASes
		specs[i] = DiscoverySpec{
			Index:   i,
			IP:      netip.AddrFrom4([4]byte{100, 64 + byte((asn-asnBase)%40), 250, byte(i % 250)}),
			ASN:     asn,
			AppURI:  fmt.Sprintf("urn:opcfoundation.org:UA:LDS:%04x", i),
			Present: make([]bool, waves),
		}
		// Adjust IP to live inside the AS block but above host ranges.
		base := netip.MustParseAddr(prefixBase).As4()
		v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
		v += uint32((asn-asnBase))<<16 + 0xF000 + uint32(i)
		specs[i].IP = netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		for w := 0; w < waves; w++ {
			specs[i].Present[w] = i < discoveryByWave[w]
		}
	}
	// Spread hidden-server announcements across always-present
	// discovery servers.
	alwaysPresent := discoveryByWave[0]
	for k, hi := range hiddenIdx {
		d := k % min(alwaysPresent, len(specs))
		specs[d].Announces = append(specs[d].Announces, hi)
	}
	return specs
}
