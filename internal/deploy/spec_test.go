package deploy

import (
	"testing"
	"time"

	"repro/internal/uacert"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
)

func buildSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := BuildSpec(2020)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSpecHostCount(t *testing.T) {
	spec := buildSpec(t)
	if len(spec.Hosts) != NumServers {
		t.Fatalf("hosts = %d, want %d", len(spec.Hosts), NumServers)
	}
}

// TestSpecFigure3Modes verifies support/least/most for security modes.
func TestSpecFigure3Modes(t *testing.T) {
	spec := buildSpec(t)
	support := map[ModeSet]int{}
	least := map[ModeSet]int{}
	most := map[ModeSet]int{}
	for _, h := range spec.Hosts {
		for _, m := range []ModeSet{ModeN, ModeS, ModeE} {
			if h.Modes.Has(m) {
				support[m]++
			}
		}
		switch {
		case h.Modes.Has(ModeN):
			least[ModeN]++
		case h.Modes.Has(ModeS):
			least[ModeS]++
		default:
			least[ModeE]++
		}
		switch {
		case h.Modes.Has(ModeE):
			most[ModeE]++
		case h.Modes.Has(ModeS):
			most[ModeS]++
		default:
			most[ModeN]++
		}
	}
	// Figure 3 left: support N=1035 S=588 S&E=843; least 1035/28/51;
	// most 270/1/843.
	if support[ModeN] != 1035 || support[ModeS] != 588 || support[ModeE] != 843 {
		t.Errorf("support = %v", support)
	}
	if least[ModeN] != 1035 || least[ModeS] != 28 || least[ModeE] != 51 {
		t.Errorf("least = %v", least)
	}
	if most[ModeN] != 270 || most[ModeS] != 1 || most[ModeE] != 843 {
		t.Errorf("most = %v", most)
	}
}

// TestSpecFigure3Policies verifies support/least/most for policies.
func TestSpecFigure3Policies(t *testing.T) {
	spec := buildSpec(t)
	support := map[string]int{}
	least := map[string]int{}
	most := map[string]int{}
	for _, h := range spec.Hosts {
		for _, p := range h.Policies {
			support[p]++
		}
		least[h.Policies[0]]++
		most[h.Policies[len(h.Policies)-1]]++
	}
	want := map[string][3]int{ // support, least, most
		"N":  {1035, 1035, 270},
		"D1": {715, 13, 24},
		"D2": {762, 50, 256},
		"S1": {10, 0, 0},
		"S2": {564, 16, 556},
		"S3": {8, 0, 8},
	}
	for abbrev, w := range want {
		if support[abbrev] != w[0] || least[abbrev] != w[1] || most[abbrev] != w[2] {
			t.Errorf("%s: support/least/most = %d/%d/%d, want %v",
				abbrev, support[abbrev], least[abbrev], most[abbrev], w)
		}
	}
	// Headline numbers of §5.1.
	deprecatedSupport := 0
	secureMost := 0
	for _, h := range spec.Hosts {
		hasDep := false
		for _, p := range h.Policies {
			if p == "D1" || p == "D2" {
				hasDep = true
			}
		}
		if hasDep {
			deprecatedSupport++
		}
		top := h.Policies[len(h.Policies)-1]
		if top == "S1" || top == "S2" || top == "S3" {
			secureMost++
		}
	}
	if deprecatedSupport != 786 {
		t.Errorf("hosts supporting deprecated policies = %d, want 786", deprecatedSupport)
	}
	if secureMost != 564 {
		t.Errorf("hosts with secure policy as most secure = %d, want 564", secureMost)
	}
}

// TestSpecFigure4Conformance verifies certificate/policy conformance.
func TestSpecFigure4Conformance(t *testing.T) {
	spec := buildSpec(t)
	type counts struct{ weak, strong, conf int }
	perPolicy := map[string]*counts{}
	for _, p := range uapolicy.All() {
		perPolicy[p.Abbrev] = &counts{}
	}
	for _, h := range spec.Hosts {
		for _, abbrev := range h.Policies {
			pol, _ := uapolicy.LookupAbbrev(abbrev)
			switch pol.CheckCertificate(h.Cert.Class.Hash, h.Cert.Class.Bits) {
			case uapolicy.CertTooWeak:
				perPolicy[abbrev].weak++
			case uapolicy.CertTooStrong:
				perPolicy[abbrev].strong++
			default:
				perPolicy[abbrev].conf++
			}
		}
	}
	if c := perPolicy["S2"]; c.weak != 409 || c.conf != 155 {
		t.Errorf("S2 = %+v, want weak 409 conf 155", c)
	}
	if c := perPolicy["D1"]; c.strong != 75 || c.weak != 7 {
		t.Errorf("D1 = %+v, want strong 75 weak 7", c)
	}
	if c := perPolicy["D2"]; c.strong != 5 || c.weak != 0 {
		t.Errorf("D2 = %+v, want strong 5 weak 0", c)
	}
}

// TestSpecFigure5Reuse verifies the certificate-reuse clusters.
func TestSpecFigure5Reuse(t *testing.T) {
	spec := buildSpec(t)
	sizes := map[int]int{}
	ases := map[int]map[int]bool{}
	manufacturers := map[int]map[string]bool{}
	for _, h := range spec.Hosts {
		c := h.Cert.ReuseCluster
		if c < 0 {
			continue
		}
		sizes[c]++
		if ases[c] == nil {
			ases[c] = map[int]bool{}
			manufacturers[c] = map[string]bool{}
		}
		ases[c][h.ASN] = true
		manufacturers[c][h.Manufacturer] = true
	}
	wantSizes := []int{385, 32, 12, 9, 6, 5, 4, 3, 3}
	if len(sizes) != len(wantSizes) {
		t.Fatalf("clusters = %d, want %d", len(sizes), len(wantSizes))
	}
	total := 0
	for i, w := range wantSizes {
		if sizes[i] != w {
			t.Errorf("cluster %d size = %d, want %d", i, sizes[i], w)
		}
		total += sizes[i]
	}
	if total != 459 {
		t.Errorf("reused hosts = %d, want 459", total)
	}
	// The big cluster spans 24 ASes; clusters 3 and 4 span 8 and 5.
	if got := len(ases[0]); got != 24 {
		t.Errorf("cluster 0 ASes = %d, want 24", got)
	}
	if got := len(ases[3]); got != 8 {
		t.Errorf("cluster 3 ASes = %d, want 8", got)
	}
	if got := len(ases[4]); got != 5 {
		t.Errorf("cluster 4 ASes = %d, want 5", got)
	}
	// Clusters 0, 3, 4 belong to one manufacturer.
	for _, c := range []int{0, 3, 4} {
		if len(manufacturers[c]) != 1 || !manufacturers[c]["Bachmann"] {
			t.Errorf("cluster %d manufacturers = %v", c, manufacturers[c])
		}
	}
}

// TestSpecTable2 verifies the authentication/accessibility joint.
func TestSpecTable2(t *testing.T) {
	spec := buildSpec(t)
	type key struct {
		anon, cred, cert, token bool
	}
	cells := map[key][5]int{}
	for _, h := range spec.Hosts {
		var k key
		for _, tt := range h.Tokens {
			switch tt {
			case uamsg.UserTokenAnonymous:
				k.anon = true
			case uamsg.UserTokenUserName:
				k.cred = true
			case uamsg.UserTokenCertificate:
				k.cert = true
			case uamsg.UserTokenIssuedToken:
				k.token = true
			}
		}
		c := cells[k]
		c[h.Outcome]++
		cells[k] = c
	}
	check := func(k key, want [5]int) {
		t.Helper()
		if cells[k] != want {
			t.Errorf("row %+v = %v, want %v", k, cells[k], want)
		}
	}
	check(key{anon: true}, [5]int{116, 8, 5, 9, 1})
	check(key{cred: true}, [5]int{0, 0, 0, 464, 21})
	check(key{anon: true, cred: true}, [5]int{168, 20, 134, 38, 5})
	check(key{cred: true, cert: true}, [5]int{0, 0, 0, 4, 7})
	check(key{anon: true, cred: true, cert: true}, [5]int{11, 14, 17, 17, 3})
	check(key{cred: true, cert: true, token: true}, [5]int{0, 0, 0, 0, 43})
	check(key{anon: true, cred: true, cert: true, token: true}, [5]int{0, 0, 0, 6, 0})

	// Column totals: accessible 295/42/156 = 493; rejected 541 + 80.
	var tot [5]int
	for _, c := range cells {
		for i, n := range c {
			tot[i] += n
		}
	}
	if tot != [5]int{295, 42, 156, 541, 80} {
		t.Errorf("column totals = %v", tot)
	}
}

// TestSpecAnonymousHeadlines verifies §5.4's headline counts.
func TestSpecAnonymousHeadlines(t *testing.T) {
	spec := buildSpec(t)
	var anon, anonSCOK, secureOnly, secureOnlyAnonSCOK, accessible int
	for _, h := range spec.Hosts {
		acc := h.Outcome == AccessibleProduction || h.Outcome == AccessibleTest ||
			h.Outcome == AccessibleUnclassified
		if acc {
			accessible++
		}
		if h.SecureOnly() {
			secureOnly++
		}
		if h.Anonymous() {
			anon++
			if h.Outcome != RejectedSC {
				anonSCOK++
				if h.SecureOnly() {
					secureOnlyAnonSCOK++
				}
			}
		}
	}
	if anon != 572 {
		t.Errorf("anonymous advertised = %d, want 572", anon)
	}
	if anonSCOK != 563 {
		t.Errorf("anonymous with SC ok = %d, want 563 (50%% of all)", anonSCOK)
	}
	if secureOnly != 79 {
		t.Errorf("secure-only hosts = %d, want 79", secureOnly)
	}
	if secureOnlyAnonSCOK != 71 {
		t.Errorf("secure-only anonymous SC-ok = %d, want 71", secureOnlyAnonSCOK)
	}
	if accessible != 493 {
		t.Errorf("accessible = %d, want 493", accessible)
	}
	// 1034 hosts allow secure-channel establishment.
	if got := NumServers - 80; got != 1034 {
		t.Errorf("SC-ok hosts = %d", got)
	}
}

// TestSpecDeficientShare verifies the 92% headline: hosts with at least
// one configuration deficit (no security, deprecated-only, weak cert,
// cert reuse, anonymous access).
func TestSpecDeficientShare(t *testing.T) {
	spec := buildSpec(t)
	deficient := 0
	for _, h := range spec.Hosts {
		if specHostDeficient(&h) {
			deficient++
		}
	}
	frac := float64(deficient) / float64(len(spec.Hosts))
	if frac < 0.91 || frac > 0.94 {
		t.Errorf("deficient share = %.3f (%d hosts), want ≈0.92", frac, deficient)
	}
}

func specHostDeficient(h *HostSpec) bool {
	// No communication security at all.
	if h.Policies[0] == "N" && len(h.Policies) == 1 {
		return true
	}
	// Only deprecated (or None) policies.
	top := h.Policies[len(h.Policies)-1]
	if top == "D1" || top == "D2" {
		return true
	}
	// Certificate weaker than the strongest announced policy.
	pol, _ := uapolicy.LookupAbbrev(top)
	if pol != nil && !pol.Insecure &&
		pol.CheckCertificate(h.Cert.Class.Hash, h.Cert.Class.Bits) == uapolicy.CertTooWeak {
		return true
	}
	if h.Cert.ReuseCluster >= 0 {
		return true
	}
	return h.Anonymous()
}

// TestSpecManufacturers verifies Figure 2's manufacturer counts.
func TestSpecManufacturers(t *testing.T) {
	spec := buildSpec(t)
	counts := map[string]int{}
	for _, h := range spec.Hosts {
		counts[h.Manufacturer]++
		if h.Manufacturer == "" || h.AppURI == "" {
			t.Fatalf("host %d missing manufacturer", h.Index)
		}
	}
	if counts["Bachmann"] != 406 || counts["Beckhoff"] != 112 || counts["Wago"] != 78 {
		t.Errorf("top manufacturers = %v", counts)
	}
	// SigmaPLC devices are all None-only (§B.1.1).
	for _, h := range spec.Hosts {
		if h.Manufacturer == "SigmaPLC" && h.Group != "A" {
			t.Errorf("SigmaPLC host %d in group %s", h.Index, h.Group)
		}
	}
	if counts["SigmaPLC"] != 15 {
		t.Errorf("SigmaPLC = %d", counts["SigmaPLC"])
	}
}

// TestSpecPresence verifies the per-wave found counts and totals.
func TestSpecPresence(t *testing.T) {
	spec := buildSpec(t)
	waves := len(WaveDates)
	for w := 0; w < waves; w++ {
		servers := 0
		for i := range spec.Hosts {
			h := &spec.Hosts[i]
			if !h.PresentAt(w) {
				continue
			}
			if h.Hidden && w < FollowReferencesFromWave {
				continue
			}
			servers++
		}
		if servers != serversFoundByWave[w] {
			t.Errorf("wave %d: found servers = %d, want %d", w, servers, serversFoundByWave[w])
		}
		discovery := 0
		for _, d := range spec.Discovery {
			if d.Present[w] {
				discovery++
			}
		}
		if discovery != discoveryByWave[w] {
			t.Errorf("wave %d: discovery = %d, want %d", w, discovery, discoveryByWave[w])
		}
		total := servers + discovery
		if total < 1761 || total > 2069 {
			t.Errorf("wave %d: total %d outside the paper's 1761–2069", w, total)
		}
	}
	// Reuse clusters grow 263 → 400 (§5.5).
	for w := 0; w < waves; w++ {
		n := 0
		for i := range spec.Hosts {
			h := &spec.Hosts[i]
			if c := h.Cert.ReuseCluster; (c == 0 || c == 3 || c == 4) && h.PresentAt(w) {
				n++
			}
		}
		if n != reuseClusterPresence[w] {
			t.Errorf("wave %d: cluster presence = %d, want %d", w, n, reuseClusterPresence[w])
		}
	}
}

// TestSpecRenewals verifies §5.5's renewal schedule.
func TestSpecRenewals(t *testing.T) {
	spec := buildSpec(t)
	var renewals, upgrades, downgrades, swUpdates int
	for _, h := range spec.Hosts {
		if h.Cert.RenewalWave == 0 {
			continue
		}
		renewals++
		if h.Cert.SoftwareUpdate {
			swUpdates++
		}
		prior, final := h.Cert.PriorClass.Hash, h.Cert.Class.Hash
		if prior == uacert.HashSHA1 && final == uacert.HashSHA256 {
			upgrades++
		}
		if prior == uacert.HashSHA256 && final == uacert.HashSHA1 {
			downgrades++
		}
		if h.PresentFrom != 0 || h.PresentUntil != -1 {
			t.Errorf("renewal host %d not static across campaign", h.Index)
		}
		if h.Cert.ReuseCluster >= 0 {
			t.Errorf("renewal host %d in a reuse cluster", h.Index)
		}
	}
	if renewals != 84 {
		t.Errorf("renewals = %d, want 84", renewals)
	}
	if upgrades != 7 {
		t.Errorf("SHA-1→SHA-256 upgrades = %d, want 7", upgrades)
	}
	if downgrades != 1 {
		t.Errorf("downgrades = %d, want 1", downgrades)
	}
	if swUpdates != 9 {
		t.Errorf("renewals with software update = %d, want 9", swUpdates)
	}
}

// TestSpecSHA1CertificateAges verifies the §5.5 NotBefore shape: about
// half of SHA-1 certificates postdate the 2017 deprecation.
func TestSpecSHA1CertificateAges(t *testing.T) {
	spec := buildSpec(t)
	cut2017 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	cut2019 := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	var sha1Certs, post2017, post2019 int
	seenCluster := map[int]bool{}
	for _, h := range spec.Hosts {
		if h.Cert.Class.Hash != uacert.HashSHA1 {
			continue
		}
		if c := h.Cert.ReuseCluster; c >= 0 {
			if seenCluster[c] {
				continue // one certificate per cluster
			}
			seenCluster[c] = true
		}
		sha1Certs++
		if h.Cert.NotBefore.After(cut2017) {
			post2017++
		}
		if h.Cert.NotBefore.After(cut2019) {
			post2019++
		}
	}
	frac := float64(post2017) / float64(sha1Certs)
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("SHA-1 certs post-2017 = %.2f, want ≈0.50", frac)
	}
	if post2019 == 0 || post2019 >= post2017 {
		t.Errorf("post-2019 = %d of post-2017 = %d", post2019, post2017)
	}
}

// TestSpecExposureQuantiles verifies the Figure 7 shape.
func TestSpecExposureQuantiles(t *testing.T) {
	spec := buildSpec(t)
	var accessible []Exposure
	for _, h := range spec.Hosts {
		switch h.Outcome {
		case AccessibleProduction, AccessibleTest, AccessibleUnclassified:
			accessible = append(accessible, h.Exposure)
		}
	}
	if len(accessible) != 493 {
		t.Fatalf("accessible = %d", len(accessible))
	}
	var read97, write10, exec86 int
	for _, e := range accessible {
		if e.ReadFrac > 0.97 {
			read97++
		}
		if e.WriteFrac > 0.10 {
			write10++
		}
		if e.ExecFrac > 0.86 {
			exec86++
		}
	}
	n := float64(len(accessible))
	if f := float64(read97) / n; f < 0.85 || f > 0.95 {
		t.Errorf("hosts reading >97%% of nodes = %.2f, want ≈0.90", f)
	}
	if f := float64(write10) / n; f < 0.28 || f > 0.38 {
		t.Errorf("hosts writing >10%% of nodes = %.2f, want ≈0.33", f)
	}
	if f := float64(exec86) / n; f < 0.56 || f > 0.66 {
		t.Errorf("hosts executing >86%% of functions = %.2f, want ≈0.61", f)
	}
}

// TestSpecStructuralInvariants checks internal consistency rules.
func TestSpecStructuralInvariants(t *testing.T) {
	spec := buildSpec(t)
	hiddenCount := 0
	for i := range spec.Hosts {
		h := &spec.Hosts[i]
		if h.Outcome == RejectedSC {
			if h.Modes == ModeN {
				t.Errorf("host %d rejects SC but offers only None", h.Index)
			}
			if !h.RejectClientCert {
				t.Errorf("host %d SC outcome without quirk", h.Index)
			}
		}
		if h.Outcome == RejectedAuth && h.Anonymous() && !h.RejectSessions {
			t.Errorf("host %d anonymous+rejected without session quirk", h.Index)
		}
		if h.Hidden {
			hiddenCount++
			if h.Port == 4840 && h.IP.As4()[1] != 127 {
				t.Errorf("hidden host %d on default port inside universe", h.Index)
			}
		}
		if !h.IP.IsValid() {
			t.Errorf("host %d has no IP", h.Index)
		}
		if h.ASN < asnBase || h.ASN >= asnBase+numASes {
			t.Errorf("host %d ASN %d out of range", h.Index, h.ASN)
		}
	}
	if hiddenCount != hiddenServers {
		t.Errorf("hidden hosts = %d, want %d", hiddenCount, hiddenServers)
	}
	// IPs must be unique per (ip, port).
	seen := map[string]bool{}
	for _, h := range spec.Hosts {
		k := h.IP.String() + ":" + string(rune(h.Port))
		if seen[k] {
			t.Errorf("duplicate address %s:%d", h.IP, h.Port)
		}
		seen[k] = true
	}
	// Every hidden host is announced by a discovery server.
	announced := map[int]bool{}
	for _, d := range spec.Discovery {
		for _, hi := range d.Announces {
			announced[hi] = true
		}
	}
	for i := range spec.Hosts {
		if spec.Hosts[i].Hidden && !announced[i] {
			t.Errorf("hidden host %d not announced", i)
		}
	}
}

// TestSpecDeterminism: same seed, same world.
func TestSpecDeterminism(t *testing.T) {
	a, err := BuildSpec(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSpec(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Hosts {
		ha, hb := a.Hosts[i], b.Hosts[i]
		if ha.IP != hb.IP || ha.Cert.Class != hb.Cert.Class ||
			ha.Outcome != hb.Outcome || ha.Manufacturer != hb.Manufacturer {
			t.Fatalf("host %d differs between builds", i)
		}
	}
}

func BenchmarkBuildSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildSpec(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
