package deploy

import (
	"fmt"
	"net/netip"

	"repro/internal/wavediff"
)

// scanPort is the standard OPC UA port the campaign's wave port scan
// sweeps (scanner.PortScanConfig's default). Endpoints listening
// elsewhere are reachable only through discovery references.
const scanPort = 4840

// WaveEndpointStates derives every spec endpoint's wave-varying state —
// the wavediff fingerprint input — from spec state alone. No server is
// built (the lazy per-host server cache is not touched), no channel is
// opened: the call is cheap enough to run for all eight waves up front.
//
// The state mirrors exactly what SnapshotWave exposes to a scan:
// presence follows the same PresentAt/Present schedules, the
// certificate and software version are the same wave-indexed values
// serverAt keys its cache by, the chaos decision is the same
// (seed, wave, ip, port) draw the worldview consults for registered
// hosts, and PortScanned reflects the same universe membership and
// exclusion set the port scan honors. A fingerprint over these fields
// therefore covers every input that can shape the endpoint's record
// bytes in the wave (DESIGN.md §10).
func (w *World) WaveEndpointStates(wave int) ([]wavediff.EndpointState, error) {
	if wave < 0 || wave >= len(WaveDates) {
		return nil, fmt.Errorf("deploy: wave %d out of range", wave)
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	universe := w.Net.Universe()
	excluded := make(map[netip.Addr]bool)
	for _, ip := range w.Net.ExcludedIPs() {
		excluded[ip] = true
	}
	wm := w.chaos.ForWave(wave)

	states := make([]wavediff.EndpointState, 0, len(w.hosts)+len(w.discovery))
	for _, wh := range w.hosts {
		hs := wh.spec
		st := wavediff.EndpointState{
			Address: fmt.Sprintf("%s:%d", hs.IP, hs.Port),
			Present: hs.PresentAt(wave),
			PortScanned: hs.Port == scanPort && universe.Contains(hs.IP) &&
				!excluded[hs.IP],
			CertThumbprint:  wh.certAt(wave).ThumbprintHex(),
			SoftwareVersion: wh.softwareVersionAt(wave),
		}
		if st.Present {
			// The dial path consults chaos only for registered hosts
			// (worldview serves noise and closed ports first), so absent
			// hosts fold a zero decision regardless of the model.
			b := wm.Behavior(hs.IP.As4(), hs.Port)
			st.ChaosKind = uint8(b.Kind)
			st.ChaosParam = uint64(b.Param)
		}
		states = append(states, st)
	}
	for _, wd := range w.discovery {
		ds := wd.spec
		st := wavediff.EndpointState{
			Address: fmt.Sprintf("%s:%d", ds.IP, scanPort),
			Present: wave < len(ds.Present) && ds.Present[wave],
			PortScanned: universe.Contains(ds.IP) &&
				!excluded[ds.IP],
			CertThumbprint:  wd.cert.ThumbprintHex(),
			SoftwareVersion: "1.03",
		}
		if st.Present {
			b := wm.Behavior(ds.IP.As4(), scanPort)
			st.ChaosKind = uint8(b.Kind)
			st.ChaosParam = uint64(b.Param)
		}
		states = append(states, st)
	}
	return states, nil
}
