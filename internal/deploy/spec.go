// Package deploy generates the simulated deployment population whose
// measured statistics reproduce the paper's published numbers: Figure 2
// (hosts over time by manufacturer), Figure 3 (security modes/policies),
// Figure 4 (certificate/policy conformance), Figure 5 (certificate
// reuse), Figures 6/7 and Table 2 (authentication and exposure), and the
// longitudinal observations of §5.5.
//
// The generator is split into a pure-arithmetic Spec (fast, fully
// deterministic, exhaustively tested against the paper's marginals) and
// a Materialize step that turns the spec into running OPC UA servers on
// a simulated network.
package deploy

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/addrspace"
	"repro/internal/uacert"
	"repro/internal/uamsg"
)

// Wave dates of the study (Figure 2).
var WaveDates = []time.Time{
	time.Date(2020, 2, 9, 0, 0, 0, 0, time.UTC),
	time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC),
	time.Date(2020, 4, 5, 0, 0, 0, 0, time.UTC),
	time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
	time.Date(2020, 6, 7, 0, 0, 0, 0, time.UTC),
	time.Date(2020, 7, 5, 0, 0, 0, 0, time.UTC),
	time.Date(2020, 8, 2, 0, 0, 0, 0, time.UTC),
	time.Date(2020, 8, 30, 0, 0, 0, 0, time.UTC),
}

// FollowReferencesFromWave is the first wave index with follow-reference
// scanning (2020-05-04 per §4).
const FollowReferencesFromWave = 3

// Per-wave found-host targets. Servers grow marginally (mostly because
// the reuse-cluster manufacturer keeps deploying devices, §5.5, and the
// scanner starts following references at wave 3); discovery servers
// fluctuate; totals stay within the paper's 1761–2069 range.
var (
	serversFoundByWave   = []int{952, 970, 988, 1031, 1049, 1067, 1101, 1114}
	discoveryByWave      = []int{809, 825, 782, 1038, 851, 803, 849, 807}
	hiddenServers        = 25 // reachable only via references / non-default ports
	reuseClusterPresence = []int{263, 281, 299, 317, 335, 353, 387, 400}
)

// NumServers is the paper's non-discovery server population (§4).
const NumServers = 1114

// ModeSet is the set of advertised security modes as a bit mask.
type ModeSet byte

// Mode bits.
const (
	ModeN ModeSet = 1 << iota // None
	ModeS                     // Sign
	ModeE                     // SignAndEncrypt
)

// Has reports whether the set contains the bit.
func (m ModeSet) Has(b ModeSet) bool { return m&b != 0 }

// group is one (policy set) archetype with its population count, derived
// from Figure 3's support/least/most marginals (see DESIGN.md).
type group struct {
	name     string
	policies []string // abbrevs in rank order
	count    int
}

// groupTable is the unique policy-set decomposition consistent with
// Figure 3 and Figure 4 (the Figure 4 conformance targets pin the
// D1∩S2 overlap to 479 hosts).
var groupTable = []group{
	{"A", []string{"N"}, 270},
	{"B", []string{"N", "D1"}, 13},
	{"Bl", []string{"D1"}, 11},
	{"Bk", []string{"D1", "D2"}, 2},
	{"C", []string{"N", "D1", "D2"}, 210},
	{"Cc", []string{"D2"}, 44},
	{"Cm", []string{"D2", "S2"}, 6},
	{"E", []string{"N", "D1", "D2", "S2"}, 469},
	{"Ep", []string{"N", "D1", "D2", "S1", "S2"}, 10},
	{"G", []string{"N", "D2", "S2"}, 15},
	{"S", []string{"N", "S2"}, 42},
	{"I", []string{"N", "D2", "S2", "S3"}, 6},
	{"N2", []string{"S2"}, 14},
	{"O", []string{"S2", "S3"}, 2},
}

// CertClass is a certificate's signature hash and key length, the two
// dimensions of Figure 4.
type CertClass struct {
	Hash uacert.HashAlg
	Bits int
}

// AccessOutcome is the Table 2 column a host lands in.
type AccessOutcome int

// Outcomes.
const (
	AccessibleProduction AccessOutcome = iota
	AccessibleTest
	AccessibleUnclassified
	RejectedAuth // no anonymous access or session failure
	RejectedSC   // aborts secure channel on our self-signed certificate
)

// String implements fmt.Stringer.
func (a AccessOutcome) String() string {
	switch a {
	case AccessibleProduction:
		return "accessible/production"
	case AccessibleTest:
		return "accessible/test"
	case AccessibleUnclassified:
		return "accessible/unclassified"
	case RejectedAuth:
		return "rejected/authentication"
	case RejectedSC:
		return "rejected/secure-channel"
	default:
		return "unknown"
	}
}

// authRow is one Table 2 row: a token-type combination with its
// per-column counts (production, test, unclassified, auth, sc).
type authRow struct {
	tokens []uamsg.UserTokenType
	cells  [5]int
}

func toks(ts ...uamsg.UserTokenType) []uamsg.UserTokenType { return ts }

// authTable reproduces Table 2 exactly, plus one synthetic cert-only row
// for the 3 hosts the paper's table omits ("unused combinations ...
// omitted"; the totals row requires them).
var authTable = []authRow{
	{toks(uamsg.UserTokenAnonymous), [5]int{116, 8, 5, 9, 1}},
	{toks(uamsg.UserTokenUserName), [5]int{0, 0, 0, 464, 21}},
	{toks(uamsg.UserTokenAnonymous, uamsg.UserTokenUserName), [5]int{168, 20, 134, 38, 5}},
	{toks(uamsg.UserTokenUserName, uamsg.UserTokenCertificate), [5]int{0, 0, 0, 4, 7}},
	{toks(uamsg.UserTokenAnonymous, uamsg.UserTokenUserName, uamsg.UserTokenCertificate), [5]int{11, 14, 17, 17, 3}},
	{toks(uamsg.UserTokenUserName, uamsg.UserTokenCertificate, uamsg.UserTokenIssuedToken), [5]int{0, 0, 0, 0, 43}},
	{toks(uamsg.UserTokenAnonymous, uamsg.UserTokenUserName, uamsg.UserTokenCertificate, uamsg.UserTokenIssuedToken), [5]int{0, 0, 0, 6, 0}},
	{toks(uamsg.UserTokenCertificate), [5]int{0, 0, 0, 3, 0}},
}

// Manufacturer populations at the last wave (Figure 2 plus §B.1.1's
// "one manufacturer with all devices on None only").
type Manufacturer struct {
	Name     string
	URI      string // ApplicationURI prefix
	Count    int
	NoneOnly bool // all devices in group A
}

var manufacturerTable = []Manufacturer{
	{Name: "Bachmann", URI: "urn:bachmann.info:M1", Count: 406},
	{Name: "Beckhoff", URI: "urn:beckhoff.com:TcOpcUaServer", Count: 112},
	{Name: "Wago", URI: "urn:wago.com:codesys", Count: 78},
	{Name: "Siemens", URI: "urn:siemens.com:S7", Count: 120},
	{Name: "Phoenix Contact", URI: "urn:phoenixcontact.com:AXC", Count: 90},
	{Name: "B&R", URI: "urn:br-automation.com:X20", Count: 80},
	{Name: "Weidmueller", URI: "urn:weidmueller.com:u-control", Count: 60},
	{Name: "Softing", URI: "urn:softing.com:dataFEED", Count: 50},
	{Name: "Unified Automation", URI: "urn:unifiedautomation.com:UaServer", Count: 40},
	{Name: "Prosys", URI: "urn:prosysopc.com:SimServer", Count: 30},
	{Name: "SigmaPLC", URI: "urn:sigmaplc.example:PLC", Count: 15, NoneOnly: true},
	{Name: "other", URI: "urn:generic.example:OPCUA", Count: 33},
}

// Certificate reuse clusters (Figure 5): host count and AS spread. The
// first, fourth and fifth clusters belong to the same manufacturer
// (Bachmann here), reproducing §5.3's 385/9/6 observation.
type reuseCluster struct {
	size  int
	ases  int
	group string // host group the cluster members come from
	class CertClass
}

var reuseClusters = []reuseCluster{
	{385, 24, "E", CertClass{uacert.HashSHA1, 2048}},
	{32, 2, "C", CertClass{uacert.HashSHA1, 2048}},
	{12, 1, "A", CertClass{uacert.HashSHA1, 2048}},
	{9, 8, "Ep", CertClass{uacert.HashSHA1, 2048}},
	{6, 5, "E", CertClass{uacert.HashSHA1, 2048}},
	{5, 2, "C", CertClass{uacert.HashSHA1, 2048}},
	{4, 1, "A", CertClass{uacert.HashSHA1, 2048}},
	{3, 1, "A", CertClass{uacert.HashSHA1, 2048}},
	{3, 1, "A", CertClass{uacert.HashSHA1, 2048}},
}

// CertSpec describes a host's certificate across the campaign.
type CertSpec struct {
	Class CertClass
	// ReuseCluster is -1 for a per-host certificate, otherwise the
	// cluster index sharing one certificate and key.
	ReuseCluster int
	NotBefore    time.Time
	// RenewalWave > 0 replaces the certificate at that wave index; the
	// pre-renewal certificate has PriorClass and PriorNotBefore.
	RenewalWave    int
	PriorClass     CertClass
	PriorNotBefore time.Time
	SoftwareUpdate bool // renewal coincides with a SoftwareVersion bump
}

// Exposure is the anonymous address-space exposure of one host
// (Figure 7 input).
type Exposure struct {
	Variables int
	Methods   int
	ReadFrac  float64
	WriteFrac float64
	ExecFrac  float64
}

// HostSpec fully describes one server in the population.
type HostSpec struct {
	Index        int
	IP           netip.Addr
	Port         int
	ASN          int
	Manufacturer string
	AppURI       string

	Group    string
	Policies []string // policy abbrevs
	Modes    ModeSet

	Tokens  []uamsg.UserTokenType
	Outcome AccessOutcome

	Profile  addrspace.Profile
	Exposure Exposure

	Cert CertSpec

	// RejectClientCert / RejectSessions mirror uaserver.Quirks.
	RejectClientCert bool
	RejectSessions   bool

	// PresentFrom / PresentUntil bound the host's lifetime in wave
	// indexes (inclusive; PresentUntil -1 = until the end).
	PresentFrom  int
	PresentUntil int

	// Hidden hosts are not in the port-scanned universe; they are
	// discovered via references from discovery servers (wave ≥ 3).
	Hidden bool

	SoftwareVersion string
}

// Anonymous reports whether the host advertises anonymous access.
func (h *HostSpec) Anonymous() bool {
	for _, t := range h.Tokens {
		if t == uamsg.UserTokenAnonymous {
			return true
		}
	}
	return false
}

// SecureOnly reports whether the host offers no None mode.
func (h *HostSpec) SecureOnly() bool { return !h.Modes.Has(ModeN) }

// PresentAt reports whether the host exists at the wave.
func (h *HostSpec) PresentAt(wave int) bool {
	if wave < h.PresentFrom {
		return false
	}
	return h.PresentUntil < 0 || wave <= h.PresentUntil
}

// DiscoverySpec is one discovery server.
type DiscoverySpec struct {
	Index   int
	IP      netip.Addr
	ASN     int
	AppURI  string
	Present []bool // per wave
	// Announces lists hidden-server indexes this discovery server
	// references.
	Announces []int
}

// Spec is the full deterministic world description.
type Spec struct {
	Hosts     []HostSpec
	Discovery []DiscoverySpec
	Seed      int64
}

// counts returns per-group host index ranges in Spec.Hosts order.
func groupCounts() map[string]int {
	m := make(map[string]int, len(groupTable))
	for _, g := range groupTable {
		m[g.name] = g.count
	}
	return m
}

// BuildSpec generates the complete world deterministically from a seed.
func BuildSpec(seed int64) (*Spec, error) {
	rng := rand.New(rand.NewSource(seed))
	spec := &Spec{Seed: seed}

	hosts, err := buildHostArchetypes()
	if err != nil {
		return nil, err
	}
	if err := assignAuth(hosts); err != nil {
		return nil, err
	}
	if err := assignCerts(hosts, rng); err != nil {
		return nil, err
	}
	assignManufacturers(hosts)
	assignExposure(hosts, rng)
	if err := assignPresence(hosts); err != nil {
		return nil, err
	}
	assignRenewals(hosts, rng)
	assignAddresses(hosts)
	spec.Hosts = hosts
	spec.Discovery = buildDiscovery(hosts)
	return spec, nil
}

// buildHostArchetypes expands the group table into hosts with policy
// sets and mode sets matching Figure 3's joint distribution.
func buildHostArchetypes() ([]HostSpec, error) {
	var hosts []HostSpec
	idx := 0
	for _, g := range groupTable {
		for i := 0; i < g.count; i++ {
			hosts = append(hosts, HostSpec{
				Index:        idx,
				Group:        g.name,
				Policies:     g.policies,
				PresentUntil: -1,
			})
			idx++
		}
	}
	if len(hosts) != NumServers {
		return nil, fmt.Errorf("deploy: group table sums to %d hosts", len(hosts))
	}

	// Mode sets. Hosts with only policy None advertise mode None.
	// Secure-policy hosts without None split into {E}×51 and {S,E}×28;
	// hosts with None and secure policies split into {N,S}×1,
	// {N,E}×205 and {N,S,E}×559 (Figure 3 left).
	secureOnlyE, secureOnlySE := 51, 28
	withNS, withNE := 1, 205
	for i := range hosts {
		h := &hosts[i]
		hasN := false
		for _, p := range h.Policies {
			if p == "N" {
				hasN = true
				break
			}
		}
		hasSecure := len(h.Policies) > 1 || h.Policies[0] != "N"
		switch {
		case hasN && !hasSecure:
			h.Modes = ModeN
		case !hasN:
			if secureOnlyE > 0 {
				h.Modes = ModeE
				secureOnlyE--
			} else if secureOnlySE > 0 {
				h.Modes = ModeS | ModeE
				secureOnlySE--
			} else {
				return nil, fmt.Errorf("deploy: secure-only mode budget exhausted at host %d", i)
			}
		default:
			if withNS > 0 {
				h.Modes = ModeN | ModeS
				withNS--
			} else if withNE > 0 {
				h.Modes = ModeN | ModeE
				withNE--
			} else {
				h.Modes = ModeN | ModeS | ModeE
			}
		}
	}
	return hosts, nil
}

// assignAuth distributes Table 2 cells over the hosts, honouring:
// secure-channel-rejecting cells need hosts with secure modes; eight of
// the nine anonymous SC-rejected hosts are secure-only (the ninth also
// rejects sessions); all 79 secure-only hosts advertise anonymous
// access (71 of them end up accessible, §5.4's "71 servers that
// otherwise force clients to communicate securely").
func assignAuth(hosts []HostSpec) error {
	type cellRef struct {
		row     int
		outcome AccessOutcome
	}
	// Remaining capacity per (row, outcome).
	remaining := make(map[cellRef]int)
	for r, row := range authTable {
		for c, n := range row.cells {
			if n > 0 {
				remaining[cellRef{r, AccessOutcome(c)}] = n
			}
		}
	}
	take := func(r int, o AccessOutcome) bool {
		ref := cellRef{r, o}
		if remaining[ref] > 0 {
			remaining[ref]--
			return true
		}
		return false
	}
	anonRows := []int{0, 2, 4, 6} // rows advertising anonymous
	assign := func(h *HostSpec, r int, o AccessOutcome) {
		h.Tokens = authTable[r].tokens
		h.Outcome = o
		if o == RejectedSC {
			h.RejectClientCert = true
		}
		if o == RejectedAuth && h.Anonymous() {
			// Anonymous advertised but sessions fail (§5.4's faulty
			// endpoint configurations).
			h.RejectSessions = true
		}
	}

	// Pass 1: secure-only hosts. Eight into anonymous SC cells, the
	// remaining 71 into anonymous accessible cells.
	scCellsLeft := 8
	for i := range hosts {
		h := &hosts[i]
		if !h.SecureOnly() {
			continue
		}
		placed := false
		if scCellsLeft > 0 {
			for _, r := range anonRows {
				if take(r, RejectedSC) {
					assign(h, r, RejectedSC)
					scCellsLeft--
					placed = true
					break
				}
			}
		}
		if !placed {
			for _, r := range anonRows {
				for _, o := range []AccessOutcome{AccessibleProduction, AccessibleTest, AccessibleUnclassified} {
					if take(r, o) {
						assign(h, r, o)
						placed = true
						break
					}
				}
				if placed {
					break
				}
			}
		}
		if !placed {
			return fmt.Errorf("deploy: no cell for secure-only host %d", i)
		}
	}
	// The ninth anonymous SC cell goes to a host that also offers None
	// but rejects both our certificate and sessions.
	ninthPlaced := false
	for i := range hosts {
		h := &hosts[i]
		if h.Tokens != nil || h.SecureOnly() || h.Group == "A" {
			continue
		}
		for _, r := range anonRows {
			if take(r, RejectedSC) {
				assign(h, r, RejectedSC)
				h.RejectSessions = true
				ninthPlaced = true
				break
			}
		}
		if ninthPlaced {
			break
		}
	}
	if !ninthPlaced {
		return fmt.Errorf("deploy: could not place ninth anonymous SC host")
	}

	// Pass 2: remaining SC cells need hosts with secure modes (not A).
	for i := range hosts {
		h := &hosts[i]
		if h.Tokens != nil || h.Group == "A" {
			continue
		}
		for r := range authTable {
			if take(r, RejectedSC) {
				assign(h, r, RejectedSC)
				break
			}
		}
	}
	// Pass 3: everything else in deterministic order, interleaving
	// groups across cells so manufacturers and deficits mix (Figure 8).
	for i := range hosts {
		h := &hosts[i]
		if h.Tokens != nil {
			continue
		}
		placed := false
		for r := range authTable {
			for _, o := range []AccessOutcome{
				AccessibleProduction, AccessibleTest, AccessibleUnclassified, RejectedAuth,
			} {
				if take(r, o) {
					assign(h, r, o)
					placed = true
					break
				}
			}
			if placed {
				break
			}
		}
		if !placed {
			return fmt.Errorf("deploy: no auth cell left for host %d", i)
		}
	}
	for ref, n := range remaining {
		if n != 0 {
			return fmt.Errorf("deploy: cell %+v has %d unassigned slots", ref, n)
		}
	}
	// Address-space profile follows the outcome.
	for i := range hosts {
		h := &hosts[i]
		switch h.Outcome {
		case AccessibleProduction:
			h.Profile = addrspace.ProfileProduction
		case AccessibleTest:
			h.Profile = addrspace.ProfileTest
		case AccessibleUnclassified:
			h.Profile = addrspace.ProfileBare
		default:
			// Not traversed; give them realistic content anyway.
			if h.Index%4 == 0 {
				h.Profile = addrspace.ProfileBare
			} else {
				h.Profile = addrspace.ProfileProduction
			}
		}
	}
	return nil
}
