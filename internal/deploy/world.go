package deploy

import (
	"crypto/rsa"
	"encoding/binary"
	"fmt"
	"math/big"
	mrand "math/rand"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"repro/internal/addrspace"
	"repro/internal/chaos"
	"repro/internal/simnet"
	"repro/internal/uacert"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uarsa"
	"repro/internal/uaserver"
	"repro/internal/worldview"
)

// Options tunes world materialization.
type Options struct {
	// NoiseProb is the probability that an unregistered universe address
	// has TCP 4840 open without OPC UA. The paper finds only 0.5‰ of
	// open ports speak OPC UA; the simulated universe is smaller than
	// the IPv4 space, so the default 0.01 preserves "almost all open
	// ports are not OPC UA" at a tractable scale (see DESIGN.md).
	NoiseProb float64
	// Latency delays dials.
	Latency time.Duration
	// TestKeySizes replaces all RSA key sizes with 512 bits to make
	// test-scale materialization fast. Certificate key-length analysis
	// is then meaningless; only the pipeline plumbing is exercised.
	TestKeySizes bool
	// MaxHosts truncates the population (0 = all); used by tests and
	// examples that only need a small world.
	MaxHosts int
}

// World is the materialized simulated Internet.
type World struct {
	Spec *Spec
	Net  *simnet.Network
	Keys *uacert.KeyPool

	// mu serializes ApplyWave and SnapshotWave: both walk the per-host
	// lazily-built server cache, and ApplyWave additionally mutates the
	// shared Network. Snapshots themselves are immutable and need no
	// lock once returned.
	mu        sync.Mutex
	hosts     []*worldHost
	discovery []*worldDiscovery
	wave      int

	// cryptoEngine/cryptoDet are the campaign-installed crypto-reuse
	// settings, applied to every server built so far and to servers
	// built lazily afterwards (see SetCrypto).
	cryptoEngine *uarsa.Engine
	cryptoDet    bool
	// chaos is the campaign-installed adversarial-host model; wave
	// binding happens in SnapshotWave/ApplyWave. Zero value: polite.
	chaos chaos.Model
}

type worldHost struct {
	spec   *HostSpec
	key    *rsa.PrivateKey
	cert   *uacert.Certificate // final certificate
	prior  *uacert.Certificate // pre-renewal certificate, if any
	space  *addrspace.Space
	server map[string]*uaserver.Server // keyed by cert thumbprint
}

type worldDiscovery struct {
	spec   *DiscoverySpec
	cert   *uacert.Certificate
	server *uaserver.Server
}

// BuildUniverse returns the scannable address space: one /16 per AS.
func BuildUniverse() (*simnet.Universe, error) {
	prefixes := make([]simnet.Prefix, 0, numASes)
	for i := 0; i < numASes; i++ {
		p, err := simnet.NewPrefix(fmt.Sprintf("100.%d.0.0", 64+i), 16)
		if err != nil {
			return nil, err
		}
		prefixes = append(prefixes, p)
	}
	return simnet.NewUniverse(prefixes...), nil
}

// Materialize builds the network, keys, certificates and servers.
//
// Materialization is a pure function of the spec: keys come from a
// deterministic pool seeded by spec.Seed and certificate serials are
// derived from the same seed, so any number of processes materializing
// the same spec hold byte-identical certificates. Sharded campaign
// workers (scanner.RunWaveShard via cmd/measure -shard) depend on this
// — a cluster certificate observed by two workers must carry one
// thumbprint, or the merged reuse analysis falls apart (DESIGN.md §5).
func Materialize(spec *Spec, opts Options) (*World, error) {
	if opts.NoiseProb == 0 {
		opts.NoiseProb = 0.01
	}
	u, err := BuildUniverse()
	if err != nil {
		return nil, err
	}
	nw := simnet.New(u)
	nw.SetNoise(opts.NoiseProb)
	nw.SetLatency(opts.Latency)

	w := &World{Spec: spec, Net: nw, Keys: uacert.NewDeterministicKeyPool(spec.Seed), wave: -1}
	var seedB [8]byte
	binary.LittleEndian.PutUint64(seedB[:], uint64(spec.Seed))
	serialFor := func(role string, idx int) *big.Int {
		return uacert.DeterministicSerial([]byte("deploy-serial"), seedB[:],
			[]byte(role), []byte(strconv.Itoa(idx)))
	}

	hostSpecs := spec.Hosts
	if opts.MaxHosts > 0 && opts.MaxHosts < len(hostSpecs) {
		hostSpecs = hostSpecs[:opts.MaxHosts]
	}

	bits := func(class CertClass) int {
		if opts.TestKeySizes {
			return 512
		}
		return class.Bits
	}

	// Count and prewarm keys: one per reuse cluster, one per single.
	need := map[int]int{}
	for i := range hostSpecs {
		h := &hostSpecs[i]
		if h.Cert.ReuseCluster < 0 {
			need[bits(h.Cert.Class)]++
		}
	}
	clusterBits := map[int]int{}
	for ci, c := range reuseClusters {
		clusterBits[ci] = bits(c.class)
		need[bits(c.class)]++
	}
	need[bits(CertClass{Bits: 2048})] += 2 // discovery + scanner reserve
	for b, n := range need {
		w.Keys.Prewarm(b, n)
	}

	// Cluster keys and certificates (shared; the cert subject names the
	// manufacturer, §5.3).
	next := map[int]int{}
	takeKey := func(b int) *rsa.PrivateKey {
		k := w.Keys.Key(b, next[b])
		next[b]++
		return k
	}
	clusterKey := map[int]*rsa.PrivateKey{}
	clusterCert := map[int]*uacert.Certificate{}
	for ci, c := range reuseClusters {
		key := takeKey(clusterBits[ci])
		clusterKey[ci] = key
		// Find a member for naming and NotBefore.
		var member *HostSpec
		for i := range hostSpecs {
			if hostSpecs[i].Cert.ReuseCluster == ci {
				member = &hostSpecs[i]
				break
			}
		}
		if member == nil {
			continue // truncated world
		}
		cert, err := uacert.Generate(key, uacert.Options{
			CommonName:     member.Manufacturer + " factory image",
			Organization:   member.Manufacturer,
			ApplicationURI: member.AppURI,
			SignatureHash:  c.class.Hash,
			NotBefore:      member.Cert.NotBefore,
			NotAfter:       member.Cert.NotBefore.AddDate(20, 0, 0),
			SerialNumber:   serialFor("cluster", ci),
		})
		if err != nil {
			return nil, fmt.Errorf("deploy: cluster %d cert: %w", ci, err)
		}
		clusterCert[ci] = cert
	}

	rng := mrand.New(mrand.NewSource(spec.Seed ^ 0x5EED))
	for i := range hostSpecs {
		hs := &hostSpecs[i]
		wh := &worldHost{spec: hs, server: make(map[string]*uaserver.Server)}
		if ci := hs.Cert.ReuseCluster; ci >= 0 {
			wh.key = clusterKey[ci]
			wh.cert = clusterCert[ci]
		} else {
			wh.key = takeKey(bits(hs.Cert.Class))
			cert, err := uacert.Generate(wh.key, uacert.Options{
				CommonName:     fmt.Sprintf("%s device %04x", hs.Manufacturer, hs.Index),
				Organization:   hs.Manufacturer,
				ApplicationURI: hs.AppURI,
				SignatureHash:  hs.Cert.Class.Hash,
				NotBefore:      hs.Cert.NotBefore,
				NotAfter:       hs.Cert.NotBefore.AddDate(20, 0, 0),
				SerialNumber:   serialFor("host", hs.Index),
			})
			if err != nil {
				return nil, fmt.Errorf("deploy: host %d cert: %w", hs.Index, err)
			}
			wh.cert = cert
			if hs.Cert.RenewalWave > 0 {
				prior, err := uacert.Generate(wh.key, uacert.Options{
					CommonName:     fmt.Sprintf("%s device %04x", hs.Manufacturer, hs.Index),
					Organization:   hs.Manufacturer,
					ApplicationURI: hs.AppURI,
					SignatureHash:  hs.Cert.PriorClass.Hash,
					NotBefore:      hs.Cert.PriorNotBefore,
					NotAfter:       hs.Cert.PriorNotBefore.AddDate(20, 0, 0),
					SerialNumber:   serialFor("prior", hs.Index),
				})
				if err != nil {
					return nil, fmt.Errorf("deploy: host %d prior cert: %w", hs.Index, err)
				}
				wh.prior = prior
			}
		}
		wh.space, err = buildSpace(hs, rng)
		if err != nil {
			return nil, err
		}
		w.hosts = append(w.hosts, wh)
	}

	// Discovery servers share a handful of reference-implementation
	// identities; they are excluded from the security analysis.
	discoKey := takeKey(bits(CertClass{Bits: 2048}))
	discoCert, err := uacert.Generate(discoKey, uacert.Options{
		CommonName:     "UA Local Discovery Server",
		Organization:   "OPC Foundation",
		ApplicationURI: "urn:opcfoundation.org:UA:LDS",
		SignatureHash:  uacert.HashSHA256,
		NotBefore:      time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
		SerialNumber:   serialFor("discovery", 0),
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: discovery cert: %w", err)
	}
	for i := range spec.Discovery {
		ds := &spec.Discovery[i]
		var known []uamsg.ApplicationDescription
		for _, hi := range ds.Announces {
			if hi >= len(hostSpecs) {
				continue
			}
			hh := &hostSpecs[hi]
			known = append(known, uamsg.ApplicationDescription{
				ApplicationURI:  hh.AppURI,
				ApplicationType: uamsg.ApplicationServer,
				DiscoveryURLs: []string{
					fmt.Sprintf("opc.tcp://%s:%d", hh.IP, hh.Port),
				},
			})
		}
		srv, err := uaserver.New(uaserver.Config{
			ApplicationURI:  ds.AppURI,
			ProductURI:      "urn:opcfoundation.org:UA:LDS",
			ApplicationName: "UA Local Discovery Server",
			SoftwareVersion: "1.03",
			EndpointURL:     fmt.Sprintf("opc.tcp://%s:4840", ds.IP),
			Endpoints: []uaserver.EndpointConfig{{
				Policy: uapolicy.None,
				Modes:  []uamsg.MessageSecurityMode{uamsg.SecurityModeNone},
			}},
			Key:          discoKey,
			CertDER:      discoCert.Raw,
			Discovery:    true,
			KnownServers: known,
		})
		if err != nil {
			return nil, fmt.Errorf("deploy: discovery server %d: %w", i, err)
		}
		w.discovery = append(w.discovery, &worldDiscovery{spec: ds, cert: discoCert, server: srv})
	}
	return w, nil
}

// buildSpace creates a host's address space from its spec.
func buildSpace(hs *HostSpec, rng *mrand.Rand) (*addrspace.Space, error) {
	space := addrspace.New(hs.AppURI, hs.SoftwareVersion)
	_, err := addrspace.Populate(space, addrspace.BuildOptions{
		Profile:            hs.Profile,
		Variables:          hs.Exposure.Variables,
		Methods:            hs.Exposure.Methods,
		AnonReadableFrac:   hs.Exposure.ReadFrac,
		AnonWritableFrac:   hs.Exposure.WriteFrac,
		AnonExecutableFrac: hs.Exposure.ExecFrac,
		Rand:               rng,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: space for host %d: %w", hs.Index, err)
	}
	return space, nil
}

// certAt returns the certificate valid at the wave.
func (wh *worldHost) certAt(wave int) *uacert.Certificate {
	if wh.prior != nil && wave < wh.spec.Cert.RenewalWave {
		return wh.prior
	}
	return wh.cert
}

func (wh *worldHost) softwareVersionAt(wave int) string {
	v := wh.spec.SoftwareVersion
	if wh.spec.Cert.SoftwareUpdate && wh.spec.Cert.RenewalWave > 0 &&
		wave >= wh.spec.Cert.RenewalWave {
		return v + ".1"
	}
	return v
}

// serverAt builds (or reuses) the server matching the host's wave
// state, stamping new servers with the world's crypto-reuse settings.
func (wh *worldHost) serverAt(wave int, engine *uarsa.Engine, deterministic bool) (*uaserver.Server, error) {
	cert := wh.certAt(wave)
	cacheKey := cert.ThumbprintHex() + wh.softwareVersionAt(wave)
	if srv, ok := wh.server[cacheKey]; ok {
		return srv, nil
	}
	hs := wh.spec
	var endpoints []uaserver.EndpointConfig
	var modes []uamsg.MessageSecurityMode
	if hs.Modes.Has(ModeS) {
		modes = append(modes, uamsg.SecurityModeSign)
	}
	if hs.Modes.Has(ModeE) {
		modes = append(modes, uamsg.SecurityModeSignAndEncrypt)
	}
	for _, abbrev := range hs.Policies {
		pol, ok := uapolicy.LookupAbbrev(abbrev)
		if !ok {
			return nil, fmt.Errorf("deploy: unknown policy %q", abbrev)
		}
		if pol.Insecure {
			endpoints = append(endpoints, uaserver.EndpointConfig{
				Policy: pol,
				Modes:  []uamsg.MessageSecurityMode{uamsg.SecurityModeNone},
			})
			continue
		}
		endpoints = append(endpoints, uaserver.EndpointConfig{Policy: pol, Modes: modes})
	}
	space := wh.space
	if wh.spec.Cert.SoftwareUpdate {
		// Rebuild so the SoftwareVersion node reflects the update.
		var err error
		space, err = buildSpaceWithVersion(hs, wh.softwareVersionAt(wave))
		if err != nil {
			return nil, err
		}
	}
	srv, err := uaserver.New(uaserver.Config{
		ApplicationURI:  hs.AppURI,
		ProductURI:      hs.AppURI,
		ApplicationName: hs.Manufacturer,
		SoftwareVersion: wh.softwareVersionAt(wave),
		EndpointURL:     fmt.Sprintf("opc.tcp://%s:%d", hs.IP, hs.Port),
		Endpoints:       endpoints,
		TokenTypes:      hs.Tokens,
		Users:           map[string]string{"operator": fmt.Sprintf("pw-%04x", hs.Index)},
		Key:             wh.key,
		CertDER:         cert.Raw,
		Space:           space,
		Quirks: uaserver.Quirks{
			RejectClientCert: hs.RejectClientCert,
			RejectSessions:   hs.RejectSessions,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: server for host %d: %w", hs.Index, err)
	}
	srv.SetCrypto(engine, deterministic)
	wh.server[cacheKey] = srv
	return srv, nil
}

func buildSpaceWithVersion(hs *HostSpec, version string) (*addrspace.Space, error) {
	rng := mrand.New(mrand.NewSource(int64(hs.Index)))
	space := addrspace.New(hs.AppURI, version)
	_, err := addrspace.Populate(space, addrspace.BuildOptions{
		Profile:            hs.Profile,
		Variables:          hs.Exposure.Variables,
		Methods:            hs.Exposure.Methods,
		AnonReadableFrac:   hs.Exposure.ReadFrac,
		AnonWritableFrac:   hs.Exposure.WriteFrac,
		AnonExecutableFrac: hs.Exposure.ExecFrac,
		Rand:               rng,
	})
	if err != nil {
		return nil, err
	}
	return space, nil
}

// ApplyWave registers the hosts present at the wave and removes the
// rest, mutating the shared Network in place (the legacy execution
// model; campaigns now scan immutable SnapshotWave views instead).
//
// Idempotency contract: ApplyWave fully re-registers the population
// from the wave-indexed spec — it never reads the network's current
// state — so waves may be applied in any order, re-applied, and
// interleaved with SnapshotWave; the resulting network state depends
// only on the last applied wave. Calls are serialized on the world's
// mutex, so concurrent ApplyWave/SnapshotWave calls are safe (the
// network then reflects whichever ApplyWave ran last).
// TestApplyWaveIdempotent pins this contract.
func (w *World) ApplyWave(wave int) error {
	if wave < 0 || wave >= len(WaveDates) {
		return fmt.Errorf("deploy: wave %d out of range", wave)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, wh := range w.hosts {
		ip := netip.Addr(wh.spec.IP)
		if wh.spec.PresentAt(wave) {
			srv, err := wh.serverAt(wave, w.cryptoEngine, w.cryptoDet)
			if err != nil {
				return err
			}
			w.Net.Register(ip, wh.spec.Port, wh.spec.ASN, srv)
		} else {
			w.Net.Unregister(ip, wh.spec.Port)
		}
	}
	for _, wd := range w.discovery {
		if wave < len(wd.spec.Present) && wd.spec.Present[wave] {
			w.Net.Register(wd.spec.IP, 4840, wd.spec.ASN, wd.server)
		} else {
			w.Net.Unregister(wd.spec.IP, 4840)
		}
	}
	w.wave = wave
	w.Net.SetChaos(w.chaos.ForWave(wave))
	return nil
}

// CurrentWave returns the last applied wave index (-1 before the first).
func (w *World) CurrentWave() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wave
}

// SnapshotWave builds an immutable worldview of the wave's population
// without touching the shared Network: hosts and discovery servers
// present at the wave are registered into a fresh sharded snapshot
// that satisfies simnet.View. Noise, latency and exclusions are copied
// from the network so the snapshot observes the identical Internet.
// Snapshots for different waves share the underlying (concurrency-
// safe) server instances, so any number of them can be scanned at the
// same time.
func (w *World) SnapshotWave(wave int) (*worldview.Snapshot, error) {
	if wave < 0 || wave >= len(WaveDates) {
		return nil, fmt.Errorf("deploy: wave %d out of range", wave)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	b, err := worldview.NewBuilder(worldview.Config{
		Universe: w.Net.Universe(),
		Noise:    w.Net.NoiseModel(),
		Latency:  w.Net.Latency(),
		Chaos:    w.chaos.ForWave(wave),
	})
	if err != nil {
		return nil, err
	}
	for _, wh := range w.hosts {
		if !wh.spec.PresentAt(wave) {
			continue
		}
		srv, err := wh.serverAt(wave, w.cryptoEngine, w.cryptoDet)
		if err != nil {
			return nil, err
		}
		b.AddHost(netip.Addr(wh.spec.IP), wh.spec.Port, wh.spec.ASN, srv)
	}
	for _, wd := range w.discovery {
		if wave < len(wd.spec.Present) && wd.spec.Present[wave] {
			b.AddHost(wd.spec.IP, 4840, wd.spec.ASN, wd.server)
		}
	}
	for _, ip := range w.Net.ExcludedIPs() {
		b.Exclude(ip)
	}
	return b.Build(), nil
}

// SetResponseCaches toggles the pre-encoded GetEndpoints/FindServers
// response caches on every server materialized so far (servers built
// afterwards start with the cache on, as always). It exists for the
// cached-vs-uncached equivalence gate; production campaigns never turn
// the caches off.
func (w *World) SetResponseCaches(on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, wh := range w.hosts {
		for _, srv := range wh.server {
			srv.EnableResponseCache(on)
		}
	}
	for _, wd := range w.discovery {
		wd.server.EnableResponseCache(on)
	}
}

// SetCrypto installs the campaign's memoized asymmetric-crypto engine
// and deterministic-handshake mode on every server materialized so far;
// servers built lazily afterwards inherit the same settings. Ownership
// is campaign-scoped (opcuastudy.RunCampaignOnWorld installs its engine
// before materializing wave views): the engine memoizes by key
// fingerprint and input digest, so entries are self-contained and a
// later campaign swapping engines — or two campaigns sharing a world,
// where the last installation wins — is always semantically safe (see
// DESIGN.md §4).
func (w *World) SetCrypto(engine *uarsa.Engine, deterministic bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cryptoEngine = engine
	w.cryptoDet = deterministic
	for _, wh := range w.hosts {
		for _, srv := range wh.server {
			srv.SetCrypto(engine, deterministic)
		}
	}
	for _, wd := range w.discovery {
		wd.server.SetCrypto(engine, deterministic)
	}
}

// SetChaos installs the campaign's adversarial-host model. Ownership is
// campaign-scoped like SetCrypto: opcuastudy installs it (or the zero
// model, when chaos is off) before materializing wave views, so two
// campaigns sharing a world never inherit each other's chaos. Wave
// views built afterwards — snapshots via SnapshotWave, the mutable
// network via ApplyWave — carry the model bound to their wave.
func (w *World) SetChaos(m chaos.Model) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.chaos = m
	if w.wave >= 0 {
		w.Net.SetChaos(m.ForWave(w.wave))
	} else {
		w.Net.SetChaos(chaos.WaveModel{})
	}
}

// HostCert returns the certificate a host serves at the wave; nil if the
// host index is out of the materialized range.
func (w *World) HostCert(index, wave int) *uacert.Certificate {
	if index < 0 || index >= len(w.hosts) {
		return nil
	}
	return w.hosts[index].certAt(wave)
}

// ASOf exposes the AS mapping for analysis.
func (w *World) ASOf(ip netip.Addr) int { return w.Net.ASOf(ip) }
