package deploy

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/chaos"
	"repro/internal/wavediff"
)

// TestWaveEndpointStatesFingerprints is the deploy-level sensitivity
// gate: over a real materialized world, an endpoint's fingerprint must
// flip between consecutive waves exactly when the spec schedules a
// record-shaping change — a certificate renewal, an ApplyWave churn
// event (presence change), the follow-references switch-on for hidden
// hosts, or a redrawn (wave, host) chaos decision — and must stay
// bit-stable otherwise. The check is bidirectional over every endpoint
// and every wave pair, so WaveEndpointStates can neither miss a change
// (unsound skip) nor invent one (lost speedup) without failing here.
func TestWaveEndpointStatesFingerprints(t *testing.T) {
	spec := buildSpec(t)
	// Materialize enough of the population to include at least one
	// renewal host and one churn host (plus slack for stable ones).
	maxHosts := 60
	haveRenewal, haveChurn := false, false
	for i := range spec.Hosts {
		h := &spec.Hosts[i]
		churns := false
		for w := 1; w < len(WaveDates); w++ {
			if h.PresentAt(w) != h.PresentAt(w-1) {
				churns = true
			}
		}
		if h.Cert.RenewalWave > 0 && !haveRenewal {
			haveRenewal = true
			maxHosts = max(maxHosts, i+1)
		}
		if churns && !haveChurn {
			haveChurn = true
			maxHosts = max(maxHosts, i+1)
		}
		if haveRenewal && haveChurn {
			break
		}
	}
	if !haveRenewal || !haveChurn {
		t.Fatalf("spec schedules no renewal (%v) or churn (%v) host", haveRenewal, haveChurn)
	}
	world, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     maxHosts,
		NoiseProb:    1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}

	hostBy := make(map[string]*HostSpec)
	for i := range spec.Hosts[:maxHosts] {
		h := &spec.Hosts[i]
		hostBy[fmt.Sprintf("%s:%d", h.IP, h.Port)] = h
	}
	discBy := make(map[string]*DiscoverySpec)
	for i := range spec.Discovery {
		d := &spec.Discovery[i]
		discBy[fmt.Sprintf("%s:%d", d.IP, 4840)] = d
	}

	model, err := chaos.ModelForProfile("mixed", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, chaosOn := range []bool{false, true} {
		name := "polite"
		if chaosOn {
			name = "chaos"
			world.SetChaos(model)
		}
		t.Run(name, func(t *testing.T) {
			ctx := wavediff.Context{Seed: spec.Seed, TestKeySizes: true,
				NoiseProb: 1e-5, MaxHosts: maxHosts}
			if chaosOn {
				ctx.ChaosProfile = "mixed"
				ctx.ChaosSeed = 7
			}
			plans := make([]*wavediff.Plan, len(WaveDates))
			states := make([][]wavediff.EndpointState, len(WaveDates))
			for w := range WaveDates {
				if states[w], err = world.WaveEndpointStates(w); err != nil {
					t.Fatal(err)
				}
				plans[w] = wavediff.NewPlan(ctx, w, w >= FollowReferencesFromWave, states[w])
			}

			// decision mirrors the dial path's chaos consultation: only
			// present endpoints draw a behavior.
			decision := func(w int, ip netip.Addr, port int, present bool) chaos.Behavior {
				if !chaosOn || !present {
					return chaos.Behavior{}
				}
				return model.ForWave(w).Behavior(ip.As4(), port)
			}
			flips, stables, renewalFlips, churnFlips := 0, 0, 0, 0
			for w := 1; w < len(WaveDates); w++ {
				for _, st := range states[w] {
					prev, pok := plans[w-1].Fingerprint(st.Address)
					cur, cok := plans[w].Fingerprint(st.Address)
					if !pok || !cok {
						t.Fatalf("wave %d: %s missing from a plan", w, st.Address)
					}
					ap := netip.MustParseAddrPort(st.Address)
					var renewal, churn, presentPrev bool
					if h := hostBy[st.Address]; h != nil {
						renewal = h.Cert.RenewalWave == w
						churn = h.PresentAt(w) != h.PresentAt(w-1)
						presentPrev = h.PresentAt(w - 1)
					} else if d := discBy[st.Address]; d != nil {
						churn = d.Present[w] != d.Present[w-1]
						presentPrev = d.Present[w-1]
					} else {
						t.Fatalf("wave %d: %s in no spec", w, st.Address)
					}
					followSwitch := !st.PortScanned && w == FollowReferencesFromWave
					redraw := decision(w, ap.Addr(), int(ap.Port()), st.Present) !=
						decision(w-1, ap.Addr(), int(ap.Port()), presentPrev)
					want := renewal || churn || followSwitch || redraw
					if got := prev != cur; got != want {
						t.Errorf("wave %d %s: fingerprint flipped=%v, want %v (renewal=%v churn=%v follow=%v redraw=%v)",
							w, st.Address, got, want, renewal, churn, followSwitch, redraw)
					}
					if prev != cur {
						flips++
					} else {
						stables++
					}
					if renewal {
						renewalFlips++
					}
					if churn {
						churnFlips++
					}
				}
			}
			if renewalFlips == 0 || churnFlips == 0 || flips == 0 || stables == 0 {
				t.Errorf("coverage too thin: renewals=%d churns=%d flips=%d stables=%d",
					renewalFlips, churnFlips, flips, stables)
			}
		})
	}
}

// TestWaveEndpointStatesRange pins the wave range validation.
func TestWaveEndpointStatesRange(t *testing.T) {
	spec := buildSpec(t)
	world, err := Materialize(spec, Options{TestKeySizes: true, MaxHosts: 5, NoiseProb: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{-1, len(WaveDates)} {
		if _, err := world.WaveEndpointStates(w); err == nil {
			t.Errorf("wave %d: no range error", w)
		}
	}
}
