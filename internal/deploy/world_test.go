package deploy

import (
	"context"
	"testing"
	"time"

	"repro/internal/uaclient"
)

// materializeSmall builds a truncated test world with small keys.
func materializeSmall(t *testing.T, maxHosts int) *World {
	t.Helper()
	spec := buildSpec(t)
	w, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     maxHosts,
		NoiseProb:    0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMaterializeAndApplyWave(t *testing.T) {
	w := materializeSmall(t, 60)
	if err := w.ApplyWave(0); err != nil {
		t.Fatal(err)
	}
	if w.CurrentWave() != 0 {
		t.Errorf("wave = %d", w.CurrentWave())
	}
	// Hosts present at wave 0 must be dialable and speak OPC UA.
	var spec *HostSpec
	for i := range w.Spec.Hosts[:60] {
		h := &w.Spec.Hosts[i]
		if h.PresentAt(0) && !h.Hidden {
			spec = h
			break
		}
	}
	if spec == nil {
		t.Fatal("no present host in truncated world")
	}
	addr := spec.IP.String() + ":4840"
	c, err := uaclient.Dial(context.Background(), "opc.tcp://"+addr, uaclient.Options{
		Dialer:  w.Net,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.OpenInsecureChannel(); err != nil {
		t.Fatal(err)
	}
	eps, err := c.GetEndpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) == 0 {
		t.Error("no endpoints advertised")
	}
	if eps[0].Server.ApplicationURI != spec.AppURI {
		t.Errorf("application URI = %q, want %q", eps[0].Server.ApplicationURI, spec.AppURI)
	}
	// Endpoint policies must match the spec's policy set size.
	policySet := map[string]bool{}
	for _, ep := range eps {
		policySet[ep.SecurityPolicyURI] = true
	}
	if len(policySet) != len(spec.Policies) {
		t.Errorf("advertised %d policies, spec has %d (%v)", len(policySet), len(spec.Policies), spec.Policies)
	}
}

func TestApplyWavePresenceChanges(t *testing.T) {
	w := materializeSmall(t, 120)
	// Find a host that joins later (cluster members with PresentFrom>0).
	var late *HostSpec
	for i := range w.Spec.Hosts[:120] {
		h := &w.Spec.Hosts[i]
		if h.PresentFrom > 0 && h.PresentFrom < len(WaveDates) {
			late = h
			break
		}
	}
	if late == nil {
		t.Skip("no late joiner in truncated world")
	}
	if err := w.ApplyWave(0); err != nil {
		t.Fatal(err)
	}
	if w.Net.OpenPort(late.IP, late.Port) {
		t.Errorf("host %d present before PresentFrom %d", late.Index, late.PresentFrom)
	}
	if err := w.ApplyWave(late.PresentFrom); err != nil {
		t.Fatal(err)
	}
	if !w.Net.OpenPort(late.IP, late.Port) {
		t.Errorf("host %d absent at its PresentFrom wave", late.Index)
	}
}

func TestCertRenewalChangesThumbprint(t *testing.T) {
	spec := buildSpec(t)
	// Materialize enough hosts to include a renewal host.
	var renewal *HostSpec
	for i := range spec.Hosts {
		if spec.Hosts[i].Cert.RenewalWave > 0 {
			renewal = &spec.Hosts[i]
			break
		}
	}
	if renewal == nil {
		t.Fatal("no renewal host in spec")
	}
	w, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     renewal.Index + 1,
		NoiseProb:    0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := w.HostCert(renewal.Index, renewal.Cert.RenewalWave-1)
	after := w.HostCert(renewal.Index, renewal.Cert.RenewalWave)
	if before == nil || after == nil {
		t.Fatal("missing certificates")
	}
	if before.ThumbprintHex() == after.ThumbprintHex() {
		t.Error("renewal did not change the certificate")
	}
	if before.PublicKey.N.Cmp(after.PublicKey.N) != 0 {
		t.Error("renewal should keep the key")
	}
	if w.HostCert(-1, 0) != nil || w.HostCert(1<<20, 0) != nil {
		t.Error("out-of-range host index should return nil")
	}
}

func TestClusterHostsShareCertificate(t *testing.T) {
	spec := buildSpec(t)
	// Cluster 2 lives in group A (indexes < 270), so a truncated world
	// contains whole clusters.
	var members []int
	for i := range spec.Hosts[:270] {
		if spec.Hosts[i].Cert.ReuseCluster == 2 {
			members = append(members, i)
		}
	}
	if len(members) != 12 {
		t.Fatalf("cluster 2 members in group A = %d", len(members))
	}
	w, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     270,
		NoiseProb:    0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	thumb := w.HostCert(members[0], 7).ThumbprintHex()
	for _, m := range members[1:] {
		if w.HostCert(m, 7).ThumbprintHex() != thumb {
			t.Errorf("cluster member %d has a different certificate", m)
		}
	}
	// A non-member must differ.
	for i := range spec.Hosts[:270] {
		if spec.Hosts[i].Cert.ReuseCluster == -1 {
			if w.HostCert(i, 7).ThumbprintHex() == thumb {
				t.Errorf("single host %d shares the cluster certificate", i)
			}
			break
		}
	}
}

func TestBuildUniverseCoversHostAddresses(t *testing.T) {
	spec := buildSpec(t)
	u, err := BuildUniverse()
	if err != nil {
		t.Fatal(err)
	}
	for i := range spec.Hosts {
		h := &spec.Hosts[i]
		inUniverse := u.Contains(h.IP)
		if h.Hidden && h.Port == 4840 && inUniverse {
			t.Errorf("hidden default-port host %d inside scanned universe", h.Index)
		}
		if !h.Hidden && !inUniverse {
			t.Errorf("visible host %d outside universe (%s)", h.Index, h.IP)
		}
	}
	for _, d := range spec.Discovery {
		if !u.Contains(d.IP) {
			t.Errorf("discovery server %d outside universe (%s)", d.Index, d.IP)
		}
	}
}

func TestApplyWaveValidation(t *testing.T) {
	w := materializeSmall(t, 10)
	if err := w.ApplyWave(-1); err == nil {
		t.Error("negative wave accepted")
	}
	if err := w.ApplyWave(len(WaveDates)); err == nil {
		t.Error("out-of-range wave accepted")
	}
}
