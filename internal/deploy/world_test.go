package deploy

import (
	"context"
	"crypto/rsa"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/uacert"
	"repro/internal/uaclient"
)

// materializeSmall builds a truncated test world with small keys.
func materializeSmall(t *testing.T, maxHosts int) *World {
	t.Helper()
	spec := buildSpec(t)
	w, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     maxHosts,
		NoiseProb:    0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorldKeysPrecomputed asserts the CRT fast path is armed on every
// private key the world serves RSA operations with: all host keys
// (including shared reuse-cluster keys) and the discovery identity.
// Without Precomputed populated every OPN sign/decrypt falls back to
// the ~4× slower non-CRT exponentiation, which would silently quadruple
// the campaign's RSA floor.
func TestWorldKeysPrecomputed(t *testing.T) {
	w := materializeSmall(t, 60)
	precomputed := func(key *rsa.PrivateKey) bool {
		return key != nil && key.Precomputed.Dp != nil && key.Precomputed.Dq != nil &&
			key.Precomputed.Qinv != nil
	}
	for _, wh := range w.hosts {
		if !precomputed(wh.key) {
			t.Errorf("host %d key lacks CRT precomputation", wh.spec.Index)
		}
	}
	for i, wd := range w.discovery {
		if !precomputed(wd.server.Config().Key) {
			t.Errorf("discovery server %d key lacks CRT precomputation", i)
		}
	}
	// The pool itself must hand out precomputed keys for every size it
	// ever generated.
	for _, bits := range []int{512} {
		for i := 0; i < w.Keys.Size(bits); i++ {
			if !precomputed(w.Keys.Key(bits, i)) {
				t.Errorf("pool key (%d bits, %d) lacks CRT precomputation", bits, i)
			}
		}
	}
}

func TestMaterializeAndApplyWave(t *testing.T) {
	w := materializeSmall(t, 60)
	if err := w.ApplyWave(0); err != nil {
		t.Fatal(err)
	}
	if w.CurrentWave() != 0 {
		t.Errorf("wave = %d", w.CurrentWave())
	}
	// Hosts present at wave 0 must be dialable and speak OPC UA.
	var spec *HostSpec
	for i := range w.Spec.Hosts[:60] {
		h := &w.Spec.Hosts[i]
		if h.PresentAt(0) && !h.Hidden {
			spec = h
			break
		}
	}
	if spec == nil {
		t.Fatal("no present host in truncated world")
	}
	addr := spec.IP.String() + ":4840"
	c, err := uaclient.Dial(context.Background(), "opc.tcp://"+addr, uaclient.Options{
		Dialer:  w.Net,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.OpenInsecureChannel(); err != nil {
		t.Fatal(err)
	}
	eps, err := c.GetEndpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) == 0 {
		t.Error("no endpoints advertised")
	}
	if eps[0].Server.ApplicationURI != spec.AppURI {
		t.Errorf("application URI = %q, want %q", eps[0].Server.ApplicationURI, spec.AppURI)
	}
	// Endpoint policies must match the spec's policy set size.
	policySet := map[string]bool{}
	for _, ep := range eps {
		policySet[ep.SecurityPolicyURI] = true
	}
	if len(policySet) != len(spec.Policies) {
		t.Errorf("advertised %d policies, spec has %d (%v)", len(policySet), len(spec.Policies), spec.Policies)
	}
}

func TestApplyWavePresenceChanges(t *testing.T) {
	w := materializeSmall(t, 120)
	// Find a host that joins later (cluster members with PresentFrom>0).
	var late *HostSpec
	for i := range w.Spec.Hosts[:120] {
		h := &w.Spec.Hosts[i]
		if h.PresentFrom > 0 && h.PresentFrom < len(WaveDates) {
			late = h
			break
		}
	}
	if late == nil {
		t.Skip("no late joiner in truncated world")
	}
	if err := w.ApplyWave(0); err != nil {
		t.Fatal(err)
	}
	if w.Net.OpenPort(late.IP, late.Port) {
		t.Errorf("host %d present before PresentFrom %d", late.Index, late.PresentFrom)
	}
	if err := w.ApplyWave(late.PresentFrom); err != nil {
		t.Fatal(err)
	}
	if !w.Net.OpenPort(late.IP, late.Port) {
		t.Errorf("host %d absent at its PresentFrom wave", late.Index)
	}
}

func TestCertRenewalChangesThumbprint(t *testing.T) {
	spec := buildSpec(t)
	// Materialize enough hosts to include a renewal host.
	var renewal *HostSpec
	for i := range spec.Hosts {
		if spec.Hosts[i].Cert.RenewalWave > 0 {
			renewal = &spec.Hosts[i]
			break
		}
	}
	if renewal == nil {
		t.Fatal("no renewal host in spec")
	}
	w, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     renewal.Index + 1,
		NoiseProb:    0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := w.HostCert(renewal.Index, renewal.Cert.RenewalWave-1)
	after := w.HostCert(renewal.Index, renewal.Cert.RenewalWave)
	if before == nil || after == nil {
		t.Fatal("missing certificates")
	}
	if before.ThumbprintHex() == after.ThumbprintHex() {
		t.Error("renewal did not change the certificate")
	}
	if before.PublicKey.N.Cmp(after.PublicKey.N) != 0 {
		t.Error("renewal should keep the key")
	}
	if w.HostCert(-1, 0) != nil || w.HostCert(1<<20, 0) != nil {
		t.Error("out-of-range host index should return nil")
	}
}

func TestClusterHostsShareCertificate(t *testing.T) {
	spec := buildSpec(t)
	// Cluster 2 lives in group A (indexes < 270), so a truncated world
	// contains whole clusters.
	var members []int
	for i := range spec.Hosts[:270] {
		if spec.Hosts[i].Cert.ReuseCluster == 2 {
			members = append(members, i)
		}
	}
	if len(members) != 12 {
		t.Fatalf("cluster 2 members in group A = %d", len(members))
	}
	w, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     270,
		NoiseProb:    0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	thumb := w.HostCert(members[0], 7).ThumbprintHex()
	for _, m := range members[1:] {
		if w.HostCert(m, 7).ThumbprintHex() != thumb {
			t.Errorf("cluster member %d has a different certificate", m)
		}
	}
	// A non-member must differ.
	for i := range spec.Hosts[:270] {
		if spec.Hosts[i].Cert.ReuseCluster == -1 {
			if w.HostCert(i, 7).ThumbprintHex() == thumb {
				t.Errorf("single host %d shares the cluster certificate", i)
			}
			break
		}
	}
}

func TestBuildUniverseCoversHostAddresses(t *testing.T) {
	spec := buildSpec(t)
	u, err := BuildUniverse()
	if err != nil {
		t.Fatal(err)
	}
	for i := range spec.Hosts {
		h := &spec.Hosts[i]
		inUniverse := u.Contains(h.IP)
		if h.Hidden && h.Port == 4840 && inUniverse {
			t.Errorf("hidden default-port host %d inside scanned universe", h.Index)
		}
		if !h.Hidden && !inUniverse {
			t.Errorf("visible host %d outside universe (%s)", h.Index, h.IP)
		}
	}
	for _, d := range spec.Discovery {
		if !u.Contains(d.IP) {
			t.Errorf("discovery server %d outside universe (%s)", d.Index, d.IP)
		}
	}
}

func TestApplyWaveValidation(t *testing.T) {
	w := materializeSmall(t, 10)
	if err := w.ApplyWave(-1); err == nil {
		t.Error("negative wave accepted")
	}
	if err := w.ApplyWave(len(WaveDates)); err == nil {
		t.Error("out-of-range wave accepted")
	}
	if _, err := w.SnapshotWave(-1); err == nil {
		t.Error("negative snapshot wave accepted")
	}
	if _, err := w.SnapshotWave(len(WaveDates)); err == nil {
		t.Error("out-of-range snapshot wave accepted")
	}
}

// presence captures which spec endpoints answer on the network, the
// observable output of ApplyWave.
func presence(w *World, maxHosts int) map[string]bool {
	out := map[string]bool{}
	for i := range w.Spec.Hosts {
		if i >= maxHosts {
			break
		}
		h := &w.Spec.Hosts[i]
		out[h.IP.String()+":"+strconv.Itoa(h.Port)] = w.Net.OpenPort(h.IP, h.Port)
	}
	for i := range w.Spec.Discovery {
		d := &w.Spec.Discovery[i]
		out[d.IP.String()+":4840"] = w.Net.OpenPort(d.IP, 4840)
	}
	return out
}

// TestApplyWaveIdempotent pins the documented contract: network state
// depends only on the last applied wave, regardless of what was
// applied before (out of order, repeated, or nothing at all).
func TestApplyWaveIdempotent(t *testing.T) {
	const maxHosts = 80
	fresh := materializeSmall(t, maxHosts)
	if err := fresh.ApplyWave(3); err != nil {
		t.Fatal(err)
	}
	want := presence(fresh, maxHosts)

	replayed := materializeSmall(t, maxHosts)
	for _, wave := range []int{3, 7, 0, 3, 3} {
		if err := replayed.ApplyWave(wave); err != nil {
			t.Fatal(err)
		}
	}
	if replayed.CurrentWave() != 3 {
		t.Errorf("current wave = %d, want 3", replayed.CurrentWave())
	}
	got := presence(replayed, maxHosts)
	for addr, open := range want {
		if got[addr] != open {
			t.Errorf("endpoint %s: open = %v after replay, want %v", addr, got[addr], open)
		}
	}
}

// TestApplyWaveConcurrentWithSnapshot drives ApplyWave and
// SnapshotWave from concurrent goroutines; under -race this pins the
// world-mutex serialization of the shared server cache.
func TestApplyWaveConcurrentWithSnapshot(t *testing.T) {
	w := materializeSmall(t, 40)
	var wg sync.WaitGroup
	for wave := 0; wave < len(WaveDates); wave++ {
		wg.Add(2)
		go func(wave int) {
			defer wg.Done()
			if err := w.ApplyWave(wave); err != nil {
				t.Errorf("apply wave %d: %v", wave, err)
			}
		}(wave)
		go func(wave int) {
			defer wg.Done()
			if _, err := w.SnapshotWave(wave); err != nil {
				t.Errorf("snapshot wave %d: %v", wave, err)
			}
		}(wave)
	}
	wg.Wait()
	if cw := w.CurrentWave(); cw < 0 || cw >= len(WaveDates) {
		t.Errorf("current wave = %d", cw)
	}
}

// TestSnapshotWaveMatchesApplyWave requires a wave's snapshot to
// expose the exact same population as the mutable network after
// ApplyWave: same open endpoints, same AS attribution, and live
// servers behind them.
func TestSnapshotWaveMatchesApplyWave(t *testing.T) {
	const maxHosts = 80
	w := materializeSmall(t, maxHosts)
	for _, wave := range []int{0, 4, 7} {
		snap, err := w.SnapshotWave(wave)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ApplyWave(wave); err != nil {
			t.Fatal(err)
		}
		for i := range w.Spec.Hosts[:maxHosts] {
			h := &w.Spec.Hosts[i]
			net, view := w.Net.OpenPort(h.IP, h.Port), snap.OpenPort(h.IP, h.Port)
			if net != view {
				t.Errorf("wave %d host %d: network open=%v, snapshot open=%v", wave, h.Index, net, view)
			}
			if view && snap.ASOf(h.IP) != h.ASN {
				t.Errorf("wave %d host %d: snapshot ASN = %d, want %d", wave, h.Index, snap.ASOf(h.IP), h.ASN)
			}
		}
		// A present host must speak OPC UA through the snapshot.
		var probe *HostSpec
		for i := range w.Spec.Hosts[:maxHosts] {
			h := &w.Spec.Hosts[i]
			if h.PresentAt(wave) && !h.Hidden {
				probe = h
				break
			}
		}
		if probe == nil {
			continue
		}
		c, err := uaclient.Dial(context.Background(),
			"opc.tcp://"+probe.IP.String()+":"+strconv.Itoa(probe.Port),
			uaclient.Options{Dialer: snap, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.OpenInsecureChannel(); err != nil {
			t.Fatal(err)
		}
		eps, err := c.GetEndpoints()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) == 0 || eps[0].Server.ApplicationURI != probe.AppURI {
			t.Errorf("wave %d: snapshot endpoints = %d", wave, len(eps))
		}
	}
}

// TestSnapshotWaveCertRenewal requires snapshots of different waves to
// serve the pre- and post-renewal certificates respectively, even when
// built out of order (the concurrent campaign materializes all waves
// up front).
func TestSnapshotWaveCertRenewal(t *testing.T) {
	spec := buildSpec(t)
	var renewal *HostSpec
	for i := range spec.Hosts {
		h := &spec.Hosts[i]
		if h.Cert.RenewalWave > 0 && h.PresentAt(0) && h.PresentAt(7) && !h.Hidden {
			renewal = h
			break
		}
	}
	if renewal == nil {
		t.Skip("no always-present renewal host in spec")
	}
	w, err := Materialize(spec, Options{
		TestKeySizes: true,
		MaxHosts:     renewal.Index + 1,
		NoiseProb:    0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	grabThumb := func(wave int) string {
		t.Helper()
		snap, err := w.SnapshotWave(wave)
		if err != nil {
			t.Fatal(err)
		}
		c, err := uaclient.Dial(context.Background(),
			"opc.tcp://"+renewal.IP.String()+":"+strconv.Itoa(renewal.Port),
			uaclient.Options{Dialer: snap, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.OpenInsecureChannel(); err != nil {
			t.Fatal(err)
		}
		eps, err := c.GetEndpoints()
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			if len(ep.ServerCertificate) > 0 {
				return thumbprintHex(t, ep.ServerCertificate)
			}
		}
		t.Fatalf("wave %d: no certificate served", wave)
		return ""
	}
	// Build the post-renewal snapshot first to prove order independence.
	after := grabThumb(7)
	before := grabThumb(renewal.Cert.RenewalWave - 1)
	if before == after {
		t.Error("snapshots serve the same certificate across the renewal")
	}
	if before != w.HostCert(renewal.Index, renewal.Cert.RenewalWave-1).ThumbprintHex() {
		t.Error("pre-renewal snapshot serves the wrong certificate")
	}
	if after != w.HostCert(renewal.Index, 7).ThumbprintHex() {
		t.Error("post-renewal snapshot serves the wrong certificate")
	}
}

func thumbprintHex(t *testing.T, der []byte) string {
	t.Helper()
	c, err := uacert.Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	return c.ThumbprintHex()
}

// TestMaterializeDeterministicAcrossProcesses pins the property the
// multi-process shard workers depend on: two independent
// materializations of the same spec (as two worker processes would
// perform) agree on every certificate byte — same thumbprints for
// host, prior, cluster and discovery certificates.
func TestMaterializeDeterministicAcrossProcesses(t *testing.T) {
	build := func() *World {
		t.Helper()
		spec, err := BuildSpec(2020)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Materialize(spec, Options{TestKeySizes: true, MaxHosts: 50})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := build(), build()
	if len(a.hosts) != len(b.hosts) {
		t.Fatalf("host counts differ: %d vs %d", len(a.hosts), len(b.hosts))
	}
	for i := range a.hosts {
		if a.hosts[i].cert.ThumbprintHex() != b.hosts[i].cert.ThumbprintHex() {
			t.Errorf("host %d certificate differs between materializations", i)
		}
		if (a.hosts[i].prior == nil) != (b.hosts[i].prior == nil) {
			t.Fatalf("host %d prior presence differs", i)
		}
		if a.hosts[i].prior != nil &&
			a.hosts[i].prior.ThumbprintHex() != b.hosts[i].prior.ThumbprintHex() {
			t.Errorf("host %d prior certificate differs between materializations", i)
		}
	}
}
