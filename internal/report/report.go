// Package report renders the analysis results as the tables and figure
// series of the paper, in plain text and CSV. Each figure/table of the
// evaluation has one renderer; cmd/measure and cmd/reportgen print them,
// and EXPERIMENTS.md records their output next to the paper's numbers.
package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/uapolicy"
)

// Table is a renderable grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if w := widths[i] - len(c); w > 0 {
				b.WriteString(strings.Repeat(" ", w))
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV formats the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	write(t.Header)
	for _, row := range t.Rows {
		write(row)
	}
	return b.String()
}

// itoa abbreviates strconv.Itoa for the dense table-row literals below.
func itoa(v int) string { return strconv.Itoa(v) }

func pct(n, total int) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(total))
}

// Table1 renders the security-policy cipher table.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: OPC UA security policies (insecure and deprecated policies marked)",
		Header: []string{"Policy", "Sig. Hash", "Cert. Hash", "Key Len. [bit]", "A", "Status"},
	}
	for _, p := range uapolicy.All() {
		sig, cert, keys := "—", "—", "—"
		if !p.Insecure {
			sig = p.SignatureHash.String()
			var hs []string
			for _, h := range p.CertHashes {
				hs = append(hs, h.String())
			}
			cert = strings.Join(hs, ", ")
			keys = fmt.Sprintf("[%d; %d]", p.MinKeyBits, p.MaxKeyBits)
		}
		status := "recommended"
		if p.Insecure {
			status = "insecure"
		} else if p.Deprecated {
			status = "deprecated"
		}
		t.Rows = append(t.Rows, []string{p.Name, sig, cert, keys, p.Abbrev, status})
	}
	return t
}

// Figure2 renders hosts over time by manufacturer.
func Figure2(waves []*core.WaveAnalysis) *Table {
	t := &Table{
		Title: "Figure 2: OPC UA hosts found per measurement, by manufacturer",
		Header: []string{"Measurement", "Total", "Discovery", "Servers",
			"Bachmann", "Beckhoff", "Wago", "other", "follow-refs", "non-default port"},
	}
	for _, w := range waves {
		other := len(w.Servers) - w.ByVendor["Bachmann"] - w.ByVendor["Beckhoff"] - w.ByVendor["Wago"]
		t.Rows = append(t.Rows, []string{
			w.Date.Format("2006-01-02"),
			itoa(len(w.Records)),
			itoa(w.Discovery),
			itoa(len(w.Servers)),
			itoa(w.ByVendor["Bachmann"]),
			itoa(w.ByVendor["Beckhoff"]),
			itoa(w.ByVendor["Wago"]),
			itoa(other),
			itoa(w.ViaCounts["follow-reference"]),
			itoa(w.NonDefault),
		})
	}
	return t
}

// Figure3 renders security mode and policy support/least/most counts.
func Figure3(w *core.WaveAnalysis) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3: security modes and policies (%d servers)", len(w.Servers)),
		Header: []string{"Option", "Supported", "Least secure", "Most secure"},
	}
	for _, m := range []string{"None", "Sign", "SignAndEncrypt"} {
		t.Rows = append(t.Rows, []string{
			"mode " + m, itoa(w.ModeSupport[m]), itoa(w.ModeLeast[m]), itoa(w.ModeMost[m]),
		})
	}
	for _, p := range uapolicy.All() {
		t.Rows = append(t.Rows, []string{
			"policy " + p.Abbrev + " (" + p.Name + ")",
			itoa(w.PolicySupport[p.Abbrev]),
			itoa(w.PolicyLeast[p.Abbrev]),
			itoa(w.PolicyMost[p.Abbrev]),
		})
	}
	n := len(w.Servers)
	t.Notes = append(t.Notes,
		fmt.Sprintf("servers with no security at all: %d (%s)", w.NoneOnly, pct(w.NoneOnly, n)),
		fmt.Sprintf("servers whose best policy is deprecated: %d (%s)", w.DeprecatedBest, pct(w.DeprecatedBest, n)),
		fmt.Sprintf("servers enforcing secure policies: %d (%.1f%%)", w.EnforceSecure, 100*float64(w.EnforceSecure)/float64(max(n, 1))),
	)
	return t
}

// Figure4 renders certificate conformance per announced policy.
func Figure4(w *core.WaveAnalysis) *Table {
	t := &Table{
		Title:  "Figure 4: certificates implementing announced policies (hash/key-length conformance)",
		Header: []string{"Policy", "Certs", "Conformant", "Too weak", "Too strong", "Hash/keylen breakdown"},
	}
	for _, p := range uapolicy.All() {
		conf := w.Conformance[p.Abbrev]
		matrix := w.CertMatrix[p.Abbrev]
		total := conf[uapolicy.CertConformant] + conf[uapolicy.CertTooWeak] + conf[uapolicy.CertTooStrong]
		var keys []string
		for k := range matrix {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s:%d", k, matrix[k]))
		}
		t.Rows = append(t.Rows, []string{
			p.Abbrev, itoa(total),
			itoa(conf[uapolicy.CertConformant]),
			itoa(conf[uapolicy.CertTooWeak]),
			itoa(conf[uapolicy.CertTooStrong]),
			strings.Join(parts, " "),
		})
	}
	return t
}

// Figure5 renders certificate reuse clusters.
func Figure5(w *core.WaveAnalysis) *Table {
	t := &Table{
		Title:  "Figure 5: certificates reused across hosts (>= 3 hosts)",
		Header: []string{"Certificate", "Hosts", "ASes", "Subject organization"},
	}
	clusters := w.ReuseClustersAtLeast(3)
	for i, c := range clusters {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("#%d (%s…)", i+1, c.Thumbprint[:12]),
			itoa(c.Hosts), itoa(c.ASes), c.SubjectOrg,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d certificates on >=3 hosts", len(clusters)),
		fmt.Sprintf("weak-key findings (batch GCD over all moduli): %d", w.WeakKeyFindings),
	)
	return t
}

// Figure6 renders the authentication overview.
func Figure6(w *core.WaveAnalysis) *Table {
	n := len(w.Servers)
	t := &Table{
		Title:  "Figure 6: authentication methods, accessibility and classification",
		Header: []string{"Metric", "Hosts", "Share"},
	}
	rows := [][2]interface{}{
		{"servers total", n},
		{"anonymous access advertised", w.Anonymous},
		{"anonymous + secure channel ok", w.AnonSCOK},
		{"publicly accessible (session ok)", w.Accessible},
		{"rejected our client certificate", w.RejectedSC},
	}
	for _, r := range rows {
		v := r[1].(int)
		t.Rows = append(t.Rows, []string{r[0].(string), itoa(v), pct(v, n)})
	}
	return t
}

// Figure7 renders the exposure survival functions at the paper's
// headline thresholds.
func Figure7(w *core.WaveAnalysis) *Table {
	read, write, exec := w.ExposureCDFs()
	t := &Table{
		Title:  fmt.Sprintf("Figure 7: anonymous address-space exposure on %d accessible hosts", read.Len()),
		Header: []string{"Access", "Threshold (frac. of nodes)", "Frac. of hosts above"},
	}
	t.Rows = append(t.Rows,
		[]string{"Readable", ">0.97", fmt.Sprintf("%.2f", read.Survival(0.97))},
		[]string{"Writable", ">0.10", fmt.Sprintf("%.2f", write.Survival(0.10))},
		[]string{"Executable", ">0.86", fmt.Sprintf("%.2f", exec.Survival(0.86))},
	)
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
		t.Rows = append(t.Rows, []string{
			"read/write/exec quantile", fmt.Sprintf("q=%.2f", q),
			fmt.Sprintf("%.2f / %.2f / %.2f",
				read.Quantile(q), write.Quantile(q), exec.Quantile(q)),
		})
	}
	return t
}

// Table2 renders the authentication matrix.
func Table2(w *core.WaveAnalysis) *Table {
	t := &Table{
		Title: "Table 2: authentication types vs. accessibility",
		Header: []string{"anon", "cred", "cert", "token",
			"Production", "Test", "Unclassified", "Rej. auth", "Rej. SC", "Total"},
	}
	var combos []string
	for k := range w.AuthMatrix {
		combos = append(combos, k)
	}
	sort.Slice(combos, func(i, j int) bool {
		return w.AuthMatrix[combos[i]].Total() > w.AuthMatrix[combos[j]].Total()
	})
	mark := func(c *core.AuthCell, name string) string {
		for _, tk := range c.Tokens {
			if tk == name {
				return "x"
			}
		}
		return ""
	}
	var tot core.AuthCell
	for _, combo := range combos {
		c := w.AuthMatrix[combo]
		t.Rows = append(t.Rows, []string{
			mark(c, "Anonymous"), mark(c, "UserName"), mark(c, "Certificate"), mark(c, "IssuedToken"),
			itoa(c.Production), itoa(c.Test), itoa(c.Unclassified),
			itoa(c.RejectedAuth), itoa(c.RejectedSC), itoa(c.Total()),
		})
		tot.Production += c.Production
		tot.Test += c.Test
		tot.Unclassified += c.Unclassified
		tot.RejectedAuth += c.RejectedAuth
		tot.RejectedSC += c.RejectedSC
	}
	t.Rows = append(t.Rows, []string{"", "", "", "total",
		itoa(tot.Production), itoa(tot.Test), itoa(tot.Unclassified),
		itoa(tot.RejectedAuth), itoa(tot.RejectedSC), itoa(tot.Total()),
	})
	return t
}

// Figure8 renders deficit classes split by manufacturer or AS.
func Figure8(w *core.WaveAnalysis, byAS bool) *Table {
	title := "Figure 8a: configuration deficits by manufacturer"
	if byAS {
		title = "Figure 8b: configuration deficits by autonomous system"
	}
	t := &Table{
		Title:  title,
		Header: []string{"Deficit", "Hosts", "Top groups"},
	}
	for _, d := range core.Deficits() {
		var parts []string
		if byAS {
			type kv struct {
				asn int
				n   int
			}
			var list []kv
			for asn, n := range w.DeficitByAS[d] {
				list = append(list, kv{asn, n})
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].n != list[j].n {
					return list[i].n > list[j].n
				}
				return list[i].asn < list[j].asn
			})
			for i, e := range list {
				if i >= 5 {
					parts = append(parts, fmt.Sprintf("+%d more", len(list)-5))
					break
				}
				parts = append(parts, fmt.Sprintf("AS%d:%d", e.asn, e.n))
			}
		} else {
			type kv struct {
				name string
				n    int
			}
			var list []kv
			for name, n := range w.DeficitByVendor[d] {
				list = append(list, kv{name, n})
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].n != list[j].n {
					return list[i].n > list[j].n
				}
				return list[i].name < list[j].name
			})
			for i, e := range list {
				if i >= 5 {
					parts = append(parts, fmt.Sprintf("+%d more", len(list)-5))
					break
				}
				parts = append(parts, fmt.Sprintf("%s:%d", e.name, e.n))
			}
		}
		t.Rows = append(t.Rows, []string{d.String(), itoa(w.DeficitTotals[d]), strings.Join(parts, " ")})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("deficient servers overall: %d (%.0f%%)",
		w.Deficient, 100*w.DeficientFrac))
	return t
}

// Section55 renders the longitudinal findings.
func Section55(l *core.Longitudinal) *Table {
	t := &Table{
		Title:  "Section 5.5: longitudinal analysis",
		Header: []string{"Metric", "Value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("measurements", itoa(len(l.Waves)))
	add("deficient share mean", fmt.Sprintf("%.1f%%", 100*l.DeficientSummary.Mean))
	add("deficient share std", fmt.Sprintf("%.1f%%", 100*l.DeficientSummary.Std))
	add("deficient share min/max", fmt.Sprintf("%.1f%% / %.1f%%",
		100*l.DeficientSummary.Min, 100*l.DeficientSummary.Max))
	add("certificate renewals (static addresses)", itoa(len(l.Renewals)))
	add("renewals with software update", itoa(l.SoftwareUpdates))
	add("renewals upgrading SHA-1 to SHA-256", itoa(l.UpgradedSHA1))
	add("renewals downgrading to SHA-1", itoa(l.Downgraded))
	add("distinct certificates over campaign", itoa(l.TotalCerts))
	add("SHA-1 certificates", itoa(l.SHA1Certs))
	add("SHA-1 certs created after 2017 deprecation", itoa(l.SHA1Post2017))
	add("SHA-1 certs created since 2019", itoa(l.SHA1Post2019))
	var growth []string
	for _, n := range l.ReuseGrowth {
		growth = append(growth, itoa(n))
	}
	add("same-manufacturer reused-cert devices per wave", strings.Join(growth, " "))
	return t
}

// All renders every figure/table for a campaign.
func All(waves []*core.WaveAnalysis, l *core.Longitudinal) []*Table {
	last := waves[len(waves)-1]
	return []*Table{
		Table1(),
		Figure2(waves),
		Figure3(last),
		Figure4(last),
		Figure5(last),
		Figure6(last),
		Figure7(last),
		Table2(last),
		Figure8(last, false),
		Figure8(last, true),
		Section55(l),
	}
}
