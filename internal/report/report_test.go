package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/uapolicy"
)

func sampleWave(t *testing.T) *core.WaveAnalysis {
	t.Helper()
	date := time.Date(2020, 8, 30, 0, 0, 0, 0, time.UTC)
	recs := []*dataset.HostRecord{
		{
			Wave: 7, Date: date, Address: "1.1.1.1:4840", ASN: 64600,
			ReachedOPCUA: true, AppURI: "urn:bachmann.info:M1:1",
			ApplicationType: "Server",
			Endpoints: []dataset.EndpointRecord{{
				URL: "opc.tcp://1.1.1.1:4840", Mode: "None",
				PolicyURI: uapolicy.URINone, TokenTypes: []string{"Anonymous"},
			}},
			AnonOffered: true, AnonAttempted: true, AnonOK: true,
			Namespaces: []string{"http://opcfoundation.org/UA/"},
			Variables:  10, Readable: 10, Writable: 2, Methods: 2, Executable: 2,
		},
		{
			Wave: 7, Date: date, Address: "1.1.1.2:4840", ASN: 64601,
			ReachedOPCUA: true, AppURI: "urn:wago.com:codesys:2",
			ApplicationType: "Server",
			Endpoints: []dataset.EndpointRecord{{
				URL: "opc.tcp://1.1.1.2:4840", Mode: "SignAndEncrypt",
				PolicyURI: uapolicy.URIBasic256Sha256, TokenTypes: []string{"UserName"},
			}},
		},
	}
	return core.AnalyzeWave(7, date, recs)
}

func TestTable1Shape(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	text := tbl.Render()
	for _, want := range []string{"Basic256Sha256", "deprecated", "insecure", "recommended"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFigureRenderersProduceContent(t *testing.T) {
	w := sampleWave(t)
	long := core.AnalyzeLongitudinal([]*core.WaveAnalysis{w})
	tables := All([]*core.WaveAnalysis{w}, long)
	if len(tables) != 11 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		if tbl.Title == "" || len(tbl.Header) == 0 {
			t.Errorf("table %+v missing title/header", tbl)
		}
		text := tbl.Render()
		if !strings.Contains(text, tbl.Header[0]) {
			t.Errorf("render of %q missing header", tbl.Title)
		}
	}
}

func TestFigure3Numbers(t *testing.T) {
	w := sampleWave(t)
	tbl := Figure3(w)
	text := tbl.Render()
	if !strings.Contains(text, "mode None") || !strings.Contains(text, "policy S2") {
		t.Errorf("Figure 3 rows missing:\n%s", text)
	}
	if !strings.Contains(text, "no security at all: 1") {
		t.Errorf("takeaway missing:\n%s", text)
	}
}

func TestTable2Totals(t *testing.T) {
	w := sampleWave(t)
	tbl := Table2(w)
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[3] != "total" || last[9] != "2" {
		t.Errorf("totals row = %v", last)
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := &Table{
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{`with,comma`, `with"quote`}},
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("csv escaping wrong: %s", csv)
	}
}

func TestFigure8BothSplits(t *testing.T) {
	w := sampleWave(t)
	byVendor := Figure8(w, false).Render()
	byAS := Figure8(w, true).Render()
	if !strings.Contains(byVendor, "Bachmann") {
		t.Errorf("vendor split missing manufacturer:\n%s", byVendor)
	}
	if !strings.Contains(byAS, "AS64600") {
		t.Errorf("AS split missing ASN:\n%s", byAS)
	}
}
