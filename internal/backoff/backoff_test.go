package backoff

import (
	"testing"
	"time"
)

// TestEnvelope: the nth delay (since the last Reset) lies in
// [d/2, d], d = min(Cap, Base<<n).
func TestEnvelope(t *testing.T) {
	base, cap := 100*time.Millisecond, 2*time.Second
	b := New(7, base, cap)
	for n := 0; n < 20; n++ {
		d := cap
		if n < 62 {
			if grown := base << uint(n); grown < cap && grown > 0 {
				d = grown
			}
		}
		got := b.Next()
		if got < d/2 || got > d {
			t.Errorf("delay %d = %v, want within [%v, %v]", n, got, d/2, d)
		}
	}
}

// TestDeterministicAcrossInstances: same seed, same sequence.
func TestDeterministicAcrossInstances(t *testing.T) {
	a, b := New(42, 0, 0), New(42, 0, 0)
	for i := 0; i < 50; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("delay %d: %v vs %v under one seed", i, da, db)
		}
	}
	c := New(43, 0, 0)
	same := true
	a.Reset()
	a = New(42, 0, 0)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical sequences")
	}
}

// TestResetRewindsExponentNotJitter: after Reset the envelope restarts
// at Base, but the jitter stream does not replay — two schedules that
// reset at different points diverge.
func TestResetRewindsExponentNotJitter(t *testing.T) {
	b := New(1, 100*time.Millisecond, 10*time.Second)
	for i := 0; i < 5; i++ {
		b.Next()
	}
	if b.Attempt() != 5 {
		t.Fatalf("Attempt = %d, want 5", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("Attempt after Reset = %d, want 0", b.Attempt())
	}
	first := b.Next()
	if first < 50*time.Millisecond || first > 100*time.Millisecond {
		t.Errorf("post-Reset delay %v outside first-attempt envelope", first)
	}
	fresh := New(1, 100*time.Millisecond, 10*time.Second)
	if fresh.Next() == first {
		t.Error("post-Reset delay replayed the jitter stream from the start")
	}
}

// TestDefaultsAndClamps: non-positive base/cap fall back to the
// defaults, cap below base is raised to base.
func TestDefaultsAndClamps(t *testing.T) {
	b := New(1, 0, 0)
	if d := b.Next(); d < DefaultBase/2 || d > DefaultBase {
		t.Errorf("default first delay %v outside [%v, %v]", d, DefaultBase/2, DefaultBase)
	}
	b = New(1, time.Second, time.Millisecond)
	if d := b.Next(); d < time.Second/2 || d > time.Second {
		t.Errorf("cap<base first delay %v outside [%v, %v]", d, time.Second/2, time.Second)
	}
}
