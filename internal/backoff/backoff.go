// Package backoff is the repository's one deterministic retry
// schedule: exponential growth with seeded jitter. It started life
// inside the shard fabric (PR 8); the scanner's probe-retry budget
// (PR 9) needs the identical envelope but sits below fabric in the
// import graph (fabric → dataset → scanner), so the implementation
// lives here and fabric re-exports it unchanged.
package backoff

import (
	"math/rand"
	"time"
)

// Backoff is a deterministic retry schedule: exponential growth from
// Base to Cap with seeded jitter drawn from its own rand.Rand — never
// the global source — so the delay sequence is a pure function of
// (seed, call sequence) and identical across processes (the studyvet
// determinism rules hold; the analyzer runs over this package). Jitter
// keeps a fleet of retriers restarted by one event from thundering
// back in lockstep; determinism keeps test runs and incident
// reconstructions exact.
//
// The nth delay (0-based, since the last Reset) is uniformly drawn
// from [d/2, d] where d = min(Cap, Base<<n). Reset rewinds the
// exponent after a success; the jitter stream deliberately does NOT
// rewind — position in the stream encodes retry history, and replaying
// it would synchronize two retriers that happened to reset together.
type Backoff struct {
	rng     *rand.Rand
	base    time.Duration
	cap     time.Duration
	attempt int
}

// Default retry shape for worker dial/reconnect loops.
const (
	DefaultBase = 100 * time.Millisecond
	DefaultCap  = 10 * time.Second
)

// New returns a schedule seeded for determinism. Non-positive base/cap
// fall back to the defaults; cap below base is raised to base.
func New(seed int64, base, cap time.Duration) *Backoff {
	if base <= 0 {
		base = DefaultBase
	}
	if cap <= 0 {
		cap = DefaultCap
	}
	if cap < base {
		cap = base
	}
	return &Backoff{
		rng:  rand.New(rand.NewSource(seed)),
		base: base,
		cap:  cap,
	}
}

// Next returns the next delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.cap
	// Guard the shift: past 62 doublings the duration has long been
	// capped and the shift would overflow.
	if b.attempt < 62 {
		if grown := b.base << uint(b.attempt); grown < b.cap && grown > 0 {
			d = grown
		}
	}
	b.attempt++
	half := int64(d / 2)
	return time.Duration(half + b.rng.Int63n(half+1))
}

// Reset rewinds the exponent to Base after a successful attempt. The
// jitter stream keeps advancing (see type doc).
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many delays were handed out since the last Reset.
func (b *Backoff) Attempt() int { return b.attempt }
