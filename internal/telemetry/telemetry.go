// Package telemetry is the campaign's observability substrate: a
// stdlib-only, concurrency-safe metrics registry (atomic counters,
// gauges, high-water gauges, fixed-bucket latency histograms, labeled
// per-wave/per-shard scopes), point-in-time snapshots streamable as
// NDJSON, a bounded span-style exchange tracer, and the serialized
// progress writer.
//
// Zero-cost-when-disabled contract (DESIGN.md §7): a nil *Registry is
// the disabled state, and every instrument it hands out is then nil
// too. Every instrument method is safe on a nil receiver and does
// nothing beyond one pointer check — no allocation, no clock read, no
// atomic — so hot paths hold instrument pointers unconditionally and
// never branch on "is telemetry on". The //studyvet:hotpath analyzer
// plus testing.AllocsPerRun budgets pin this statically and
// dynamically.
//
// Observers never mutate campaign state: the registry is strictly
// write-only from the instrumented code's perspective and read-only
// from snapshotters'. Wall-clock reads are confined to NowNs, the
// sanctioned exemption from the deterministic path's no-clock rule —
// telemetry measures the run, it never feeds the dataset, which is why
// a campaign with telemetry enabled is byte-identical to one without.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NowNs is telemetry's only clock: wall time in nanoseconds since the
// Unix epoch. Instruments call it exclusively after their nil checks,
// so the disabled path never reads the clock.
//
//studyvet:entropy-exempt — telemetry clock: measures the run, never feeds the dataset
func NowNs() int64 { return time.Now().UnixNano() }

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// StartNs returns the current clock for a later AddSince, or 0 without
// reading the clock when the counter is nil.
func (c *Counter) StartNs() int64 {
	if c == nil {
		return 0
	}
	return NowNs()
}

// AddSince accumulates the nanoseconds elapsed since startNs (a prior
// StartNs result) — the shape used for cumulative blocked/busy time.
func (c *Counter) AddSince(startNs int64) {
	if c == nil {
		return
	}
	c.v.Add(uint64(NowNs() - startNs))
}

// Load returns the current value (0 for nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, buffer fill).
// Gauges sum across shards when snapshots merge. A nil *Gauge is a
// no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MaxGauge retains the maximum value ever recorded (high-water marks).
// MaxGauges take the max across shards when snapshots merge. A nil
// *MaxGauge is a no-op.
type MaxGauge struct{ v atomic.Int64 }

// Record raises the high-water mark to v if v exceeds it.
func (m *MaxGauge) Record(v int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if v <= cur || m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark (0 for nil).
func (m *MaxGauge) Load() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// DefaultLatencyBoundsNs are the fixed histogram bucket upper bounds
// (nanoseconds): a 1-3-10 ladder from 100µs to 30s, sized for simulated
// handshake RTTs and queue waits. The final implicit bucket is +Inf.
var DefaultLatencyBoundsNs = []int64{
	100e3, 300e3, 1e6, 3e6, 10e6, 30e6, 100e6, 300e6, 1e9, 3e9, 10e9, 30e9,
}

// Histogram is a fixed-bucket latency histogram: cumulative count and
// sum plus one atomic counter per bucket. Bounds are fixed at creation;
// Observe never allocates. A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []int64 // ascending upper bounds, ns
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total ns
}

// NewHistogram builds a histogram with the given ascending bucket
// upper bounds (nil = DefaultLatencyBoundsNs).
func NewHistogram(boundsNs []int64) *Histogram {
	if boundsNs == nil {
		boundsNs = DefaultLatencyBoundsNs
	}
	return &Histogram{bounds: boundsNs, buckets: make([]atomic.Uint64, len(boundsNs)+1)}
}

// ObserveNs records one duration.
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return ns <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(ns))
}

// StartNs returns the current clock for a later ObserveSince, or 0
// without reading the clock when the histogram is nil.
func (h *Histogram) StartNs() int64 {
	if h == nil {
		return 0
	}
	return NowNs()
}

// ObserveSince records the time elapsed since startNs (a prior StartNs
// result).
func (h *Histogram) ObserveSince(startNs int64) {
	if h == nil {
		return
	}
	h.ObserveNs(NowNs() - startNs)
}

// snapshot copies the histogram's counters.
func (h *Histogram) snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Count:    h.count.Load(),
		SumNs:    h.sum.Load(),
		BoundsNs: h.bounds,
		Buckets:  make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// ChannelMetrics bundles the secure-channel handshake instruments of
// one (policy, mode) scope. uasc.Open drives Begin/Done around the OPN
// round trip; the scanner owns classification counters it can only
// decide itself (certificate rejections). A nil *ChannelMetrics is a
// no-op.
type ChannelMetrics struct {
	Attempts     *Counter
	OK           *Counter
	Failed       *Counter
	CertRejected *Counter
	HandshakeNs  *Histogram
}

// Begin counts one attempt and starts the handshake timer (0 and no
// clock read when nil).
func (m *ChannelMetrics) Begin() int64 {
	if m == nil {
		return 0
	}
	m.Attempts.Inc()
	return NowNs()
}

// Done records the handshake latency and outcome.
func (m *ChannelMetrics) Done(startNs int64, ok bool) {
	if m == nil {
		return
	}
	m.HandshakeNs.ObserveNs(NowNs() - startNs)
	if ok {
		m.OK.Inc()
	} else {
		m.Failed.Inc()
	}
}

// Registry is a labeled metrics registry. Instruments are created on
// first lookup (mutex-guarded) and updated lock-free thereafter;
// looking a name up twice returns the same instrument. Scope derives
// label-qualified views (per wave, per shard) sharing one backing
// store. A nil *Registry is the disabled state: every method is a
// no-op returning nil instruments.
type Registry struct {
	core   *regCore
	labels string // `k="v",k2="v2"` in scope order, "" at the root
}

type regCore struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	maxes    map[string]*MaxGauge
	hists    map[string]*Histogram
	sources  map[string]func(*Snapshot)
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{core: &regCore{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		maxes:    map[string]*MaxGauge{},
		hists:    map[string]*Histogram{},
		sources:  map[string]func(*Snapshot){},
	}}
}

// Scope returns a view whose instruments carry the additional
// key="value" label (per-wave, per-shard, per-policy scopes). Scoping
// a nil registry stays nil.
func (r *Registry) Scope(key, value string) *Registry {
	if r == nil {
		return nil
	}
	label := key + `="` + value + `"`
	if r.labels != "" {
		label = r.labels + "," + label
	}
	return &Registry{core: r.core, labels: label}
}

// qualify builds the full metric identity: name{labels}.
func (r *Registry) qualify(name string) string {
	if r.labels == "" {
		return name
	}
	return name + "{" + r.labels + "}"
}

// Counter returns (creating if needed) the named counter in this
// scope, or nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	key := r.qualify(name)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.counters[key]; ok {
		return v
	}
	v := &Counter{}
	c.counters[key] = v
	return v
}

// Gauge returns (creating if needed) the named gauge in this scope, or
// nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	key := r.qualify(name)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.gauges[key]; ok {
		return v
	}
	v := &Gauge{}
	c.gauges[key] = v
	return v
}

// MaxGauge returns (creating if needed) the named high-water gauge in
// this scope, or nil on a nil registry.
func (r *Registry) MaxGauge(name string) *MaxGauge {
	if r == nil {
		return nil
	}
	key := r.qualify(name)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.maxes[key]; ok {
		return v
	}
	v := &MaxGauge{}
	c.maxes[key] = v
	return v
}

// Histogram returns (creating if needed) the named latency histogram
// (DefaultLatencyBoundsNs buckets) in this scope, or nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	key := r.qualify(name)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.hists[key]; ok {
		return v
	}
	v := NewHistogram(nil)
	c.hists[key] = v
	return v
}

// SetSource registers (or replaces) a named external snapshot source:
// fn runs during Snapshot and may fold foreign counters in — the hook
// that re-exports the uarsa engine's hit/miss/evict counters through
// the registry. No-op on a nil registry.
func (r *Registry) SetSource(name string, fn func(*Snapshot)) {
	if r == nil {
		return
	}
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	r.core.sources[name] = fn
}

// Snapshot captures every instrument's current value plus the external
// sources' contributions. Nil registries snapshot to an empty,
// timestamped snapshot. Safe to call concurrently with instrument
// updates: counters are read atomically (the snapshot is per-instrument
// consistent, not globally serialized).
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	if r == nil {
		return s
	}
	c := r.core
	c.mu.Lock()
	for k, v := range c.counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range c.gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range c.maxes {
		s.Max[k] = v.Load()
	}
	for k, v := range c.hists {
		s.Histograms[k] = v.snapshot()
	}
	sources := make([]func(*Snapshot), 0, len(c.sources))
	names := make([]string, 0, len(c.sources))
	for name := range c.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sources = append(sources, c.sources[name])
	}
	c.mu.Unlock()
	// Sources run outside the registry lock: they may call Stats() on
	// engines that take their own locks.
	for _, fn := range sources {
		fn(s)
	}
	return s
}

// baseName strips the {labels} qualifier from a full metric key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}
