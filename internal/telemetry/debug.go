package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"sync"
)

var (
	debugMu  sync.Mutex
	debugVar *expvar.Map
)

// ServeDebug starts an HTTP listener on addr exposing the registry as
// the expvar "telemetry" variable (a live Snapshot) alongside the
// stdlib /debug/pprof endpoints — the live-campaign escape hatch; the
// snapshot NDJSON stream remains the canonical record. Returns the
// bound address (addr may use port 0). The listener lives until the
// process exits; repeat calls rebind the published registry.
func ServeDebug(addr string, reg *Registry) (string, error) {
	debugMu.Lock()
	if debugVar == nil {
		debugVar = expvar.NewMap("telemetry")
	}
	debugVar.Init()
	debugVar.Set("snapshot", snapshotVar{reg})
	debugMu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, nil) // DefaultServeMux: /debug/vars + /debug/pprof
	}()
	return ln.Addr().String(), nil
}

// snapshotVar renders a fresh registry snapshot on every expvar read.
type snapshotVar struct{ reg *Registry }

func (v snapshotVar) String() string {
	b, err := json.Marshal(v.reg.Snapshot())
	if err != nil {
		return `{}`
	}
	return string(b)
}
