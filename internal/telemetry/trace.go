package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Span is one timed phase of an exchange (open, handshake, session,
// close). StartUnixNs/DurNs are wall-clock observations and therefore
// excluded from any determinism contract; the span *sequence* for a
// given (seed, wave, address) is deterministic.
type Span struct {
	Name        string `json:"name"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
	Err         string `json:"err,omitempty"`
}

// Exchange is the span trace of one grab: everything that happened to
// one address in one wave, under a deterministic ID.
type Exchange struct {
	ID      uint64 `json:"id"`
	Wave    int    `json:"wave"`
	Address string `json:"address"`
	Spans   []Span `json:"spans,omitempty"`
}

// ExchangeID derives the deterministic exchange identity from
// (seed, wave, address) via FNV-1a 64: two runs of the same campaign
// trace the same exchange under the same ID regardless of scheduling.
func ExchangeID(seed int64, wave int, address string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
	}
	for i := 0; i < 4; i++ {
		mix(byte(uint32(wave) >> (8 * i)))
	}
	for i := 0; i < len(address); i++ {
		mix(address[i])
	}
	return h
}

// NewExchange starts an exchange trace. A nil receiver everywhere
// downstream keeps disabled tracing at one pointer check.
func NewExchange(seed int64, wave int, address string) *Exchange {
	return &Exchange{ID: ExchangeID(seed, wave, address), Wave: wave, Address: address}
}

// Start returns the span clock (0 without a clock read when nil).
func (e *Exchange) Start() int64 {
	if e == nil {
		return 0
	}
	return NowNs()
}

// EndSpan appends a completed span. errStr is "" on success.
func (e *Exchange) EndSpan(name string, startNs int64, errStr string) {
	if e == nil {
		return
	}
	e.Spans = append(e.Spans, Span{
		Name:        name,
		StartUnixNs: startNs,
		DurNs:       NowNs() - startNs,
		Err:         errStr,
	})
}

// DefaultTraceCapacity bounds the tracer ring buffer.
const DefaultTraceCapacity = 4096

// Tracer is a bounded ring buffer of completed exchanges: the newest
// DefaultTraceCapacity (or the configured capacity) are retained, older
// ones overwritten. A nil *Tracer is a no-op.
type Tracer struct {
	mu    sync.Mutex
	ring  []*Exchange
	next  int
	total int
}

// NewTracer builds a tracer retaining up to capacity exchanges
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]*Exchange, capacity)}
}

// Record stores a completed exchange (no-op on nil tracer or nil
// exchange).
func (t *Tracer) Record(e *Exchange) {
	if t == nil || e == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Exchanges returns the retained exchanges, oldest first.
func (t *Tracer) Exchanges() []*Exchange {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Exchange, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		if e := t.ring[(t.next+i)%len(t.ring)]; e != nil {
			out = append(out, e)
		}
	}
	return out
}

// Total reports how many exchanges were ever recorded (including ones
// the ring has since overwritten).
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteNDJSON dumps the retained exchanges, one JSON object per line,
// oldest first.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Exchanges() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
