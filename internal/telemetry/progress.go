package telemetry

import "sync"

// SerializedProgressf wraps a progress callback in a mutex so status
// lines from concurrent waves and shards never interleave mid-line.
// The campaign runtime applies this to every user-supplied Progressf
// before fan-out; wrapping nil yields nil so the disabled path stays a
// single pointer check.
func SerializedProgressf(f func(format string, args ...any)) func(format string, args ...any) {
	if f == nil {
		return nil
	}
	var mu sync.Mutex
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		f(format, args...)
	}
}
