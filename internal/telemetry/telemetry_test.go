package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp pins the disabled contract: every method on a
// nil registry and its nil instruments is safe and does nothing.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Scope("wave", "1") != nil {
		t.Fatal("scoping a nil registry must stay nil")
	}
	c := r.Counter("x")
	g := r.Gauge("x")
	m := r.MaxGauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || m != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(7)
	c.AddSince(c.StartNs())
	if c.Load() != 0 {
		t.Fatal("nil counter loads 0")
	}
	if c.StartNs() != 0 {
		t.Fatal("nil counter StartNs must be 0 (no clock read)")
	}
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 {
		t.Fatal("nil gauge loads 0")
	}
	m.Record(9)
	if m.Load() != 0 {
		t.Fatal("nil max gauge loads 0")
	}
	h.ObserveNs(5)
	h.ObserveSince(h.StartNs())
	if h.StartNs() != 0 {
		t.Fatal("nil histogram StartNs must be 0 (no clock read)")
	}
	var cm *ChannelMetrics
	cm.Done(cm.Begin(), true)
	r.SetSource("x", func(*Snapshot) {})
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshots empty")
	}
	var e *Exchange
	e.EndSpan("open", e.Start(), "")
	var tr *Tracer
	tr.Record(e)
	if tr.Exchanges() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer is empty")
	}
	if SerializedProgressf(nil) != nil {
		t.Fatal("serializing a nil progressf must stay nil")
	}
}

// TestZeroAllocDisabled pins "no allocation on the disabled path"
// dynamically; the studyvet hotpath analyzer pins it statically.
func TestZeroAllocDisabled(t *testing.T) {
	var c *Counter
	var g *Gauge
	var m *MaxGauge
	var h *Histogram
	var cm *ChannelMetrics
	var e *Exchange
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		c.AddSince(c.StartNs())
		g.Set(1)
		m.Record(2)
		h.ObserveNs(10)
		h.ObserveSince(h.StartNs())
		cm.Done(cm.Begin(), false)
		e.EndSpan("x", e.Start(), "")
	}); n != 0 {
		t.Fatalf("disabled telemetry allocated %.1f/op, want 0", n)
	}
}

// TestZeroAllocEnabledHotOps pins that the enabled fast path (resolved
// instrument handles, no lookups) stays allocation-free too.
func TestZeroAllocEnabledHotOps(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	m := r.MaxGauge("m")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(4)
		m.Record(9)
		h.ObserveNs(1e6)
	}); n != 0 {
		t.Fatalf("enabled hot ops allocated %.1f/op, want 0", n)
	}
}

func TestRegistryScopesAndIdentity(t *testing.T) {
	r := New()
	a := r.Counter("hits")
	if a != r.Counter("hits") {
		t.Fatal("same name must yield the same counter")
	}
	w1 := r.Scope("wave", "1")
	w2 := r.Scope("wave", "2")
	w1.Counter("hits").Add(3)
	w2.Counter("hits").Add(5)
	a.Inc()
	nested := w1.Scope("shard", "0")
	nested.Counter("hits").Add(10)
	s := r.Snapshot()
	want := map[string]uint64{
		"hits":                     1,
		`hits{wave="1"}`:           3,
		`hits{wave="2"}`:           5,
		`hits{wave="1",shard="0"}`: 10,
	}
	if !reflect.DeepEqual(s.Counters, want) {
		t.Fatalf("counters = %v, want %v", s.Counters, want)
	}
	if got := s.CounterTotal("hits"); got != 19 {
		t.Fatalf("CounterTotal(hits) = %d, want 19", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{100, 1000})
	h.ObserveNs(50)   // bucket 0 (<=100)
	h.ObserveNs(100)  // bucket 0 (inclusive upper bound)
	h.ObserveNs(500)  // bucket 1
	h.ObserveNs(5000) // +Inf bucket
	h.ObserveNs(-7)   // clamped to 0, bucket 0
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := []uint64{3, 1, 1}; !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.SumNs != 50+100+500+5000 {
		t.Fatalf("sum = %d", s.SumNs)
	}
	if s.MeanNs() != int64(s.SumNs/5) {
		t.Fatalf("mean = %d", s.MeanNs())
	}
}

func TestMaxGaugeRaces(t *testing.T) {
	var m MaxGauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if m.Load() != 7999 {
		t.Fatalf("max = %d, want 7999", m.Load())
	}
}

func TestSnapshotSourcesRunSorted(t *testing.T) {
	r := New()
	var order []string
	r.SetSource("b", func(s *Snapshot) { order = append(order, "b"); s.SetCounter("src_b", 2) })
	r.SetSource("a", func(s *Snapshot) { order = append(order, "a"); s.SetGauge("src_a", 1) })
	s := r.Snapshot()
	if !reflect.DeepEqual(order, []string{"a", "b"}) {
		t.Fatalf("source order = %v", order)
	}
	if s.Counters["src_b"] != 2 || s.Gauges["src_a"] != 1 {
		t.Fatalf("source values missing: %v %v", s.Counters, s.Gauges)
	}
}

func TestMergeSnapshots(t *testing.T) {
	r1, r2 := New(), New()
	r1.Counter("n").Add(3)
	r2.Counter("n").Add(4)
	r1.Gauge("g").Set(10)
	r2.Gauge("g").Set(5)
	r1.MaxGauge("hw").Record(7)
	r2.MaxGauge("hw").Record(12)
	r1.Histogram("lat").ObserveNs(200e3)
	r2.Histogram("lat").ObserveNs(2e6)
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	s1.Shard = "0"
	s2.Shard = "1"
	total, err := MergeSnapshots("total", s1, s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if total.Counters["n"] != 7 || total.Gauges["g"] != 15 || total.Max["hw"] != 12 {
		t.Fatalf("merge: %v %v %v", total.Counters, total.Gauges, total.Max)
	}
	h := total.Histograms["lat"]
	if h.Count != 2 || h.SumNs != uint64(200e3+2e6) {
		t.Fatalf("merged histogram: %+v", h)
	}
	if !total.Final || total.Shard != "total" {
		t.Fatalf("merged snapshot metadata: %+v", total)
	}

	bad := &Snapshot{Histograms: map[string]*HistogramSnapshot{
		"lat": {BoundsNs: []int64{1, 2}, Buckets: []uint64{0, 0, 0}},
	}}
	if _, err := MergeSnapshots("total", s1, bad); err == nil {
		t.Fatal("mismatched histogram layouts must fail the merge")
	}
}

func TestSnapshotNDJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Add(1)
	r.Histogram("h").ObserveNs(3e6)
	s := r.Snapshot()
	s.Shard = "2"
	s.Final = true
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshots(strings.NewReader(buf.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d snapshots, want 2", len(got))
	}
	// omitempty drops empty maps, so compare populated fields.
	if got[0].UnixNs != s.UnixNs || got[0].Shard != s.Shard || !got[0].Final {
		t.Fatalf("round trip metadata mismatch: %+v", got[0])
	}
	if !reflect.DeepEqual(got[0].Counters, s.Counters) {
		t.Fatalf("round trip counters: %v != %v", got[0].Counters, s.Counters)
	}
	if !reflect.DeepEqual(got[0].Histograms["h"], s.Histograms["h"]) {
		t.Fatalf("round trip histogram: %+v != %+v", got[0].Histograms["h"], s.Histograms["h"])
	}
}

func TestExchangeIDDeterministic(t *testing.T) {
	a := ExchangeID(42, 3, "10.0.0.1:4840")
	b := ExchangeID(42, 3, "10.0.0.1:4840")
	if a != b {
		t.Fatal("exchange IDs must be deterministic")
	}
	if a == ExchangeID(42, 4, "10.0.0.1:4840") || a == ExchangeID(43, 3, "10.0.0.1:4840") ||
		a == ExchangeID(42, 3, "10.0.0.2:4840") {
		t.Fatal("exchange IDs must depend on seed, wave, and address")
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		e := NewExchange(1, 0, string(rune('a'+i)))
		e.EndSpan("open", e.Start(), "")
		tr.Record(e)
	}
	got := tr.Exchanges()
	if len(got) != 4 {
		t.Fatalf("ring retained %d, want 4", len(got))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if got[0].Address != "g" || got[3].Address != "j" {
		t.Fatalf("ring order wrong: %s..%s", got[0].Address, got[3].Address)
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("NDJSON lines = %d, want 4", lines)
	}
}

// TestRegistryConcurrent hammers lookups, updates, and snapshots from
// many goroutines; run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scope := r.Scope("wave", string(rune('0'+w%4)))
			c := scope.Counter("ops")
			h := scope.Histogram("lat")
			for i := 0; i < 500; i++ {
				c.Inc()
				h.ObserveNs(int64(i))
				scope.MaxGauge("hw").Record(int64(i))
				e := NewExchange(int64(w), i, "addr")
				e.EndSpan("open", e.Start(), "")
				tr.Record(e)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = tr.Exchanges()
		}
	}()
	wg.Wait()
	snapWG.Wait()
	s := r.Snapshot()
	if got := s.CounterTotal("ops"); got != 8*500 {
		t.Fatalf("ops total = %d, want %d", got, 8*500)
	}
}

func TestSerializedProgressf(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	f := SerializedProgressf(func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, format)
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); f("line %d", 1) }()
	}
	wg.Wait()
	if len(lines) != 16 {
		t.Fatalf("got %d lines, want 16", len(lines))
	}
}

func TestServeDebug(t *testing.T) {
	r := New()
	r.Counter("dbg").Add(3)
	addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("no bound address")
	}
}
