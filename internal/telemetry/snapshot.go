package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of a registry's instruments,
// serializable as one NDJSON line. Map keys are full metric identities
// (`name{k="v"}`); encoding/json sorts map keys, so the encoding of a
// given snapshot is deterministic.
type Snapshot struct {
	UnixNs     int64                         `json:"unix_ns"`
	Shard      string                        `json:"shard,omitempty"`
	Final      bool                          `json:"final,omitempty"`
	Counters   map[string]uint64             `json:"counters,omitempty"`
	Gauges     map[string]int64              `json:"gauges,omitempty"`
	Max        map[string]int64              `json:"max,omitempty"`
	Histograms map[string]*HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is a histogram's copied state. Buckets has one
// entry per bound plus the final +Inf bucket.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	SumNs    uint64   `json:"sum_ns"`
	BoundsNs []int64  `json:"bounds_ns"`
	Buckets  []uint64 `json:"buckets"`
}

// NewSnapshot returns an empty timestamped snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		UnixNs:     NowNs(),
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Max:        map[string]int64{},
		Histograms: map[string]*HistogramSnapshot{},
	}
}

// SetCounter records a counter value in the snapshot (used by external
// snapshot sources; overwrites any prior value for key).
func (s *Snapshot) SetCounter(key string, v uint64) { s.Counters[key] = v }

// SetGauge records a gauge value in the snapshot.
func (s *Snapshot) SetGauge(key string, v int64) { s.Gauges[key] = v }

// CounterTotal sums every counter whose base name (identity minus the
// {labels} qualifier) equals name — the cross-label rollup used for
// summary tables.
func (s *Snapshot) CounterTotal(name string) uint64 {
	var total uint64
	for k, v := range s.Counters {
		if baseName(k) == name {
			total += v
		}
	}
	return total
}

// MaxTotal returns the maximum across every MaxGauge sharing base name.
func (s *Snapshot) MaxTotal(name string) int64 {
	var max int64
	for k, v := range s.Max {
		if baseName(k) == name && v > max {
			max = v
		}
	}
	return max
}

// HistogramTotal merges every histogram sharing base name into one
// (nil when none match or bounds disagree).
func (s *Snapshot) HistogramTotal(name string) *HistogramSnapshot {
	var out *HistogramSnapshot
	keys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		if baseName(k) == name {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := s.Histograms[k]
		if out == nil {
			out = h.clone()
			continue
		}
		if !out.merge(h) {
			return nil
		}
	}
	return out
}

func (h *HistogramSnapshot) clone() *HistogramSnapshot {
	c := &HistogramSnapshot{Count: h.Count, SumNs: h.SumNs}
	c.BoundsNs = append([]int64(nil), h.BoundsNs...)
	c.Buckets = append([]uint64(nil), h.Buckets...)
	return c
}

// merge folds o into h; false when bucket layouts disagree.
func (h *HistogramSnapshot) merge(o *HistogramSnapshot) bool {
	if len(h.BoundsNs) != len(o.BoundsNs) || len(h.Buckets) != len(o.Buckets) {
		return false
	}
	for i, b := range o.BoundsNs {
		if h.BoundsNs[i] != b {
			return false
		}
	}
	h.Count += o.Count
	h.SumNs += o.SumNs
	for i, b := range o.Buckets {
		h.Buckets[i] += b
	}
	return true
}

// MeanNs returns the mean observation in nanoseconds (0 when empty).
func (h *HistogramSnapshot) MeanNs() int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return int64(h.SumNs / h.Count)
}

// MergeSnapshots folds per-shard snapshots into one total: counters,
// gauges, and histogram buckets sum; high-water marks take the max;
// the timestamp is the latest input's. Snapshots with mismatched
// histogram layouts under one key return an error rather than a
// silently partial merge.
func MergeSnapshots(shard string, snaps ...*Snapshot) (*Snapshot, error) {
	out := NewSnapshot()
	out.Shard = shard
	out.Final = true
	out.UnixNs = 0
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.UnixNs > out.UnixNs {
			out.UnixNs = s.UnixNs
		}
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		for k, v := range s.Max {
			if v > out.Max[k] {
				out.Max[k] = v
			}
		}
		for k, h := range s.Histograms {
			if cur, ok := out.Histograms[k]; ok {
				if !cur.merge(h) {
					return nil, fmt.Errorf("telemetry: merging %q: histogram bucket layouts disagree", k)
				}
			} else {
				out.Histograms[k] = h.clone()
			}
		}
	}
	return out, nil
}

// WriteSnapshot appends one snapshot as an NDJSON line.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadSnapshots parses an NDJSON snapshot stream (blank lines
// ignored).
func ReadSnapshots(r io.Reader) ([]*Snapshot, error) {
	var out []*Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		s := &Snapshot{}
		if err := json.Unmarshal(line, s); err != nil {
			return nil, fmt.Errorf("telemetry: parsing snapshot line %d: %w", len(out)+1, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
