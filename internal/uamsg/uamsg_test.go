package uamsg

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Encode(m)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%T): %v", m, err)
	}
	return got
}

func TestHelloAcknowledgeErrorRoundTrip(t *testing.T) {
	h := Hello{
		Version:        ProtocolVersion,
		ReceiveBufSize: 65536,
		SendBufSize:    65536,
		MaxMessageSize: 1 << 24,
		MaxChunkCount:  256,
		EndpointURL:    "opc.tcp://10.0.0.1:4840",
	}
	gotH, err := DecodeHello(h.Encode())
	if err != nil || gotH != h {
		t.Errorf("hello round trip: %+v, %v", gotH, err)
	}

	a := Acknowledge{Version: 0, ReceiveBufSize: 8192, SendBufSize: 8192,
		MaxMessageSize: 1 << 20, MaxChunkCount: 16}
	gotA, err := DecodeAcknowledge(a.Encode())
	if err != nil || gotA != a {
		t.Errorf("ack round trip: %+v, %v", gotA, err)
	}

	ce := ConnError{Code: uastatus.BadTcpMessageTypeInvalid, Reason: "bad type"}
	gotE, err := DecodeConnError(ce.Encode())
	if err != nil || gotE != ce {
		t.Errorf("error round trip: %+v, %v", gotE, err)
	}
	if gotE.Error() == "" {
		t.Error("ConnError.Error() empty")
	}
}

func TestGetEndpointsRoundTrip(t *testing.T) {
	req := &GetEndpointsRequest{
		Header: RequestHeader{
			Timestamp:     time.Date(2020, 8, 30, 1, 2, 3, 0, time.UTC),
			RequestHandle: 7,
			TimeoutHint:   10000,
		},
		EndpointURL: "opc.tcp://192.0.2.1:4840",
		LocaleIDs:   []string{"en"},
	}
	got := roundTrip(t, req).(*GetEndpointsRequest)
	if !reflect.DeepEqual(got, req) {
		t.Errorf("request: got %+v want %+v", got, req)
	}

	resp := &GetEndpointsResponse{
		Header: ResponseHeader{
			Timestamp:     time.Date(2020, 8, 30, 1, 2, 4, 0, time.UTC),
			RequestHandle: 7,
			ServiceResult: uastatus.Good,
		},
		Endpoints: []EndpointDescription{
			{
				EndpointURL: "opc.tcp://192.0.2.1:4840/ua",
				Server: ApplicationDescription{
					ApplicationURI:  "urn:bachmann:m1:0001",
					ProductURI:      "urn:bachmann.info:M1",
					ApplicationName: uatypes.NewText("M1 OPC UA Server"),
					ApplicationType: ApplicationServer,
					DiscoveryURLs:   []string{"opc.tcp://192.0.2.1:4840"},
				},
				ServerCertificate: []byte{1, 2, 3},
				SecurityMode:      SecurityModeSignAndEncrypt,
				SecurityPolicyURI: "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256",
				UserIdentityTokens: []UserTokenPolicy{
					{PolicyID: "anon", TokenType: UserTokenAnonymous},
					{PolicyID: "user", TokenType: UserTokenUserName,
						SecurityPolicyURI: "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256"},
				},
				TransportProfileURI: TransportProfileBinary,
				SecurityLevel:       3,
			},
			{
				EndpointURL:       "opc.tcp://192.0.2.1:4840/ua",
				SecurityMode:      SecurityModeNone,
				SecurityPolicyURI: "http://opcfoundation.org/UA/SecurityPolicy#None",
			},
		},
	}
	got2 := roundTrip(t, resp).(*GetEndpointsResponse)
	if !reflect.DeepEqual(got2, resp) {
		t.Errorf("response mismatch:\n got %+v\nwant %+v", got2, resp)
	}
}

func TestOpenSecureChannelRoundTrip(t *testing.T) {
	req := &OpenSecureChannelRequest{
		Header:            RequestHeader{RequestHandle: 1},
		RequestType:       SecurityTokenIssue,
		SecurityMode:      SecurityModeSign,
		ClientNonce:       bytes.Repeat([]byte{0xAA}, 32),
		RequestedLifetime: 3600000,
	}
	got := roundTrip(t, req).(*OpenSecureChannelRequest)
	if !reflect.DeepEqual(got, req) {
		t.Errorf("got %+v", got)
	}

	resp := &OpenSecureChannelResponse{
		Header: ResponseHeader{ServiceResult: uastatus.Good},
		SecurityToken: ChannelSecurityToken{
			ChannelID: 5, TokenID: 9,
			CreatedAt:       time.Date(2020, 2, 9, 0, 0, 0, 0, time.UTC),
			RevisedLifetime: 3600000,
		},
		ServerNonce: []byte{1, 2, 3, 4},
	}
	got2 := roundTrip(t, resp).(*OpenSecureChannelResponse)
	if !reflect.DeepEqual(got2, resp) {
		t.Errorf("got %+v", got2)
	}
}

func TestSessionServicesRoundTrip(t *testing.T) {
	cr := &CreateSessionRequest{
		Header:                  RequestHeader{RequestHandle: 2},
		ClientDescription:       ApplicationDescription{ApplicationURI: "urn:scanner"},
		EndpointURL:             "opc.tcp://192.0.2.9:4840",
		SessionName:             "scan",
		ClientNonce:             []byte{9, 9},
		RequestedSessionTimeout: 30000,
	}
	if got := roundTrip(t, cr).(*CreateSessionRequest); !reflect.DeepEqual(got, cr) {
		t.Errorf("CreateSessionRequest: got %+v", got)
	}

	resp := &CreateSessionResponse{
		Header:                ResponseHeader{ServiceResult: uastatus.Good},
		SessionID:             uatypes.NewNumericNodeID(1, 42),
		AuthenticationToken:   uatypes.NodeID{Type: uatypes.NodeIDTypeByteString, Namespace: 0, Bytes: []byte{7, 7}},
		RevisedSessionTimeout: 30000,
		ServerNonce:           []byte{1},
		ServerSignature:       SignatureData{Algorithm: "rsa-sha256", Signature: []byte{5}},
	}
	if got := roundTrip(t, resp).(*CreateSessionResponse); !reflect.DeepEqual(got, resp) {
		t.Errorf("CreateSessionResponse: got %+v", got)
	}

	ar := &ActivateSessionRequest{
		Header:            RequestHeader{AuthenticationToken: resp.AuthenticationToken},
		UserIdentityToken: EncodeIdentityToken(&AnonymousIdentityToken{PolicyID: "anon"}),
	}
	gotAR := roundTrip(t, ar).(*ActivateSessionRequest)
	tok := DecodeIdentityToken(gotAR.UserIdentityToken)
	anon, ok := tok.(*AnonymousIdentityToken)
	if !ok || anon.PolicyID != "anon" {
		t.Errorf("identity token: %#v", tok)
	}

	cs := &CloseSessionRequest{DeleteSubscriptions: true}
	if got := roundTrip(t, cs).(*CloseSessionRequest); !got.DeleteSubscriptions {
		t.Error("CloseSessionRequest lost flag")
	}
}

func TestIdentityTokenKinds(t *testing.T) {
	cases := []any{
		&AnonymousIdentityToken{PolicyID: "0"},
		&UserNameIdentityToken{PolicyID: "1", UserName: "op", Password: []byte("pw")},
		&X509IdentityToken{PolicyID: "2", CertificateData: []byte{0x30}},
		&IssuedIdentityToken{PolicyID: "3", TokenData: []byte{1}},
	}
	for _, tok := range cases {
		x := EncodeIdentityToken(tok)
		back := DecodeIdentityToken(x)
		if !reflect.DeepEqual(back, tok) {
			t.Errorf("token %T: got %#v", tok, back)
		}
	}
	if DecodeIdentityToken(uatypes.ExtensionObject{}) != nil {
		t.Error("empty extension object should decode to nil token")
	}
	if got := EncodeIdentityToken(42); got.Encoding != uatypes.ExtensionObjectEmpty {
		t.Error("unknown token type should encode empty")
	}
}

func TestBrowseReadCallRoundTrip(t *testing.T) {
	br := &BrowseRequest{
		Header:        RequestHeader{RequestHandle: 3},
		MaxReferences: 1000,
		NodesToBrowse: []BrowseDescription{{
			NodeID:          uatypes.NewNumericNodeID(0, IDObjectsFolder),
			Direction:       BrowseDirectionForward,
			ReferenceTypeID: uatypes.NewNumericNodeID(0, IDHierarchicalRefType),
			IncludeSubtypes: true,
			ResultMask:      63,
		}},
	}
	if got := roundTrip(t, br).(*BrowseRequest); !reflect.DeepEqual(got, br) {
		t.Errorf("BrowseRequest: got %+v", got)
	}

	bresp := &BrowseResponse{
		Header: ResponseHeader{ServiceResult: uastatus.Good},
		Results: []BrowseResult{{
			Status:            uastatus.Good,
			ContinuationPoint: []byte{0xCC},
			References: []ReferenceDescription{{
				ReferenceTypeID: uatypes.NewNumericNodeID(0, IDOrganizesRefType),
				IsForward:       true,
				NodeID:          uatypes.ExpandedNodeID{NodeID: uatypes.NewStringNodeID(2, "Tank1")},
				BrowseName:      uatypes.QualifiedName{NamespaceIndex: 2, Name: "Tank1"},
				DisplayName:     uatypes.NewText("Tank 1"),
				NodeClass:       NodeClassObject,
			}},
		}},
	}
	if got := roundTrip(t, bresp).(*BrowseResponse); !reflect.DeepEqual(got, bresp) {
		t.Errorf("BrowseResponse: got %+v", got)
	}

	bn := &BrowseNextRequest{ContinuationPoints: [][]byte{{0xCC}}}
	if got := roundTrip(t, bn).(*BrowseNextRequest); !reflect.DeepEqual(got, bn) {
		t.Errorf("BrowseNextRequest: got %+v", got)
	}

	rr := &ReadRequest{
		Timestamps: TimestampsNeither,
		NodesToRead: []ReadValueID{
			{NodeID: uatypes.NewStringNodeID(2, "rSetFillLevel"), AttributeID: AttrUserAccessLevel},
		},
	}
	if got := roundTrip(t, rr).(*ReadRequest); !reflect.DeepEqual(got, rr) {
		t.Errorf("ReadRequest: got %+v", got)
	}

	val := uatypes.Uint32Variant(3)
	rresp := &ReadResponse{
		Results: []uatypes.DataValue{{Value: &val, HasStatus: true, Status: uastatus.Good}},
	}
	if got := roundTrip(t, rresp).(*ReadResponse); !reflect.DeepEqual(got, rresp) {
		t.Errorf("ReadResponse: got %+v", got)
	}

	call := &CallRequest{MethodsToCall: []CallMethodRequest{{
		ObjectID:       uatypes.NewStringNodeID(2, "Server"),
		MethodID:       uatypes.NewStringNodeID(2, "AddEndpoint"),
		InputArguments: []uatypes.Variant{uatypes.StringVariant("opc.tcp://x")},
	}}}
	if got := roundTrip(t, call).(*CallRequest); !reflect.DeepEqual(got, call) {
		t.Errorf("CallRequest: got %+v", got)
	}

	cresp := &CallResponse{Results: []CallMethodResult{{
		Status:          uastatus.BadUserAccessDenied,
		InputArgResults: []uastatus.Code{uastatus.Good},
	}}}
	if got := roundTrip(t, cresp).(*CallResponse); !reflect.DeepEqual(got, cresp) {
		t.Errorf("CallResponse: got %+v", got)
	}
}

func TestFindServersRoundTrip(t *testing.T) {
	req := &FindServersRequest{EndpointURL: "opc.tcp://192.0.2.1:4840"}
	if got := roundTrip(t, req).(*FindServersRequest); !reflect.DeepEqual(got, req) {
		t.Errorf("got %+v", got)
	}
	resp := &FindServersResponse{Servers: []ApplicationDescription{{
		ApplicationURI:  "urn:opcfoundation:lds",
		ApplicationType: ApplicationDiscoveryServer,
		DiscoveryURLs:   []string{"opc.tcp://192.0.2.50:4841/server1"},
	}}}
	if got := roundTrip(t, resp).(*FindServersResponse); !reflect.DeepEqual(got, resp) {
		t.Errorf("got %+v", got)
	}
}

func TestServiceFaultRoundTrip(t *testing.T) {
	f := &ServiceFault{Header: ResponseHeader{ServiceResult: uastatus.BadServiceUnsupported}}
	got := roundTrip(t, f).(*ServiceFault)
	if got.Header.ServiceResult != uastatus.BadServiceUnsupported {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeUnknownTypeID(t *testing.T) {
	e := uatypes.NewEncoder(8)
	uatypes.NewNumericNodeID(0, 99999).Encode(e)
	if _, err := Decode(e.Bytes()); err == nil {
		t.Error("decoding unknown type id should fail")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("decoding empty buffer should fail")
	}
}

func TestDecodeTruncatedMessage(t *testing.T) {
	full := Encode(&GetEndpointsRequest{EndpointURL: "opc.tcp://h:4840"})
	for _, cut := range []int{5, len(full) / 2, len(full) - 1} {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("decoding %d/%d bytes should fail", cut, len(full))
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if SecurityModeSignAndEncrypt.String() != "SignAndEncrypt" ||
		SecurityModeNone.String() != "None" ||
		SecurityModeSign.String() != "Sign" {
		t.Error("security mode strings wrong")
	}
	if UserTokenAnonymous.String() != "Anonymous" || UserTokenIssuedToken.String() != "IssuedToken" {
		t.Error("token type strings wrong")
	}
	if NodeClassMethod.String() != "Method" || NodeClass(3).String() == "" {
		t.Error("node class strings wrong")
	}
	if MessageSecurityMode(9).String() != "Invalid(9)" {
		t.Error("invalid mode string wrong")
	}
}

func TestAccessLevelBits(t *testing.T) {
	a := AccessLevelRead | AccessLevelWrite
	if !a.CanRead() || !a.CanWrite() {
		t.Error("access level bits broken")
	}
	if AccessLevel(0).CanRead() {
		t.Error("zero access level should not read")
	}
}

func BenchmarkEncodeGetEndpointsResponse(b *testing.B) {
	resp := &GetEndpointsResponse{Endpoints: make([]EndpointDescription, 6)}
	for i := range resp.Endpoints {
		resp.Endpoints[i] = EndpointDescription{
			EndpointURL:       "opc.tcp://192.0.2.1:4840",
			SecurityPolicyURI: "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256",
			ServerCertificate: bytes.Repeat([]byte{0x30}, 900),
			UserIdentityTokens: []UserTokenPolicy{
				{PolicyID: "anon"}, {PolicyID: "user", TokenType: UserTokenUserName},
			},
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(resp)
	}
}

func BenchmarkDecodeGetEndpointsResponse(b *testing.B) {
	resp := &GetEndpointsResponse{Endpoints: make([]EndpointDescription, 6)}
	raw := Encode(resp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
