package uamsg

import (
	"fmt"

	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// UACP message type identifiers (first three header bytes).
const (
	MsgTypeHello        = "HEL"
	MsgTypeAcknowledge  = "ACK"
	MsgTypeError        = "ERR"
	MsgTypeReverseHello = "RHE"
	MsgTypeMessage      = "MSG"
	MsgTypeOpen         = "OPN"
	MsgTypeClose        = "CLO"
)

// Chunk type identifiers (fourth header byte).
const (
	ChunkFinal        = 'F'
	ChunkIntermediate = 'C'
	ChunkAbort        = 'A'
)

// ProtocolVersion is the UACP protocol version implemented here.
const ProtocolVersion = 0

// Hello opens a UACP connection and negotiates buffer limits
// (OPC 10000-6 §7.1.2.3).
type Hello struct {
	Version        uint32
	ReceiveBufSize uint32
	SendBufSize    uint32
	MaxMessageSize uint32
	MaxChunkCount  uint32
	EndpointURL    string
}

// Encode serializes the Hello body (without the message header).
func (h Hello) Encode() []byte {
	e := uatypes.NewEncoder(32 + len(h.EndpointURL))
	e.WriteUint32(h.Version)
	e.WriteUint32(h.ReceiveBufSize)
	e.WriteUint32(h.SendBufSize)
	e.WriteUint32(h.MaxMessageSize)
	e.WriteUint32(h.MaxChunkCount)
	e.WriteString(h.EndpointURL)
	return e.Bytes()
}

// DecodeHello parses a Hello body.
func DecodeHello(b []byte) (Hello, error) {
	d := uatypes.NewDecoder(b)
	h := Hello{
		Version:        d.ReadUint32(),
		ReceiveBufSize: d.ReadUint32(),
		SendBufSize:    d.ReadUint32(),
		MaxMessageSize: d.ReadUint32(),
		MaxChunkCount:  d.ReadUint32(),
		EndpointURL:    d.ReadString(),
	}
	return h, d.Err()
}

// Acknowledge answers a Hello with the server's revised limits.
type Acknowledge struct {
	Version        uint32
	ReceiveBufSize uint32
	SendBufSize    uint32
	MaxMessageSize uint32
	MaxChunkCount  uint32
}

// Encode serializes the Acknowledge body.
func (a Acknowledge) Encode() []byte {
	e := uatypes.NewEncoder(20)
	e.WriteUint32(a.Version)
	e.WriteUint32(a.ReceiveBufSize)
	e.WriteUint32(a.SendBufSize)
	e.WriteUint32(a.MaxMessageSize)
	e.WriteUint32(a.MaxChunkCount)
	return e.Bytes()
}

// DecodeAcknowledge parses an Acknowledge body.
func DecodeAcknowledge(b []byte) (Acknowledge, error) {
	d := uatypes.NewDecoder(b)
	a := Acknowledge{
		Version:        d.ReadUint32(),
		ReceiveBufSize: d.ReadUint32(),
		SendBufSize:    d.ReadUint32(),
		MaxMessageSize: d.ReadUint32(),
		MaxChunkCount:  d.ReadUint32(),
	}
	return a, d.Err()
}

// ConnError is the UACP error message sent before closing a connection.
type ConnError struct {
	Code   uastatus.Code
	Reason string
}

// Encode serializes the error body.
func (c ConnError) Encode() []byte {
	e := uatypes.NewEncoder(8 + len(c.Reason))
	e.WriteStatus(c.Code)
	e.WriteString(c.Reason)
	return e.Bytes()
}

// DecodeConnError parses an error body.
func DecodeConnError(b []byte) (ConnError, error) {
	d := uatypes.NewDecoder(b)
	c := ConnError{Code: d.ReadStatus(), Reason: d.ReadString()}
	return c, d.Err()
}

// Error implements the error interface.
func (c ConnError) Error() string {
	if c.Reason == "" {
		return fmt.Sprintf("uacp error: %v", c.Code)
	}
	return fmt.Sprintf("uacp error: %v (%s)", c.Code, c.Reason)
}
