package uamsg

import (
	"testing"

	"repro/internal/uatypes"
)

// Fuzz armor for the UACP and service-message decoders (DESIGN.md §9):
// the scanner feeds these functions bytes read straight off hostile
// connections, so arbitrary input must fail with an error — never a
// panic, never an allocation the input bytes didn't pay for.

// FuzzDecodeHello covers the first body a server-side listener parses.
func FuzzDecodeHello(f *testing.F) {
	f.Add(Hello{
		Version:        ProtocolVersion,
		ReceiveBufSize: 65535,
		SendBufSize:    65535,
		MaxMessageSize: 1 << 24,
		MaxChunkCount:  1600,
		EndpointURL:    "opc.tcp://192.0.2.1:4840/",
	}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f}) // huge buffer claim
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err == nil && len(h.EndpointURL) > len(data) {
			t.Errorf("EndpointURL length %d exceeds input length %d", len(h.EndpointURL), len(data))
		}
	})
}

// FuzzDecodeAcknowledge covers the client's first parse of server bytes.
func FuzzDecodeAcknowledge(f *testing.F) {
	f.Add(Acknowledge{
		Version:        ProtocolVersion,
		ReceiveBufSize: 65535,
		SendBufSize:    65535,
		MaxMessageSize: 1 << 24,
		MaxChunkCount:  1600,
	}.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeAcknowledge(data)
	})
}

// FuzzDecodeConnError covers the UACP error body, which hostile peers
// control completely.
func FuzzDecodeConnError(f *testing.F) {
	f.Add(ConnError{Code: 0x80820000, Reason: "closing"}.Encode())
	f.Add([]byte{0, 0, 0, 0x80, 0xff, 0xff, 0xff, 0x7f}) // huge reason claim
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeConnError(data)
		if err == nil && len(c.Reason) > len(data) {
			t.Errorf("Reason length %d exceeds input length %d", len(c.Reason), len(data))
		}
	})
}

// FuzzDecodeMessage covers the NodeID-dispatched service decoder — the
// largest attack surface, since it fans out into every registered
// request/response structure (endpoint tables, certificates, variants).
func FuzzDecodeMessage(f *testing.F) {
	f.Add(Encode(&GetEndpointsRequest{
		Header:      RequestHeader{RequestHandle: 1, TimeoutHint: 15000},
		EndpointURL: "opc.tcp://192.0.2.1:4840/",
	}))
	f.Add(Encode(&ServiceFault{}))
	// Valid dispatch id (GetEndpointsRequest) with a hostile body: a
	// null endpoint URL followed by two maximal array claims.
	e := uatypes.NewEncoder(64)
	uatypes.NewNumericNodeID(0, IDGetEndpointsRequest).Encode(e)
	e.WriteRaw(Encode(&GetEndpointsRequest{})[4:])
	f.Add(e.Bytes())
	f.Add([]byte{0x01, 0x00, 0xac, 0x01}) // four-byte id 428, empty body
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decode(data)
	})
}
