package uamsg

import (
	"fmt"

	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// Binary encoding node ids of the service messages (OPC 10000-6 Annex A).
const (
	IDServiceFault               = 397
	IDFindServersRequest         = 422
	IDFindServersResponse        = 425
	IDGetEndpointsRequest        = 428
	IDGetEndpointsResponse       = 431
	IDOpenSecureChannelRequest   = 446
	IDOpenSecureChannelResponse  = 449
	IDCloseSecureChannelRequest  = 452
	IDCloseSecureChannelResponse = 455
	IDCreateSessionRequest       = 461
	IDCreateSessionResponse      = 464
	IDActivateSessionRequest     = 467
	IDActivateSessionResponse    = 470
	IDCloseSessionRequest        = 473
	IDCloseSessionResponse       = 476
	IDBrowseRequest              = 527
	IDBrowseResponse             = 530
	IDBrowseNextRequest          = 533
	IDBrowseNextResponse         = 536
	IDReadRequest                = 631
	IDReadResponse               = 634
	IDCallRequest                = 710
	IDCallResponse               = 713
)

// Message is a service request or response body.
type Message interface {
	// TypeID returns the numeric binary-encoding node id.
	TypeID() uint32
	encodeBody(e *uatypes.Encoder)
}

// Request is a service request carrying a RequestHeader.
type Request interface {
	Message
	RequestHeader() *RequestHeader
}

// Response is a service response carrying a ResponseHeader.
type Response interface {
	Message
	ResponseHeader() *ResponseHeader
}

// Encode serializes a message as NodeID + body, the payload format of
// secure-channel messages.
func Encode(m Message) []byte {
	e := uatypes.NewEncoder(256)
	EncodeTo(e, m)
	return e.Bytes()
}

// EncodeTo serializes a message into an existing encoder, letting hot
// paths reuse pooled buffers (uatypes.AcquireEncoder) instead of
// allocating one per message like Encode.
func EncodeTo(e *uatypes.Encoder, m Message) {
	uatypes.NewNumericNodeID(0, m.TypeID()).Encode(e)
	m.encodeBody(e)
}

// PreEncodedResponse is a service response whose body after the
// ResponseHeader was encoded ahead of time. Simulated servers use it to
// serve per-wave-immutable payloads (endpoint tables with embedded
// certificates, discovery listings) from cached bytes while the header
// — timestamp and request handle — stays fresh per request. The wire
// encoding is byte-identical to encoding the equivalent structured
// response.
type PreEncodedResponse struct {
	ID     uint32 // numeric binary-encoding node id of the response type
	Header ResponseHeader
	Suffix []byte // encoded body after the header; must not be mutated
}

// TypeID implements Message.
func (m *PreEncodedResponse) TypeID() uint32 { return m.ID }

// ResponseHeader implements Response.
func (m *PreEncodedResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *PreEncodedResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteRaw(m.Suffix)
}

// EncodeEndpointsArray returns the wire encoding of an
// EndpointDescription array — the cacheable suffix of a
// GetEndpointsResponse.
func EncodeEndpointsArray(eps []EndpointDescription) []byte {
	e := uatypes.NewEncoder(512)
	writeEndpointArray(e, eps)
	return e.Bytes()
}

// EncodeServersArray returns the wire encoding of an
// ApplicationDescription array — the cacheable suffix of a
// FindServersResponse.
func EncodeServersArray(servers []ApplicationDescription) []byte {
	e := uatypes.NewEncoder(256)
	if servers == nil {
		e.WriteInt32(-1)
		return e.Bytes()
	}
	e.WriteInt32(int32(len(servers)))
	for _, s := range servers {
		s.encode(e)
	}
	return e.Bytes()
}

// Decode parses a NodeID-prefixed message body.
func Decode(b []byte) (Message, error) {
	d := uatypes.NewDecoder(b)
	id := uatypes.DecodeNodeID(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	dec, ok := decoders[id.Numeric]
	if !ok || id.Namespace != 0 {
		return nil, fmt.Errorf("uamsg: unknown message type id %v", id)
	}
	m := dec(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("uamsg: decoding %T: %w", m, err)
	}
	return m, nil
}

var decoders = map[uint32]func(*uatypes.Decoder) Message{
	IDServiceFault:               decodeServiceFault,
	IDFindServersRequest:         decodeFindServersRequest,
	IDFindServersResponse:        decodeFindServersResponse,
	IDGetEndpointsRequest:        decodeGetEndpointsRequest,
	IDGetEndpointsResponse:       decodeGetEndpointsResponse,
	IDOpenSecureChannelRequest:   decodeOpenSecureChannelRequest,
	IDOpenSecureChannelResponse:  decodeOpenSecureChannelResponse,
	IDCloseSecureChannelRequest:  decodeCloseSecureChannelRequest,
	IDCloseSecureChannelResponse: decodeCloseSecureChannelResponse,
	IDCreateSessionRequest:       decodeCreateSessionRequest,
	IDCreateSessionResponse:      decodeCreateSessionResponse,
	IDActivateSessionRequest:     decodeActivateSessionRequest,
	IDActivateSessionResponse:    decodeActivateSessionResponse,
	IDCloseSessionRequest:        decodeCloseSessionRequest,
	IDCloseSessionResponse:       decodeCloseSessionResponse,
	IDBrowseRequest:              decodeBrowseRequest,
	IDBrowseResponse:             decodeBrowseResponse,
	IDBrowseNextRequest:          decodeBrowseNextRequest,
	IDBrowseNextResponse:         decodeBrowseNextResponse,
	IDReadRequest:                decodeReadRequest,
	IDReadResponse:               decodeReadResponse,
	IDCallRequest:                decodeCallRequest,
	IDCallResponse:               decodeCallResponse,
}

// ServiceFault reports a service-level failure.
type ServiceFault struct {
	Header ResponseHeader
}

// TypeID implements Message.
func (*ServiceFault) TypeID() uint32 { return IDServiceFault }

// ResponseHeader implements Response.
func (m *ServiceFault) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *ServiceFault) encodeBody(e *uatypes.Encoder) { m.Header.encode(e) }

func decodeServiceFault(d *uatypes.Decoder) Message {
	return &ServiceFault{Header: decodeResponseHeader(d)}
}

// FindServersRequest queries a (discovery) server for known servers.
type FindServersRequest struct {
	Header      RequestHeader
	EndpointURL string
	LocaleIDs   []string
	ServerURIs  []string
}

// TypeID implements Message.
func (*FindServersRequest) TypeID() uint32 { return IDFindServersRequest }

// RequestHeader implements Request.
func (m *FindServersRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *FindServersRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteString(m.EndpointURL)
	writeStringArray(e, m.LocaleIDs)
	writeStringArray(e, m.ServerURIs)
}

func decodeFindServersRequest(d *uatypes.Decoder) Message {
	return &FindServersRequest{
		Header:      decodeRequestHeader(d),
		EndpointURL: d.ReadString(),
		LocaleIDs:   readStringArray(d),
		ServerURIs:  readStringArray(d),
	}
}

// FindServersResponse lists the applications a discovery server knows.
type FindServersResponse struct {
	Header  ResponseHeader
	Servers []ApplicationDescription
}

// TypeID implements Message.
func (*FindServersResponse) TypeID() uint32 { return IDFindServersResponse }

// ResponseHeader implements Response.
func (m *FindServersResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *FindServersResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	if m.Servers == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(m.Servers)))
	for _, s := range m.Servers {
		s.encode(e)
	}
}

func decodeFindServersResponse(d *uatypes.Decoder) Message {
	m := &FindServersResponse{Header: decodeResponseHeader(d)}
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Servers = append(m.Servers, decodeApplicationDescription(d))
	}
	return m
}

// GetEndpointsRequest asks a server for its endpoint descriptions. It is
// answered without security, which is what makes the study possible.
type GetEndpointsRequest struct {
	Header      RequestHeader
	EndpointURL string
	LocaleIDs   []string
	ProfileURIs []string
}

// TypeID implements Message.
func (*GetEndpointsRequest) TypeID() uint32 { return IDGetEndpointsRequest }

// RequestHeader implements Request.
func (m *GetEndpointsRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *GetEndpointsRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteString(m.EndpointURL)
	writeStringArray(e, m.LocaleIDs)
	writeStringArray(e, m.ProfileURIs)
}

func decodeGetEndpointsRequest(d *uatypes.Decoder) Message {
	return &GetEndpointsRequest{
		Header:      decodeRequestHeader(d),
		EndpointURL: d.ReadString(),
		LocaleIDs:   readStringArray(d),
		ProfileURIs: readStringArray(d),
	}
}

// GetEndpointsResponse carries the advertised endpoints.
type GetEndpointsResponse struct {
	Header    ResponseHeader
	Endpoints []EndpointDescription
}

// TypeID implements Message.
func (*GetEndpointsResponse) TypeID() uint32 { return IDGetEndpointsResponse }

// ResponseHeader implements Response.
func (m *GetEndpointsResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *GetEndpointsResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	writeEndpointArray(e, m.Endpoints)
}

func decodeGetEndpointsResponse(d *uatypes.Decoder) Message {
	return &GetEndpointsResponse{
		Header:    decodeResponseHeader(d),
		Endpoints: readEndpointArray(d),
	}
}

// OpenSecureChannelRequest establishes or renews a secure channel.
type OpenSecureChannelRequest struct {
	Header            RequestHeader
	ClientProtocolVer uint32
	RequestType       SecurityTokenRequestType
	SecurityMode      MessageSecurityMode
	ClientNonce       []byte
	RequestedLifetime uint32
}

// TypeID implements Message.
func (*OpenSecureChannelRequest) TypeID() uint32 { return IDOpenSecureChannelRequest }

// RequestHeader implements Request.
func (m *OpenSecureChannelRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *OpenSecureChannelRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteUint32(m.ClientProtocolVer)
	e.WriteUint32(uint32(m.RequestType))
	e.WriteUint32(uint32(m.SecurityMode))
	e.WriteByteString(m.ClientNonce)
	e.WriteUint32(m.RequestedLifetime)
}

func decodeOpenSecureChannelRequest(d *uatypes.Decoder) Message {
	return &OpenSecureChannelRequest{
		Header:            decodeRequestHeader(d),
		ClientProtocolVer: d.ReadUint32(),
		RequestType:       SecurityTokenRequestType(d.ReadUint32()),
		SecurityMode:      MessageSecurityMode(d.ReadUint32()),
		ClientNonce:       d.ReadByteString(),
		RequestedLifetime: d.ReadUint32(),
	}
}

// OpenSecureChannelResponse returns the issued channel token.
type OpenSecureChannelResponse struct {
	Header            ResponseHeader
	ServerProtocolVer uint32
	SecurityToken     ChannelSecurityToken
	ServerNonce       []byte
}

// TypeID implements Message.
func (*OpenSecureChannelResponse) TypeID() uint32 { return IDOpenSecureChannelResponse }

// ResponseHeader implements Response.
func (m *OpenSecureChannelResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *OpenSecureChannelResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteUint32(m.ServerProtocolVer)
	m.SecurityToken.encode(e)
	e.WriteByteString(m.ServerNonce)
}

func decodeOpenSecureChannelResponse(d *uatypes.Decoder) Message {
	return &OpenSecureChannelResponse{
		Header:            decodeResponseHeader(d),
		ServerProtocolVer: d.ReadUint32(),
		SecurityToken:     decodeChannelSecurityToken(d),
		ServerNonce:       d.ReadByteString(),
	}
}

// CloseSecureChannelRequest tears down a secure channel.
type CloseSecureChannelRequest struct {
	Header RequestHeader
}

// TypeID implements Message.
func (*CloseSecureChannelRequest) TypeID() uint32 { return IDCloseSecureChannelRequest }

// RequestHeader implements Request.
func (m *CloseSecureChannelRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *CloseSecureChannelRequest) encodeBody(e *uatypes.Encoder) { m.Header.encode(e) }

func decodeCloseSecureChannelRequest(d *uatypes.Decoder) Message {
	return &CloseSecureChannelRequest{Header: decodeRequestHeader(d)}
}

// CloseSecureChannelResponse acknowledges channel teardown.
type CloseSecureChannelResponse struct {
	Header ResponseHeader
}

// TypeID implements Message.
func (*CloseSecureChannelResponse) TypeID() uint32 { return IDCloseSecureChannelResponse }

// ResponseHeader implements Response.
func (m *CloseSecureChannelResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *CloseSecureChannelResponse) encodeBody(e *uatypes.Encoder) { m.Header.encode(e) }

func decodeCloseSecureChannelResponse(d *uatypes.Decoder) Message {
	return &CloseSecureChannelResponse{Header: decodeResponseHeader(d)}
}

// CreateSessionRequest opens an application session on a secure channel.
type CreateSessionRequest struct {
	Header                  RequestHeader
	ClientDescription       ApplicationDescription
	ServerURI               string
	EndpointURL             string
	SessionName             string
	ClientNonce             []byte
	ClientCertificate       []byte
	RequestedSessionTimeout float64
	MaxResponseMessageSize  uint32
}

// TypeID implements Message.
func (*CreateSessionRequest) TypeID() uint32 { return IDCreateSessionRequest }

// RequestHeader implements Request.
func (m *CreateSessionRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *CreateSessionRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	m.ClientDescription.encode(e)
	e.WriteString(m.ServerURI)
	e.WriteString(m.EndpointURL)
	e.WriteString(m.SessionName)
	e.WriteByteString(m.ClientNonce)
	e.WriteByteString(m.ClientCertificate)
	e.WriteFloat64(m.RequestedSessionTimeout)
	e.WriteUint32(m.MaxResponseMessageSize)
}

func decodeCreateSessionRequest(d *uatypes.Decoder) Message {
	return &CreateSessionRequest{
		Header:                  decodeRequestHeader(d),
		ClientDescription:       decodeApplicationDescription(d),
		ServerURI:               d.ReadString(),
		EndpointURL:             d.ReadString(),
		SessionName:             d.ReadString(),
		ClientNonce:             d.ReadByteString(),
		ClientCertificate:       d.ReadByteString(),
		RequestedSessionTimeout: d.ReadFloat64(),
		MaxResponseMessageSize:  d.ReadUint32(),
	}
}

// CreateSessionResponse returns session ids and the server's signature
// over the client nonce.
type CreateSessionResponse struct {
	Header                ResponseHeader
	SessionID             uatypes.NodeID
	AuthenticationToken   uatypes.NodeID
	RevisedSessionTimeout float64
	ServerNonce           []byte
	ServerCertificate     []byte
	ServerEndpoints       []EndpointDescription
	ServerSignature       SignatureData
	MaxRequestMessageSize uint32
}

// TypeID implements Message.
func (*CreateSessionResponse) TypeID() uint32 { return IDCreateSessionResponse }

// ResponseHeader implements Response.
func (m *CreateSessionResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *CreateSessionResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	m.SessionID.Encode(e)
	m.AuthenticationToken.Encode(e)
	e.WriteFloat64(m.RevisedSessionTimeout)
	e.WriteByteString(m.ServerNonce)
	e.WriteByteString(m.ServerCertificate)
	writeEndpointArray(e, m.ServerEndpoints)
	e.WriteInt32(-1) // ServerSoftwareCertificates (unused)
	m.ServerSignature.encode(e)
	e.WriteUint32(m.MaxRequestMessageSize)
}

func decodeCreateSessionResponse(d *uatypes.Decoder) Message {
	m := &CreateSessionResponse{
		Header:                decodeResponseHeader(d),
		SessionID:             uatypes.DecodeNodeID(d),
		AuthenticationToken:   uatypes.DecodeNodeID(d),
		RevisedSessionTimeout: d.ReadFloat64(),
		ServerNonce:           d.ReadByteString(),
		ServerCertificate:     d.ReadByteString(),
		ServerEndpoints:       readEndpointArray(d),
	}
	n := d.ReadArrayLen() // software certificates
	for i := 0; i < n && d.Err() == nil; i++ {
		d.ReadByteString()
		d.ReadByteString()
	}
	m.ServerSignature = decodeSignatureData(d)
	m.MaxRequestMessageSize = d.ReadUint32()
	return m
}

// ActivateSessionRequest authenticates the session user.
type ActivateSessionRequest struct {
	Header             RequestHeader
	ClientSignature    SignatureData
	LocaleIDs          []string
	UserIdentityToken  uatypes.ExtensionObject
	UserTokenSignature SignatureData
}

// TypeID implements Message.
func (*ActivateSessionRequest) TypeID() uint32 { return IDActivateSessionRequest }

// RequestHeader implements Request.
func (m *ActivateSessionRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *ActivateSessionRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	m.ClientSignature.encode(e)
	e.WriteInt32(-1) // ClientSoftwareCertificates (unused)
	writeStringArray(e, m.LocaleIDs)
	m.UserIdentityToken.Encode(e)
	m.UserTokenSignature.encode(e)
}

func decodeActivateSessionRequest(d *uatypes.Decoder) Message {
	m := &ActivateSessionRequest{
		Header:          decodeRequestHeader(d),
		ClientSignature: decodeSignatureData(d),
	}
	n := d.ReadArrayLen() // software certificates
	for i := 0; i < n && d.Err() == nil; i++ {
		d.ReadByteString()
		d.ReadByteString()
	}
	m.LocaleIDs = readStringArray(d)
	m.UserIdentityToken = uatypes.DecodeExtensionObject(d)
	m.UserTokenSignature = decodeSignatureData(d)
	return m
}

// ActivateSessionResponse completes authentication.
type ActivateSessionResponse struct {
	Header      ResponseHeader
	ServerNonce []byte
	Results     []uastatus.Code
}

// TypeID implements Message.
func (*ActivateSessionResponse) TypeID() uint32 { return IDActivateSessionResponse }

// ResponseHeader implements Response.
func (m *ActivateSessionResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *ActivateSessionResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteByteString(m.ServerNonce)
	writeStatusArray(e, m.Results)
	writeDiagArray(e)
}

func decodeActivateSessionResponse(d *uatypes.Decoder) Message {
	m := &ActivateSessionResponse{
		Header:      decodeResponseHeader(d),
		ServerNonce: d.ReadByteString(),
		Results:     readStatusArray(d),
	}
	readDiagArray(d)
	return m
}

// CloseSessionRequest ends a session.
type CloseSessionRequest struct {
	Header              RequestHeader
	DeleteSubscriptions bool
}

// TypeID implements Message.
func (*CloseSessionRequest) TypeID() uint32 { return IDCloseSessionRequest }

// RequestHeader implements Request.
func (m *CloseSessionRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *CloseSessionRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteBool(m.DeleteSubscriptions)
}

func decodeCloseSessionRequest(d *uatypes.Decoder) Message {
	return &CloseSessionRequest{
		Header:              decodeRequestHeader(d),
		DeleteSubscriptions: d.ReadBool(),
	}
}

// CloseSessionResponse acknowledges session teardown.
type CloseSessionResponse struct {
	Header ResponseHeader
}

// TypeID implements Message.
func (*CloseSessionResponse) TypeID() uint32 { return IDCloseSessionResponse }

// ResponseHeader implements Response.
func (m *CloseSessionResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *CloseSessionResponse) encodeBody(e *uatypes.Encoder) { m.Header.encode(e) }

func decodeCloseSessionResponse(d *uatypes.Decoder) Message {
	return &CloseSessionResponse{Header: decodeResponseHeader(d)}
}

// BrowseRequest asks for the references of a set of nodes.
type BrowseRequest struct {
	Header        RequestHeader
	View          ViewDescription
	MaxReferences uint32
	NodesToBrowse []BrowseDescription
}

// TypeID implements Message.
func (*BrowseRequest) TypeID() uint32 { return IDBrowseRequest }

// RequestHeader implements Request.
func (m *BrowseRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *BrowseRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	m.View.encode(e)
	e.WriteUint32(m.MaxReferences)
	if m.NodesToBrowse == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(m.NodesToBrowse)))
	for _, b := range m.NodesToBrowse {
		b.encode(e)
	}
}

func decodeBrowseRequest(d *uatypes.Decoder) Message {
	m := &BrowseRequest{
		Header:        decodeRequestHeader(d),
		View:          decodeViewDescription(d),
		MaxReferences: d.ReadUint32(),
	}
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		m.NodesToBrowse = append(m.NodesToBrowse, decodeBrowseDescription(d))
	}
	return m
}

// BrowseResponse carries per-node reference listings.
type BrowseResponse struct {
	Header  ResponseHeader
	Results []BrowseResult
}

// TypeID implements Message.
func (*BrowseResponse) TypeID() uint32 { return IDBrowseResponse }

// ResponseHeader implements Response.
func (m *BrowseResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *BrowseResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	writeBrowseResults(e, m.Results)
	writeDiagArray(e)
}

func decodeBrowseResponse(d *uatypes.Decoder) Message {
	m := &BrowseResponse{
		Header:  decodeResponseHeader(d),
		Results: readBrowseResults(d),
	}
	readDiagArray(d)
	return m
}

// BrowseNextRequest continues a Browse with continuation points.
type BrowseNextRequest struct {
	Header             RequestHeader
	ReleasePoints      bool
	ContinuationPoints [][]byte
}

// TypeID implements Message.
func (*BrowseNextRequest) TypeID() uint32 { return IDBrowseNextRequest }

// RequestHeader implements Request.
func (m *BrowseNextRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *BrowseNextRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteBool(m.ReleasePoints)
	writeByteStringArray(e, m.ContinuationPoints)
}

func decodeBrowseNextRequest(d *uatypes.Decoder) Message {
	return &BrowseNextRequest{
		Header:             decodeRequestHeader(d),
		ReleasePoints:      d.ReadBool(),
		ContinuationPoints: readByteStringArray(d),
	}
}

// BrowseNextResponse carries continued reference listings.
type BrowseNextResponse struct {
	Header  ResponseHeader
	Results []BrowseResult
}

// TypeID implements Message.
func (*BrowseNextResponse) TypeID() uint32 { return IDBrowseNextResponse }

// ResponseHeader implements Response.
func (m *BrowseNextResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *BrowseNextResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	writeBrowseResults(e, m.Results)
	writeDiagArray(e)
}

func decodeBrowseNextResponse(d *uatypes.Decoder) Message {
	m := &BrowseNextResponse{
		Header:  decodeResponseHeader(d),
		Results: readBrowseResults(d),
	}
	readDiagArray(d)
	return m
}

// ReadRequest reads node attributes.
type ReadRequest struct {
	Header      RequestHeader
	MaxAge      float64
	Timestamps  TimestampsToReturn
	NodesToRead []ReadValueID
}

// TypeID implements Message.
func (*ReadRequest) TypeID() uint32 { return IDReadRequest }

// RequestHeader implements Request.
func (m *ReadRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *ReadRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	e.WriteFloat64(m.MaxAge)
	e.WriteUint32(uint32(m.Timestamps))
	if m.NodesToRead == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(m.NodesToRead)))
	for _, r := range m.NodesToRead {
		r.encode(e)
	}
}

func decodeReadRequest(d *uatypes.Decoder) Message {
	m := &ReadRequest{
		Header:     decodeRequestHeader(d),
		MaxAge:     d.ReadFloat64(),
		Timestamps: TimestampsToReturn(d.ReadUint32()),
	}
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		m.NodesToRead = append(m.NodesToRead, decodeReadValueID(d))
	}
	return m
}

// ReadResponse carries the read results.
type ReadResponse struct {
	Header  ResponseHeader
	Results []uatypes.DataValue
}

// TypeID implements Message.
func (*ReadResponse) TypeID() uint32 { return IDReadResponse }

// ResponseHeader implements Response.
func (m *ReadResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *ReadResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	if m.Results == nil {
		e.WriteInt32(-1)
	} else {
		e.WriteInt32(int32(len(m.Results)))
		for _, v := range m.Results {
			v.Encode(e)
		}
	}
	writeDiagArray(e)
}

func decodeReadResponse(d *uatypes.Decoder) Message {
	m := &ReadResponse{Header: decodeResponseHeader(d)}
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Results = append(m.Results, uatypes.DecodeDataValue(d))
	}
	readDiagArray(d)
	return m
}

// CallRequest invokes methods.
type CallRequest struct {
	Header        RequestHeader
	MethodsToCall []CallMethodRequest
}

// TypeID implements Message.
func (*CallRequest) TypeID() uint32 { return IDCallRequest }

// RequestHeader implements Request.
func (m *CallRequest) RequestHeader() *RequestHeader { return &m.Header }

func (m *CallRequest) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	if m.MethodsToCall == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(m.MethodsToCall)))
	for _, c := range m.MethodsToCall {
		c.encode(e)
	}
}

func decodeCallRequest(d *uatypes.Decoder) Message {
	m := &CallRequest{Header: decodeRequestHeader(d)}
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		m.MethodsToCall = append(m.MethodsToCall, decodeCallMethodRequest(d))
	}
	return m
}

// CallResponse carries the per-method results.
type CallResponse struct {
	Header  ResponseHeader
	Results []CallMethodResult
}

// TypeID implements Message.
func (*CallResponse) TypeID() uint32 { return IDCallResponse }

// ResponseHeader implements Response.
func (m *CallResponse) ResponseHeader() *ResponseHeader { return &m.Header }

func (m *CallResponse) encodeBody(e *uatypes.Encoder) {
	m.Header.encode(e)
	if m.Results == nil {
		e.WriteInt32(-1)
	} else {
		e.WriteInt32(int32(len(m.Results)))
		for _, r := range m.Results {
			r.encode(e)
		}
	}
	writeDiagArray(e)
}

func decodeCallResponse(d *uatypes.Decoder) Message {
	m := &CallResponse{Header: decodeResponseHeader(d)}
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Results = append(m.Results, decodeCallMethodResult(d))
	}
	readDiagArray(d)
	return m
}
