package uamsg

import (
	"time"

	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// RequestHeader precedes every service request (OPC 10000-4 §7.33).
type RequestHeader struct {
	AuthenticationToken uatypes.NodeID
	Timestamp           time.Time
	RequestHandle       uint32
	ReturnDiagnostics   uint32
	AuditEntryID        string
	TimeoutHint         uint32
}

func (h RequestHeader) encode(e *uatypes.Encoder) {
	h.AuthenticationToken.Encode(e)
	e.WriteTime(h.Timestamp)
	e.WriteUint32(h.RequestHandle)
	e.WriteUint32(h.ReturnDiagnostics)
	if h.AuditEntryID == "" {
		e.WriteNullString()
	} else {
		e.WriteString(h.AuditEntryID)
	}
	e.WriteUint32(h.TimeoutHint)
	uatypes.ExtensionObject{}.Encode(e) // AdditionalHeader
}

func decodeRequestHeader(d *uatypes.Decoder) RequestHeader {
	var h RequestHeader
	h.AuthenticationToken = uatypes.DecodeNodeID(d)
	h.Timestamp = d.ReadTime()
	h.RequestHandle = d.ReadUint32()
	h.ReturnDiagnostics = d.ReadUint32()
	h.AuditEntryID = d.ReadString()
	h.TimeoutHint = d.ReadUint32()
	uatypes.DecodeExtensionObject(d)
	return h
}

// ResponseHeader precedes every service response.
type ResponseHeader struct {
	Timestamp     time.Time
	RequestHandle uint32
	ServiceResult uastatus.Code
	StringTable   []string
}

func (h ResponseHeader) encode(e *uatypes.Encoder) {
	e.WriteTime(h.Timestamp)
	e.WriteUint32(h.RequestHandle)
	e.WriteStatus(h.ServiceResult)
	uatypes.EncodeNullDiagnosticInfo(e) // ServiceDiagnostics
	writeStringArray(e, h.StringTable)
	uatypes.ExtensionObject{}.Encode(e) // AdditionalHeader
}

func decodeResponseHeader(d *uatypes.Decoder) ResponseHeader {
	var h ResponseHeader
	h.Timestamp = d.ReadTime()
	h.RequestHandle = d.ReadUint32()
	h.ServiceResult = d.ReadStatus()
	uatypes.DecodeDiagnosticInfo(d)
	h.StringTable = readStringArray(d)
	uatypes.DecodeExtensionObject(d)
	return h
}

func writeStringArray(e *uatypes.Encoder, ss []string) {
	if ss == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(ss)))
	for _, s := range ss {
		e.WriteString(s)
	}
}

func readStringArray(d *uatypes.Decoder) []string {
	n := d.ReadArrayLen()
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.ReadString())
	}
	return out
}

func writeByteStringArray(e *uatypes.Encoder, bs [][]byte) {
	if bs == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(bs)))
	for _, b := range bs {
		e.WriteByteString(b)
	}
}

func readByteStringArray(d *uatypes.Decoder) [][]byte {
	n := d.ReadArrayLen()
	if n <= 0 {
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.ReadByteString())
	}
	return out
}

func writeStatusArray(e *uatypes.Encoder, cs []uastatus.Code) {
	if cs == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(cs)))
	for _, c := range cs {
		e.WriteStatus(c)
	}
}

func readStatusArray(d *uatypes.Decoder) []uastatus.Code {
	n := d.ReadArrayLen()
	if n <= 0 {
		return nil
	}
	out := make([]uastatus.Code, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.ReadStatus())
	}
	return out
}

// writeDiagArray encodes a null DiagnosticInfo array.
func writeDiagArray(e *uatypes.Encoder) { e.WriteInt32(-1) }

func readDiagArray(d *uatypes.Decoder) {
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		uatypes.DecodeDiagnosticInfo(d)
	}
}

// ApplicationDescription describes a client or server application
// (OPC 10000-4 §7.1). The study clusters hosts by ApplicationURI.
type ApplicationDescription struct {
	ApplicationURI      string
	ProductURI          string
	ApplicationName     uatypes.LocalizedText
	ApplicationType     ApplicationType
	GatewayServerURI    string
	DiscoveryProfileURI string
	DiscoveryURLs       []string
}

func (a ApplicationDescription) encode(e *uatypes.Encoder) {
	e.WriteString(a.ApplicationURI)
	e.WriteString(a.ProductURI)
	a.ApplicationName.Encode(e)
	e.WriteUint32(uint32(a.ApplicationType))
	e.WriteString(a.GatewayServerURI)
	e.WriteString(a.DiscoveryProfileURI)
	writeStringArray(e, a.DiscoveryURLs)
}

func decodeApplicationDescription(d *uatypes.Decoder) ApplicationDescription {
	var a ApplicationDescription
	a.ApplicationURI = d.ReadString()
	a.ProductURI = d.ReadString()
	a.ApplicationName = uatypes.DecodeLocalizedText(d)
	a.ApplicationType = ApplicationType(d.ReadUint32())
	a.GatewayServerURI = d.ReadString()
	a.DiscoveryProfileURI = d.ReadString()
	a.DiscoveryURLs = readStringArray(d)
	return a
}

// UserTokenPolicy describes one accepted authentication option
// (OPC 10000-4 §7.37).
type UserTokenPolicy struct {
	PolicyID          string
	TokenType         UserTokenType
	IssuedTokenType   string
	IssuerEndpointURL string
	SecurityPolicyURI string
}

func (p UserTokenPolicy) encode(e *uatypes.Encoder) {
	e.WriteString(p.PolicyID)
	e.WriteUint32(uint32(p.TokenType))
	e.WriteString(p.IssuedTokenType)
	e.WriteString(p.IssuerEndpointURL)
	e.WriteString(p.SecurityPolicyURI)
}

func decodeUserTokenPolicy(d *uatypes.Decoder) UserTokenPolicy {
	var p UserTokenPolicy
	p.PolicyID = d.ReadString()
	p.TokenType = UserTokenType(d.ReadUint32())
	p.IssuedTokenType = d.ReadString()
	p.IssuerEndpointURL = d.ReadString()
	p.SecurityPolicyURI = d.ReadString()
	return p
}

// EndpointDescription advertises one endpoint with its security
// configuration (OPC 10000-4 §7.10). This is the study's central object.
type EndpointDescription struct {
	EndpointURL         string
	Server              ApplicationDescription
	ServerCertificate   []byte
	SecurityMode        MessageSecurityMode
	SecurityPolicyURI   string
	UserIdentityTokens  []UserTokenPolicy
	TransportProfileURI string
	SecurityLevel       byte
}

func (ep EndpointDescription) encode(e *uatypes.Encoder) {
	e.WriteString(ep.EndpointURL)
	ep.Server.encode(e)
	e.WriteByteString(ep.ServerCertificate)
	e.WriteUint32(uint32(ep.SecurityMode))
	e.WriteString(ep.SecurityPolicyURI)
	if ep.UserIdentityTokens == nil {
		e.WriteInt32(-1)
	} else {
		e.WriteInt32(int32(len(ep.UserIdentityTokens)))
		for _, p := range ep.UserIdentityTokens {
			p.encode(e)
		}
	}
	e.WriteString(ep.TransportProfileURI)
	e.WriteUint8(ep.SecurityLevel)
}

func decodeEndpointDescription(d *uatypes.Decoder) EndpointDescription {
	var ep EndpointDescription
	ep.EndpointURL = d.ReadString()
	ep.Server = decodeApplicationDescription(d)
	ep.ServerCertificate = d.ReadByteString()
	ep.SecurityMode = MessageSecurityMode(d.ReadUint32())
	ep.SecurityPolicyURI = d.ReadString()
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		ep.UserIdentityTokens = append(ep.UserIdentityTokens, decodeUserTokenPolicy(d))
	}
	ep.TransportProfileURI = d.ReadString()
	ep.SecurityLevel = d.ReadUint8()
	return ep
}

func writeEndpointArray(e *uatypes.Encoder, eps []EndpointDescription) {
	if eps == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(eps)))
	for _, ep := range eps {
		ep.encode(e)
	}
}

func readEndpointArray(d *uatypes.Decoder) []EndpointDescription {
	n := d.ReadArrayLen()
	if n <= 0 {
		return nil
	}
	out := make([]EndpointDescription, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, decodeEndpointDescription(d))
	}
	return out
}

// SignatureData carries a signature and the algorithm that produced it.
type SignatureData struct {
	Algorithm string
	Signature []byte
}

func (s SignatureData) encode(e *uatypes.Encoder) {
	if s.Algorithm == "" {
		e.WriteNullString()
	} else {
		e.WriteString(s.Algorithm)
	}
	e.WriteByteString(s.Signature)
}

func decodeSignatureData(d *uatypes.Decoder) SignatureData {
	return SignatureData{Algorithm: d.ReadString(), Signature: d.ReadByteString()}
}

// ChannelSecurityToken identifies an issued secure-channel token.
type ChannelSecurityToken struct {
	ChannelID       uint32
	TokenID         uint32
	CreatedAt       time.Time
	RevisedLifetime uint32 // milliseconds
}

func (t ChannelSecurityToken) encode(e *uatypes.Encoder) {
	e.WriteUint32(t.ChannelID)
	e.WriteUint32(t.TokenID)
	e.WriteTime(t.CreatedAt)
	e.WriteUint32(t.RevisedLifetime)
}

func decodeChannelSecurityToken(d *uatypes.Decoder) ChannelSecurityToken {
	var t ChannelSecurityToken
	t.ChannelID = d.ReadUint32()
	t.TokenID = d.ReadUint32()
	t.CreatedAt = d.ReadTime()
	t.RevisedLifetime = d.ReadUint32()
	return t
}

// ViewDescription selects a view for Browse; the study always browses the
// whole address space (null view).
type ViewDescription struct {
	ViewID      uatypes.NodeID
	Timestamp   time.Time
	ViewVersion uint32
}

func (v ViewDescription) encode(e *uatypes.Encoder) {
	v.ViewID.Encode(e)
	e.WriteTime(v.Timestamp)
	e.WriteUint32(v.ViewVersion)
}

func decodeViewDescription(d *uatypes.Decoder) ViewDescription {
	var v ViewDescription
	v.ViewID = uatypes.DecodeNodeID(d)
	v.Timestamp = d.ReadTime()
	v.ViewVersion = d.ReadUint32()
	return v
}

// BrowseDescription names a node whose references Browse returns.
type BrowseDescription struct {
	NodeID          uatypes.NodeID
	Direction       BrowseDirection
	ReferenceTypeID uatypes.NodeID
	IncludeSubtypes bool
	NodeClassMask   uint32
	ResultMask      uint32
}

func (b BrowseDescription) encode(e *uatypes.Encoder) {
	b.NodeID.Encode(e)
	e.WriteUint32(uint32(b.Direction))
	b.ReferenceTypeID.Encode(e)
	e.WriteBool(b.IncludeSubtypes)
	e.WriteUint32(b.NodeClassMask)
	e.WriteUint32(b.ResultMask)
}

func decodeBrowseDescription(d *uatypes.Decoder) BrowseDescription {
	var b BrowseDescription
	b.NodeID = uatypes.DecodeNodeID(d)
	b.Direction = BrowseDirection(d.ReadUint32())
	b.ReferenceTypeID = uatypes.DecodeNodeID(d)
	b.IncludeSubtypes = d.ReadBool()
	b.NodeClassMask = d.ReadUint32()
	b.ResultMask = d.ReadUint32()
	return b
}

// ReferenceDescription is one Browse result entry.
type ReferenceDescription struct {
	ReferenceTypeID uatypes.NodeID
	IsForward       bool
	NodeID          uatypes.ExpandedNodeID
	BrowseName      uatypes.QualifiedName
	DisplayName     uatypes.LocalizedText
	NodeClass       NodeClass
	TypeDefinition  uatypes.ExpandedNodeID
}

func (r ReferenceDescription) encode(e *uatypes.Encoder) {
	r.ReferenceTypeID.Encode(e)
	e.WriteBool(r.IsForward)
	r.NodeID.Encode(e)
	r.BrowseName.Encode(e)
	r.DisplayName.Encode(e)
	e.WriteUint32(uint32(r.NodeClass))
	r.TypeDefinition.Encode(e)
}

func decodeReferenceDescription(d *uatypes.Decoder) ReferenceDescription {
	var r ReferenceDescription
	r.ReferenceTypeID = uatypes.DecodeNodeID(d)
	r.IsForward = d.ReadBool()
	r.NodeID = uatypes.DecodeExpandedNodeID(d)
	r.BrowseName = uatypes.DecodeQualifiedName(d)
	r.DisplayName = uatypes.DecodeLocalizedText(d)
	r.NodeClass = NodeClass(d.ReadUint32())
	r.TypeDefinition = uatypes.DecodeExpandedNodeID(d)
	return r
}

// BrowseResult is the per-node outcome of a Browse request.
type BrowseResult struct {
	Status            uastatus.Code
	ContinuationPoint []byte
	References        []ReferenceDescription
}

func (b BrowseResult) encode(e *uatypes.Encoder) {
	e.WriteStatus(b.Status)
	e.WriteByteString(b.ContinuationPoint)
	if b.References == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(b.References)))
	for _, r := range b.References {
		r.encode(e)
	}
}

func decodeBrowseResult(d *uatypes.Decoder) BrowseResult {
	var b BrowseResult
	b.Status = d.ReadStatus()
	b.ContinuationPoint = d.ReadByteString()
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		b.References = append(b.References, decodeReferenceDescription(d))
	}
	return b
}

func writeBrowseResults(e *uatypes.Encoder, rs []BrowseResult) {
	if rs == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(rs)))
	for _, r := range rs {
		r.encode(e)
	}
}

func readBrowseResults(d *uatypes.Decoder) []BrowseResult {
	n := d.ReadArrayLen()
	if n <= 0 {
		return nil
	}
	out := make([]BrowseResult, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, decodeBrowseResult(d))
	}
	return out
}

// ReadValueID names one node attribute to read.
type ReadValueID struct {
	NodeID       uatypes.NodeID
	AttributeID  AttributeID
	IndexRange   string
	DataEncoding uatypes.QualifiedName
}

func (r ReadValueID) encode(e *uatypes.Encoder) {
	r.NodeID.Encode(e)
	e.WriteUint32(uint32(r.AttributeID))
	if r.IndexRange == "" {
		e.WriteNullString()
	} else {
		e.WriteString(r.IndexRange)
	}
	r.DataEncoding.Encode(e)
}

func decodeReadValueID(d *uatypes.Decoder) ReadValueID {
	var r ReadValueID
	r.NodeID = uatypes.DecodeNodeID(d)
	r.AttributeID = AttributeID(d.ReadUint32())
	r.IndexRange = d.ReadString()
	r.DataEncoding = uatypes.DecodeQualifiedName(d)
	return r
}

// CallMethodRequest names one method invocation.
type CallMethodRequest struct {
	ObjectID       uatypes.NodeID
	MethodID       uatypes.NodeID
	InputArguments []uatypes.Variant
}

func (c CallMethodRequest) encode(e *uatypes.Encoder) {
	c.ObjectID.Encode(e)
	c.MethodID.Encode(e)
	if c.InputArguments == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(c.InputArguments)))
	for _, v := range c.InputArguments {
		v.Encode(e)
	}
}

func decodeCallMethodRequest(d *uatypes.Decoder) CallMethodRequest {
	var c CallMethodRequest
	c.ObjectID = uatypes.DecodeNodeID(d)
	c.MethodID = uatypes.DecodeNodeID(d)
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		c.InputArguments = append(c.InputArguments, uatypes.DecodeVariant(d))
	}
	return c
}

// CallMethodResult is the per-method outcome of a Call request.
type CallMethodResult struct {
	Status          uastatus.Code
	InputArgResults []uastatus.Code
	OutputArguments []uatypes.Variant
}

func (c CallMethodResult) encode(e *uatypes.Encoder) {
	e.WriteStatus(c.Status)
	writeStatusArray(e, c.InputArgResults)
	writeDiagArray(e)
	if c.OutputArguments == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(c.OutputArguments)))
	for _, v := range c.OutputArguments {
		v.Encode(e)
	}
}

func decodeCallMethodResult(d *uatypes.Decoder) CallMethodResult {
	var c CallMethodResult
	c.Status = d.ReadStatus()
	c.InputArgResults = readStatusArray(d)
	readDiagArray(d)
	n := d.ReadArrayLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		c.OutputArguments = append(c.OutputArguments, uatypes.DecodeVariant(d))
	}
	return c
}

// Identity tokens (OPC 10000-4 §7.36). They travel inside an
// ExtensionObject in ActivateSession.

// AnonymousIdentityToken requests anonymous access.
type AnonymousIdentityToken struct {
	PolicyID string
}

// UserNameIdentityToken authenticates with a username and password.
type UserNameIdentityToken struct {
	PolicyID            string
	UserName            string
	Password            []byte
	EncryptionAlgorithm string
}

// X509IdentityToken authenticates with a client certificate.
type X509IdentityToken struct {
	PolicyID        string
	CertificateData []byte
}

// IssuedIdentityToken authenticates with an externally issued token.
type IssuedIdentityToken struct {
	PolicyID            string
	TokenData           []byte
	EncryptionAlgorithm string
}

// Binary encoding ids for identity tokens.
const (
	IDAnonymousIdentityToken = 321
	IDUserNameIdentityToken  = 324
	IDX509IdentityToken      = 327
	IDIssuedIdentityToken    = 940
)

// EncodeIdentityToken wraps an identity token into an ExtensionObject.
// Supported types: *AnonymousIdentityToken, *UserNameIdentityToken,
// *X509IdentityToken, *IssuedIdentityToken.
func EncodeIdentityToken(tok any) uatypes.ExtensionObject {
	e := uatypes.NewEncoder(64)
	switch t := tok.(type) {
	case *AnonymousIdentityToken:
		e.WriteString(t.PolicyID)
		return uatypes.NewExtensionObject(IDAnonymousIdentityToken, e.Bytes())
	case *UserNameIdentityToken:
		e.WriteString(t.PolicyID)
		e.WriteString(t.UserName)
		e.WriteByteString(t.Password)
		e.WriteString(t.EncryptionAlgorithm)
		return uatypes.NewExtensionObject(IDUserNameIdentityToken, e.Bytes())
	case *X509IdentityToken:
		e.WriteString(t.PolicyID)
		e.WriteByteString(t.CertificateData)
		return uatypes.NewExtensionObject(IDX509IdentityToken, e.Bytes())
	case *IssuedIdentityToken:
		e.WriteString(t.PolicyID)
		e.WriteByteString(t.TokenData)
		e.WriteString(t.EncryptionAlgorithm)
		return uatypes.NewExtensionObject(IDIssuedIdentityToken, e.Bytes())
	default:
		return uatypes.ExtensionObject{}
	}
}

// DecodeIdentityToken unwraps an identity token ExtensionObject. It
// returns nil if the object is empty or of unknown type.
func DecodeIdentityToken(x uatypes.ExtensionObject) any {
	if x.Encoding != uatypes.ExtensionObjectByteString {
		return nil
	}
	d := uatypes.NewDecoder(x.Body)
	switch x.TypeID.NodeID.Numeric {
	case IDAnonymousIdentityToken:
		return &AnonymousIdentityToken{PolicyID: d.ReadString()}
	case IDUserNameIdentityToken:
		return &UserNameIdentityToken{
			PolicyID:            d.ReadString(),
			UserName:            d.ReadString(),
			Password:            d.ReadByteString(),
			EncryptionAlgorithm: d.ReadString(),
		}
	case IDX509IdentityToken:
		return &X509IdentityToken{
			PolicyID:        d.ReadString(),
			CertificateData: d.ReadByteString(),
		}
	case IDIssuedIdentityToken:
		return &IssuedIdentityToken{
			PolicyID:            d.ReadString(),
			TokenData:           d.ReadByteString(),
			EncryptionAlgorithm: d.ReadString(),
		}
	default:
		return nil
	}
}
