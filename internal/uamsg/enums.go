// Package uamsg defines the OPC UA connection-protocol messages
// (Hello/Acknowledge/Error) and the service request/response messages of
// OPC 10000-4 that the measurement study exercises, together with their
// binary codecs and the numeric type ids used on the wire.
package uamsg

import "fmt"

// MessageSecurityMode determines whether messages are signed and/or
// encrypted on a secure channel (OPC 10000-4 §7.15).
type MessageSecurityMode uint32

// Security modes. Invalid is never advertised.
const (
	SecurityModeInvalid        MessageSecurityMode = 0
	SecurityModeNone           MessageSecurityMode = 1
	SecurityModeSign           MessageSecurityMode = 2
	SecurityModeSignAndEncrypt MessageSecurityMode = 3
)

// String implements fmt.Stringer.
func (m MessageSecurityMode) String() string {
	switch m {
	case SecurityModeNone:
		return "None"
	case SecurityModeSign:
		return "Sign"
	case SecurityModeSignAndEncrypt:
		return "SignAndEncrypt"
	default:
		return fmt.Sprintf("Invalid(%d)", uint32(m))
	}
}

// UserTokenType identifies the kind of user identity token a server
// accepts (OPC 10000-4 §7.37).
type UserTokenType uint32

// User token types.
const (
	UserTokenAnonymous   UserTokenType = 0
	UserTokenUserName    UserTokenType = 1
	UserTokenCertificate UserTokenType = 2
	UserTokenIssuedToken UserTokenType = 3
)

// String implements fmt.Stringer.
func (t UserTokenType) String() string {
	switch t {
	case UserTokenAnonymous:
		return "Anonymous"
	case UserTokenUserName:
		return "UserName"
	case UserTokenCertificate:
		return "Certificate"
	case UserTokenIssuedToken:
		return "IssuedToken"
	default:
		return fmt.Sprintf("UserTokenType(%d)", uint32(t))
	}
}

// SecurityTokenRequestType distinguishes initial channel establishment
// from token renewal.
type SecurityTokenRequestType uint32

// Token request types.
const (
	SecurityTokenIssue SecurityTokenRequestType = 0
	SecurityTokenRenew SecurityTokenRequestType = 1
)

// ApplicationType classifies an application description.
type ApplicationType uint32

// Application types.
const (
	ApplicationServer          ApplicationType = 0
	ApplicationClient          ApplicationType = 1
	ApplicationClientAndServer ApplicationType = 2
	ApplicationDiscoveryServer ApplicationType = 3
)

// NodeClass is a bit mask classifying address-space nodes.
type NodeClass uint32

// Node classes.
const (
	NodeClassUnspecified   NodeClass = 0
	NodeClassObject        NodeClass = 1
	NodeClassVariable      NodeClass = 2
	NodeClassMethod        NodeClass = 4
	NodeClassObjectType    NodeClass = 8
	NodeClassVariableType  NodeClass = 16
	NodeClassReferenceType NodeClass = 32
	NodeClassDataType      NodeClass = 64
	NodeClassView          NodeClass = 128
)

// String implements fmt.Stringer.
func (c NodeClass) String() string {
	switch c {
	case NodeClassObject:
		return "Object"
	case NodeClassVariable:
		return "Variable"
	case NodeClassMethod:
		return "Method"
	case NodeClassObjectType:
		return "ObjectType"
	case NodeClassVariableType:
		return "VariableType"
	case NodeClassReferenceType:
		return "ReferenceType"
	case NodeClassDataType:
		return "DataType"
	case NodeClassView:
		return "View"
	default:
		return fmt.Sprintf("NodeClass(%d)", uint32(c))
	}
}

// BrowseDirection selects which references Browse follows.
type BrowseDirection uint32

// Browse directions.
const (
	BrowseDirectionForward BrowseDirection = 0
	BrowseDirectionInverse BrowseDirection = 1
	BrowseDirectionBoth    BrowseDirection = 2
)

// AttributeID identifies a node attribute in Read requests.
type AttributeID uint32

// Attribute ids (OPC 10000-4 §A.1).
const (
	AttrNodeID          AttributeID = 1
	AttrNodeClass       AttributeID = 2
	AttrBrowseName      AttributeID = 3
	AttrDisplayName     AttributeID = 4
	AttrDescription     AttributeID = 5
	AttrWriteMask       AttributeID = 6
	AttrUserWriteMask   AttributeID = 7
	AttrValue           AttributeID = 13
	AttrDataType        AttributeID = 14
	AttrValueRank       AttributeID = 15
	AttrAccessLevel     AttributeID = 17
	AttrUserAccessLevel AttributeID = 18
	AttrExecutable      AttributeID = 21
	AttrUserExecutable  AttributeID = 22
)

// AccessLevel bits for the AccessLevel/UserAccessLevel attributes.
type AccessLevel byte

// Access level bits.
const (
	AccessLevelRead  AccessLevel = 0x01
	AccessLevelWrite AccessLevel = 0x02
)

// CanRead reports whether the read bit is set.
func (a AccessLevel) CanRead() bool { return a&AccessLevelRead != 0 }

// CanWrite reports whether the write bit is set.
func (a AccessLevel) CanWrite() bool { return a&AccessLevelWrite != 0 }

// TimestampsToReturn selects which timestamps Read returns.
type TimestampsToReturn uint32

// Timestamp selections.
const (
	TimestampsSource  TimestampsToReturn = 0
	TimestampsServer  TimestampsToReturn = 1
	TimestampsBoth    TimestampsToReturn = 2
	TimestampsNeither TimestampsToReturn = 3
)

// Well-known numeric node ids referenced by the study.
const (
	IDRootFolder          = 84
	IDObjectsFolder       = 85
	IDTypesFolder         = 86
	IDViewsFolder         = 87
	IDServerObject        = 2253
	IDServerArray         = 2254
	IDNamespaceArray      = 2255
	IDServerStatus        = 2256
	IDBuildInfo           = 2260
	IDProductURI          = 2262
	IDManufacturerName    = 2263
	IDProductName         = 2261
	IDSoftwareVersion     = 2264
	IDBuildNumber         = 2265
	IDBuildDate           = 2266
	IDCurrentTime         = 2258
	IDStartTime           = 2257
	IDReferencesRefType   = 31
	IDHierarchicalRefType = 33
	IDHasChildRefType     = 34
	IDOrganizesRefType    = 35
	IDHasComponentRefType = 47
	IDHasPropertyRefType  = 46
)

// TransportProfileBinary is the URI of the UA-TCP binary transport.
const TransportProfileBinary = "http://opcfoundation.org/UA-Profile/Transport/uatcp-uasc-uabinary"
