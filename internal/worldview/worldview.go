// Package worldview provides immutable, shareable snapshots of the
// simulated Internet at one measurement wave.
//
// The legacy execution model serializes every wave on the single
// mutable simnet.Network: deploy.World.ApplyWave re-registers the
// wave's population in place, so wave w+1 cannot scan until wave w is
// done with the shared host table. A Snapshot inverts that ownership:
// it is constructed once per wave from the world spec, never mutated
// afterwards, and satisfies the same read-only simnet.View interface
// the scanner consumes — so a campaign can materialize the views for
// all N waves up front and run every wave's scan concurrently (see
// DESIGN.md).
//
// Host lookup is sharded by universe address prefix: each /16 of the
// scannable space owns an independent shard (plus one shard for hosts
// outside the universe, e.g. hidden servers reached only through
// references). Shards are immutable after Build, so concurrent
// scanners read them without any locking and scanners working
// disjoint prefixes touch disjoint memory.
//
// Snapshots for different waves share the world's underlying server
// instances, which is what makes the campaign-scoped crypto-reuse layer
// (PR 4) work across waves: deploy.World.SetCrypto installs the
// memoized RSA engine on those shared servers once, and every snapshot
// — past and future — serves handshakes through it. The snapshot
// itself holds no crypto state (DESIGN.md §4).
//
// Snapshots are also the unit the sharded campaign runtime (PR 5)
// distributes over: scanner.RunWaveShard scans one slice of the
// permuted probe space against a snapshot, any number of shards
// concurrently against the same snapshot in-process — or against
// independently materialized but byte-identical snapshots in worker
// processes, since deploy.Materialize is a pure function of the spec
// (DESIGN.md §5).
package worldview

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"time"

	"repro/internal/chaos"
	"repro/internal/simnet"
)

// Config fixes the snapshot's universe and dial behaviour. Noise and
// latency are copied from the network the snapshot stands in for, so a
// wave scanned through a snapshot observes the exact same Internet as
// one scanned through the mutable Network.
type Config struct {
	// Universe is the scannable address space (required).
	Universe *simnet.Universe
	// Noise is the deterministic open-port-but-not-OPC-UA model.
	Noise simnet.Noise
	// Latency delays every dial.
	Latency time.Duration
	// Chaos is the wave-bound adversarial-host model (DESIGN.md §9),
	// already bound to this snapshot's wave; the zero value leaves
	// every registered host polite. Like Noise it is pure function
	// state, so snapshots stay immutable and shard-equivalent.
	Chaos chaos.WaveModel
}

// host is one registered endpoint of the snapshot.
type host struct {
	asn     int
	handler simnet.ConnHandler
}

// shard is one prefix's slice of the host table. Immutable after
// Build; maps are safe for unlimited concurrent readers.
type shard struct {
	hosts    map[netip.AddrPort]host
	asOfIP   map[netip.Addr]int
	excluded map[netip.Addr]bool
}

// Builder accumulates one wave's population and seals it into a
// Snapshot. Builders are not safe for concurrent use; construction is
// cheap (map inserts only — servers are built and cached by the world).
type Builder struct {
	cfg    Config
	shards []shard
	hosts  int
	built  bool
}

// NewBuilder starts a snapshot with one shard per universe prefix plus
// a catch-all shard for out-of-universe hosts.
func NewBuilder(cfg Config) (*Builder, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("worldview: nil universe")
	}
	shards := make([]shard, cfg.Universe.NumPrefixes()+1)
	for i := range shards {
		shards[i] = shard{
			hosts:    make(map[netip.AddrPort]host),
			asOfIP:   make(map[netip.Addr]int),
			excluded: make(map[netip.Addr]bool),
		}
	}
	return &Builder{cfg: cfg, shards: shards}, nil
}

// shardFor maps an address to its prefix's shard; out-of-universe
// addresses land in the final catch-all shard.
func (b *Builder) shardFor(ip netip.Addr) *shard {
	i := b.cfg.Universe.PrefixIndex(ip)
	if i < 0 {
		i = len(b.shards) - 1
	}
	return &b.shards[i]
}

// AddHost registers one endpoint. Adding the same ip:port twice
// replaces the previous handler, mirroring Network.Register.
func (b *Builder) AddHost(ip netip.Addr, port, asn int, h simnet.ConnHandler) {
	s := b.shardFor(ip)
	key := netip.AddrPortFrom(ip, uint16(port))
	if _, ok := s.hosts[key]; !ok {
		b.hosts++
	}
	s.hosts[key] = host{asn: asn, handler: h}
	s.asOfIP[ip] = asn
}

// Exclude marks an IP as opted out (Appendix A.2): connects are
// refused even if a host is registered there.
func (b *Builder) Exclude(ip netip.Addr) {
	b.shardFor(ip).excluded[ip] = true
}

// Build seals the population into an immutable Snapshot. The builder
// must not be used afterwards.
func (b *Builder) Build() *Snapshot {
	if b.built {
		panic("worldview: Build called twice")
	}
	b.built = true
	return &Snapshot{cfg: b.cfg, shards: b.shards, hosts: b.hosts}
}

// Snapshot is the immutable world at one wave. It satisfies
// simnet.View (and therefore uaclient.Dialer), so the scanner runs
// against it exactly as it runs against the mutable Network — but any
// number of snapshots can be scanned concurrently because nothing is
// ever written after Build.
type Snapshot struct {
	cfg    Config
	shards []shard
	hosts  int
}

// Compile-time check: snapshots satisfy the scanner's view interface.
var _ simnet.View = (*Snapshot)(nil)

// Universe returns the scannable address space.
func (s *Snapshot) Universe() *simnet.Universe { return s.cfg.Universe }

// NumHosts returns the number of registered endpoints.
func (s *Snapshot) NumHosts() int { return s.hosts }

// NumShards returns the shard count (universe prefixes + 1).
func (s *Snapshot) NumShards() int { return len(s.shards) }

// shardFor resolves an address's shard with a single prefix walk; the
// second result reports whether the address is inside the universe
// (needed by the noise model, which only applies there).
func (s *Snapshot) shardFor(ip netip.Addr) (*shard, bool) {
	i := s.cfg.Universe.PrefixIndex(ip)
	if i < 0 {
		return &s.shards[len(s.shards)-1], false
	}
	return &s.shards[i], true
}

// OpenPort reports whether a TCP connect to the address would succeed,
// without spawning handlers; the result matches DialContext exactly.
func (s *Snapshot) OpenPort(ip netip.Addr, port int) bool {
	sh, inUniverse := s.shardFor(ip)
	// Exclusion lists are tiny (usually empty); skip the map hash on
	// the per-probe path when the shard has none.
	if len(sh.excluded) > 0 && sh.excluded[ip] {
		return false
	}
	if _, ok := sh.hosts[netip.AddrPortFrom(ip, uint16(port))]; ok {
		return true
	}
	return inUniverse && s.cfg.Noise.HitInUniverse(ip, port)
}

// ASOf returns the autonomous system of an address; addresses without
// a registered host get the same deterministic fallback as the
// mutable Network.
func (s *Snapshot) ASOf(ip netip.Addr) int {
	sh, _ := s.shardFor(ip)
	if asn, ok := sh.asOfIP[ip]; ok {
		return asn
	}
	return simnet.DefaultASN(ip)
}

// DialContext implements the Dialer interface used by uaclient and the
// scanner, with the same semantics as Network.DialContext.
func (s *Snapshot) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("worldview: unsupported network %q", network)
	}
	// Single-pass address parse: every grab dials several times, and
	// the split/parse/atoi chain costs three allocations per dial.
	ap, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, fmt.Errorf("worldview: %w", err)
	}
	ip, port := ap.Addr(), int(ap.Port())
	if s.cfg.Latency > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.cfg.Latency):
		}
	}
	sh, inUniverse := s.shardFor(ip)
	if len(sh.excluded) > 0 && sh.excluded[ip] {
		return nil, simnet.ErrRefused{Addr: address}
	}
	h, ok := sh.hosts[netip.AddrPortFrom(ip, uint16(port))]
	if !ok {
		if inUniverse && s.cfg.Noise.HitInUniverse(ip, port) {
			client, server := net.Pipe()
			go simnet.ServeNoise(server)
			return client, nil
		}
		return nil, simnet.ErrRefused{Addr: address}
	}
	// Adversarial behavior applies to registered hosts only, decided
	// purely from (seed, wave, ip, port) plus the dial's context-borne
	// attempt number — identical to Network.DialContext's chaos path.
	if b := s.cfg.Chaos.Behavior(ip.As4(), port); b.Kind != chaos.KindNone {
		if b.Refuses(chaos.AttemptFromContext(ctx)) {
			return nil, simnet.ErrRefused{Addr: address}
		}
		client, server := net.Pipe()
		go chaos.Serve(b, server, h.handler.HandleConn)
		return client, nil
	}
	client, server := net.Pipe()
	go h.handler.HandleConn(server)
	return client, nil
}
