package worldview

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func testUniverse(t *testing.T) *simnet.Universe {
	t.Helper()
	var prefixes []simnet.Prefix
	for _, base := range []string{"192.0.2.0", "198.51.100.0", "203.0.113.0"} {
		p, err := simnet.NewPrefix(base, 24)
		if err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, p)
	}
	return simnet.NewUniverse(prefixes...)
}

// echoHandler answers one byte so dials are observable.
var echoHandler = simnet.HandlerFunc(func(conn net.Conn) {
	defer conn.Close()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		_, _ = conn.Write(buf)
	}
})

// buildPair registers the same population on a mutable Network and a
// Snapshot so tests can require identical behaviour.
func buildPair(t *testing.T) (*simnet.Network, *Snapshot) {
	t.Helper()
	u := testUniverse(t)
	nw := simnet.New(u)
	nw.SetNoise(0.25)

	b, err := NewBuilder(Config{Universe: u, Noise: nw.NoiseModel()})
	if err != nil {
		t.Fatal(err)
	}
	add := func(ip string, port, asn int) {
		a := netip.MustParseAddr(ip)
		nw.Register(a, port, asn, echoHandler)
		b.AddHost(a, port, asn, echoHandler)
	}
	add("192.0.2.10", 4840, 65010)
	add("198.51.100.20", 4841, 65020)
	add("203.0.113.30", 4840, 65030)
	add("10.9.9.9", 4840, 65099) // outside the universe (hidden host)
	excl := netip.MustParseAddr("192.0.2.66")
	nw.Register(excl, 4840, 65066, echoHandler)
	b.AddHost(excl, 4840, 65066, echoHandler)
	nw.Exclude(excl)
	b.Exclude(excl)
	return nw, b.Build()
}

// TestSnapshotMatchesNetworkOpenPort sweeps the full universe plus the
// out-of-universe host and requires OpenPort parity with the mutable
// network, including the deterministic noise model.
func TestSnapshotMatchesNetworkOpenPort(t *testing.T) {
	nw, snap := buildPair(t)
	u := nw.Universe()
	noise := 0
	for i := uint64(0); i < u.Size(); i++ {
		addr, err := u.AddrAt(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, port := range []int{4840, 4841} {
			got, want := snap.OpenPort(addr, port), nw.OpenPort(addr, port)
			if got != want {
				t.Fatalf("OpenPort(%s, %d) = %v, network says %v", addr, port, got, want)
			}
			if got && port == 4840 {
				noise++
			}
		}
	}
	if noise < 30 {
		t.Errorf("open 4840 ports = %d, noise model not applied", noise)
	}
	out := netip.MustParseAddr("10.9.9.9")
	if !snap.OpenPort(out, 4840) || snap.OpenPort(out, 4841) {
		t.Error("out-of-universe host mishandled")
	}
	if snap.OpenPort(netip.MustParseAddr("192.0.2.66"), 4840) {
		t.Error("excluded IP reported open")
	}
}

func TestSnapshotASOf(t *testing.T) {
	nw, snap := buildPair(t)
	for _, ip := range []string{"192.0.2.10", "198.51.100.20", "10.9.9.9", "192.0.2.200", "8.8.8.8"} {
		a := netip.MustParseAddr(ip)
		if got, want := snap.ASOf(a), nw.ASOf(a); got != want {
			t.Errorf("ASOf(%s) = %d, network says %d", ip, got, want)
		}
	}
}

func TestSnapshotDialContext(t *testing.T) {
	_, snap := buildPair(t)
	ctx := context.Background()

	dial := func(addr string) (net.Conn, error) {
		t.Helper()
		return snap.DialContext(ctx, "tcp", addr)
	}
	// Registered host answers.
	conn, err := dial("198.51.100.20:4841")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0x7}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil || buf[0] != 0x7 {
		t.Fatalf("echo = %v %v", buf, err)
	}
	conn.Close()

	// Closed port refuses.
	if _, err := dial("192.0.2.50:4841"); err == nil {
		t.Error("closed port did not refuse")
	} else if _, ok := err.(simnet.ErrRefused); !ok {
		t.Errorf("closed port error = %T", err)
	}
	// Excluded IP refuses even though a host is registered.
	if _, err := dial("192.0.2.66:4840"); err == nil {
		t.Error("excluded IP did not refuse")
	}
	// Unsupported network.
	if _, err := snap.DialContext(ctx, "udp", "192.0.2.10:4840"); err == nil {
		t.Error("udp dial accepted")
	}
}

func TestSnapshotNoiseServesHTTP(t *testing.T) {
	u := testUniverse(t)
	b, err := NewBuilder(Config{Universe: u, Noise: simnet.Noise{Prob: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	snap := b.Build()
	conn, err := snap.DialContext(context.Background(), "tcp", "192.0.2.77:4840")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("HEL")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("noise read = %d, %v", n, err)
	}
	if string(buf[:4]) != "HTTP" {
		t.Errorf("noise response = %q", buf[:n])
	}
}

func TestSnapshotLatency(t *testing.T) {
	u := testUniverse(t)
	b, err := NewBuilder(Config{Universe: u, Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ip := netip.MustParseAddr("192.0.2.10")
	b.AddHost(ip, 4840, 65010, echoHandler)
	snap := b.Build()

	start := time.Now()
	conn, err := snap.DialContext(context.Background(), "tcp", "192.0.2.10:4840")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("dial took %v, latency not applied", elapsed)
	}
	// A cancelled context aborts the latency wait.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := snap.DialContext(ctx, "tcp", "192.0.2.10:4840"); err == nil {
		t.Error("cancelled dial succeeded")
	}
}

// TestSnapshotSharding pins the shard layout: one shard per universe
// prefix plus the catch-all, and hosts of different prefixes are
// reachable (i.e. land in a shard at all).
func TestSnapshotSharding(t *testing.T) {
	_, snap := buildPair(t)
	if snap.NumShards() != 4 {
		t.Fatalf("shards = %d, want 3 prefixes + 1 catch-all", snap.NumShards())
	}
	if snap.NumHosts() != 5 {
		t.Errorf("hosts = %d, want 5", snap.NumHosts())
	}
	for _, addr := range []string{"192.0.2.10:4840", "198.51.100.20:4841", "203.0.113.30:4840", "10.9.9.9:4840"} {
		conn, err := snap.DialContext(context.Background(), "tcp", addr)
		if err != nil {
			t.Errorf("dial %s: %v", addr, err)
			continue
		}
		conn.Close()
	}
}

// TestSnapshotConcurrentReaders hammers one snapshot from many
// goroutines; under -race this proves reads are lock-free safe.
func TestSnapshotConcurrentReaders(t *testing.T) {
	_, snap := buildPair(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap.OpenPort(netip.MustParseAddr("192.0.2.10"), 4840)
				snap.ASOf(netip.MustParseAddr("203.0.113.30"))
				conn, err := snap.DialContext(context.Background(), "tcp", "192.0.2.10:4840")
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(Config{}); err == nil {
		t.Error("nil universe accepted")
	}
	b, err := NewBuilder(Config{Universe: testUniverse(t)})
	if err != nil {
		t.Fatal(err)
	}
	b.Build()
	defer func() {
		if recover() == nil {
			t.Error("second Build did not panic")
		}
	}()
	b.Build()
}
