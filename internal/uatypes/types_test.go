package uatypes

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/uastatus"
)

func roundTripNodeID(t *testing.T, n NodeID) NodeID {
	t.Helper()
	e := NewEncoder(0)
	n.Encode(e)
	d := NewDecoder(e.Bytes())
	got := DecodeNodeID(d)
	if err := d.Close(); err != nil {
		t.Fatalf("NodeID %v: %v", n, err)
	}
	return got
}

func TestNodeIDNumericCompactEncodings(t *testing.T) {
	cases := []struct {
		id       NodeID
		wireSize int
	}{
		{NewNumericNodeID(0, 85), 2},      // two-byte
		{NewNumericNodeID(3, 1024), 4},    // four-byte
		{NewNumericNodeID(300, 70000), 7}, // full numeric
	}
	for _, c := range cases {
		e := NewEncoder(0)
		c.id.Encode(e)
		if e.Len() != c.wireSize {
			t.Errorf("%v encoded to %d bytes, want %d", c.id, e.Len(), c.wireSize)
		}
		got := roundTripNodeID(t, c.id)
		if got.Namespace != c.id.Namespace || got.Numeric != c.id.Numeric {
			t.Errorf("%v round-tripped to %v", c.id, got)
		}
	}
}

func TestNodeIDStringRoundTrip(t *testing.T) {
	n := NewStringNodeID(2, "Demo.Static.Scalar")
	got := roundTripNodeID(t, n)
	if got.Text != n.Text || got.Namespace != 2 || got.Type != NodeIDTypeString {
		t.Errorf("got %+v", got)
	}
}

func TestNodeIDGuidRoundTrip(t *testing.T) {
	n := NodeID{Type: NodeIDTypeGuid, Namespace: 5, GuidID: NewGuid()}
	got := roundTripNodeID(t, n)
	if got.GuidID != n.GuidID {
		t.Errorf("guid %v != %v", got.GuidID, n.GuidID)
	}
}

func TestNodeIDByteStringRoundTrip(t *testing.T) {
	n := NodeID{Type: NodeIDTypeByteString, Namespace: 1, Bytes: []byte{1, 2, 3}}
	got := roundTripNodeID(t, n)
	if !bytes.Equal(got.Bytes, n.Bytes) {
		t.Errorf("bytes %x != %x", got.Bytes, n.Bytes)
	}
}

func TestQuickNodeIDNumericRoundTrip(t *testing.T) {
	f := func(ns uint16, id uint32) bool {
		n := NewNumericNodeID(ns, id)
		e := NewEncoder(0)
		n.Encode(e)
		d := NewDecoder(e.Bytes())
		got := DecodeNodeID(d)
		return d.Close() == nil && got.Namespace == ns && got.Numeric == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNodeID(t *testing.T) {
	cases := []struct {
		in   string
		want NodeID
	}{
		{"i=85", NewNumericNodeID(0, 85)},
		{"ns=2;i=1234", NewNumericNodeID(2, 1234)},
		{"ns=3;s=Machine.Speed", NewStringNodeID(3, "Machine.Speed")},
	}
	for _, c := range cases {
		got, err := ParseNodeID(c.in)
		if err != nil {
			t.Errorf("ParseNodeID(%q): %v", c.in, err)
			continue
		}
		if got.Key() != c.want.Key() {
			t.Errorf("ParseNodeID(%q) = %v, want %v", c.in, got, c.want)
		}
		// String() must parse back to the same id.
		back, err := ParseNodeID(got.String())
		if err != nil || back.Key() != got.Key() {
			t.Errorf("reparse of %q failed: %v %v", got.String(), back, err)
		}
	}
	for _, bad := range []string{"", "x=3", "ns=2", "ns=abc;i=1", "i=notanumber"} {
		if _, err := ParseNodeID(bad); err == nil {
			t.Errorf("ParseNodeID(%q) succeeded, want error", bad)
		}
	}
}

func TestExpandedNodeIDRoundTrip(t *testing.T) {
	cases := []ExpandedNodeID{
		{NodeID: NewNumericNodeID(0, 85)},
		{NodeID: NewStringNodeID(1, "abc"), NamespaceURI: "urn:example"},
		{NodeID: NewNumericNodeID(2, 7), ServerIndex: 3},
		{NodeID: NewNumericNodeID(2, 7), NamespaceURI: "urn:x", ServerIndex: 9},
	}
	for _, x := range cases {
		e := NewEncoder(0)
		x.Encode(e)
		d := NewDecoder(e.Bytes())
		got := DecodeExpandedNodeID(d)
		if err := d.Close(); err != nil {
			t.Fatalf("%+v: %v", x, err)
		}
		if got.NamespaceURI != x.NamespaceURI || got.ServerIndex != x.ServerIndex ||
			got.NodeID.Key() != x.NodeID.Key() {
			t.Errorf("round trip %+v -> %+v", x, got)
		}
	}
}

func TestQualifiedNameRoundTrip(t *testing.T) {
	q := QualifiedName{NamespaceIndex: 4, Name: "Objects"}
	e := NewEncoder(0)
	q.Encode(e)
	d := NewDecoder(e.Bytes())
	if got := DecodeQualifiedName(d); got != q {
		t.Errorf("got %+v", got)
	}
}

func TestLocalizedTextRoundTrip(t *testing.T) {
	cases := []LocalizedText{
		{},
		{Text: "hello"},
		{Locale: "en-US", Text: "hello"},
		{Locale: "de"},
	}
	for _, l := range cases {
		e := NewEncoder(0)
		l.Encode(e)
		d := NewDecoder(e.Bytes())
		got := DecodeLocalizedText(d)
		if err := d.Close(); err != nil {
			t.Fatalf("%+v: %v", l, err)
		}
		if got != l {
			t.Errorf("round trip %+v -> %+v", l, got)
		}
	}
}

func TestExtensionObjectRoundTrip(t *testing.T) {
	x := NewExtensionObject(321, []byte{0xDE, 0xAD})
	e := NewEncoder(0)
	x.Encode(e)
	d := NewDecoder(e.Bytes())
	got := DecodeExtensionObject(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got.TypeID.NodeID.Numeric != 321 || !bytes.Equal(got.Body, x.Body) {
		t.Errorf("got %+v", got)
	}

	empty := ExtensionObject{}
	e2 := NewEncoder(0)
	empty.Encode(e2)
	d2 := NewDecoder(e2.Bytes())
	got2 := DecodeExtensionObject(d2)
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if got2.Encoding != ExtensionObjectEmpty || got2.Body != nil {
		t.Errorf("empty ext obj decoded to %+v", got2)
	}
}

func TestVariantScalarRoundTrip(t *testing.T) {
	now := time.Date(2020, 8, 30, 12, 0, 0, 0, time.UTC)
	cases := []Variant{
		{},
		BoolVariant(true),
		Int32Variant(-42),
		Uint32Variant(42),
		DoubleVariant(1.5),
		StringVariant("m3InflowPerHour"),
		TimeVariant(now),
		LocalizedTextVariant("Füllstand"),
		{Type: TypeSByte, Int: -3},
		{Type: TypeByte, Uint: 200},
		{Type: TypeInt16, Int: -1000},
		{Type: TypeUint16, Uint: 50000},
		{Type: TypeInt64, Int: -1 << 40},
		{Type: TypeUint64, Uint: 1 << 60},
		{Type: TypeFloat, Float: 0.5},
		{Type: TypeGuid, GuidVal: NewGuid()},
		{Type: TypeByteString, Bytes: []byte{9, 8, 7}},
		{Type: TypeNodeID, Node: NewStringNodeID(2, "n")},
		{Type: TypeStatusCode, Status: uastatus.BadNodeIdUnknown},
		{Type: TypeQualifiedName, QName: QualifiedName{1, "q"}},
	}
	for _, v := range cases {
		e := NewEncoder(0)
		v.Encode(e)
		d := NewDecoder(e.Bytes())
		got := DecodeVariant(d)
		if err := d.Close(); err != nil {
			t.Fatalf("variant %v: %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

func TestVariantStringArrayRoundTrip(t *testing.T) {
	v := StringArrayVariant([]string{"http://opcfoundation.org/UA/", "urn:demo"})
	e := NewEncoder(0)
	v.Encode(e)
	d := NewDecoder(e.Bytes())
	got := DecodeVariant(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{"http://opcfoundation.org/UA/", "urn:demo"}
	if !reflect.DeepEqual(got.StringArray(), want) {
		t.Errorf("got %v", got.StringArray())
	}
}

func TestVariantStringArrayOnNonArray(t *testing.T) {
	if StringVariant("x").StringArray() != nil {
		t.Error("StringArray on scalar should be nil")
	}
}

func TestDataValueRoundTrip(t *testing.T) {
	val := StringVariant("v")
	dv := DataValue{
		Value:           &val,
		Status:          uastatus.Good,
		HasStatus:       true,
		SourceTimestamp: TimeToDateTime(time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC)),
	}
	e := NewEncoder(0)
	dv.Encode(e)
	d := NewDecoder(e.Bytes())
	got := DecodeDataValue(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Value == nil || got.Value.Str != "v" || !got.HasStatus ||
		got.SourceTimestamp != dv.SourceTimestamp {
		t.Errorf("got %+v", got)
	}
}

func TestVariantRejectsUnknownType(t *testing.T) {
	d := NewDecoder([]byte{26}) // type id out of range
	_ = DecodeVariant(d)
	if d.Err() == nil {
		t.Error("decoding variant type 26 should fail")
	}
}

func TestGuidStringFormat(t *testing.T) {
	g := Guid{Data1: 0x12345678, Data2: 0x9ABC, Data3: 0xDEF0,
		Data4: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}}
	want := "12345678-9abc-def0-0102-030405060708"
	if got := g.String(); got != want {
		t.Errorf("Guid.String() = %q, want %q", got, want)
	}
}

func TestStatusCodeHelpers(t *testing.T) {
	if !uastatus.Good.IsGood() || uastatus.Good.IsBad() {
		t.Error("Good misclassified")
	}
	if !uastatus.BadTimeout.IsBad() {
		t.Error("BadTimeout not bad")
	}
	if !uastatus.UncertainInitialValue.IsUncertain() {
		t.Error("UncertainInitialValue not uncertain")
	}
	if uastatus.BadTimeout.Name() != "BadTimeout" {
		t.Errorf("Name = %q", uastatus.BadTimeout.Name())
	}
	if uastatus.Code(0x80FF0000).String() == "" {
		t.Error("unknown code should render hex")
	}
	if uastatus.BadTimeout.Error() != "BadTimeout" {
		t.Errorf("Error() = %q", uastatus.BadTimeout.Error())
	}
}

func BenchmarkVariantRoundTrip(b *testing.B) {
	v := StringArrayVariant([]string{"a", "b", "c", "d"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(64)
		v.Encode(e)
		d := NewDecoder(e.Bytes())
		_ = DecodeVariant(d)
	}
}
