package uatypes

import (
	"testing"
	"time"
)

// Fuzz armor for the binary decoder (DESIGN.md §9): arbitrary wire
// bytes must never panic a decoder, and a handful of hostile input
// bytes must never buy an allocation that is not proportional to the
// input — length prefixes are attacker-controlled claims, not facts.

// fuzzSeedCorpus returns valid encodings of every composite type the
// fuzz gauntlet decodes, so coverage starts from the happy path
// rather than from random bytes.
func fuzzSeedCorpus() [][]byte {
	var seeds [][]byte
	add := func(fill func(e *Encoder)) {
		e := NewEncoder(64)
		fill(e)
		seeds = append(seeds, e.Bytes())
	}
	add(func(e *Encoder) { Guid{Data1: 0x12345678, Data2: 0x9abc}.Encode(e) })
	add(func(e *Encoder) { NewNumericNodeID(2, 12765).Encode(e) })
	add(func(e *Encoder) { NewStringNodeID(1, "Demo.Static").Encode(e) })
	add(func(e *Encoder) {
		ExpandedNodeID{
			NodeID:       NewNumericNodeID(0, 85),
			NamespaceURI: "urn:example",
			ServerIndex:  1,
		}.Encode(e)
	})
	add(func(e *Encoder) { QualifiedName{NamespaceIndex: 3, Name: "Objects"}.Encode(e) })
	add(func(e *Encoder) { LocalizedText{Locale: "en", Text: "Root"}.Encode(e) })
	add(func(e *Encoder) { NewExtensionObject(321, []byte{1, 2, 3, 4}).Encode(e) })
	add(func(e *Encoder) { StringVariant("hello").Encode(e) })
	add(func(e *Encoder) { StringArrayVariant([]string{"a", "b"}).Encode(e) })
	add(func(e *Encoder) {
		v := DoubleVariant(3.14)
		DataValue{
			Value:           &v,
			SourceTimestamp: TimeToDateTime(time.Unix(1600000000, 0).UTC()),
		}.Encode(e)
	})
	add(func(e *Encoder) {
		e.WriteString("endpoint")
		e.WriteByteString([]byte{0xde, 0xad})
		e.WriteInt32(2) // array length prefix
		e.WriteTime(time.Unix(1600000000, 0))
	})
	return seeds
}

// FuzzDecoderGauntlet drives every composite decoder over the same
// fuzz input with an independent Decoder each, checking the armor
// invariants: no panic, sticky errors stay sticky, and decoded
// strings/byte-strings never exceed the input length (a length claim
// must not out-allocate the bytes backing it).
func FuzzDecoderGauntlet(f *testing.F) {
	for _, s := range fuzzSeedCorpus() {
		f.Add(s)
	}
	// Hostile claims: huge string length, huge array length, negative
	// lengths, truncated composites.
	f.Add([]byte{0xf0, 0xff, 0xff, 0x7f})       // string/array claim ~2^31
	f.Add([]byte{0xfe, 0xff, 0xff, 0xff})       // length -2
	f.Add([]byte{0xff, 0xff, 0x0f, 0x00, 0x41}) // 1MiB claim, 1 byte of data
	f.Add([]byte{0x03})                         // NodeID type byte, no body

	f.Fuzz(func(t *testing.T, data []byte) {
		runs := []func(d *Decoder){
			func(d *Decoder) { DecodeGuid(d) },
			func(d *Decoder) { DecodeNodeID(d) },
			func(d *Decoder) { DecodeExpandedNodeID(d) },
			func(d *Decoder) { DecodeQualifiedName(d) },
			func(d *Decoder) { DecodeLocalizedText(d) },
			func(d *Decoder) { DecodeExtensionObject(d) },
			func(d *Decoder) { DecodeVariant(d) },
			func(d *Decoder) { DecodeDataValue(d) },
			func(d *Decoder) { DecodeDiagnosticInfo(d) },
			func(d *Decoder) {
				if s := d.ReadString(); len(s) > len(data) {
					t.Errorf("ReadString returned %d bytes from a %d-byte input", len(s), len(data))
				}
			},
			func(d *Decoder) {
				if b := d.ReadByteString(); len(b) > len(data) {
					t.Errorf("ReadByteString returned %d bytes from a %d-byte input", len(b), len(data))
				}
			},
			func(d *Decoder) {
				if n := d.ReadArrayLen(); n > len(data) {
					t.Errorf("ReadArrayLen accepted claim %d from a %d-byte input", n, len(data))
				}
			},
			func(d *Decoder) { d.ReadTime() },
		}
		for _, run := range runs {
			d := NewDecoder(data)
			run(d)
			if d.Err() != nil {
				// Sticky: a failed decoder must refuse further reads.
				off := d.Offset()
				d.ReadUint32()
				if d.Offset() != off {
					t.Error("decoder advanced past a sticky error")
				}
			}
			if d.Offset() > len(data) {
				t.Errorf("decoder offset %d beyond input length %d", d.Offset(), len(data))
			}
		}
	})
}

// FuzzDecoderSequence decodes a stream of primitives from one shared
// decoder — the way real message decoders consume a body — verifying
// the cursor never escapes the buffer whatever the interleaving.
func FuzzDecoderSequence(f *testing.F) {
	for _, s := range fuzzSeedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for d.Err() == nil && d.Remaining() > 0 {
			switch d.Offset() % 5 {
			case 0:
				d.ReadUint32()
			case 1:
				d.ReadString()
			case 2:
				d.ReadUint8()
			case 3:
				d.ReadByteString()
			default:
				d.ReadUint16()
			}
			if d.Offset() > len(data) {
				t.Fatalf("offset %d beyond input length %d", d.Offset(), len(data))
			}
		}
	})
}
