package uatypes

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/uastatus"
)

// Guid is a 16-byte globally unique identifier with Microsoft-style
// mixed-endian wire encoding (OPC 10000-6 §5.2.2.13).
type Guid struct {
	Data1 uint32
	Data2 uint16
	Data3 uint16
	Data4 [8]byte
}

// NewGuid returns a random Guid.
//
//studyvet:entropy-exempt — random by contract; deterministic campaigns derive Guids from seeded streams, never this constructor
func NewGuid() Guid {
	var g Guid
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("uatypes: crypto/rand failed: " + err.Error())
	}
	g.Data1 = binary.LittleEndian.Uint32(b[0:4])
	g.Data2 = binary.LittleEndian.Uint16(b[4:6])
	g.Data3 = binary.LittleEndian.Uint16(b[6:8])
	copy(g.Data4[:], b[8:16])
	return g
}

// Encode writes the Guid to e.
func (g Guid) Encode(e *Encoder) {
	e.WriteUint32(g.Data1)
	e.WriteUint16(g.Data2)
	e.WriteUint16(g.Data3)
	e.WriteRaw(g.Data4[:])
}

// DecodeGuid reads a Guid from d.
func DecodeGuid(d *Decoder) Guid {
	var g Guid
	g.Data1 = d.ReadUint32()
	g.Data2 = d.ReadUint16()
	g.Data3 = d.ReadUint16()
	copy(g.Data4[:], d.ReadRaw(8))
	return g
}

// String renders the Guid in canonical 8-4-4-4-12 form.
func (g Guid) String() string {
	return fmt.Sprintf("%08x-%04x-%04x-%s-%s",
		g.Data1, g.Data2, g.Data3,
		hex.EncodeToString(g.Data4[:2]), hex.EncodeToString(g.Data4[2:]))
}

// NodeIDType identifies the identifier variant of a NodeID. The zero
// value is Numeric, so the zero NodeID is the null node id "i=0".
type NodeIDType byte

// Logical NodeID identifier types. On the wire, numeric ids use one of
// three compact encodings chosen automatically (OPC 10000-6 §5.2.2.9).
const (
	NodeIDTypeNumeric    NodeIDType = 0
	NodeIDTypeString     NodeIDType = 1
	NodeIDTypeGuid       NodeIDType = 2
	NodeIDTypeByteString NodeIDType = 3
)

// Wire encoding bytes for node ids.
const (
	wireTwoByte    = 0x00
	wireFourByte   = 0x01
	wireNumeric    = 0x02
	wireString     = 0x03
	wireGuid       = 0x04
	wireByteString = 0x05
)

// NodeID identifies a node in an OPC UA address space.
type NodeID struct {
	Type      NodeIDType
	Namespace uint16
	Numeric   uint32
	Text      string // String identifier
	GuidID    Guid
	Bytes     []byte // ByteString identifier
}

// NewNumericNodeID returns a numeric NodeID in the given namespace.
func NewNumericNodeID(ns uint16, id uint32) NodeID {
	return NodeID{Type: NodeIDTypeNumeric, Namespace: ns, Numeric: id}
}

// NewStringNodeID returns a string NodeID in the given namespace.
func NewStringNodeID(ns uint16, s string) NodeID {
	return NodeID{Type: NodeIDTypeString, Namespace: ns, Text: s}
}

// IsNull reports whether the NodeID is the null node id (ns=0, i=0).
func (n NodeID) IsNull() bool {
	switch n.Type {
	case NodeIDTypeNumeric:
		return n.Namespace == 0 && n.Numeric == 0
	case NodeIDTypeString:
		return n.Namespace == 0 && n.Text == ""
	case NodeIDTypeByteString:
		return n.Namespace == 0 && len(n.Bytes) == 0
	}
	return false
}

// AppendKey appends the node id's map-key representation to dst and
// returns the result. Lookups on the address-space and session hot
// paths use it with a stack buffer and the map[string(bytes)] pattern,
// which the compiler compiles without allocating the key.
func (n NodeID) AppendKey(dst []byte) []byte {
	dst = append(dst, "ns="...)
	dst = strconv.AppendUint(dst, uint64(n.Namespace), 10)
	switch n.Type {
	case NodeIDTypeString:
		dst = append(dst, ";s="...)
		return append(dst, n.Text...)
	case NodeIDTypeGuid:
		dst = append(dst, ";g="...)
		return append(dst, n.GuidID.String()...)
	case NodeIDTypeByteString:
		dst = append(dst, ";b="...)
		return hex.AppendEncode(dst, n.Bytes)
	default:
		dst = append(dst, ";i="...)
		return strconv.AppendUint(dst, uint64(n.Numeric), 10)
	}
}

// Key returns a map-key string uniquely identifying the node id. The
// format matches the historical Sprintf-based one byte for byte.
func (n NodeID) Key() string {
	var buf [48]byte
	return string(n.AppendKey(buf[:0]))
}

// String renders the NodeID in the standard textual notation.
func (n NodeID) String() string {
	if n.Namespace == 0 {
		switch n.Type {
		case NodeIDTypeString:
			return "s=" + n.Text
		case NodeIDTypeGuid:
			return "g=" + n.GuidID.String()
		case NodeIDTypeByteString:
			return "b=" + hex.EncodeToString(n.Bytes)
		default:
			return "i=" + strconv.FormatUint(uint64(n.Numeric), 10)
		}
	}
	return n.Key()
}

// ParseNodeID parses the standard textual notation ("ns=2;s=Demo", "i=85").
func ParseNodeID(s string) (NodeID, error) {
	var n NodeID
	rest := s
	if strings.HasPrefix(rest, "ns=") {
		i := strings.IndexByte(rest, ';')
		if i < 0 {
			return n, fmt.Errorf("uatypes: invalid node id %q", s)
		}
		ns, err := strconv.ParseUint(rest[3:i], 10, 16)
		if err != nil {
			return n, fmt.Errorf("uatypes: invalid namespace in %q: %v", s, err)
		}
		n.Namespace = uint16(ns)
		rest = rest[i+1:]
	}
	if len(rest) < 2 || rest[1] != '=' {
		return n, fmt.Errorf("uatypes: invalid node id %q", s)
	}
	switch rest[0] {
	case 'i':
		v, err := strconv.ParseUint(rest[2:], 10, 32)
		if err != nil {
			return n, fmt.Errorf("uatypes: invalid numeric id in %q: %v", s, err)
		}
		n.Type = NodeIDTypeNumeric
		n.Numeric = uint32(v)
	case 's':
		n.Type = NodeIDTypeString
		n.Text = rest[2:]
	case 'b':
		b, err := hex.DecodeString(rest[2:])
		if err != nil {
			return n, fmt.Errorf("uatypes: invalid bytestring id in %q: %v", s, err)
		}
		n.Type = NodeIDTypeByteString
		n.Bytes = b
	default:
		return n, fmt.Errorf("uatypes: unsupported node id kind %q", rest[0])
	}
	return n, nil
}

// Encode writes the NodeID to e using the most compact encoding.
func (n NodeID) Encode(e *Encoder) {
	switch n.Type {
	case NodeIDTypeNumeric:
		switch {
		case n.Namespace == 0 && n.Numeric <= 0xFF:
			e.WriteUint8(wireTwoByte)
			e.WriteUint8(byte(n.Numeric))
		case n.Namespace <= 0xFF && n.Numeric <= 0xFFFF:
			e.WriteUint8(wireFourByte)
			e.WriteUint8(byte(n.Namespace))
			e.WriteUint16(uint16(n.Numeric))
		default:
			e.WriteUint8(wireNumeric)
			e.WriteUint16(n.Namespace)
			e.WriteUint32(n.Numeric)
		}
	case NodeIDTypeString:
		e.WriteUint8(wireString)
		e.WriteUint16(n.Namespace)
		e.WriteString(n.Text)
	case NodeIDTypeGuid:
		e.WriteUint8(wireGuid)
		e.WriteUint16(n.Namespace)
		n.GuidID.Encode(e)
	case NodeIDTypeByteString:
		e.WriteUint8(wireByteString)
		e.WriteUint16(n.Namespace)
		e.WriteByteString(n.Bytes)
	}
}

// expandedFlagServerIndex and expandedFlagNamespaceURI mark optional
// ExpandedNodeId fields in the encoding byte.
const (
	expandedFlagNamespaceURI = 0x80
	expandedFlagServerIndex  = 0x40
)

// DecodeNodeID reads a NodeID from d.
func DecodeNodeID(d *Decoder) NodeID {
	var n NodeID
	enc := d.ReadUint8() &^ (expandedFlagNamespaceURI | expandedFlagServerIndex)
	switch enc {
	case wireTwoByte:
		n.Type = NodeIDTypeNumeric
		n.Numeric = uint32(d.ReadUint8())
	case wireFourByte:
		n.Type = NodeIDTypeNumeric
		n.Namespace = uint16(d.ReadUint8())
		n.Numeric = uint32(d.ReadUint16())
	case wireNumeric:
		n.Type = NodeIDTypeNumeric
		n.Namespace = d.ReadUint16()
		n.Numeric = d.ReadUint32()
	case wireString:
		n.Type = NodeIDTypeString
		n.Namespace = d.ReadUint16()
		n.Text = d.ReadString()
	case wireGuid:
		n.Type = NodeIDTypeGuid
		n.Namespace = d.ReadUint16()
		n.GuidID = DecodeGuid(d)
	case wireByteString:
		n.Type = NodeIDTypeByteString
		n.Namespace = d.ReadUint16()
		n.Bytes = d.ReadByteString()
	default:
		d.fail(fmt.Errorf("%w: node id encoding 0x%02x", ErrInvalidData, enc))
	}
	return n
}

// ExpandedNodeID extends NodeID with an optional namespace URI and server
// index (OPC 10000-6 §5.2.2.10).
type ExpandedNodeID struct {
	NodeID       NodeID
	NamespaceURI string
	ServerIndex  uint32
}

// Encode writes the ExpandedNodeID to e.
func (x ExpandedNodeID) Encode(e *Encoder) {
	sub := NewEncoder(16)
	x.NodeID.Encode(sub)
	b := sub.Bytes()
	flags := byte(0)
	if x.NamespaceURI != "" {
		flags |= expandedFlagNamespaceURI
	}
	if x.ServerIndex != 0 {
		flags |= expandedFlagServerIndex
	}
	e.WriteUint8(b[0] | flags)
	e.WriteRaw(b[1:])
	if x.NamespaceURI != "" {
		e.WriteString(x.NamespaceURI)
	}
	if x.ServerIndex != 0 {
		e.WriteUint32(x.ServerIndex)
	}
}

// DecodeExpandedNodeID reads an ExpandedNodeID from d.
func DecodeExpandedNodeID(d *Decoder) ExpandedNodeID {
	var x ExpandedNodeID
	if d.Remaining() < 1 {
		d.fail(ErrShortBuffer)
		return x
	}
	flags := d.b[d.off]
	x.NodeID = DecodeNodeID(d)
	if flags&expandedFlagNamespaceURI != 0 {
		x.NamespaceURI = d.ReadString()
	}
	if flags&expandedFlagServerIndex != 0 {
		x.ServerIndex = d.ReadUint32()
	}
	return x
}

// QualifiedName is a namespace-qualified browse name.
type QualifiedName struct {
	NamespaceIndex uint16
	Name           string
}

// Encode writes the QualifiedName to e.
func (q QualifiedName) Encode(e *Encoder) {
	e.WriteUint16(q.NamespaceIndex)
	e.WriteString(q.Name)
}

// DecodeQualifiedName reads a QualifiedName from d.
func DecodeQualifiedName(d *Decoder) QualifiedName {
	return QualifiedName{NamespaceIndex: d.ReadUint16(), Name: d.ReadString()}
}

// String renders the QualifiedName as "ns:Name".
func (q QualifiedName) String() string {
	if q.NamespaceIndex == 0 {
		return q.Name
	}
	return fmt.Sprintf("%d:%s", q.NamespaceIndex, q.Name)
}

// LocalizedText is a human-readable string with optional locale.
type LocalizedText struct {
	Locale string
	Text   string
}

// NewText returns a LocalizedText without locale.
func NewText(s string) LocalizedText { return LocalizedText{Text: s} }

// LocalizedText encoding flag bits.
const (
	localizedTextLocale = 0x01
	localizedTextText   = 0x02
)

// Encode writes the LocalizedText to e.
func (l LocalizedText) Encode(e *Encoder) {
	var flags byte
	if l.Locale != "" {
		flags |= localizedTextLocale
	}
	if l.Text != "" {
		flags |= localizedTextText
	}
	e.WriteUint8(flags)
	if flags&localizedTextLocale != 0 {
		e.WriteString(l.Locale)
	}
	if flags&localizedTextText != 0 {
		e.WriteString(l.Text)
	}
}

// DecodeLocalizedText reads a LocalizedText from d.
func DecodeLocalizedText(d *Decoder) LocalizedText {
	var l LocalizedText
	flags := d.ReadUint8()
	if flags&localizedTextLocale != 0 {
		l.Locale = d.ReadString()
	}
	if flags&localizedTextText != 0 {
		l.Text = d.ReadString()
	}
	return l
}

// String returns the text.
func (l LocalizedText) String() string { return l.Text }

// ExtensionObject body encodings.
const (
	ExtensionObjectEmpty      = 0x00
	ExtensionObjectByteString = 0x01
	ExtensionObjectXML        = 0x02
)

// ExtensionObject wraps an encoded structure together with its data type
// id (OPC 10000-6 §5.2.2.15). The study only uses binary bodies.
type ExtensionObject struct {
	TypeID   ExpandedNodeID
	Encoding byte
	Body     []byte
}

// NewExtensionObject wraps a binary body under the given numeric type id.
func NewExtensionObject(typeID uint32, body []byte) ExtensionObject {
	return ExtensionObject{
		TypeID:   ExpandedNodeID{NodeID: NewNumericNodeID(0, typeID)},
		Encoding: ExtensionObjectByteString,
		Body:     body,
	}
}

// Encode writes the ExtensionObject to e.
func (x ExtensionObject) Encode(e *Encoder) {
	x.TypeID.Encode(e)
	e.WriteUint8(x.Encoding)
	if x.Encoding != ExtensionObjectEmpty {
		e.WriteByteString(x.Body)
	}
}

// DecodeExtensionObject reads an ExtensionObject from d.
func DecodeExtensionObject(d *Decoder) ExtensionObject {
	var x ExtensionObject
	x.TypeID = DecodeExpandedNodeID(d)
	x.Encoding = d.ReadUint8()
	switch x.Encoding {
	case ExtensionObjectEmpty:
	case ExtensionObjectByteString, ExtensionObjectXML:
		x.Body = d.ReadByteString()
	default:
		d.fail(fmt.Errorf("%w: extension object encoding 0x%02x", ErrInvalidData, x.Encoding))
	}
	return x
}

// WriteStatus encodes a status code.
func (e *Encoder) WriteStatus(c uastatus.Code) { e.WriteUint32(uint32(c)) }

// ReadStatus decodes a status code.
func (d *Decoder) ReadStatus() uastatus.Code { return uastatus.Code(d.ReadUint32()) }

// DataValue flag bits.
const (
	dataValueValue             = 0x01
	dataValueStatus            = 0x02
	dataValueSourceTimestamp   = 0x04
	dataValueServerTimestamp   = 0x08
	dataValueSourcePicoseconds = 0x10
	dataValueServerPicoseconds = 0x20
)

// DataValue is a value with quality and timestamps (OPC 10000-6 §5.2.2.17).
type DataValue struct {
	Value           *Variant
	Status          uastatus.Code
	HasStatus       bool
	SourceTimestamp int64
	ServerTimestamp int64
}

// Encode writes the DataValue to e.
func (v DataValue) Encode(e *Encoder) {
	var flags byte
	if v.Value != nil {
		flags |= dataValueValue
	}
	if v.HasStatus {
		flags |= dataValueStatus
	}
	if v.SourceTimestamp != 0 {
		flags |= dataValueSourceTimestamp
	}
	if v.ServerTimestamp != 0 {
		flags |= dataValueServerTimestamp
	}
	e.WriteUint8(flags)
	if v.Value != nil {
		v.Value.Encode(e)
	}
	if v.HasStatus {
		e.WriteStatus(v.Status)
	}
	if v.SourceTimestamp != 0 {
		e.WriteInt64(v.SourceTimestamp)
	}
	if v.ServerTimestamp != 0 {
		e.WriteInt64(v.ServerTimestamp)
	}
}

// DecodeDataValue reads a DataValue from d.
func DecodeDataValue(d *Decoder) DataValue {
	var v DataValue
	flags := d.ReadUint8()
	if flags&dataValueValue != 0 {
		vv := DecodeVariant(d)
		v.Value = &vv
	}
	if flags&dataValueStatus != 0 {
		v.Status = d.ReadStatus()
		v.HasStatus = true
	}
	if flags&dataValueSourceTimestamp != 0 {
		v.SourceTimestamp = d.ReadInt64()
	}
	if flags&dataValueSourcePicoseconds != 0 {
		d.ReadUint16()
	}
	if flags&dataValueServerTimestamp != 0 {
		v.ServerTimestamp = d.ReadInt64()
	}
	if flags&dataValueServerPicoseconds != 0 {
		d.ReadUint16()
	}
	return v
}

// DiagnosticInfo is decoded structurally but its contents are ignored by
// the study; only the flag-directed skipping matters for wire compatibility.
type DiagnosticInfo struct{}

// EncodeNullDiagnosticInfo writes an empty DiagnosticInfo.
func EncodeNullDiagnosticInfo(e *Encoder) { e.WriteUint8(0) }

// DecodeDiagnosticInfo reads and discards a DiagnosticInfo from d.
func DecodeDiagnosticInfo(d *Decoder) {
	const (
		diSymbolicID    = 0x01
		diNamespace     = 0x02
		diLocalizedText = 0x04
		diLocale        = 0x08
		diAdditional    = 0x10
		diInnerStatus   = 0x20
		diInnerDiag     = 0x40
	)
	flags := d.ReadUint8()
	if flags&diSymbolicID != 0 {
		d.ReadInt32()
	}
	if flags&diNamespace != 0 {
		d.ReadInt32()
	}
	if flags&diLocale != 0 {
		d.ReadInt32()
	}
	if flags&diLocalizedText != 0 {
		d.ReadInt32()
	}
	if flags&diAdditional != 0 {
		d.ReadString()
	}
	if flags&diInnerStatus != 0 {
		d.ReadStatus()
	}
	if flags&diInnerDiag != 0 {
		DecodeDiagnosticInfo(d)
	}
}
