// Package uatypes implements the OPC UA binary encoding of the built-in
// data types (OPC 10000-6 §5.2) used by the measurement study: integers,
// strings, byte strings, GUIDs, DateTime, NodeId/ExpandedNodeId,
// QualifiedName, LocalizedText, Variant, ExtensionObject, DataValue and
// DiagnosticInfo.
//
// Encoding is little-endian throughout. Strings and arrays carry an Int32
// length prefix where -1 denotes a null value.
package uatypes

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Limits protect decoders against malicious or corrupt length prefixes.
const (
	// MaxStringLength is the longest String/ByteString the decoder accepts.
	MaxStringLength = 16 << 20 // 16 MiB
	// MaxArrayLength is the longest array the decoder accepts.
	MaxArrayLength = 1 << 20
)

// Errors returned by the decoder.
var (
	ErrShortBuffer   = errors.New("uatypes: buffer too short")
	ErrLengthLimit   = errors.New("uatypes: length exceeds limit")
	ErrInvalidData   = errors.New("uatypes: invalid data")
	ErrTrailingBytes = errors.New("uatypes: trailing bytes after decode")
)

// Encoder serializes values into a growable byte buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with a pre-allocated buffer of the given
// capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The returned slice aliases the
// encoder's internal buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Truncate shortens the buffer to n bytes; n must not exceed Len.
// The secure-channel layer uses it to replace an in-place plaintext
// suffix with its ciphertext.
func (e *Encoder) Truncate(n int) { e.buf = e.buf[:n] }

// WriteBool encodes a Boolean as one byte.
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// WriteUint8 encodes a single byte.
func (e *Encoder) WriteUint8(v byte) { e.buf = append(e.buf, v) }

// WriteSByte encodes a signed byte.
func (e *Encoder) WriteSByte(v int8) { e.buf = append(e.buf, byte(v)) }

// WriteUint16 encodes a UInt16.
func (e *Encoder) WriteUint16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// WriteInt16 encodes an Int16.
func (e *Encoder) WriteInt16(v int16) { e.WriteUint16(uint16(v)) }

// WriteUint32 encodes a UInt32.
func (e *Encoder) WriteUint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// WriteInt32 encodes an Int32.
func (e *Encoder) WriteInt32(v int32) { e.WriteUint32(uint32(v)) }

// WriteUint64 encodes a UInt64.
func (e *Encoder) WriteUint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// WriteInt64 encodes an Int64.
func (e *Encoder) WriteInt64(v int64) { e.WriteUint64(uint64(v)) }

// WriteFloat32 encodes a Float.
func (e *Encoder) WriteFloat32(v float32) { e.WriteUint32(math.Float32bits(v)) }

// WriteFloat64 encodes a Double.
func (e *Encoder) WriteFloat64(v float64) { e.WriteUint64(math.Float64bits(v)) }

// WriteString encodes a String. The empty string encodes with length 0;
// use WriteNullString for a null string.
func (e *Encoder) WriteString(s string) {
	e.WriteInt32(int32(len(s)))
	e.buf = append(e.buf, s...)
}

// WriteNullString encodes a null String (length -1).
func (e *Encoder) WriteNullString() { e.WriteInt32(-1) }

// WriteByteString encodes a ByteString; nil encodes as null (-1).
func (e *Encoder) WriteByteString(b []byte) {
	if b == nil {
		e.WriteInt32(-1)
		return
	}
	e.WriteInt32(int32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteRaw appends raw bytes without a length prefix.
func (e *Encoder) WriteRaw(b []byte) { e.buf = append(e.buf, b...) }

// WriteRawString appends raw string bytes without a length prefix.
func (e *Encoder) WriteRawString(s string) { e.buf = append(e.buf, s...) }

// WriteTime encodes a DateTime as 100 ns ticks since 1601-01-01 UTC.
// The zero time encodes as 0.
func (e *Encoder) WriteTime(t time.Time) { e.WriteInt64(TimeToDateTime(t)) }

// Decoder deserializes values from a byte slice. Errors are sticky: after
// the first failure every further read returns the zero value and Err()
// reports the original error.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a decoder reading from b. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Offset returns the number of bytes consumed so far.
func (d *Decoder) Offset() int { return d.off }

// Close verifies that the decoder consumed the whole buffer without error.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, d.Remaining())
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail(ErrShortBuffer)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// ReadBool decodes a Boolean.
func (d *Decoder) ReadBool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// ReadUint8 decodes a single byte.
func (d *Decoder) ReadUint8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// ReadSByte decodes a signed byte.
func (d *Decoder) ReadSByte() int8 { return int8(d.ReadUint8()) }

// ReadUint16 decodes a UInt16.
func (d *Decoder) ReadUint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// ReadInt16 decodes an Int16.
func (d *Decoder) ReadInt16() int16 { return int16(d.ReadUint16()) }

// ReadUint32 decodes a UInt32.
func (d *Decoder) ReadUint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// ReadInt32 decodes an Int32.
func (d *Decoder) ReadInt32() int32 { return int32(d.ReadUint32()) }

// ReadUint64 decodes a UInt64.
func (d *Decoder) ReadUint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// ReadInt64 decodes an Int64.
func (d *Decoder) ReadInt64() int64 { return int64(d.ReadUint64()) }

// ReadFloat32 decodes a Float.
func (d *Decoder) ReadFloat32() float32 { return math.Float32frombits(d.ReadUint32()) }

// ReadFloat64 decodes a Double.
func (d *Decoder) ReadFloat64() float64 { return math.Float64frombits(d.ReadUint64()) }

// ReadString decodes a String. Null decodes as the empty string.
func (d *Decoder) ReadString() string {
	n := d.ReadInt32()
	if d.err != nil || n <= 0 {
		if n < -1 {
			d.fail(ErrInvalidData)
		}
		return ""
	}
	if n > MaxStringLength {
		d.fail(ErrLengthLimit)
		return ""
	}
	b := d.take(int(n))
	return string(b)
}

// ReadByteString decodes a ByteString. Null decodes as nil.
func (d *Decoder) ReadByteString() []byte {
	n := d.ReadInt32()
	if d.err != nil || n == -1 {
		return nil
	}
	if n < -1 {
		d.fail(ErrInvalidData)
		return nil
	}
	if n > MaxStringLength {
		d.fail(ErrLengthLimit)
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ReadRaw reads n raw bytes without a length prefix.
func (d *Decoder) ReadRaw(n int) []byte {
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ReadTime decodes a DateTime.
func (d *Decoder) ReadTime() time.Time { return DateTimeToTime(d.ReadInt64()) }

// ReadArrayLen decodes an array length prefix and validates it against
// MaxArrayLength. Null arrays (-1) return -1.
func (d *Decoder) ReadArrayLen() int {
	n := d.ReadInt32()
	if d.err != nil {
		return -1
	}
	if n < -1 {
		d.fail(ErrInvalidData)
		return -1
	}
	if n > MaxArrayLength {
		d.fail(ErrLengthLimit)
		return -1
	}
	// Every array element costs at least one wire byte, so a claimed
	// count beyond the remaining buffer can never decode; failing here
	// keeps the claim from sizing a preallocation (callers write
	// make([]T, 0, n)) — a few hostile bytes must not buy a
	// megabyte-scale allocation.
	if int(n) > d.Remaining() {
		d.fail(ErrShortBuffer)
		return -1
	}
	return int(n)
}

// dateTimeEpochDelta is the number of 100ns ticks between the OPC UA
// epoch (1601-01-01) and the Unix epoch (1970-01-01).
const dateTimeEpochDelta = 116444736000000000

// TimeToDateTime converts a time.Time to OPC UA DateTime ticks.
// The zero time maps to 0.
func TimeToDateTime(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()/100 + dateTimeEpochDelta
}

// DateTimeToTime converts OPC UA DateTime ticks to a time.Time.
// Tick value 0 maps to the zero time.
func DateTimeToTime(ticks int64) time.Time {
	if ticks == 0 {
		return time.Time{}
	}
	return time.Unix(0, (ticks-dateTimeEpochDelta)*100).UTC()
}
