package uatypes

import "sync"

// Encoder pooling with size-class reuse. Message encoding and chunk
// sealing are the measurement loop's hottest allocation sites: every
// grab encodes a handful of requests and the simulated servers encode
// responses for thousands of connections per wave. Pooled encoders make
// the steady-state encode path allocation-free.
//
// Buffers are grouped into size classes so a burst of large messages
// (endpoint descriptions with embedded certificates are several KiB)
// does not pin every pooled buffer at the largest size, and small
// messages keep hitting small warm buffers.
var encoderClasses = [...]int{256, 4096, 1 << 16}

// maxPooledEncoderBuf bounds the capacity of buffers returned to the
// pool; anything larger (a multi-chunk message body) is left for GC.
const maxPooledEncoderBuf = 1 << 20

var encoderPools [len(encoderClasses)]sync.Pool

// AcquireEncoder returns a pooled encoder whose buffer has at least the
// given capacity. Release it with ReleaseEncoder when the encoded bytes
// are no longer referenced; the returned slice of Bytes aliases the
// pooled buffer, so callers must not retain it past the release.
//
//studyvet:hotpath — steady state reuses warm buffers; only cold starts hit make
func AcquireEncoder(capacity int) *Encoder {
	ci := len(encoderClasses) - 1
	for i, sz := range encoderClasses {
		if capacity <= sz {
			ci = i
			break
		}
	}
	if v := encoderPools[ci].Get(); v != nil {
		e := v.(*Encoder)
		if cap(e.buf) < capacity {
			e.buf = make([]byte, 0, capacity)
		}
		return e
	}
	sz := encoderClasses[ci]
	if capacity > sz {
		sz = capacity
	}
	return &Encoder{buf: make([]byte, 0, sz)}
}

// ReleaseEncoder resets the encoder and returns it to its size-class
// pool. Double release corrupts encoded messages; release exactly once,
// after the encoded bytes have been copied or written out.
//
//studyvet:hotpath — paired with AcquireEncoder on every sealed chunk
func ReleaseEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledEncoderBuf {
		return
	}
	// Classify by the largest class the buffer still covers, so every
	// buffer inside pool i is guaranteed to hold encoderClasses[i]
	// bytes without growing (the invariant AcquireEncoder relies on).
	ci := -1
	for i, sz := range encoderClasses {
		if cap(e.buf) >= sz {
			ci = i
		}
	}
	if ci < 0 {
		return
	}
	e.Reset()
	encoderPools[ci].Put(e)
}
