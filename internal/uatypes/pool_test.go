package uatypes

import (
	"bytes"
	"testing"
	"time"
)

// encodeSample writes a representative mix of builtin types.
func encodeSample(e *Encoder) {
	e.WriteUint32(0xDEADBEEF)
	e.WriteInt64(-42)
	e.WriteString("opc.tcp://192.0.2.7:4840")
	e.WriteByteString([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	e.WriteTime(time.Date(2020, 8, 30, 0, 0, 0, 0, time.UTC))
	e.WriteFloat64(3.14159)
	e.WriteNullString()
}

// TestPooledEncoderMatchesFresh pins that pooled encoders produce the
// byte-identical encoding a fresh encoder produces, including after a
// release/acquire cycle reuses a dirty buffer.
func TestPooledEncoderMatchesFresh(t *testing.T) {
	fresh := NewEncoder(64)
	encodeSample(fresh)
	want := append([]byte(nil), fresh.Bytes()...)

	for round := 0; round < 3; round++ {
		e := AcquireEncoder(64)
		encodeSample(e)
		if !bytes.Equal(e.Bytes(), want) {
			t.Fatalf("round %d: pooled encoding differs", round)
		}
		ReleaseEncoder(e)
	}
}

// TestAcquireEncoderCapacity pins the size-class invariant: acquired
// buffers always hold the requested capacity without growing, for
// requests below, between, and above the pool classes.
func TestAcquireEncoderCapacity(t *testing.T) {
	for _, capacity := range []int{1, 256, 257, 4096, 5000, 1 << 16, 1<<16 + 1, 200000} {
		e := AcquireEncoder(capacity)
		if got := cap(e.buf); got < capacity {
			t.Errorf("AcquireEncoder(%d): cap = %d", capacity, got)
		}
		if e.Len() != 0 {
			t.Errorf("AcquireEncoder(%d): dirty buffer, len %d", capacity, e.Len())
		}
		ReleaseEncoder(e)
	}
	// Oversized buffers are dropped, not pooled.
	huge := &Encoder{buf: make([]byte, 0, maxPooledEncoderBuf+1)}
	ReleaseEncoder(huge) // must not panic
	ReleaseEncoder(nil)  // must not panic
}

// TestEncoderAllocBudgets gates the codec's hot-path allocation
// budgets: a pooled encode costs zero heap allocations in steady
// state, and a full encode/decode round trip stays within a fixed
// budget that does not grow with repeated use.
func TestEncoderAllocBudgets(t *testing.T) {
	// Warm the pool.
	ReleaseEncoder(AcquireEncoder(256))

	if allocs := testing.AllocsPerRun(500, func() {
		e := AcquireEncoder(256)
		encodeSample(e)
		ReleaseEncoder(e)
	}); allocs != 0 {
		t.Errorf("pooled encode allocates %.1f objects, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(500, func() {
		e := AcquireEncoder(256)
		encodeSample(e)
		d := NewDecoder(e.Bytes())
		if d.ReadUint32() != 0xDEADBEEF || d.ReadInt64() != -42 {
			t.Fatal("integer round trip broke")
		}
		_ = d.ReadString()
		_ = d.ReadByteString()
		_ = d.ReadTime()
		_ = d.ReadFloat64()
		_ = d.ReadString()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		ReleaseEncoder(e)
	}); allocs > 4 {
		// Decoder struct + the string/byte-string copies the caller keeps.
		t.Errorf("encode/decode round trip allocates %.1f objects, budget 4", allocs)
	}
}

func BenchmarkEncodeSample(b *testing.B) {
	for _, mode := range []string{"fresh", "pooled"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var e *Encoder
				if mode == "pooled" {
					e = AcquireEncoder(256)
				} else {
					e = NewEncoder(256)
				}
				encodeSample(e)
				if mode == "pooled" {
					ReleaseEncoder(e)
				}
			}
		})
	}
}
