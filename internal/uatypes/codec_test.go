package uatypes

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestIntegerRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.WriteBool(true)
	e.WriteBool(false)
	e.WriteUint8(0xAB)
	e.WriteSByte(-5)
	e.WriteUint16(0xBEEF)
	e.WriteInt16(-12345)
	e.WriteUint32(0xDEADBEEF)
	e.WriteInt32(-123456789)
	e.WriteUint64(0x0123456789ABCDEF)
	e.WriteInt64(-1234567890123456789)
	e.WriteFloat32(3.5)
	e.WriteFloat64(-2.25)

	d := NewDecoder(e.Bytes())
	if !d.ReadBool() || d.ReadBool() {
		t.Error("bool round trip failed")
	}
	if got := d.ReadUint8(); got != 0xAB {
		t.Errorf("uint8 = %#x", got)
	}
	if got := d.ReadSByte(); got != -5 {
		t.Errorf("sbyte = %d", got)
	}
	if got := d.ReadUint16(); got != 0xBEEF {
		t.Errorf("uint16 = %#x", got)
	}
	if got := d.ReadInt16(); got != -12345 {
		t.Errorf("int16 = %d", got)
	}
	if got := d.ReadUint32(); got != 0xDEADBEEF {
		t.Errorf("uint32 = %#x", got)
	}
	if got := d.ReadInt32(); got != -123456789 {
		t.Errorf("int32 = %d", got)
	}
	if got := d.ReadUint64(); got != 0x0123456789ABCDEF {
		t.Errorf("uint64 = %#x", got)
	}
	if got := d.ReadInt64(); got != -1234567890123456789 {
		t.Errorf("int64 = %d", got)
	}
	if got := d.ReadFloat32(); got != 3.5 {
		t.Errorf("float32 = %g", got)
	}
	if got := d.ReadFloat64(); got != -2.25 {
		t.Errorf("float64 = %g", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	e := NewEncoder(8)
	e.WriteUint32(0x01020304)
	want := []byte{0x04, 0x03, 0x02, 0x01}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("encoding = %x, want %x", e.Bytes(), want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"", "hello", "opc.tcp://host:4840/path", "ünïcødé 日本"}
	for _, s := range cases {
		e := NewEncoder(0)
		e.WriteString(s)
		d := NewDecoder(e.Bytes())
		if got := d.ReadString(); got != s {
			t.Errorf("string %q round-tripped to %q", s, got)
		}
		if err := d.Close(); err != nil {
			t.Errorf("Close after %q: %v", s, err)
		}
	}
}

func TestNullStringDecodesEmpty(t *testing.T) {
	e := NewEncoder(4)
	e.WriteNullString()
	d := NewDecoder(e.Bytes())
	if got := d.ReadString(); got != "" {
		t.Errorf("null string = %q", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestByteStringNilVsEmpty(t *testing.T) {
	e := NewEncoder(8)
	e.WriteByteString(nil)
	e.WriteByteString([]byte{})
	d := NewDecoder(e.Bytes())
	if got := d.ReadByteString(); got != nil {
		t.Errorf("nil bytestring = %v", got)
	}
	if got := d.ReadByteString(); got == nil || len(got) != 0 {
		t.Errorf("empty bytestring = %v", got)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.ReadUint32()
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", d.Err())
	}
	// Sticky error: further reads keep the original error.
	_ = d.ReadUint64()
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Errorf("sticky err = %v", d.Err())
	}
}

func TestDecoderStringLimit(t *testing.T) {
	e := NewEncoder(8)
	e.WriteInt32(MaxStringLength + 1)
	d := NewDecoder(e.Bytes())
	_ = d.ReadString()
	if !errors.Is(d.Err(), ErrLengthLimit) {
		t.Errorf("err = %v, want ErrLengthLimit", d.Err())
	}
}

func TestDecoderNegativeLengthRejected(t *testing.T) {
	e := NewEncoder(8)
	e.WriteInt32(-7)
	d := NewDecoder(e.Bytes())
	_ = d.ReadByteString()
	if !errors.Is(d.Err(), ErrInvalidData) {
		t.Errorf("err = %v, want ErrInvalidData", d.Err())
	}
}

func TestCloseReportsTrailingBytes(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3, 4, 5})
	_ = d.ReadUint32()
	if err := d.Close(); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("Close = %v, want ErrTrailingBytes", err)
	}
}

func TestDateTimeEpoch(t *testing.T) {
	unix := time.Unix(0, 0).UTC()
	if ticks := TimeToDateTime(unix); ticks != 116444736000000000 {
		t.Errorf("unix epoch ticks = %d", ticks)
	}
	if got := DateTimeToTime(116444736000000000); !got.Equal(unix) {
		t.Errorf("epoch decode = %v", got)
	}
	if !DateTimeToTime(0).IsZero() {
		t.Error("tick 0 should map to zero time")
	}
	if TimeToDateTime(time.Time{}) != 0 {
		t.Error("zero time should map to tick 0")
	}
}

func TestDateTimeQuickRoundTrip(t *testing.T) {
	f := func(sec int64, nsub int32) bool {
		// Constrain to the window where UnixNano is valid (±292 years
		// around 1970) and to 100ns granularity.
		sec = sec % (1 << 33)
		ns := (int64(nsub) % 1e7) * 100
		if ns < 0 {
			ns = -ns
		}
		orig := time.Unix(sec, ns).UTC()
		got := DateTimeToTime(TimeToDateTime(orig))
		return got.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder(0)
		e.WriteString(s)
		d := NewDecoder(e.Bytes())
		got := d.ReadString()
		return got == s && d.Close() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickByteStringRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		e := NewEncoder(0)
		e.WriteByteString(b)
		d := NewDecoder(e.Bytes())
		got := d.ReadByteString()
		if b == nil {
			return got == nil
		}
		return bytes.Equal(got, b) && d.Close() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNumericRoundTrip(t *testing.T) {
	f := func(u32 uint32, i64 int64, f64 float64) bool {
		e := NewEncoder(0)
		e.WriteUint32(u32)
		e.WriteInt64(i64)
		e.WriteFloat64(f64)
		d := NewDecoder(e.Bytes())
		gu := d.ReadUint32()
		gi := d.ReadInt64()
		gf := d.ReadFloat64()
		if d.Close() != nil {
			return false
		}
		if gu != u32 || gi != i64 {
			return false
		}
		if math.IsNaN(f64) {
			return math.IsNaN(gf)
		}
		return gf == f64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodePrimitives(b *testing.B) {
	e := NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.WriteUint32(42)
		e.WriteString("opc.tcp://example:4840")
		e.WriteInt64(int64(i))
	}
}

func BenchmarkDecodePrimitives(b *testing.B) {
	e := NewEncoder(64)
	e.WriteUint32(42)
	e.WriteString("opc.tcp://example:4840")
	e.WriteInt64(7)
	raw := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(raw)
		_ = d.ReadUint32()
		_ = d.ReadString()
		_ = d.ReadInt64()
	}
}
