package uatypes

import (
	"fmt"
	"time"

	"repro/internal/uastatus"
)

// TypeID identifies the built-in data type carried by a Variant.
type TypeID byte

// Built-in type ids (OPC 10000-6 §5.1.2).
const (
	TypeNull            TypeID = 0
	TypeBoolean         TypeID = 1
	TypeSByte           TypeID = 2
	TypeByte            TypeID = 3
	TypeInt16           TypeID = 4
	TypeUint16          TypeID = 5
	TypeInt32           TypeID = 6
	TypeUint32          TypeID = 7
	TypeInt64           TypeID = 8
	TypeUint64          TypeID = 9
	TypeFloat           TypeID = 10
	TypeDouble          TypeID = 11
	TypeString          TypeID = 12
	TypeDateTime        TypeID = 13
	TypeGuid            TypeID = 14
	TypeByteString      TypeID = 15
	TypeXMLElement      TypeID = 16
	TypeNodeID          TypeID = 17
	TypeExpandedNodeID  TypeID = 18
	TypeStatusCode      TypeID = 19
	TypeQualifiedName   TypeID = 20
	TypeLocalizedText   TypeID = 21
	TypeExtensionObject TypeID = 22
	TypeDataValue       TypeID = 23
	TypeVariant         TypeID = 24
	TypeDiagnosticInfo  TypeID = 25
)

// Variant encoding flag bits.
const (
	variantArrayDimensions = 0x40
	variantArrayValues     = 0x80
)

// Variant is a polymorphic value container. Exactly one field matching
// Type is populated; for arrays, the slice field is used instead.
type Variant struct {
	Type    TypeID
	IsArray bool

	Bool    bool
	Int     int64  // SByte, Int16, Int32, Int64
	Uint    uint64 // Byte, UInt16, UInt32, UInt64
	Float   float64
	Str     string // String, XMLElement
	Time    time.Time
	GuidVal Guid
	Bytes   []byte
	Node    NodeID
	XNode   ExpandedNodeID
	Status  uastatus.Code
	QName   QualifiedName
	LText   LocalizedText
	ExtObj  ExtensionObject

	Array []Variant // element variants for array values
}

// Convenience constructors for the types the study exercises.

// BoolVariant wraps a bool.
func BoolVariant(v bool) Variant { return Variant{Type: TypeBoolean, Bool: v} }

// Int32Variant wraps an int32.
func Int32Variant(v int32) Variant { return Variant{Type: TypeInt32, Int: int64(v)} }

// Uint32Variant wraps a uint32.
func Uint32Variant(v uint32) Variant { return Variant{Type: TypeUint32, Uint: uint64(v)} }

// DoubleVariant wraps a float64.
func DoubleVariant(v float64) Variant { return Variant{Type: TypeDouble, Float: v} }

// StringVariant wraps a string.
func StringVariant(v string) Variant { return Variant{Type: TypeString, Str: v} }

// TimeVariant wraps a time.Time.
func TimeVariant(v time.Time) Variant { return Variant{Type: TypeDateTime, Time: v} }

// LocalizedTextVariant wraps a localized text.
func LocalizedTextVariant(v string) Variant {
	return Variant{Type: TypeLocalizedText, LText: NewText(v)}
}

// StringArrayVariant wraps a string slice.
func StringArrayVariant(vs []string) Variant {
	arr := make([]Variant, len(vs))
	for i, s := range vs {
		arr[i] = StringVariant(s)
	}
	return Variant{Type: TypeString, IsArray: true, Array: arr}
}

// StringArray extracts []string from a string-array variant.
func (v Variant) StringArray() []string {
	if !v.IsArray || v.Type != TypeString {
		return nil
	}
	out := make([]string, len(v.Array))
	for i, el := range v.Array {
		out[i] = el.Str
	}
	return out
}

// IsNull reports whether the variant carries no value.
func (v Variant) IsNull() bool { return v.Type == TypeNull }

// String renders a debug representation of the scalar value.
func (v Variant) String() string {
	if v.IsArray {
		return fmt.Sprintf("array<%d>[%d]", v.Type, len(v.Array))
	}
	switch v.Type {
	case TypeNull:
		return "null"
	case TypeBoolean:
		return fmt.Sprintf("%t", v.Bool)
	case TypeSByte, TypeInt16, TypeInt32, TypeInt64:
		return fmt.Sprintf("%d", v.Int)
	case TypeByte, TypeUint16, TypeUint32, TypeUint64:
		return fmt.Sprintf("%d", v.Uint)
	case TypeFloat, TypeDouble:
		return fmt.Sprintf("%g", v.Float)
	case TypeString, TypeXMLElement:
		return v.Str
	case TypeDateTime:
		return v.Time.Format(time.RFC3339)
	case TypeGuid:
		return v.GuidVal.String()
	case TypeByteString:
		return fmt.Sprintf("bytes[%d]", len(v.Bytes))
	case TypeNodeID:
		return v.Node.String()
	case TypeStatusCode:
		return v.Status.String()
	case TypeQualifiedName:
		return v.QName.String()
	case TypeLocalizedText:
		return v.LText.Text
	default:
		return fmt.Sprintf("variant<%d>", v.Type)
	}
}

// Encode writes the Variant to e.
func (v Variant) Encode(e *Encoder) {
	if v.Type == TypeNull {
		e.WriteUint8(0)
		return
	}
	flags := byte(v.Type)
	if v.IsArray {
		flags |= variantArrayValues
	}
	e.WriteUint8(flags)
	if v.IsArray {
		e.WriteInt32(int32(len(v.Array)))
		for _, el := range v.Array {
			el.encodeScalar(e)
		}
		return
	}
	v.encodeScalar(e)
}

func (v Variant) encodeScalar(e *Encoder) {
	switch v.Type {
	case TypeBoolean:
		e.WriteBool(v.Bool)
	case TypeSByte:
		e.WriteSByte(int8(v.Int))
	case TypeByte:
		e.WriteUint8(byte(v.Uint))
	case TypeInt16:
		e.WriteInt16(int16(v.Int))
	case TypeUint16:
		e.WriteUint16(uint16(v.Uint))
	case TypeInt32:
		e.WriteInt32(int32(v.Int))
	case TypeUint32:
		e.WriteUint32(uint32(v.Uint))
	case TypeInt64:
		e.WriteInt64(v.Int)
	case TypeUint64:
		e.WriteUint64(v.Uint)
	case TypeFloat:
		e.WriteFloat32(float32(v.Float))
	case TypeDouble:
		e.WriteFloat64(v.Float)
	case TypeString, TypeXMLElement:
		e.WriteString(v.Str)
	case TypeDateTime:
		e.WriteTime(v.Time)
	case TypeGuid:
		v.GuidVal.Encode(e)
	case TypeByteString:
		e.WriteByteString(v.Bytes)
	case TypeNodeID:
		v.Node.Encode(e)
	case TypeExpandedNodeID:
		v.XNode.Encode(e)
	case TypeStatusCode:
		e.WriteStatus(v.Status)
	case TypeQualifiedName:
		v.QName.Encode(e)
	case TypeLocalizedText:
		v.LText.Encode(e)
	case TypeExtensionObject:
		v.ExtObj.Encode(e)
	}
}

// DecodeVariant reads a Variant from d.
func DecodeVariant(d *Decoder) Variant {
	var v Variant
	flags := d.ReadUint8()
	v.Type = TypeID(flags &^ (variantArrayValues | variantArrayDimensions))
	if v.Type == TypeNull {
		return v
	}
	if v.Type > TypeDiagnosticInfo {
		d.fail(fmt.Errorf("%w: variant type %d", ErrInvalidData, v.Type))
		return v
	}
	if flags&variantArrayValues != 0 {
		v.IsArray = true
		n := d.ReadArrayLen()
		if n > 0 {
			v.Array = make([]Variant, 0, min(n, 4096))
			for i := 0; i < n && d.Err() == nil; i++ {
				el := Variant{Type: v.Type}
				el.decodeScalar(d)
				v.Array = append(v.Array, el)
			}
		}
		if flags&variantArrayDimensions != 0 {
			dims := d.ReadArrayLen()
			for i := 0; i < dims && d.Err() == nil; i++ {
				d.ReadInt32()
			}
		}
		return v
	}
	v.decodeScalar(d)
	return v
}

func (v *Variant) decodeScalar(d *Decoder) {
	switch v.Type {
	case TypeBoolean:
		v.Bool = d.ReadBool()
	case TypeSByte:
		v.Int = int64(d.ReadSByte())
	case TypeByte:
		v.Uint = uint64(d.ReadUint8())
	case TypeInt16:
		v.Int = int64(d.ReadInt16())
	case TypeUint16:
		v.Uint = uint64(d.ReadUint16())
	case TypeInt32:
		v.Int = int64(d.ReadInt32())
	case TypeUint32:
		v.Uint = uint64(d.ReadUint32())
	case TypeInt64:
		v.Int = d.ReadInt64()
	case TypeUint64:
		v.Uint = d.ReadUint64()
	case TypeFloat:
		v.Float = float64(d.ReadFloat32())
	case TypeDouble:
		v.Float = d.ReadFloat64()
	case TypeString, TypeXMLElement:
		v.Str = d.ReadString()
	case TypeDateTime:
		v.Time = d.ReadTime()
	case TypeGuid:
		v.GuidVal = DecodeGuid(d)
	case TypeByteString:
		v.Bytes = d.ReadByteString()
	case TypeNodeID:
		v.Node = DecodeNodeID(d)
	case TypeExpandedNodeID:
		v.XNode = DecodeExpandedNodeID(d)
	case TypeStatusCode:
		v.Status = d.ReadStatus()
	case TypeQualifiedName:
		v.QName = DecodeQualifiedName(d)
	case TypeLocalizedText:
		v.LText = DecodeLocalizedText(d)
	case TypeExtensionObject:
		v.ExtObj = DecodeExtensionObject(d)
	case TypeDataValue:
		DecodeDataValue(d)
	case TypeVariant:
		DecodeVariant(d)
	case TypeDiagnosticInfo:
		DecodeDiagnosticInfo(d)
	default:
		d.fail(fmt.Errorf("%w: variant scalar type %d", ErrInvalidData, v.Type))
	}
}
