// Package pipeline is the campaign's streaming record plumbing: sinks
// that consume measurement records one at a time, a bounded-channel
// fan-in stage that decouples producers from slow consumers, an
// incremental analyzer that folds a wave-ordered record stream into the
// paper's per-wave and longitudinal analyses, and the deterministic
// merge of sharded worker streams.
//
// Ownership rules (DESIGN.md §5): whoever constructs a sink closes it,
// exactly once, after the last Put. Wrapping sinks (ChanSink, Tee) own
// their downstreams — closing the wrapper closes what it wraps. The
// campaign never closes a sink the caller passed in
// (opcuastudy.CampaignConfig.RecordSink), because the caller may have
// more streams to feed it.
package pipeline

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// RecordSink consumes a stream of host records. Put and Close must not
// be called after Close; unless an implementation says otherwise, Put
// is single-goroutine (ChanSink is the explicitly concurrent-safe one).
type RecordSink interface {
	Put(rec *dataset.HostRecord) error
	Close() error
}

// EncoderSink streams records to NDJSON, optionally applying the
// release anonymization to a copy of each record (originals are never
// mutated, and the anonymizer's sequence numbers follow stream order,
// so one sink anonymizes a whole campaign consistently). Close flushes
// but does not close the underlying writer, which the caller owns.
type EncoderSink struct {
	enc  *dataset.Encoder
	anon *dataset.Anonymizer
}

// NewEncoderSink returns an EncoderSink writing NDJSON to w.
func NewEncoderSink(w io.Writer, anonymize bool) *EncoderSink {
	s := &EncoderSink{enc: dataset.NewEncoder(w)}
	if anonymize {
		s.anon = dataset.NewAnonymizer()
	}
	return s
}

// Put encodes one record.
func (s *EncoderSink) Put(rec *dataset.HostRecord) error {
	if s.anon != nil {
		rec = s.anon.AnonymizedCopy(rec)
	}
	return s.enc.Encode(rec)
}

// Close flushes the encoder.
func (s *EncoderSink) Close() error { return s.enc.Flush() }

// SliceSink accumulates records in memory, for callers that want a
// pipeline stage to terminate in a plain slice (tests, ad-hoc
// analysis); production campaign paths stream instead.
type SliceSink struct {
	Records []*dataset.HostRecord
}

// Put appends the record.
func (s *SliceSink) Put(rec *dataset.HostRecord) error {
	s.Records = append(s.Records, rec)
	return nil
}

// Close is a no-op.
func (s *SliceSink) Close() error { return nil }

// Tee fans one stream out to several sinks. Put forwards to every sink
// in order and stops at the first error; Close closes every sink (the
// tee owns them) and returns the first error.
func Tee(sinks ...RecordSink) RecordSink { return teeSink(sinks) }

type teeSink []RecordSink

func (t teeSink) Put(rec *dataset.HostRecord) error {
	for _, s := range t {
		if err := s.Put(rec); err != nil {
			return err
		}
	}
	return nil
}

func (t teeSink) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ChanSink is the bounded-channel fan-in stage: any number of producer
// goroutines may call Put concurrently, and a single drain goroutine
// applies the records to the downstream sink in arrival order — so a
// sink that is not concurrency-safe (an EncoderSink on a file, the
// Analyzer) can absorb a concurrent stage's output, and a slow consumer
// (disk, the assessment) backpressures producers only once the buffer
// fills instead of serializing every Put.
//
// The ChanSink owns the downstream: Close waits for the drain to finish
// and then closes it. A downstream Put error closes the intake — later
// Puts return the error, buffered records are dropped — and the error
// is also returned from Close.
type ChanSink struct {
	downstream RecordSink
	ch         chan *dataset.HostRecord
	failed     chan struct{}
	done       chan struct{}
	err        error
	m          ChanMetrics
}

// ChanMetrics observes a ChanSink's backpressure: records accepted,
// cumulative nanoseconds producers spent blocked on a full buffer, and
// the buffer-occupancy high-water mark. The zero value (nil instruments,
// the product of a nil registry) disables observation at one pointer
// check per field.
type ChanMetrics struct {
	Records   *telemetry.Counter
	BlockedNs *telemetry.Counter
	HighWater *telemetry.MaxGauge
}

// NewChanMetrics resolves the standard sink instruments (sink_records,
// sink_blocked_ns, sink_buffer_highwater) from reg; a nil registry
// yields the disabled zero value.
func NewChanMetrics(reg *telemetry.Registry) ChanMetrics {
	return ChanMetrics{
		Records:   reg.Counter("sink_records"),
		BlockedNs: reg.Counter("sink_blocked_ns"),
		HighWater: reg.MaxGauge("sink_buffer_highwater"),
	}
}

// NewChanSink starts the drain goroutine with the given buffer size
// (minimum 1). Close must be called exactly once, after every producer
// is finished.
func NewChanSink(downstream RecordSink, buffer int) *ChanSink {
	return NewChanSinkObserved(downstream, buffer, ChanMetrics{})
}

// NewChanSinkObserved is NewChanSink with backpressure telemetry.
func NewChanSinkObserved(downstream RecordSink, buffer int, m ChanMetrics) *ChanSink {
	if buffer < 1 {
		buffer = 1
	}
	s := &ChanSink{
		downstream: downstream,
		ch:         make(chan *dataset.HostRecord, buffer),
		failed:     make(chan struct{}),
		done:       make(chan struct{}),
		m:          m,
	}
	go func() {
		defer close(s.done)
		for rec := range s.ch {
			if s.err != nil {
				continue // drain so producers never block forever
			}
			if err := s.downstream.Put(rec); err != nil {
				s.err = fmt.Errorf("pipeline: fan-in downstream: %w", err)
				close(s.failed)
			}
		}
	}()
	return s
}

// Put enqueues one record; safe for concurrent use.
func (s *ChanSink) Put(rec *dataset.HostRecord) error {
	// Fast path: buffer has room, no blocking to measure.
	select {
	case s.ch <- rec:
		s.m.Records.Inc()
		s.m.HighWater.Record(int64(len(s.ch)))
		return nil
	case <-s.failed:
		return s.err
	default:
	}
	// Buffer full: the send below blocks, and that wait is the
	// backpressure signal sink_blocked_ns accumulates.
	start := s.m.BlockedNs.StartNs()
	select {
	case s.ch <- rec:
		s.m.BlockedNs.AddSince(start)
		s.m.Records.Inc()
		s.m.HighWater.Record(int64(len(s.ch)))
		return nil
	case <-s.failed:
		return s.err
	}
}

// Close drains the buffer, closes the downstream, and returns the first
// error of either.
func (s *ChanSink) Close() error {
	close(s.ch)
	<-s.done
	cerr := s.downstream.Close()
	if s.err != nil {
		return s.err
	}
	return cerr
}
