package pipeline

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/scanner"
)

// MergeShardStreams merges N wave-ordered shard record streams (the
// NDJSON outputs of `measure -shard i`, decoded) into the deterministic
// record order of an unsharded run and forwards every surviving record
// to sink. It is the record-level twin of scanner.MergeWaveShards, for
// coordinators that only have the workers' serialized outputs:
//
//   - Streams advance wave-aligned: all shards' wave-w records merge
//     before any shard's wave w+1 is read, so the output is
//     wave-ordered (what the Analyzer requires) while only one wave of
//     records is in memory at a time.
//   - Within a wave, duplicates — one shard grabbed by port scan what
//     another reached via a follow-up reference — dedup by address,
//     port-scan record first, then lowest shard index.
//   - Survivors are sorted port-scan-first-then-address, the same order
//     scanner.sortResults gives an unsharded wave.
//
// The sink stays open: the caller owns it and closes it after merging
// (it may have more streams to feed). A stream whose wave numbering
// decreases is corrupt and aborts the merge.
func MergeShardStreams(sink RecordSink, shards ...*dataset.Decoder) error {
	heads := make([]*dataset.HostRecord, len(shards))
	advance := func(i int) error {
		rec, err := shards[i].Decode()
		if err == io.EOF {
			heads[i] = nil
			return nil
		}
		if err != nil {
			return fmt.Errorf("pipeline: shard %d: %w", i, err)
		}
		if heads[i] != nil && rec.Wave < heads[i].Wave {
			return fmt.Errorf("pipeline: shard %d stream not wave-ordered (wave %d after %d)",
				i, rec.Wave, heads[i].Wave)
		}
		heads[i] = rec
		return nil
	}
	for i := range shards {
		if err := advance(i); err != nil {
			return err
		}
	}

	for {
		wave, any := 0, false
		for _, h := range heads {
			if h != nil && (!any || h.Wave < wave) {
				wave, any = h.Wave, true
			}
		}
		if !any {
			return nil
		}

		// Drain every shard's run of wave-w records, then apply the
		// shard-merge rules through the same scanner helper the
		// in-process Result merge uses — one implementation of the
		// dedup and ordering that byte-identity depends on.
		batches := make([][]*dataset.HostRecord, 0, len(shards))
		for i := range shards {
			var batch []*dataset.HostRecord
			for heads[i] != nil && heads[i].Wave == wave {
				batch = append(batch, heads[i])
				if err := advance(i); err != nil {
					return err
				}
			}
			batches = append(batches, batch)
		}
		recs := scanner.MergeShardItems(batches,
			func(r *dataset.HostRecord) string { return r.Address },
			func(r *dataset.HostRecord) bool { return r.Via == string(scanner.ViaPortScan) })
		for _, rec := range recs {
			if err := sink.Put(rec); err != nil {
				return err
			}
		}
	}
}
