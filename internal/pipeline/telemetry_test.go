package pipeline

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// slowSink delays every Put so the ChanSink's buffer fills and senders
// block, driving the backpressure instruments.
type slowSink struct {
	delay time.Duration
	n     int
}

func (s *slowSink) Put(*dataset.HostRecord) error {
	time.Sleep(s.delay)
	s.n++
	return nil
}

func (s *slowSink) Close() error { return nil }

// TestChanSinkMetrics pins the backpressure observability contract:
// sink_records counts every record through Put, the buffer high-water
// mark reflects actual queue occupancy, and blocked-send time
// accumulates when the downstream is slower than the producers.
func TestChanSinkMetrics(t *testing.T) {
	reg := telemetry.New()
	down := &slowSink{delay: time.Millisecond}
	s := NewChanSinkObserved(down, 4, NewChanMetrics(reg))
	const records = 64
	for i := 0; i < records; i++ {
		if err := s.Put(synthRecord(0, i, "portscan", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if down.n != records {
		t.Fatalf("downstream received %d records, want %d", down.n, records)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["sink_records"]; got != records {
		t.Errorf("sink_records = %d, want %d", got, records)
	}
	hw := snap.Max["sink_buffer_highwater"]
	if hw < 1 || hw > 4 {
		t.Errorf("sink_buffer_highwater = %d, want within [1, 4] (buffer capacity)", hw)
	}
	// 64 records × 1ms downstream against a 4-slot buffer: most sends
	// must have blocked, so tens of milliseconds accumulate.
	if blocked := snap.Counters["sink_blocked_ns"]; blocked < uint64(10*time.Millisecond) {
		t.Errorf("sink_blocked_ns = %d, want >= 10ms of accumulated backpressure", blocked)
	}
}

// TestChanSinkDisabledMetricsIsNoop pins the zero-value contract: the
// plain NewChanSink constructor (nil instruments) behaves identically
// and records nothing anywhere.
func TestChanSinkDisabledMetricsIsNoop(t *testing.T) {
	down := &slowSink{}
	s := NewChanSink(down, 4)
	for i := 0; i < 16; i++ {
		if err := s.Put(synthRecord(0, i, "portscan", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if down.n != 16 {
		t.Fatalf("downstream received %d records, want 16", down.n)
	}
}
