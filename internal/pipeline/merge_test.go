package pipeline

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// encodeStream serializes records as one shard's NDJSON output.
func encodeStream(t *testing.T, recs ...*dataset.HostRecord) *dataset.Decoder {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return dataset.NewDecoder(&buf)
}

// TestMergeShardStreams covers the deterministic record-level merge:
// wave alignment across streams, cross-shard dedup with port-scan
// preference, and the unsharded sort order.
func TestMergeShardStreams(t *testing.T) {
	// Shard 0: waves 6 and 7. In wave 6 it reaches host 5 via a
	// follow-up reference; shard 1 owns host 5's index and port-scans
	// it, so the merge must keep shard 1's record.
	ref5 := synthRecord(6, 5, "follow-reference", 0)
	s0 := encodeStream(t,
		synthRecord(6, 1, "portscan", 0),
		synthRecord(6, 3, "portscan", 0),
		ref5,
		synthRecord(7, 1, "portscan", 0),
	)
	scan5 := synthRecord(6, 5, "portscan", 0)
	s1 := encodeStream(t,
		scan5,
		synthRecord(6, 9, "follow-reference", 0),
		// Shard 1 has nothing in wave 7.
	)

	slice := &SliceSink{}
	if err := MergeShardStreams(slice, s0, s1); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range slice.Records {
		got = append(got, r.Via+" "+r.Address+" w"+string(rune('0'+r.Wave)))
	}
	want := []string{
		"portscan " + synthRecord(6, 1, "portscan", 0).Address + " w6",
		"portscan " + synthRecord(6, 3, "portscan", 0).Address + " w6",
		"portscan " + scan5.Address + " w6",
		"follow-reference " + synthRecord(6, 9, "", 0).Address + " w6",
		"portscan " + synthRecord(7, 1, "portscan", 0).Address + " w7",
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The duplicate must have resolved to the port-scan copy.
	for _, r := range slice.Records {
		if r.Address == scan5.Address && r.Wave == 6 && r.Via != "portscan" {
			t.Error("dedup kept the follow-reference copy over the port scan")
		}
	}
}

// TestMergeShardStreamsRejectsUnordered pins the corrupt-stream check.
func TestMergeShardStreamsRejectsUnordered(t *testing.T) {
	s := encodeStream(t,
		synthRecord(7, 1, "portscan", 0),
		synthRecord(6, 2, "portscan", 0),
	)
	if err := MergeShardStreams(&SliceSink{}, s); err == nil {
		t.Error("decreasing wave numbering accepted")
	}
}

// TestMergeShardStreamsSingle is the degenerate case: one shard's
// stream passes through with only the per-wave sort applied.
func TestMergeShardStreamsSingle(t *testing.T) {
	a, b := synthRecord(7, 2, "portscan", 0), synthRecord(7, 1, "portscan", 0)
	s := encodeStream(t, a, b) // out of address order within the wave
	slice := &SliceSink{}
	if err := MergeShardStreams(slice, s); err != nil {
		t.Fatal(err)
	}
	if len(slice.Records) != 2 || slice.Records[0].Address != b.Address {
		t.Errorf("single-stream merge order wrong: %+v", slice.Records)
	}
}

// TestMergeShardStreamsSurfacesTruncation pins the error chain the
// fabric coordinator and the file-merge path rely on: a shard stream
// torn mid-record fails the merge with dataset.ErrTruncatedStream
// still detectable through the shard-index wrapping.
func TestMergeShardStreamsSurfacesTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := dataset.Write(&buf, []*dataset.HostRecord{
		synthRecord(6, 1, "portscan", 0),
		synthRecord(6, 2, "portscan", 0),
	}); err != nil {
		t.Fatal(err)
	}
	torn := dataset.NewDecoder(bytes.NewReader(buf.Bytes()[:buf.Len()-10]))
	whole := encodeStream(t, synthRecord(6, 3, "portscan", 0))

	err := MergeShardStreams(&SliceSink{}, whole, torn)
	if err == nil {
		t.Fatal("merge accepted a truncated shard stream")
	}
	if !errors.Is(err, dataset.ErrTruncatedStream) {
		t.Errorf("err = %v, want errors.Is(dataset.ErrTruncatedStream)", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("err = %v, want the failing shard index named", err)
	}
}
