package pipeline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// AnalyzerConfig tunes the streaming analyzer.
type AnalyzerConfig struct {
	// Workers parallelizes the per-host assessment of each finalized
	// wave (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Retain keeps every finalized WaveAnalysis (and therefore the
	// wave's records, which it references) for Results. With Retain
	// false the analyzer holds at most one wave's records at a time —
	// the flat-memory configuration: peak heap is O(largest wave), not
	// O(campaign) — and Results returns only the longitudinal fold.
	Retain bool
	// OnWave, if set, observes each WaveAnalysis as it finalizes,
	// before the analyzer drops it (when Retain is false). The callback
	// must not keep the analysis alive if the caller wants the flat
	// memory profile.
	OnWave func(*core.WaveAnalysis)
	// Metrics receives fold-throughput instruments (analyzer_records,
	// analyzer_waves, analyzer_fold_ns — the cumulative time spent in
	// wave finalization); nil disables them at zero cost.
	Metrics *telemetry.Registry
}

// Analyzer folds a wave-ordered record stream into per-wave analyses
// and the longitudinal series, wave by wave: records of wave w are
// accumulated incrementally, the wave finalizes when the first record
// of wave w+1 arrives (or at Close), and the finalized analysis is
// immediately folded into the longitudinal accumulator. It implements
// RecordSink, so it can terminate any pipeline — including behind a
// ChanSink when producers are concurrent.
//
// The input must be wave-ordered (every campaign path is: waves are
// merged in wave order, shard streams are wave-ordered per worker and
// merged wave-aligned); a record whose wave decreases is an error.
type Analyzer struct {
	cfg      AnalyzerConfig
	acc      *core.WaveAccumulator
	wave     int
	long     *core.LongitudinalAccumulator
	analyses []*core.WaveAnalysis
	longOut  *core.Longitudinal
	closed   bool

	records *telemetry.Counter
	waves   *telemetry.Counter
	foldNs  *telemetry.Counter
}

// NewAnalyzer returns an empty streaming analyzer.
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer {
	return &Analyzer{
		cfg:     cfg,
		long:    core.NewLongitudinalAccumulator(cfg.Retain),
		records: cfg.Metrics.Counter("analyzer_records"),
		waves:   cfg.Metrics.Counter("analyzer_waves"),
		foldNs:  cfg.Metrics.Counter("analyzer_fold_ns"),
	}
}

// Put folds one record. Implements RecordSink.
func (a *Analyzer) Put(rec *dataset.HostRecord) error {
	if a.closed {
		return fmt.Errorf("pipeline: analyzer: Put after Close")
	}
	switch {
	case a.acc == nil:
		a.acc = core.NewWaveAccumulator(rec.Wave, rec.Date)
		a.wave = rec.Wave
	case rec.Wave > a.wave:
		a.finalizeWave()
		a.acc = core.NewWaveAccumulator(rec.Wave, rec.Date)
		a.wave = rec.Wave
	case rec.Wave < a.wave:
		return fmt.Errorf("pipeline: analyzer: record stream not wave-ordered (wave %d after %d)",
			rec.Wave, a.wave)
	}
	a.acc.Add(rec)
	a.records.Inc()
	return nil
}

// finalizeWave closes the in-flight wave and folds it.
func (a *Analyzer) finalizeWave() {
	foldStart := a.foldNs.StartNs()
	w := a.acc.Finalize(a.cfg.Workers)
	a.acc = nil
	a.long.AddWave(w)
	a.foldNs.AddSince(foldStart)
	a.waves.Inc()
	if a.cfg.Retain {
		a.analyses = append(a.analyses, w)
	}
	if a.cfg.OnWave != nil {
		a.cfg.OnWave(w)
	}
}

// Close finalizes the last wave and the longitudinal fold. Implements
// RecordSink.
func (a *Analyzer) Close() error {
	if a.closed {
		return fmt.Errorf("pipeline: analyzer: closed twice")
	}
	a.closed = true
	if a.acc != nil {
		a.finalizeWave()
	}
	a.longOut = a.long.Finalize()
	return nil
}

// Results returns the retained per-wave analyses (nil unless
// AnalyzerConfig.Retain) and the longitudinal analysis. Valid after
// Close.
func (a *Analyzer) Results() ([]*core.WaveAnalysis, *core.Longitudinal) {
	return a.analyses, a.longOut
}
