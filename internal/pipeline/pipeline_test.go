package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// synthRecord builds one synthetic server record. pad sizes the record
// so memory tests can make waves big enough to measure.
func synthRecord(wave, host int, via string, pad int) *dataset.HostRecord {
	addr := fmt.Sprintf("100.64.%d.%d:4840", host/250, host%250+1)
	r := &dataset.HostRecord{
		Wave:            wave,
		Date:            time.Date(2020, 2, 9, 0, 0, 0, 0, time.UTC).AddDate(0, 0, 7*wave),
		Address:         addr,
		ASN:             64600 + host%40,
		Via:             via,
		ReachedOPCUA:    true,
		AppURI:          fmt.Sprintf("urn:bachmann.info:M1:%04x", host),
		ApplicationType: "Server",
		Endpoints: []dataset.EndpointRecord{{
			URL: "opc.tcp://" + addr, Mode: "None",
			PolicyURI:  "http://opcfoundation.org/UA/SecurityPolicy#None",
			TokenTypes: []string{"Anonymous"},
		}},
		AnonOffered: true,
		Namespaces:  []string{strings.Repeat("x", pad)},
	}
	if host%3 == 0 {
		r.Cert = &dataset.CertRecord{
			Thumbprint: fmt.Sprintf("thumb-%04x", host%5),
			Hash:       "SHA-256", Bits: 2048, SubjectOrg: "Bachmann",
			NotBefore: time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
		}
	}
	return r
}

func synthWave(wave, hosts, pad int) []*dataset.HostRecord {
	recs := make([]*dataset.HostRecord, 0, hosts)
	for h := 0; h < hosts; h++ {
		recs = append(recs, synthRecord(wave, h, "portscan", pad))
	}
	return recs
}

// TestAnalyzerMatchesSliceAnalysis pins the streaming analyzer against
// the slice-based core entry points on a three-wave stream.
func TestAnalyzerMatchesSliceAnalysis(t *testing.T) {
	var all []*dataset.HostRecord
	var want []*core.WaveAnalysis
	for w := 0; w < 3; w++ {
		recs := synthWave(w, 40, 0)
		all = append(all, recs...)
		want = append(want, core.AnalyzeWaveWorkers(w, recs[0].Date, recs, 1))
	}
	wantLong := core.AnalyzeLongitudinal(want)

	a := NewAnalyzer(AnalyzerConfig{Workers: 1, Retain: true})
	for _, r := range all {
		if err := a.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	analyses, long := a.Results()
	if !reflect.DeepEqual(analyses, want) {
		t.Error("streaming per-wave analyses differ from slice-based")
	}
	if !reflect.DeepEqual(long, wantLong) {
		t.Error("streaming longitudinal differs from slice-based")
	}
}

// TestAnalyzerRejectsUnorderedStream pins the wave-order requirement.
func TestAnalyzerRejectsUnorderedStream(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{Workers: 1})
	if err := a.Put(synthRecord(2, 0, "portscan", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(synthRecord(1, 1, "portscan", 0)); err == nil {
		t.Error("decreasing wave accepted")
	}
}

// TestAnalyzerFlatMemory is the streaming-memory gate: folding six
// additional waves through a non-retaining analyzer must not grow the
// retained heap by anything near those waves' record volume — the
// analyzer holds one wave at a time, regardless of campaign length.
func TestAnalyzerFlatMemory(t *testing.T) {
	const hosts, pad = 1500, 2048 // ≈3 MB of namespace padding per wave
	onWave := 0
	a := NewAnalyzer(AnalyzerConfig{Workers: 1, OnWave: func(*core.WaveAnalysis) { onWave++ }})
	feed := func(w int) {
		for h := 0; h < hosts; h++ {
			if err := a.Put(synthRecord(w, h, "portscan", pad)); err != nil {
				t.Fatal(err)
			}
		}
	}
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	feed(0)
	feed(1)
	base := heap()
	for w := 2; w < 8; w++ {
		feed(w)
	}
	grown := heap()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if onWave != 8 {
		t.Errorf("OnWave saw %d waves, want 8", onWave)
	}
	if _, long := a.Results(); long == nil || len(long.DeficientSeries) != 8 {
		t.Fatalf("longitudinal fold missing or short: %+v", long)
	}

	// Six extra waves ≈ 6×3 MB of record payload. Flat streaming means
	// the retained growth stays far below that (one wave's worth plus
	// fold state); allow one wave (~3 MB) of slack for allocator noise.
	const waveBytes = hosts * pad
	if grown > base+waveBytes {
		t.Errorf("retained heap grew %d bytes over 6 waves (base %d); streaming analysis is not flat",
			grown-base, base)
	}
}

// TestChanSinkConcurrentProducers exercises the bounded-channel fan-in:
// many producers Put concurrently, the downstream (not concurrency-
// safe) sees every record exactly once, and Close drains the buffer.
func TestChanSinkConcurrentProducers(t *testing.T) {
	slice := &SliceSink{}
	sink := NewChanSink(slice, 4)
	const producers, each = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := sink.Put(synthRecord(0, p*each+i, "portscan", 0)); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(slice.Records) != producers*each {
		t.Fatalf("downstream saw %d records, want %d", len(slice.Records), producers*each)
	}
	seen := map[string]bool{}
	for _, r := range slice.Records {
		if seen[r.Address] {
			t.Fatalf("record %s delivered twice", r.Address)
		}
		seen[r.Address] = true
	}
}

// failSink fails every Put after the first n.
type failSink struct {
	ok     int
	puts   int
	closed bool
}

func (f *failSink) Put(*dataset.HostRecord) error {
	f.puts++
	if f.puts > f.ok {
		return errors.New("sink full")
	}
	return nil
}

func (f *failSink) Close() error {
	f.closed = true
	return nil
}

// TestChanSinkDownstreamError pins the failure contract: a downstream
// error surfaces (at Put once the intake closes, always at Close),
// producers never block forever, and the downstream still gets closed.
func TestChanSinkDownstreamError(t *testing.T) {
	fs := &failSink{ok: 1}
	sink := NewChanSink(fs, 1)
	var lastErr error
	for i := 0; i < 100; i++ {
		if err := sink.Put(synthRecord(0, i, "portscan", 0)); err != nil {
			lastErr = err
			break
		}
	}
	err := sink.Close()
	if err == nil && lastErr == nil {
		t.Error("downstream error never surfaced")
	}
	if !fs.closed {
		t.Error("downstream not closed")
	}
}

// TestChanSinkFanInErrorAndCancel drives the full DESIGN.md §5 fan-in
// contract under the race detector: cancellation-aware concurrent
// producers, a downstream that starts failing mid-stream, and a caller
// cancelling the context while producers are in flight. Every producer
// must exit promptly (via ctx or a Put error — never wedged on a full
// buffer), Close must surface the downstream error, and the ChanSink
// must still close its downstream.
func TestChanSinkFanInErrorAndCancel(t *testing.T) {
	fs := &failSink{ok: 25}
	sink := NewChanSink(fs, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const producers, each = 8, 200
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if ctx.Err() != nil {
					return
				}
				if err := sink.Put(synthRecord(0, p*each+i, "portscan", 0)); err != nil {
					return
				}
				delivered.Add(1)
			}
		}(p)
	}

	// Wait until the downstream failure has definitely triggered (it
	// fails on put 26, so at least 25 successful enqueues precede it),
	// then cancel the remaining producers mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < 20 {
		if time.Now().After(deadline) {
			t.Fatal("producers never reached the downstream failure point")
		}
		runtime.Gosched()
	}
	cancel()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producers wedged: neither cancellation nor the failed intake unblocked Put")
	}

	if err := sink.Close(); err == nil {
		t.Error("downstream failure not surfaced at Close")
	}
	if !fs.closed {
		t.Error("downstream not closed after fan-in failure")
	}
}

// TestTeeAndEncoderSink checks the tee fan-out and that the encoder
// sink's anonymizing mode copies rather than mutates.
func TestTeeAndEncoderSink(t *testing.T) {
	var raw, anon bytes.Buffer
	slice := &SliceSink{}
	tee := Tee(NewEncoderSink(&raw, false), NewEncoderSink(&anon, true), slice)
	rec := synthRecord(7, 3, "portscan", 0)
	rec.Cert = &dataset.CertRecord{Thumbprint: "t", SubjectOrg: "Bachmann"}
	if err := tee.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw.String(), rec.Address) {
		t.Error("raw stream missing the address")
	}
	if strings.Contains(anon.String(), rec.Address) {
		t.Error("anonymized stream leaks the address")
	}
	if rec.Address == "" || strings.HasPrefix(rec.Address, "host-") {
		t.Error("original record mutated by anonymizing sink")
	}
	if len(slice.Records) != 1 || slice.Records[0] != rec {
		t.Error("slice sink did not receive the original record")
	}
}

// BenchmarkStreamingAnalyzerWave measures the per-wave cost of the
// non-retaining streaming analyzer: each op folds one 500-record wave
// into a single long-lived Analyzer (waves numbered by iteration, the
// longitudinal fold running throughout). allocs/op is therefore the
// marginal cost of one more wave — the number that must stay flat for
// streaming analysis to scale with campaign length; CI gates it
// against the budget recorded in BENCH_5.json.
func BenchmarkStreamingAnalyzerWave(b *testing.B) {
	recs := synthWave(0, 500, 0)
	a := NewAnalyzer(AnalyzerConfig{Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range recs {
			r.Wave = i
			if err := a.Put(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := a.Close(); err != nil {
		b.Fatal(err)
	}
	if _, long := a.Results(); len(long.DeficientSeries) != b.N {
		b.Fatalf("folded %d waves, want %d", len(long.DeficientSeries), b.N)
	}
}
