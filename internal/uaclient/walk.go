package uaclient

import (
	"context"
	"time"

	"repro/internal/uamsg"
	"repro/internal/uatypes"
)

// WalkOptions bound an address-space traversal. The defaults mirror the
// paper's politeness limits (Appendix A.2): 500 ms between requests,
// 60 minutes and 50 MB per host. Simulations set Delay to zero.
type WalkOptions struct {
	Delay       time.Duration
	MaxDuration time.Duration
	MaxBytes    int64
	MaxNodes    int
	// ReadValues samples the value of up to MaxValueReads readable
	// variables (used for classification evidence).
	ReadValues    bool
	MaxValueReads int
}

// DefaultWalkOptions returns the paper's limits.
func DefaultWalkOptions() WalkOptions {
	return WalkOptions{
		Delay:         500 * time.Millisecond,
		MaxDuration:   60 * time.Minute,
		MaxBytes:      50 << 20,
		MaxNodes:      100000,
		MaxValueReads: 16,
	}
}

// NodeInfo is one traversed node with its anonymous-effective rights.
type NodeInfo struct {
	ID              uatypes.NodeID
	Class           uamsg.NodeClass
	BrowseName      string
	DisplayName     string
	UserAccessLevel uamsg.AccessLevel
	UserExecutable  bool
	Value           *uatypes.Variant
}

// WalkResult is the outcome of an address-space traversal.
type WalkResult struct {
	Nodes      []NodeInfo
	Namespaces []string
	Truncated  bool
	LimitHit   string // which limit stopped the walk, if any
}

// Walk traverses the address space breadth-first from the Objects folder
// within the configured limits. It requires an activated session.
func (c *Client) Walk(ctx context.Context, o WalkOptions) (*WalkResult, error) {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 100000
	}
	res := &WalkResult{}
	deadline := time.Time{}
	if o.MaxDuration > 0 {
		deadline = time.Now().Add(o.MaxDuration)
	}
	limitHit := func() bool {
		if ctx.Err() != nil {
			res.Truncated, res.LimitHit = true, "context"
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Truncated, res.LimitHit = true, "time"
			return true
		}
		if o.MaxBytes > 0 {
			r, w := c.BytesTransferred()
			if r+w > o.MaxBytes {
				res.Truncated, res.LimitHit = true, "bytes"
				return true
			}
		}
		return false
	}
	pause := func() {
		if o.Delay > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(o.Delay):
			}
		}
	}

	if ns, err := c.NamespaceArray(); err == nil {
		res.Namespaces = ns
	}
	pause()

	visited := make(map[string]bool)
	queue := []uatypes.NodeID{uatypes.NewNumericNodeID(0, uamsg.IDObjectsFolder)}
	visited[queue[0].Key()] = true

	var variables, methods []uatypes.NodeID
	nodeAt := make(map[string]int) // node key -> index in res.Nodes

	for len(queue) > 0 && len(res.Nodes) < o.MaxNodes {
		if limitHit() {
			break
		}
		id := queue[0]
		queue = queue[1:]
		refs, err := c.Browse(id)
		if err != nil {
			// Nodes may be restricted; continue with the rest.
			continue
		}
		pause()
		for _, ref := range refs {
			key := ref.NodeID.NodeID.Key()
			if visited[key] {
				continue
			}
			visited[key] = true
			info := NodeInfo{
				ID:          ref.NodeID.NodeID,
				Class:       ref.NodeClass,
				BrowseName:  ref.BrowseName.String(),
				DisplayName: ref.DisplayName.Text,
			}
			nodeAt[key] = len(res.Nodes)
			res.Nodes = append(res.Nodes, info)
			switch ref.NodeClass {
			case uamsg.NodeClassVariable:
				variables = append(variables, ref.NodeID.NodeID)
			case uamsg.NodeClassMethod:
				methods = append(methods, ref.NodeID.NodeID)
			}
			if ref.NodeClass == uamsg.NodeClassObject || ref.NodeClass == uamsg.NodeClassVariable {
				queue = append(queue, ref.NodeID.NodeID)
			}
			if len(res.Nodes) >= o.MaxNodes {
				res.Truncated, res.LimitHit = true, "nodes"
				break
			}
		}
	}

	// Batch-read effective access rights.
	const batch = 100
	for start := 0; start < len(variables) && !limitHit(); start += batch {
		end := min(start+batch, len(variables))
		vals, err := c.Read(variables[start:end], uamsg.AttrUserAccessLevel)
		if err != nil {
			break
		}
		pause()
		for i, dv := range vals {
			if dv.Value != nil {
				idx := nodeAt[variables[start+i].Key()]
				res.Nodes[idx].UserAccessLevel = uamsg.AccessLevel(dv.Value.Uint)
			}
		}
	}
	for start := 0; start < len(methods) && !limitHit(); start += batch {
		end := min(start+batch, len(methods))
		vals, err := c.Read(methods[start:end], uamsg.AttrUserExecutable)
		if err != nil {
			break
		}
		pause()
		for i, dv := range vals {
			if dv.Value != nil {
				idx := nodeAt[methods[start+i].Key()]
				res.Nodes[idx].UserExecutable = dv.Value.Bool
			}
		}
	}

	if o.ReadValues {
		reads := 0
		for i := range res.Nodes {
			if limitHit() || reads >= o.MaxValueReads {
				break
			}
			n := &res.Nodes[i]
			if n.Class != uamsg.NodeClassVariable || !n.UserAccessLevel.CanRead() {
				continue
			}
			dv, err := c.ReadValue(n.ID)
			if err != nil {
				break
			}
			pause()
			if dv.Value != nil {
				v := *dv.Value
				n.Value = &v
			}
			reads++
		}
	}
	return res, nil
}
