// Package uaclient implements a full OPC UA client: UACP handshake,
// secure channels with any policy/mode, discovery services, sessions
// with all token types, and a polite address-space walker with the
// byte/time limits the paper's scanner enforces (Appendix A.2).
package uaclient

import (
	"context"
	"crypto/rsa"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uarsa"
	"repro/internal/uasc"
	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// Dialer abstracts connection establishment so clients run against the
// real Internet (net.Dialer) or a simulated one.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Options configures a client.
type Options struct {
	Dialer          Dialer
	Limits          uasc.Limits
	Timeout         time.Duration // per-connection I/O deadline
	ApplicationURI  string
	ApplicationName string

	// Per-stage deadlines (all optional; zero falls back to Timeout).
	// The scanner's resilience layer sets them so one adversarial stage
	// — a dial that hangs, a hello that dribbles, an OPN that stalls —
	// fails within its own bound instead of consuming the whole
	// connection budget (DESIGN.md §9).
	ConnectTimeout time.Duration // bounds Dialer.DialContext
	HelloTimeout   time.Duration // bounds the UACP hello/acknowledge exchange
	OpenTimeout    time.Duration // bounds the OpenSecureChannel exchange
	RequestTimeout time.Duration // per-request budget after channel open

	// HardDeadline, when nonzero, is an absolute watchdog: no deadline
	// extension — not even the walk's — ever arms past it, so a tarpit
	// host cannot wedge a grab-pool worker beyond this instant.
	HardDeadline time.Time
}

func (o Options) withDefaults() Options {
	if o.Dialer == nil {
		o.Dialer = &net.Dialer{}
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.ApplicationURI == "" {
		o.ApplicationURI = "urn:repro:opcua:client"
	}
	return o
}

// EndpointAddress extracts "host:port" from an opc.tcp URL.
func EndpointAddress(endpointURL string) (string, error) {
	rest, ok := strings.CutPrefix(endpointURL, "opc.tcp://")
	if !ok {
		return "", fmt.Errorf("uaclient: unsupported scheme in %q", endpointURL)
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", fmt.Errorf("uaclient: empty host in %q", endpointURL)
	}
	if !strings.Contains(rest, ":") {
		rest += ":4840"
	}
	return rest, nil
}

// countingConn tracks transferred bytes for the scanner's traffic cap.
type countingConn struct {
	net.Conn
	read    *atomic.Int64
	written *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// Client is a connection to one OPC UA server.
type Client struct {
	opts Options

	tr *uasc.Transport
	ch *uasc.Channel

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	endpointURL string
	reqHandle   uint32

	sessionToken uatypes.NodeID
	activated    bool

	// deadlineAt is the I/O deadline last armed on the connection;
	// ExtendDeadline re-arms only when a meaningful share of the budget
	// has elapsed (deadline timers are a per-call allocation on both
	// net.Pipe and kernel sockets, and the walk issues thousands of
	// requests per connection).
	deadlineAt time.Time
}

// Dial connects and completes the UACP handshake. No secure channel is
// opened yet; call OpenChannel.
func Dial(ctx context.Context, endpointURL string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	addr, err := EndpointAddress(endpointURL)
	if err != nil {
		return nil, err
	}
	dctx := ctx
	if opts.ConnectTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, opts.ConnectTimeout)
		defer cancel()
	}
	conn, err := opts.Dialer.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{opts: opts, endpointURL: endpointURL}
	cc := countingConn{Conn: conn, read: &c.bytesRead, written: &c.bytesWritten}
	c.deadlineAt = c.clamp(time.Now().Add(c.budget(opts.HelloTimeout)))
	_ = conn.SetDeadline(c.deadlineAt)
	tr, err := uasc.ClientHello(cc, endpointURL, opts.Limits)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.tr = tr
	return c, nil
}

// BytesTransferred returns total bytes read and written.
func (c *Client) BytesTransferred() (read, written int64) {
	return c.bytesRead.Load(), c.bytesWritten.Load()
}

// budget resolves a stage deadline, falling back to the connection
// timeout when the stage has no override.
func (c *Client) budget(stage time.Duration) time.Duration {
	if stage > 0 {
		return stage
	}
	return c.opts.Timeout
}

// clamp caps a candidate deadline at the hard watchdog deadline.
func (c *Client) clamp(t time.Time) time.Time {
	if !c.opts.HardDeadline.IsZero() && t.After(c.opts.HardDeadline) {
		return c.opts.HardDeadline
	}
	return t
}

// armStage re-arms the connection deadline for a new protocol stage.
func (c *Client) armStage(stage time.Duration) {
	c.deadlineAt = c.clamp(time.Now().Add(c.budget(stage)))
	_ = c.tr.Conn.SetDeadline(c.deadlineAt)
}

// ExtendDeadline pushes the connection I/O deadline forward. Re-arming
// is rate-limited to once per quarter of the request budget, so the
// effective deadline stays within [3/4·budget, budget] of the last
// request instead of being re-armed (and a timer re-allocated) on
// every one. The hard watchdog deadline is never exceeded.
func (c *Client) ExtendDeadline() {
	now := time.Now()
	budget := c.budget(c.opts.RequestTimeout)
	if c.deadlineAt.Sub(now) > 3*budget/4 {
		return
	}
	c.deadlineAt = c.clamp(now.Add(budget))
	_ = c.tr.Conn.SetDeadline(c.deadlineAt)
}

// ChannelSecurity describes the secure channel to open.
type ChannelSecurity struct {
	Policy        *uapolicy.Policy
	Mode          uamsg.MessageSecurityMode
	LocalKey      *rsa.PrivateKey
	LocalCertDER  []byte
	RemoteCertDER []byte

	// Engine memoizes the channel's RSA operations; Derive makes the
	// handshake deterministic so memoized results hit across waves
	// (both optional; see uasc.ChannelSecurity and package uarsa).
	Engine *uarsa.Engine
	Derive *uarsa.Derivation

	// Metrics observes the handshake under the caller's (policy, mode)
	// scope (optional; see uasc.ChannelSecurity).
	Metrics *telemetry.ChannelMetrics
}

// OpenChannel opens the secure channel. Must be called exactly once.
func (c *Client) OpenChannel(sec ChannelSecurity) error {
	if c.ch != nil {
		return errors.New("uaclient: channel already open")
	}
	if c.opts.OpenTimeout > 0 {
		c.armStage(c.opts.OpenTimeout)
	} else {
		c.ExtendDeadline()
	}
	ch, err := uasc.Open(c.tr, uasc.ChannelSecurity{
		Policy:        sec.Policy,
		Mode:          sec.Mode,
		LocalKey:      sec.LocalKey,
		LocalCertDER:  sec.LocalCertDER,
		RemoteCertDER: sec.RemoteCertDER,
		Engine:        sec.Engine,
		Derive:        sec.Derive,
		Metrics:       sec.Metrics,
	}, 3600000)
	if err != nil {
		return err
	}
	c.ch = ch
	return nil
}

// OpenInsecureChannel opens a None/None channel (used for discovery).
func (c *Client) OpenInsecureChannel() error {
	return c.OpenChannel(ChannelSecurity{
		Policy: uapolicy.None,
		Mode:   uamsg.SecurityModeNone,
	})
}

// Close tears the connection down.
func (c *Client) Close() error {
	if c.ch != nil {
		return c.ch.Close()
	}
	return c.tr.Close()
}

func (c *Client) nextHandle() uint32 {
	c.reqHandle++
	return c.reqHandle
}

func (c *Client) header() uamsg.RequestHeader {
	return uamsg.RequestHeader{
		AuthenticationToken: c.sessionToken,
		Timestamp:           time.Now(),
		RequestHandle:       c.nextHandle(),
		TimeoutHint:         uint32(c.opts.Timeout / time.Millisecond),
	}
}

// request sends a request and unwraps faults into errors.
func (c *Client) request(req uamsg.Request) (uamsg.Message, error) {
	if c.ch == nil {
		return nil, errors.New("uaclient: no open channel")
	}
	c.ExtendDeadline()
	msg, err := c.ch.Request(req)
	if err != nil {
		return nil, err
	}
	if f, ok := msg.(*uamsg.ServiceFault); ok {
		return nil, ServiceError{Code: f.Header.ServiceResult}
	}
	if resp, ok := msg.(uamsg.Response); ok {
		if code := resp.ResponseHeader().ServiceResult; code.IsBad() {
			return nil, ServiceError{Code: code}
		}
	}
	return msg, nil
}

// ServiceError is a bad service result from the server.
type ServiceError struct {
	Code uastatus.Code
}

// Error implements the error interface.
func (e ServiceError) Error() string { return "uaclient: service error: " + e.Code.String() }

// GetEndpoints retrieves the server's endpoint descriptions.
func (c *Client) GetEndpoints() ([]uamsg.EndpointDescription, error) {
	msg, err := c.request(&uamsg.GetEndpointsRequest{
		Header:      c.header(),
		EndpointURL: c.endpointURL,
	})
	if err != nil {
		return nil, err
	}
	resp, ok := msg.(*uamsg.GetEndpointsResponse)
	if !ok {
		return nil, fmt.Errorf("uaclient: unexpected %T", msg)
	}
	return resp.Endpoints, nil
}

// FindServers queries the discovery service.
func (c *Client) FindServers() ([]uamsg.ApplicationDescription, error) {
	msg, err := c.request(&uamsg.FindServersRequest{
		Header:      c.header(),
		EndpointURL: c.endpointURL,
	})
	if err != nil {
		return nil, err
	}
	resp, ok := msg.(*uamsg.FindServersResponse)
	if !ok {
		return nil, fmt.Errorf("uaclient: unexpected %T", msg)
	}
	return resp.Servers, nil
}

// Identity selects the session authentication token.
type Identity struct {
	Token any // *uamsg.AnonymousIdentityToken etc.; nil means anonymous
}

// AnonymousIdentity authenticates anonymously.
func AnonymousIdentity() Identity {
	return Identity{Token: &uamsg.AnonymousIdentityToken{PolicyID: "0"}}
}

// UserNameIdentity authenticates with credentials.
func UserNameIdentity(user, password string) Identity {
	return Identity{Token: &uamsg.UserNameIdentityToken{
		PolicyID: "0", UserName: user, Password: []byte(password),
	}}
}

// CreateSession creates and activates a session with the identity.
func (c *Client) CreateSession(identity Identity) error {
	nonce := make([]byte, 32)
	msg, err := c.request(&uamsg.CreateSessionRequest{
		Header: c.header(),
		ClientDescription: uamsg.ApplicationDescription{
			ApplicationURI:  c.opts.ApplicationURI,
			ApplicationName: uatypes.NewText(c.opts.ApplicationName),
			ApplicationType: uamsg.ApplicationClient,
		},
		EndpointURL:             c.endpointURL,
		SessionName:             "session",
		ClientNonce:             nonce,
		ClientCertificate:       c.ch.Security().LocalCertDER,
		RequestedSessionTimeout: 60000,
	})
	if err != nil {
		return err
	}
	resp, ok := msg.(*uamsg.CreateSessionResponse)
	if !ok {
		return fmt.Errorf("uaclient: unexpected %T", msg)
	}
	c.sessionToken = resp.AuthenticationToken

	act := &uamsg.ActivateSessionRequest{
		Header:            c.header(),
		UserIdentityToken: uamsg.EncodeIdentityToken(identity.Token),
	}
	sec := c.ch.Security()
	if !sec.Policy.Insecure && sec.LocalKey != nil {
		data := append(append([]byte{}, resp.ServerCertificate...), resp.ServerNonce...)
		// Routed through the channel's crypto context: on deterministic
		// channels the server nonce replays across waves, so this RSA
		// signature resolves from the campaign cache after the first
		// session against each (certificate, policy, mode) state.
		cc := c.ch.CryptoContext("activate-sign")
		if sig, err := sec.Policy.AsymSignCtx(cc, sec.LocalKey, data); err == nil {
			act.ClientSignature = uamsg.SignatureData{Algorithm: sec.Policy.URI, Signature: sig}
		}
	}
	if _, err := c.request(act); err != nil {
		c.sessionToken = uatypes.NodeID{}
		return err
	}
	c.activated = true
	return nil
}

// CloseSession ends the session.
func (c *Client) CloseSession() error {
	if !c.activated && c.sessionToken.IsNull() {
		return nil
	}
	_, err := c.request(&uamsg.CloseSessionRequest{Header: c.header()})
	c.activated = false
	c.sessionToken = uatypes.NodeID{}
	return err
}

// Browse returns the forward hierarchical references of one node.
func (c *Client) Browse(id uatypes.NodeID) ([]uamsg.ReferenceDescription, error) {
	msg, err := c.request(&uamsg.BrowseRequest{
		Header: c.header(),
		NodesToBrowse: []uamsg.BrowseDescription{{
			NodeID:          id,
			Direction:       uamsg.BrowseDirectionForward,
			ReferenceTypeID: uatypes.NewNumericNodeID(0, uamsg.IDHierarchicalRefType),
			IncludeSubtypes: true,
			ResultMask:      63,
		}},
	})
	if err != nil {
		return nil, err
	}
	resp, ok := msg.(*uamsg.BrowseResponse)
	if !ok {
		return nil, fmt.Errorf("uaclient: unexpected %T", msg)
	}
	if len(resp.Results) != 1 {
		return nil, errors.New("uaclient: browse returned no results")
	}
	result := resp.Results[0]
	if result.Status.IsBad() {
		return nil, ServiceError{Code: result.Status}
	}
	refs := result.References
	for len(result.ContinuationPoint) > 0 {
		msg, err := c.request(&uamsg.BrowseNextRequest{
			Header:             c.header(),
			ContinuationPoints: [][]byte{result.ContinuationPoint},
		})
		if err != nil {
			return nil, err
		}
		next, ok := msg.(*uamsg.BrowseNextResponse)
		if !ok || len(next.Results) != 1 {
			return nil, errors.New("uaclient: malformed browse-next response")
		}
		result = next.Results[0]
		refs = append(refs, result.References...)
	}
	return refs, nil
}

// Read reads one attribute of several nodes.
func (c *Client) Read(ids []uatypes.NodeID, attr uamsg.AttributeID) ([]uatypes.DataValue, error) {
	rvs := make([]uamsg.ReadValueID, len(ids))
	for i, id := range ids {
		rvs[i] = uamsg.ReadValueID{NodeID: id, AttributeID: attr}
	}
	msg, err := c.request(&uamsg.ReadRequest{
		Header:      c.header(),
		Timestamps:  uamsg.TimestampsNeither,
		NodesToRead: rvs,
	})
	if err != nil {
		return nil, err
	}
	resp, ok := msg.(*uamsg.ReadResponse)
	if !ok {
		return nil, fmt.Errorf("uaclient: unexpected %T", msg)
	}
	return resp.Results, nil
}

// ReadValue reads the Value attribute of one node.
func (c *Client) ReadValue(id uatypes.NodeID) (uatypes.DataValue, error) {
	vals, err := c.Read([]uatypes.NodeID{id}, uamsg.AttrValue)
	if err != nil {
		return uatypes.DataValue{}, err
	}
	if len(vals) != 1 {
		return uatypes.DataValue{}, errors.New("uaclient: read returned no results")
	}
	return vals[0], nil
}

// Call invokes one method.
func (c *Client) Call(objectID, methodID uatypes.NodeID, args []uatypes.Variant) (uamsg.CallMethodResult, error) {
	msg, err := c.request(&uamsg.CallRequest{
		Header: c.header(),
		MethodsToCall: []uamsg.CallMethodRequest{{
			ObjectID: objectID, MethodID: methodID, InputArguments: args,
		}},
	})
	if err != nil {
		return uamsg.CallMethodResult{}, err
	}
	resp, ok := msg.(*uamsg.CallResponse)
	if !ok || len(resp.Results) != 1 {
		return uamsg.CallMethodResult{}, errors.New("uaclient: malformed call response")
	}
	return resp.Results[0], nil
}

// NamespaceArray reads the server's namespace array.
func (c *Client) NamespaceArray() ([]string, error) {
	dv, err := c.ReadValue(uatypes.NewNumericNodeID(0, uamsg.IDNamespaceArray))
	if err != nil {
		return nil, err
	}
	if dv.Value == nil {
		return nil, errors.New("uaclient: namespace array empty")
	}
	return dv.Value.StringArray(), nil
}

// SoftwareVersion reads BuildInfo/SoftwareVersion.
func (c *Client) SoftwareVersion() (string, error) {
	dv, err := c.ReadValue(uatypes.NewNumericNodeID(0, uamsg.IDSoftwareVersion))
	if err != nil {
		return "", err
	}
	if dv.Value == nil {
		return "", nil
	}
	return dv.Value.Str, nil
}
