package uaclient

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/uamsg"
)

// The full client behaviour (sessions, browse, read, call, walking,
// security) is exercised against the real server in
// internal/uaserver's integration tests; this file covers the
// client-local pieces.

func TestIdentityConstructors(t *testing.T) {
	anon := AnonymousIdentity()
	tok, ok := anon.Token.(*uamsg.AnonymousIdentityToken)
	if !ok || tok.PolicyID != "0" {
		t.Errorf("anonymous identity = %#v", anon.Token)
	}
	user := UserNameIdentity("op", "pw")
	ut, ok := user.Token.(*uamsg.UserNameIdentityToken)
	if !ok || ut.UserName != "op" || string(ut.Password) != "pw" {
		t.Errorf("user identity = %#v", user.Token)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Dialer == nil || o.Timeout <= 0 || o.ApplicationURI == "" {
		t.Errorf("defaults missing: %+v", o)
	}
	custom := Options{Timeout: time.Second, ApplicationURI: "urn:x"}.withDefaults()
	if custom.Timeout != time.Second || custom.ApplicationURI != "urn:x" {
		t.Errorf("custom options overridden: %+v", custom)
	}
}

func TestServiceErrorMessage(t *testing.T) {
	e := ServiceError{Code: 0x80340000} // BadNodeIdUnknown
	if e.Error() == "" {
		t.Error("empty error message")
	}
}

type refusingDialer struct{}

func (refusingDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return nil, &net.OpError{Op: "dial", Err: context.DeadlineExceeded}
}

func TestDialFailures(t *testing.T) {
	// Bad URL scheme.
	if _, err := Dial(context.Background(), "http://x", Options{}); err == nil {
		t.Error("bad scheme accepted")
	}
	// Dialer failure propagates.
	if _, err := Dial(context.Background(), "opc.tcp://192.0.2.1:4840",
		Options{Dialer: refusingDialer{}}); err == nil {
		t.Error("dialer failure swallowed")
	}
}

func TestDialHandshakeFailureClosesConn(t *testing.T) {
	// A peer that speaks garbage instead of ACK must produce an error.
	client, server := net.Pipe()
	d := pipeDialer{conn: client}
	go func() {
		buf := make([]byte, 256)
		_, _ = server.Read(buf)
		_, _ = server.Write([]byte("HTTP/1.0 400 Bad Request\r\n\r\n"))
		server.Close()
	}()
	_, err := Dial(context.Background(), "opc.tcp://198.51.100.1:4840", Options{
		Dialer:  d,
		Timeout: 2 * time.Second,
	})
	if err == nil {
		t.Error("garbage handshake accepted")
	}
}

type pipeDialer struct{ conn net.Conn }

func (p pipeDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return p.conn, nil
}

func TestDefaultWalkOptionsMatchPaper(t *testing.T) {
	o := DefaultWalkOptions()
	if o.Delay != 500*time.Millisecond {
		t.Errorf("delay = %v, want the paper's 500ms", o.Delay)
	}
	if o.MaxDuration != 60*time.Minute {
		t.Errorf("max duration = %v, want 60min", o.MaxDuration)
	}
	if o.MaxBytes != 50<<20 {
		t.Errorf("max bytes = %d, want 50MB", o.MaxBytes)
	}
}

// --- stage deadlines and the hard watchdog (DESIGN.md §9) ---

func TestStageBudgetFallsBackToTimeout(t *testing.T) {
	c := &Client{opts: Options{Timeout: 30 * time.Second}}
	if got := c.budget(0); got != 30*time.Second {
		t.Errorf("budget(0) = %v, want the 30s connection budget", got)
	}
	if got := c.budget(2 * time.Second); got != 2*time.Second {
		t.Errorf("budget(2s) = %v, want the stage's own 2s", got)
	}
}

func TestClampCapsAtHardDeadline(t *testing.T) {
	hard := time.Now().Add(time.Second)
	c := &Client{opts: Options{HardDeadline: hard}}
	if got := c.clamp(hard.Add(time.Hour)); !got.Equal(hard) {
		t.Errorf("clamp past the watchdog = %v, want %v", got, hard)
	}
	before := hard.Add(-time.Minute)
	if got := c.clamp(before); !got.Equal(before) {
		t.Errorf("clamp before the watchdog = %v, want %v", got, before)
	}
	unclamped := &Client{opts: Options{}}
	far := time.Now().Add(time.Hour)
	if got := unclamped.clamp(far); !got.Equal(far) {
		t.Errorf("zero HardDeadline clamped %v to %v", far, got)
	}
}

// TestHelloTimeoutBoundsTarpit: a peer that reads the hello and then
// stalls silently must cost HelloTimeout, not the whole 30s connection
// budget — the tarpit-host armor.
func TestHelloTimeoutBoundsTarpit(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	_, err := Dial(context.Background(), "opc.tcp://198.51.100.1:4840", Options{
		Dialer:       pipeDialer{conn: client},
		Timeout:      30 * time.Second,
		HelloTimeout: 100 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("tarpit handshake succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("tarpit error = %v, want a timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("tarpit dial took %v — HelloTimeout did not bound the stall", elapsed)
	}
}

// TestHardDeadlineOverridesStages: an already-expired watchdog fails
// the handshake immediately, whatever the stage budgets say.
func TestHardDeadlineOverridesStages(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	_, err := Dial(context.Background(), "opc.tcp://198.51.100.1:4840", Options{
		Dialer:       pipeDialer{conn: client},
		Timeout:      30 * time.Second,
		HelloTimeout: 30 * time.Second,
		HardDeadline: time.Now().Add(-time.Second),
	})
	if err == nil {
		t.Fatal("expired watchdog still allowed the handshake")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("expired-watchdog dial took %v, want immediate failure", elapsed)
	}
}

// blockingDialer blocks until its context is cancelled.
type blockingDialer struct{}

func (blockingDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestConnectTimeoutBoundsDial: ConnectTimeout cancels a wedged dial.
func TestConnectTimeoutBoundsDial(t *testing.T) {
	start := time.Now()
	_, err := Dial(context.Background(), "opc.tcp://198.51.100.1:4840", Options{
		Dialer:         blockingDialer{},
		Timeout:        30 * time.Second,
		ConnectTimeout: 100 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("wedged dial error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("wedged dial took %v — ConnectTimeout did not bound it", elapsed)
	}
}
