package uaclient

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/uamsg"
)

// The full client behaviour (sessions, browse, read, call, walking,
// security) is exercised against the real server in
// internal/uaserver's integration tests; this file covers the
// client-local pieces.

func TestIdentityConstructors(t *testing.T) {
	anon := AnonymousIdentity()
	tok, ok := anon.Token.(*uamsg.AnonymousIdentityToken)
	if !ok || tok.PolicyID != "0" {
		t.Errorf("anonymous identity = %#v", anon.Token)
	}
	user := UserNameIdentity("op", "pw")
	ut, ok := user.Token.(*uamsg.UserNameIdentityToken)
	if !ok || ut.UserName != "op" || string(ut.Password) != "pw" {
		t.Errorf("user identity = %#v", user.Token)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Dialer == nil || o.Timeout <= 0 || o.ApplicationURI == "" {
		t.Errorf("defaults missing: %+v", o)
	}
	custom := Options{Timeout: time.Second, ApplicationURI: "urn:x"}.withDefaults()
	if custom.Timeout != time.Second || custom.ApplicationURI != "urn:x" {
		t.Errorf("custom options overridden: %+v", custom)
	}
}

func TestServiceErrorMessage(t *testing.T) {
	e := ServiceError{Code: 0x80340000} // BadNodeIdUnknown
	if e.Error() == "" {
		t.Error("empty error message")
	}
}

type refusingDialer struct{}

func (refusingDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return nil, &net.OpError{Op: "dial", Err: context.DeadlineExceeded}
}

func TestDialFailures(t *testing.T) {
	// Bad URL scheme.
	if _, err := Dial(context.Background(), "http://x", Options{}); err == nil {
		t.Error("bad scheme accepted")
	}
	// Dialer failure propagates.
	if _, err := Dial(context.Background(), "opc.tcp://192.0.2.1:4840",
		Options{Dialer: refusingDialer{}}); err == nil {
		t.Error("dialer failure swallowed")
	}
}

func TestDialHandshakeFailureClosesConn(t *testing.T) {
	// A peer that speaks garbage instead of ACK must produce an error.
	client, server := net.Pipe()
	d := pipeDialer{conn: client}
	go func() {
		buf := make([]byte, 256)
		_, _ = server.Read(buf)
		_, _ = server.Write([]byte("HTTP/1.0 400 Bad Request\r\n\r\n"))
		server.Close()
	}()
	_, err := Dial(context.Background(), "opc.tcp://198.51.100.1:4840", Options{
		Dialer:  d,
		Timeout: 2 * time.Second,
	})
	if err == nil {
		t.Error("garbage handshake accepted")
	}
}

type pipeDialer struct{ conn net.Conn }

func (p pipeDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return p.conn, nil
}

func TestDefaultWalkOptionsMatchPaper(t *testing.T) {
	o := DefaultWalkOptions()
	if o.Delay != 500*time.Millisecond {
		t.Errorf("delay = %v, want the paper's 500ms", o.Delay)
	}
	if o.MaxDuration != 60*time.Minute {
		t.Errorf("max duration = %v, want 60min", o.MaxDuration)
	}
	if o.MaxBytes != 50<<20 {
		t.Errorf("max bytes = %d, want 50MB", o.MaxBytes)
	}
}
