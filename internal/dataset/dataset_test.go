package dataset

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/scanner"
	"repro/internal/uamsg"
)

func sampleResult() *scanner.Result {
	return &scanner.Result{
		Address:         "100.64.0.5:4840",
		Via:             scanner.ViaPortScan,
		Time:            time.Date(2020, 8, 30, 10, 0, 0, 0, time.UTC),
		ReachedOPCUA:    true,
		ApplicationURI:  "urn:bachmann.info:M1:0005",
		ApplicationType: uamsg.ApplicationServer,
		SoftwareVersion: "2.0.1",
		Endpoints: []scanner.EndpointInfo{{
			URL:               "opc.tcp://100.64.0.5:4840",
			SecurityMode:      uamsg.SecurityModeNone,
			SecurityPolicyURI: "http://opcfoundation.org/UA/SecurityPolicy#None",
			TokenTypes:        []uamsg.UserTokenType{uamsg.UserTokenAnonymous},
		}, {
			URL:               "opc.tcp://100.64.0.6:4841",
			SecurityMode:      uamsg.SecurityModeSignAndEncrypt,
			SecurityPolicyURI: "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256",
			TokenTypes:        []uamsg.UserTokenType{uamsg.UserTokenUserName},
		}},
		Session:    scanner.SessionResult{Offered: true, Attempted: true, OK: true},
		Namespaces: []string{"http://opcfoundation.org/UA/", "http://bachmann.info/UA/M1"},
		Nodes: []scanner.NodeRecord{{
			ID: "ns=2;s=m3InflowPerHour_0", Class: "Variable",
			DisplayName: "m3InflowPerHour_0", Readable: true,
			ValueSample: "42.5",
		}},
		NodeStats:        scanner.NodeStats{Variables: 10, Readable: 9, Writable: 2, Methods: 3, Executable: 3},
		BytesTransferred: 12345,
		Duration:         110 * time.Millisecond,
	}
}

func TestFromResult(t *testing.T) {
	rec := FromResult(sampleResult(), 7, time.Date(2020, 8, 30, 0, 0, 0, 0, time.UTC), 64601)
	if rec.Wave != 7 || rec.ASN != 64601 || !rec.ReachedOPCUA {
		t.Errorf("rec = %+v", rec)
	}
	if rec.ApplicationType != "Server" || rec.IsDiscovery() {
		t.Errorf("application type = %q", rec.ApplicationType)
	}
	if len(rec.Endpoints) != 2 || rec.Endpoints[1].Mode != "SignAndEncrypt" {
		t.Errorf("endpoints = %+v", rec.Endpoints)
	}
	if rec.Endpoints[0].TokenTypes[0] != "Anonymous" {
		t.Errorf("token types = %v", rec.Endpoints[0].TokenTypes)
	}
	if !rec.Accessible() || rec.Readable != 9 || rec.Writable != 2 {
		t.Errorf("stats = %+v", rec)
	}
	if rec.Cert != nil {
		t.Error("no cert DER given, record should have nil cert")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rec := FromResult(sampleResult(), 7, time.Now().UTC(), 64601)
	var buf bytes.Buffer
	if err := Write(&buf, []*HostRecord{rec, rec}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	if got[0].Address != rec.Address || got[0].Readable != rec.Readable ||
		len(got[0].Endpoints) != len(rec.Endpoints) {
		t.Errorf("round trip mismatch: %+v", got[0])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	recs, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank lines: %v, %v", recs, err)
	}
}

func TestAnonymizer(t *testing.T) {
	a := NewAnonymizer()
	rec := FromResult(sampleResult(), 7, time.Now().UTC(), 64601)
	rec.Cert = &CertRecord{
		Thumbprint: "abc123",
		SubjectCN:  "Bachmann device",
		SubjectOrg: "Bachmann",
		AppURI:     "urn:bachmann.info:M1:0005",
	}
	a.Anonymize(rec)
	if rec.Address != "host-1:4840" {
		t.Errorf("address = %q", rec.Address)
	}
	if rec.ASN != 1 {
		t.Errorf("ASN = %d", rec.ASN)
	}
	if rec.Cert.SubjectCN != "[redacted]" || rec.Cert.SubjectOrg != "[redacted]" ||
		rec.Cert.AppURI != "[redacted]" {
		t.Errorf("cert fields not blackened: %+v", rec.Cert)
	}
	if rec.Cert.Thumbprint != "abc123" {
		t.Error("thumbprint must survive (needed for reuse analysis)")
	}
	for _, n := range rec.Nodes {
		if n.ValueSample != "" || n.DisplayName != "" {
			t.Error("node payload not dropped")
		}
	}
	// Endpoint URLs anonymized with stable mapping: second endpoint
	// points at another host → host-2.
	if rec.Endpoints[0].URL != "opc.tcp://host-1:4840" {
		t.Errorf("endpoint[0] = %q", rec.Endpoints[0].URL)
	}
	if rec.Endpoints[1].URL != "opc.tcp://host-2:4841" {
		t.Errorf("endpoint[1] = %q", rec.Endpoints[1].URL)
	}

	// Stability: anonymizing another record from the same host maps to
	// the same sequence number.
	rec2 := FromResult(sampleResult(), 6, time.Now().UTC(), 64601)
	a.Anonymize(rec2)
	if rec2.Address != "host-1:4840" || rec2.ASN != 1 {
		t.Errorf("anonymizer not stable: %q AS%d", rec2.Address, rec2.ASN)
	}
}

func TestAnonymizeUnparseableAddress(t *testing.T) {
	a := NewAnonymizer()
	rec := &HostRecord{Address: "weird"}
	a.Anonymize(rec)
	if !strings.HasPrefix(rec.Address, "host-") {
		t.Errorf("address = %q", rec.Address)
	}
}

// TestEncoderDecoderStreaming pins the record-at-a-time pipeline API:
// the streaming Encoder produces the exact bytes of the slice-based
// Write wrapper, and Decode yields the records one by one with io.EOF
// at the end.
func TestEncoderDecoderStreaming(t *testing.T) {
	recs := []*HostRecord{
		FromResult(sampleResult(), 6, time.Date(2020, 8, 23, 0, 0, 0, 0, time.UTC), 64601),
		FromResult(sampleResult(), 7, time.Date(2020, 8, 30, 0, 0, 0, 0, time.UTC), 64602),
	}

	var streamed bytes.Buffer
	enc := NewEncoder(&streamed)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	var sliced bytes.Buffer
	if err := Write(&sliced, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), sliced.Bytes()) {
		t.Errorf("streamed encoding differs from Write: %d vs %d bytes",
			streamed.Len(), sliced.Len())
	}

	dec := NewDecoder(&streamed)
	for i := range recs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Wave != recs[i].Wave || got.Address != recs[i].Address {
			t.Errorf("record %d: wave %d %s, want wave %d %s",
				i, got.Wave, got.Address, recs[i].Wave, recs[i].Address)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("after last record: err = %v, want io.EOF", err)
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("Decode after EOF: err = %v, want io.EOF", err)
	}
}

func TestDecoderRejectsGarbageLine(t *testing.T) {
	dec := NewDecoder(strings.NewReader("{\"wave\":7}\nnot json\n"))
	if _, err := dec.Decode(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); err == nil || err == io.EOF {
		t.Errorf("garbage line: err = %v, want parse error", err)
	}
}

// TestAnonymizedCopyLeavesOriginal pins the release-processing rule the
// pipeline sinks rely on: anonymization operates on a deep copy.
func TestAnonymizedCopyLeavesOriginal(t *testing.T) {
	a := NewAnonymizer()
	rec := FromResult(sampleResult(), 7, time.Now().UTC(), 64601)
	rec.Cert = &CertRecord{Thumbprint: "abc123", SubjectOrg: "Bachmann"}
	cp := a.AnonymizedCopy(rec)
	if cp.Address == rec.Address {
		t.Errorf("copy not anonymized: %q", cp.Address)
	}
	if rec.Address != "100.64.0.5:4840" || rec.Cert.SubjectOrg != "Bachmann" {
		t.Errorf("original mutated: %q %q", rec.Address, rec.Cert.SubjectOrg)
	}
	if rec.Nodes[0].ValueSample == "" {
		t.Error("original node payload dropped")
	}
}

// TestDecoderTruncatedFinalLine pins the torn-tail contract: a stream
// cut off mid-record (dead worker, severed connection) ends with a
// typed ErrTruncatedStream, a final line that merely lost its newline
// still decodes, and mid-stream garbage stays a generic parse error.
func TestDecoderTruncatedFinalLine(t *testing.T) {
	recs := []*HostRecord{
		FromResult(sampleResult(), 6, time.Date(2020, 8, 23, 0, 0, 0, 0, time.UTC), 64601),
		FromResult(sampleResult(), 7, time.Date(2020, 8, 30, 0, 0, 0, 0, time.UTC), 64602),
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Cut mid way through the final record's line.
	dec := NewDecoder(bytes.NewReader(full[:len(full)-10]))
	if _, err := dec.Decode(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	_, err := dec.Decode()
	if err == nil {
		t.Fatal("truncated final line decoded successfully")
	}
	if !errors.Is(err, ErrTruncatedStream) {
		t.Errorf("truncated final line: err = %v, want ErrTruncatedStream", err)
	}

	// A final line that parses but lacks its newline decodes leniently.
	dec = NewDecoder(bytes.NewReader(bytes.TrimRight(full, "\n")))
	for i := range recs {
		got, derr := dec.Decode()
		if derr != nil {
			t.Fatalf("record %d of newline-less stream: %v", i, derr)
		}
		if got.Wave != recs[i].Wave {
			t.Errorf("record %d: wave %d, want %d", i, got.Wave, recs[i].Wave)
		}
	}
	if _, derr := dec.Decode(); derr != io.EOF {
		t.Errorf("after newline-less tail: err = %v, want io.EOF", derr)
	}

	// Mid-stream corruption is not truncation.
	dec = NewDecoder(strings.NewReader("{\"wave\":6,\n{\"wave\":7}\n"))
	_, err = dec.Decode()
	if err == nil || errors.Is(err, ErrTruncatedStream) {
		t.Errorf("mid-stream garbage: err = %v, want generic parse error", err)
	}

	// An empty stream is just EOF, not a truncation.
	dec = NewDecoder(strings.NewReader(""))
	if _, derr := dec.Decode(); derr != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", derr)
	}
}
