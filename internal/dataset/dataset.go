// Package dataset defines the measurement record format, the conversion
// from raw grabs, JSONL persistence, and the anonymization rules the
// paper applies before releasing data: IP addresses and autonomous
// systems become sequence numbers, certificate identity fields are
// blackened, and node payload data is dropped (Appendix A.1).
package dataset

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"repro/internal/scanner"
	"repro/internal/uacert"
	"repro/internal/uamsg"
)

// EndpointRecord is one advertised endpoint.
type EndpointRecord struct {
	URL        string   `json:"url"`
	Mode       string   `json:"mode"`
	PolicyURI  string   `json:"policy"`
	TokenTypes []string `json:"token_types"`
}

// CertRecord is the analyzed server certificate. The modulus stays in
// the released dataset (public keys are public); identity fields are
// blackened by the anonymizer.
type CertRecord struct {
	Thumbprint string    `json:"thumbprint"`
	Hash       string    `json:"hash"`
	Bits       int       `json:"bits"`
	NotBefore  time.Time `json:"not_before"`
	NotAfter   time.Time `json:"not_after"`
	SubjectCN  string    `json:"subject_cn"`
	SubjectOrg string    `json:"subject_org"`
	AppURI     string    `json:"app_uri"`
	SelfSigned bool      `json:"self_signed"`
	ModulusB64 string    `json:"modulus"`
}

// NodeRecord is one traversed node (payload dropped on release).
type NodeRecord struct {
	ID          string `json:"id"`
	Class       string `json:"class"`
	DisplayName string `json:"display_name"`
	Readable    bool   `json:"readable"`
	Writable    bool   `json:"writable"`
	Executable  bool   `json:"executable"`
	ValueSample string `json:"value_sample,omitempty"`
}

// HostRecord is one scanned host in one wave, the unit of analysis.
type HostRecord struct {
	Wave    int       `json:"wave"`
	Date    time.Time `json:"date"`
	Address string    `json:"address"`
	ASN     int       `json:"asn"`
	Via     string    `json:"via"`

	ReachedOPCUA bool   `json:"reached_opcua"`
	Error        string `json:"error,omitempty"`
	// FailureClass is the resilience taxonomy class (timeout / reset /
	// malformed / retries-exhausted) of a classified discovery failure;
	// empty for reachable hosts and for campaigns without the taxonomy.
	FailureClass string `json:"failure_class,omitempty"`

	AppURI          string `json:"app_uri,omitempty"`
	ProductURI      string `json:"product_uri,omitempty"`
	ApplicationType string `json:"application_type,omitempty"`
	SoftwareVersion string `json:"software_version,omitempty"`

	Endpoints []EndpointRecord `json:"endpoints,omitempty"`
	Cert      *CertRecord      `json:"cert,omitempty"`

	SecureChannelAttempted bool   `json:"sc_attempted"`
	SecureChannelOK        bool   `json:"sc_ok"`
	SecureChannelPolicy    string `json:"sc_policy,omitempty"`
	CertRejected           bool   `json:"cert_rejected"`

	AnonOffered   bool   `json:"anon_offered"`
	AnonAttempted bool   `json:"anon_attempted"`
	AnonOK        bool   `json:"anon_ok"`
	AnonError     string `json:"anon_error,omitempty"`

	Namespaces []string     `json:"namespaces,omitempty"`
	Nodes      []NodeRecord `json:"nodes,omitempty"`

	Variables  int `json:"variables"`
	Readable   int `json:"readable"`
	Writable   int `json:"writable"`
	Methods    int `json:"methods"`
	Executable int `json:"executable"`

	Bytes    int64         `json:"bytes"`
	Duration time.Duration `json:"duration"`
}

// IsDiscovery reports whether the host is a discovery server.
func (r *HostRecord) IsDiscovery() bool {
	return r.ApplicationType == "DiscoveryServer"
}

// Accessible reports whether the anonymous session succeeded.
func (r *HostRecord) Accessible() bool { return r.AnonOK }

// FromResult converts a raw grab into a record.
func FromResult(res *scanner.Result, wave int, date time.Time, asn int) *HostRecord {
	rec := &HostRecord{
		Wave:         wave,
		Date:         date,
		Address:      res.Address,
		ASN:          asn,
		Via:          string(res.Via),
		ReachedOPCUA: res.ReachedOPCUA,
		Error:        res.Error,
		FailureClass: res.FailureClass,

		AppURI:          res.ApplicationURI,
		ProductURI:      res.ProductURI,
		SoftwareVersion: res.SoftwareVersion,

		SecureChannelAttempted: res.SecureChannel.Attempted,
		SecureChannelOK:        res.SecureChannel.OK,
		SecureChannelPolicy:    res.SecureChannel.PolicyURI,
		CertRejected:           res.SecureChannel.CertRejected,

		AnonOffered:   res.Session.Offered,
		AnonAttempted: res.Session.Attempted,
		AnonOK:        res.Session.OK,
		AnonError:     res.Session.Error,

		Namespaces: res.Namespaces,

		Variables:  res.NodeStats.Variables,
		Readable:   res.NodeStats.Readable,
		Writable:   res.NodeStats.Writable,
		Methods:    res.NodeStats.Methods,
		Executable: res.NodeStats.Executable,

		Bytes:    res.BytesTransferred,
		Duration: res.Duration,
	}
	switch res.ApplicationType {
	case uamsg.ApplicationDiscoveryServer:
		rec.ApplicationType = "DiscoveryServer"
	case uamsg.ApplicationServer:
		rec.ApplicationType = "Server"
	case uamsg.ApplicationClientAndServer:
		rec.ApplicationType = "ClientAndServer"
	}
	for _, ep := range res.Endpoints {
		er := EndpointRecord{
			URL:       ep.URL,
			Mode:      ep.SecurityMode.String(),
			PolicyURI: ep.SecurityPolicyURI,
		}
		for _, tt := range ep.TokenTypes {
			er.TokenTypes = append(er.TokenTypes, tt.String())
		}
		rec.Endpoints = append(rec.Endpoints, er)
	}
	if len(res.ServerCertDER) > 0 {
		// Certificates repeat across hosts (reuse clusters) and across
		// waves; the memoized parse reuses one parsed instance per
		// thumbprint instead of re-reading the DER per record.
		if cert, err := uacert.ParseCached(res.ServerCertDER); err == nil {
			rec.Cert = &CertRecord{
				Thumbprint: cert.ThumbprintHex(),
				Hash:       cert.SignatureHash.String(),
				Bits:       cert.KeyBits(),
				NotBefore:  cert.NotBefore,
				NotAfter:   cert.NotAfter,
				SubjectCN:  cert.SubjectCN,
				SubjectOrg: cert.SubjectOrg,
				AppURI:     cert.ApplicationURI,
				SelfSigned: cert.SelfSigned(),
				ModulusB64: base64.StdEncoding.EncodeToString(cert.PublicKey.N.Bytes()),
			}
		}
	}
	for _, n := range res.Nodes {
		rec.Nodes = append(rec.Nodes, NodeRecord{
			ID:          n.ID,
			Class:       n.Class,
			DisplayName: n.DisplayName,
			Readable:    n.Readable,
			Writable:    n.Writable,
			Executable:  n.Executable,
			ValueSample: n.ValueSample,
		})
	}
	return rec
}

// Anonymizer rewrites identifying fields with stable sequence numbers.
type Anonymizer struct {
	ips  map[string]int
	asns map[int]int
}

// NewAnonymizer returns an empty anonymizer; mappings are stable across
// calls so longitudinal analyses still work on released data.
func NewAnonymizer() *Anonymizer {
	return &Anonymizer{ips: make(map[string]int), asns: make(map[int]int)}
}

func (a *Anonymizer) ipSeq(ip string) int {
	if n, ok := a.ips[ip]; ok {
		return n
	}
	n := len(a.ips) + 1
	a.ips[ip] = n
	return n
}

func (a *Anonymizer) asnSeq(asn int) int {
	if n, ok := a.asns[asn]; ok {
		return n
	}
	n := len(a.asns) + 1
	a.asns[asn] = n
	return n
}

// Anonymize rewrites one record in place: host addresses become
// "host-N:port", ASNs become sequence numbers, certificate identity
// fields are blackened, node names and payload samples are dropped.
func (a *Anonymizer) Anonymize(rec *HostRecord) {
	host, port := splitAddress(rec.Address)
	rec.Address = fmt.Sprintf("host-%d:%s", a.ipSeq(host), port)
	rec.ASN = a.asnSeq(rec.ASN)
	for i := range rec.Endpoints {
		// Endpoint URLs contain addresses (possibly of other hosts).
		u := rec.Endpoints[i].URL
		if h, p, ok := splitEndpointURL(u); ok {
			rec.Endpoints[i].URL = fmt.Sprintf("opc.tcp://host-%d:%s", a.ipSeq(h), p)
		}
	}
	if rec.Cert != nil {
		rec.Cert.SubjectCN = "[redacted]"
		rec.Cert.SubjectOrg = "[redacted]"
		rec.Cert.AppURI = "[redacted]"
	}
	for i := range rec.Nodes {
		rec.Nodes[i].ValueSample = ""
		rec.Nodes[i].DisplayName = ""
	}
}

func splitAddress(addr string) (host, port string) {
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return addr, "4840"
	}
	return ap.Addr().String(), fmt.Sprintf("%d", ap.Port())
}

func splitEndpointURL(u string) (host, port string, ok bool) {
	const prefix = "opc.tcp://"
	if len(u) <= len(prefix) || u[:len(prefix)] != prefix {
		return "", "", false
	}
	h, p := splitAddress(u[len(prefix):])
	return h, p, true
}

// Clone returns a deep copy of the record covering every field the
// anonymizer mutates (certificate, endpoints, nodes), so release
// processing never touches the analysis-grade original.
func (r *HostRecord) Clone() *HostRecord {
	cp := *r
	if r.Cert != nil {
		cc := *r.Cert
		cp.Cert = &cc
	}
	cp.Nodes = append([]NodeRecord(nil), r.Nodes...)
	cp.Endpoints = append([]EndpointRecord(nil), r.Endpoints...)
	return &cp
}

// AnonymizedCopy clones the record and applies the release rules to the
// copy; the original stays analysis-grade.
func (a *Anonymizer) AnonymizedCopy(rec *HostRecord) *HostRecord {
	cp := rec.Clone()
	a.Anonymize(cp)
	return cp
}

// Encoder streams records to NDJSON one at a time — the unit the record
// pipeline works in. Callers must Flush (once, at the end) for the
// buffered tail to reach the underlying writer.
type Encoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewEncoder returns an Encoder writing NDJSON to w.
func NewEncoder(w io.Writer) *Encoder {
	bw := bufio.NewWriter(w)
	return &Encoder{bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one record line.
func (e *Encoder) Encode(r *HostRecord) error {
	if err := e.enc.Encode(r); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// Flush drains the buffer to the underlying writer.
func (e *Encoder) Flush() error {
	if err := e.bw.Flush(); err != nil {
		return fmt.Errorf("dataset: flush: %w", err)
	}
	return nil
}

// Decoder streams records from NDJSON one at a time, so consumers (the
// shard merge, the incremental analyzer) never need a whole dataset in
// memory.
type Decoder struct {
	br   *bufio.Reader
	line int
}

// ErrTruncatedStream marks a stream whose final line ends mid-record:
// the writer was cut off (worker death, severed connection) before the
// line's terminating newline, and the fragment does not parse. Callers
// that tolerate torn tails — a coordinator discarding a dead worker's
// partial shard, a merge pass over salvaged files — detect it with
// errors.Is; a mid-stream parse failure stays a generic error because
// it means corruption, not truncation.
var ErrTruncatedStream = errors.New("dataset: stream truncated mid-record")

// maxDecodeLine bounds one NDJSON line (matching the encoder side and
// the fabric's frame bound) so a corrupt stream cannot balloon memory.
const maxDecodeLine = 16 << 20

// NewDecoder returns a Decoder reading NDJSON from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReaderSize(r, 1<<20)}
}

// Decode returns the next record, or io.EOF after the last one. A
// final line missing its newline is decoded leniently when it parses;
// when it does not, the error wraps ErrTruncatedStream.
func (d *Decoder) Decode() (*HostRecord, error) {
	for {
		raw, err := d.br.ReadBytes('\n')
		terminated := err == nil
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("dataset: read: %w", err)
		}
		line := bytes.TrimRight(raw, "\r\n")
		if len(line) == 0 {
			if !terminated {
				return nil, io.EOF
			}
			d.line++
			continue
		}
		d.line++
		if len(line) > maxDecodeLine {
			return nil, fmt.Errorf("dataset: line %d exceeds %d bytes", d.line, maxDecodeLine)
		}
		rec := new(HostRecord)
		if uerr := json.Unmarshal(line, rec); uerr != nil {
			if !terminated {
				return nil, fmt.Errorf("dataset: line %d: %w (%v)", d.line, ErrTruncatedStream, uerr)
			}
			return nil, fmt.Errorf("dataset: line %d: %w", d.line, uerr)
		}
		return rec, nil
	}
}

// Write streams records as JSON lines. It is a compatibility wrapper
// over the record-at-a-time Encoder, which pipeline code uses directly.
func Write(w io.Writer, recs []*HostRecord) error {
	enc := NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// Read loads JSONL records. It is a compatibility wrapper over the
// streaming Decoder, which pipeline code uses directly.
func Read(r io.Reader) ([]*HostRecord, error) {
	var out []*HostRecord
	dec := NewDecoder(r)
	for {
		rec, err := dec.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
