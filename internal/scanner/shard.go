package scanner

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/simnet"
)

// ShardPlan deterministically partitions a wave's permuted probe space
// [0, N) — N the universe size — into Shards contiguous index ranges.
// The plan is a pure function of (N, Shards): every process planning
// the same wave computes the same ranges, which is what lets shard i of
// N run on any machine and still merge byte-identically (DESIGN.md §5).
//
// Sharding the *permuted* index space rather than the address space
// keeps zmap's properties per shard: each shard's probes spread over
// the whole universe (no prefix sees a burst even from a single
// worker process), and shard sizes are equal to within one probe.
type ShardPlan struct {
	Universe uint64
	Shards   int
}

// PlanWaveShards builds the shard plan for a wave scanned over nw.
func PlanWaveShards(nw simnet.View, shards int) ShardPlan {
	if shards < 1 {
		shards = 1
	}
	return ShardPlan{Universe: nw.Universe().Size(), Shards: shards}
}

// Range returns shard i's permuted index range [lo, hi).
func (p ShardPlan) Range(i int) (lo, hi uint64) {
	n, s := p.Universe, uint64(p.Shards)
	return n * uint64(i) / s, n * uint64(i+1) / s
}

// RunWaveShard executes shard `shard` of a wave: the port scan
// restricted to the shard's slice of the permuted index space, then the
// full grab stage — including follow-up references, which may leave the
// shard's slice of the address space — seeded from the shard's own
// discoveries. A target referenced from two shards is grabbed by both;
// MergeWaveShards deduplicates, preferring the owning shard's port-scan
// grab, so the merged wave is the unsharded wave record for record.
//
// The cancellation contract matches RunWave's, per shard: a cancelled
// shard returns its partial wave (completed grabs, Partial set) with
// ctx's error, and a cancellation during the shard's port scan returns
// an empty partial wave. Partial shards merge cleanly — their finished
// grabs are kept, the merged wave is marked Partial (see
// MergeWaveShards) — so one cancelled worker never poisons the others.
func RunWaveShard(ctx context.Context, nw simnet.View, sc *Scanner, cfg WaveConfig, plan ShardPlan, shard int) (*Wave, error) {
	if shard < 0 || shard >= plan.Shards {
		return nil, fmt.Errorf("scanner: shard %d out of range [0, %d)", shard, plan.Shards)
	}
	lo, hi := plan.Range(shard)
	return runWaveRange(ctx, nw, sc, cfg, lo, hi)
}

// runWaveRange is the shared wave body: port scan over the permuted
// index range, then grabs with follow-ups. RunWave passes the full
// range; RunWaveShard passes its plan slice.
func runWaveRange(ctx context.Context, nw simnet.View, sc *Scanner, cfg WaveConfig, lo, hi uint64) (*Wave, error) {
	//studyvet:entropy-exempt — Wave.Duration is operational telemetry, excluded from shard-merge equivalence
	start := time.Now()
	if cfg.GrabWorkers <= 0 {
		cfg.GrabWorkers = 32
	}
	if cfg.MaxFollowDepth <= 0 {
		cfg.MaxFollowDepth = DefaultMaxFollowDepth
	}
	if cfg.PortScan.Metrics == nil {
		// The discovery stage reports under the same scope as the grab
		// stage unless the caller split them deliberately.
		cfg.PortScan.Metrics = cfg.Metrics
	}
	open, err := PortScanRange(ctx, nw, cfg.PortScan, lo, hi)
	if err != nil {
		return &Wave{Date: cfg.Date, OpenPorts: len(open), Partial: true,
			//studyvet:entropy-exempt — telemetry on the failure path
			Duration: time.Since(start)}, fmt.Errorf("scanner: port scan: %w", err)
	}
	wave := &Wave{Date: cfg.Date, OpenPorts: len(open)}

	port := cfg.PortScan.Port
	if port == 0 {
		port = 4840
	}
	targets := make([]Target, 0, len(open))
	for _, addr := range open {
		t := Target{
			Address: fmt.Sprintf("%s:%d", addr, port),
			Via:     ViaPortScan,
		}
		if cfg.Delta != nil && cfg.Delta.Skip(t.Address) {
			// Provably unchanged since the prior wave: the campaign
			// clones the prior record; no channel is opened. The port
			// scan above still swept the address, so OpenPorts is the
			// full wave's count.
			continue
		}
		targets = append(targets, t)
	}

	if cfg.Barrier {
		wave.Results = runBarrier(ctx, sc, targets, cfg)
	} else {
		wave.Results = runStreaming(ctx, sc, targets, cfg)
	}
	sortResults(wave.Results)
	err = ctx.Err()
	wave.Partial = err != nil
	wave.Duration = time.Since(start) //studyvet:entropy-exempt — telemetry
	return wave, err
}

// MergeWaveShards folds per-shard waves into the wave an unsharded run
// would have produced. Determinism rules (DESIGN.md §5):
//
//   - Open-port counts sum: the plan's ranges partition the permuted
//     index space, so every address was probed by exactly one shard.
//   - Results are deduplicated by target address. A port-scan grab
//     always wins over a follow-reference grab of the same address
//     (mirroring the unsharded dedup, where every port-scan target is
//     enqueued before any reference); among reference-only duplicates
//     the lowest shard index wins — the grabs are replays of the same
//     deterministic exchange, so the choice only fixes which copy's
//     wall-clock fields survive.
//   - The merged results get the standard deterministic sort, making
//     the merge independent of shard count.
//
// Cancellation: a nil shard entry is tolerated (a worker that never
// produced a wave); any missing or Partial shard marks the merged wave
// Partial, but completed grabs from every shard are still merged — a
// cancelled shard narrows the wave, it never poisons the merge.
func MergeWaveShards(shards ...*Wave) *Wave {
	merged := &Wave{}
	batches := make([][]*Result, 0, len(shards))
	for _, w := range shards {
		if w == nil {
			merged.Partial = true
			continue
		}
		merged.Date = w.Date
		merged.OpenPorts += w.OpenPorts
		merged.Partial = merged.Partial || w.Partial
		if w.Duration > merged.Duration {
			merged.Duration = w.Duration
		}
		batches = append(batches, w.Results)
	}
	merged.Results = MergeShardItems(batches,
		func(r *Result) string { return r.Address },
		func(r *Result) bool { return r.Via == ViaPortScan })
	return merged
}

// MergeShardItems implements the shard-merge determinism rules once,
// for any record representation — scanner Results here, dataset
// records in pipeline.MergeShardStreams; the byte-identity guarantee
// depends on both merges applying exactly the same rules. Items fold
// in shard order, deduplicated by address (a port-scan grab wins over
// a follow-reference grab of the same address, the earliest shard
// breaks reference-only ties), then sorted into the standard
// deterministic wave order: port-scan items first, then by address.
func MergeShardItems[T any](shards [][]T, address func(T) string, isPortScan func(T) bool) []T {
	var merged []T
	index := map[string]int{} // address → position in merged
	for _, items := range shards {
		for _, it := range items {
			at, seen := index[address(it)]
			switch {
			case !seen:
				index[address(it)] = len(merged)
				merged = append(merged, it)
			case isPortScan(it) && !isPortScan(merged[at]):
				merged[at] = it
			}
		}
	}
	SortShardItems(merged, address, isPortScan)
	return merged
}

// SortShardItems applies the standard deterministic wave order in
// place: port-scan items first, then by address. sortResults and the
// record-level merge both delegate here, so the order cannot drift
// between representations.
func SortShardItems[T any](items []T, address func(T) string, isPortScan func(T) bool) {
	slices.SortFunc(items, func(a, b T) int {
		if isPortScan(a) != isPortScan(b) {
			if isPortScan(a) {
				return -1
			}
			return 1
		}
		return strings.Compare(address(a), address(b))
	})
}
