package scanner

import (
	"context"
	"crypto/rsa"
	"errors"
	"slices"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/uaclient"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uarsa"
	"repro/internal/uastatus"
	"repro/internal/uatypes"
)

// Via records how a target entered the scan queue (Figure 2 legend).
type Via string

// Target discovery channels.
const (
	ViaPortScan  Via = "portscan"
	ViaReference Via = "follow-reference"
)

// Target is one host:port to grab.
type Target struct {
	Address string // "ip:port"
	Via     Via
}

// EndpointInfo is the security-relevant projection of one advertised
// endpoint description.
type EndpointInfo struct {
	URL               string
	SecurityMode      uamsg.MessageSecurityMode
	SecurityPolicyURI string
	TokenTypes        []uamsg.UserTokenType
}

// SecureChannelResult records the outcome of the secure-channel attempt
// with the scanner's self-signed certificate (§4).
type SecureChannelResult struct {
	Attempted    bool
	PolicyURI    string
	Mode         uamsg.MessageSecurityMode
	OK           bool
	CertRejected bool // server answered BadSecurityChecksFailed
	Error        string
}

// SessionResult records the anonymous-session attempt.
type SessionResult struct {
	Offered   bool // anonymous advertised in any token policy
	Attempted bool
	OK        bool
	Error     string
}

// NodeRecord is one traversed node's access profile.
type NodeRecord struct {
	ID          string
	Class       string
	DisplayName string
	Readable    bool
	Writable    bool
	Executable  bool
	ValueSample string // dropped by the dataset anonymizer
}

// NodeStats aggregates traversal access rights (Figure 7 input).
type NodeStats struct {
	Variables  int
	Readable   int
	Writable   int
	Methods    int
	Executable int
}

// Result is the complete grab of one target, the unit of the dataset.
type Result struct {
	Address string
	Via     Via
	Time    time.Time

	// ReachedOPCUA distinguishes real OPC UA servers from port-4840
	// noise (only 0.5‰ of open ports speak OPC UA per the paper).
	ReachedOPCUA bool
	Error        string
	// FailureClass is the taxonomy class of a discovery-stage failure
	// (timeout / reset / malformed / retries-exhausted), set only when
	// Resilience.Classify is on. Classified failures enter the dataset
	// as failure records; analyses key on ReachedOPCUA and ignore them.
	FailureClass string

	ApplicationURI  string
	ProductURI      string
	ApplicationType uamsg.ApplicationType
	SoftwareVersion string

	Endpoints     []EndpointInfo
	ServerCertDER []byte

	SecureChannel SecureChannelResult
	Session       SessionResult

	Namespaces []string
	Nodes      []NodeRecord
	NodeStats  NodeStats

	// FollowUp lists host:port addresses advertised by this server that
	// differ from the scanned address (endpoint URLs and discovery
	// references). The campaign scans them in the same wave (from
	// 2020-05-04 onward, per Figure 2).
	FollowUp []string
	// FollowDepth is the follow-up depth the target was grabbed at
	// (0 = port scan). Delta campaigns replay it so references carried
	// over from a skipped referrer re-enter at the depth the full scan
	// would have used, preserving the MaxFollowDepth cutoff.
	FollowDepth int

	BytesTransferred int64
	Duration         time.Duration
}

// Scanner grabs OPC UA metadata from targets.
type Scanner struct {
	// Dialer connects to targets (the simulated network or a real one).
	Dialer uaclient.Dialer
	// Key and CertDER are the scanner's self-signed client identity used
	// for secure-channel attempts.
	Key     *rsa.PrivateKey
	CertDER []byte
	// Timeout bounds each connection.
	Timeout time.Duration
	// Walk configures traversal politeness.
	Walk uaclient.WalkOptions
	// ApplicationURI identifies the scanner (the paper advertises contact
	// information here).
	ApplicationURI string
	// Crypto carries the campaign's memoized RSA engine and the
	// deterministic-handshake seed (nil scans with fresh randomness and
	// no memoization — the legacy behavior).
	Crypto *uarsa.Suite
	// Metrics receives handshake outcome/latency instruments scoped by
	// (policy, mode); nil disables them at zero cost. The campaign
	// runtime installs a per-wave scope.
	Metrics *telemetry.Registry
	// Trace, when non-nil, records one span-style exchange per grab
	// (open→handshake→session→close) under the deterministic ID derived
	// from (TraceSeed, TraceWave, address).
	Trace     *telemetry.Tracer
	TraceSeed int64
	TraceWave int
	// Resilience arms the grab against adversarial hosts: stage
	// deadlines, bounded seeded retries, the per-grab watchdog and the
	// failure taxonomy. The zero value reproduces the legacy
	// single-Timeout behavior exactly (see resilience.go).
	Resilience Resilience
}

// channelMetrics resolves the handshake instruments for one secure
// (policy, mode) pair: handshake_attempts/ok/failed/cert_rejected and
// the handshake_ns histogram, labeled policy=<abbrev>,mode=<mode>.
// Returns nil — the zero-cost disabled handle — when telemetry is off
// or the policy is insecure (insecure opens are discovery traffic, not
// handshakes the paper measures).
func (s *Scanner) channelMetrics(policy *uapolicy.Policy, mode uamsg.MessageSecurityMode) *telemetry.ChannelMetrics {
	if s.Metrics == nil || policy.Insecure {
		return nil
	}
	scope := s.Metrics.Scope("policy", policy.Abbrev).Scope("mode", mode.String())
	return &telemetry.ChannelMetrics{
		Attempts:     scope.Counter("handshake_attempts"),
		OK:           scope.Counter("handshake_ok"),
		Failed:       scope.Counter("handshake_failed"),
		CertRejected: scope.Counter("handshake_cert_rejected"),
		HandshakeNs:  scope.Histogram("handshake_ns"),
	}
}

// channelSecurity assembles the secure-channel parameters for one
// probe. The deterministic exchange derivation is keyed by (campaign
// seed, purpose, remote certificate, policy, mode) — deliberately not
// by wave or address, so an unchanged host replays the identical OPN
// exchange in every wave and the paper's 385-host certificate-reuse
// cluster collapses to a single exchange per wave.
func (s *Scanner) channelSecurity(purpose string, policy *uapolicy.Policy,
	mode uamsg.MessageSecurityMode, remoteDER []byte) uaclient.ChannelSecurity {
	sec := uaclient.ChannelSecurity{Policy: policy, Mode: mode}
	sec.Metrics = s.channelMetrics(policy, mode)
	if !policy.Insecure {
		sec.LocalKey = s.Key
		sec.LocalCertDER = s.CertDER
		sec.RemoteCertDER = remoteDER
	}
	if s.Crypto != nil {
		sec.Engine = s.Crypto.Engine
		if !policy.Insecure {
			sec.Derive = s.Crypto.Exchange([]byte(purpose), remoteDER,
				[]byte(policy.URI), []byte{byte(mode)})
		}
	}
	return sec
}

func (s *Scanner) opts() uaclient.Options {
	return uaclient.Options{
		Dialer:          s.Dialer,
		Timeout:         s.Timeout,
		ApplicationURI:  s.ApplicationURI,
		ApplicationName: "research scanner; see https://example.org/opcua-study",
		ConnectTimeout:  s.Resilience.ConnectTimeout,
		HelloTimeout:    s.Resilience.HelloTimeout,
		OpenTimeout:     s.Resilience.OpenTimeout,
		RequestTimeout:  s.Resilience.RequestTimeout,
	}
}

// Grab scans one target completely.
func (s *Scanner) Grab(ctx context.Context, target Target) *Result {
	//studyvet:entropy-exempt — Result.Time/Duration are operational telemetry; dataset normalization drops them before byte comparison
	start := time.Now()
	res := &Result{Address: target.Address, Via: target.Via, Time: start}
	//studyvet:entropy-exempt — see above
	defer func() { res.Duration = time.Since(start) }()

	// The exchange trace (nil when disabled; every span call below is
	// then one pointer check) records open→handshake→session→close under
	// the deterministic (seed, wave, address) ID.
	var ex *telemetry.Exchange
	if s.Trace != nil {
		ex = telemetry.NewExchange(s.TraceSeed, s.TraceWave, target.Address)
		defer func() { s.Trace.Record(ex) }()
	}

	url := "opc.tcp://" + target.Address

	opts := s.opts()
	if s.Resilience.GrabTimeout > 0 {
		opts.HardDeadline = start.Add(s.Resilience.GrabTimeout)
	}
	rt := s.newRetrier(target.Address)

	// Step 1: endpoint discovery over an insecure channel. The retry
	// budget (when armed) wraps the whole exchange: a reset or refused
	// dial is retried with an incremented context attempt number, which
	// is how the stateless connect-refuse flap sees persistence.
	openStart := ex.Start()
	var eps []uamsg.EndpointDescription
	err, exhausted := s.runExchange(ctx, rt, func(dctx context.Context) error {
		c, err := uaclient.Dial(dctx, url, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		if err := c.OpenInsecureChannel(); err != nil {
			return &discoveryError{err}
		}
		e, err := c.GetEndpoints()
		if err != nil {
			return &discoveryError{err}
		}
		eps = e
		return nil
	})
	if err != nil {
		res.Error = err.Error()
		s.recordFailure(res, err, exhausted)
		ex.EndSpan("open", openStart, res.Error)
		return res
	}
	res.ReachedOPCUA = true
	s.recordEndpoints(res, target.Address, eps)

	// Step 2: discovery references (FindServers) for follow-ups.
	s.followDiscovery(ctx, rt, url, opts, res)
	ex.EndSpan("open", openStart, "")

	// Step 3: secure-channel attempt with our self-signed certificate
	// whenever Sign or SignAndEncrypt is offered. The channel is kept
	// open in case step 4 can ride on it.
	policy, mode := strongestSecure(res.Endpoints)
	var secure *uaclient.Client
	if policy != nil {
		hsStart := ex.Start()
		secure = s.attemptSecureChannel(ctx, rt, url, opts, res, policy, mode)
		ex.EndSpan("handshake", hsStart, res.SecureChannel.Error)
	}

	// Step 4: anonymous session and address-space traversal. When the
	// session would use exactly the (policy, mode) the secure-channel
	// probe just established, reuse that open channel instead of dialing
	// again — one RSA handshake instead of two against servers that
	// enforce a single secure configuration.
	res.Session.Offered = anonymousOffered(res.Endpoints)
	if res.Session.Offered {
		sessStart := ex.Start()
		sessPolicy, sessMode := channelForSession(res.Endpoints)
		if secure != nil && sessPolicy == policy && sessMode == mode {
			s.runAnonymousSession(ctx, secure, res)
		} else {
			s.attemptAnonymous(ctx, rt, url, opts, res, sessPolicy, sessMode)
		}
		ex.EndSpan("session", sessStart, res.Session.Error)
	}
	closeStart := ex.Start()
	if secure != nil {
		r, w := secure.BytesTransferred()
		res.BytesTransferred += r + w
		_ = secure.Close()
	}
	ex.EndSpan("close", closeStart, "")
	return res
}

func (s *Scanner) recordEndpoints(res *Result, scanned string, eps []uamsg.EndpointDescription) {
	seenFollow := map[string]bool{}
	for _, ep := range eps {
		info := EndpointInfo{
			URL:               ep.EndpointURL,
			SecurityMode:      ep.SecurityMode,
			SecurityPolicyURI: ep.SecurityPolicyURI,
		}
		for _, tp := range ep.UserIdentityTokens {
			info.TokenTypes = append(info.TokenTypes, tp.TokenType)
		}
		res.Endpoints = append(res.Endpoints, info)
		if len(ep.ServerCertificate) > 0 && res.ServerCertDER == nil {
			res.ServerCertDER = ep.ServerCertificate
		}
		if res.ApplicationURI == "" {
			res.ApplicationURI = ep.Server.ApplicationURI
			res.ProductURI = ep.Server.ProductURI
			res.ApplicationType = ep.Server.ApplicationType
		}
		if addr, err := uaclient.EndpointAddress(ep.EndpointURL); err == nil &&
			addr != scanned && !seenFollow[addr] {
			seenFollow[addr] = true
			res.FollowUp = append(res.FollowUp, addr)
		}
	}
}

func (s *Scanner) followDiscovery(ctx context.Context, rt *retrier, url string, opts uaclient.Options, res *Result) {
	c, err := s.dialRetry(ctx, rt, url, opts)
	if err != nil {
		return
	}
	defer c.Close()
	if err := c.OpenInsecureChannel(); err != nil {
		return
	}
	servers, err := c.FindServers()
	if err != nil {
		return
	}
	scanned, _ := uaclient.EndpointAddress(url)
	seen := map[string]bool{}
	for _, f := range res.FollowUp {
		seen[f] = true
	}
	for _, srv := range servers {
		for _, durl := range srv.DiscoveryURLs {
			if addr, err := uaclient.EndpointAddress(durl); err == nil &&
				addr != scanned && !seen[addr] {
				seen[addr] = true
				res.FollowUp = append(res.FollowUp, addr)
			}
		}
	}
	r, w := c.BytesTransferred()
	res.BytesTransferred += r + w
}

// strongestSecure picks the highest-ranked secure (policy, mode) pair.
func strongestSecure(eps []EndpointInfo) (*uapolicy.Policy, uamsg.MessageSecurityMode) {
	var best *uapolicy.Policy
	var bestMode uamsg.MessageSecurityMode
	for _, ep := range eps {
		if ep.SecurityMode != uamsg.SecurityModeSign &&
			ep.SecurityMode != uamsg.SecurityModeSignAndEncrypt {
			continue
		}
		p, ok := uapolicy.Lookup(ep.SecurityPolicyURI)
		if !ok || p.Insecure {
			continue
		}
		better := best == nil || p.Rank > best.Rank ||
			(p.Rank == best.Rank && ep.SecurityMode > bestMode)
		if better {
			best, bestMode = p, ep.SecurityMode
		}
	}
	return best, bestMode
}

func anonymousOffered(eps []EndpointInfo) bool {
	for _, ep := range eps {
		for _, tt := range ep.TokenTypes {
			if tt == uamsg.UserTokenAnonymous {
				return true
			}
		}
	}
	return false
}

// attemptSecureChannel probes the strongest advertised secure (policy,
// mode). On success it returns the still-open client so the caller can
// reuse the channel for the session probe; the caller owns closing it
// and accounting its bytes.
func (s *Scanner) attemptSecureChannel(ctx context.Context, rt *retrier, url string, opts uaclient.Options,
	res *Result, policy *uapolicy.Policy, mode uamsg.MessageSecurityMode) *uaclient.Client {
	res.SecureChannel = SecureChannelResult{
		Attempted: true,
		PolicyURI: policy.URI,
		Mode:      mode,
	}
	c, err := s.dialRetry(ctx, rt, url, opts)
	if err != nil {
		res.SecureChannel.Error = err.Error()
		return nil
	}
	err = c.OpenChannel(s.channelSecurity("secure-probe", policy, mode, res.ServerCertDER))
	if err != nil {
		res.SecureChannel.Error = err.Error()
		var ce uamsg.ConnError
		if errors.As(err, &ce) && ce.Code == uastatus.BadSecurityChecksFailed {
			res.SecureChannel.CertRejected = true
			if cm := s.channelMetrics(policy, mode); cm != nil {
				cm.CertRejected.Inc()
			}
		}
		r, w := c.BytesTransferred()
		res.BytesTransferred += r + w
		_ = c.Close()
		return nil
	}
	res.SecureChannel.OK = true
	return c
}

// channelForSession picks the channel security for the anonymous session:
// None if offered, otherwise the weakest secure endpoint (the scanner
// minimizes load on constrained devices).
func channelForSession(eps []EndpointInfo) (*uapolicy.Policy, uamsg.MessageSecurityMode) {
	var weakest *uapolicy.Policy
	var weakestMode uamsg.MessageSecurityMode
	for _, ep := range eps {
		p, ok := uapolicy.Lookup(ep.SecurityPolicyURI)
		if !ok {
			continue
		}
		if ep.SecurityMode == uamsg.SecurityModeNone {
			return uapolicy.None, uamsg.SecurityModeNone
		}
		if weakest == nil || p.Rank < weakest.Rank {
			weakest, weakestMode = p, ep.SecurityMode
		}
	}
	if weakest == nil {
		return uapolicy.None, uamsg.SecurityModeNone
	}
	return weakest, weakestMode
}

// attemptAnonymous dials a fresh connection for the session probe (used
// when the secure-channel probe's channel parameters don't match).
//
// Byte accounting is uniform since PR 4: every dialed connection's
// traffic is counted whether the probe on it succeeded or not (the old
// code dropped failed-probe traffic on some paths but not others).
// Result.Bytes feeds no analysis — the equivalence gates normalize it —
// so only consistency matters.
func (s *Scanner) attemptAnonymous(ctx context.Context, rt *retrier, url string, opts uaclient.Options,
	res *Result, policy *uapolicy.Policy, mode uamsg.MessageSecurityMode) {
	res.Session.Attempted = true
	c, err := s.dialRetry(ctx, rt, url, opts)
	if err != nil {
		res.Session.Error = err.Error()
		return
	}
	defer func() {
		r, w := c.BytesTransferred()
		res.BytesTransferred += r + w
		_ = c.Close()
	}()
	if err := c.OpenChannel(s.channelSecurity("session-probe", policy, mode, res.ServerCertDER)); err != nil {
		res.Session.Error = err.Error()
		return
	}
	s.runAnonymousSession(ctx, c, res)
}

// runAnonymousSession performs the anonymous session and traversal on
// an already-open channel. It does not close the client or account its
// bytes — the caller owns the connection (it may be the reused
// secure-channel probe connection).
func (s *Scanner) runAnonymousSession(ctx context.Context, c *uaclient.Client, res *Result) {
	res.Session.Attempted = true
	if err := c.CreateSession(uaclient.AnonymousIdentity()); err != nil {
		res.Session.Error = err.Error()
		return
	}
	res.Session.OK = true

	if ver, err := c.SoftwareVersion(); err == nil {
		res.SoftwareVersion = ver
	}
	walk, err := c.Walk(ctx, s.Walk)
	if err == nil {
		res.Namespaces = walk.Namespaces
		for _, n := range walk.Nodes {
			rec := NodeRecord{
				ID:          n.ID.String(),
				Class:       n.Class.String(),
				DisplayName: n.DisplayName,
			}
			switch n.Class {
			case uamsg.NodeClassVariable:
				rec.Readable = n.UserAccessLevel.CanRead()
				rec.Writable = n.UserAccessLevel.CanWrite()
				res.NodeStats.Variables++
				if rec.Readable {
					res.NodeStats.Readable++
				}
				if rec.Writable {
					res.NodeStats.Writable++
				}
			case uamsg.NodeClassMethod:
				rec.Executable = n.UserExecutable
				res.NodeStats.Methods++
				if rec.Executable {
					res.NodeStats.Executable++
				}
			}
			if n.Value != nil {
				rec.ValueSample = sampleValue(*n.Value)
			}
			res.Nodes = append(res.Nodes, rec)
		}
	}
	_ = c.CloseSession()
}

func sampleValue(v uatypes.Variant) string {
	s := v.String()
	if len(s) > 64 {
		s = s[:64]
	}
	return s
}

// SupportsAnonymous reports whether the result advertises anonymous
// authentication (Figure 6).
func (r *Result) SupportsAnonymous() bool { return r.Session.Offered }

// PolicySet returns the distinct advertised policy URIs, sorted.
func (r *Result) PolicySet() []string {
	set := map[string]bool{}
	for _, ep := range r.Endpoints {
		set[ep.SecurityPolicyURI] = true
	}
	out := make([]string, 0, len(set))
	for uri := range set {
		out = append(out, uri)
	}
	slices.Sort(out)
	return out
}

// HostKey normalizes the address for cross-wave identity ("ip:port").
func (r *Result) HostKey() string { return strings.TrimSpace(r.Address) }
