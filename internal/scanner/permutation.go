// Package scanner implements the measurement instrument of the study:
// a zmap-style randomized port scan over the simulated IPv4 universe, a
// zgrab2-style application-layer grab module for OPC UA, and the weekly
// campaign orchestration with follow-up targets (endpoints on other
// hosts/ports, discovery-server references).
package scanner

import (
	"math/bits"

	"repro/internal/simnet"
)

// fnvMix folds the eight little-endian bytes of v into an FNV-1a state
// (parameters shared with the noise model via simnet; the Feistel round
// below inlines the hash so the per-probe path performs zero heap
// allocations, and TestPermutationRoundMatchesFNV pins the arithmetic
// against the stdlib implementation byte for byte).
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * simnet.FNVPrime64
		v >>= 8
	}
	return h
}

// Permutation is a bijection over [0, N) used to visit scan targets in a
// pseudorandom order, like zmap's cyclic-group iteration: probes spread
// across the whole address space so no network sees a burst
// (Appendix A.2 "rely on zmap's address randomization").
//
// The implementation is a 4-round Feistel network over the smallest even
// bit-width covering N, with cycle-walking to stay inside [0, N).
type Permutation struct {
	n        uint64
	halfBits uint
	halfMask uint64
	seed     uint64
}

// NewPermutation builds a permutation of [0, n) from a seed.
func NewPermutation(n uint64, seed uint64) *Permutation {
	if n == 0 {
		return &Permutation{n: 0}
	}
	width := uint(bits.Len64(n - 1))
	if width == 0 {
		width = 1
	}
	if width%2 == 1 {
		width++
	}
	return &Permutation{
		n:        n,
		halfBits: width / 2,
		halfMask: (1 << (width / 2)) - 1,
		seed:     seed,
	}
}

// round hashes (half, seed, round) with an inlined FNV-1a over the same
// 17 bytes the previous hash/fnv-based implementation fed the hasher:
// 8 LE bytes of half, 8 LE bytes of the seed, then the round byte. The
// output is bit-identical, so permutations are stable across the
// rewrite, but a round no longer allocates a hasher.
func (p *Permutation) round(half uint64, round uint) uint64 {
	h := fnvMix(fnvMix(uint64(simnet.FNVOffset64), half), p.seed)
	h = (h ^ uint64(byte(round))) * simnet.FNVPrime64
	return h & p.halfMask
}

//studyvet:hotpath — At's inner loop body
func (p *Permutation) feistel(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for round := uint(0); round < 4; round++ {
		l, r = r, l^p.round(r, round)
	}
	return l<<p.halfBits | r
}

// At maps index i to its permuted position. i must be < N. At performs
// no heap allocations (the port-scan probe path relies on this;
// TestPermutationAtAllocFree gates it).
//
//studyvet:hotpath — called once per probed address (4B calls in a full scan)
func (p *Permutation) At(i uint64) uint64 {
	if p.n == 0 {
		return 0
	}
	x := p.feistel(i)
	// Cycle-walk until the value lands inside [0, n). Termination is
	// guaranteed because feistel is a bijection on the covering domain.
	for x >= p.n {
		x = p.feistel(x)
	}
	return x
}

// Size returns N.
func (p *Permutation) Size() uint64 { return p.n }
