package scanner

import (
	"context"
	"sync"
	"time"

	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// DefaultMaxFollowDepth is the follow-reference depth bound a wave
// uses when WaveConfig.MaxFollowDepth is zero. Delta campaigns replay
// the same bound when deciding which carried-over references a skipped
// referrer still surfaces.
const DefaultMaxFollowDepth = 2

// WaveConfig controls one weekly measurement.
type WaveConfig struct {
	// Date labels the wave (the paper scans 2020-02-09 … 2020-08-30).
	Date time.Time
	// FollowReferences enables scanning host/port combinations announced
	// by other servers; the paper added this on 2020-05-04.
	FollowReferences bool
	// MaxFollowDepth bounds transitive reference following
	// (0 = DefaultMaxFollowDepth).
	MaxFollowDepth int
	// GrabWorkers parallelizes the application-layer stage.
	GrabWorkers int
	// QueueSize caps the grab work queue's channel buffer; zero derives
	// a default from GrabWorkers. The pending frontier itself is
	// unbounded (the dispatcher holds overflow), so workers never block
	// when they discover follow-up references.
	QueueSize int
	// Barrier selects the legacy depth-synchronized scheduling: every
	// target of follow-up depth d completes before any target of depth
	// d+1 starts. It exists as the baseline for BenchmarkCampaignWave;
	// the streaming scheduler is strictly faster.
	Barrier  bool
	PortScan PortScanConfig
	// Metrics receives the grab-stage instruments (grab_targets,
	// grab_done, grab_opcua, grab_noise, grab_followups,
	// grab_queue_depth high-water, grab_queue_wait_ns histogram); nil
	// disables telemetry at zero cost. The campaign runtime passes a
	// per-wave scope; it is also copied into PortScan.Metrics by callers
	// that want the discovery stage counted under the same scope.
	Metrics *telemetry.Registry
	// Delta, when non-nil, narrows the wave to its fingerprint misses:
	// targets the campaign proved unchanged since the prior wave are
	// dropped (their prior records are cloned outside the scanner) and
	// references carried over from skipped referrers are injected. The
	// port scan itself still sweeps the full range, so OpenPorts stays
	// the full wave's count.
	Delta *WaveDelta
}

// WaveDelta is a delta campaign's grab-narrowing instruction for one
// wave (see internal/wavediff and DESIGN.md §10). Skip reports whether
// an address's record is provably unchanged since the prior wave; such
// addresses are removed from the port-scan seed targets and never
// enqueued as follow-up references. Inject seeds the references a
// skipped referrer was observed to surface in its last real grab —
// the wave must still grab the ones whose own fingerprint missed.
type WaveDelta struct {
	Skip   func(addr string) bool
	Inject []InjectTarget
}

// InjectTarget is one carried-over reference target. Depth is the
// follow-up depth the reference entered the prior scan at (referrer
// depth + 1), replayed so the MaxFollowDepth cutoff behaves exactly as
// in a full scan.
type InjectTarget struct {
	Addr  string
	Depth int
}

// Wave is the outcome of one measurement run.
type Wave struct {
	Date time.Time
	// Results holds one entry per grabbed target, sorted deterministically
	// (port-scan targets before follow-references, then by address) so
	// equal campaigns produce byte-identical datasets regardless of
	// worker scheduling.
	Results []*Result
	// OpenPorts is the number of addresses with TCP 4840 open (most are
	// not OPC UA).
	OpenPorts int
	// Partial is true when the wave was cut short by context
	// cancellation; Results then holds only the grabs that completed.
	Partial  bool
	Duration time.Duration
}

// RunWave executes a full measurement: port scan, grab, follow-ups.
//
// Targets flow through a single work queue consumed by a fixed pool of
// cfg.GrabWorkers goroutines; follow-up references discovered mid-grab
// are enqueued immediately (deduplicated against everything already
// queued) instead of waiting for a whole depth to drain.
//
// The wave only reads nw — any simnet.View works, including the
// immutable worldview snapshots the campaign materializes per wave, so
// multiple RunWave calls against different views may run concurrently.
// The scanner's Dialer should point at the same view so grabs observe
// the population the port scan discovered.
//
// Cancellation contract: if ctx is cancelled mid-wave, RunWave returns
// the partial wave — every grab that completed before cancellation,
// with Wave.Partial set — together with ctx's error. A cancellation
// that lands during the port-scan stage returns an empty partial wave
// (no grabs ran), so callers can always tell an interrupted wave from
// one never started; the wave is never nil alongside a non-nil error.
func RunWave(ctx context.Context, nw simnet.View, sc *Scanner, cfg WaveConfig) (*Wave, error) {
	return runWaveRange(ctx, nw, sc, cfg, 0, nw.Universe().Size())
}

// grabJob is one queued target with its follow-up depth (0 = port scan)
// and the telemetry clock at enqueue time (0 when telemetry is off).
type grabJob struct {
	target     Target
	depth      int
	enqueuedNs int64
}

// grabMetrics bundles the grab-stage instruments, resolved once per
// wave so the schedulers never touch the registry mid-flight. The zero
// value (all-nil instruments, the product of a nil registry) is the
// disabled state: every observation is one pointer check.
type grabMetrics struct {
	targets   *telemetry.Counter
	done      *telemetry.Counter
	opcua     *telemetry.Counter
	noise     *telemetry.Counter
	followups *telemetry.Counter

	queueDepth *telemetry.MaxGauge
	queueWait  *telemetry.Histogram
}

func newGrabMetrics(reg *telemetry.Registry) grabMetrics {
	return grabMetrics{
		targets:    reg.Counter("grab_targets"),
		done:       reg.Counter("grab_done"),
		opcua:      reg.Counter("grab_opcua"),
		noise:      reg.Counter("grab_noise"),
		followups:  reg.Counter("grab_followups"),
		queueDepth: reg.MaxGauge("grab_queue_depth"),
		queueWait:  reg.Histogram("grab_queue_wait_ns"),
	}
}

// observe classifies one finished grab: real OPC UA server vs port-4840
// noise (the paper's 0.5‰ split).
func (m grabMetrics) observe(r *Result) {
	m.done.Inc()
	if r.ReachedOPCUA {
		m.opcua.Inc()
	} else {
		m.noise.Inc()
	}
}

// grabOutcome is one finished grab plus the depth it ran at, so the
// dispatcher can decide whether its follow-ups are still in range.
type grabOutcome struct {
	res   *Result
	depth int
}

// runStreaming is the streaming scheduler: a fixed worker pool consumes
// a single queue, and the dispatcher feeds follow-up references back in
// as soon as the grab that discovered them completes. No depth barrier:
// a depth-2 target can run while depth-0 stragglers are still in flight.
func runStreaming(ctx context.Context, sc *Scanner, initial []Target, cfg WaveConfig) []*Result {
	queueSize := cfg.QueueSize
	if queueSize <= 0 {
		queueSize = 2 * cfg.GrabWorkers
	}
	queue := make(chan grabJob, queueSize)
	outcomes := make(chan grabOutcome, cfg.GrabWorkers)
	gm := newGrabMetrics(cfg.Metrics)

	var wg sync.WaitGroup
	for w := 0; w < cfg.GrabWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				gm.queueWait.ObserveSince(j.enqueuedNs)
				res := sc.Grab(ctx, j.target)
				res.FollowDepth = j.depth
				outcomes <- grabOutcome{res: res, depth: j.depth}
			}
		}()
	}

	seen := make(map[string]bool, len(initial))
	pending := make([]grabJob, 0, len(initial))
	for _, t := range initial {
		if seen[t.Address] {
			continue
		}
		seen[t.Address] = true
		pending = append(pending, grabJob{target: t, enqueuedNs: gm.queueWait.StartNs()})
	}
	if cfg.Delta != nil {
		// Carried-over references from skipped referrers enter behind
		// the port-scan seeds, mirroring the full scan's port-scan-first
		// enqueue order (and its dedup: a port-scanned address is never
		// re-grabbed via a reference).
		for _, in := range cfg.Delta.Inject {
			if seen[in.Addr] {
				continue
			}
			seen[in.Addr] = true
			pending = append(pending, grabJob{
				target:     Target{Address: in.Addr, Via: ViaReference},
				depth:      in.Depth,
				enqueuedNs: gm.queueWait.StartNs(),
			})
			gm.followups.Inc()
		}
	}
	gm.targets.Add(uint64(len(pending)))

	// The dispatcher selects on {enqueue next pending, receive outcome,
	// cancellation} simultaneously, so a full queue can never deadlock
	// against workers blocked on the outcome channel.
	var results []*Result
	inflight := 0
	done := ctx.Done()
	cancelled := false
	for inflight > 0 || len(pending) > 0 {
		var dispatch chan grabJob
		var next grabJob
		if len(pending) > 0 {
			dispatch = queue
			next = pending[0]
		}
		select {
		case dispatch <- next:
			pending = pending[1:]
			inflight++
			gm.queueDepth.Record(int64(len(pending) + inflight))
		case out := <-outcomes:
			inflight--
			results = append(results, out.res)
			gm.observe(out.res)
			// After cancellation, don't start new targets — only drain
			// what is in flight.
			if !cancelled && cfg.FollowReferences && out.depth < cfg.MaxFollowDepth {
				for _, addr := range out.res.FollowUp {
					if seen[addr] {
						continue
					}
					if cfg.Delta != nil && cfg.Delta.Skip(addr) {
						// Unchanged since the prior wave: the campaign
						// clones its prior record instead of grabbing.
						continue
					}
					seen[addr] = true
					pending = append(pending, grabJob{
						target:     Target{Address: addr, Via: ViaReference},
						depth:      out.depth + 1,
						enqueuedNs: gm.queueWait.StartNs(),
					})
					gm.targets.Inc()
					gm.followups.Inc()
				}
			}
		case <-done:
			// Stop dispatching; in-flight grabs observe ctx themselves
			// and finish quickly. Nil the channel so the loop drains
			// outcomes instead of spinning on Done.
			done = nil
			cancelled = true
			pending = nil
		}
	}
	close(queue)
	wg.Wait()
	return results
}

// runBarrier is the legacy per-depth scheduler kept as a benchmark
// baseline: all targets of one follow-up depth complete before the next
// depth starts. Unlike the original seed implementation it still uses a
// fixed worker pool rather than one goroutine per target.
func runBarrier(ctx context.Context, sc *Scanner, targets []Target, cfg WaveConfig) []*Result {
	gm := newGrabMetrics(cfg.Metrics)
	gm.targets.Add(uint64(len(targets)))
	seen := make(map[string]bool, len(targets))
	for _, t := range targets {
		seen[t.Address] = true
	}
	// Delta injection under the barrier discipline: carried-over
	// references wait for their recorded depth's batch, exactly where
	// the full scan would have grabbed them.
	inject := map[int][]Target{}
	if cfg.Delta != nil {
		for _, in := range cfg.Delta.Inject {
			if seen[in.Addr] {
				continue
			}
			seen[in.Addr] = true
			inject[in.Depth] = append(inject[in.Depth], Target{Address: in.Addr, Via: ViaReference})
			gm.targets.Inc()
			gm.followups.Inc()
		}
	}
	var all []*Result
	for depth := 0; (len(targets) > 0 || len(inject) > 0) && depth <= cfg.MaxFollowDepth; depth++ {
		if ctx.Err() != nil {
			break
		}
		if extra := inject[depth]; len(extra) > 0 {
			targets = append(targets, extra...)
			delete(inject, depth)
		}
		if len(targets) == 0 {
			continue
		}
		results := grabBatch(ctx, sc, targets, cfg.GrabWorkers)
		for _, res := range results {
			res.FollowDepth = depth
		}
		all = append(all, results...)
		for _, res := range results {
			gm.observe(res)
		}
		targets = nil
		if !cfg.FollowReferences {
			break
		}
		for _, res := range results {
			for _, addr := range res.FollowUp {
				if seen[addr] {
					continue
				}
				if cfg.Delta != nil && cfg.Delta.Skip(addr) {
					continue
				}
				seen[addr] = true
				targets = append(targets, Target{Address: addr, Via: ViaReference})
				gm.targets.Inc()
				gm.followups.Inc()
			}
		}
	}
	return all
}

// grabBatch grabs one batch of targets on a fixed pool of workers.
func grabBatch(ctx context.Context, sc *Scanner, targets []Target, workers int) []*Result {
	if workers > len(targets) {
		workers = len(targets)
	}
	results := make([]*Result, len(targets))
	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				results[i] = sc.Grab(ctx, targets[i])
			}
		}()
	}
	for i := range targets {
		indexes <- i
	}
	close(indexes)
	wg.Wait()
	return results
}

// sortResults orders a wave deterministically: port-scan discoveries
// first (mirroring the pre-streaming depth order), then by address —
// the shared SortShardItems order, which shard merges also apply.
func sortResults(results []*Result) {
	SortShardItems(results,
		func(r *Result) string { return r.Address },
		func(r *Result) bool { return r.Via == ViaPortScan })
}

// OPCUAResults filters a wave down to hosts that actually speak OPC UA.
func (w *Wave) OPCUAResults() []*Result {
	var out []*Result
	for _, r := range w.Results {
		if r.ReachedOPCUA {
			out = append(out, r)
		}
	}
	return out
}

// DatasetResults filters a wave down to the results that become dataset
// records: hosts that speak OPC UA plus — under the failure taxonomy —
// classified failures. Without Resilience.Classify no result carries a
// FailureClass, so this is exactly OPCUAResults and chaos-off datasets
// stay byte-identical to the pre-taxonomy baseline.
func (w *Wave) DatasetResults() []*Result {
	var out []*Result
	for _, r := range w.Results {
		if r.ReachedOPCUA || r.FailureClass != "" {
			out = append(out, r)
		}
	}
	return out
}
