package scanner

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/simnet"
)

// WaveConfig controls one weekly measurement.
type WaveConfig struct {
	// Date labels the wave (the paper scans 2020-02-09 … 2020-08-30).
	Date time.Time
	// FollowReferences enables scanning host/port combinations announced
	// by other servers; the paper added this on 2020-05-04.
	FollowReferences bool
	// MaxFollowDepth bounds transitive reference following.
	MaxFollowDepth int
	// GrabWorkers parallelizes the application-layer stage.
	GrabWorkers int
	PortScan    PortScanConfig
}

// Wave is the outcome of one measurement run.
type Wave struct {
	Date    time.Time
	Results []*Result
	// OpenPorts is the number of addresses with TCP 4840 open (most are
	// not OPC UA).
	OpenPorts int
	Duration  time.Duration
}

// RunWave executes a full measurement: port scan, grab, follow-ups.
func RunWave(ctx context.Context, nw *simnet.Network, sc *Scanner, cfg WaveConfig) (*Wave, error) {
	start := time.Now()
	if cfg.GrabWorkers <= 0 {
		cfg.GrabWorkers = 32
	}
	if cfg.MaxFollowDepth <= 0 {
		cfg.MaxFollowDepth = 2
	}
	open, err := PortScan(ctx, nw, cfg.PortScan)
	if err != nil {
		return nil, fmt.Errorf("scanner: port scan: %w", err)
	}
	wave := &Wave{Date: cfg.Date, OpenPorts: len(open)}

	port := cfg.PortScan.Port
	if port == 0 {
		port = 4840
	}
	targets := make([]Target, 0, len(open))
	for _, addr := range open {
		targets = append(targets, Target{
			Address: fmt.Sprintf("%s:%d", addr, port),
			Via:     ViaPortScan,
		})
	}

	seen := make(map[string]bool, len(targets))
	for _, t := range targets {
		seen[t.Address] = true
	}

	for depth := 0; len(targets) > 0 && depth <= cfg.MaxFollowDepth; depth++ {
		results := grabAll(ctx, sc, targets, cfg.GrabWorkers)
		wave.Results = append(wave.Results, results...)
		targets = nil
		if !cfg.FollowReferences {
			break
		}
		for _, res := range results {
			for _, addr := range res.FollowUp {
				if seen[addr] {
					continue
				}
				seen[addr] = true
				targets = append(targets, Target{Address: addr, Via: ViaReference})
			}
		}
	}
	wave.Duration = time.Since(start)
	return wave, ctx.Err()
}

func grabAll(ctx context.Context, sc *Scanner, targets []Target, workers int) []*Result {
	results := make([]*Result, len(targets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = sc.Grab(ctx, t)
		}(i, t)
	}
	wg.Wait()
	return results
}

// OPCUAResults filters a wave down to hosts that actually speak OPC UA.
func (w *Wave) OPCUAResults() []*Result {
	var out []*Result
	for _, r := range w.Results {
		if r.ReachedOPCUA {
			out = append(out, r)
		}
	}
	return out
}
