package scanner

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"repro/internal/simnet"
)

// PortScanConfig tunes the zmap-style discovery stage.
type PortScanConfig struct {
	Port int
	// Rate limits probes per second; zero means unlimited (the simulated
	// network has no operators to bother, but the limiter is exercised
	// in tests because the real study depends on it).
	Rate    int
	Workers int
	Seed    uint64
}

// PortScan probes every address of the view's universe on the given
// port in permuted order and returns the responsive addresses. The
// view may be the live mutable Network or an immutable per-wave
// worldview snapshot; either way PortScan only reads.
func PortScan(ctx context.Context, nw simnet.View, cfg PortScanConfig) ([]netip.Addr, error) {
	if cfg.Port == 0 {
		cfg.Port = 4840
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	u := nw.Universe()
	perm := NewPermutation(u.Size(), cfg.Seed)

	var limiter *time.Ticker
	if cfg.Rate > 0 {
		limiter = time.NewTicker(time.Second / time.Duration(cfg.Rate))
		defer limiter.Stop()
	}

	indexes := make(chan uint64, cfg.Workers*2)
	results := make(chan netip.Addr, cfg.Workers*2)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				addr, err := u.AddrAt(perm.At(i))
				if err != nil {
					continue
				}
				if nw.OpenPort(addr, cfg.Port) {
					results <- addr
				}
			}
		}()
	}
	go func() {
		defer close(indexes)
		for i := uint64(0); i < u.Size(); i++ {
			if limiter != nil {
				select {
				case <-ctx.Done():
					return
				case <-limiter.C:
				}
			} else if ctx.Err() != nil {
				return
			}
			indexes <- i
		}
	}()
	done := make(chan struct{})
	var open []netip.Addr
	go func() {
		defer close(done)
		for addr := range results {
			open = append(open, addr)
		}
	}()
	wg.Wait()
	close(results)
	<-done
	return open, ctx.Err()
}
