package scanner

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// PortScanConfig tunes the zmap-style discovery stage.
type PortScanConfig struct {
	Port int
	// Rate limits probes per second; zero means unlimited (the simulated
	// network has no operators to bother, but the limiter is exercised
	// in tests because the real study depends on it).
	Rate    int
	Workers int
	Seed    uint64
	// Metrics receives probe/open-port counters (scan_probes,
	// scan_open_ports); nil disables telemetry at zero cost. Workers
	// batch counts locally and flush at the existing context-check
	// cadence, so the probe loop itself stays allocation-free either
	// way.
	Metrics *telemetry.Registry
}

// ctxCheckInterval bounds how many unlimited-rate probes a shard worker
// runs between context checks; probes are sub-microsecond, so
// cancellation latency stays well under a millisecond.
const ctxCheckInterval = 1024

// PortScan probes every address of the view's universe on the given
// port in permuted order and returns the responsive addresses. The
// view may be the live mutable Network or an immutable per-wave
// worldview snapshot; either way PortScan only reads.
//
// The permuted index space [0, N) is statically sharded into one
// contiguous range per worker: a probe is a pure function call chain
// (Permutation.At, Universe.AddrAt, View.OpenPort) with no channel
// traffic and no heap allocations, and each shard batches its
// responsive addresses locally. Shards are concatenated in worker
// order, so the result order is deterministic for a given
// (universe, seed, workers) triple — though callers must not rely on
// it beyond set equality, which is what the grab stage's deterministic
// sort consumes.
func PortScan(ctx context.Context, nw simnet.View, cfg PortScanConfig) ([]netip.Addr, error) {
	return PortScanRange(ctx, nw, cfg, 0, nw.Universe().Size())
}

// PortScanRange probes only the permuted indexes in [lo, hi) — one
// shard's contiguous slice of the same permutation PortScan walks, so
// the shards of a ShardPlan partition the address space exactly and
// their union visits every address exactly once. hi is clamped to the
// universe size; the full range reproduces PortScan.
func PortScanRange(ctx context.Context, nw simnet.View, cfg PortScanConfig, lo, hi uint64) ([]netip.Addr, error) {
	if cfg.Port == 0 {
		cfg.Port = 4840
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	u := nw.Universe()
	total := u.Size()
	if hi > total {
		hi = total
	}
	if lo > hi {
		lo = hi
	}
	n := hi - lo
	// The permutation always spans the full universe: a shard owns a
	// slice of the permuted index space, not a slice of the address
	// space, preserving zmap's no-burst property inside every shard.
	perm := NewPermutation(total, cfg.Seed)

	var limiter *time.Ticker
	if cfg.Rate > 0 {
		// time.Second / Rate truncates to zero for Rate > 1e9, and
		// NewTicker panics on non-positive intervals; clamp to 1ns
		// (effectively unlimited — no simulated probe is that fast).
		interval := time.Second / time.Duration(cfg.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		limiter = time.NewTicker(interval)
		defer limiter.Stop()
	}

	workers := cfg.Workers
	if uint64(workers) > n {
		workers = int(n)
	}
	if workers == 0 {
		return nil, ctx.Err()
	}
	// Instrument handles resolve once here, never inside the probe loop;
	// on a nil registry they are nil and every flush is one pointer check.
	probesC := cfg.Metrics.Counter("scan_probes")
	openC := cfg.Metrics.Counter("scan_open_ports")
	shards := make([][]netip.Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Static sharding: worker w owns the contiguous index range
		// [lo + n*w/workers, lo + n*(w+1)/workers) of the assigned
		// slice. The permutation spreads each range across the whole
		// address space, preserving zmap's no-burst property per shard.
		wlo := lo + n*uint64(w)/uint64(workers)
		whi := lo + n*uint64(w+1)/uint64(workers)
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			var open []netip.Addr
			// Probe counts batch in a local and flush at the context-check
			// cadence plus once at exit, keeping the loop free of atomics.
			var probed uint64
			defer func() {
				shards[w] = open
				probesC.Add(probed)
				openC.Add(uint64(len(open)))
			}()
			for i := lo; i < hi; i++ {
				if limiter != nil {
					// The ticker is shared: the aggregate probe rate
					// across all shards matches cfg.Rate.
					select {
					case <-ctx.Done():
						return
					case <-limiter.C:
					}
				} else if i%ctxCheckInterval == 0 {
					if ctx.Err() != nil {
						return
					}
					probesC.Add(probed)
					probed = 0
				}
				probed++
				addr, err := u.AddrAt(perm.At(i))
				if err != nil {
					continue
				}
				if nw.OpenPort(addr, cfg.Port) {
					open = append(open, addr)
				}
			}
		}(w, wlo, whi)
	}
	wg.Wait()
	count := 0
	for _, s := range shards {
		count += len(s)
	}
	open := make([]netip.Addr, 0, count)
	for _, s := range shards {
		open = append(open, s...)
	}
	return open, ctx.Err()
}
