// Resilience is the grab path's armor against the adversarial internet
// (DESIGN.md §9): per-stage deadlines instead of one connection budget,
// bounded dial retries on a deterministic seeded backoff, an absolute
// per-grab watchdog so a tarpit host can never wedge a grab-pool
// worker, and a failure taxonomy recorded into the dataset and the
// telemetry counters so "accessible" counts stay honest under chaos.
//
// Determinism contract: with a fixed Seed, every decision here — which
// attempt number a dial carries, whether a failure is retried, what
// class a record gets — is a pure function of the error chain and the
// retry budget, never of wall-clock timing. Backoff delays shape only
// wall-clock pacing; classification never reads a clock. That is what
// keeps chaos-on datasets byte-identical across runs and shard counts.

package scanner

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/simnet"
	"repro/internal/uaclient"
)

// Failure taxonomy classes recorded in Result.FailureClass and the
// grab_failures{class=...} telemetry counters.
const (
	// FailTimeout: the host accepted the connection but a stage
	// deadline fired (tarpits, stalls).
	FailTimeout = "timeout"
	// FailReset: the peer closed or refused mid-handshake (RST-like
	// behavior; truncated streams classify here too).
	FailReset = "reset"
	// FailMalformed: the host answered with bytes the protocol stack
	// rejected (corrupted frames, oversized chunk claims, garbage
	// banners, non-OPC-UA services).
	FailMalformed = "malformed"
	// FailRetriesExhausted: a retryable failure persisted through the
	// whole retry budget.
	FailRetriesExhausted = "retries-exhausted"
)

// FailureClasses lists the taxonomy in reporting order.
func FailureClasses() []string {
	return []string{FailTimeout, FailReset, FailMalformed, FailRetriesExhausted}
}

// Resilience configures the armor. The zero value disables all of it,
// reproducing the legacy single-Timeout grab byte-for-byte — the
// chaos-off equivalence gate rests on that.
type Resilience struct {
	// Classify enables the failure taxonomy: discovery-stage failures
	// get a FailureClass and enter the dataset as failure records.
	Classify bool
	// Retries bounds additional dial attempts per exchange (0 = none).
	Retries int
	// Seed derives the per-address backoff jitter stream.
	Seed int64
	// BackoffBase/BackoffCap shape the retry schedule
	// (internal/backoff defaults when zero).
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Per-stage deadlines handed to uaclient (zero = that stage falls
	// back to Scanner.Timeout).
	ConnectTimeout time.Duration
	HelloTimeout   time.Duration
	OpenTimeout    time.Duration
	RequestTimeout time.Duration

	// GrabTimeout is the per-grab watchdog: an absolute deadline no
	// connection of the grab can extend past. It must be set well above
	// the worst-case healthy grab (walk included) — it exists to bound
	// adversarial stalls, and a watchdog that fires on a healthy host
	// would truncate record content.
	GrabTimeout time.Duration
}

// Enabled reports whether any part of the armor is on.
func (r Resilience) Enabled() bool {
	return r.Classify || r.Retries > 0 || r.GrabTimeout > 0 ||
		r.ConnectTimeout > 0 || r.HelloTimeout > 0 || r.OpenTimeout > 0 || r.RequestTimeout > 0
}

// ClassifyError maps an error chain to its taxonomy class. Returns ""
// for nil errors and campaign cancellation (a cancelled grab is not a
// host failure and must not become a dataset record — partial-wave
// determinism depends on it).
func ClassifyError(err error) string {
	if err == nil || errors.Is(err, context.Canceled) {
		return ""
	}
	if errors.Is(err, os.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) {
		return FailTimeout
	}
	var refused simnet.ErrRefused
	if errors.As(err, &refused) {
		return FailReset
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return FailTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return FailReset
	}
	return FailMalformed
}

// retryable reports whether a failure class is worth another dial:
// resets and refusals (the flap profile) are; timeouts are not — a
// tarpit retried is a stage deadline burned twice — and malformed
// responses are deterministic server behavior.
func retryable(class string) bool { return class == FailReset }

// retrier drives one grab's bounded dial retries. The attempt number
// carried in the dial context is how the stateless connect-refuse flap
// sees retries (chaos.WithAttempt); once an exchange succeeds at
// attempt k, later exchanges of the same grab start there, so a flap
// host costs its refusals once, not once per exchange.
type retrier struct {
	s       *Scanner
	retries int
	backoff *backoff.Backoff
	known   int // attempt number that last succeeded
}

// newRetrier returns nil when retries are disabled; dialRetry treats a
// nil retrier as a single plain dial.
func (s *Scanner) newRetrier(addr string) *retrier {
	if s.Resilience.Retries <= 0 {
		return nil
	}
	return &retrier{
		s:       s,
		retries: s.Resilience.Retries,
		backoff: backoff.New(chaos.DeriveSeed(s.Resilience.Seed, addr),
			s.Resilience.BackoffBase, s.Resilience.BackoffCap),
	}
}

// run executes exchange with retries. It returns the final error and
// whether a retryable failure survived the whole budget (the
// retries-exhausted taxonomy class).
func (rt *retrier) run(ctx context.Context, exchange func(ctx context.Context) error) (error, bool) {
	attempt, used := rt.known, 0
	for {
		err := exchange(chaos.WithAttempt(ctx, attempt))
		if err == nil {
			rt.known = attempt
			return nil, false
		}
		class := ClassifyError(err)
		if !retryable(class) || ctx.Err() != nil {
			return err, false
		}
		if used >= rt.retries {
			return err, true
		}
		used++
		attempt++
		rt.s.Metrics.Counter("grab_retries").Inc()
		rt.sleep(ctx)
	}
}

// sleep waits out the next backoff delay, cancellation-aware. The
// delay shapes pacing only; no retry decision depends on it.
func (rt *retrier) sleep(ctx context.Context) {
	t := time.NewTimer(rt.backoff.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runExchange executes exchange under the retry budget (single attempt
// when retries are disabled), returning the final error and whether a
// retryable failure survived the whole budget.
func (s *Scanner) runExchange(ctx context.Context, rt *retrier, exchange func(context.Context) error) (error, bool) {
	if rt == nil {
		return exchange(ctx), false
	}
	return rt.run(ctx, exchange)
}

// dialRetry dials url under the retry budget. With a nil retrier it is
// exactly uaclient.Dial — the legacy single-attempt path.
func (s *Scanner) dialRetry(ctx context.Context, rt *retrier, url string, opts uaclient.Options) (*uaclient.Client, error) {
	if rt == nil {
		return uaclient.Dial(ctx, url, opts)
	}
	var c *uaclient.Client
	err, _ := rt.run(ctx, func(dctx context.Context) error {
		cc, err := uaclient.Dial(dctx, url, opts)
		if err != nil {
			return err
		}
		c = cc
		return nil
	})
	return c, err
}

// recordFailure classifies a discovery-stage failure into the result
// and the per-class telemetry counter. No-op unless Classify is on.
func (s *Scanner) recordFailure(res *Result, err error, exhausted bool) {
	if !s.Resilience.Classify {
		return
	}
	class := ClassifyError(err)
	if class == "" {
		return
	}
	if exhausted {
		class = FailRetriesExhausted
	}
	res.FailureClass = class
	s.Metrics.Scope("class", class).Counter("grab_failures").Inc()
}

// discoveryError preserves the legacy "get endpoints: ..." message for
// post-dial discovery failures while keeping the cause unwrappable for
// classification.
type discoveryError struct{ err error }

func (e *discoveryError) Error() string { return "get endpoints: " + e.err.Error() }
func (e *discoveryError) Unwrap() error { return e.err }
