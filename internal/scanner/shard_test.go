package scanner

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestShardPlanPartitionsIndexSpace pins the plan arithmetic: ranges
// are contiguous, cover [0, N) exactly, and are deterministic.
func TestShardPlanPartitionsIndexSpace(t *testing.T) {
	for _, tc := range []struct {
		n      uint64
		shards int
	}{{100, 1}, {100, 3}, {7, 5}, {3, 8}, {65536, 4}} {
		plan := ShardPlan{Universe: tc.n, Shards: tc.shards}
		var next uint64
		for i := 0; i < tc.shards; i++ {
			lo, hi := plan.Range(i)
			if lo != next {
				t.Errorf("n=%d shards=%d: shard %d starts at %d, want %d",
					tc.n, tc.shards, i, lo, next)
			}
			if hi < lo {
				t.Errorf("n=%d shards=%d: shard %d inverted range [%d, %d)",
					tc.n, tc.shards, i, lo, hi)
			}
			next = hi
		}
		if next != tc.n {
			t.Errorf("n=%d shards=%d: ranges end at %d", tc.n, tc.shards, next)
		}
	}
}

// runShardedWave executes every shard of a plan and merges.
func runShardedWave(t *testing.T, shards int) (*Wave, *Wave) {
	t.Helper()
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	cfg := WaveConfig{
		Date:             time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
		FollowReferences: true,
		GrabWorkers:      4,
	}
	full, err := RunWave(context.Background(), nw, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanWaveShards(nw, shards)
	waves := make([]*Wave, shards)
	for i := range waves {
		if waves[i], err = RunWaveShard(context.Background(), nw, sc, cfg, plan, i); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	return MergeWaveShards(waves...), full
}

// TestRunWaveShardMergeMatchesUnsharded is the scanner-level shard
// acceptance gate: for several shard counts, executing every shard and
// merging reproduces the unsharded wave — same open-port count, same
// results in the same deterministic order, no duplicates.
func TestRunWaveShardMergeMatchesUnsharded(t *testing.T) {
	for _, shards := range []int{1, 2, 5} {
		merged, full := runShardedWave(t, shards)
		if merged.Partial {
			t.Errorf("shards=%d: uncancelled merge marked partial", shards)
		}
		if merged.OpenPorts != full.OpenPorts {
			t.Errorf("shards=%d: open ports %d, want %d", shards, merged.OpenPorts, full.OpenPorts)
		}
		if len(merged.Results) != len(full.Results) {
			t.Fatalf("shards=%d: %d results, want %d", shards, len(merged.Results), len(full.Results))
		}
		for i, r := range merged.Results {
			f := full.Results[i]
			if r.Address != f.Address || r.Via != f.Via || r.ReachedOPCUA != f.ReachedOPCUA {
				t.Errorf("shards=%d result %d: %s/%s/%v, want %s/%s/%v",
					shards, i, r.Address, r.Via, r.ReachedOPCUA, f.Address, f.Via, f.ReachedOPCUA)
			}
		}
	}
}

// TestRunWaveShardOutOfRange pins the plan bounds check.
func TestRunWaveShardOutOfRange(t *testing.T) {
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	plan := PlanWaveShards(nw, 2)
	if _, err := RunWaveShard(context.Background(), nw, sc, WaveConfig{}, plan, 2); err == nil {
		t.Error("shard index == Shards accepted")
	}
	if _, err := RunWaveShard(context.Background(), nw, sc, WaveConfig{}, plan, -1); err == nil {
		t.Error("negative shard index accepted")
	}
}

// TestMergeWaveShardsPartialCancellation is the shard extension of
// RunWave's partial-cancellation contract: a shard cancelled mid-grab
// reports Partial and merges cleanly — its completed grabs are kept,
// the merged wave is marked Partial, and the surviving shards' results
// are untouched. A worker that never produced a wave (nil entry) also
// only narrows the merge.
func TestMergeWaveShardsPartialCancellation(t *testing.T) {
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	cfg := WaveConfig{
		Date:             time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
		FollowReferences: true,
		GrabWorkers:      1,
	}
	plan := PlanWaveShards(nw, 2)

	healthy, err := RunWaveShard(context.Background(), nw, sc, cfg, plan, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel shard 1 after its first grab dials, so it returns a
	// partial wave rather than a complete one.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped := &cancelAfterDials{inner: nw, cancel: cancel}
	wrapped.left.Store(1)
	cancelledSc := *sc
	cancelledSc.Dialer = wrapped
	partial, err := RunWaveShard(ctx, nw, &cancelledSc, cfg, plan, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil || !partial.Partial {
		t.Fatalf("cancelled shard: wave = %+v, want non-nil partial", partial)
	}

	merged := MergeWaveShards(healthy, partial)
	if !merged.Partial {
		t.Error("merge of a partial shard not marked Partial")
	}
	if merged.OpenPorts != healthy.OpenPorts+partial.OpenPorts {
		t.Errorf("merged open ports = %d, want %d",
			merged.OpenPorts, healthy.OpenPorts+partial.OpenPorts)
	}
	// Every grab the healthy shard completed must survive the merge.
	got := resultSet(t, merged)
	for _, r := range healthy.Results {
		if !got[resultKey{Address: r.Address, Via: r.Via, ReachedOPCUA: r.ReachedOPCUA}] {
			t.Errorf("healthy shard's grab of %s lost in merge", r.Address)
		}
	}

	// A worker that died before producing any wave: nil entry.
	merged = MergeWaveShards(healthy, nil)
	if !merged.Partial {
		t.Error("merge with a missing shard not marked Partial")
	}
	if len(merged.Results) != len(healthy.Results) {
		t.Errorf("missing shard changed surviving results: %d vs %d",
			len(merged.Results), len(healthy.Results))
	}
}
