package scanner

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/uaclient"
)

// resultKey is the order-independent identity of one grab.
type resultKey struct {
	Address      string
	Via          Via
	ReachedOPCUA bool
}

func resultSet(t *testing.T, w *Wave) map[resultKey]bool {
	t.Helper()
	set := make(map[resultKey]bool, len(w.Results))
	for _, r := range w.Results {
		k := resultKey{Address: r.Address, Via: r.Via, ReachedOPCUA: r.ReachedOPCUA}
		if set[k] {
			t.Errorf("duplicate grab of %v", k)
		}
		set[k] = true
	}
	return set
}

// TestRunWaveSchedulersAgree runs the streaming pipeline at several
// worker counts plus the legacy barrier scheduler and requires the
// exact same result set (addresses, discovery channel, OPC UA flag)
// and, thanks to the deterministic sort, the same result order. Run
// under -race this also exercises the dispatcher/worker interplay.
func TestRunWaveSchedulersAgree(t *testing.T) {
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	cfg := WaveConfig{
		Date:             time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
		FollowReferences: true,
	}

	run := func(workers int, barrier bool) *Wave {
		t.Helper()
		c := cfg
		c.GrabWorkers = workers
		c.Barrier = barrier
		w, err := RunWave(context.Background(), nw, sc, c)
		if err != nil {
			t.Fatal(err)
		}
		if w.Partial {
			t.Error("uncancelled wave marked partial")
		}
		return w
	}

	ref := run(1, false)
	want := resultSet(t, ref)
	for _, tc := range []struct {
		name    string
		workers int
		barrier bool
	}{
		{"streaming-2", 2, false},
		{"streaming-8", 8, false},
		{"streaming-64", 64, false},
		{"barrier-8", 8, true},
	} {
		w := run(tc.workers, tc.barrier)
		got := resultSet(t, w)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", tc.name, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%s: missing %v", tc.name, k)
			}
		}
		for i, r := range w.Results {
			if r.Address != ref.Results[i].Address {
				t.Fatalf("%s: order diverges at %d: %s vs %s",
					tc.name, i, r.Address, ref.Results[i].Address)
			}
		}
	}
}

// cancelAfterDials cancels a context once a fixed number of dials have
// been observed, so cancellation deterministically lands mid-wave
// (after the port scan, before the grab frontier drains).
type cancelAfterDials struct {
	inner  uaclient.Dialer
	left   atomic.Int32
	cancel context.CancelFunc
}

func (d *cancelAfterDials) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if d.left.Add(-1) == 0 {
		d.cancel()
	}
	return d.inner.DialContext(ctx, network, address)
}

// TestRunWaveCancellationReturnsPartialWave pins the documented error
// contract: a cancelled context yields the partial wave (grabs that
// completed), Wave.Partial set, and the context's error.
func TestRunWaveCancellationReturnsPartialWave(t *testing.T) {
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	cfg := WaveConfig{
		Date:             time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
		FollowReferences: true,
		GrabWorkers:      1,
	}

	full, err := RunWave(context.Background(), nw, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped := &cancelAfterDials{inner: nw, cancel: cancel}
	wrapped.left.Store(3)
	cancelled := *sc
	cancelled.Dialer = wrapped

	wave, err := RunWave(ctx, nw, &cancelled, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wave == nil {
		t.Fatal("cancelled wave is nil; contract promises partial results")
	}
	if !wave.Partial {
		t.Error("cancelled wave not marked partial")
	}
	if len(wave.Results) >= len(full.Results) {
		t.Errorf("partial wave has %d results, full wave %d", len(wave.Results), len(full.Results))
	}
	// Everything that did complete must be a target the full run saw.
	want := resultSet(t, full)
	for _, r := range wave.Results {
		if !want[resultKey{Address: r.Address, Via: r.Via, ReachedOPCUA: r.ReachedOPCUA}] {
			// Grabs racing cancellation may fail where the full run
			// succeeded; only the address set must stay plausible.
			if !want[resultKey{Address: r.Address, Via: r.Via, ReachedOPCUA: true}] {
				t.Errorf("partial wave grabbed unknown target %s (%s)", r.Address, r.Via)
			}
		}
	}
}

// TestRunWaveBarrierCancellation covers the legacy scheduler's share of
// the same contract: it stops at the next depth boundary.
func TestRunWaveBarrierCancellation(t *testing.T) {
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped := &cancelAfterDials{inner: nw, cancel: cancel}
	wrapped.left.Store(3)
	cancelled := *sc
	cancelled.Dialer = wrapped

	wave, err := RunWave(ctx, nw, &cancelled, WaveConfig{
		Date:             time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
		FollowReferences: true,
		GrabWorkers:      1,
		Barrier:          true,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wave == nil || !wave.Partial {
		t.Fatalf("barrier cancellation: wave = %+v", wave)
	}
}

// TestRunWaveQueueSmallerThanFrontier forces a queue buffer far smaller
// than the target frontier; the select-based dispatcher must not
// deadlock when workers block on a full outcome channel.
func TestRunWaveQueueSmallerThanFrontier(t *testing.T) {
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	wave, err := RunWave(context.Background(), nw, sc, WaveConfig{
		Date:             time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
		FollowReferences: true,
		GrabWorkers:      4,
		QueueSize:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wave.OPCUAResults()) != 3 {
		t.Errorf("OPC UA hosts = %d, want 3", len(wave.OPCUAResults()))
	}
}
