package scanner

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"hash/fnv"
	mrand "math/rand"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/addrspace"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/uacert"
	"repro/internal/uaclient"
	"repro/internal/uamsg"
	"repro/internal/uapolicy"
	"repro/internal/uaserver"
)

func TestPermutationIsBijective(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 1000, 4096} {
		p := NewPermutation(n, 12345)
		seen := make(map[uint64]bool, n)
		for i := uint64(0); i < n; i++ {
			v := p.At(i)
			if v >= n {
				t.Fatalf("n=%d: At(%d) = %d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermutationQuickBijection(t *testing.T) {
	f := func(seed uint64, small uint16) bool {
		n := uint64(small%2000) + 1
		p := NewPermutation(n, seed)
		seen := make(map[uint64]bool, n)
		for i := uint64(0); i < n; i++ {
			v := p.At(i)
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPermutationRoundMatchesFNV pins the inlined FNV-1a round function
// against the stdlib hash/fnv implementation over the exact byte layout
// the pre-inline code hashed: 8 LE bytes of half, 8 LE bytes of the
// seed, then the round byte. Permutations must be stable across the
// allocation-free rewrite so scan orders (and rate-limited probe
// schedules) stay reproducible.
func TestPermutationRoundMatchesFNV(t *testing.T) {
	ref := func(p *Permutation, half uint64, round uint) uint64 {
		var buf [17]byte
		binary.LittleEndian.PutUint64(buf[0:], half)
		binary.LittleEndian.PutUint64(buf[8:], p.seed)
		buf[16] = byte(round)
		h := fnv.New64a()
		h.Write(buf[:])
		return h.Sum64() & p.halfMask
	}
	rng := mrand.New(mrand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := NewPermutation(rng.Uint64()%(1<<32)+1, rng.Uint64())
		half := rng.Uint64()
		round := uint(rng.Intn(4))
		if got, want := p.round(half, round), ref(p, half, round); got != want {
			t.Fatalf("round(%#x, %d) = %#x, want %#x", half, round, got, want)
		}
	}
}

// TestPermutationAtAllocFree gates the zero-allocation probe path: one
// probe costs a Permutation.At call plus map lookups, none of which may
// touch the heap.
func TestPermutationAtAllocFree(t *testing.T) {
	p := NewPermutation(1<<24, 7)
	i := uint64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = p.At(i % (1 << 24))
		i++
	}); allocs != 0 {
		t.Errorf("Permutation.At allocates %.1f objects per call, want 0", allocs)
	}
}

func TestPermutationSpreadsProbes(t *testing.T) {
	// zmap's point: consecutive indexes should not map to consecutive
	// addresses. Check that the first 100 outputs are not sorted runs.
	p := NewPermutation(1<<16, 99)
	ascending := 0
	prev := p.At(0)
	for i := uint64(1); i < 100; i++ {
		v := p.At(i)
		if v == prev+1 {
			ascending++
		}
		prev = v
	}
	if ascending > 5 {
		t.Errorf("%d consecutive outputs, permutation too sequential", ascending)
	}
	if NewPermutation(0, 1).At(0) != 0 || NewPermutation(0, 1).Size() != 0 {
		t.Error("empty permutation mishandled")
	}
}

var (
	scanIDOnce sync.Once
	scanKey    *rsa.PrivateKey
	scanCert   *uacert.Certificate
)

func scannerIdentity(t testing.TB) (*rsa.PrivateKey, *uacert.Certificate) {
	t.Helper()
	scanIDOnce.Do(func() {
		var err error
		if scanKey, err = rsa.GenerateKey(rand.Reader, 512); err != nil {
			t.Fatal(err)
		}
		if scanCert, err = uacert.Generate(scanKey, uacert.Options{
			CommonName:     "research scanner",
			ApplicationURI: "urn:repro:scanner",
		}); err != nil {
			t.Fatal(err)
		}
	})
	return scanKey, scanCert
}

// buildWorld assembles a miniature Internet: two OPC UA servers (one
// with anonymous access, one discovery) plus noise.
func buildWorld(t *testing.T) (*simnet.Network, map[string]string) {
	t.Helper()
	prefix, err := simnet.NewPrefix("192.0.2.0", 24)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.New(simnet.NewUniverse(prefix))
	nw.SetNoise(0.05)

	key, err := rsa.GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := uacert.Generate(key, uacert.Options{
		CommonName: "plc", ApplicationURI: "urn:vendor:plc:1",
	})
	if err != nil {
		t.Fatal(err)
	}

	space := addrspace.New("urn:vendor:plc:1", "1.4.2")
	if _, err := addrspace.Populate(space, addrspace.BuildOptions{
		Profile:          addrspace.ProfileProduction,
		Variables:        10,
		Methods:          3,
		AnonReadableFrac: 1.0, AnonWritableFrac: 0.3, AnonExecutableFrac: 1.0,
		Rand: mrand.New(mrand.NewSource(7)),
	}); err != nil {
		t.Fatal(err)
	}
	plcIP := netip.MustParseAddr("192.0.2.10")
	plc, err := uaserver.New(uaserver.Config{
		ApplicationURI:  "urn:vendor:plc:1",
		SoftwareVersion: "1.4.2",
		EndpointURL:     "opc.tcp://192.0.2.10:4840",
		Endpoints: []uaserver.EndpointConfig{
			{Policy: uapolicy.None, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}},
			{Policy: uapolicy.Basic256Sha256, Modes: []uamsg.MessageSecurityMode{
				uamsg.SecurityModeSign, uamsg.SecurityModeSignAndEncrypt}},
		},
		TokenTypes: []uamsg.UserTokenType{uamsg.UserTokenAnonymous, uamsg.UserTokenUserName},
		Key:        key, CertDER: cert.Raw,
		Space: space,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(plcIP, 4840, 65010, plc)

	// Hidden server on a non-default port, announced by the discovery
	// server below (the paper's follow-reference targets).
	hidden, err := uaserver.New(uaserver.Config{
		ApplicationURI: "urn:vendor:hidden:9",
		EndpointURL:    "opc.tcp://192.0.2.20:4841",
		Endpoints: []uaserver.EndpointConfig{
			{Policy: uapolicy.None, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}},
		},
		Key: key, CertDER: cert.Raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(netip.MustParseAddr("192.0.2.20"), 4841, 65011, hidden)

	disco, err := uaserver.New(uaserver.Config{
		ApplicationURI: "urn:opcfoundation:lds:42",
		EndpointURL:    "opc.tcp://192.0.2.30:4840",
		Endpoints: []uaserver.EndpointConfig{
			{Policy: uapolicy.None, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}},
		},
		Discovery: true,
		KnownServers: []uamsg.ApplicationDescription{{
			ApplicationURI: "urn:vendor:hidden:9",
			DiscoveryURLs:  []string{"opc.tcp://192.0.2.20:4841"},
		}},
		Key: key, CertDER: cert.Raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(netip.MustParseAddr("192.0.2.30"), 4840, 65012, disco)

	return nw, map[string]string{
		"plc":    "192.0.2.10:4840",
		"hidden": "192.0.2.20:4841",
		"disco":  "192.0.2.30:4840",
	}
}

func newScanner(t *testing.T, nw *simnet.Network) *Scanner {
	t.Helper()
	key, cert := scannerIdentity(t)
	return &Scanner{
		Dialer:         nw,
		Key:            key,
		CertDER:        cert.Raw,
		Timeout:        5 * time.Second,
		Walk:           uaclient.WalkOptions{MaxNodes: 500},
		ApplicationURI: "urn:repro:scanner",
	}
}

func TestPortScanFindsServersAndNoise(t *testing.T) {
	nw, _ := buildWorld(t)
	open, err := PortScan(context.Background(), nw, PortScanConfig{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, a := range open {
		found[a.String()] = true
	}
	// Registered port-4840 hosts must be found; the hidden server on
	// 4841 must not (it is discovered via references instead).
	if !found["192.0.2.10"] || !found["192.0.2.30"] {
		t.Errorf("servers missing from scan: %v", found)
	}
	if found["192.0.2.20"] {
		t.Error("non-default-port host found by default-port scan")
	}
	// Noise hosts (~5% of 256) should appear too.
	if len(open) < 5 {
		t.Errorf("open ports = %d, expected noise", len(open))
	}
}

func TestPortScanRateLimit(t *testing.T) {
	prefix, _ := simnet.NewPrefix("192.0.2.0", 28) // 16 addresses
	nw := simnet.New(simnet.NewUniverse(prefix))
	start := time.Now()
	if _, err := PortScan(context.Background(), nw, PortScanConfig{Rate: 200, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("16 probes at 200/s took %v, limiter not applied", elapsed)
	}
}

// TestPortScanExtremeRateDoesNotPanic is the regression test for the
// limiter interval truncation: time.Second / Rate is zero for
// Rate > 1e9 and time.NewTicker panics on non-positive intervals.
func TestPortScanExtremeRateDoesNotPanic(t *testing.T) {
	prefix, _ := simnet.NewPrefix("192.0.2.0", 28) // 16 addresses
	nw := simnet.New(simnet.NewUniverse(prefix))
	if _, err := PortScan(context.Background(), nw, PortScanConfig{
		Rate: 2_000_000_000, Workers: 4,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPortScanShardsMatchSingleWorker pins that static sharding changes
// neither the discovered set nor its multiplicity, whatever the worker
// count.
func TestPortScanShardsMatchSingleWorker(t *testing.T) {
	nw, _ := buildWorld(t)
	single, err := PortScan(context.Background(), nw, PortScanConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// -1 exercises the Workers<=0 default (64), which must kick in
	// before the workers-vs-universe clamp.
	for _, workers := range []int{-1, 3, 16, 1024} {
		open, err := PortScan(context.Background(), nw, PortScanConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(open) != len(single) {
			t.Fatalf("workers=%d: %d open ports, want %d", workers, len(open), len(single))
		}
		want := map[netip.Addr]int{}
		for _, a := range single {
			want[a]++
		}
		for _, a := range open {
			want[a]--
		}
		for a, n := range want {
			if n != 0 {
				t.Errorf("workers=%d: address %s count off by %d", workers, a, n)
			}
		}
	}
}

func TestGrabFullServer(t *testing.T) {
	nw, addrs := buildWorld(t)
	sc := newScanner(t, nw)
	res := sc.Grab(context.Background(), Target{Address: addrs["plc"], Via: ViaPortScan})

	if !res.ReachedOPCUA {
		t.Fatalf("grab failed: %s", res.Error)
	}
	if res.ApplicationURI != "urn:vendor:plc:1" {
		t.Errorf("application URI = %q", res.ApplicationURI)
	}
	if len(res.Endpoints) != 3 {
		t.Errorf("endpoints = %d", len(res.Endpoints))
	}
	if res.ServerCertDER == nil {
		t.Error("no server certificate captured")
	}
	if !res.SecureChannel.Attempted || !res.SecureChannel.OK {
		t.Errorf("secure channel = %+v", res.SecureChannel)
	}
	if res.SecureChannel.PolicyURI != uapolicy.URIBasic256Sha256 ||
		res.SecureChannel.Mode != uamsg.SecurityModeSignAndEncrypt {
		t.Errorf("secure channel chose %s/%v", res.SecureChannel.PolicyURI, res.SecureChannel.Mode)
	}
	if !res.Session.Offered || !res.Session.OK {
		t.Errorf("session = %+v", res.Session)
	}
	if res.SoftwareVersion != "1.4.2" {
		t.Errorf("software version = %q", res.SoftwareVersion)
	}
	if res.NodeStats.Variables < 10 || res.NodeStats.Methods != 3 {
		t.Errorf("node stats = %+v", res.NodeStats)
	}
	if res.NodeStats.Readable < 10 || res.NodeStats.Executable != 3 {
		t.Errorf("node stats = %+v", res.NodeStats)
	}
	if res.NodeStats.Writable == 0 || res.NodeStats.Writable >= res.NodeStats.Variables {
		t.Errorf("writable = %d", res.NodeStats.Writable)
	}
	if addrspace.Classify(res.Namespaces) != addrspace.Production {
		t.Errorf("namespaces = %v", res.Namespaces)
	}
	if res.BytesTransferred == 0 || res.Duration <= 0 {
		t.Error("transfer accounting missing")
	}
}

func TestGrabNoiseHostIsNotOPCUA(t *testing.T) {
	nw, _ := buildWorld(t)
	nw.SetNoise(1.0)
	sc := newScanner(t, nw)
	res := sc.Grab(context.Background(), Target{Address: "192.0.2.99:4840", Via: ViaPortScan})
	if res.ReachedOPCUA {
		t.Error("noise host classified as OPC UA")
	}
	if res.Error == "" {
		t.Error("expected an error description")
	}
}

func TestGrabClosedPort(t *testing.T) {
	nw, _ := buildWorld(t)
	sc := newScanner(t, nw)
	res := sc.Grab(context.Background(), Target{Address: "192.0.2.123:4840", Via: ViaPortScan})
	if res.ReachedOPCUA || res.Error == "" {
		t.Errorf("closed port grab = %+v", res)
	}
}

func TestRunWaveWithFollowReferences(t *testing.T) {
	nw, addrs := buildWorld(t)
	sc := newScanner(t, nw)
	wave, err := RunWave(context.Background(), nw, sc, WaveConfig{
		Date:             time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC),
		FollowReferences: true,
		GrabWorkers:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	opcua := wave.OPCUAResults()
	byAddr := map[string]*Result{}
	for _, r := range opcua {
		byAddr[r.Address] = r
	}
	if len(byAddr) != 3 {
		t.Fatalf("OPC UA hosts = %d, want 3 (%v)", len(byAddr), keys(byAddr))
	}
	hidden, ok := byAddr[addrs["hidden"]]
	if !ok {
		t.Fatal("hidden server not discovered via references")
	}
	if hidden.Via != ViaReference {
		t.Errorf("hidden server via = %q", hidden.Via)
	}
	if wave.OpenPorts < 2 {
		t.Errorf("open ports = %d", wave.OpenPorts)
	}
	// Without follow-references the hidden server stays invisible.
	wave2, err := RunWave(context.Background(), nw, sc, WaveConfig{
		Date:        time.Date(2020, 2, 9, 0, 0, 0, 0, time.UTC),
		GrabWorkers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range wave2.OPCUAResults() {
		if r.Address == addrs["hidden"] {
			t.Error("hidden server found without follow-references")
		}
	}
}

func keys(m map[string]*Result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestStrongestSecureSelection(t *testing.T) {
	eps := []EndpointInfo{
		{SecurityPolicyURI: uapolicy.URINone, SecurityMode: uamsg.SecurityModeNone},
		{SecurityPolicyURI: uapolicy.URIBasic128Rsa15, SecurityMode: uamsg.SecurityModeSign},
		{SecurityPolicyURI: uapolicy.URIBasic256Sha256, SecurityMode: uamsg.SecurityModeSign},
	}
	p, m := strongestSecure(eps)
	if p != uapolicy.Basic256Sha256 || m != uamsg.SecurityModeSign {
		t.Errorf("got %v/%v", p, m)
	}
	if p, _ := strongestSecure(eps[:1]); p != nil {
		t.Error("None-only endpoints should yield nil")
	}
}

func TestChannelForSessionPrefersNone(t *testing.T) {
	eps := []EndpointInfo{
		{SecurityPolicyURI: uapolicy.URIBasic256Sha256, SecurityMode: uamsg.SecurityModeSignAndEncrypt},
		{SecurityPolicyURI: uapolicy.URINone, SecurityMode: uamsg.SecurityModeNone},
	}
	p, m := channelForSession(eps)
	if p != uapolicy.None || m != uamsg.SecurityModeNone {
		t.Errorf("got %v/%v", p, m)
	}
	// Secure-only host: pick the weakest secure endpoint.
	p2, m2 := channelForSession(eps[:1])
	if p2 != uapolicy.Basic256Sha256 || m2 != uamsg.SecurityModeSignAndEncrypt {
		t.Errorf("got %v/%v", p2, m2)
	}
}

func TestGrabSecureOnlyAnonymousHost(t *testing.T) {
	// The paper's 71 hosts that force security but allow anonymous
	// access: the scanner must reach them through a secure channel.
	prefix, _ := simnet.NewPrefix("192.0.2.0", 28)
	nw := simnet.New(simnet.NewUniverse(prefix))
	key, _ := rsa.GenerateKey(rand.Reader, 512)
	cert, _ := uacert.Generate(key, uacert.Options{CommonName: "sec"})
	srv, err := uaserver.New(uaserver.Config{
		ApplicationURI: "urn:secure:anon",
		EndpointURL:    "opc.tcp://192.0.2.1:4840",
		Endpoints: []uaserver.EndpointConfig{
			{Policy: uapolicy.Basic256Sha256, Modes: []uamsg.MessageSecurityMode{
				uamsg.SecurityModeSignAndEncrypt}},
		},
		TokenTypes: []uamsg.UserTokenType{uamsg.UserTokenAnonymous},
		Key:        key, CertDER: cert.Raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(netip.MustParseAddr("192.0.2.1"), 4840, 65000, srv)

	sc := newScanner(t, nw)
	res := sc.Grab(context.Background(), Target{Address: "192.0.2.1:4840", Via: ViaPortScan})
	if !res.ReachedOPCUA {
		t.Fatalf("grab failed: %s", res.Error)
	}
	if !res.Session.Offered || !res.Session.OK {
		t.Errorf("session over secure channel = %+v", res.Session)
	}
}

func TestGrabCertRejectingHost(t *testing.T) {
	prefix, _ := simnet.NewPrefix("192.0.2.0", 28)
	nw := simnet.New(simnet.NewUniverse(prefix))
	key, _ := rsa.GenerateKey(rand.Reader, 512)
	cert, _ := uacert.Generate(key, uacert.Options{CommonName: "strict"})
	srv, err := uaserver.New(uaserver.Config{
		ApplicationURI: "urn:strict",
		EndpointURL:    "opc.tcp://192.0.2.1:4840",
		Endpoints: []uaserver.EndpointConfig{
			{Policy: uapolicy.None, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeNone}},
			{Policy: uapolicy.Basic256, Modes: []uamsg.MessageSecurityMode{uamsg.SecurityModeSign}},
		},
		Key: key, CertDER: cert.Raw,
		Quirks: uaserver.Quirks{RejectClientCert: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(netip.MustParseAddr("192.0.2.1"), 4840, 65000, srv)

	sc := newScanner(t, nw)
	res := sc.Grab(context.Background(), Target{Address: "192.0.2.1:4840", Via: ViaPortScan})
	if !res.ReachedOPCUA {
		t.Fatalf("grab failed: %s", res.Error)
	}
	if !res.SecureChannel.Attempted || res.SecureChannel.OK {
		t.Errorf("secure channel = %+v", res.SecureChannel)
	}
	if !res.SecureChannel.CertRejected {
		t.Error("certificate rejection not detected")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Address: " 1.2.3.4:4840",
		Endpoints: []EndpointInfo{
			{SecurityPolicyURI: uapolicy.URINone,
				TokenTypes: []uamsg.UserTokenType{uamsg.UserTokenAnonymous}},
			{SecurityPolicyURI: uapolicy.URIBasic256Sha256},
			{SecurityPolicyURI: uapolicy.URINone},
		},
		Session: SessionResult{Offered: true},
	}
	if !r.SupportsAnonymous() {
		t.Error("anonymous not detected")
	}
	ps := r.PolicySet()
	if len(ps) != 2 {
		t.Errorf("policy set = %v", ps)
	}
	if r.HostKey() != "1.2.3.4:4840" {
		t.Errorf("host key = %q", r.HostKey())
	}
}

func BenchmarkPortScan64K(b *testing.B) {
	prefix, _ := simnet.NewPrefix("10.0.0.0", 16)
	nw := simnet.New(simnet.NewUniverse(prefix))
	nw.SetNoise(0.001)
	for i := 0; i < b.N; i++ {
		if _, err := PortScan(context.Background(), nw, PortScanConfig{Workers: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortScanTelemetry pairs disabled and enabled telemetry over
// the same sweep; benchjson -overhead-delta gates the allocation gap
// between the two, and the BENCH budget pins the disabled path so the
// nil-registry fast path can never start allocating.
func BenchmarkPortScanTelemetry(b *testing.B) {
	prefix, _ := simnet.NewPrefix("10.0.0.0", 16)
	nw := simnet.New(simnet.NewUniverse(prefix))
	nw.SetNoise(0.001)
	run := func(b *testing.B, reg *telemetry.Registry) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PortScan(context.Background(), nw, PortScanConfig{Workers: 32, Metrics: reg}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("telemetry=off", func(b *testing.B) { run(b, nil) })
	b.Run("telemetry=on", func(b *testing.B) { run(b, telemetry.New()) })
}

func BenchmarkPermutation(b *testing.B) {
	p := NewPermutation(1<<32, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.At(uint64(i) & 0xFFFFFFFF)
	}
}
