package fabric

import (
	"time"

	"repro/internal/backoff"
	"repro/internal/telemetry"
)

// defaultClock is the production time source: telemetry.NowNs, the
// repository's one sanctioned wall-clock read.
func defaultClock() int64 { return telemetry.NowNs() }

// Backoff is the fabric's deterministic retry schedule. The
// implementation moved to internal/backoff when the scanner's probe
// retry budget (PR 9) began sharing it; the fabric API — including the
// jitter-stream semantics every fault test pins — is unchanged.
type Backoff = backoff.Backoff

// Default retry shape for worker dial/reconnect loops.
const (
	DefaultBackoffBase = backoff.DefaultBase
	DefaultBackoffCap  = backoff.DefaultCap
)

// NewBackoff returns a schedule seeded for determinism. Non-positive
// base/cap fall back to the defaults; cap below base is raised to base.
func NewBackoff(seed int64, base, cap time.Duration) *Backoff {
	return backoff.New(seed, base, cap)
}
