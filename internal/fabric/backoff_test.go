package fabric

import (
	"testing"
	"time"
)

// TestBackoffDeterministic pins the retry schedule's cross-process
// determinism: the delay sequence is a pure function of the seed
// (math/rand's seeded sequence is specified and stable), so two
// instances — or two processes — with one seed agree delay for delay.
func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(42, 100*time.Millisecond, 10*time.Second)
	b := NewBackoff(42, 100*time.Millisecond, 10*time.Second)
	for i := 0; i < 64; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("delay %d: %v != %v (same seed must yield one schedule)", i, da, db)
		}
	}
	c := NewBackoff(43, 100*time.Millisecond, 10*time.Second)
	same := true
	a2 := NewBackoff(42, 100*time.Millisecond, 10*time.Second)
	for i := 0; i < 8; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestBackoffEnvelopeAndCap pins the shape: the nth delay lies in
// [d/2, d] for d = min(cap, base<<n), and once capped it stays capped.
func TestBackoffEnvelopeAndCap(t *testing.T) {
	base, cap := 100*time.Millisecond, 2*time.Second
	b := NewBackoff(7, base, cap)
	for i := 0; i < 32; i++ {
		want := cap
		if i < 62 {
			if grown := base << uint(i); grown > 0 && grown < cap {
				want = grown
			}
		}
		got := b.Next()
		if got < want/2 || got > want {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, got, want/2, want)
		}
	}
}

// TestBackoffReset pins the reset contract: the exponent rewinds to
// base after a success, while the jitter stream keeps advancing (so a
// fleet that resets together does not retry in lockstep afterwards).
func TestBackoffReset(t *testing.T) {
	base, cap := 100*time.Millisecond, 10*time.Second
	b := NewBackoff(11, base, cap)
	for i := 0; i < 6; i++ {
		b.Next()
	}
	if b.Attempt() != 6 {
		t.Fatalf("attempt = %d, want 6", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("attempt after reset = %d, want 0", b.Attempt())
	}
	first := b.Next()
	if first < base/2 || first > base {
		t.Fatalf("post-reset delay %v outside base envelope [%v, %v]", first, base/2, base)
	}

	// The jitter stream does not rewind: a reset instance's next draws
	// continue the stream (position 7 onward), they do not replay the
	// initial prefix.
	fresh := NewBackoff(11, base, cap)
	replayed := true
	bb := NewBackoff(11, base, cap)
	for i := 0; i < 6; i++ {
		bb.Next()
	}
	bb.Reset()
	for i := 0; i < 4; i++ {
		if bb.Next() != fresh.Next() {
			replayed = false
			break
		}
	}
	if replayed {
		t.Fatal("reset replayed the jitter stream from the start; position must encode retry history")
	}
}

// TestBackoffDefaults pins the fallback shape so a zero-value config
// cannot produce a zero-delay hot loop.
func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(1, 0, 0)
	d := b.Next()
	if d < DefaultBackoffBase/2 || d > DefaultBackoffBase {
		t.Fatalf("default first delay %v outside [%v, %v]", d, DefaultBackoffBase/2, DefaultBackoffBase)
	}
	// cap below base is raised to base: delays never shrink below base/2.
	b = NewBackoff(1, time.Second, time.Millisecond)
	for i := 0; i < 4; i++ {
		if d := b.Next(); d < time.Second/2 || d > time.Second {
			t.Fatalf("cap<base delay %v outside [%v, %v]", d, time.Second/2, time.Second)
		}
	}
}
