package fabric

import "sync/atomic"

// FaultAction tells the fabric how to fail at an injection point.
type FaultAction int

const (
	// FaultNone proceeds normally.
	FaultNone FaultAction = iota
	// FaultSever closes the connection immediately — the torn-stream
	// failure a kill -9 or network partition produces. Worker sessions
	// end with ErrSessionSevered and follow the normal reconnect path.
	FaultSever
	// FaultWedge stops all sends (records and heartbeats) while
	// keeping the connection open — the stalled-worker failure only the
	// coordinator's heartbeat deadline can detect.
	FaultWedge
	// FaultKill aborts the worker run abruptly: the connection is
	// severed and RunWorker returns ErrWorkerKilled without reconnecting
	// — the in-process stand-in for kill -9 (cmd/measure exits on it).
	FaultKill
)

// FaultInjector drives the fabric's failure test matrix by injecting
// deterministic faults at the transport's seams. Implementations must
// be safe for concurrent use: hooks run on the framer's send path, the
// heartbeat goroutine, and the coordinator's grant path. NopFaults is
// the embeddable no-op base.
type FaultInjector interface {
	// FrameWritten is consulted after the worker's nth frame (1-based,
	// per connection lifetime) hits the wire.
	FrameWritten(n int) FaultAction
	// RecordPut is consulted after the worker streams record n
	// (1-based, per shard) of the given shard.
	RecordPut(shard, n int) FaultAction
	// HeartbeatDue is consulted before the worker's nth heartbeat;
	// FaultWedge suppresses this and all later sends.
	HeartbeatDue(n int) FaultAction
	// DuplicateGrant, consulted on the coordinator when it leases a
	// shard, grants the same shard to a second worker when true — the
	// double-lease fault the commit-first-copy rule must absorb.
	DuplicateGrant(shard int) bool
}

// NopFaults injects nothing; embed it to implement one hook.
type NopFaults struct{}

// FrameWritten proceeds normally.
func (NopFaults) FrameWritten(int) FaultAction { return FaultNone }

// RecordPut proceeds normally.
func (NopFaults) RecordPut(int, int) FaultAction { return FaultNone }

// HeartbeatDue proceeds normally.
func (NopFaults) HeartbeatDue(int) FaultAction { return FaultNone }

// DuplicateGrant grants once.
func (NopFaults) DuplicateGrant(int) bool { return false }

// KillAfterRecords aborts the worker run (FaultKill) once it has
// streamed n records in total — the mid-shard worker-kill scenario.
type KillAfterRecords struct {
	NopFaults
	N     int64
	total atomic.Int64
}

// RecordPut kills the worker at the nth record, once.
func (k *KillAfterRecords) RecordPut(int, int) FaultAction {
	if k.total.Add(1) == k.N {
		return FaultKill
	}
	return FaultNone
}

// StallAfterRecords wedges the session (FaultWedge) once the worker
// has streamed n records in total: the framer stops writing — records
// and heartbeats alike — while the connection stays open, the
// stalled-worker failure only the coordinator's heartbeat deadline can
// detect. The wedge is framer state, so it dies with the session: once
// the coordinator declares the worker dead and closes the connection,
// the reconnected session behaves normally — the lease-expiry recovery
// scenario.
type StallAfterRecords struct {
	NopFaults
	N     int64
	total atomic.Int64
}

// RecordPut wedges at the nth record, once.
func (s *StallAfterRecords) RecordPut(int, int) FaultAction {
	if s.total.Add(1) == s.N {
		return FaultWedge
	}
	return FaultNone
}

// DropAfterFrames severs the connection (FaultSever) after the nth
// frame of the first session — the broken-stream-mid-flight scenario;
// the worker's seeded backoff then drives the reconnect.
type DropAfterFrames struct {
	NopFaults
	N     int64
	total atomic.Int64
}

// FrameWritten severs at the nth frame, once.
func (d *DropAfterFrames) FrameWritten(int) FaultAction {
	if d.total.Add(1) == d.N {
		return FaultSever
	}
	return FaultNone
}

// DuplicateGrants makes the coordinator lease every shard twice — the
// double-grant fault; the commit-first-complete-copy rule must discard
// the duplicate stream.
type DuplicateGrants struct{ NopFaults }

// DuplicateGrant always duplicates.
func (DuplicateGrants) DuplicateGrant(int) bool { return true }
