package fabric

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"slices"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// CoordinatorConfig tunes the lease coordinator.
type CoordinatorConfig struct {
	// Shards is the campaign's total shard count; every shard index in
	// [0, Shards) must commit exactly once for Run to return.
	Shards int
	// Hello is the opaque campaign payload sent to every joining
	// worker (cmd/measure: CampaignSpec JSON).
	Hello []byte
	// DeadAfter is the heartbeat-gap death threshold (default 10s): a
	// worker silent for longer is declared dead, its partial shard
	// buffers are discarded, and its uncommitted leases re-queue. Keep
	// it a small multiple of the workers' HeartbeatEvery.
	DeadAfter time.Duration
	// Prefetch is the lease depth per worker (default 2): one shard
	// running plus Prefetch-1 queued behind it, so a worker never
	// idles waiting for the next grant. Queued-but-unstarted leases
	// are the work-stealing pool.
	Prefetch int
	// MaxAttempts bounds how often one shard may be leased before the
	// campaign aborts (default 4) — a deterministically failing shard
	// must not ping-pong across the fleet forever.
	MaxAttempts int
	// WriteTimeout bounds every frame write (default 30s).
	WriteTimeout time.Duration
	// Metrics receives the coordinator-side fabric counters and the
	// heartbeat-gap max-gauge (nil disables).
	Metrics *telemetry.Registry
	// Faults injects coordinator-side failures (duplicate lease
	// grants) for the test matrix (nil = none).
	Faults FaultInjector
	// Clock overrides the time source (tests; default telemetry.NowNs).
	Clock Clock
	// Logf receives coordinator status lines (nil = silent).
	Logf func(format string, args ...any)
}

type coordMetrics struct {
	workersJoined       *telemetry.Counter
	workersDead         *telemetry.Counter
	leasesGranted       *telemetry.Counter
	leasesRequeued      *telemetry.Counter
	leasesStolen        *telemetry.Counter
	leasesDuplicated    *telemetry.Counter
	shardsCommitted     *telemetry.Counter
	duplicatesDiscarded *telemetry.Counter
	recordsReceived     *telemetry.Counter
	recordsOrphaned     *telemetry.Counter
	heartbeatGap        *telemetry.MaxGauge
}

func newCoordMetrics(reg *telemetry.Registry) coordMetrics {
	return coordMetrics{
		workersJoined:       reg.Counter("fabric_workers_joined"),
		workersDead:         reg.Counter("fabric_workers_dead"),
		leasesGranted:       reg.Counter("fabric_leases_granted"),
		leasesRequeued:      reg.Counter("fabric_leases_requeued"),
		leasesStolen:        reg.Counter("fabric_leases_stolen"),
		leasesDuplicated:    reg.Counter("fabric_leases_duplicated"),
		shardsCommitted:     reg.Counter("fabric_shards_committed"),
		duplicatesDiscarded: reg.Counter("fabric_duplicates_discarded"),
		recordsReceived:     reg.Counter("fabric_records_received"),
		recordsOrphaned:     reg.Counter("fabric_records_orphaned"),
		heartbeatGap:        reg.MaxGauge("fabric_heartbeat_gap_ns"),
	}
}

// lease is one shard granted to one worker. Its buffer accumulates the
// shard's framed record lines and is only trusted once the Done frame
// commits it — a dead worker's lease buffers are discarded whole.
type lease struct {
	shard   int
	started bool
	buf     bytes.Buffer
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	conn     net.Conn
	fr       *framer
	name     string
	joined   int64 // join timestamp, for deterministic-ish victim order
	lastSeen int64 // ns; guarded by the coordinator mutex
	leases   map[int]*lease
	dead     bool
}

// Coordinator owns a networked campaign's shard lease state machine.
// Create with NewCoordinator, drive with Run.
type Coordinator struct {
	ln     net.Listener
	cfg    CoordinatorConfig
	clock  Clock
	faults FaultInjector
	m      coordMetrics

	mu        sync.Mutex
	pending   []int // shards awaiting a lease, grant order
	attempts  []int // per-shard lease count
	committed [][]byte
	remaining int
	workers   []*workerConn // join order
	closing   bool

	finished chan struct{} // all shards committed
	fatal    chan error    // unrecoverable campaign error (attempt budget)
}

// NewCoordinator wraps an open listener. The caller keeps ownership of
// nothing: Run closes the listener and every connection on return.
func NewCoordinator(ln net.Listener, cfg CoordinatorConfig) *Coordinator {
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 10 * time.Second
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = defaultClock
	}
	faults := cfg.Faults
	if faults == nil {
		faults = NopFaults{}
	}
	c := &Coordinator{
		ln:        ln,
		cfg:       cfg,
		clock:     clock,
		faults:    faults,
		m:         newCoordMetrics(cfg.Metrics),
		attempts:  make([]int, cfg.Shards),
		committed: make([][]byte, cfg.Shards),
		remaining: cfg.Shards,
		finished:  make(chan struct{}),
		fatal:     make(chan error, 1),
	}
	c.pending = make([]int, cfg.Shards)
	for i := range c.pending {
		c.pending[i] = i
	}
	return c
}

// Addr is the listener's bound address (for workers to dial).
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run accepts workers, leases shards, and blocks until every shard
// committed (returning the N complete record streams in shard order),
// the context is cancelled, or a shard exhausts its attempt budget.
// If Shards is zero it returns immediately.
func (c *Coordinator) Run(ctx context.Context) ([][]byte, error) {
	defer func() {
		c.mu.Lock()
		c.closing = true
		workers := slices.Clone(c.workers)
		c.mu.Unlock()
		c.ln.Close()
		for _, w := range workers {
			w.fr.send(FrameShutdown, nil)
			w.conn.Close()
		}
	}()
	if c.remaining == 0 {
		return c.committed, nil
	}

	// Heartbeat monitor: a worker whose last frame is older than
	// DeadAfter is dead even though its connection still looks open —
	// the stalled-worker case a broken stream never reports.
	monStop := make(chan struct{})
	defer close(monStop)
	go c.monitor(monStop)

	acceptErr := make(chan error, 1)
	go func() {
		for {
			conn, err := c.ln.Accept()
			if err != nil {
				c.mu.Lock()
				closing := c.closing
				c.mu.Unlock()
				if !closing {
					acceptErr <- err
				}
				return
			}
			go c.serve(conn)
		}
	}()

	select {
	case <-c.finished:
		return c.committed, nil
	case err := <-c.fatal:
		return nil, err
	case err := <-acceptErr:
		return nil, fmt.Errorf("fabric: accept: %w", err)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// monitor sweeps heartbeat gaps every quarter threshold.
func (c *Coordinator) monitor(stop <-chan struct{}) {
	tick := c.cfg.DeadAfter / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := c.clock()
		c.mu.Lock()
		var expired []*workerConn
		for _, w := range c.workers {
			gap := now - w.lastSeen
			c.m.heartbeatGap.Record(gap)
			if gap > c.cfg.DeadAfter.Nanoseconds() {
				expired = append(expired, w)
			}
		}
		c.mu.Unlock()
		for _, w := range expired {
			c.declareDead(w, fmt.Sprintf("heartbeat gap exceeded %s", c.cfg.DeadAfter))
		}
	}
}

// serve owns one worker connection: handshake, then the frame loop.
func (c *Coordinator) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	// The join must arrive promptly; afterwards silence is the
	// monitor's business, not the reader's.
	if err := conn.SetReadDeadline(time.Unix(0, c.clock()).Add(c.cfg.WriteTimeout)); err != nil {
		conn.Close()
		return
	}
	typ, payload, err := readFrame(br)
	if err != nil || typ != FrameJoin {
		conn.Close()
		return
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		conn.Close()
		return
	}
	// Coordinator-side frames never consult the fault injector: its
	// frame/record/heartbeat hooks model worker failures.
	w := &workerConn{
		conn:     conn,
		fr:       newFramer(conn, c.cfg.WriteTimeout, c.clock, NopFaults{}),
		name:     string(payload),
		joined:   c.clock(),
		lastSeen: c.clock(),
		leases:   make(map[int]*lease),
	}
	if err := w.fr.send(FrameHello, c.cfg.Hello); err != nil {
		conn.Close()
		return
	}

	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	c.m.workersJoined.Inc()
	c.logf("fabric: worker %q joined (%s)", w.name, conn.RemoteAddr())
	c.refill()

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			c.declareDead(w, fmt.Sprintf("stream broken: %v", err))
			return
		}
		now := c.clock()
		c.mu.Lock()
		if w.dead {
			// Frames racing the death verdict are void: the worker's
			// buffers are already discarded and its shards re-queued.
			c.mu.Unlock()
			return
		}
		c.m.heartbeatGap.Record(now - w.lastSeen)
		w.lastSeen = now
		switch typ {
		case FrameHeartbeat:
			c.mu.Unlock()
		case FrameStart:
			shard, _, derr := decodeShard(payload)
			if derr == nil {
				if l := w.leases[shard]; l != nil {
					l.started = true
				}
			}
			c.mu.Unlock()
		case FrameRecord:
			shard, line, derr := decodeShard(payload)
			if derr != nil {
				c.mu.Unlock()
				continue
			}
			if l := w.leases[shard]; l != nil {
				l.buf.Write(line)
				c.m.recordsReceived.Inc()
			} else {
				// A revoked or re-queued shard's stragglers: the lease
				// is gone, the bytes are void.
				c.m.recordsOrphaned.Inc()
			}
			c.mu.Unlock()
		case FrameDone:
			shard, _, derr := decodeShard(payload)
			if derr != nil {
				c.mu.Unlock()
				continue
			}
			c.commitLocked(w, shard)
			c.mu.Unlock()
			c.refill()
		case FrameFail:
			shard, msg, derr := decodeShard(payload)
			if derr != nil {
				c.mu.Unlock()
				continue
			}
			if l := w.leases[shard]; l != nil {
				delete(w.leases, shard)
				c.logf("fabric: worker %q failed shard %d: %s", w.name, shard, msg)
				c.requeueLocked(shard)
			}
			c.mu.Unlock()
			c.refill()
		default:
			c.mu.Unlock()
		}
	}
}

// commitLocked finalizes one shard stream. First complete copy wins;
// a duplicate lease's stream (double grant, steal race) is discarded.
func (c *Coordinator) commitLocked(w *workerConn, shard int) {
	l := w.leases[shard]
	if l == nil {
		return
	}
	delete(w.leases, shard)
	if shard >= len(c.committed) {
		return
	}
	if c.committed[shard] != nil {
		c.m.duplicatesDiscarded.Inc()
		c.logf("fabric: shard %d duplicate stream from %q discarded", shard, w.name)
		return
	}
	c.committed[shard] = l.buf.Bytes()
	c.remaining--
	c.m.shardsCommitted.Inc()
	c.logf("fabric: shard %d committed by %q (%d bytes, %d remaining)",
		shard, w.name, len(c.committed[shard]), c.remaining)
	if c.remaining == 0 {
		close(c.finished)
	}
}

// requeueLocked returns a shard to the pending queue, aborting the
// campaign when its attempt budget is exhausted.
func (c *Coordinator) requeueLocked(shard int) {
	if c.committed[shard] != nil {
		return // a duplicate copy already committed it
	}
	c.attempts[shard]++
	if c.attempts[shard] >= c.cfg.MaxAttempts {
		select {
		case c.fatal <- fmt.Errorf("fabric: shard %d failed %d times (attempt budget %d exhausted)",
			shard, c.attempts[shard], c.cfg.MaxAttempts):
		default:
		}
		return
	}
	c.pending = append(c.pending, shard)
	slices.Sort(c.pending)
	c.m.leasesRequeued.Inc()
}

// declareDead removes a worker: discard its partial shard buffers,
// re-queue its uncommitted leases, close its connection, and hand the
// re-queued work to the survivors.
func (c *Coordinator) declareDead(w *workerConn, cause string) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	if i := slices.Index(c.workers, w); i >= 0 {
		c.workers = slices.Delete(c.workers, i, i+1)
	}
	var lost []int
	for shard := range w.leases {
		lost = append(lost, shard)
	}
	slices.Sort(lost)
	for _, shard := range lost {
		delete(w.leases, shard) // the partial buffer dies with the lease
		c.requeueLocked(shard)
	}
	closing := c.closing
	c.mu.Unlock()
	c.m.workersDead.Inc()
	if !closing {
		c.logf("fabric: worker %q dead (%s); re-queued shards %v", w.name, cause, lost)
	}
	w.conn.Close()
	c.refill()
}

// refill pushes pending shards to workers with lease capacity, steals
// unstarted leases for idle workers when the queue runs dry, and
// honors the duplicate-grant fault. Grants are computed under the
// mutex but sent outside it: a worker stalled in TCP backpressure may
// hold up its own frames for WriteTimeout, never the state machine.
func (c *Coordinator) refill() {
	type sendOp struct {
		w     *workerConn
		typ   FrameType
		shard int
	}
	var ops []sendOp

	c.mu.Lock()
	grantLocked := func(w *workerConn, shard int, dup bool) {
		w.leases[shard] = &lease{shard: shard}
		ops = append(ops, sendOp{w, FrameGrant, shard})
		c.m.leasesGranted.Inc()
		if dup {
			c.m.leasesDuplicated.Inc()
		}
	}
	// Grant order is deterministic given the same worker/queue state:
	// workers in join order, shards in queue order.
	for _, w := range c.workers {
		for len(c.pending) > 0 && len(w.leases) < c.cfg.Prefetch {
			shard := c.pending[0]
			c.pending = c.pending[1:]
			grantLocked(w, shard, false)
			if c.faults.DuplicateGrant(shard) {
				// The double-lease fault: the same shard also lands on
				// the next worker over (if any), so two complete copies
				// race for the commit.
				for _, w2 := range c.workers {
					if w2 != w && w2.leases[shard] == nil {
						grantLocked(w2, shard, true)
						break
					}
				}
			}
		}
	}
	// Work-stealing: the queue is dry, so idle workers raid the
	// deepest backlog of granted-but-unstarted leases. The victim's
	// lease is discarded before the revoke is sent — if its Start
	// frame is already in flight, the duplicate-commit rule absorbs
	// the race.
	if len(c.pending) == 0 {
		for _, idle := range c.workers {
			if len(idle.leases) != 0 {
				continue
			}
			var victim *workerConn
			victimShard := -1
			for _, v := range c.workers {
				if v == idle || len(v.leases) < 2 {
					continue
				}
				var unstarted []int
				for shard, l := range v.leases {
					if !l.started {
						unstarted = append(unstarted, shard)
					}
				}
				slices.Sort(unstarted)
				if len(unstarted) == 0 {
					continue
				}
				if victim == nil || len(v.leases) > len(victim.leases) {
					victim, victimShard = v, unstarted[len(unstarted)-1]
				}
			}
			if victim == nil {
				continue
			}
			delete(victim.leases, victimShard)
			idle.leases[victimShard] = &lease{shard: victimShard}
			c.m.leasesStolen.Inc()
			c.m.leasesGranted.Inc()
			ops = append(ops,
				sendOp{victim, FrameRevoke, victimShard},
				sendOp{idle, FrameGrant, victimShard})
			c.logf("fabric: idle worker %q stole shard %d from %q", idle.name, victimShard, victim.name)
		}
	}
	c.mu.Unlock()

	for _, op := range ops {
		if err := op.w.fr.send(op.typ, shardPayload(op.shard, nil)); err != nil {
			c.declareDead(op.w, fmt.Sprintf("send %s: %v", op.typ, err))
		}
	}
}
