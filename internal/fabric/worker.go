package fabric

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// ErrWorkerKilled is returned by RunWorker when the fault injector
// killed the run mid-shard (FaultKill): the connection was severed
// abruptly, no Done frame was sent, and no reconnect is attempted —
// the in-process equivalent of kill -9. cmd/measure exits on it so a
// subprocess worker dies exactly like a killed one.
var ErrWorkerKilled = errors.New("fabric: worker killed by fault injector")

// ShardRunner executes one leased shard: it derives its configuration
// from the coordinator's hello payload, streams every record of shard
// `shard` into sink in wave order, and returns nil only when the
// shard's stream is complete. The runner must honor ctx cancellation —
// a revoked session cancels in-flight runs through the sink's write
// errors and the context.
type ShardRunner func(ctx context.Context, hello []byte, shard int, sink pipeline.RecordSink) error

// WorkerConfig tunes one fabric worker.
type WorkerConfig struct {
	// Addr is the coordinator's listen address.
	Addr string
	// Name identifies the worker in coordinator logs.
	Name string
	// HeartbeatEvery is the liveness beacon cadence (default 2s). Keep
	// it well under the coordinator's DeadAfter.
	HeartbeatEvery time.Duration
	// DialTimeout bounds one dial attempt (default 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds every frame write (default 30s) — a stalled
	// coordinator cannot wedge the worker forever.
	WriteTimeout time.Duration
	// RetrySeed seeds the deterministic dial/reconnect backoff;
	// derive it from (campaign seed, worker identity) so a fleet's
	// retry schedules are reproducible yet mutually de-synchronized.
	RetrySeed int64
	// RetryBase/RetryCap shape the backoff (defaults
	// DefaultBackoffBase/DefaultBackoffCap).
	RetryBase, RetryCap time.Duration
	// MaxDials bounds consecutive failed dial attempts before the
	// worker gives up (default 8).
	MaxDials int
	// Metrics receives the worker-side fabric counters (nil disables).
	Metrics *telemetry.Registry
	// Faults injects failures for the test matrix (nil = none).
	Faults FaultInjector
	// Clock overrides the time source (tests; default telemetry.NowNs).
	Clock Clock
	// Logf receives worker status lines (nil = silent).
	Logf func(format string, args ...any)
}

func (cfg *WorkerConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

type workerMetrics struct {
	dialRetries *telemetry.Counter
	reconnects  *telemetry.Counter
	grants      *telemetry.Counter
	records     *telemetry.Counter
	shardsDone  *telemetry.Counter
	shardsFail  *telemetry.Counter
}

func newWorkerMetrics(reg *telemetry.Registry) workerMetrics {
	return workerMetrics{
		dialRetries: reg.Counter("fabric_dial_retries"),
		reconnects:  reg.Counter("fabric_reconnects"),
		grants:      reg.Counter("fabric_grants"),
		records:     reg.Counter("fabric_records_sent"),
		shardsDone:  reg.Counter("fabric_shards_done"),
		shardsFail:  reg.Counter("fabric_shards_failed"),
	}
}

// RunWorker dials the coordinator and executes leased shards until the
// coordinator sends Shutdown (returns nil), the context is cancelled,
// the fault injector kills the run (ErrWorkerKilled), or the retry
// budget is exhausted. Connection loss mid-session follows the seeded
// backoff and reconnects; a reconnected worker joins as a fresh
// session and the coordinator re-leases work to it.
func RunWorker(ctx context.Context, cfg WorkerConfig, run ShardRunner) error {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.MaxDials <= 0 {
		cfg.MaxDials = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = defaultClock
	}
	if cfg.Faults == nil {
		cfg.Faults = NopFaults{}
	}
	m := newWorkerMetrics(cfg.Metrics)
	bo := NewBackoff(cfg.RetrySeed, cfg.RetryBase, cfg.RetryCap)

	dialer := net.Dialer{Timeout: cfg.DialTimeout}
	dialFails := 0
	sessions := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := dialer.DialContext(ctx, "tcp", cfg.Addr)
		if err != nil {
			dialFails++
			m.dialRetries.Inc()
			if dialFails >= cfg.MaxDials {
				return fmt.Errorf("fabric: worker %s: %d consecutive dial failures: %w",
					cfg.Name, dialFails, err)
			}
			if serr := sleepCtx(ctx, bo.Next()); serr != nil {
				return serr
			}
			continue
		}
		dialFails = 0
		sessions++
		if sessions > 1 {
			m.reconnects.Inc()
		}
		done, err := runSession(ctx, &cfg, conn, run, m, bo)
		if done {
			return nil
		}
		if errors.Is(err, ErrWorkerKilled) || ctx.Err() != nil {
			if ctx.Err() != nil && !errors.Is(err, ErrWorkerKilled) {
				return ctx.Err()
			}
			return err
		}
		cfg.logf("fabric worker %s: session lost (%v); reconnecting", cfg.Name, err)
		if serr := sleepCtx(ctx, bo.Next()); serr != nil {
			return serr
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// session is the mutable state of one worker connection: the granted
// lease queue and the terminal flags, guarded by mu and signalled via
// wake.
type session struct {
	mu       sync.Mutex
	queue    []int // granted, not yet started, FIFO
	shutdown bool
	readErr  error
	wake     chan struct{}
}

func (s *session) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// runSession drives one connection lifetime. done=true means the
// coordinator sent Shutdown and the worker should exit cleanly.
func runSession(ctx context.Context, cfg *WorkerConfig, conn net.Conn, run ShardRunner, m workerMetrics, bo *Backoff) (done bool, err error) {
	defer conn.Close()
	fr := newFramer(conn, cfg.WriteTimeout, cfg.Clock, cfg.Faults)
	if err := fr.send(FrameJoin, []byte(cfg.Name)); err != nil {
		return false, err
	}
	br := bufio.NewReader(conn)
	// The hello must arrive promptly; afterwards reads block until the
	// coordinator has something to say.
	if err := conn.SetReadDeadline(time.Unix(0, cfg.Clock()).Add(cfg.WriteTimeout)); err != nil {
		return false, err
	}
	typ, hello, err := readFrame(br)
	if err != nil {
		return false, fmt.Errorf("fabric: awaiting hello: %w", err)
	}
	if typ != FrameHello {
		return false, fmt.Errorf("fabric: expected hello, got %s", typ)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return false, err
	}
	// The session is established: the next outage restarts the backoff
	// from its base (the exponent rewinds; the jitter stream does not).
	bo.Reset()
	cfg.logf("fabric worker %s: joined %s", cfg.Name, cfg.Addr)

	st := &session{wake: make(chan struct{}, 1)}

	// Reader: grants, revokes, shutdown. Any read error (including the
	// coordinator closing a dead worker's connection) collapses the
	// session and unblocks wedged senders.
	go func() {
		for {
			typ, payload, rerr := readFrame(br)
			if rerr != nil {
				st.mu.Lock()
				if st.readErr == nil {
					st.readErr = rerr
				}
				st.mu.Unlock()
				fr.markDead()
				st.kick()
				return
			}
			switch typ {
			case FrameGrant:
				shard, _, derr := decodeShard(payload)
				if derr != nil {
					continue
				}
				m.grants.Inc()
				st.mu.Lock()
				st.queue = append(st.queue, shard)
				st.mu.Unlock()
				st.kick()
			case FrameRevoke:
				shard, _, derr := decodeShard(payload)
				if derr != nil {
					continue
				}
				st.mu.Lock()
				if i := slices.Index(st.queue, shard); i >= 0 {
					st.queue = slices.Delete(st.queue, i, i+1)
				}
				st.mu.Unlock()
			case FrameShutdown:
				st.mu.Lock()
				st.shutdown = true
				st.mu.Unlock()
				st.kick()
				return
			}
		}
	}()

	// Heartbeat beacon. Send errors are left to the reader/run loop to
	// surface; a wedge fault silences the beacon without closing the
	// connection.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(cfg.HeartbeatEvery)
		defer t.Stop()
		for n := 1; ; n++ {
			select {
			case <-hbStop:
				return
			case <-t.C:
			}
			switch cfg.Faults.HeartbeatDue(n) {
			case FaultWedge:
				fr.wedge()
				continue
			case FaultSever:
				conn.Close()
				return
			case FaultKill:
				conn.Close()
				return
			}
			if err := fr.send(FrameHeartbeat, nil); err != nil {
				return
			}
		}
	}()

	for {
		st.mu.Lock()
		down, rerr := st.shutdown, st.readErr
		var shard int
		hasShard := false
		if !down && len(st.queue) > 0 {
			shard, st.queue = st.queue[0], st.queue[1:]
			hasShard = true
		}
		st.mu.Unlock()

		if !hasShard {
			// Shutdown outranks queued leases: the coordinator only says
			// shutdown once every shard is committed, so leftover grants
			// (duplicate copies, steal races) are void work.
			if down {
				return true, nil
			}
			if rerr != nil {
				return false, rerr
			}
			select {
			case <-st.wake:
			case <-ctx.Done():
				return false, ctx.Err()
			}
			continue
		}

		if err := fr.send(FrameStart, shardPayload(shard, nil)); err != nil {
			return false, err
		}
		cfg.logf("fabric worker %s: running shard %d", cfg.Name, shard)
		sink := newNetSink(fr, shard, cfg.Faults, m.records)
		rerr = run(ctx, hello, shard, sink)
		switch {
		case rerr == nil:
			if err := fr.send(FrameDone, shardPayload(shard, nil)); err != nil {
				return false, err
			}
			m.shardsDone.Inc()
		case errors.Is(rerr, ErrWorkerKilled):
			return false, rerr
		case errors.Is(rerr, ErrSessionSevered) || ctx.Err() != nil:
			return false, rerr
		default:
			// A shard-level failure the connection survived: report it
			// so the coordinator re-queues within its attempt budget.
			m.shardsFail.Inc()
			if err := fr.send(FrameFail, shardPayload(shard, []byte(rerr.Error()))); err != nil {
				return false, err
			}
		}
	}
}
