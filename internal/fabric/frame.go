// Package fabric is the campaign's fault-tolerant distributed shard
// runtime: a network transport that replaces the file/stdout shard
// exchange of DESIGN.md §5 with length-prefixed framed record streams
// behind pipeline.RecordSink, and a lease-based coordinator/worker
// protocol that survives worker loss without giving up the
// byte-identical merge guarantee.
//
// The model (DESIGN.md §8): the coordinator owns the campaign's N
// deterministic shards and leases them to connected workers over one
// TCP connection per worker. A worker streams each leased shard's
// records as framed NDJSON; the coordinator buffers them per (worker,
// shard) and commits a shard only when its Done frame arrives — so a
// worker that dies mid-shard (broken stream or missed heartbeats)
// loses exactly its uncommitted partial buffers, and the coordinator
// re-queues those shards to other workers. Shard execution is a pure
// function of (seed, plan, shard index), so a re-run on any machine
// reproduces the identical record stream and the merged campaign stays
// byte-identical to a single-process run.
package fabric

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// FrameType tags one length-prefixed protocol frame.
type FrameType uint8

// Protocol frames. Worker→coordinator frames carry the shard index in
// the first 4 payload bytes where they concern one shard.
const (
	// FrameJoin (worker→coord) opens a session; payload is the worker
	// name (informational, used in logs and lease accounting).
	FrameJoin FrameType = 1
	// FrameHello (coord→worker) answers a Join; payload is the
	// coordinator's opaque campaign payload (cmd/measure: CampaignSpec
	// JSON) — workers derive their entire configuration from it, so a
	// fleet cannot diverge on flags.
	FrameHello FrameType = 2
	// FrameGrant (coord→worker) leases one shard; payload is the shard
	// index.
	FrameGrant FrameType = 3
	// FrameRevoke (coord→worker) takes back a granted-but-unstarted
	// lease (work-stealing); payload is the shard index. A worker that
	// already started the shard ignores the revoke — the coordinator
	// commits whichever complete copy arrives first.
	FrameRevoke FrameType = 4
	// FrameShutdown (coord→worker) ends the session: every shard is
	// committed, the worker should exit cleanly.
	FrameShutdown FrameType = 5
	// FrameStart (worker→coord) marks a lease as started; payload is
	// the shard index. Started leases are never stolen.
	FrameStart FrameType = 6
	// FrameRecord (worker→coord) carries one NDJSON record line of a
	// shard's stream; payload is shard index + line bytes.
	FrameRecord FrameType = 7
	// FrameDone (worker→coord) commits a shard: its buffered stream is
	// complete; payload is the shard index.
	FrameDone FrameType = 8
	// FrameFail (worker→coord) reports a shard run error; payload is
	// shard index + error text. The coordinator re-queues the shard
	// (bounded by MaxAttempts).
	FrameFail FrameType = 9
	// FrameHeartbeat (worker→coord) is the liveness beacon; any frame
	// refreshes the worker's heartbeat clock, this one exists so idle
	// or long-grabbing workers stay visibly alive.
	FrameHeartbeat FrameType = 10
)

func (t FrameType) String() string {
	switch t {
	case FrameJoin:
		return "join"
	case FrameHello:
		return "hello"
	case FrameGrant:
		return "grant"
	case FrameRevoke:
		return "revoke"
	case FrameShutdown:
		return "shutdown"
	case FrameStart:
		return "start"
	case FrameRecord:
		return "record"
	case FrameDone:
		return "done"
	case FrameFail:
		return "fail"
	case FrameHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// maxFramePayload bounds one frame (a record line plus header slack);
// dataset.Decoder tolerates lines up to 16 MiB, frames match it.
const maxFramePayload = 16 << 20

// frameHeaderLen is the wire header: uint32 payload length + uint8 type.
const frameHeaderLen = 5

var (
	// errFrameTooLarge aborts a connection whose peer framed more than
	// maxFramePayload bytes — a corrupt length prefix, not a record.
	errFrameTooLarge = errors.New("fabric: frame exceeds payload bound")
	// ErrSessionSevered is returned by worker I/O after a fault
	// injector dropped the connection.
	ErrSessionSevered = errors.New("fabric: connection severed by fault injector")
)

// Clock is the fabric's time source in nanoseconds. The default is
// telemetry.NowNs — the repository's one sanctioned wall-clock read —
// and tests may inject a fake. Clock readings drive transport deadlines
// and heartbeat-gap decisions only; they never reach record bytes.
type Clock func() int64

// framer serializes frame writes on one connection: one mutex, a write
// deadline per frame (bounded writes — a stalled peer cannot wedge the
// writer forever), a frame counter feeding the fault injector, and a
// wedge mode that simulates a stalled-but-connected peer.
type framer struct {
	conn         net.Conn
	writeTimeout time.Duration
	clock        Clock
	faults       FaultInjector

	mu     sync.Mutex
	n      int  // frames written
	wedged bool // fault-injected stall: no further writes
	dead   chan struct{}
}

func newFramer(conn net.Conn, writeTimeout time.Duration, clock Clock, faults FaultInjector) *framer {
	if clock == nil {
		clock = defaultClock
	}
	if faults == nil {
		faults = NopFaults{}
	}
	return &framer{
		conn:         conn,
		writeTimeout: writeTimeout,
		clock:        clock,
		faults:       faults,
		dead:         make(chan struct{}),
	}
}

// markDead unblocks wedged senders; called once by the connection's
// read loop when the peer goes away.
func (f *framer) markDead() {
	f.mu.Lock()
	select {
	case <-f.dead:
	default:
		close(f.dead)
	}
	f.mu.Unlock()
}

// send writes one frame under the write deadline. In wedge mode it
// blocks until the connection dies — the stalled-worker simulation —
// and then reports the severed session.
func (f *framer) send(typ FrameType, payload []byte) error {
	f.mu.Lock()
	if f.wedged {
		f.mu.Unlock()
		<-f.dead
		return ErrSessionSevered
	}
	if f.writeTimeout > 0 {
		deadline := time.Unix(0, f.clock()).Add(f.writeTimeout)
		if err := f.conn.SetWriteDeadline(deadline); err != nil {
			f.mu.Unlock()
			return fmt.Errorf("fabric: write deadline: %w", err)
		}
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = uint8(typ)
	_, err := f.conn.Write(hdr[:])
	if err == nil && len(payload) > 0 {
		_, err = f.conn.Write(payload)
	}
	if err != nil {
		f.mu.Unlock()
		return fmt.Errorf("fabric: send %s: %w", typ, err)
	}
	f.n++
	action := f.faults.FrameWritten(f.n)
	f.mu.Unlock()
	switch action {
	case FaultSever:
		f.conn.Close()
		return ErrSessionSevered
	case FaultWedge:
		f.wedge()
	}
	return nil
}

// wedge switches the framer into stall mode: subsequent sends block
// until the peer closes the connection.
func (f *framer) wedge() {
	f.mu.Lock()
	f.wedged = true
	f.mu.Unlock()
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	typ := FrameType(hdr[4])
	if n > maxFramePayload {
		return 0, nil, errFrameTooLarge
	}
	if n == 0 {
		return typ, nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("fabric: truncated %s frame: %w", typ, err)
	}
	return typ, payload, nil
}

// shardPayload encodes a shard index, optionally followed by extra
// bytes (record lines, error text).
func shardPayload(shard int, rest []byte) []byte {
	p := make([]byte, 4+len(rest))
	binary.BigEndian.PutUint32(p[:4], uint32(shard))
	copy(p[4:], rest)
	return p
}

// decodeShard splits a shard-tagged payload.
func decodeShard(payload []byte) (int, []byte, error) {
	if len(payload) < 4 {
		return 0, nil, errors.New("fabric: short shard payload")
	}
	return int(binary.BigEndian.Uint32(payload[:4])), payload[4:], nil
}

// CampaignSpec is the coordinator-authored description of a networked
// campaign, delivered verbatim to every worker in the Hello frame —
// the single source of truth a fleet configures itself from. It
// carries exactly the CampaignConfig fields that shape record bytes
// (plus the fleet's heartbeat cadence); observability and analysis
// knobs stay per-process.
type CampaignSpec struct {
	Seed         int64   `json:"seed"`
	Waves        []int   `json:"waves,omitempty"`
	TestKeySizes bool    `json:"test_key_sizes,omitempty"`
	NoiseProb    float64 `json:"noise_prob"`
	MaxHosts     int     `json:"max_hosts"`
	GrabWorkers  int     `json:"grab_workers"`
	QueueSize    int     `json:"queue_size"`
	CryptoCache  int     `json:"crypto_cache"`
	// ChaosProfile/ChaosSeed select the adversarial host model; record
	// bytes depend on them, so every worker must agree (empty = polite
	// internet, seed 0 = derive from Seed).
	ChaosProfile string `json:"chaos_profile,omitempty"`
	ChaosSeed    int64  `json:"chaos_seed,omitempty"`
	// Delta switches workers to delta-wave mode: unchanged hosts are
	// fingerprint-skipped and their prior records cloned. All workers
	// must agree — a delta worker's stream is only byte-identical to a
	// full worker's when both plan the same skips.
	Delta bool `json:"delta,omitempty"`
	// Shards is the campaign's total shard count — every worker must
	// slice the probe space the same N ways for the merge to be exact.
	Shards int `json:"shards"`
	// HeartbeatMs is the worker heartbeat cadence the coordinator
	// expects (its death threshold is a multiple of it).
	HeartbeatMs int64 `json:"heartbeat_ms"`
}

// Encode serializes the spec for the Hello frame.
func (s *CampaignSpec) Encode() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("fabric: encode spec: %w", err)
	}
	return b, nil
}

// DecodeSpec parses a Hello payload.
func DecodeSpec(b []byte) (*CampaignSpec, error) {
	s := new(CampaignSpec)
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("fabric: decode spec: %w", err)
	}
	return s, nil
}
