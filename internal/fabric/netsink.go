package fabric

import (
	"encoding/json"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// NetSink is the dialer-side pipeline.RecordSink of one leased shard:
// every Put frames the record as one NDJSON line tagged with the shard
// index and writes it under the framer's bounded write deadline. The
// coordinator buffers the lines verbatim per (worker, shard) and — only
// after the shard's Done frame — replays them through dataset.Decoder
// into pipeline.MergeShardStreams, so the network path feeds exactly
// the decoder/merge machinery the file-based exchange used.
//
// A NetSink does not own the connection (the worker session does);
// Close is a no-op kept for the RecordSink contract. Put is
// single-goroutine per the RecordSink contract — one shard runs on one
// goroutine — while the framer's own mutex serializes it against the
// session's heartbeat frames.
type NetSink struct {
	fr      *framer
	shard   int
	n       int // records streamed on this shard
	faults  FaultInjector
	records *telemetry.Counter
}

func newNetSink(fr *framer, shard int, faults FaultInjector, records *telemetry.Counter) *NetSink {
	if faults == nil {
		faults = NopFaults{}
	}
	return &NetSink{fr: fr, shard: shard, faults: faults, records: records}
}

// Shard reports which shard this sink streams.
func (s *NetSink) Shard() int { return s.shard }

// Put frames one record. After the frame is on the wire the fault
// injector may sever the connection, wedge the session, or kill the
// worker run (ErrWorkerKilled) — the failure points the test matrix
// drives.
func (s *NetSink) Put(rec *dataset.HostRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fabric: encode record: %w", err)
	}
	line = append(line, '\n')
	if err := s.fr.send(FrameRecord, shardPayload(s.shard, line)); err != nil {
		return err
	}
	s.n++
	s.records.Inc()
	switch s.faults.RecordPut(s.shard, s.n) {
	case FaultSever:
		s.fr.conn.Close()
		return ErrSessionSevered
	case FaultWedge:
		s.fr.wedge()
	case FaultKill:
		s.fr.conn.Close()
		return ErrWorkerKilled
	}
	return nil
}

// Close is a no-op: the worker session owns the connection and sends
// the shard's Done/Fail frame itself.
func (s *NetSink) Close() error { return nil }
