package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

const helloPayload = "fabric-test-hello"

// testRecords is the deterministic record stream of one shard: n
// records across waves of three, addresses unique per (shard, index).
func testRecords(shard, n int) []*dataset.HostRecord {
	recs := make([]*dataset.HostRecord, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, &dataset.HostRecord{
			Wave:         i / 3,
			Date:         time.Unix(0, int64(shard)*1e9+int64(i)).UTC(),
			Address:      fmt.Sprintf("10.%d.0.%d:4840", shard, i),
			Via:          "portscan",
			ReachedOPCUA: true,
		})
	}
	return recs
}

// wantStream is the exact NDJSON byte stream a committed shard must
// carry: the byte-identity oracle for every fault scenario.
func wantStream(t *testing.T, shard, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range testRecords(shard, n) {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// testRunner emits testRecords(shard, n) with an optional per-record
// delay, propagating sink errors (the fault injectors surface there).
func testRunner(n int, delay time.Duration) ShardRunner {
	return func(ctx context.Context, hello []byte, shard int, sink pipeline.RecordSink) error {
		if string(hello) != helloPayload {
			return fmt.Errorf("bad hello payload %q", hello)
		}
		for _, rec := range testRecords(shard, n) {
			if delay > 0 {
				if err := sleepCtx(ctx, delay); err != nil {
					return err
				}
			}
			if err := sink.Put(rec); err != nil {
				return err
			}
		}
		return sink.Close()
	}
}

// fleet runs one coordinator plus workers to completion and collects
// every side's outcome.
type fleet struct {
	streams  [][]byte
	runErr   error
	coordReg *telemetry.Registry
	wRegs    []*telemetry.Registry
	wErrs    []error
}

// runFleet wires cfg/worker pairs over loopback TCP. Worker configs
// get their Addr, Name, Metrics, and timing defaults filled in; nil
// entries in runners fall back to run.
func runFleet(t *testing.T, ccfg CoordinatorConfig, workerFaults []FaultInjector, run ShardRunner) *fleet {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if ccfg.Hello == nil {
		ccfg.Hello = []byte(helloPayload)
	}
	if ccfg.Metrics == nil {
		ccfg.Metrics = telemetry.New()
	}
	ccfg.Logf = t.Logf
	coord := NewCoordinator(ln, ccfg)

	fl := &fleet{
		coordReg: ccfg.Metrics,
		wRegs:    make([]*telemetry.Registry, len(workerFaults)),
		wErrs:    make([]error, len(workerFaults)),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i, faults := range workerFaults {
		reg := telemetry.New()
		fl.wRegs[i] = reg
		cfg := WorkerConfig{
			Addr:           coord.Addr().String(),
			Name:           fmt.Sprintf("w%d", i),
			HeartbeatEvery: 25 * time.Millisecond,
			DialTimeout:    5 * time.Second,
			WriteTimeout:   5 * time.Second,
			RetrySeed:      int64(1000 + i),
			RetryBase:      5 * time.Millisecond,
			RetryCap:       50 * time.Millisecond,
			MaxDials:       5,
			Metrics:        reg,
			Faults:         faults,
			Logf:           t.Logf,
		}
		wg.Add(1)
		go func(i int, cfg WorkerConfig) {
			defer wg.Done()
			fl.wErrs[i] = RunWorker(ctx, cfg, run)
		}(i, cfg)
	}

	fl.streams, fl.runErr = coord.Run(ctx)

	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(30 * time.Second):
		t.Fatal("workers did not exit after coordinator shutdown")
	}
	return fl
}

// checkStreams asserts every committed shard stream is byte-identical
// to the deterministic re-run — the invariant every fault recovery
// must preserve.
func (fl *fleet) checkStreams(t *testing.T, shards, recs int) {
	t.Helper()
	if fl.runErr != nil {
		t.Fatalf("coordinator: %v", fl.runErr)
	}
	if len(fl.streams) != shards {
		t.Fatalf("got %d streams, want %d", len(fl.streams), shards)
	}
	for shard, got := range fl.streams {
		if want := wantStream(t, shard, recs); !bytes.Equal(got, want) {
			t.Errorf("shard %d stream diverged:\n got %d bytes: %.120q\nwant %d bytes: %.120q",
				shard, len(got), got, len(want), want)
		}
	}
}

func counter(reg *telemetry.Registry, name string) uint64 {
	return reg.Counter(name).Load()
}

func TestFabricCommitsAllShards(t *testing.T) {
	const shards, recs = 8, 5
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second},
		[]FaultInjector{nil, nil, nil},
		testRunner(recs, 0))
	fl.checkStreams(t, shards, recs)
	if got := counter(fl.coordReg, "fabric_shards_committed"); got != shards {
		t.Errorf("fabric_shards_committed = %d, want %d", got, shards)
	}
	if got := counter(fl.coordReg, "fabric_leases_granted"); got < shards {
		t.Errorf("fabric_leases_granted = %d, want >= %d", got, shards)
	}
	var done uint64
	for _, reg := range fl.wRegs {
		done += counter(reg, "fabric_shards_done")
	}
	if done < shards {
		t.Errorf("workers report %d shards done, want >= %d", done, shards)
	}
	for i, err := range fl.wErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestFabricMergeFromNetworkStreams replays committed network streams
// through the exact decoder/merge machinery the file-based exchange
// uses, proving the transport swap is invisible to the pipeline.
func TestFabricMergeFromNetworkStreams(t *testing.T) {
	const shards, recs = 4, 6
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second},
		[]FaultInjector{nil, nil},
		testRunner(recs, 0))
	fl.checkStreams(t, shards, recs)

	decs := make([]*dataset.Decoder, shards)
	for i, stream := range fl.streams {
		decs[i] = dataset.NewDecoder(bytes.NewReader(stream))
	}
	var sink pipeline.SliceSink
	if err := pipeline.MergeShardStreams(&sink, decs...); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got, want := len(sink.Records), shards*recs; got != want {
		t.Fatalf("merged %d records, want %d", got, want)
	}
	for i := 1; i < len(sink.Records); i++ {
		if sink.Records[i].Wave < sink.Records[i-1].Wave {
			t.Fatalf("merge broke wave order at %d: wave %d after %d",
				i, sink.Records[i].Wave, sink.Records[i-1].Wave)
		}
	}
}

// TestFabricWorkerKillRequeues kills one worker mid-shard: its partial
// buffers must be discarded, its shards re-queued, and the survivor's
// re-run must land byte-identical streams.
func TestFabricWorkerKillRequeues(t *testing.T) {
	const shards, recs = 4, 6
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second},
		[]FaultInjector{&KillAfterRecords{N: 2}, nil},
		testRunner(recs, 2*time.Millisecond))
	fl.checkStreams(t, shards, recs)
	if !errors.Is(fl.wErrs[0], ErrWorkerKilled) {
		t.Errorf("killed worker returned %v, want ErrWorkerKilled", fl.wErrs[0])
	}
	if err := fl.wErrs[1]; err != nil {
		t.Errorf("surviving worker: %v", err)
	}
	if got := counter(fl.coordReg, "fabric_workers_dead"); got < 1 {
		t.Errorf("fabric_workers_dead = %d, want >= 1", got)
	}
	if got := counter(fl.coordReg, "fabric_leases_requeued"); got < 1 {
		t.Errorf("fabric_leases_requeued = %d, want >= 1", got)
	}
}

// TestFabricHeartbeatStallLeaseExpiry wedges one worker mid-shard with
// the connection held open: only the heartbeat deadline can notice.
// The lease must expire, the shard re-queue, and the campaign finish
// byte-identical.
func TestFabricHeartbeatStallLeaseExpiry(t *testing.T) {
	const shards, recs = 4, 6
	deadAfter := 400 * time.Millisecond
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: deadAfter},
		[]FaultInjector{&StallAfterRecords{N: 2}, nil},
		testRunner(recs, 2*time.Millisecond))
	fl.checkStreams(t, shards, recs)
	if got := counter(fl.coordReg, "fabric_workers_dead"); got < 1 {
		t.Errorf("fabric_workers_dead = %d, want >= 1 (lease expiry)", got)
	}
	if got := counter(fl.coordReg, "fabric_leases_requeued"); got < 1 {
		t.Errorf("fabric_leases_requeued = %d, want >= 1", got)
	}
	if gap := fl.coordReg.MaxGauge("fabric_heartbeat_gap_ns").Load(); gap <= deadAfter.Nanoseconds() {
		t.Errorf("fabric_heartbeat_gap_ns = %d, want > %d (the stall must be visible)",
			gap, deadAfter.Nanoseconds())
	}
}

// TestFabricReconnectAfterDrop severs the worker's only connection
// mid-stream; the seeded backoff must reconnect it and the re-run must
// restore byte-identity.
func TestFabricReconnectAfterDrop(t *testing.T) {
	const shards, recs = 3, 6
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second},
		[]FaultInjector{&DropAfterFrames{N: 5}},
		testRunner(recs, time.Millisecond))
	fl.checkStreams(t, shards, recs)
	if err := fl.wErrs[0]; err != nil {
		t.Errorf("worker after reconnect: %v", err)
	}
	if got := counter(fl.wRegs[0], "fabric_reconnects"); got < 1 {
		t.Errorf("fabric_reconnects = %d, want >= 1", got)
	}
	if got := counter(fl.coordReg, "fabric_leases_requeued"); got < 1 {
		t.Errorf("fabric_leases_requeued = %d, want >= 1", got)
	}
}

// TestFabricDuplicateGrantDiscarded double-leases shards; exactly one
// complete copy may commit, the rest are discarded, and the committed
// bytes stay identical.
func TestFabricDuplicateGrantDiscarded(t *testing.T) {
	const shards, recs = 6, 6
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second, Faults: DuplicateGrants{}},
		[]FaultInjector{nil, nil},
		testRunner(recs, 2*time.Millisecond))
	fl.checkStreams(t, shards, recs)
	if got := counter(fl.coordReg, "fabric_leases_duplicated"); got < 1 {
		t.Errorf("fabric_leases_duplicated = %d, want >= 1", got)
	}
	if got := counter(fl.coordReg, "fabric_duplicates_discarded"); got < 1 {
		t.Errorf("fabric_duplicates_discarded = %d, want >= 1", got)
	}
	if got := counter(fl.coordReg, "fabric_shards_committed"); got != shards {
		t.Errorf("fabric_shards_committed = %d, want exactly %d", got, shards)
	}
}

// TestFabricWorkSteal front-loads every lease onto the first worker;
// the idle second worker must steal unstarted leases instead of
// watching the straggler drain its backlog.
func TestFabricWorkSteal(t *testing.T) {
	const shards, recs = 6, 6
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second, Prefetch: shards},
		[]FaultInjector{nil, nil},
		testRunner(recs, 3*time.Millisecond))
	fl.checkStreams(t, shards, recs)
	if got := counter(fl.coordReg, "fabric_leases_stolen"); got < 1 {
		t.Errorf("fabric_leases_stolen = %d, want >= 1", got)
	}
}

// TestFabricShardFailureRequeues reports a transient shard error via
// the Fail frame; the shard must re-queue and succeed on retry.
func TestFabricShardFailureRequeues(t *testing.T) {
	const shards, recs = 3, 4
	var failed atomic.Int64
	inner := testRunner(recs, 0)
	run := func(ctx context.Context, hello []byte, shard int, sink pipeline.RecordSink) error {
		if shard == 1 && failed.Add(1) == 1 {
			return errors.New("transient shard failure")
		}
		return inner(ctx, hello, shard, sink)
	}
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second},
		[]FaultInjector{nil},
		run)
	fl.checkStreams(t, shards, recs)
	if got := counter(fl.coordReg, "fabric_leases_requeued"); got < 1 {
		t.Errorf("fabric_leases_requeued = %d, want >= 1", got)
	}
	if got := counter(fl.wRegs[0], "fabric_shards_failed"); got != 1 {
		t.Errorf("fabric_shards_failed = %d, want 1", got)
	}
}

// TestFabricAttemptBudgetAborts pins the ping-pong bound: a shard that
// fails deterministically must abort the campaign, not circulate
// forever.
func TestFabricAttemptBudgetAborts(t *testing.T) {
	const shards, recs = 2, 3
	inner := testRunner(recs, 0)
	run := func(ctx context.Context, hello []byte, shard int, sink pipeline.RecordSink) error {
		if shard == 0 {
			return errors.New("poisoned shard")
		}
		return inner(ctx, hello, shard, sink)
	}
	fl := runFleet(t,
		CoordinatorConfig{Shards: shards, DeadAfter: 2 * time.Second, MaxAttempts: 2},
		[]FaultInjector{nil},
		run)
	if fl.runErr == nil {
		t.Fatal("coordinator succeeded despite a deterministically failing shard")
	}
	if !strings.Contains(fl.runErr.Error(), "attempt budget") {
		t.Errorf("error %q does not name the attempt budget", fl.runErr)
	}
}

// TestFabricDialRetryBudget pins the give-up path: a coordinator that
// never answers exhausts MaxDials over the seeded backoff.
func TestFabricDialRetryBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reg := telemetry.New()
	err = RunWorker(context.Background(), WorkerConfig{
		Addr:      addr,
		Name:      "orphan",
		RetrySeed: 7,
		RetryBase: 2 * time.Millisecond,
		RetryCap:  10 * time.Millisecond,
		MaxDials:  3,
		Metrics:   reg,
	}, testRunner(1, 0))
	if err == nil {
		t.Fatal("RunWorker succeeded with no coordinator")
	}
	if !strings.Contains(err.Error(), "consecutive dial failures") {
		t.Errorf("error %q does not report the dial budget", err)
	}
	if got := counter(reg, "fabric_dial_retries"); got != 3 {
		t.Errorf("fabric_dial_retries = %d, want 3", got)
	}
}

// TestCampaignSpecRoundTrip pins the Hello payload codec.
func TestCampaignSpecRoundTrip(t *testing.T) {
	spec := &CampaignSpec{
		Seed: 2020, Waves: []int{6, 7}, TestKeySizes: true,
		NoiseProb: 1e-5, MaxHosts: 60, GrabWorkers: 8,
		QueueSize: 32, CryptoCache: 128, ChaosProfile: "mixed", ChaosSeed: 7,
		Delta: true, Shards: 5, HeartbeatMs: 2000,
	}
	b, err := spec.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSpec(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", spec) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, spec)
	}
}
