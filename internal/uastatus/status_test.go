package uastatus

import (
	"testing"
	"testing/quick"
)

func TestSeverityClasses(t *testing.T) {
	if !Good.IsGood() || Good.IsBad() || Good.IsUncertain() {
		t.Error("Good severity wrong")
	}
	for _, c := range []Code{BadTimeout, BadSecurityChecksFailed, BadTcpMessageTooLarge} {
		if !c.IsBad() || c.IsGood() {
			t.Errorf("%v severity wrong", c)
		}
	}
	if !UncertainInitialValue.IsUncertain() {
		t.Error("uncertain severity wrong")
	}
}

func TestSeverityPartitionProperty(t *testing.T) {
	// Every code belongs to at most one of good/uncertain/bad, and codes
	// with the 0b11 severity prefix are classified bad by convention of
	// the mask check (they are reserved, never both bad and uncertain).
	f := func(v uint32) bool {
		c := Code(v)
		good, unc, bad := c.IsGood(), c.IsUncertain(), c.IsBad()
		n := 0
		for _, x := range []bool{good, unc, bad} {
			if x {
				n++
			}
		}
		return n <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamesCoverSubcode(t *testing.T) {
	if BadTimeout.Name() != "BadTimeout" {
		t.Errorf("Name = %q", BadTimeout.Name())
	}
	// The low 16 bits (info bits) do not change identity.
	withInfo := BadTimeout | 0x0042
	if withInfo.Name() != "BadTimeout" {
		t.Errorf("Name with info bits = %q", withInfo.Name())
	}
	if got := Code(0x80FF0000).String(); got != "StatusCode(0x80FF0000)" {
		t.Errorf("unknown code string = %q", got)
	}
	if BadNodeIdUnknown.Error() != "BadNodeIdUnknown" {
		t.Errorf("Error() = %q", BadNodeIdUnknown.Error())
	}
}

func TestAllNamedCodesRoundTrip(t *testing.T) {
	for code, name := range names {
		if code.Name() != name {
			t.Errorf("code %v name %q != %q", uint32(code), code.Name(), name)
		}
		if code != Good && !code.IsBad() && !code.IsUncertain() {
			t.Errorf("named code %s has no severity", name)
		}
	}
}
