// Package uastatus defines OPC UA status codes as used on the wire.
//
// A status code is a 32-bit value whose two most significant bits encode
// the severity (Good, Uncertain, Bad) and whose upper 16 bits identify the
// condition (OPC 10000-4 §7.34). Only the codes needed by the measurement
// study are enumerated, but arbitrary codes round-trip unchanged.
package uastatus

import "fmt"

// Code is an OPC UA status code.
type Code uint32

// Severity masks per OPC 10000-4.
const (
	severityMask      Code = 0xC0000000
	severityGood      Code = 0x00000000
	severityUncertain Code = 0x40000000
	severityBad       Code = 0x80000000
)

// Status codes used by the protocol stack and the study.
const (
	Good Code = 0x00000000

	BadUnexpectedError           Code = 0x80010000
	BadInternalError             Code = 0x80020000
	BadOutOfMemory               Code = 0x80030000
	BadResourceUnavailable       Code = 0x80040000
	BadCommunicationError        Code = 0x80050000
	BadEncodingError             Code = 0x80060000
	BadDecodingError             Code = 0x80070000
	BadEncodingLimitsExceeded    Code = 0x80080000
	BadRequestTooLarge           Code = 0x80B80000
	BadResponseTooLarge          Code = 0x80B90000
	BadUnknownResponse           Code = 0x80090000
	BadTimeout                   Code = 0x800A0000
	BadServiceUnsupported        Code = 0x800B0000
	BadShutdown                  Code = 0x800C0000
	BadServerNotConnected        Code = 0x800D0000
	BadServerHalted              Code = 0x800E0000
	BadNothingToDo               Code = 0x800F0000
	BadTooManyOperations         Code = 0x80100000
	BadDataTypeIdUnknown         Code = 0x80110000
	BadCertificateInvalid        Code = 0x80120000
	BadSecurityChecksFailed      Code = 0x80130000
	BadCertificateTimeInvalid    Code = 0x80140000
	BadCertificateIssuerInvalid  Code = 0x80150000
	BadCertificateUntrusted      Code = 0x801A0000
	BadCertificateUseNotAllowed  Code = 0x80180000
	BadUserAccessDenied          Code = 0x801F0000
	BadIdentityTokenInvalid      Code = 0x80200000
	BadIdentityTokenRejected     Code = 0x80210000
	BadSecureChannelIdInvalid    Code = 0x80220000
	BadInvalidTimestamp          Code = 0x80230000
	BadNonceInvalid              Code = 0x80240000
	BadSessionIdInvalid          Code = 0x80250000
	BadSessionClosed             Code = 0x80260000
	BadSessionNotActivated       Code = 0x80270000
	BadSubscriptionIdInvalid     Code = 0x80280000
	BadRequestHeaderInvalid      Code = 0x802A0000
	BadTimestampsToReturnInvalid Code = 0x802B0000
	BadRequestCancelledByClient  Code = 0x802C0000

	BadNodeIdInvalid             Code = 0x80330000
	BadNodeIdUnknown             Code = 0x80340000
	BadAttributeIdInvalid        Code = 0x80350000
	BadIndexRangeInvalid         Code = 0x80360000
	BadNotReadable               Code = 0x803A0000
	BadNotWritable               Code = 0x803B0000
	BadOutOfRange                Code = 0x803C0000
	BadNotSupported              Code = 0x803D0000
	BadNotFound                  Code = 0x803E0000
	BadNotImplemented            Code = 0x80400000
	BadMonitoringModeInvalid     Code = 0x80410000
	BadMethodInvalid             Code = 0x80750000
	BadArgumentsMissing          Code = 0x80760000
	BadTooManySessions           Code = 0x80560000
	BadUserSignatureInvalid      Code = 0x80570000
	BadNoValidCertificates       Code = 0x80590000
	BadRequestCancelledByRequest Code = 0x805A0000

	BadTcpServerTooBusy           Code = 0x807D0000
	BadTcpMessageTypeInvalid      Code = 0x807E0000
	BadTcpSecureChannelUnknown    Code = 0x807F0000
	BadTcpMessageTooLarge         Code = 0x80800000
	BadTcpNotEnoughResources      Code = 0x80810000
	BadTcpInternalError           Code = 0x80820000
	BadTcpEndpointUrlInvalid      Code = 0x80830000
	BadRequestInterrupted         Code = 0x80840000
	BadRequestTimeout             Code = 0x80850000
	BadSecureChannelClosed        Code = 0x80860000
	BadSecureChannelTokenUnknown  Code = 0x80870000
	BadSequenceNumberInvalid      Code = 0x80880000
	BadProtocolVersionUnsupported Code = 0x80BE0000

	BadSecurityModeRejected   Code = 0x80540000
	BadSecurityPolicyRejected Code = 0x80550000

	UncertainInitialValue Code = 0x40920000
)

var names = map[Code]string{
	Good:                          "Good",
	BadUnexpectedError:            "BadUnexpectedError",
	BadInternalError:              "BadInternalError",
	BadOutOfMemory:                "BadOutOfMemory",
	BadResourceUnavailable:        "BadResourceUnavailable",
	BadCommunicationError:         "BadCommunicationError",
	BadEncodingError:              "BadEncodingError",
	BadDecodingError:              "BadDecodingError",
	BadEncodingLimitsExceeded:     "BadEncodingLimitsExceeded",
	BadRequestTooLarge:            "BadRequestTooLarge",
	BadResponseTooLarge:           "BadResponseTooLarge",
	BadUnknownResponse:            "BadUnknownResponse",
	BadTimeout:                    "BadTimeout",
	BadServiceUnsupported:         "BadServiceUnsupported",
	BadShutdown:                   "BadShutdown",
	BadServerNotConnected:         "BadServerNotConnected",
	BadServerHalted:               "BadServerHalted",
	BadNothingToDo:                "BadNothingToDo",
	BadTooManyOperations:          "BadTooManyOperations",
	BadDataTypeIdUnknown:          "BadDataTypeIdUnknown",
	BadCertificateInvalid:         "BadCertificateInvalid",
	BadSecurityChecksFailed:       "BadSecurityChecksFailed",
	BadCertificateTimeInvalid:     "BadCertificateTimeInvalid",
	BadCertificateIssuerInvalid:   "BadCertificateIssuerInvalid",
	BadCertificateUntrusted:       "BadCertificateUntrusted",
	BadCertificateUseNotAllowed:   "BadCertificateUseNotAllowed",
	BadUserAccessDenied:           "BadUserAccessDenied",
	BadIdentityTokenInvalid:       "BadIdentityTokenInvalid",
	BadIdentityTokenRejected:      "BadIdentityTokenRejected",
	BadSecureChannelIdInvalid:     "BadSecureChannelIdInvalid",
	BadInvalidTimestamp:           "BadInvalidTimestamp",
	BadNonceInvalid:               "BadNonceInvalid",
	BadSessionIdInvalid:           "BadSessionIdInvalid",
	BadSessionClosed:              "BadSessionClosed",
	BadSessionNotActivated:        "BadSessionNotActivated",
	BadSubscriptionIdInvalid:      "BadSubscriptionIdInvalid",
	BadRequestHeaderInvalid:       "BadRequestHeaderInvalid",
	BadTimestampsToReturnInvalid:  "BadTimestampsToReturnInvalid",
	BadRequestCancelledByClient:   "BadRequestCancelledByClient",
	BadNodeIdInvalid:              "BadNodeIdInvalid",
	BadNodeIdUnknown:              "BadNodeIdUnknown",
	BadAttributeIdInvalid:         "BadAttributeIdInvalid",
	BadIndexRangeInvalid:          "BadIndexRangeInvalid",
	BadNotReadable:                "BadNotReadable",
	BadNotWritable:                "BadNotWritable",
	BadOutOfRange:                 "BadOutOfRange",
	BadNotSupported:               "BadNotSupported",
	BadNotFound:                   "BadNotFound",
	BadNotImplemented:             "BadNotImplemented",
	BadMonitoringModeInvalid:      "BadMonitoringModeInvalid",
	BadMethodInvalid:              "BadMethodInvalid",
	BadArgumentsMissing:           "BadArgumentsMissing",
	BadTooManySessions:            "BadTooManySessions",
	BadUserSignatureInvalid:       "BadUserSignatureInvalid",
	BadNoValidCertificates:        "BadNoValidCertificates",
	BadRequestCancelledByRequest:  "BadRequestCancelledByRequest",
	BadTcpServerTooBusy:           "BadTcpServerTooBusy",
	BadTcpMessageTypeInvalid:      "BadTcpMessageTypeInvalid",
	BadTcpSecureChannelUnknown:    "BadTcpSecureChannelUnknown",
	BadTcpMessageTooLarge:         "BadTcpMessageTooLarge",
	BadTcpNotEnoughResources:      "BadTcpNotEnoughResources",
	BadTcpInternalError:           "BadTcpInternalError",
	BadTcpEndpointUrlInvalid:      "BadTcpEndpointUrlInvalid",
	BadRequestInterrupted:         "BadRequestInterrupted",
	BadRequestTimeout:             "BadRequestTimeout",
	BadSecureChannelClosed:        "BadSecureChannelClosed",
	BadSecureChannelTokenUnknown:  "BadSecureChannelTokenUnknown",
	BadSequenceNumberInvalid:      "BadSequenceNumberInvalid",
	BadProtocolVersionUnsupported: "BadProtocolVersionUnsupported",
	BadSecurityModeRejected:       "BadSecurityModeRejected",
	BadSecurityPolicyRejected:     "BadSecurityPolicyRejected",
	UncertainInitialValue:         "UncertainInitialValue",
}

// IsGood reports whether c has Good severity.
func (c Code) IsGood() bool { return c&severityMask == severityGood }

// IsUncertain reports whether c has Uncertain severity.
func (c Code) IsUncertain() bool { return c&severityMask == severityUncertain }

// IsBad reports whether c has Bad severity.
func (c Code) IsBad() bool { return c&severityMask == severityBad }

// Name returns the symbolic name of c, or the empty string if unknown.
func (c Code) Name() string { return names[c&0xFFFF0000] }

// String implements fmt.Stringer.
func (c Code) String() string {
	if n := c.Name(); n != "" {
		return n
	}
	return fmt.Sprintf("StatusCode(0x%08X)", uint32(c))
}

// Error implements the error interface so bad codes can be returned
// directly as errors by the protocol stack.
func (c Code) Error() string { return c.String() }
