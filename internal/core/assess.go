// Package core implements the paper's primary contribution: the
// security-configuration assessment of OPC UA deployments. It consumes
// measurement records and produces the statistics behind every figure
// and table of the evaluation: security modes and policies (Figure 3),
// certificate/policy conformance (Figure 4), certificate reuse
// (Figure 5), authentication and accessibility (Figure 6, Table 2),
// anonymous address-space exposure (Figure 7), deficit classes split by
// manufacturer and AS (Figure 8), and the longitudinal series of §5.5.
package core

import (
	"encoding/base64"
	"math/big"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/addrspace"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/uacert"
	"repro/internal/uapolicy"
	"repro/internal/weakkeys"
)

// ManufacturerOf clusters an ApplicationURI into a manufacturer label,
// the analog of the paper's manual clustering (§4).
func ManufacturerOf(appURI string) string {
	u := strings.ToLower(appURI)
	switch {
	case strings.Contains(u, "opcfoundation"):
		return "OPC Foundation"
	case strings.Contains(u, "bachmann"):
		return "Bachmann"
	case strings.Contains(u, "beckhoff"):
		return "Beckhoff"
	case strings.Contains(u, "wago"):
		return "Wago"
	case strings.Contains(u, "siemens"):
		return "Siemens"
	case strings.Contains(u, "phoenixcontact"):
		return "Phoenix Contact"
	case strings.Contains(u, "br-automation"):
		return "B&R"
	case strings.Contains(u, "weidmueller"):
		return "Weidmueller"
	case strings.Contains(u, "softing"):
		return "Softing"
	case strings.Contains(u, "unifiedautomation"):
		return "Unified Automation"
	case strings.Contains(u, "prosysopc"):
		return "Prosys"
	case strings.Contains(u, "sigmaplc"):
		return "SigmaPLC"
	default:
		return "other"
	}
}

// hashOf maps a CertRecord hash name back to the algorithm.
func hashOf(name string) uacert.HashAlg {
	switch name {
	case "MD5":
		return uacert.HashMD5
	case "SHA-1":
		return uacert.HashSHA1
	case "SHA-256":
		return uacert.HashSHA256
	default:
		return uacert.HashUnknown
	}
}

// Deficit flags one configuration problem class (Figure 8).
type Deficit int

// Deficit classes.
const (
	DeficitNone Deficit = iota
	DeficitDeprecatedOnly
	DeficitWeakCert
	DeficitCertReuse
	DeficitAnonymous
)

// String implements fmt.Stringer.
func (d Deficit) String() string {
	switch d {
	case DeficitNone:
		return "None security only"
	case DeficitDeprecatedOnly:
		return "Deprecated policies only"
	case DeficitWeakCert:
		return "Too weak certificate"
	case DeficitCertReuse:
		return "Certificate reuse"
	case DeficitAnonymous:
		return "Anonymous access"
	default:
		return "unknown"
	}
}

// Deficits enumerates all classes in display order.
func Deficits() []Deficit {
	return []Deficit{DeficitNone, DeficitDeprecatedOnly, DeficitWeakCert,
		DeficitCertReuse, DeficitAnonymous}
}

// HostAssessment is the per-host analysis outcome.
type HostAssessment struct {
	Record       *dataset.HostRecord
	Manufacturer string

	// Policy/mode analysis.
	Policies    []*uapolicy.Policy // distinct, rank order
	LeastPolicy *uapolicy.Policy
	MostPolicy  *uapolicy.Policy
	ModeSupport map[string]bool // None, Sign, SignAndEncrypt
	LeastMode   string
	MostMode    string

	// Certificate conformance against each announced policy.
	Conformance map[string]uapolicy.CertificateConformance

	// Deficits.
	Deficits  map[Deficit]bool
	Deficient bool

	Classification addrspace.Classification
}

// WaveAnalysis aggregates one measurement wave.
type WaveAnalysis struct {
	Wave int
	Date time.Time

	// Population.
	Records    []*dataset.HostRecord // all OPC UA hosts
	Servers    []*HostAssessment     // non-discovery servers
	Discovery  int
	ByVendor   map[string]int // servers per manufacturer
	ViaCounts  map[string]int
	NonDefault int // servers on non-default ports

	// Figure 3.
	ModeSupport, ModeLeast, ModeMost       map[string]int
	PolicySupport, PolicyLeast, PolicyMost map[string]int

	// §5.1 takeaways.
	NoneOnly       int // only mode/policy None
	DeprecatedBest int // most secure policy deprecated
	SecureBest     int // most secure policy is S1/S2/S3
	EnforceSecure  int // least secure policy is S1/S2/S3

	// Figure 4: per policy abbrev → conformance → count, plus the
	// hash/keybits matrix.
	Conformance map[string]map[uapolicy.CertificateConformance]int
	CertMatrix  map[string]map[string]int // policy → "hash/bits" → count

	// Figure 5.
	ReuseClusters []ReuseCluster

	// §5.3.
	WeakKeyFindings int

	// Figure 6 / Table 2.
	AuthMatrix map[string]*AuthCell
	Anonymous  int // anonymous advertised
	AnonSCOK   int // anonymous advertised, secure channel not rejected
	Accessible int
	RejectedSC int

	// Figure 7.
	ReadFracs, WriteFracs, ExecFracs []float64

	// Figure 8.
	DeficitByVendor map[Deficit]map[string]int
	DeficitByAS     map[Deficit]map[int]int
	DeficitTotals   map[Deficit]int
	Deficient       int
	DeficientFrac   float64
}

// ReuseCluster is one certificate used by several hosts (Figure 5).
type ReuseCluster struct {
	Thumbprint string
	Hosts      int
	ASes       int
	SubjectOrg string
}

// AuthCell is one Table 2 row aggregation.
type AuthCell struct {
	Tokens       []string
	Production   int
	Test         int
	Unclassified int
	RejectedAuth int
	RejectedSC   int
}

// Total sums the cell.
func (c *AuthCell) Total() int {
	return c.Production + c.Test + c.Unclassified + c.RejectedAuth + c.RejectedSC
}

// AnalyzeWave computes the full per-wave assessment. Per-host work runs
// on GOMAXPROCS workers; see AnalyzeWaveWorkers for the contract.
func AnalyzeWave(wave int, date time.Time, recs []*dataset.HostRecord) *WaveAnalysis {
	return AnalyzeWaveWorkers(wave, date, recs, 0)
}

// AnalyzeWaveWorkers is AnalyzeWave with an explicit worker count for
// the per-host assessment stage (0 = GOMAXPROCS). It is a thin wrapper
// over the incremental WaveAccumulator, which streaming pipelines feed
// record by record instead of materializing a slice first.
func AnalyzeWaveWorkers(wave int, date time.Time, recs []*dataset.HostRecord, workers int) *WaveAnalysis {
	acc := NewWaveAccumulator(wave, date)
	for _, r := range recs {
		acc.Add(r)
	}
	return acc.Finalize(workers)
}

// WaveAccumulator folds one wave's records as they arrive from the
// record pipeline. Add maintains every cross-host index the assessment
// needs (certificate-reuse clusters, the distinct-modulus set for
// batch-GCD), so Finalize only has to run the per-host assessments and
// aggregate. The accumulator necessarily retains the wave's records —
// the WaveAnalysis references them — which is exactly the streaming
// memory bound: one wave in flight, never the whole campaign.
//
// Add and Finalize must be called from one goroutine (the pipeline's
// fold side); Finalize may be called once.
type WaveAccumulator struct {
	wave int
	date time.Time
	recs []*dataset.HostRecord

	thumbHosts map[string]map[string]bool
	thumbASes  map[string]map[int]bool
	thumbOrg   map[string]string
	moduli     []*big.Int
	seenThumb  map[string]bool
}

// NewWaveAccumulator starts an empty fold for one wave.
func NewWaveAccumulator(wave int, date time.Time) *WaveAccumulator {
	return &WaveAccumulator{
		wave: wave, date: date,
		thumbHosts: map[string]map[string]bool{},
		thumbASes:  map[string]map[int]bool{},
		thumbOrg:   map[string]string{},
		seenThumb:  map[string]bool{},
	}
}

// Add folds one record into the wave.
func (wa *WaveAccumulator) Add(r *dataset.HostRecord) {
	wa.recs = append(wa.recs, r)
	if !r.ReachedOPCUA || r.Cert == nil {
		return
	}
	// Certificate reuse is a cross-host property of non-discovery
	// servers; the weak-key modulus set spans every certificate seen.
	if !r.IsDiscovery() {
		t := r.Cert.Thumbprint
		if wa.thumbHosts[t] == nil {
			wa.thumbHosts[t] = map[string]bool{}
			wa.thumbASes[t] = map[int]bool{}
		}
		wa.thumbHosts[t][r.Address] = true
		wa.thumbASes[t][r.ASN] = true
		wa.thumbOrg[t] = r.Cert.SubjectOrg
	}
	if !wa.seenThumb[r.Cert.Thumbprint] {
		wa.seenThumb[r.Cert.Thumbprint] = true
		if raw, err := base64.StdEncoding.DecodeString(r.Cert.ModulusB64); err == nil {
			wa.moduli = append(wa.moduli, new(big.Int).SetBytes(raw))
		}
	}
}

// Len returns how many records have been folded.
func (wa *WaveAccumulator) Len() int { return len(wa.recs) }

// Finalize runs the per-host assessments (on `workers` goroutines,
// 0 = GOMAXPROCS) and aggregates the WaveAnalysis. assessHost is pure
// given the folded reuse index, so hosts are assessed on a fixed pool
// and merged in record order on a single goroutine — the result is
// identical to a 1-worker run, field for field.
func (wa *WaveAccumulator) Finalize(workers int) *WaveAnalysis {
	a := &WaveAnalysis{
		Wave: wa.wave, Date: wa.date,
		ByVendor:        map[string]int{},
		ViaCounts:       map[string]int{},
		ModeSupport:     map[string]int{},
		ModeLeast:       map[string]int{},
		ModeMost:        map[string]int{},
		PolicySupport:   map[string]int{},
		PolicyLeast:     map[string]int{},
		PolicyMost:      map[string]int{},
		Conformance:     map[string]map[uapolicy.CertificateConformance]int{},
		CertMatrix:      map[string]map[string]int{},
		AuthMatrix:      map[string]*AuthCell{},
		DeficitByVendor: map[Deficit]map[string]int{},
		DeficitByAS:     map[Deficit]map[int]int{},
		DeficitTotals:   map[Deficit]int{},
	}
	for _, d := range Deficits() {
		a.DeficitByVendor[d] = map[string]int{}
		a.DeficitByAS[d] = map[int]int{}
	}

	reused := map[string]bool{}
	for t, hosts := range wa.thumbHosts {
		if len(hosts) >= 2 {
			reused[t] = true
			a.ReuseClusters = append(a.ReuseClusters, ReuseCluster{
				Thumbprint: t,
				Hosts:      len(hosts),
				ASes:       len(wa.thumbASes[t]),
				SubjectOrg: wa.thumbOrg[t],
			})
		}
	}
	sort.Slice(a.ReuseClusters, func(i, j int) bool {
		if a.ReuseClusters[i].Hosts != a.ReuseClusters[j].Hosts {
			return a.ReuseClusters[i].Hosts > a.ReuseClusters[j].Hosts
		}
		return a.ReuseClusters[i].Thumbprint < a.ReuseClusters[j].Thumbprint
	})

	// Weak keys: batch-GCD across distinct moduli (§5.3).
	a.WeakKeyFindings = len(weakkeys.BatchGCD(wa.moduli, false))

	recs := wa.recs
	assessments := assessAll(recs, reused, workers)
	for i, r := range recs {
		if !r.ReachedOPCUA {
			continue
		}
		a.Records = append(a.Records, r)
		if r.IsDiscovery() {
			a.Discovery++
			continue
		}
		h := assessments[i]
		a.Servers = append(a.Servers, h)
		a.ByVendor[h.Manufacturer]++
		a.ViaCounts[r.Via]++
		if !strings.HasSuffix(r.Address, ":4840") {
			a.NonDefault++
		}
		accumulate(a, h)
	}
	if n := len(a.Servers); n > 0 {
		a.DeficientFrac = float64(a.Deficient) / float64(n)
	}
	return a
}

// assessAll runs assessHost for every assessable record on a fixed
// worker pool, returning a slice parallel to recs (nil entries for
// records that are skipped: unreachable hosts and discovery servers).
func assessAll(recs []*dataset.HostRecord, reused map[string]bool, workers int) []*HostAssessment {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	out := make([]*HostAssessment, len(recs))
	if workers <= 1 {
		for i, r := range recs {
			if r.ReachedOPCUA && !r.IsDiscovery() {
				out[i] = assessHost(r, reused)
			}
		}
		return out
	}
	indexes := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				out[i] = assessHost(recs[i], reused)
			}
		}()
	}
	for i, r := range recs {
		if r.ReachedOPCUA && !r.IsDiscovery() {
			indexes <- i
		}
	}
	close(indexes)
	wg.Wait()
	return out
}

func assessHost(r *dataset.HostRecord, reused map[string]bool) *HostAssessment {
	h := &HostAssessment{
		Record:       r,
		Manufacturer: ManufacturerOf(r.AppURI),
		ModeSupport:  map[string]bool{},
		Conformance:  map[string]uapolicy.CertificateConformance{},
		Deficits:     map[Deficit]bool{},
	}

	policySet := map[string]*uapolicy.Policy{}
	for _, ep := range r.Endpoints {
		h.ModeSupport[ep.Mode] = true
		if p, ok := uapolicy.Lookup(ep.PolicyURI); ok {
			policySet[p.Abbrev] = p
		}
	}
	for _, p := range policySet {
		h.Policies = append(h.Policies, p)
	}
	sort.Slice(h.Policies, func(i, j int) bool { return h.Policies[i].Rank < h.Policies[j].Rank })
	if len(h.Policies) > 0 {
		h.LeastPolicy = h.Policies[0]
		h.MostPolicy = h.Policies[len(h.Policies)-1]
	}
	switch {
	case h.ModeSupport["None"]:
		h.LeastMode = "None"
	case h.ModeSupport["Sign"]:
		h.LeastMode = "Sign"
	case h.ModeSupport["SignAndEncrypt"]:
		h.LeastMode = "SignAndEncrypt"
	}
	switch {
	case h.ModeSupport["SignAndEncrypt"]:
		h.MostMode = "SignAndEncrypt"
	case h.ModeSupport["Sign"]:
		h.MostMode = "Sign"
	case h.ModeSupport["None"]:
		h.MostMode = "None"
	}

	// Certificate conformance per announced policy (Figure 4).
	if r.Cert != nil {
		hash := hashOf(r.Cert.Hash)
		for _, p := range h.Policies {
			h.Conformance[p.Abbrev] = p.CheckCertificate(hash, r.Cert.Bits)
		}
	}

	// Deficit classes.
	if h.MostPolicy != nil && h.MostPolicy.Insecure {
		h.Deficits[DeficitNone] = true
	}
	if h.MostPolicy != nil && h.MostPolicy.Deprecated {
		h.Deficits[DeficitDeprecatedOnly] = true
	}
	if h.MostPolicy != nil && !h.MostPolicy.Insecure && !h.MostPolicy.Deprecated &&
		h.Conformance[h.MostPolicy.Abbrev] == uapolicy.CertTooWeak {
		h.Deficits[DeficitWeakCert] = true
	}
	if r.Cert != nil && reused[r.Cert.Thumbprint] {
		h.Deficits[DeficitCertReuse] = true
	}
	if r.AnonOffered {
		h.Deficits[DeficitAnonymous] = true
	}
	h.Deficient = len(h.Deficits) > 0

	if r.Accessible() {
		h.Classification = addrspace.Classify(r.Namespaces)
	}
	return h
}

func accumulate(a *WaveAnalysis, h *HostAssessment) {
	r := h.Record
	for mode := range h.ModeSupport {
		a.ModeSupport[mode]++
	}
	if h.LeastMode != "" {
		a.ModeLeast[h.LeastMode]++
	}
	if h.MostMode != "" {
		a.ModeMost[h.MostMode]++
	}
	for _, p := range h.Policies {
		a.PolicySupport[p.Abbrev]++
	}
	if h.LeastPolicy != nil {
		a.PolicyLeast[h.LeastPolicy.Abbrev]++
	}
	if h.MostPolicy != nil {
		a.PolicyMost[h.MostPolicy.Abbrev]++
		switch {
		case h.MostPolicy.Insecure:
			a.NoneOnly++
		case h.MostPolicy.Deprecated:
			a.DeprecatedBest++
		default:
			a.SecureBest++
		}
	}
	if h.LeastPolicy != nil && h.LeastPolicy.IsSecure() {
		a.EnforceSecure++
	}

	if r.Cert != nil {
		key := r.Cert.Hash + "/" + strconv.Itoa(r.Cert.Bits)
		for _, p := range h.Policies {
			if a.Conformance[p.Abbrev] == nil {
				a.Conformance[p.Abbrev] = map[uapolicy.CertificateConformance]int{}
			}
			a.Conformance[p.Abbrev][h.Conformance[p.Abbrev]]++
			if a.CertMatrix[p.Abbrev] == nil {
				a.CertMatrix[p.Abbrev] = map[string]int{}
			}
			a.CertMatrix[p.Abbrev][key]++
		}
	}

	// Table 2 / Figure 6.
	tokens := tokenCombo(r)
	cell := a.AuthMatrix[tokens]
	if cell == nil {
		cell = &AuthCell{Tokens: strings.Split(tokens, "+")}
		a.AuthMatrix[tokens] = cell
	}
	switch {
	case r.CertRejected:
		cell.RejectedSC++
		a.RejectedSC++
	case r.Accessible():
		a.Accessible++
		switch h.Classification {
		case addrspace.Production:
			cell.Production++
		case addrspace.Test:
			cell.Test++
		default:
			cell.Unclassified++
		}
	default:
		cell.RejectedAuth++
	}
	if r.AnonOffered {
		a.Anonymous++
		if !r.CertRejected {
			a.AnonSCOK++
		}
	}

	// Figure 7: exposure fractions for accessible hosts.
	if r.Accessible() && !r.CertRejected {
		if r.Variables > 0 {
			a.ReadFracs = append(a.ReadFracs, float64(r.Readable)/float64(r.Variables))
			a.WriteFracs = append(a.WriteFracs, float64(r.Writable)/float64(r.Variables))
		}
		if r.Methods > 0 {
			a.ExecFracs = append(a.ExecFracs, float64(r.Executable)/float64(r.Methods))
		}
	}

	// Figure 8.
	for d := range h.Deficits {
		a.DeficitTotals[d]++
		a.DeficitByVendor[d][h.Manufacturer]++
		a.DeficitByAS[d][r.ASN]++
	}
	if h.Deficient {
		a.Deficient++
	}
}

// ReusedOnly reports hosts whose only deficit is certificate reuse;
// §5.3 notes these barely move the headline number ("only 5 devices
// otherwise configured securely").
func ReusedOnly(h *HostAssessment) bool {
	return len(h.Deficits) == 1 && h.Deficits[DeficitCertReuse]
}

func tokenCombo(r *dataset.HostRecord) string {
	set := map[string]bool{}
	for _, ep := range r.Endpoints {
		for _, tt := range ep.TokenTypes {
			set[tt] = true
		}
	}
	order := []string{"Anonymous", "UserName", "Certificate", "IssuedToken"}
	var parts []string
	for _, o := range order {
		if set[o] {
			parts = append(parts, o)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ExposureCDFs returns the three Figure 7 distributions.
func (a *WaveAnalysis) ExposureCDFs() (read, write, exec *stats.ECDF) {
	return stats.NewECDF(a.ReadFracs), stats.NewECDF(a.WriteFracs), stats.NewECDF(a.ExecFracs)
}

// ReuseClustersAtLeast filters clusters by minimum size (Figure 5 uses
// three hosts to account for IP churn).
func (a *WaveAnalysis) ReuseClustersAtLeast(n int) []ReuseCluster {
	var out []ReuseCluster
	for _, c := range a.ReuseClusters {
		if c.Hosts >= n {
			out = append(out, c)
		}
	}
	return out
}
