package core

import (
	"time"

	"repro/internal/stats"
)

// RenewalEvent is a certificate change on a host with a static address
// between consecutive waves (§5.5).
type RenewalEvent struct {
	Address        string
	Wave           int // the wave where the new certificate appeared
	OldHash        string
	NewHash        string
	SoftwareUpdate bool // SoftwareVersion changed in the same wave
	Upgraded       bool // SHA-1 → SHA-256
	Downgraded     bool // SHA-256 → SHA-1
}

// Longitudinal aggregates across all waves (§5.5).
type Longitudinal struct {
	Waves []*WaveAnalysis

	DeficientSeries  []float64
	DeficientSummary stats.Summary

	Renewals        []RenewalEvent
	UpgradedSHA1    int
	Downgraded      int
	SoftwareUpdates int

	// Distinct certificates observed over the whole campaign.
	TotalCerts   int
	SHA1Certs    int
	SHA1Post2017 int
	SHA1Post2019 int

	// Same-organization reuse growth (the paper's 263 → 387 devices).
	ReuseGrowth []int
}

// AnalyzeLongitudinal combines per-wave analyses. It is a thin wrapper
// over the incremental LongitudinalAccumulator, which streaming
// pipelines feed wave by wave as each WaveAnalysis finalizes.
func AnalyzeLongitudinal(waves []*WaveAnalysis) *Longitudinal {
	la := NewLongitudinalAccumulator(true)
	for _, w := range waves {
		la.AddWave(w)
	}
	return la.Finalize()
}

// certState is the longitudinal fold's per-address memory. It copies
// the strings it needs out of the wave, so a non-retaining fold keeps
// no reference to the wave's records.
type certState struct {
	thumb   string
	hash    string
	version string
}

// LongitudinalAccumulator folds WaveAnalysis values in wave order into
// the §5.5 longitudinal series. The fold reads each wave once at
// AddWave time and keeps only per-address certificate state, so a
// streaming campaign can discard a wave's records as soon as its
// analysis has been folded; pass keepWaves=false to also drop the
// per-wave analyses from the result (Longitudinal.Waves stays nil, the
// flat-memory configuration of the record pipeline).
type LongitudinalAccumulator struct {
	keepWaves bool
	l         *Longitudinal
	last      map[string]certState
	certSeen  map[string]bool
	done      bool
}

// NewLongitudinalAccumulator starts an empty fold.
func NewLongitudinalAccumulator(keepWaves bool) *LongitudinalAccumulator {
	return &LongitudinalAccumulator{
		keepWaves: keepWaves,
		l:         &Longitudinal{},
		last:      map[string]certState{},
		certSeen:  map[string]bool{},
	}
}

var (
	cut2017 = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	cut2019 = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
)

// AddWave folds one wave's analysis. Waves must arrive in wave order.
func (la *LongitudinalAccumulator) AddWave(w *WaveAnalysis) {
	l := la.l
	if la.keepWaves {
		l.Waves = append(l.Waves, w)
	}
	l.DeficientSeries = append(l.DeficientSeries, w.DeficientFrac)

	for _, h := range w.Servers {
		r := h.Record
		if r.Cert == nil {
			continue
		}
		if !la.certSeen[r.Cert.Thumbprint] {
			la.certSeen[r.Cert.Thumbprint] = true
			l.TotalCerts++
			if r.Cert.Hash == "SHA-1" {
				l.SHA1Certs++
				if r.Cert.NotBefore.After(cut2017) {
					l.SHA1Post2017++
				}
				if r.Cert.NotBefore.After(cut2019) {
					l.SHA1Post2019++
				}
			}
		}
		prev, ok := la.last[r.Address]
		if ok && prev.thumb != r.Cert.Thumbprint {
			ev := RenewalEvent{
				Address:        r.Address,
				Wave:           w.Wave,
				OldHash:        prev.hash,
				NewHash:        r.Cert.Hash,
				SoftwareUpdate: prev.version != r.SoftwareVersion,
				Upgraded:       prev.hash == "SHA-1" && r.Cert.Hash == "SHA-256",
				Downgraded:     prev.hash == "SHA-256" && r.Cert.Hash == "SHA-1",
			}
			l.Renewals = append(l.Renewals, ev)
			if ev.Upgraded {
				l.UpgradedSHA1++
			}
			if ev.Downgraded {
				l.Downgraded++
			}
			if ev.SoftwareUpdate {
				l.SoftwareUpdates++
			}
		}
		la.last[r.Address] = certState{
			thumb: r.Cert.Thumbprint,
			hash:  r.Cert.Hash, version: r.SoftwareVersion,
		}
	}

	// Same-organization reuse growth: hosts sharing any certificate
	// whose subject organization matches the biggest cluster's.
	bigOrg := ""
	bigHosts := 0
	for _, c := range w.ReuseClustersAtLeast(3) {
		if c.Hosts > bigHosts {
			bigHosts = c.Hosts
			bigOrg = c.SubjectOrg
		}
	}
	count := 0
	for _, c := range w.ReuseClustersAtLeast(3) {
		if c.SubjectOrg == bigOrg && bigOrg != "" {
			count += c.Hosts
		}
	}
	l.ReuseGrowth = append(l.ReuseGrowth, count)
}

// Finalize computes the summary statistics and returns the
// longitudinal analysis. The accumulator must not be used afterwards.
func (la *LongitudinalAccumulator) Finalize() *Longitudinal {
	if la.done {
		panic("core: LongitudinalAccumulator finalized twice")
	}
	la.done = true
	la.l.DeficientSummary = stats.Summarize(la.l.DeficientSeries)
	return la.l
}
