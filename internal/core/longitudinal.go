package core

import (
	"time"

	"repro/internal/stats"
)

// RenewalEvent is a certificate change on a host with a static address
// between consecutive waves (§5.5).
type RenewalEvent struct {
	Address        string
	Wave           int // the wave where the new certificate appeared
	OldHash        string
	NewHash        string
	SoftwareUpdate bool // SoftwareVersion changed in the same wave
	Upgraded       bool // SHA-1 → SHA-256
	Downgraded     bool // SHA-256 → SHA-1
}

// Longitudinal aggregates across all waves (§5.5).
type Longitudinal struct {
	Waves []*WaveAnalysis

	DeficientSeries  []float64
	DeficientSummary stats.Summary

	Renewals        []RenewalEvent
	UpgradedSHA1    int
	Downgraded      int
	SoftwareUpdates int

	// Distinct certificates observed over the whole campaign.
	TotalCerts   int
	SHA1Certs    int
	SHA1Post2017 int
	SHA1Post2019 int

	// Same-organization reuse growth (the paper's 263 → 387 devices).
	ReuseGrowth []int
}

// AnalyzeLongitudinal combines per-wave analyses.
func AnalyzeLongitudinal(waves []*WaveAnalysis) *Longitudinal {
	l := &Longitudinal{Waves: waves}
	for _, w := range waves {
		l.DeficientSeries = append(l.DeficientSeries, w.DeficientFrac)
	}
	l.DeficientSummary = stats.Summarize(l.DeficientSeries)

	// Track certificates per host address across waves.
	type certState struct {
		wave    int
		thumb   string
		hash    string
		version string
	}
	last := map[string]certState{}
	certSeen := map[string]bool{}
	cut2017 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	cut2019 := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

	for _, w := range waves {
		for _, h := range w.Servers {
			r := h.Record
			if r.Cert == nil {
				continue
			}
			if !certSeen[r.Cert.Thumbprint] {
				certSeen[r.Cert.Thumbprint] = true
				l.TotalCerts++
				if r.Cert.Hash == "SHA-1" {
					l.SHA1Certs++
					if r.Cert.NotBefore.After(cut2017) {
						l.SHA1Post2017++
					}
					if r.Cert.NotBefore.After(cut2019) {
						l.SHA1Post2019++
					}
				}
			}
			prev, ok := last[r.Address]
			if ok && prev.thumb != r.Cert.Thumbprint {
				ev := RenewalEvent{
					Address:        r.Address,
					Wave:           w.Wave,
					OldHash:        prev.hash,
					NewHash:        r.Cert.Hash,
					SoftwareUpdate: prev.version != r.SoftwareVersion,
					Upgraded:       prev.hash == "SHA-1" && r.Cert.Hash == "SHA-256",
					Downgraded:     prev.hash == "SHA-256" && r.Cert.Hash == "SHA-1",
				}
				l.Renewals = append(l.Renewals, ev)
				if ev.Upgraded {
					l.UpgradedSHA1++
				}
				if ev.Downgraded {
					l.Downgraded++
				}
				if ev.SoftwareUpdate {
					l.SoftwareUpdates++
				}
			}
			last[r.Address] = certState{
				wave: w.Wave, thumb: r.Cert.Thumbprint,
				hash: r.Cert.Hash, version: r.SoftwareVersion,
			}
		}

		// Same-organization reuse growth: hosts sharing any certificate
		// whose subject organization matches the biggest cluster's.
		bigOrg := ""
		bigHosts := 0
		for _, c := range w.ReuseClustersAtLeast(3) {
			if c.Hosts > bigHosts {
				bigHosts = c.Hosts
				bigOrg = c.SubjectOrg
			}
		}
		count := 0
		for _, c := range w.ReuseClustersAtLeast(3) {
			if c.SubjectOrg == bigOrg && bigOrg != "" {
				count += c.Hosts
			}
		}
		l.ReuseGrowth = append(l.ReuseGrowth, count)
	}
	return l
}
