package core

import (
	"encoding/base64"
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/addrspace"
	"repro/internal/dataset"
	"repro/internal/uapolicy"
)

// rec builds a minimal server record for assessment tests.
func rec(addr string, asn int, opts func(*dataset.HostRecord)) *dataset.HostRecord {
	r := &dataset.HostRecord{
		Wave: 0, Date: time.Date(2020, 8, 30, 0, 0, 0, 0, time.UTC),
		Address: addr, ASN: asn,
		ReachedOPCUA:    true,
		AppURI:          "urn:bachmann.info:M1:0001",
		ApplicationType: "Server",
		Endpoints: []dataset.EndpointRecord{{
			URL: "opc.tcp://" + addr, Mode: "None",
			PolicyURI:  uapolicy.URINone,
			TokenTypes: []string{"Anonymous"},
		}},
		AnonOffered: true,
	}
	if opts != nil {
		opts(r)
	}
	return r
}

func cert(thumb, hash string, bits int, org string, notBefore time.Time) *dataset.CertRecord {
	n := new(big.Int).Lsh(big.NewInt(0x10001), uint(bits-17))
	return &dataset.CertRecord{
		Thumbprint: thumb, Hash: hash, Bits: bits,
		SubjectOrg: org, NotBefore: notBefore,
		ModulusB64: base64.StdEncoding.EncodeToString(n.Bytes()),
	}
}

func TestManufacturerClustering(t *testing.T) {
	cases := map[string]string{
		"urn:bachmann.info:M1:0001":        "Bachmann",
		"urn:beckhoff.com:TcOpcUaServer:7": "Beckhoff",
		"urn:wago.com:codesys:1":           "Wago",
		"urn:opcfoundation.org:UA:LDS:3":   "OPC Foundation",
		"urn:unknown:vendor":               "other",
		"":                                 "other",
	}
	for uri, want := range cases {
		if got := ManufacturerOf(uri); got != want {
			t.Errorf("ManufacturerOf(%q) = %q, want %q", uri, got, want)
		}
	}
}

func TestAnalyzeWaveModesAndPolicies(t *testing.T) {
	recs := []*dataset.HostRecord{
		rec("1.1.1.1:4840", 1, nil), // None only
		rec("1.1.1.2:4840", 1, func(r *dataset.HostRecord) {
			r.Endpoints = append(r.Endpoints,
				dataset.EndpointRecord{Mode: "Sign", PolicyURI: uapolicy.URIBasic128Rsa15},
				dataset.EndpointRecord{Mode: "SignAndEncrypt", PolicyURI: uapolicy.URIBasic256Sha256},
			)
		}),
		rec("1.1.1.3:4840", 2, func(r *dataset.HostRecord) {
			r.Endpoints = []dataset.EndpointRecord{{
				Mode: "SignAndEncrypt", PolicyURI: uapolicy.URIBasic256Sha256,
				TokenTypes: []string{"UserName"},
			}}
			r.AnonOffered = false
		}),
	}
	w := AnalyzeWave(0, recs[0].Date, recs)
	if len(w.Servers) != 3 {
		t.Fatalf("servers = %d", len(w.Servers))
	}
	if w.ModeSupport["None"] != 2 || w.ModeSupport["SignAndEncrypt"] != 2 || w.ModeSupport["Sign"] != 1 {
		t.Errorf("mode support = %v", w.ModeSupport)
	}
	if w.ModeLeast["None"] != 2 || w.ModeLeast["SignAndEncrypt"] != 1 {
		t.Errorf("mode least = %v", w.ModeLeast)
	}
	if w.ModeMost["None"] != 1 || w.ModeMost["SignAndEncrypt"] != 2 {
		t.Errorf("mode most = %v", w.ModeMost)
	}
	if w.PolicyMost["N"] != 1 || w.PolicyMost["S2"] != 2 {
		t.Errorf("policy most = %v", w.PolicyMost)
	}
	if w.NoneOnly != 1 || w.SecureBest != 2 {
		t.Errorf("none-only/secure-best = %d/%d", w.NoneOnly, w.SecureBest)
	}
	if w.EnforceSecure != 1 { // host 3 offers only S2
		t.Errorf("enforce secure = %d", w.EnforceSecure)
	}
	if w.Anonymous != 2 {
		t.Errorf("anonymous = %d", w.Anonymous)
	}
}

func TestAnalyzeWaveCertConformanceAndReuse(t *testing.T) {
	nb := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	shared := cert("tt-shared", "SHA-1", 2048, "ICS Vendor", nb)
	recs := []*dataset.HostRecord{
		rec("1.1.1.1:4840", 1, func(r *dataset.HostRecord) {
			r.Endpoints = append(r.Endpoints, dataset.EndpointRecord{
				Mode: "Sign", PolicyURI: uapolicy.URIBasic256Sha256})
			r.Cert = shared
		}),
		rec("1.1.1.2:4840", 2, func(r *dataset.HostRecord) { r.Cert = shared }),
		rec("1.1.1.3:4840", 2, func(r *dataset.HostRecord) { r.Cert = shared }),
		rec("1.1.1.4:4840", 3, func(r *dataset.HostRecord) {
			r.Cert = cert("tt-single", "SHA-256", 2048, "Solo", nb)
			r.Endpoints = append(r.Endpoints, dataset.EndpointRecord{
				Mode: "Sign", PolicyURI: uapolicy.URIBasic256Sha256})
		}),
	}
	w := AnalyzeWave(0, nb, recs)
	// Host 1 announces S2 with a SHA-1 cert: too weak.
	if w.Conformance["S2"][uapolicy.CertTooWeak] != 1 ||
		w.Conformance["S2"][uapolicy.CertConformant] != 1 {
		t.Errorf("S2 conformance = %v", w.Conformance["S2"])
	}
	clusters := w.ReuseClustersAtLeast(3)
	if len(clusters) != 1 || clusters[0].Hosts != 3 || clusters[0].ASes != 2 {
		t.Errorf("clusters = %+v", clusters)
	}
	if len(w.ReuseClustersAtLeast(4)) != 0 {
		t.Error("threshold filter broken")
	}
	// Deficits: host 1 weak cert + anon; hosts 2,3 reuse + anon + none-only.
	h1 := w.Servers[0]
	if !h1.Deficits[DeficitWeakCert] || !h1.Deficits[DeficitCertReuse] {
		t.Errorf("host1 deficits = %v", h1.Deficits)
	}
	if w.DeficitTotals[DeficitCertReuse] != 3 {
		t.Errorf("reuse deficit total = %d", w.DeficitTotals[DeficitCertReuse])
	}
	if w.DeficientFrac != 1.0 {
		t.Errorf("deficient frac = %g", w.DeficientFrac)
	}
}

func TestAnalyzeWaveWeakKeys(t *testing.T) {
	nb := time.Now()
	p1 := big.NewInt(0)
	p1.SetString("f3b9d3a1c5e7f1a3b5d7e9fb0d0f1315", 16)
	// Build three moduli, two sharing a factor. Use small primes for the
	// test: gcd logic only needs composite structure.
	a := new(big.Int).Mul(big.NewInt(1000003), big.NewInt(1000033))
	b := new(big.Int).Mul(big.NewInt(1000003), big.NewInt(1000037))
	c := new(big.Int).Mul(big.NewInt(1000039), big.NewInt(1000081))
	mk := func(addr, thumb string, n *big.Int) *dataset.HostRecord {
		return rec(addr, 1, func(r *dataset.HostRecord) {
			r.Cert = &dataset.CertRecord{
				Thumbprint: thumb, Hash: "SHA-1", Bits: 2048, NotBefore: nb,
				ModulusB64: base64.StdEncoding.EncodeToString(n.Bytes()),
			}
		})
	}
	w := AnalyzeWave(0, nb, []*dataset.HostRecord{
		mk("1.1.1.1:4840", "t1", a),
		mk("1.1.1.2:4840", "t2", b),
		mk("1.1.1.3:4840", "t3", c),
	})
	if w.WeakKeyFindings != 2 {
		t.Errorf("weak key findings = %d, want 2", w.WeakKeyFindings)
	}
}

func TestAnalyzeWaveAuthMatrix(t *testing.T) {
	nb := time.Now()
	recs := []*dataset.HostRecord{
		rec("1.1.1.1:4840", 1, func(r *dataset.HostRecord) {
			r.AnonOK = true
			r.Namespaces = []string{"http://opcfoundation.org/UA/", addrspace.ProductionNamespaces[0]}
			r.Variables, r.Readable, r.Writable = 10, 9, 2
			r.Methods, r.Executable = 4, 3
		}),
		rec("1.1.1.2:4840", 1, func(r *dataset.HostRecord) {
			r.AnonOK = true
			r.Namespaces = []string{"http://opcfoundation.org/UA/", addrspace.TestNamespaces[0]}
			r.Variables, r.Readable = 5, 5
		}),
		rec("1.1.1.3:4840", 1, func(r *dataset.HostRecord) {
			r.CertRejected = true
		}),
		rec("1.1.1.4:4840", 1, func(r *dataset.HostRecord) {
			r.Endpoints[0].TokenTypes = []string{"UserName"}
			r.AnonOffered = false
		}),
	}
	w := AnalyzeWave(0, nb, recs)
	anon := w.AuthMatrix["Anonymous"]
	if anon == nil || anon.Production != 1 || anon.Test != 1 || anon.RejectedSC != 1 {
		t.Errorf("anon cell = %+v", anon)
	}
	cred := w.AuthMatrix["UserName"]
	if cred == nil || cred.RejectedAuth != 1 {
		t.Errorf("cred cell = %+v", cred)
	}
	if w.Accessible != 2 || w.RejectedSC != 1 {
		t.Errorf("accessible/rejected = %d/%d", w.Accessible, w.RejectedSC)
	}
	read, write, _ := w.ExposureCDFs()
	if read.Len() != 2 {
		t.Errorf("exposure samples = %d", read.Len())
	}
	if write.Survival(0.10) != 0.5 { // one host writes 2/10
		t.Errorf("write survival = %g", write.Survival(0.10))
	}
}

func TestAnalyzeWaveSkipsDiscoveryAndNoise(t *testing.T) {
	nb := time.Now()
	recs := []*dataset.HostRecord{
		rec("1.1.1.1:4840", 1, nil),
		rec("1.1.1.2:4840", 1, func(r *dataset.HostRecord) {
			r.ApplicationType = "DiscoveryServer"
		}),
		{Address: "1.1.1.3:4840", ReachedOPCUA: false, Date: nb},
	}
	w := AnalyzeWave(0, nb, recs)
	if len(w.Servers) != 1 || w.Discovery != 1 || len(w.Records) != 2 {
		t.Errorf("population = %d servers / %d discovery / %d records",
			len(w.Servers), w.Discovery, len(w.Records))
	}
}

func TestLongitudinalRenewalDetection(t *testing.T) {
	nb := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	mkWave := func(wave int, thumb, hash, version string) *WaveAnalysis {
		r := rec("9.9.9.9:4840", 1, func(r *dataset.HostRecord) {
			r.Wave = wave
			r.Cert = cert(thumb, hash, 2048, "Org", nb)
			r.SoftwareVersion = version
		})
		return AnalyzeWave(wave, nb, []*dataset.HostRecord{r})
	}
	waves := []*WaveAnalysis{
		mkWave(0, "t-old", "SHA-1", "1.0"),
		mkWave(1, "t-old", "SHA-1", "1.0"),
		mkWave(2, "t-new", "SHA-256", "1.1"), // renewal + upgrade + sw update
	}
	l := AnalyzeLongitudinal(waves)
	if len(l.Renewals) != 1 {
		t.Fatalf("renewals = %d", len(l.Renewals))
	}
	ev := l.Renewals[0]
	if !ev.Upgraded || ev.Downgraded || !ev.SoftwareUpdate || ev.Wave != 2 {
		t.Errorf("event = %+v", ev)
	}
	if l.UpgradedSHA1 != 1 || l.SoftwareUpdates != 1 {
		t.Errorf("aggregates = %+v", l)
	}
	if l.TotalCerts != 2 || l.SHA1Certs != 1 {
		t.Errorf("cert census = %d/%d", l.TotalCerts, l.SHA1Certs)
	}
	if l.SHA1Post2017 != 1 {
		t.Errorf("post-2017 = %d", l.SHA1Post2017)
	}
	if len(l.DeficientSeries) != 3 {
		t.Errorf("deficient series = %v", l.DeficientSeries)
	}
}

func TestDeficitStrings(t *testing.T) {
	for _, d := range Deficits() {
		if d.String() == "unknown" || d.String() == "" {
			t.Errorf("deficit %d has no name", d)
		}
	}
	if !strings.Contains(DeficitAnonymous.String(), "Anonymous") {
		t.Error("anonymous deficit name wrong")
	}
}
