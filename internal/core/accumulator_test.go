package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
)

// foldFixture builds a few waves of records exercising every fold path:
// reuse clusters, renewals, discovery servers, weak-ish certs.
func foldFixture() map[int][]*dataset.HostRecord {
	t0 := time.Date(2020, 2, 9, 0, 0, 0, 0, time.UTC)
	byWave := map[int][]*dataset.HostRecord{}
	for w := 0; w < 3; w++ {
		date := t0.AddDate(0, 0, 7*w)
		var recs []*dataset.HostRecord
		for i := 0; i < 6; i++ {
			r := rec("100.64.0.1:4840", 64600+i, nil)
			r.Wave, r.Date = w, date
			r.Address = "100.64.0." + string(rune('1'+i)) + ":4840"
			thumb := "shared"
			if i >= 4 {
				thumb = "solo-" + r.Address
			}
			hash := "SHA-256"
			if i == 5 && w >= 1 {
				thumb, hash = "renewed", "SHA-1" // renewal + downgrade in wave 1
			}
			r.Cert = cert(thumb, hash, 2048, "Bachmann", t0.AddDate(-1, 0, 0))
			recs = append(recs, r)
		}
		disco := rec("100.64.9.9:4840", 64699, func(r *dataset.HostRecord) {
			r.ApplicationType = "DiscoveryServer"
		})
		disco.Wave, disco.Date = w, date
		recs = append(recs, disco)
		byWave[w] = recs
	}
	return byWave
}

// TestWaveAccumulatorMatchesAnalyzeWave pins the incremental fold
// against the slice-based entry point, field for field.
func TestWaveAccumulatorMatchesAnalyzeWave(t *testing.T) {
	for w, recs := range foldFixture() {
		direct := AnalyzeWave(w, recs[0].Date, recs)
		acc := NewWaveAccumulator(w, recs[0].Date)
		for _, r := range recs {
			acc.Add(r)
		}
		if acc.Len() != len(recs) {
			t.Errorf("wave %d: Len = %d, want %d", w, acc.Len(), len(recs))
		}
		folded := acc.Finalize(1)
		if !reflect.DeepEqual(direct, folded) {
			t.Errorf("wave %d: incremental fold differs from AnalyzeWave:\n%+v\nvs\n%+v",
				w, folded, direct)
		}
	}
}

// TestLongitudinalAccumulatorMatchesAnalyze pins the wave-by-wave fold
// against the slice-based entry point, and the non-retaining mode
// (keepWaves=false) against it minus the Waves slice.
func TestLongitudinalAccumulatorMatchesAnalyze(t *testing.T) {
	byWave := foldFixture()
	var analyses []*WaveAnalysis
	for w := 0; w < len(byWave); w++ {
		analyses = append(analyses, AnalyzeWave(w, byWave[w][0].Date, byWave[w]))
	}
	direct := AnalyzeLongitudinal(analyses)
	if len(direct.Renewals) == 0 || direct.Downgraded == 0 {
		t.Fatal("fixture produced no renewals; fold paths not exercised")
	}

	la := NewLongitudinalAccumulator(true)
	for _, a := range analyses {
		la.AddWave(a)
	}
	if folded := la.Finalize(); !reflect.DeepEqual(direct, folded) {
		t.Errorf("longitudinal fold differs:\n%+v\nvs\n%+v", folded, direct)
	}

	flat := NewLongitudinalAccumulator(false)
	for _, a := range analyses {
		flat.AddWave(a)
	}
	got := flat.Finalize()
	if got.Waves != nil {
		t.Error("non-retaining fold kept the per-wave analyses")
	}
	want := *direct
	want.Waves = nil
	got2 := *got
	if !reflect.DeepEqual(&want, &got2) {
		t.Errorf("non-retaining fold differs beyond Waves:\n%+v\nvs\n%+v", got2, want)
	}
}
