package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/addrspace"
	"repro/internal/dataset"
	"repro/internal/uapolicy"
)

// parallelFixture builds a population exercising every accumulate path:
// reuse clusters, weak certs, discovery servers, unreachable noise,
// cert-rejecting hosts, credential-only hosts and exposure samples.
func parallelFixture() []*dataset.HostRecord {
	nb := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	shared := cert("tt-shared", "SHA-1", 1024, "ICS Vendor", nb)
	var recs []*dataset.HostRecord
	for i := 0; i < 40; i++ {
		addr := fmt.Sprintf("10.0.%d.%d:4840", i/8, i%8+1)
		asn := 64500 + i%5
		switch i % 8 {
		case 0: // None-only anonymous host.
			recs = append(recs, rec(addr, asn, nil))
		case 1: // Reuse-cluster member.
			recs = append(recs, rec(addr, asn, func(r *dataset.HostRecord) {
				r.Cert = shared
			}))
		case 2: // Secure host with its own cert and exposure data.
			i := i
			recs = append(recs, rec(addr, asn, func(r *dataset.HostRecord) {
				r.Cert = cert(fmt.Sprintf("tt-%d", i), "SHA-256", 2048, "Solo", nb)
				r.Endpoints = append(r.Endpoints, dataset.EndpointRecord{
					Mode: "SignAndEncrypt", PolicyURI: uapolicy.URIBasic256Sha256,
					TokenTypes: []string{"UserName"},
				})
				r.AnonOK = true
				r.Namespaces = []string{"http://opcfoundation.org/UA/", addrspace.ProductionNamespaces[0]}
				r.Variables, r.Readable, r.Writable = 20, 18, 2+i%3
				r.Methods, r.Executable = 5, 4
			}))
		case 3: // Deprecated-best host.
			recs = append(recs, rec(addr, asn, func(r *dataset.HostRecord) {
				r.Endpoints = append(r.Endpoints, dataset.EndpointRecord{
					Mode: "Sign", PolicyURI: uapolicy.URIBasic128Rsa15,
				})
			}))
		case 4: // Discovery server.
			recs = append(recs, rec(addr, asn, func(r *dataset.HostRecord) {
				r.ApplicationType = "DiscoveryServer"
				r.AppURI = "urn:opcfoundation.org:UA:LDS"
			}))
		case 5: // Port-4840 noise, never reached OPC UA.
			recs = append(recs, &dataset.HostRecord{
				Address: addr, ASN: asn, Date: nb,
			})
		case 6: // Secure-channel rejection.
			recs = append(recs, rec(addr, asn, func(r *dataset.HostRecord) {
				r.CertRejected = true
				r.Cert = shared
			}))
		case 7: // Credential-only host.
			recs = append(recs, rec(addr, asn, func(r *dataset.HostRecord) {
				r.Endpoints[0].TokenTypes = []string{"UserName", "Certificate"}
				r.AnonOffered = false
			}))
		}
	}
	return recs
}

// TestAnalyzeWaveWorkersEquivalence requires the parallel assessment to
// be indistinguishable — field for field, including slice order — from
// the serial one. Run under -race this is also the data-race probe for
// the assessment pool.
func TestAnalyzeWaveWorkersEquivalence(t *testing.T) {
	recs := parallelFixture()
	date := recs[0].Date
	serial := AnalyzeWaveWorkers(0, date, recs, 1)
	if len(serial.Servers) == 0 || serial.Discovery == 0 || len(serial.ReuseClusters) == 0 {
		t.Fatalf("fixture too thin: %d servers, %d discovery, %d clusters",
			len(serial.Servers), serial.Discovery, len(serial.ReuseClusters))
	}
	for _, workers := range []int{0, 2, 4, 16} {
		par := AnalyzeWaveWorkers(0, date, recs, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: analysis differs from serial run", workers)
		}
	}
	// The default entry point must match too.
	if !reflect.DeepEqual(serial, AnalyzeWave(0, date, recs)) {
		t.Error("AnalyzeWave differs from 1-worker AnalyzeWaveWorkers")
	}
}
