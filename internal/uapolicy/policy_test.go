package uapolicy

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/uacert"
	"repro/internal/uarsa"
)

var (
	keysOnce sync.Once
	key512   *rsa.PrivateKey
	key1024  *rsa.PrivateKey
)

func testKeys(t testing.TB) (*rsa.PrivateKey, *rsa.PrivateKey) {
	t.Helper()
	keysOnce.Do(func() {
		var err error
		if key512, err = rsa.GenerateKey(rand.Reader, 512); err != nil {
			t.Fatal(err)
		}
		if key1024, err = rsa.GenerateKey(rand.Reader, 1024); err != nil {
			t.Fatal(err)
		}
	})
	return key512, key1024
}

// keyFor picks a key large enough for the policy's OAEP overhead.
func keyFor(t testing.TB, p *Policy) *rsa.PrivateKey {
	k512, k1024 := testKeys(t)
	if p.asymEnc == encOAEPSHA256 {
		return k1024
	}
	return k512
}

func TestTable1Metadata(t *testing.T) {
	// The paper's Table 1, row by row.
	cases := []struct {
		abbrev     string
		name       string
		sigHash    uacert.HashAlg
		minBits    int
		maxBits    int
		deprecated bool
		insecure   bool
	}{
		{"N", "None", uacert.HashUnknown, 0, 0, false, true},
		{"D1", "Basic128Rsa15", uacert.HashSHA1, 1024, 2048, true, false},
		{"D2", "Basic256", uacert.HashSHA1, 1024, 2048, true, false},
		{"S1", "Aes128_Sha256_RsaOaep", uacert.HashSHA256, 2048, 4096, false, false},
		{"S2", "Basic256Sha256", uacert.HashSHA256, 2048, 4096, false, false},
		{"S3", "Aes256_Sha256_RsaPss", uacert.HashSHA256, 2048, 4096, false, false},
	}
	if len(All()) != len(cases) {
		t.Fatalf("policy count = %d", len(All()))
	}
	for i, c := range cases {
		p, ok := LookupAbbrev(c.abbrev)
		if !ok {
			t.Fatalf("missing policy %s", c.abbrev)
		}
		if p.Name != c.name || p.SignatureHash != c.sigHash ||
			p.MinKeyBits != c.minBits || p.MaxKeyBits != c.maxBits ||
			p.Deprecated != c.deprecated || p.Insecure != c.insecure {
			t.Errorf("%s: %+v", c.abbrev, p)
		}
		if p.Rank != i {
			t.Errorf("%s rank = %d, want %d", c.abbrev, p.Rank, i)
		}
		if All()[i] != p {
			t.Errorf("All() out of rank order at %d", i)
		}
		back, ok := Lookup(p.URI)
		if !ok || back != p {
			t.Errorf("URI lookup failed for %s", p.URI)
		}
	}
	// D2 additionally allows SHA-256 certificates (Table 1 "SHA1, SHA256").
	if len(Basic256.CertHashes) != 2 {
		t.Errorf("Basic256 cert hashes = %v", Basic256.CertHashes)
	}
	if !Basic256Sha256.IsSecure() || Basic128Rsa15.IsSecure() || None.IsSecure() {
		t.Error("IsSecure misclassifies")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("http://example.com/policy"); ok {
		t.Error("unknown URI should not resolve")
	}
	if _, ok := LookupAbbrev("X9"); ok {
		t.Error("unknown abbrev should not resolve")
	}
}

func secured() []*Policy {
	var out []*Policy
	for _, p := range All() {
		if !p.Insecure {
			out = append(out, p)
		}
	}
	return out
}

func TestAsymSignVerifyAllPolicies(t *testing.T) {
	data := []byte("open secure channel payload")
	for _, p := range secured() {
		key := keyFor(t, p)
		sig, err := p.AsymSign(key, data)
		if err != nil {
			t.Fatalf("%s: sign: %v", p.Name, err)
		}
		if len(sig) != p.AsymSignatureSize(&key.PublicKey) {
			t.Errorf("%s: signature size %d, want %d", p.Name, len(sig),
				p.AsymSignatureSize(&key.PublicKey))
		}
		if err := p.AsymVerify(&key.PublicKey, data, sig); err != nil {
			t.Errorf("%s: verify: %v", p.Name, err)
		}
		sig[0] ^= 0xFF
		if err := p.AsymVerify(&key.PublicKey, data, sig); err == nil {
			t.Errorf("%s: corrupted signature verified", p.Name)
		}
	}
}

func TestAsymEncryptDecryptAllPolicies(t *testing.T) {
	for _, p := range secured() {
		key := keyFor(t, p)
		blockSize, err := p.AsymPlainBlockSize(&key.PublicKey)
		if err != nil {
			t.Fatalf("%s: block size: %v", p.Name, err)
		}
		plain := bytes.Repeat([]byte{0x5A}, blockSize*3)
		ct, err := p.AsymEncrypt(&key.PublicKey, plain)
		if err != nil {
			t.Fatalf("%s: encrypt: %v", p.Name, err)
		}
		if len(ct) != 3*p.AsymCipherBlockSize(&key.PublicKey) {
			t.Errorf("%s: ciphertext size %d", p.Name, len(ct))
		}
		pt, err := p.AsymDecrypt(key, ct)
		if err != nil {
			t.Fatalf("%s: decrypt: %v", p.Name, err)
		}
		if !bytes.Equal(pt, plain) {
			t.Errorf("%s: round trip mismatch", p.Name)
		}
		// Unaligned input is rejected.
		if _, err := p.AsymEncrypt(&key.PublicKey, plain[:blockSize+1]); err == nil {
			t.Errorf("%s: unaligned plaintext accepted", p.Name)
		}
		if _, err := p.AsymDecrypt(key, ct[:len(ct)-1]); err == nil {
			t.Errorf("%s: unaligned ciphertext accepted", p.Name)
		}
	}
}

// TestAsymCtxMemoizationTransparent pins the crypto-cache soundness
// argument: with an engine in the context, every memoized operation
// returns results a direct computation accepts, cache hits reproduce
// the first computation bit-for-bit, and a deterministic Rand stream
// makes encryption (never memoized) reproduce bit-identically too.
func TestAsymCtxMemoizationTransparent(t *testing.T) {
	data := []byte("open secure channel payload")
	for _, p := range secured() {
		key := keyFor(t, p)
		engine := uarsa.NewEngine(0)
		deriv := uarsa.NewDerivation([]byte("ctx-test"), []byte(p.URI))
		signCC := func() CryptoContext {
			return CryptoContext{Engine: engine, Rand: deriv.Stream("sign")}
		}
		sig1, err := p.AsymSignCtx(signCC(), key, data)
		if err != nil {
			t.Fatalf("%s: sign: %v", p.Name, err)
		}
		sig2, err := p.AsymSignCtx(signCC(), key, data)
		if err != nil || !bytes.Equal(sig1, sig2) {
			t.Errorf("%s: cached signature differs (%v)", p.Name, err)
		}
		if err := p.AsymVerify(&key.PublicKey, data, sig1); err != nil {
			t.Errorf("%s: cached signature does not verify: %v", p.Name, err)
		}
		cc := CryptoContext{Engine: engine}
		if err := p.AsymVerifyCtx(cc, &key.PublicKey, data, sig1); err != nil {
			t.Errorf("%s: verify miss: %v", p.Name, err)
		}
		if err := p.AsymVerifyCtx(cc, &key.PublicKey, data, sig1); err != nil {
			t.Errorf("%s: verify hit: %v", p.Name, err)
		}
		bad := append([]byte(nil), sig1...)
		bad[0] ^= 0xFF
		if err := p.AsymVerifyCtx(cc, &key.PublicKey, data, bad); err == nil {
			t.Errorf("%s: corrupted signature verified through the engine", p.Name)
		}

		blockSize, err := p.AsymPlainBlockSize(&key.PublicKey)
		if err != nil {
			t.Fatalf("%s: block size: %v", p.Name, err)
		}
		plain := bytes.Repeat([]byte{0x5A}, blockSize*2)
		encCC := func() CryptoContext {
			return CryptoContext{Engine: engine, Rand: deriv.Stream("enc")}
		}
		ct1, err := p.AsymEncryptCtx(encCC(), &key.PublicKey, plain)
		if err != nil {
			t.Fatalf("%s: encrypt: %v", p.Name, err)
		}
		ct2, err := p.AsymEncryptCtx(encCC(), &key.PublicKey, plain)
		if err != nil || !bytes.Equal(ct1, ct2) {
			t.Errorf("%s: deterministic encryption not reproducible (%v)", p.Name, err)
		}
		pt1, err := p.AsymDecryptCtx(cc, key, ct1) // miss
		if err != nil || !bytes.Equal(pt1, plain) {
			t.Errorf("%s: decrypt miss round trip failed (%v)", p.Name, err)
		}
		pt2, err := p.AsymDecryptCtx(cc, key, ct1) // hit
		if err != nil || !bytes.Equal(pt2, plain) {
			t.Errorf("%s: decrypt hit round trip failed (%v)", p.Name, err)
		}
		st := engine.Stats()
		if st.Sign.Hits == 0 || st.Verify.Hits == 0 || st.Decrypt.Hits == 0 {
			t.Errorf("%s: expected hits on all op kinds, got %+v", p.Name, st)
		}
	}
}

func TestNonePolicyRefusesCrypto(t *testing.T) {
	k, _ := testKeys(t)
	if _, err := None.AsymSign(k, []byte("x")); err == nil {
		t.Error("None.AsymSign should fail")
	}
	if err := None.AsymVerify(&k.PublicKey, []byte("x"), nil); err == nil {
		t.Error("None.AsymVerify should fail")
	}
	if _, err := None.AsymEncrypt(&k.PublicKey, nil); err == nil {
		t.Error("None.AsymEncrypt should fail")
	}
	if _, err := None.DeriveKeys([]byte("a"), []byte("b")); err == nil {
		t.Error("None.DeriveKeys should fail")
	}
	if _, err := None.SymSign(nil, nil); err == nil {
		t.Error("None.SymSign should fail")
	}
	if None.NewNonce() != nil {
		t.Error("None.NewNonce should be nil")
	}
}

func TestDeriveKeysDeterministicAndDirectional(t *testing.T) {
	for _, p := range secured() {
		cn := p.NewNonce()
		sn := p.NewNonce()
		if len(cn) != p.NonceLength() {
			t.Errorf("%s: nonce length %d", p.Name, len(cn))
		}
		client1, err := p.DeriveKeys(sn, cn)
		if err != nil {
			t.Fatal(err)
		}
		client2, _ := p.DeriveKeys(sn, cn)
		server, _ := p.DeriveKeys(cn, sn)
		if !bytes.Equal(client1.SigningKey, client2.SigningKey) ||
			!bytes.Equal(client1.EncryptionKey, client2.EncryptionKey) ||
			!bytes.Equal(client1.IV, client2.IV) {
			t.Errorf("%s: derivation not deterministic", p.Name)
		}
		if bytes.Equal(client1.SigningKey, server.SigningKey) {
			t.Errorf("%s: client and server keys identical", p.Name)
		}
		if len(client1.EncryptionKey)*8 != p.symKeyBits {
			t.Errorf("%s: enc key bits = %d", p.Name, len(client1.EncryptionKey)*8)
		}
		if len(client1.IV) != 16 {
			t.Errorf("%s: IV length = %d", p.Name, len(client1.IV))
		}
		if len(client1.SigningKey) != p.sigKeyLen {
			t.Errorf("%s: signing key length = %d", p.Name, len(client1.SigningKey))
		}
	}
}

func TestPHashKnownProperties(t *testing.T) {
	// P_hash output must be deterministic, seed- and secret-sensitive,
	// and prefix-consistent for different lengths.
	f := func(secret, seed []byte) bool {
		if len(secret) == 0 || len(seed) == 0 {
			return true
		}
		a := pHash(sha256.New, secret, seed, 48)
		b := pHash(sha256.New, secret, seed, 80)
		return bytes.Equal(a, b[:48])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	x := pHash(sha256.New, []byte("s1"), []byte("seed"), 32)
	y := pHash(sha256.New, []byte("s2"), []byte("seed"), 32)
	z := pHash(sha256.New, []byte("s1"), []byte("tiny"), 32)
	if bytes.Equal(x, y) || bytes.Equal(x, z) {
		t.Error("pHash not sensitive to inputs")
	}
}

func TestSymmetricSignEncryptRoundTrip(t *testing.T) {
	for _, p := range secured() {
		keys, err := p.DeriveKeys(p.NewNonce(), p.NewNonce())
		if err != nil {
			t.Fatal(err)
		}
		msg := bytes.Repeat([]byte("industrial"), 16) // 160 bytes, block-aligned
		sig, err := p.SymSign(keys, msg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(sig) != p.SymSignatureSize() {
			t.Errorf("%s: sym sig size %d, want %d", p.Name, len(sig), p.SymSignatureSize())
		}
		if err := p.SymVerify(keys, msg, sig); err != nil {
			t.Errorf("%s: sym verify: %v", p.Name, err)
		}
		if err := p.SymVerify(keys, msg[1:], sig); err == nil {
			t.Errorf("%s: modified message verified", p.Name)
		}

		buf := append([]byte(nil), msg...)
		if err := p.SymEncrypt(keys, buf); err != nil {
			t.Fatalf("%s: encrypt: %v", p.Name, err)
		}
		if bytes.Equal(buf, msg) {
			t.Errorf("%s: encryption is identity", p.Name)
		}
		if err := p.SymDecrypt(keys, buf); err != nil {
			t.Fatalf("%s: decrypt: %v", p.Name, err)
		}
		if !bytes.Equal(buf, msg) {
			t.Errorf("%s: symmetric round trip mismatch", p.Name)
		}
		if err := p.SymEncrypt(keys, msg[:15]); err == nil {
			t.Errorf("%s: unaligned encrypt accepted", p.Name)
		}
	}
}

func TestCheckCertificateConformance(t *testing.T) {
	cases := []struct {
		policy *Policy
		hash   uacert.HashAlg
		bits   int
		want   CertificateConformance
	}{
		// Figure 4 core case: S2 requires SHA-256 with 2048..4096 bits.
		{Basic256Sha256, uacert.HashSHA256, 2048, CertConformant},
		{Basic256Sha256, uacert.HashSHA1, 2048, CertTooWeak},
		{Basic256Sha256, uacert.HashMD5, 2048, CertTooWeak},
		{Basic256Sha256, uacert.HashSHA256, 1024, CertTooWeak},
		{Basic256Sha256, uacert.HashSHA1, 1024, CertTooWeak},
		// D1: SHA-1 with 1024..2048; SHA-256 is "too strong" (paper §5.2).
		{Basic128Rsa15, uacert.HashSHA1, 1024, CertConformant},
		{Basic128Rsa15, uacert.HashSHA1, 2048, CertConformant},
		{Basic128Rsa15, uacert.HashSHA256, 2048, CertTooStrong},
		{Basic128Rsa15, uacert.HashSHA1, 4096, CertTooStrong},
		{Basic128Rsa15, uacert.HashMD5, 1024, CertTooWeak},
		{Basic128Rsa15, uacert.HashSHA1, 512, CertTooWeak},
		// D2 allows both SHA-1 and SHA-256 certificates.
		{Basic256, uacert.HashSHA256, 2048, CertConformant},
		{Basic256, uacert.HashSHA1, 1024, CertConformant},
		{Basic256, uacert.HashMD5, 1024, CertTooWeak},
		// None never complains.
		{None, uacert.HashMD5, 512, CertConformant},
	}
	for _, c := range cases {
		if got := c.policy.CheckCertificate(c.hash, c.bits); got != c.want {
			t.Errorf("%s(%v, %d) = %v, want %v", c.policy.Name, c.hash, c.bits, got, c.want)
		}
	}
}

func TestConformanceStrings(t *testing.T) {
	if CertConformant.String() != "conformant" || CertTooWeak.String() != "too weak" ||
		CertTooStrong.String() != "too strong" {
		t.Error("conformance strings wrong")
	}
	if Basic256Sha256.String() != "Basic256Sha256" {
		t.Error("policy String wrong")
	}
	if Basic256Sha256.SecurityLevel() <= Basic128Rsa15.SecurityLevel() {
		t.Error("security levels not monotone")
	}
}

func BenchmarkDeriveKeys(b *testing.B) {
	p := Basic256Sha256
	cn, sn := p.NewNonce(), p.NewNonce()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.DeriveKeys(sn, cn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEncryptSign(b *testing.B) {
	p := Basic256Sha256
	keys, _ := p.DeriveKeys(p.NewNonce(), p.NewNonce())
	msg := make([]byte, 4096)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.SymEncrypt(keys, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := p.SymSign(keys, msg); err != nil {
			b.Fatal(err)
		}
	}
}
