// Package uapolicy implements the six OPC UA security policies of the
// paper's Table 1 with working cryptography from the standard library:
// RSA key transport (PKCS#1 v1.5 and OAEP), RSA signatures (PKCS#1 v1.5
// and PSS), AES-CBC message encryption, HMAC message authentication, and
// the P_SHA1/P_SHA256 key-derivation PRF.
package uapolicy

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
	"sync"

	"repro/internal/uacert"
	"repro/internal/uarsa"
)

// Security policy URIs (OPC 10000-7).
const (
	URINone           = "http://opcfoundation.org/UA/SecurityPolicy#None"
	URIBasic128Rsa15  = "http://opcfoundation.org/UA/SecurityPolicy#Basic128Rsa15"
	URIBasic256       = "http://opcfoundation.org/UA/SecurityPolicy#Basic256"
	URIAes128Sha256   = "http://opcfoundation.org/UA/SecurityPolicy#Aes128_Sha256_RsaOaep"
	URIBasic256Sha256 = "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256"
	URIAes256Sha256   = "http://opcfoundation.org/UA/SecurityPolicy#Aes256_Sha256_RsaPss"
)

// asymEncScheme selects the RSA key-transport primitive.
type asymEncScheme int

const (
	encNone asymEncScheme = iota
	encPKCS1v15
	encOAEPSHA1
	encOAEPSHA256
)

// asymSigScheme selects the RSA signature primitive.
type asymSigScheme int

const (
	sigNone asymSigScheme = iota
	sigPKCS1v15SHA1
	sigPKCS1v15SHA256
	sigPSSSHA256
)

// Policy describes one security policy: its Table 1 metadata and its
// crypto suite parameters.
type Policy struct {
	URI    string
	Name   string
	Abbrev string // paper abbreviation: N, D1, D2, S1, S2, S3

	// Table 1 metadata.
	SignatureHash uacert.HashAlg   // required certificate signature hash
	CertHashes    []uacert.HashAlg // hashes the policy permits in certificates
	MinKeyBits    int
	MaxKeyBits    int
	Deprecated    bool // D1, D2: SHA-1 based, deprecated 2017
	Insecure      bool // None

	// Rank orders policies from weakest (0 = None) to strongest; the
	// study uses it for "least/most secure" analyses (Figure 3).
	Rank int

	// Crypto suite.
	asymEnc     asymEncScheme
	asymSig     asymSigScheme
	symKeyBits  int // AES key size for message encryption
	sigKeyLen   int // derived signing key length
	symSigHash  func() hash.Hash
	symSigSize  int
	nonceLength int
	prf         func() hash.Hash
}

// The six policies, ordered by rank.
var (
	None = &Policy{
		URI: URINone, Name: "None", Abbrev: "N",
		Insecure: true, Rank: 0,
	}
	Basic128Rsa15 = &Policy{
		URI: URIBasic128Rsa15, Name: "Basic128Rsa15", Abbrev: "D1",
		SignatureHash: uacert.HashSHA1,
		CertHashes:    []uacert.HashAlg{uacert.HashSHA1},
		MinKeyBits:    1024, MaxKeyBits: 2048,
		Deprecated: true, Rank: 1,
		asymEnc: encPKCS1v15, asymSig: sigPKCS1v15SHA1,
		symKeyBits: 128, sigKeyLen: 16,
		symSigHash: sha1.New, symSigSize: sha1.Size,
		nonceLength: 16, prf: sha1.New,
	}
	Basic256 = &Policy{
		URI: URIBasic256, Name: "Basic256", Abbrev: "D2",
		SignatureHash: uacert.HashSHA1,
		CertHashes:    []uacert.HashAlg{uacert.HashSHA1, uacert.HashSHA256},
		MinKeyBits:    1024, MaxKeyBits: 2048,
		Deprecated: true, Rank: 2,
		asymEnc: encOAEPSHA1, asymSig: sigPKCS1v15SHA1,
		symKeyBits: 256, sigKeyLen: 24,
		symSigHash: sha1.New, symSigSize: sha1.Size,
		nonceLength: 32, prf: sha1.New,
	}
	Aes128Sha256RsaOaep = &Policy{
		URI: URIAes128Sha256, Name: "Aes128_Sha256_RsaOaep", Abbrev: "S1",
		SignatureHash: uacert.HashSHA256,
		CertHashes:    []uacert.HashAlg{uacert.HashSHA256},
		MinKeyBits:    2048, MaxKeyBits: 4096,
		Rank:    3,
		asymEnc: encOAEPSHA1, asymSig: sigPKCS1v15SHA256,
		symKeyBits: 128, sigKeyLen: 32,
		symSigHash: sha256.New, symSigSize: sha256.Size,
		nonceLength: 32, prf: sha256.New,
	}
	Basic256Sha256 = &Policy{
		URI: URIBasic256Sha256, Name: "Basic256Sha256", Abbrev: "S2",
		SignatureHash: uacert.HashSHA256,
		CertHashes:    []uacert.HashAlg{uacert.HashSHA256},
		MinKeyBits:    2048, MaxKeyBits: 4096,
		Rank:    4,
		asymEnc: encOAEPSHA1, asymSig: sigPKCS1v15SHA256,
		symKeyBits: 256, sigKeyLen: 32,
		symSigHash: sha256.New, symSigSize: sha256.Size,
		nonceLength: 32, prf: sha256.New,
	}
	Aes256Sha256RsaPss = &Policy{
		URI: URIAes256Sha256, Name: "Aes256_Sha256_RsaPss", Abbrev: "S3",
		SignatureHash: uacert.HashSHA256,
		CertHashes:    []uacert.HashAlg{uacert.HashSHA256},
		MinKeyBits:    2048, MaxKeyBits: 4096,
		Rank:    5,
		asymEnc: encOAEPSHA256, asymSig: sigPSSSHA256,
		symKeyBits: 256, sigKeyLen: 32,
		symSigHash: sha256.New, symSigSize: sha256.Size,
		nonceLength: 32, prf: sha256.New,
	}
)

var all = []*Policy{None, Basic128Rsa15, Basic256, Aes128Sha256RsaOaep,
	Basic256Sha256, Aes256Sha256RsaPss}

var byURI = func() map[string]*Policy {
	m := make(map[string]*Policy, len(all))
	for _, p := range all {
		m[p.URI] = p
	}
	return m
}()

var byAbbrev = func() map[string]*Policy {
	m := make(map[string]*Policy, len(all))
	for _, p := range all {
		m[p.Abbrev] = p
	}
	return m
}()

// All returns the policies ordered by rank (weakest first).
func All() []*Policy { return all }

// Lookup resolves a policy URI.
func Lookup(uri string) (*Policy, bool) {
	p, ok := byURI[uri]
	return p, ok
}

// LookupAbbrev resolves a paper abbreviation (N, D1, D2, S1, S2, S3).
func LookupAbbrev(a string) (*Policy, bool) {
	p, ok := byAbbrev[a]
	return p, ok
}

// IsSecure reports whether the policy is neither None nor deprecated,
// i.e. one of the recommended S1/S2/S3 policies.
func (p *Policy) IsSecure() bool { return !p.Insecure && !p.Deprecated }

// String implements fmt.Stringer.
func (p *Policy) String() string { return p.Name }

// SecurityLevel returns the advertised endpoint security level; higher is
// stronger. None is 0.
func (p *Policy) SecurityLevel() byte { return byte(p.Rank) }

// NonceLength returns the secure-channel nonce length in bytes.
func (p *Policy) NonceLength() int { return p.nonceLength }

// NewNonce returns a fresh random channel nonce.
func (p *Policy) NewNonce() []byte { return p.NonceFrom(nil) }

// NonceFrom draws a channel nonce from r (nil means crypto/rand).
// Deterministic handshakes pass a labeled uarsa.Stream so an unchanged
// host's exchange replays bit-identically across waves (DESIGN.md §4).
func (p *Policy) NonceFrom(r io.Reader) []byte {
	if p.nonceLength == 0 {
		return nil
	}
	if r == nil {
		//studyvet:entropy-exempt — fallback for interactive use; deterministic handshakes always pass a labeled uarsa.Stream
		r = rand.Reader
	}
	b := make([]byte, p.nonceLength)
	if _, err := io.ReadFull(r, b); err != nil {
		panic("uapolicy: nonce source failed: " + err.Error())
	}
	return b
}

// CryptoContext threads the optional memoization engine and the
// (possibly deterministic) random source through the asymmetric
// operations. The zero value computes directly with crypto/rand — the
// legacy behavior. When Engine is set, AsymSign/AsymVerify/AsymDecrypt
// results are memoized by (operation, scheme, key fingerprint, input
// digest); see package uarsa for why that is semantically transparent
// and why encryption instead needs the deterministic Rand stream.
type CryptoContext struct {
	Engine *uarsa.Engine
	Rand   io.Reader
}

// rand returns the context's random source, defaulting to crypto/rand.
func (cc CryptoContext) rand() io.Reader {
	if cc.Rand != nil {
		return cc.Rand
	}
	//studyvet:entropy-exempt — legacy zero-value behavior; campaign contexts always set Rand to a uarsa stream
	return rand.Reader
}

// verifiedOK is the cached sentinel for a successful verification.
var verifiedOK = []byte{}

// errors
var (
	ErrNoCrypto         = errors.New("uapolicy: policy None has no cryptographic primitives")
	ErrInvalidSignature = errors.New("uapolicy: signature verification failed")
	ErrKeyTooSmall      = errors.New("uapolicy: RSA key too small for policy")
)

// --- Asymmetric operations (OpenSecureChannel) ---

// AsymSignatureSize returns the signature size in bytes for the key.
func (p *Policy) AsymSignatureSize(key *rsa.PublicKey) int {
	if p.asymSig == sigNone {
		return 0
	}
	return key.Size()
}

// AsymPlainBlockSize returns the maximum plaintext block fed into one RSA
// encryption operation.
func (p *Policy) AsymPlainBlockSize(key *rsa.PublicKey) (int, error) {
	k := key.Size()
	var overhead int
	switch p.asymEnc {
	case encNone:
		return 0, ErrNoCrypto
	case encPKCS1v15:
		overhead = 11
	case encOAEPSHA1:
		overhead = 2*sha1.Size + 2
	case encOAEPSHA256:
		overhead = 2*sha256.Size + 2
	}
	if k <= overhead {
		return 0, ErrKeyTooSmall
	}
	return k - overhead, nil
}

// AsymCipherBlockSize returns the ciphertext block size (the key size).
func (p *Policy) AsymCipherBlockSize(key *rsa.PublicKey) int { return key.Size() }

// AsymSign signs data with the policy's asymmetric signature scheme.
func (p *Policy) AsymSign(key *rsa.PrivateKey, data []byte) ([]byte, error) {
	return p.AsymSignCtx(CryptoContext{}, key, data)
}

// AsymSignCtx signs data, memoizing by (key fingerprint, input digest)
// when the context carries an engine. PKCS#1 v1.5 signatures are
// deterministic, so the cached bytes equal a recomputation; PSS
// signatures replayed from cache are equally valid, and bit-identical
// to a recomputation whenever the context's Rand is a deterministic
// stream. Cached signatures are shared: callers must not modify them.
func (p *Policy) AsymSignCtx(cc CryptoContext, key *rsa.PrivateKey, data []byte) ([]byte, error) {
	if p.asymSig == sigNone {
		return nil, ErrNoCrypto
	}
	var fp uarsa.Fingerprint
	var dg [32]byte
	if cc.Engine != nil {
		fp = cc.Engine.Fingerprint(&key.PublicKey)
		dg = uarsa.Digest(data)
		if sig, ok := cc.Engine.Get(uarsa.OpSign, uint8(p.asymSig), fp, dg); ok {
			return sig, nil
		}
	}
	sig, err := p.asymSign(cc.rand(), key, data)
	if err == nil && cc.Engine != nil {
		cc.Engine.Put(uarsa.OpSign, uint8(p.asymSig), fp, dg, sig)
	}
	return sig, err
}

func (p *Policy) asymSign(r io.Reader, key *rsa.PrivateKey, data []byte) ([]byte, error) {
	switch p.asymSig {
	case sigPKCS1v15SHA1:
		d := sha1.Sum(data)
		return rsa.SignPKCS1v15(r, key, crypto.SHA1, d[:])
	case sigPKCS1v15SHA256:
		d := sha256.Sum256(data)
		return rsa.SignPKCS1v15(r, key, crypto.SHA256, d[:])
	case sigPSSSHA256:
		d := sha256.Sum256(data)
		return rsa.SignPSS(r, key, crypto.SHA256, d[:],
			&rsa.PSSOptions{SaltLength: rsa.PSSSaltLengthEqualsHash})
	default:
		return nil, ErrNoCrypto
	}
}

// AsymVerify verifies an asymmetric signature.
func (p *Policy) AsymVerify(key *rsa.PublicKey, data, sig []byte) error {
	return p.AsymVerifyCtx(CryptoContext{}, key, data, sig)
}

// AsymVerifyCtx verifies a signature; verification is a pure predicate
// of (key, data, sig), so successes are memoized (failures never are).
func (p *Policy) AsymVerifyCtx(cc CryptoContext, key *rsa.PublicKey, data, sig []byte) error {
	if p.asymSig == sigNone {
		return ErrNoCrypto
	}
	var fp uarsa.Fingerprint
	var dg [32]byte
	if cc.Engine != nil {
		fp = cc.Engine.Fingerprint(key)
		dg = uarsa.Digest(data, sig)
		if _, ok := cc.Engine.Get(uarsa.OpVerify, uint8(p.asymSig), fp, dg); ok {
			return nil
		}
	}
	if err := p.asymVerify(key, data, sig); err != nil {
		return err
	}
	if cc.Engine != nil {
		cc.Engine.Put(uarsa.OpVerify, uint8(p.asymSig), fp, dg, verifiedOK)
	}
	return nil
}

func (p *Policy) asymVerify(key *rsa.PublicKey, data, sig []byte) error {
	switch p.asymSig {
	case sigPKCS1v15SHA1:
		d := sha1.Sum(data)
		if rsa.VerifyPKCS1v15(key, crypto.SHA1, d[:], sig) != nil {
			return ErrInvalidSignature
		}
	case sigPKCS1v15SHA256:
		d := sha256.Sum256(data)
		if rsa.VerifyPKCS1v15(key, crypto.SHA256, d[:], sig) != nil {
			return ErrInvalidSignature
		}
	case sigPSSSHA256:
		d := sha256.Sum256(data)
		if rsa.VerifyPSS(key, crypto.SHA256, d[:], sig,
			&rsa.PSSOptions{SaltLength: rsa.PSSSaltLengthEqualsHash}) != nil {
			return ErrInvalidSignature
		}
	default:
		return ErrNoCrypto
	}
	return nil
}

// AsymEncrypt encrypts data block-wise with the policy's key transport.
// len(data) must be a multiple of AsymPlainBlockSize (the secure-channel
// layer pads before encrypting).
func (p *Policy) AsymEncrypt(key *rsa.PublicKey, data []byte) ([]byte, error) {
	return p.AsymEncryptCtx(CryptoContext{}, key, data)
}

// AsymEncryptCtx encrypts data, drawing padding from the context's Rand.
// Encryption is never memoized — fresh padding is what makes RSA
// encryption non-deterministic — but with a deterministic Rand stream
// the ciphertext for equal inputs is bit-identical, which is what lets
// the peer's memoized decrypt hit its cache.
func (p *Policy) AsymEncryptCtx(cc CryptoContext, key *rsa.PublicKey, data []byte) ([]byte, error) {
	plainBlock, err := p.AsymPlainBlockSize(key)
	if err != nil {
		return nil, err
	}
	if len(data)%plainBlock != 0 {
		return nil, fmt.Errorf("uapolicy: plaintext length %d not a multiple of block size %d",
			len(data), plainBlock)
	}
	r := cc.rand()
	out := make([]byte, 0, (len(data)/plainBlock)*key.Size())
	for off := 0; off < len(data); off += plainBlock {
		var ct []byte
		block := data[off : off+plainBlock]
		switch p.asymEnc {
		case encPKCS1v15:
			if cc.Rand != nil {
				// The stdlib deliberately reads a byte from the random
				// source with 50% probability (randutil.MaybeReadByte), so
				// its padding is not reproducible even from a fixed
				// stream. Deterministic handshakes need bit-identical
				// ciphertext — it is what lets the peer's memoized decrypt
				// hit — so the v1.5 padding is applied here, consuming the
				// stream exactly.
				ct, err = encryptPKCS1v15Det(cc.Rand, key, block)
			} else {
				ct, err = rsa.EncryptPKCS1v15(r, key, block)
			}
		case encOAEPSHA1:
			ct, err = rsa.EncryptOAEP(sha1.New(), r, key, block, nil)
		case encOAEPSHA256:
			ct, err = rsa.EncryptOAEP(sha256.New(), r, key, block, nil)
		default:
			return nil, ErrNoCrypto
		}
		if err != nil {
			return nil, fmt.Errorf("uapolicy: asymmetric encrypt: %w", err)
		}
		out = append(out, ct...)
	}
	return out, nil
}

// encryptPKCS1v15Det is RSAES-PKCS1-v1_5 encryption (RFC 8017 §7.2.1)
// with the nonzero padding bytes drawn exactly from r: EM = 00 || 02 ||
// PS || 00 || M, then the public-key operation. It produces the same
// ciphertext class as rsa.EncryptPKCS1v15 — rsa.DecryptPKCS1v15 inverts
// it — but consumes the stream reproducibly.
func encryptPKCS1v15Det(r io.Reader, key *rsa.PublicKey, msg []byte) ([]byte, error) {
	k := key.Size()
	if len(msg) > k-11 {
		return nil, fmt.Errorf("uapolicy: message too long for PKCS#1 v1.5")
	}
	em := make([]byte, k)
	em[1] = 2
	ps := em[2 : k-len(msg)-1]
	if _, err := io.ReadFull(r, ps); err != nil {
		return nil, err
	}
	for i := range ps {
		for ps[i] == 0 {
			var b [1]byte
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, err
			}
			ps[i] = b[0]
		}
	}
	copy(em[k-len(msg):], msg)
	m := new(big.Int).SetBytes(em)
	m.Exp(m, big.NewInt(int64(key.E)), key.N)
	m.FillBytes(em)
	return em, nil
}

// AsymDecrypt decrypts block-wise asymmetric ciphertext.
func (p *Policy) AsymDecrypt(key *rsa.PrivateKey, data []byte) ([]byte, error) {
	return p.AsymDecryptCtx(CryptoContext{}, key, data)
}

// AsymDecryptCtx decrypts ciphertext, memoizing the plaintext by
// (key fingerprint, ciphertext digest) when the context carries an
// engine — decryption is a pure function of the ciphertext. The cached
// plaintext is shared across callers and must be treated as read-only
// (the secure-channel layer only slices and copies out of it).
func (p *Policy) AsymDecryptCtx(cc CryptoContext, key *rsa.PrivateKey, data []byte) ([]byte, error) {
	if p.asymEnc == encNone {
		return nil, ErrNoCrypto
	}
	k := key.Size()
	if len(data)%k != 0 {
		return nil, fmt.Errorf("uapolicy: ciphertext length %d not a multiple of key size %d",
			len(data), k)
	}
	var fp uarsa.Fingerprint
	var dg [32]byte
	if cc.Engine != nil {
		fp = cc.Engine.Fingerprint(&key.PublicKey)
		dg = uarsa.Digest(data)
		if pt, ok := cc.Engine.Get(uarsa.OpDecrypt, uint8(p.asymEnc), fp, dg); ok {
			return pt, nil
		}
	}
	var out []byte
	for off := 0; off < len(data); off += k {
		var pt []byte
		var err error
		block := data[off : off+k]
		switch p.asymEnc {
		case encPKCS1v15:
			//studyvet:entropy-exempt — RSA blinding source only; the decrypted plaintext is a pure function of the ciphertext
			pt, err = rsa.DecryptPKCS1v15(rand.Reader, key, block)
		case encOAEPSHA1:
			//studyvet:entropy-exempt — RSA blinding source only; the decrypted plaintext is a pure function of the ciphertext
			pt, err = rsa.DecryptOAEP(sha1.New(), rand.Reader, key, block, nil)
		case encOAEPSHA256:
			//studyvet:entropy-exempt — RSA blinding source only; the decrypted plaintext is a pure function of the ciphertext
			pt, err = rsa.DecryptOAEP(sha256.New(), rand.Reader, key, block, nil)
		default:
			return nil, ErrNoCrypto
		}
		if err != nil {
			return nil, fmt.Errorf("uapolicy: asymmetric decrypt: %w", err)
		}
		out = append(out, pt...)
	}
	if cc.Engine != nil {
		cc.Engine.Put(uarsa.OpDecrypt, uint8(p.asymEnc), fp, dg, out)
	}
	return out, nil
}

// --- Key derivation ---

// DerivedKeys holds one direction's symmetric key material.
type DerivedKeys struct {
	SigningKey    []byte
	EncryptionKey []byte
	IV            []byte

	// block caches the expanded AES cipher for EncryptionKey so the
	// per-chunk encrypt/decrypt path skips the key schedule. DeriveKeys
	// populates it; zero-value DerivedKeys fall back to expanding on
	// demand. The cached cipher.Block is stateless and safe for
	// concurrent use.
	block cipher.Block
	// macPool recycles keyed HMAC states across chunks (hmac.New hashes
	// the key pads on every call; Reset on a pooled instance restores
	// the precomputed state instead). Populated by DeriveKeys;
	// zero-value DerivedKeys fall back to a fresh HMAC per call.
	macPool sync.Pool
}

// aesBlock returns the cached cipher. Zero-value DerivedKeys (built
// without DeriveKeys) expand the key per call instead of caching — a
// lazy unsynchronized write would be a data race when such keys are
// shared across goroutines.
func (k *DerivedKeys) aesBlock() (cipher.Block, error) {
	if k.block != nil {
		return k.block, nil
	}
	block, err := aes.NewCipher(k.EncryptionKey)
	if err != nil {
		return nil, fmt.Errorf("uapolicy: %w", err)
	}
	return block, nil
}

// pHash implements the TLS-style P_hash PRF used by OPC UA
// (OPC 10000-6 §6.7.5).
func pHash(newHash func() hash.Hash, secret, seed []byte, n int) []byte {
	out := make([]byte, 0, n)
	a := seed
	for len(out) < n {
		mac := hmac.New(newHash, secret)
		mac.Write(a)
		a = mac.Sum(nil)
		mac = hmac.New(newHash, secret)
		mac.Write(a)
		mac.Write(seed)
		out = append(out, mac.Sum(nil)...)
	}
	return out[:n]
}

// DeriveKeys derives one direction's keys from the PRF(secret, seed).
// For the client's keys, secret is the server nonce and seed the client
// nonce; for the server's keys the roles swap.
func (p *Policy) DeriveKeys(secret, seed []byte) (*DerivedKeys, error) {
	if p.Insecure {
		return nil, ErrNoCrypto
	}
	encLen := p.symKeyBits / 8
	const ivLen = aes.BlockSize
	material := pHash(p.prf, secret, seed, p.sigKeyLen+encLen+ivLen)
	keys := &DerivedKeys{
		SigningKey:    material[:p.sigKeyLen],
		EncryptionKey: material[p.sigKeyLen : p.sigKeyLen+encLen],
		IV:            material[p.sigKeyLen+encLen:],
	}
	// Expand the AES key schedule once per channel direction instead of
	// once per chunk in SymEncrypt/SymDecrypt.
	block, err := aes.NewCipher(keys.EncryptionKey)
	if err != nil {
		return nil, fmt.Errorf("uapolicy: %w", err)
	}
	keys.block = block
	keys.macPool.New = func() any { return hmac.New(p.symSigHash, keys.SigningKey) }
	return keys, nil
}

// --- Symmetric operations (MSG/CLO chunks) ---

// SymSignatureSize returns the HMAC size in bytes.
func (p *Policy) SymSignatureSize() int { return p.symSigSize }

// SymBlockSize returns the cipher block size for padding computations.
func (p *Policy) SymBlockSize() int { return aes.BlockSize }

// SymSign computes the message HMAC.
func (p *Policy) SymSign(keys *DerivedKeys, data []byte) ([]byte, error) {
	if p.Insecure {
		return nil, ErrNoCrypto
	}
	var mac hash.Hash
	if keys.macPool.New != nil {
		mac = keys.macPool.Get().(hash.Hash)
		mac.Reset()
		defer keys.macPool.Put(mac)
	} else {
		mac = hmac.New(p.symSigHash, keys.SigningKey)
	}
	mac.Write(data)
	return mac.Sum(nil), nil
}

// SymVerify checks the message HMAC in constant time.
func (p *Policy) SymVerify(keys *DerivedKeys, data, sig []byte) error {
	want, err := p.SymSign(keys, data)
	if err != nil {
		return err
	}
	if subtle.ConstantTimeCompare(want, sig) != 1 {
		return ErrInvalidSignature
	}
	return nil
}

// SymEncrypt encrypts data in place with AES-CBC. len(data) must be a
// multiple of the block size.
func (p *Policy) SymEncrypt(keys *DerivedKeys, data []byte) error {
	block, err := keys.aesBlock()
	if err != nil {
		return err
	}
	if len(data)%block.BlockSize() != 0 {
		return fmt.Errorf("uapolicy: plaintext length %d not block-aligned", len(data))
	}
	cipher.NewCBCEncrypter(block, keys.IV).CryptBlocks(data, data)
	return nil
}

// SymDecrypt decrypts data in place with AES-CBC.
func (p *Policy) SymDecrypt(keys *DerivedKeys, data []byte) error {
	block, err := keys.aesBlock()
	if err != nil {
		return err
	}
	if len(data)%block.BlockSize() != 0 {
		return fmt.Errorf("uapolicy: ciphertext length %d not block-aligned", len(data))
	}
	cipher.NewCBCDecrypter(block, keys.IV).CryptBlocks(data, data)
	return nil
}

// CertificateConformance classifies a certificate against the policy's
// Table 1 requirements, the core check behind Figure 4.
type CertificateConformance int

// Conformance classes.
const (
	CertConformant CertificateConformance = iota
	CertTooWeak                           // weaker hash or shorter key than required
	CertTooStrong                         // stronger primitives than the policy allows
)

// String implements fmt.Stringer.
func (c CertificateConformance) String() string {
	switch c {
	case CertConformant:
		return "conformant"
	case CertTooWeak:
		return "too weak"
	case CertTooStrong:
		return "too strong"
	default:
		return "unknown"
	}
}

// CheckCertificate classifies cert against the policy (None has no
// requirements and always reports conformant).
func (p *Policy) CheckCertificate(hash uacert.HashAlg, keyBits int) CertificateConformance {
	if p.Insecure {
		return CertConformant
	}
	hashAllowed := false
	for _, h := range p.CertHashes {
		if h == hash {
			hashAllowed = true
			break
		}
	}
	hashRank := func(h uacert.HashAlg) int {
		switch h {
		case uacert.HashMD5:
			return 0
		case uacert.HashSHA1:
			return 1
		case uacert.HashSHA256:
			return 2
		default:
			return -1
		}
	}
	maxAllowed := 0
	for _, h := range p.CertHashes {
		if r := hashRank(h); r > maxAllowed {
			maxAllowed = r
		}
	}
	switch {
	case keyBits < p.MinKeyBits:
		return CertTooWeak
	case !hashAllowed && hashRank(hash) < maxAllowed:
		return CertTooWeak
	case keyBits > p.MaxKeyBits:
		return CertTooStrong
	case !hashAllowed && hashRank(hash) > maxAllowed:
		return CertTooStrong
	default:
		return CertConformant
	}
}
