// Package wavediff fingerprints per-endpoint wave state so delta
// campaigns can prove, without dialing, that a host's record bytes
// cannot have changed since the previous wave (DESIGN.md §10).
//
// The paper's longitudinal result is that most hosts are bit-identical
// week over week — only 84 of the study's certificates renew across
// eight waves. A wave's record for a host is a deterministic function
// of (campaign configuration, endpoint wave state): PR 4's
// deterministic handshakes and PR 5's pure-seeded materialization
// removed every other input. A fingerprint therefore covers exactly
//
//   - the campaign context that shapes record bytes (seed, key sizes,
//     noise probability, population truncation, chaos profile/seed) —
//     the same fields fabric.CampaignSpec ships to workers;
//   - the endpoint's wave-varying deployment state: presence, served
//     certificate (the renewal schedule), software version (renewal
//     waves may carry a software update), and whether the wave's port
//     scan reaches it;
//   - the (wave, host) chaos decision — kind and parameter — for
//     present hosts, so a chaos-affected host is never skipped unless
//     its adversarial behavior provably repeats;
//   - for reference-only endpoints (hosts the port scan cannot see),
//     whether the wave follows references at all: their records exist
//     only in following waves.
//
// Two waves assigning one address equal fingerprints guarantee a real
// grab would replay the identical exchange, so the prior record can be
// cloned and re-stamped instead. Any miss falls back to a real grab.
package wavediff

import (
	"encoding/binary"
	"math"
)

// Context is the campaign-level fingerprint input: every configuration
// field that shapes record bytes. It mirrors the record-shaping subset
// of fabric.CampaignSpec, so sharded workers agreeing on a spec agree
// on fingerprints too. Observability and scheduling knobs (telemetry,
// worker counts, queue sizes) are deliberately absent — they never
// change record content (the byte-identity gates pin that).
type Context struct {
	Seed         int64
	TestKeySizes bool
	NoiseProb    float64
	MaxHosts     int
	ChaosProfile string
	ChaosSeed    int64
}

// EndpointState is one endpoint's wave-varying deployment state, the
// per-host fingerprint input. deploy.World.WaveEndpointStates derives
// it from spec state alone — no server is built, no channel opened.
type EndpointState struct {
	// Address is the scan target ("ip:port"), the dataset's record key.
	Address string
	// Present reports whether the endpoint is deployed at the wave
	// (HostSpec.PresentAt / DiscoverySpec.Present — the ApplyWave
	// churn schedule).
	Present bool
	// PortScanned reports whether the wave's port scan can discover the
	// endpoint: standard port, inside the universe, not excluded. False
	// for hidden hosts, which are reachable only through references.
	PortScanned bool
	// CertThumbprint identifies the certificate served at the wave
	// (renewals flip it at RenewalWave).
	CertThumbprint string
	// SoftwareVersion is the version the server reports at the wave
	// (renewals may carry a software update).
	SoftwareVersion string
	// ChaosKind/ChaosParam are the (wave, host) chaos decision for
	// present endpoints (zero when chaos is off or the host is absent —
	// the dial path never consults chaos for absent hosts).
	ChaosKind  uint8
	ChaosParam uint64
}

// Plan assigns every spec endpoint of one wave its fingerprint.
type Plan struct {
	wave       int
	followRefs bool
	ctxSum     uint64
	fps        map[string]uint64
}

// fnv64a parameters, restated locally like internal/chaos does: the
// fingerprint must stay a pure function with no imports that could
// drift.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type hasher uint64

func (h *hasher) bytes(b []byte) {
	v := uint64(*h)
	for _, c := range b {
		v ^= uint64(c)
		v *= fnvPrime
	}
	*h = hasher(v)
}

func (h *hasher) str(s string) {
	// Length-prefix every string so field boundaries cannot alias
	// ("ab"+"c" vs "a"+"bc").
	h.u64(uint64(len(s)))
	v := uint64(*h)
	for i := 0; i < len(s); i++ {
		v ^= uint64(s[i])
		v *= fnvPrime
	}
	*h = hasher(v)
}

func (h *hasher) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.bytes(b[:])
}

func (h *hasher) bit(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// contextSum digests the campaign context once per plan.
func contextSum(ctx Context) uint64 {
	h := hasher(fnvOffset)
	h.str("wavediff-context-v1")
	h.u64(uint64(ctx.Seed))
	h.bit(ctx.TestKeySizes)
	h.u64(math.Float64bits(ctx.NoiseProb))
	h.u64(uint64(ctx.MaxHosts))
	h.str(ctx.ChaosProfile)
	h.u64(uint64(ctx.ChaosSeed))
	return uint64(h)
}

// fingerprint digests one endpoint's wave state under the campaign
// context. followRefs is folded in only for endpoints the port scan
// cannot discover: a reference-only host's record exists exactly when
// the wave follows references, while a port-scanned host's record
// bytes are independent of the flag.
func fingerprint(ctxSum uint64, st EndpointState, followRefs bool) uint64 {
	h := hasher(fnvOffset)
	h.u64(ctxSum)
	h.str(st.Address)
	h.bit(st.Present)
	h.bit(st.PortScanned)
	h.str(st.CertThumbprint)
	h.str(st.SoftwareVersion)
	h.u64(uint64(st.ChaosKind))
	h.u64(st.ChaosParam)
	if !st.PortScanned {
		h.bit(followRefs)
	}
	return uint64(h)
}

// NewPlan fingerprints every endpoint of one wave. followRefs is the
// wave's reference-following flag (deploy.FollowReferencesFromWave).
// Duplicate addresses (two spec endpoints sharing one target) fold
// into a single combined fingerprint, so a collision can only make the
// diff more conservative, never less.
func NewPlan(ctx Context, wave int, followRefs bool, states []EndpointState) *Plan {
	p := &Plan{
		wave:       wave,
		followRefs: followRefs,
		ctxSum:     contextSum(ctx),
		fps:        make(map[string]uint64, len(states)),
	}
	for _, st := range states {
		fp := fingerprint(p.ctxSum, st, followRefs)
		if prev, ok := p.fps[st.Address]; ok {
			h := hasher(fnvOffset)
			h.u64(prev)
			h.u64(fp)
			fp = uint64(h)
		}
		p.fps[st.Address] = fp
	}
	return p
}

// Wave returns the wave index the plan fingerprints.
func (p *Plan) Wave() int { return p.wave }

// FollowReferences reports whether the planned wave follows references.
func (p *Plan) FollowReferences() bool { return p.followRefs }

// Len returns the number of distinct planned addresses.
func (p *Plan) Len() int { return len(p.fps) }

// Fingerprint returns an address's fingerprint and whether the address
// is a planned endpoint at all.
func (p *Plan) Fingerprint(addr string) (uint64, bool) {
	fp, ok := p.fps[addr]
	return fp, ok
}

// Delta is the diff of one wave's plan against a prior wave's: the
// skip/grab decision per address.
type Delta struct {
	prev, cur *Plan
}

// DiffFrom diffs the plan against a prior wave's plan.
func (p *Plan) DiffFrom(prev *Plan) *Delta {
	return &Delta{prev: prev, cur: p}
}

// Skip reports whether the address's record is provably unchanged
// since the prior wave — its grab may be skipped and the prior record
// cloned. Addresses outside both plans are always skippable: they are
// port noise, which is deterministic, wave-independent and chaos-free
// by construction (worldview serves noise before the chaos layer).
// An address entering or leaving the plan set — or whose fingerprint
// moved at all — must be re-grabbed.
func (d *Delta) Skip(addr string) bool {
	pf, pok := d.prev.fps[addr]
	cf, cok := d.cur.fps[addr]
	if !pok && !cok {
		return true
	}
	return pok && cok && pf == cf
}

// Misses counts the planned addresses whose fingerprint differs from
// the prior wave's (including additions and removals) — the upper
// bound on real port-scan grabs a delta wave performs.
func (d *Delta) Misses() int {
	n := 0
	for addr, cf := range d.cur.fps {
		if pf, ok := d.prev.fps[addr]; !ok || pf != cf {
			n++
		}
	}
	for addr := range d.prev.fps {
		if _, ok := d.cur.fps[addr]; !ok {
			n++
		}
	}
	return n
}
