package wavediff

import "testing"

func baseContext() Context {
	return Context{
		Seed:         2020,
		TestKeySizes: true,
		NoiseProb:    1e-5,
		MaxHosts:     60,
		ChaosProfile: "mixed",
		ChaosSeed:    7,
	}
}

func baseState() EndpointState {
	return EndpointState{
		Address:         "100.64.0.1:4840",
		Present:         true,
		PortScanned:     true,
		CertThumbprint:  "aa01",
		SoftwareVersion: "1.03",
		ChaosKind:       2,
		ChaosParam:      17,
	}
}

// fpOf fingerprints one state under one context via the public Plan
// surface, so the tests cannot drift from the production path.
func fpOf(t *testing.T, ctx Context, followRefs bool, st EndpointState) uint64 {
	t.Helper()
	p := NewPlan(ctx, 1, followRefs, []EndpointState{st})
	fp, ok := p.Fingerprint(st.Address)
	if !ok {
		t.Fatalf("address %q missing from its own plan", st.Address)
	}
	return fp
}

// TestFingerprintSensitivity pins the delta soundness contract field by
// field: every input that can shape a host's record bytes in a wave —
// a certificate renewal, a chaos redraw, a campaign seed change, an
// ApplyWave churn event — must flip the fingerprint, while an
// unchanged host must keep it bit-stable across waves.
func TestFingerprintSensitivity(t *testing.T) {
	tests := []struct {
		name string
		ctx  func(*Context)       // nil = base context
		st   func(*EndpointState) // nil = base state
		flip bool                 // fingerprint must differ from base
	}{
		{name: "unchanged host", flip: false},
		{name: "certificate renewal",
			st: func(s *EndpointState) { s.CertThumbprint = "bb02" }, flip: true},
		{name: "software update riding a renewal",
			st: func(s *EndpointState) { s.SoftwareVersion = "1.03.1" }, flip: true},
		{name: "chaos decision redrawn (kind)",
			st: func(s *EndpointState) { s.ChaosKind = 3 }, flip: true},
		{name: "chaos decision redrawn (param)",
			st: func(s *EndpointState) { s.ChaosParam = 18 }, flip: true},
		{name: "ApplyWave churn: host leaves",
			st: func(s *EndpointState) { s.Present = false }, flip: true},
		{name: "port scan no longer reaches host",
			st: func(s *EndpointState) { s.PortScanned = false }, flip: true},
		{name: "campaign seed change",
			ctx: func(c *Context) { c.Seed = 2021 }, flip: true},
		{name: "key-size probing toggled",
			ctx: func(c *Context) { c.TestKeySizes = false }, flip: true},
		{name: "noise probability change",
			ctx: func(c *Context) { c.NoiseProb = 2e-5 }, flip: true},
		{name: "population truncation change",
			ctx: func(c *Context) { c.MaxHosts = 61 }, flip: true},
		{name: "chaos profile change",
			ctx: func(c *Context) { c.ChaosProfile = "tarpit" }, flip: true},
		{name: "chaos seed change",
			ctx: func(c *Context) { c.ChaosSeed = 8 }, flip: true},
	}
	base := fpOf(t, baseContext(), true, baseState())
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ctx, st := baseContext(), baseState()
			if tc.ctx != nil {
				tc.ctx(&ctx)
			}
			if tc.st != nil {
				tc.st(&st)
			}
			got := fpOf(t, ctx, true, st)
			if flipped := got != base; flipped != tc.flip {
				t.Errorf("fingerprint flipped=%v, want %v", flipped, tc.flip)
			}
		})
	}
}

// TestFingerprintFollowReferences pins the reference-only rule: the
// wave's follow-references flag is part of a hidden host's fingerprint
// (its record exists only in following waves) but not a port-scanned
// host's (its record bytes don't depend on the flag).
func TestFingerprintFollowReferences(t *testing.T) {
	ctx := baseContext()
	hidden := baseState()
	hidden.PortScanned = false
	if fpOf(t, ctx, true, hidden) == fpOf(t, ctx, false, hidden) {
		t.Error("follow-references flag did not flip a hidden host's fingerprint")
	}
	scanned := baseState()
	if fpOf(t, ctx, true, scanned) != fpOf(t, ctx, false, scanned) {
		t.Error("follow-references flag flipped a port-scanned host's fingerprint")
	}
}

// TestDeltaSkip pins the skip predicate: equal fingerprints skip,
// moved fingerprints re-grab, additions and removals re-grab, and
// addresses outside both plans (deterministic port noise) skip.
func TestDeltaSkip(t *testing.T) {
	ctx := baseContext()
	stable := baseState()
	renewed := baseState()
	renewed.Address = "100.64.0.2:4840"
	leaver := baseState()
	leaver.Address = "100.64.0.3:4840"
	joiner := baseState()
	joiner.Address = "100.64.0.4:4840"

	prev := NewPlan(ctx, 1, true, []EndpointState{stable, renewed, leaver})
	renewedAfter := renewed
	renewedAfter.CertThumbprint = "cc03"
	cur := NewPlan(ctx, 2, true, []EndpointState{stable, renewedAfter, joiner})
	d := cur.DiffFrom(prev)

	for _, tc := range []struct {
		addr string
		want bool
	}{
		{stable.Address, true},
		{renewed.Address, false},
		{leaver.Address, false},
		{joiner.Address, false},
		{"100.127.0.9:4840", true}, // in neither plan: port noise
	} {
		if got := d.Skip(tc.addr); got != tc.want {
			t.Errorf("Skip(%s) = %v, want %v", tc.addr, got, tc.want)
		}
	}
	if got := d.Misses(); got != 3 {
		t.Errorf("Misses() = %d, want 3 (renewed, leaver, joiner)", got)
	}
}

// TestPlanDuplicateAddresses pins the collision rule: two endpoints
// sharing one address fold into a combined fingerprint that differs
// from either endpoint alone, so a duplicate can only force a re-grab,
// never hide a change.
func TestPlanDuplicateAddresses(t *testing.T) {
	ctx := baseContext()
	a := baseState()
	b := baseState()
	b.CertThumbprint = "dd04"
	dup := NewPlan(ctx, 1, true, []EndpointState{a, b})
	if dup.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", dup.Len())
	}
	combined, _ := dup.Fingerprint(a.Address)
	if combined == fpOf(t, ctx, true, a) || combined == fpOf(t, ctx, true, b) {
		t.Error("combined fingerprint equals a single endpoint's")
	}
}

// benchStates synthesizes a world-scale endpoint population (the study
// world is 1,114 servers plus discovery endpoints) for wave w, with the
// study's real change rate: roughly 1 in 16 endpoints renews its
// certificate at any given wave and 1 in 64 churns in or out.
func benchStates(w, n int) []EndpointState {
	states := make([]EndpointState, n)
	for i := range states {
		renewed := i%16 == w%16
		cert := "aa00"
		if renewed {
			cert = "bb" + string(rune('0'+w))
		}
		states[i] = EndpointState{
			Address:         "100.64." + itoa(i/256) + "." + itoa(i%256) + ":4840",
			Present:         i%64 != w%64,
			PortScanned:     i%8 != 7,
			CertThumbprint:  cert,
			SoftwareVersion: "1.04",
			ChaosKind:       uint8(i % 5),
			ChaosParam:      uint64(i * 31),
		}
	}
	return states
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// BenchmarkWaveDiffPlan measures the full per-wave delta-planning cost
// — fingerprinting a world-scale endpoint population, diffing against
// the prior wave's plan, and answering Skip for every address — the
// work a delta wave spends before deciding which grabs to elide. Its
// allocs/op are budget-gated in BENCH_10.json: planning must stay
// O(endpoints) map inserts, nothing per-byte.
func BenchmarkWaveDiffPlan(b *testing.B) {
	const n = 1200
	ctx := baseContext()
	prevStates, curStates := benchStates(0, n), benchStates(1, n)
	prev := NewPlan(ctx, 0, false, prevStates)
	b.ReportAllocs()
	b.ResetTimer()
	skips := 0
	for i := 0; i < b.N; i++ {
		cur := NewPlan(ctx, 1, false, curStates)
		d := cur.DiffFrom(prev)
		for _, st := range curStates {
			if d.Skip(st.Address) {
				skips++
			}
		}
	}
	b.StopTimer()
	if skips == 0 {
		b.Fatal("no skips planned — fixture changed everything")
	}
	b.ReportMetric(float64(skips/b.N), "skips")
}
