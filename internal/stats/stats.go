// Package stats provides the small statistical helpers the analysis
// needs: empirical CDFs (Figure 7), quantiles and summary statistics
// (§5.5's mean/std of the deficient share).
package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample.
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// F returns P(X <= x).
func (e *ECDF) F(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Survival returns P(X > x), the 1-CDF used by Figure 7.
func (e *ECDF) Survival(x float64) float64 { return 1 - e.F(x) }

// Quantile returns the q-quantile (0 <= q <= 1).
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := q * float64(len(e.sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return e.sorted[lo]
	}
	frac := idx - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[hi]*frac
}

// Points samples the survival function at n evenly spaced fractions,
// producing the (x, 1-CDF) series plotted in Figure 7.
func (e *ECDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		out = append(out, [2]float64{x, e.Survival(x)})
	}
	return out
}

// Summary holds the usual summary statistics.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes summary statistics of a sample.
func Summarize(sample []float64) Summary {
	s := Summary{N: len(sample)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = sample[0], sample[0]
	sum := 0.0
	for _, v := range sample {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range sample {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N))
	}
	return s
}
