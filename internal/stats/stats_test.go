package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{0.1, 0.5, 0.5, 0.9})
	if e.Len() != 4 {
		t.Errorf("len = %d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.0, 0.0},
		{0.1, 0.25},
		{0.5, 0.75},
		{0.9, 1.0},
		{1.0, 1.0},
	}
	for _, c := range cases {
		if got := e.F(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("F(%g) = %g, want %g", c.x, got, c.want)
		}
		if got := e.Survival(c.x); math.Abs(got-(1-c.want)) > 1e-9 {
			t.Errorf("Survival(%g) = %g", c.x, got)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.F(0.5) != 0 || e.Survival(0.5) != 1 {
		t.Error("empty ECDF misbehaves")
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	if q := e.Quantile(0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := e.Quantile(1); q != 5 {
		t.Errorf("q1 = %g", q)
	}
	if q := e.Quantile(0.5); q != 3 {
		t.Errorf("median = %g", q)
	}
	if q := e.Quantile(0.25); q != 2 {
		t.Errorf("q25 = %g", q)
	}
	// Interpolation between points.
	if q := e.Quantile(0.125); q != 1.5 {
		t.Errorf("q12.5 = %g", q)
	}
}

func TestECDFMonotonicityProperty(t *testing.T) {
	f := func(sample []float64, a, b float64) bool {
		for _, v := range sample {
			if math.IsNaN(v) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		e := NewECDF(sample)
		return e.F(a) <= e.F(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPoints(t *testing.T) {
	e := NewECDF([]float64{0.2, 0.8})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[4][0] != 1 {
		t.Errorf("x range = %v..%v", pts[0][0], pts[4][0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] > pts[i-1][1] {
			t.Error("survival function must be non-increasing")
		}
	}
	if got := e.Points(1); len(got) != 2 {
		t.Errorf("degenerate n handled: %d", len(got))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Errorf("std = %g, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	single := Summarize([]float64{3})
	if single.Std != 0 || single.Mean != 3 || single.Min != 3 || single.Max != 3 {
		t.Errorf("single summary = %+v", single)
	}
}
